// Package history records multi-object execution histories produced by
// the core scheduler and verifies the paper's two correctness
// requirements (Definition 7):
//
//   - soundness / freedom from cascading aborts (Definition 4, Lemma 3):
//     replaying each object's log with every aborted transaction's
//     operations deleted must reproduce the recorded return value of
//     every surviving operation;
//   - serializability (Lemma 4): replaying the committed transactions
//     serially, in their real-commit order, must reproduce every
//     recorded return value and the final state of every object.
//
// The real-commit order is a valid serialization order because both
// commit-dependency edges and blocking order the earlier transaction's
// commit first; the checker exploits that.
package history

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/adt"
	"repro/internal/core"
)

// OpEvent is one executed operation.
type OpEvent struct {
	Seq    uint64
	Txn    core.TxnID
	Object core.ObjectID
	Op     adt.Op
	Ret    adt.Ret
}

// Recorder implements core.Recorder, accumulating the history. It is
// safe for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	events   []OpEvent
	aborted  map[core.TxnID]bool
	pseudo   map[core.TxnID]bool
	commits  []core.TxnID // real commits in order
	blockCnt int
}

// NewRecorder returns an empty history recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		aborted: make(map[core.TxnID]bool),
		pseudo:  make(map[core.TxnID]bool),
	}
}

// Executed implements core.Recorder.
func (r *Recorder) Executed(txn core.TxnID, obj core.ObjectID, op adt.Op, ret adt.Ret, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, OpEvent{Seq: seq, Txn: txn, Object: obj, Op: op, Ret: ret})
}

// Blocked implements core.Recorder.
func (r *Recorder) Blocked(core.TxnID, core.ObjectID, adt.Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.blockCnt++
}

// Aborted implements core.Recorder.
func (r *Recorder) Aborted(txn core.TxnID, _ core.AbortReason) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.aborted[txn] = true
}

// PseudoCommitted implements core.Recorder.
func (r *Recorder) PseudoCommitted(txn core.TxnID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pseudo[txn] = true
}

// Committed implements core.Recorder.
func (r *Recorder) Committed(txn core.TxnID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.commits = append(r.commits, txn)
}

// Events returns the executed operations in execution order.
func (r *Recorder) Events() []OpEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]OpEvent(nil), r.events...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Commits returns the real-commit order.
func (r *Recorder) Commits() []core.TxnID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]core.TxnID(nil), r.commits...)
}

// AbortedTxns returns the set of aborted transactions.
func (r *Recorder) AbortedTxns() map[core.TxnID]bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[core.TxnID]bool, len(r.aborted))
	for t := range r.aborted {
		out[t] = true
	}
	return out
}

// Blocks returns the number of block events.
func (r *Recorder) Blocks() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.blockCnt
}

// PseudoCommitPrecedesCommit verifies that every transaction recorded as
// pseudo-committed was later really committed (pseudo-committed
// transactions "will definitely commit") and never aborted.
func (r *Recorder) PseudoCommitPrecedesCommit() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	committed := make(map[core.TxnID]bool, len(r.commits))
	for _, t := range r.commits {
		committed[t] = true
	}
	for t := range r.pseudo {
		if r.aborted[t] {
			return fmt.Errorf("history: T%d pseudo-committed but later aborted", t)
		}
		if !committed[t] {
			return fmt.Errorf("history: T%d pseudo-committed but never really committed", t)
		}
	}
	return nil
}

// CheckSoundness replays each object's full operation sequence with
// aborted transactions' operations deleted and verifies every surviving
// operation returns its recorded value (Definition 4 extended across
// the log: the observable semantics of survivors are unaffected by the
// removal). types maps each object to its data type; objects start from
// the type's initial state.
func CheckSoundness(types map[core.ObjectID]adt.Type, events []OpEvent, aborted map[core.TxnID]bool) error {
	states := make(map[core.ObjectID]adt.State)
	for _, e := range events {
		if aborted[e.Txn] {
			continue
		}
		typ, ok := types[e.Object]
		if !ok {
			return fmt.Errorf("history: no type for object %d", e.Object)
		}
		s, ok := states[e.Object]
		if !ok {
			s = typ.New()
			states[e.Object] = s
		}
		ret, err := typ.Apply(s, e.Op)
		if err != nil {
			return fmt.Errorf("history: replay %v on object %d: %w", e.Op, e.Object, err)
		}
		if ret != e.Ret {
			return fmt.Errorf("history: soundness violation: T%d %v on object %d returned %v live but %v with aborted transactions removed",
				e.Txn, e.Op, e.Object, e.Ret, ret)
		}
	}
	return nil
}

// CheckSerializability replays the committed transactions serially in
// real-commit order and verifies every recorded return value matches,
// then compares the final states against want (typically the
// scheduler's committed states). Transactions that never committed
// (still active at the end of the run) are skipped, which is only sound
// if their operations did not affect committed returns — guaranteed for
// histories where every transaction terminated; callers should drain
// first for strict checking.
func CheckSerializability(types map[core.ObjectID]adt.Type, events []OpEvent, commitOrder []core.TxnID, want map[core.ObjectID]adt.State) error {
	pos := make(map[core.TxnID]int, len(commitOrder))
	for i, t := range commitOrder {
		pos[t] = i
	}
	// Group events by transaction, preserving each transaction's own
	// execution order (<_T is respected by Seq order).
	byTxn := make(map[core.TxnID][]OpEvent)
	for _, e := range events {
		if _, ok := pos[e.Txn]; !ok {
			continue
		}
		byTxn[e.Txn] = append(byTxn[e.Txn], e)
	}

	states := make(map[core.ObjectID]adt.State)
	for _, t := range commitOrder {
		for _, e := range byTxn[t] {
			typ, ok := types[e.Object]
			if !ok {
				return fmt.Errorf("history: no type for object %d", e.Object)
			}
			s, ok := states[e.Object]
			if !ok {
				s = typ.New()
				states[e.Object] = s
			}
			ret, err := typ.Apply(s, e.Op)
			if err != nil {
				return fmt.Errorf("history: serial replay %v: %w", e.Op, err)
			}
			if ret != e.Ret {
				return fmt.Errorf("history: serializability violation: T%d %v on object %d returned %v concurrently but %v in commit-order serial execution",
					e.Txn, e.Op, e.Object, e.Ret, ret)
			}
		}
	}

	for oid, w := range want {
		got, ok := states[oid]
		if !ok {
			got = types[oid].New()
		}
		if !got.Equal(w) {
			return fmt.Errorf("history: final state of object %d: serial replay %v, scheduler %v", oid, got, w)
		}
	}
	return nil
}

// SerializationOrder derives a valid serialization order for the given
// committed transactions from the recorded events: whenever operations
// of two committed transactions on the same object do not commute, the
// transaction whose operation executed first must serialize first
// (blocking already guarantees this for non-recoverable pairs, and the
// commit-dependency protocol for recoverable ones). The order is the
// lexicographically smallest topological order, so it is deterministic.
// An error is reported if the constraints are cyclic — i.e. the
// execution was not serializable at all.
//
// The distributed checker needs this because per-site commit streams
// interleave in ways that need not form a global topological order,
// even though one always exists (the global dependency graph is kept
// acyclic).
func SerializationOrder(events []OpEvent, committed []core.TxnID, nonCommuting func(obj core.ObjectID, later, earlier adt.Op) bool) ([]core.TxnID, error) {
	in := make(map[core.TxnID]int, len(committed))
	succ := make(map[core.TxnID]map[core.TxnID]bool, len(committed))
	for _, t := range committed {
		in[t] = 0
		succ[t] = make(map[core.TxnID]bool)
	}
	for i, earlier := range events {
		if _, ok := in[earlier.Txn]; !ok {
			continue
		}
		for _, later := range events[i+1:] {
			if later.Object != earlier.Object || later.Txn == earlier.Txn {
				continue
			}
			if _, ok := in[later.Txn]; !ok {
				continue
			}
			if nonCommuting(earlier.Object, later.Op, earlier.Op) && !succ[earlier.Txn][later.Txn] {
				succ[earlier.Txn][later.Txn] = true
				in[later.Txn]++
			}
		}
	}
	var order []core.TxnID
	for len(order) < len(committed) {
		pick := core.TxnID(0)
		found := false
		for _, t := range committed {
			if in[t] == 0 && (!found || t < pick) {
				pick, found = t, true
			}
		}
		if !found {
			return nil, fmt.Errorf("history: serialization constraints are cyclic over %d remaining transactions", len(committed)-len(order))
		}
		order = append(order, pick)
		in[pick] = -1 // consumed
		for s := range succ[pick] {
			in[s]--
		}
	}
	return order, nil
}

// CommitOrderRespectsDependencies verifies that for every recoverable
// (non-commuting) pair o_i <E o_j with both transactions committed, T_i
// really committed before T_j — the commit-dependency contract of §4.3.
// classify must be the same classifier the scheduler used per object.
func CommitOrderRespectsDependencies(events []OpEvent, commitOrder []core.TxnID, classify func(obj core.ObjectID, requested, executed adt.Op) bool) error {
	pos := make(map[core.TxnID]int, len(commitOrder))
	for i, t := range commitOrder {
		pos[t] = i
	}
	for i, earlier := range events {
		pi, ok := pos[earlier.Txn]
		if !ok {
			continue
		}
		for _, later := range events[i+1:] {
			if later.Object != earlier.Object || later.Txn == earlier.Txn {
				continue
			}
			pj, ok := pos[later.Txn]
			if !ok {
				continue
			}
			if classify(earlier.Object, later.Op, earlier.Op) && pj < pi {
				return fmt.Errorf("history: commit order violates dependency: T%d's %v ran after T%d's %v on object %d but committed first",
					later.Txn, later.Op, earlier.Txn, earlier.Op, earlier.Object)
			}
		}
	}
	return nil
}
