package history

import (
	"strings"
	"testing"

	"repro/internal/adt"
	"repro/internal/core"
)

func pushEv(seq uint64, txn core.TxnID, v int, ret adt.Ret) OpEvent {
	return OpEvent{Seq: seq, Txn: txn, Object: 1, Op: adt.Op{Name: adt.StackPush, Arg: v, HasArg: true}, Ret: ret}
}

func popEv(seq uint64, txn core.TxnID, ret adt.Ret) OpEvent {
	return OpEvent{Seq: seq, Txn: txn, Object: 1, Op: adt.Op{Name: adt.StackPop}, Ret: ret}
}

var stackTypes = map[core.ObjectID]adt.Type{1: adt.Stack{}}

func TestCheckSoundnessAccepts(t *testing.T) {
	// T1 push(4); T2 push(2); T1 aborted. Survivor T2's push still
	// returns ok.
	events := []OpEvent{
		pushEv(1, 1, 4, adt.RetOK),
		pushEv(2, 2, 2, adt.RetOK),
	}
	if err := CheckSoundness(stackTypes, events, map[core.TxnID]bool{1: true}); err != nil {
		t.Errorf("sound history rejected: %v", err)
	}
}

func TestCheckSoundnessRejects(t *testing.T) {
	// T1 push(4); T2 pop -> 4 (cascading read); T1 aborted. The pop's
	// recorded return can no longer be reproduced.
	events := []OpEvent{
		pushEv(1, 1, 4, adt.RetOK),
		popEv(2, 2, adt.Ret{Code: adt.Value, Val: 4}),
	}
	err := CheckSoundness(stackTypes, events, map[core.TxnID]bool{1: true})
	if err == nil || !strings.Contains(err.Error(), "soundness violation") {
		t.Errorf("cascading-abort history accepted: %v", err)
	}
}

func TestCheckSerializabilityAccepts(t *testing.T) {
	events := []OpEvent{
		pushEv(1, 1, 4, adt.RetOK),
		pushEv(2, 2, 2, adt.RetOK),
	}
	want := map[core.ObjectID]adt.State{1: adt.NewStackState(4, 2)}
	if err := CheckSerializability(stackTypes, events, []core.TxnID{1, 2}, want); err != nil {
		t.Errorf("serializable history rejected: %v", err)
	}
}

func TestCheckSerializabilityRejectsReturnMismatch(t *testing.T) {
	// Commit order T2 before T1 contradicts the final state/returns:
	// T1 pushed first and T2's pop observed T1's element.
	events := []OpEvent{
		pushEv(1, 1, 4, adt.RetOK),
		popEv(2, 2, adt.Ret{Code: adt.Value, Val: 4}),
	}
	err := CheckSerializability(stackTypes, events, []core.TxnID{2, 1}, map[core.ObjectID]adt.State{1: adt.NewStackState(4)})
	if err == nil {
		t.Error("non-serializable commit order accepted")
	}
}

func TestCheckSerializabilityRejectsStateMismatch(t *testing.T) {
	events := []OpEvent{pushEv(1, 1, 4, adt.RetOK)}
	err := CheckSerializability(stackTypes, events, []core.TxnID{1}, map[core.ObjectID]adt.State{1: adt.NewStackState(9)})
	if err == nil || !strings.Contains(err.Error(), "final state") {
		t.Errorf("state mismatch accepted: %v", err)
	}
}

func TestCommitOrderRespectsDependencies(t *testing.T) {
	events := []OpEvent{
		pushEv(1, 1, 4, adt.RetOK),
		pushEv(2, 2, 2, adt.RetOK),
	}
	dep := func(_ core.ObjectID, requested, executed adt.Op) bool {
		return requested.Name == adt.StackPush && executed.Name == adt.StackPush
	}
	if err := CommitOrderRespectsDependencies(events, []core.TxnID{1, 2}, dep); err != nil {
		t.Errorf("legal commit order rejected: %v", err)
	}
	if err := CommitOrderRespectsDependencies(events, []core.TxnID{2, 1}, dep); err == nil {
		t.Error("dependency-violating commit order accepted")
	}
}

func TestRecorderBookkeeping(t *testing.T) {
	r := NewRecorder()
	r.Executed(1, 1, adt.Op{Name: adt.StackPush, Arg: 1, HasArg: true}, adt.RetOK, 2)
	r.Executed(2, 1, adt.Op{Name: adt.StackPush, Arg: 2, HasArg: true}, adt.RetOK, 1)
	r.Blocked(3, 1, adt.Op{Name: adt.StackPop})
	r.PseudoCommitted(2)
	r.Committed(1)
	r.Committed(2)
	r.Aborted(3, core.ReasonDeadlock)

	ev := r.Events()
	if len(ev) != 2 || ev[0].Seq != 1 || ev[1].Seq != 2 {
		t.Errorf("events not sorted by seq: %+v", ev)
	}
	if got := r.Commits(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("commits = %v", got)
	}
	if !r.AbortedTxns()[3] || r.AbortedTxns()[1] {
		t.Errorf("aborted = %v", r.AbortedTxns())
	}
	if r.Blocks() != 1 {
		t.Errorf("blocks = %d", r.Blocks())
	}
	if err := r.PseudoCommitPrecedesCommit(); err != nil {
		t.Errorf("valid pseudo-commit bookkeeping rejected: %v", err)
	}
}

func TestPseudoCommitViolations(t *testing.T) {
	r := NewRecorder()
	r.PseudoCommitted(1)
	if err := r.PseudoCommitPrecedesCommit(); err == nil {
		t.Error("pseudo-committed-but-never-committed accepted")
	}
	r2 := NewRecorder()
	r2.PseudoCommitted(1)
	r2.Aborted(1, core.ReasonUser)
	if err := r2.PseudoCommitPrecedesCommit(); err == nil {
		t.Error("pseudo-committed-then-aborted accepted")
	}
}

func TestCheckSoundnessUnknownObject(t *testing.T) {
	events := []OpEvent{pushEv(1, 1, 4, adt.RetOK)}
	if err := CheckSoundness(map[core.ObjectID]adt.Type{}, events, nil); err == nil {
		t.Error("missing type accepted")
	}
	if err := CheckSerializability(map[core.ObjectID]adt.Type{}, events, []core.TxnID{1}, nil); err == nil {
		t.Error("missing type accepted in serial replay")
	}
}
