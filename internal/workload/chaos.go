package workload

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// CrashableStore is the store surface the chaos harness drives: a
// multi-site Store whose sites can be crashed and restarted.
// dist.Cluster implements it when built with Config.FaultTolerant.
type CrashableStore interface {
	core.Store
	NumSites() int
	CrashSite(site int) error
	RestartSite(site int) error
}

// ChaosConfig parameterises RunChaos: the closed-loop load to drive
// plus the crash schedule injected under it.
type ChaosConfig struct {
	// Load is the workload (RetryHeldAborts and OnCommitted are
	// overridden by the harness).
	Load LoadConfig
	// CrashEvery is the healthy interval before each crash (default
	// 20ms).
	CrashEvery time.Duration
	// RestartAfter is the downtime per crash (default 5ms).
	RestartAfter time.Duration
	// MaxCrashes bounds the number of injected crashes (0 = keep
	// crashing until the load completes).
	MaxCrashes int
	// Deadline is the liveness watchdog: if the load has not completed
	// within it, RunChaos fails instead of hanging (0 = no watchdog).
	Deadline time.Duration
}

// ChaosResult is a LoadResult plus the failure-injection accounting.
type ChaosResult struct {
	LoadResult
	// Crashes is the number of crash/restart cycles injected.
	Crashes int
	// CommittedSteps counts, per object, the operations of logical
	// transactions whose commit promise was honoured — the expected
	// side of a conservation check against the surviving committed
	// states (for Pushes, committed stack depth must equal it exactly).
	CommittedSteps map[core.ObjectID]uint64
}

// RunChaos drives the configured closed-loop load while periodically
// crashing and restarting one site at a time, round-robin. Held
// pseudo-commits revoked by a crash are re-run (every logical
// transaction ends in exactly one of: really committed, or retried
// until it is), so on success Commits equals Workers*TxnsPerWorker and
// CommittedSteps is exact. All sites are up when RunChaos returns.
func RunChaos(st CrashableStore, cfg ChaosConfig) (ChaosResult, error) {
	crashEvery := cfg.CrashEvery
	if crashEvery <= 0 {
		crashEvery = 20 * time.Millisecond
	}
	restartAfter := cfg.RestartAfter
	if restartAfter <= 0 {
		restartAfter = 5 * time.Millisecond
	}

	lc := cfg.Load
	lc.RetryHeldAborts = true
	var mu sync.Mutex
	counts := make(map[core.ObjectID]uint64)
	lc.OnCommitted = func(steps []Step) {
		mu.Lock()
		for _, s := range steps {
			counts[s.Object]++
		}
		mu.Unlock()
	}

	// The injector crashes site k, waits out the downtime, restarts it
	// — never leaving a site down on exit — and moves to the next.
	stop := make(chan struct{})
	injDone := make(chan struct{})
	crashes := 0
	var injErr error
	go func() {
		defer close(injDone)
		site := 0
		for i := 0; cfg.MaxCrashes == 0 || i < cfg.MaxCrashes; i++ {
			select {
			case <-stop:
				return
			case <-time.After(crashEvery):
			}
			if err := st.CrashSite(site); err != nil {
				injErr = fmt.Errorf("workload: chaos crash of site %d: %w", site, err)
				return
			}
			crashes++
			// Not interruptible by stop: a crashed site must restart
			// before the injector exits.
			time.Sleep(restartAfter)
			if err := st.RestartSite(site); err != nil {
				injErr = fmt.Errorf("workload: chaos restart of site %d: %w", site, err)
				return
			}
			site = (site + 1) % st.NumSites()
		}
	}()

	type loadOut struct {
		res LoadResult
		err error
	}
	loadCh := make(chan loadOut, 1)
	go func() {
		res, err := RunLoad(st, lc)
		loadCh <- loadOut{res: res, err: err}
	}()

	var out loadOut
	if cfg.Deadline > 0 {
		select {
		case out = <-loadCh:
		case <-time.After(cfg.Deadline):
			close(stop)
			<-injDone
			if injErr != nil {
				// A failed restart leaves the site down and the load
				// grinding on retries: the injector error is the root
				// cause, the missed deadline only the symptom.
				return ChaosResult{}, injErr
			}
			return ChaosResult{}, errors.New("workload: chaos run exceeded its deadline (liveness violation: load stalled)")
		}
	} else {
		out = <-loadCh
	}
	close(stop)
	<-injDone
	// Injector failures come first for the same reason: a site stuck
	// down makes the load fail with downstream retry symptoms.
	if injErr != nil {
		return ChaosResult{}, injErr
	}
	if out.err != nil {
		return ChaosResult{}, out.err
	}
	return ChaosResult{LoadResult: out.res, Crashes: crashes, CommittedSteps: counts}, nil
}
