package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec resolves a textual workload spec into a Generator. Specs
// are how processes that share no memory agree on a workload: a
// cluster config file names the workload once, every sccd daemon
// installs the matching object factory at startup, and sccctl draws
// transactions from the same generator — nothing closure-shaped ever
// crosses the wire.
//
// Grammar (parameters optional, defaults in brackets):
//
//	pushes[:db]                  conservation stacks, all pushes [64]
//	readwrite[:db[,pw]]          pages, write prob pw [256, 0.3]
//	mix[:db[,argrange]]          stack/set/table mix [256, 8]
//	abstract[:db[,pc,pr,seed]]   generated abstract type, sigma=4
//	                             [256, 4, 4, 7]
func ParseSpec(spec string) (Generator, error) {
	name, rest, _ := strings.Cut(spec, ":")
	var args []string
	if rest != "" {
		args = strings.Split(rest, ",")
	}
	num := func(i, def int) (int, error) {
		if i >= len(args) || args[i] == "" {
			return def, nil
		}
		n, err := strconv.Atoi(strings.TrimSpace(args[i]))
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("workload: spec %q: bad count %q", spec, args[i])
		}
		return n, nil
	}
	frac := func(i int, def float64) (float64, error) {
		if i >= len(args) || args[i] == "" {
			return def, nil
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(args[i]), 64)
		if err != nil || f < 0 || f > 1 {
			return 0, fmt.Errorf("workload: spec %q: bad fraction %q", spec, args[i])
		}
		return f, nil
	}
	switch strings.TrimSpace(name) {
	case "pushes":
		db, err := num(0, 64)
		if err != nil {
			return nil, err
		}
		return Pushes{DBSize: db}, nil
	case "readwrite":
		db, err := num(0, 256)
		if err != nil {
			return nil, err
		}
		pw, err := frac(1, 0.3)
		if err != nil {
			return nil, err
		}
		return ReadWrite{DBSize: db, WriteProb: pw}, nil
	case "mix":
		db, err := num(0, 256)
		if err != nil {
			return nil, err
		}
		ar, err := num(1, 8)
		if err != nil {
			return nil, err
		}
		return Mix{DBSize: db, ArgRange: ar}, nil
	case "abstract":
		db, err := num(0, 256)
		if err != nil {
			return nil, err
		}
		pc, err := num(1, 4)
		if err != nil {
			return nil, err
		}
		pr, err := num(2, 4)
		if err != nil {
			return nil, err
		}
		seed, err := num(3, 7)
		if err != nil {
			return nil, err
		}
		return Abstract{DBSize: db, Sigma: 4, Pc: pc, Pr: pr, TableSeed: int64(seed)}, nil
	}
	return nil, fmt.Errorf("workload: unknown spec %q (want pushes|readwrite|mix|abstract)", spec)
}
