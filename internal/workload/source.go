package workload

import "math/rand"

// Source couples a Generator with the uniform transaction-length draw
// every driver shares — the single-site discrete-event engine
// (internal/sim), the multi-site simulator (internal/distsim) and the
// wall-clock load harness all submit transactions through one of these,
// so "draw a transaction" means the same thing (and consumes the RNG
// identically) everywhere.
type Source struct {
	Gen Generator
	// MinLen/MaxLen bound the uniformly distributed transaction length
	// (the paper's nominal 4..12).
	MinLen, MaxLen int
}

// Draw produces one transaction: a uniform length in [MinLen, MaxLen]
// followed by the generator's step draw, in that RNG order.
func (s Source) Draw(r *rand.Rand) []Step {
	length := s.MinLen + r.Intn(s.MaxLen-s.MinLen+1)
	return s.Gen.NewTxn(r, length)
}
