package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

// LoadConfig parameterises a closed-loop load run against any
// core.Store: Workers goroutines each submit TxnsPerWorker transactions
// drawn from the workload generator, restarting aborted transactions
// with a fresh id (the simulator's restart policy, minus think time).
// The same harness drives a single-scheduler core.DB and a dist.Cluster
// — the store is only ever touched through the Store/Txn interfaces.
type LoadConfig struct {
	// Workload draws transactions; its Factory is installed on the
	// store (for a cluster, routing keeps each object at its home
	// site).
	Workload Generator
	// Workers is the number of concurrent submitting goroutines.
	Workers int
	// TxnsPerWorker is how many completions each worker drives.
	TxnsPerWorker int
	// MinLength/MaxLength bound the uniformly drawn transaction
	// length (defaults 4..12, the paper's nominal bounds).
	MinLength, MaxLength int
	// Seed drives the per-worker RNGs.
	Seed int64
	// MaxRestarts caps restarts per logical transaction (safety
	// valve; 0 means 1000). Restarts back off exponentially, the
	// closed-loop stand-in for the simulator's think time.
	MaxRestarts int
	// RetryHeldAborts tolerates crash-stop failures of held
	// pseudo-commits: a held transaction that ends in a retryable abort
	// (a participant crash revoked it before its commit point) is
	// re-run as a fresh attempt instead of failing the load, and a
	// commit-conversation abort retries like a Do-time abort. Logical
	// commits are then counted when the real commit lands, not at
	// promise time. The chaos harness sets this; a no-failure load
	// behaves identically either way.
	RetryHeldAborts bool
	// HoldOpen keeps each transaction open for this long between its
	// last operation and its commit — the wall-clock stand-in for the
	// simulator's terminal interaction time. Open transactions are what
	// later operations acquire commit dependencies on, so without it a
	// load on few cores never overlaps and the hold-convoy regime
	// cannot form. 0 commits immediately (the historical behaviour).
	HoldOpen time.Duration
	// OnCommitted, if set, is called once per logical transaction whose
	// commit promise was honoured, with the steps it executed — the
	// chaos harness's conservation accounting. Called from worker
	// goroutines; must be safe for concurrent use.
	OnCommitted func(steps []Step)
}

// LoadResult summarises one load run.
type LoadResult struct {
	Shards     int
	Commits    uint64 // logical transactions committed
	Pseudo     uint64 // commits that were held (PseudoCommitted) first
	Aborts     uint64 // aborted attempts (each restarted)
	HeldAborts uint64 // held pseudo-commits revoked by a site crash (each re-run)
	Ops        uint64 // operations executed, aborted attempts included
	Elapsed    time.Duration
	TxnPerSec  float64
}

func (r LoadResult) String() string {
	return fmt.Sprintf("shards=%d commits=%d pseudo=%d aborts=%d heldaborts=%d ops=%d elapsed=%s txn/s=%.0f",
		r.Shards, r.Commits, r.Pseudo, r.Aborts, r.HeldAborts, r.Ops, r.Elapsed.Round(time.Millisecond), r.TxnPerSec)
}

// factoryStore is the optional store capability the harness uses to
// seed the database lazily; both core.DB and dist.Cluster provide it.
type factoryStore interface {
	SetFactory(func(core.ObjectID) (adt.Type, compat.Classifier))
}

// shardedStore is the optional capability reporting how many sites the
// store shards across (for LoadResult.Shards; absent means 1).
type shardedStore interface {
	NumSites() int
}

// RunLoad drives the store with the configured closed-loop workload
// and returns aggregate throughput. It is the multi-site counterpart
// of the discrete-event simulator's terminal loop: real goroutines,
// real contention, wall-clock time — against whichever Store backend
// the caller passes.
func RunLoad(st core.Store, cfg LoadConfig) (LoadResult, error) {
	if cfg.Workload == nil {
		return LoadResult{}, errors.New("workload: load needs a workload")
	}
	if cfg.Workers <= 0 || cfg.TxnsPerWorker <= 0 {
		return LoadResult{}, errors.New("workload: load needs positive Workers and TxnsPerWorker")
	}
	fs, ok := st.(factoryStore)
	if !ok {
		return LoadResult{}, fmt.Errorf("workload: store %T cannot install the workload's object factory", st)
	}
	minLen, maxLen := cfg.MinLength, cfg.MaxLength
	if minLen <= 0 {
		minLen = 4
	}
	if maxLen < minLen {
		maxLen = minLen + 8
	}
	maxRestarts := cfg.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = core.RunMaxAttempts
	}
	fs.SetFactory(cfg.Workload.Factory())
	src := Source{Gen: cfg.Workload, MinLen: minLen, MaxLen: maxLen}

	var commits, pseudo, aborts, heldAborts, ops atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			fail := func(err error) { firstErr.CompareAndSwap(nil, err) }
			committed := func(steps []Step) {
				commits.Add(1)
				if cfg.OnCommitted != nil {
					cfg.OnCommitted(steps)
				}
			}
			// runOnce drives the logical transaction until it commits
			// (really, returning nil, or pseudo, returning the handle)
			// with exponential jittered backoff between attempts (the
			// policy Store.Run uses, shared constants): an immediate
			// replay of the same steps tends to re-collide with the
			// same resident set. ok is false on a fatal error.
			runOnce := func(steps []Step) (heldTxn core.Txn, ok bool) {
			restart:
				for attempt := 0; ; attempt++ {
					if attempt > maxRestarts {
						fail(fmt.Errorf("workload: transaction exceeded %d restarts", maxRestarts))
						return nil, false
					}
					if attempt > 0 {
						shift := attempt
						if shift > core.RunBackoffShift {
							shift = core.RunBackoffShift
						}
						time.Sleep(time.Duration(1+r.Intn(1<<shift)) * core.RunBackoffBase)
					}
					t := st.Begin()
					for _, step := range steps {
						if _, err := t.Do(step.Object, step.Op); err != nil {
							if errors.Is(err, core.ErrTxnAborted) {
								aborts.Add(1)
								continue restart
							}
							fail(err)
							t.Abort() // don't leave live operations blocking other workers
							return nil, false
						}
						ops.Add(1)
					}
					if cfg.HoldOpen > 0 {
						time.Sleep(cfg.HoldOpen)
					}
					status, err := t.Commit()
					if err != nil {
						// Under chaos a commit conversation can die with
						// the site it is talking to; that is a retryable
						// abort like any other. A bounded-hold policy shed
						// is always retried: it is a normal admission
						// outcome whenever a policy is installed, not a
						// crash artifact gated on RetryHeldAborts.
						var ab *core.ErrAborted
						if (cfg.RetryHeldAborts || errors.Is(err, core.ErrHoldShed)) &&
							errors.As(err, &ab) && ab.Retryable() {
							aborts.Add(1)
							continue restart
						}
						fail(err)
						t.Abort()
						return nil, false
					}
					if status == core.PseudoCommitted {
						pseudo.Add(1)
						return t, true
					}
					return nil, true
				}
			}

			// Every pseudo-commit is a promise: each must land before
			// the run is declared done. Under RetryHeldAborts a revoked
			// promise (site crash) re-runs the logical transaction;
			// otherwise any held failure is fatal. A stuck hold hangs
			// here and is caught by the caller's watchdog, not silently
			// dropped.
			type heldRec struct {
				t     core.Txn
				steps []Step
			}
			var held []heldRec
			// Quiescence on every exit path, fatal errors included: no
			// worker returns while a pseudo-commit it owns is still in
			// flight, so a caller never observes the store mutating
			// after RunLoad. Fatal paths abort their active txn first,
			// so every held dependency terminates and Done closes.
			defer func() {
				for _, h := range held {
					<-h.t.Done()
				}
			}()
			for i := 0; i < cfg.TxnsPerWorker; i++ {
				steps := src.Draw(r)
				t, ok := runOnce(steps)
				if !ok {
					return
				}
				if t == nil {
					committed(steps)
				} else if cfg.RetryHeldAborts {
					held = append(held, heldRec{t: t, steps: steps})
				} else {
					// Promise-time counting, the historical contract:
					// the drain below only verifies the promise.
					committed(steps)
					held = append(held, heldRec{t: t})
				}
			}
			for len(held) > 0 {
				h := held[len(held)-1]
				held = held[:len(held)-1]
				<-h.t.Done()
				err := h.t.Err()
				if err == nil {
					if cfg.RetryHeldAborts {
						committed(h.steps)
					}
					continue
				}
				var ab *core.ErrAborted
				if cfg.RetryHeldAborts && errors.As(err, &ab) && ab.Retryable() {
					heldAborts.Add(1)
					t, ok := runOnce(h.steps)
					if !ok {
						return
					}
					if t == nil {
						committed(h.steps)
					} else {
						held = append(held, heldRec{t: t, steps: h.steps})
					}
					continue
				}
				fail(err)
				return
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err, ok := firstErr.Load().(error); ok && err != nil {
		return LoadResult{}, err
	}
	shards := 1
	if ss, ok := st.(shardedStore); ok {
		shards = ss.NumSites()
	}
	res := LoadResult{
		Shards:     shards,
		Commits:    commits.Load(),
		Pseudo:     pseudo.Load(),
		Aborts:     aborts.Load(),
		HeldAborts: heldAborts.Load(),
		Ops:        ops.Load(),
		Elapsed:    elapsed,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.TxnPerSec = float64(res.Commits) / sec
	}
	return res, nil
}
