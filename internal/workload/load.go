package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

// LoadConfig parameterises a closed-loop load run against any
// core.Store: Workers goroutines each submit TxnsPerWorker transactions
// drawn from the workload generator, restarting aborted transactions
// with a fresh id (the simulator's restart policy, minus think time).
// The same harness drives a single-scheduler core.DB and a dist.Cluster
// — the store is only ever touched through the Store/Txn interfaces.
type LoadConfig struct {
	// Workload draws transactions; its Factory is installed on the
	// store (for a cluster, routing keeps each object at its home
	// site).
	Workload Generator
	// Workers is the number of concurrent submitting goroutines.
	Workers int
	// TxnsPerWorker is how many completions each worker drives.
	TxnsPerWorker int
	// MinLength/MaxLength bound the uniformly drawn transaction
	// length (defaults 4..12, the paper's nominal bounds).
	MinLength, MaxLength int
	// Seed drives the per-worker RNGs.
	Seed int64
	// MaxRestarts caps restarts per logical transaction (safety
	// valve; 0 means 1000). Restarts back off exponentially, the
	// closed-loop stand-in for the simulator's think time.
	MaxRestarts int
}

// LoadResult summarises one load run.
type LoadResult struct {
	Shards    int
	Commits   uint64 // logical transactions committed
	Pseudo    uint64 // commits that were held (PseudoCommitted) first
	Aborts    uint64 // aborted attempts (each restarted)
	Ops       uint64 // operations executed, aborted attempts included
	Elapsed   time.Duration
	TxnPerSec float64
}

func (r LoadResult) String() string {
	return fmt.Sprintf("shards=%d commits=%d pseudo=%d aborts=%d ops=%d elapsed=%s txn/s=%.0f",
		r.Shards, r.Commits, r.Pseudo, r.Aborts, r.Ops, r.Elapsed.Round(time.Millisecond), r.TxnPerSec)
}

// factoryStore is the optional store capability the harness uses to
// seed the database lazily; both core.DB and dist.Cluster provide it.
type factoryStore interface {
	SetFactory(func(core.ObjectID) (adt.Type, compat.Classifier))
}

// shardedStore is the optional capability reporting how many sites the
// store shards across (for LoadResult.Shards; absent means 1).
type shardedStore interface {
	NumSites() int
}

// RunLoad drives the store with the configured closed-loop workload
// and returns aggregate throughput. It is the multi-site counterpart
// of the discrete-event simulator's terminal loop: real goroutines,
// real contention, wall-clock time — against whichever Store backend
// the caller passes.
func RunLoad(st core.Store, cfg LoadConfig) (LoadResult, error) {
	if cfg.Workload == nil {
		return LoadResult{}, errors.New("workload: load needs a workload")
	}
	if cfg.Workers <= 0 || cfg.TxnsPerWorker <= 0 {
		return LoadResult{}, errors.New("workload: load needs positive Workers and TxnsPerWorker")
	}
	fs, ok := st.(factoryStore)
	if !ok {
		return LoadResult{}, fmt.Errorf("workload: store %T cannot install the workload's object factory", st)
	}
	minLen, maxLen := cfg.MinLength, cfg.MaxLength
	if minLen <= 0 {
		minLen = 4
	}
	if maxLen < minLen {
		maxLen = minLen + 8
	}
	maxRestarts := cfg.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = core.RunMaxAttempts
	}
	fs.SetFactory(cfg.Workload.Factory())

	var commits, pseudo, aborts, ops atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			var held []core.Txn
			// Every pseudo-commit is a promise; make sure each one
			// lands before the run is declared done (a stuck hold
			// would hang here and be caught, not silently dropped).
			defer func() {
				for _, t := range held {
					<-t.Done()
					if err := t.Err(); err != nil {
						firstErr.CompareAndSwap(nil, err)
					}
				}
			}()
			for i := 0; i < cfg.TxnsPerWorker; i++ {
				length := minLen + r.Intn(maxLen-minLen+1)
				steps := cfg.Workload.NewTxn(r, length)
			restart:
				for attempt := 0; ; attempt++ {
					if attempt > maxRestarts {
						firstErr.CompareAndSwap(nil, fmt.Errorf("workload: transaction exceeded %d restarts", maxRestarts))
						return
					}
					if attempt > 0 {
						// Exponential backoff with jitter (the policy
						// Store.Run uses, shared constants): an
						// immediate replay of the same steps tends to
						// re-collide with the same resident set.
						shift := attempt
						if shift > core.RunBackoffShift {
							shift = core.RunBackoffShift
						}
						time.Sleep(time.Duration(1+r.Intn(1<<shift)) * core.RunBackoffBase)
					}
					t := st.Begin()
					for _, step := range steps {
						if _, err := t.Do(step.Object, step.Op); err != nil {
							if errors.Is(err, core.ErrTxnAborted) {
								aborts.Add(1)
								continue restart
							}
							firstErr.CompareAndSwap(nil, err)
							t.Abort() // don't leave live operations blocking other workers
							return
						}
						ops.Add(1)
					}
					status, err := t.Commit()
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						t.Abort()
						return
					}
					if status == core.PseudoCommitted {
						pseudo.Add(1)
						held = append(held, t)
					}
					commits.Add(1)
					break
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err, ok := firstErr.Load().(error); ok && err != nil {
		return LoadResult{}, err
	}
	shards := 1
	if ss, ok := st.(shardedStore); ok {
		shards = ss.NumSites()
	}
	res := LoadResult{
		Shards:  shards,
		Commits: commits.Load(),
		Pseudo:  pseudo.Load(),
		Aborts:  aborts.Load(),
		Ops:     ops.Load(),
		Elapsed: elapsed,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.TxnPerSec = float64(res.Commits) / sec
	}
	return res, nil
}
