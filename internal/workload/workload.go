// Package workload implements the paper's two simulation data models
// (§5.5): the read/write model (pages, write.probability) and the
// abstract-data-type model (σ=4 operations per object with randomly
// generated compatibility tables parameterised by Pc and Pr), plus a
// "realistic" mix of the paper's concrete types for examples and extra
// benchmarks.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

// Step is one operation request of a transaction: which object, which
// operation.
type Step struct {
	Object core.ObjectID
	Op     adt.Op
}

// Generator produces transactions and describes the database they run
// against. Objects are numbered 1..DBSize; the paper draws each
// operation's object uniformly and independently.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Size returns the database size in objects.
	Size() int
	// Factory returns the lazy object constructor handed to
	// core.Scheduler.SetFactory.
	Factory() func(core.ObjectID) (adt.Type, compat.Classifier)
	// NewTxn draws a transaction of the given length using r.
	NewTxn(r *rand.Rand, length int) []Step
}

// ReadWrite is the read/write model of §5.5.1: every object is a Page,
// every operation is a read or a write, and an operation is a write
// with probability WriteProb (the paper's write.probability, nominally
// 0.3).
type ReadWrite struct {
	DBSize    int
	WriteProb float64
}

// Name implements Generator.
func (w ReadWrite) Name() string { return fmt.Sprintf("read-write(p_w=%.2f)", w.WriteProb) }

// Size implements Generator.
func (w ReadWrite) Size() int { return w.DBSize }

// Factory implements Generator. All pages share the paper's Page
// tables (Tables I–II).
func (w ReadWrite) Factory() func(core.ObjectID) (adt.Type, compat.Classifier) {
	table := compat.PageTable()
	return func(core.ObjectID) (adt.Type, compat.Classifier) {
		return adt.Page{}, table
	}
}

// NewTxn implements Generator.
func (w ReadWrite) NewTxn(r *rand.Rand, length int) []Step {
	steps := make([]Step, length)
	for i := range steps {
		obj := core.ObjectID(1 + r.Intn(w.DBSize))
		if r.Float64() < w.WriteProb {
			steps[i] = Step{Object: obj, Op: adt.Op{Name: adt.PageWrite, Arg: r.Intn(1000), HasArg: true}}
		} else {
			steps[i] = Step{Object: obj, Op: adt.Op{Name: adt.PageRead}}
		}
	}
	return steps
}

// Abstract is the abstract-data-type model of §5.5.2: each object
// defines Sigma parameter-less operations whose conflict behaviour is a
// randomly generated merged compatibility table with Pc commutative and
// Pr recoverable entries. Each object's table is drawn deterministically
// from TableSeed so that runs are reproducible and both predicates see
// identical databases.
type Abstract struct {
	DBSize    int
	Sigma     int
	Pc, Pr    int
	TableSeed int64
}

// Name implements Generator.
func (w Abstract) Name() string {
	return fmt.Sprintf("abstract(sigma=%d,Pc=%d,Pr=%d)", w.Sigma, w.Pc, w.Pr)
}

// Size implements Generator.
func (w Abstract) Size() int { return w.DBSize }

// Factory implements Generator.
func (w Abstract) Factory() func(core.ObjectID) (adt.Type, compat.Classifier) {
	typ := adt.Abstract{Sigma: w.Sigma}
	return func(id core.ObjectID) (adt.Type, compat.Classifier) {
		r := rand.New(rand.NewSource(w.TableSeed + int64(id)))
		return typ, compat.MustGenerate(r, w.Sigma, w.Pc, w.Pr)
	}
}

// NewTxn implements Generator: "each operation is selected using a
// random variable distributed uniformly between 1 and 4" and the object
// uniformly over the database.
func (w Abstract) NewTxn(r *rand.Rand, length int) []Step {
	steps := make([]Step, length)
	for i := range steps {
		steps[i] = Step{
			Object: core.ObjectID(1 + r.Intn(w.DBSize)),
			Op:     adt.Op{Name: adt.AbstractOpName(r.Intn(w.Sigma))},
		}
	}
	return steps
}

// Sharded adapts a type-uniform workload (ReadWrite or Abstract, whose
// objects are interchangeable) to a multi-site database: each
// transaction picks a home site and draws its objects from that site's
// partition (id mod Sites), with each step escaping to the whole
// database with probability CrossProb. CrossProb 0 gives perfectly
// partitionable traffic (every transaction single-site); CrossProb 1
// recovers the inner workload's uniform draw. This is the access model
// for the §6 distributed runs and the shard-scaling benchmarks.
type Sharded struct {
	Inner Generator
	// Sites is the number of partitions (must match the cluster's
	// site count for single-site transactions to stay single-site).
	Sites int
	// CrossProb is the per-step probability of a cross-partition
	// access.
	CrossProb float64
	// Skew is the zipfian exponent s of per-partition key popularity
	// (math/rand.NewZipf). When > 1, each re-homed step draws its
	// object from a zipfian over the home partition's keys — rank 0,
	// the partition's lowest id, is the hot key — so multi-site
	// benchmarks cover hot-key contention, not just uniform routing.
	// Values <= 1 (including the zero value) keep the original uniform
	// re-homing and consume the RNG identically, preserving the
	// checked-in deterministic baselines.
	Skew float64
}

// Name implements Generator.
func (w Sharded) Name() string {
	if w.Skew > 1 {
		return fmt.Sprintf("sharded(%s,sites=%d,cross=%.2f,skew=%.2f)", w.Inner.Name(), w.Sites, w.CrossProb, w.Skew)
	}
	return fmt.Sprintf("sharded(%s,sites=%d,cross=%.2f)", w.Inner.Name(), w.Sites, w.CrossProb)
}

// Size implements Generator.
func (w Sharded) Size() int { return w.Inner.Size() }

// Factory implements Generator.
func (w Sharded) Factory() func(core.ObjectID) (adt.Type, compat.Classifier) {
	return w.Inner.Factory()
}

// NewTxn implements Generator: it draws the inner transaction, then
// re-homes each non-cross step's object onto the transaction's home
// partition (preserving the operation sequence). Degenerate
// configurations — fewer than two sites, or a database smaller than
// the site count (no full partition to re-home onto) — pass the inner
// draw through unchanged.
func (w Sharded) NewTxn(r *rand.Rand, length int) []Step {
	steps := w.Inner.NewTxn(r, length)
	if w.Sites <= 1 || w.Inner.Size() < w.Sites {
		return steps
	}
	home := r.Intn(w.Sites)
	size := w.Inner.Size()
	// The home partition is {id : id ≡ home (mod Sites), 1 <= id <= size};
	// its lowest member is the partition's rank-0 (hot) key under skew.
	base := home
	if base == 0 {
		base = w.Sites
	}
	var zipf *rand.Zipf
	if count := (size-base)/w.Sites + 1; w.Skew > 1 && count > 1 {
		zipf = rand.NewZipf(r, w.Skew, 1, uint64(count-1))
	}
	for i := range steps {
		if w.CrossProb > 0 && r.Float64() < w.CrossProb {
			continue // this step stays wherever the inner draw put it
		}
		if zipf != nil {
			steps[i].Object = core.ObjectID(base + w.Sites*int(zipf.Uint64()))
			continue
		}
		id := int(steps[i].Object)
		id = id - id%w.Sites + home
		if id < 1 {
			id += w.Sites
		}
		if id > size {
			id -= w.Sites
		}
		steps[i].Object = core.ObjectID(id)
	}
	return steps
}

// Pushes is the conservation workload for the fault-tolerance tests:
// every object is a stack and every operation a push, so after any
// run — crashes included — each object's committed depth must equal
// exactly the number of push steps of transactions whose commit
// promise was honoured (ChaosResult.CommittedSteps). Push/push pairs
// are recoverable, not commuting, so the workload exercises commit
// dependencies, holds and the decision log, not just the fast path.
type Pushes struct {
	DBSize int
}

// Name implements Generator.
func (w Pushes) Name() string { return "pushes(conservation)" }

// Size implements Generator.
func (w Pushes) Size() int { return w.DBSize }

// Factory implements Generator.
func (w Pushes) Factory() func(core.ObjectID) (adt.Type, compat.Classifier) {
	table := compat.StackTable()
	return func(core.ObjectID) (adt.Type, compat.Classifier) {
		return adt.Stack{}, table
	}
}

// NewTxn implements Generator.
func (w Pushes) NewTxn(r *rand.Rand, length int) []Step {
	steps := make([]Step, length)
	for i := range steps {
		steps[i] = Step{
			Object: core.ObjectID(1 + r.Intn(w.DBSize)),
			Op:     adt.Op{Name: adt.StackPush, Arg: r.Intn(1 << 20), HasArg: true},
		}
	}
	return steps
}

// Mix is a database of the paper's concrete types — stacks, sets and
// tables in equal proportion (object id mod 3) — with operations drawn
// uniformly from each type's repertoire and parameters from a small
// domain (ArgRange). It exercises the real compatibility tables,
// including their parameter-dependent entries.
type Mix struct {
	DBSize   int
	ArgRange int // parameters drawn from [1, ArgRange]
}

// Name implements Generator.
func (w Mix) Name() string { return "mix(stack/set/table)" }

// Size implements Generator.
func (w Mix) Size() int { return w.DBSize }

// typeFor returns the type and table for an object id.
func (w Mix) typeFor(id core.ObjectID) (adt.Type, *compat.Table) {
	switch id % 3 {
	case 0:
		return adt.Stack{}, compat.StackTable()
	case 1:
		return adt.Set{}, compat.SetTable()
	default:
		return adt.KTable{}, compat.KTableTable()
	}
}

// Factory implements Generator.
func (w Mix) Factory() func(core.ObjectID) (adt.Type, compat.Classifier) {
	return func(id core.ObjectID) (adt.Type, compat.Classifier) {
		typ, tab := w.typeFor(id)
		return typ, tab
	}
}

// NewTxn implements Generator.
func (w Mix) NewTxn(r *rand.Rand, length int) []Step {
	argRange := w.ArgRange
	if argRange <= 0 {
		argRange = 8
	}
	steps := make([]Step, length)
	for i := range steps {
		obj := core.ObjectID(1 + r.Intn(w.DBSize))
		typ, _ := w.typeFor(obj)
		specs := typ.Specs()
		sp := specs[r.Intn(len(specs))]
		steps[i] = Step{Object: obj, Op: sp.Invoke(1+r.Intn(argRange), 1+r.Intn(argRange))}
	}
	return steps
}
