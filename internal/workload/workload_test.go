package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

func TestReadWriteGenerator(t *testing.T) {
	w := ReadWrite{DBSize: 100, WriteProb: 0.3}
	if w.Size() != 100 {
		t.Errorf("Size = %d", w.Size())
	}
	if w.Name() == "" {
		t.Error("empty name")
	}
	rng := rand.New(rand.NewSource(1))
	writes, total := 0, 0
	for i := 0; i < 500; i++ {
		steps := w.NewTxn(rng, 8)
		if len(steps) != 8 {
			t.Fatalf("length = %d", len(steps))
		}
		for _, s := range steps {
			if s.Object < 1 || s.Object > 100 {
				t.Fatalf("object %d out of range", s.Object)
			}
			total++
			switch s.Op.Name {
			case adt.PageWrite:
				writes++
				if !s.Op.HasArg {
					t.Fatal("write without a value")
				}
			case adt.PageRead:
			default:
				t.Fatalf("unexpected op %s", s.Op.Name)
			}
		}
	}
	frac := float64(writes) / float64(total)
	if math.Abs(frac-0.3) > 0.03 {
		t.Errorf("write fraction = %.3f, want ≈0.30", frac)
	}

	typ, class := w.Factory()(core.ObjectID(5))
	if typ.Name() != "page" {
		t.Errorf("factory type = %s", typ.Name())
	}
	if class == nil {
		t.Error("nil classifier")
	}
}

func TestAbstractGenerator(t *testing.T) {
	w := Abstract{DBSize: 50, Sigma: 4, Pc: 4, Pr: 8, TableSeed: 3}
	if w.Name() == "" || w.Size() != 50 {
		t.Error("metadata wrong")
	}
	rng := rand.New(rand.NewSource(2))
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		for _, s := range w.NewTxn(rng, 6) {
			seen[s.Op.Name] = true
			if s.Op.HasArg {
				t.Fatal("abstract ops are parameterless")
			}
		}
	}
	for i := 0; i < 4; i++ {
		if !seen[adt.AbstractOpName(i)] {
			t.Errorf("op%d never drawn", i)
		}
	}

	// Factory tables are deterministic per object and respect Pc/Pr.
	f := w.Factory()
	_, c1 := f(core.ObjectID(7))
	_, c2 := f(core.ObjectID(7))
	g1 := c1.(*compat.Generated)
	g2 := c2.(*compat.Generated)
	comm, rec, _ := g1.Counts()
	if comm != 4 || rec != 8 {
		t.Errorf("counts = %d,%d, want 4,8", comm, rec)
	}
	for i := range g1.Cell {
		for j := range g1.Cell[i] {
			if g1.Cell[i][j] != g2.Cell[i][j] {
				t.Fatal("factory not deterministic per object")
			}
		}
	}
	_, c3 := f(core.ObjectID(8))
	g3 := c3.(*compat.Generated)
	same := true
	for i := range g1.Cell {
		for j := range g1.Cell[i] {
			if g1.Cell[i][j] != g3.Cell[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different objects should (generically) differ in tables")
	}
}

func TestMixGenerator(t *testing.T) {
	w := Mix{DBSize: 30, ArgRange: 5}
	if w.Name() == "" || w.Size() != 30 {
		t.Error("metadata wrong")
	}
	f := w.Factory()
	kinds := map[string]bool{}
	for id := core.ObjectID(1); id <= 30; id++ {
		typ, class := f(id)
		kinds[typ.Name()] = true
		if class == nil {
			t.Fatal("nil classifier")
		}
	}
	for _, k := range []string{"stack", "set", "table"} {
		if !kinds[k] {
			t.Errorf("mix never produced %s", k)
		}
	}

	// Every generated op must be applicable to its object's type.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		for _, s := range w.NewTxn(rng, 5) {
			typ, _ := f(s.Object)
			if _, err := typ.Apply(typ.New(), s.Op); err != nil {
				t.Fatalf("op %v invalid for %s: %v", s.Op, typ.Name(), err)
			}
		}
	}

	// Zero ArgRange falls back to a sane default.
	w0 := Mix{DBSize: 9}
	for _, s := range w0.NewTxn(rng, 4) {
		if s.Op.HasArg && (s.Op.Arg < 1 || s.Op.Arg > 8) {
			t.Errorf("arg %d outside default range", s.Op.Arg)
		}
	}
}

func TestShardedGenerator(t *testing.T) {
	const sites = 4
	w := Sharded{Inner: ReadWrite{DBSize: 100, WriteProb: 0.5}, Sites: sites}
	if w.Size() != 100 {
		t.Errorf("Size = %d", w.Size())
	}
	if w.Name() == "" {
		t.Error("empty name")
	}
	r := rand.New(rand.NewSource(1))
	// CrossProb 0: every transaction is single-partition and ids stay
	// in range.
	for i := 0; i < 200; i++ {
		steps := w.NewTxn(r, 8)
		if len(steps) != 8 {
			t.Fatalf("length = %d", len(steps))
		}
		home := steps[0].Object % sites
		for _, s := range steps {
			if s.Object < 1 || int(s.Object) > w.Size() {
				t.Fatalf("object %d out of range", s.Object)
			}
			if s.Object%sites != home {
				t.Fatalf("txn spans partitions without CrossProb: %v", steps)
			}
		}
	}
	// CrossProb 1 must reproduce the inner generator's spread: expect
	// many multi-partition transactions.
	wx := Sharded{Inner: ReadWrite{DBSize: 100, WriteProb: 0.5}, Sites: sites, CrossProb: 1}
	multi := 0
	for i := 0; i < 200; i++ {
		steps := wx.NewTxn(r, 8)
		parts := map[core.ObjectID]bool{}
		for _, s := range steps {
			parts[s.Object%sites] = true
		}
		if len(parts) > 1 {
			multi++
		}
	}
	if multi < 150 {
		t.Errorf("only %d/200 transactions crossed partitions under CrossProb=1", multi)
	}
	// Sites<=1 passes the inner draw through.
	w1 := Sharded{Inner: ReadWrite{DBSize: 100, WriteProb: 0.5}, Sites: 1}
	if steps := w1.NewTxn(r, 5); len(steps) != 5 {
		t.Error("degenerate sharding broke the draw")
	}
	// The factory is the inner factory: pages everywhere.
	typ, _ := w.Factory()(core.ObjectID(7))
	if _, ok := typ.(adt.Page); !ok {
		t.Errorf("factory type = %T", typ)
	}
}

// TestShardedSkew: Skew > 1 concentrates each partition's traffic on
// its hot keys without breaking partitioning, and Skew <= 1 is
// bit-identical to the unskewed draw (same RNG consumption), so
// checked-in deterministic baselines are unaffected.
func TestShardedSkew(t *testing.T) {
	const sites, size = 4, 100
	w := Sharded{Inner: ReadWrite{DBSize: size, WriteProb: 0.5}, Sites: sites, Skew: 2.0}
	r := rand.New(rand.NewSource(7))
	freq := map[core.ObjectID]int{}
	total := 0
	for i := 0; i < 500; i++ {
		steps := w.NewTxn(r, 8)
		home := steps[0].Object % sites
		for _, s := range steps {
			if s.Object < 1 || int(s.Object) > size {
				t.Fatalf("object %d out of range", s.Object)
			}
			if s.Object%sites != home {
				t.Fatalf("skewed txn spans partitions without CrossProb: %v", steps)
			}
			freq[s.Object]++
			total++
		}
	}
	// Each partition's rank-0 key is its lowest id: 1, 2, 3 and 4
	// (home 0's partition starts at Sites). Under uniform routing those
	// four of 100 keys would see ~4% of the traffic; zipf s=2 puts the
	// bulk of each partition's draws on its hot key.
	hot := freq[1] + freq[2] + freq[3] + freq[4]
	if hot < total/3 {
		t.Errorf("hot keys got %d/%d draws (%.1f%%), want skewed concentration >= 33%%",
			hot, total, 100*float64(hot)/float64(total))
	}
	if w.Name() != "sharded(read-write(p_w=0.50),sites=4,cross=0.00,skew=2.00)" {
		t.Errorf("Name = %q", w.Name())
	}

	// Sub-threshold skew is the uniform path, same RNG stream.
	a := Sharded{Inner: ReadWrite{DBSize: size, WriteProb: 0.5}, Sites: sites}
	b := Sharded{Inner: ReadWrite{DBSize: size, WriteProb: 0.5}, Sites: sites, Skew: 0.99}
	ra, rb := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		sa, sb := a.NewTxn(ra, 6), b.NewTxn(rb, 6)
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("Skew<=1 diverged from unskewed draw at txn %d step %d: %v vs %v", i, j, sa[j], sb[j])
			}
		}
	}
	if a.Name() != b.Name() {
		t.Errorf("Skew<=1 changed the name: %q vs %q", a.Name(), b.Name())
	}
}
