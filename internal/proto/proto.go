// Package proto holds the protocol's shared value vocabulary: the
// identifier types, abort reasons and the Effects record every layer of
// the system speaks. It sits below internal/core so that subsystems
// which only route protocol values — internal/delivery, which carries
// Effects to parked goroutines for both the local and the distributed
// front end — can be shared by core without an import cycle.
// internal/core aliases every name here (core.Effects = proto.Effects,
// …), so core remains the package user code imports.
package proto

import (
	"repro/internal/adt"
	"repro/internal/depgraph"
)

// TxnID identifies a transaction. IDs are assigned by the caller and
// must be unique for a scheduler's lifetime (restarted transactions get
// fresh IDs). It is the dependency graph's node type.
type TxnID = depgraph.TxnID

// ObjectID identifies a database object.
type ObjectID uint64

// AbortReason says why the scheduler aborted a transaction.
type AbortReason uint8

// Abort reasons.
const (
	// ReasonNone: not aborted.
	ReasonNone AbortReason = iota
	// ReasonDeadlock: a cycle was found when the transaction blocked
	// (wait-for edges closed a cycle).
	ReasonDeadlock
	// ReasonCommitCycle: a cycle was found when a recoverable
	// operation tried to execute (commit-dependency edges closed a
	// cycle) — the serializability guard of Lemma 4.
	ReasonCommitCycle
	// ReasonUser: the caller invoked Abort.
	ReasonUser
	// ReasonSiteFailed: a participant site holding the transaction's
	// uncommitted operations crashed, so the transaction cannot reach
	// its commit point (crash-stop fault model, internal/fault).
	ReasonSiteFailed
	// ReasonShed: the coordinator's hold policy declined to hold the
	// pseudo-committed transaction (the commit-dependency chain was too
	// deep, or the admission gate was closed) and revoked it instead —
	// overload control, retryable by construction: recoverability means
	// the revocation cascades into nobody, and a later attempt under a
	// shallower convoy can succeed.
	ReasonShed
)

// String implements fmt.Stringer.
func (r AbortReason) String() string {
	switch r {
	case ReasonDeadlock:
		return "deadlock"
	case ReasonCommitCycle:
		return "commit-dependency cycle"
	case ReasonUser:
		return "user abort"
	case ReasonSiteFailed:
		return "participant site failed"
	case ReasonShed:
		return "shed by hold policy"
	}
	return "none"
}

// Grant reports a previously blocked request that has now executed.
type Grant struct {
	Txn    TxnID
	Object ObjectID
	Op     adt.Op
	Ret    adt.Ret
}

// RetryAbort reports a previously blocked transaction that was aborted
// while its request was being retried (a new cycle formed).
type RetryAbort struct {
	Txn    TxnID
	Reason AbortReason
}

// Effects collects everything that happened downstream of one scheduler
// call: requests granted, blocked transactions aborted during retry,
// and pseudo-committed transactions that really committed.
type Effects struct {
	Grants      []Grant
	RetryAborts []RetryAbort
	Committed   []TxnID
}

// Empty reports whether the call had no downstream effects.
func (e *Effects) Empty() bool {
	return len(e.Grants) == 0 && len(e.RetryAborts) == 0 && len(e.Committed) == 0
}

// Reset truncates every list while keeping its capacity, so one Effects
// value can be reused across scheduler calls without allocating. The
// delivery layer holds one per serialisation domain. Grant payloads
// (ops, return values) are zeroed first so a long-lived buffer does not
// pin the last burst's data in its spare capacity.
func (e *Effects) Reset() {
	clear(e.Grants)
	e.Grants = e.Grants[:0]
	e.RetryAborts = e.RetryAborts[:0]
	e.Committed = e.Committed[:0]
}
