package adt

import (
	"sort"
	"strconv"
	"strings"
)

// Set is the set object of §3.2.3 with Insert, Delete and Member.
// Insert adds the element and returns ok (the paper's set insert always
// succeeds: "invoking insert(i) inserts the element i into the set and
// returns 'ok'"). Delete removes the element, returning Success if it
// was present and Failure otherwise. Member reports membership as
// yes/no.
type Set struct{}

// Set operation names.
const (
	SetInsert = "insert"
	SetDelete = "delete"
	SetMember = "member"
)

// SetState is the state of a Set.
type SetState struct {
	m map[int]bool
}

// NewSetState returns a set holding the given elements.
func NewSetState(vals ...int) *SetState {
	s := &SetState{m: make(map[int]bool, len(vals))}
	for _, v := range vals {
		s.m[v] = true
	}
	return s
}

// Contains reports membership.
func (s *SetState) Contains(v int) bool { return s.m[v] }

// Len returns the cardinality.
func (s *SetState) Len() int { return len(s.m) }

// Elements returns the members in ascending order.
func (s *SetState) Elements() []int {
	out := make([]int, 0, len(s.m))
	for v := range s.m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Clone implements State.
func (s *SetState) Clone() State {
	c := &SetState{m: make(map[int]bool, len(s.m))}
	for v := range s.m {
		c.m[v] = true
	}
	return c
}

// Equal implements State.
func (s *SetState) Equal(o State) bool {
	q, ok := o.(*SetState)
	if !ok || len(s.m) != len(q.m) {
		return false
	}
	for v := range s.m {
		if !q.m[v] {
			return false
		}
	}
	return true
}

// String implements State.
func (s *SetState) String() string {
	parts := make([]string, 0, len(s.m))
	for _, v := range s.Elements() {
		parts = append(parts, strconv.Itoa(v))
	}
	return "set{" + strings.Join(parts, " ") + "}"
}

// Name implements Type.
func (Set) Name() string { return "set" }

// New implements Type.
func (Set) New() State { return NewSetState() }

// Specs implements Type.
func (Set) Specs() []OpSpec {
	return []OpSpec{
		{Name: SetInsert, HasArg: true},
		{Name: SetDelete, HasArg: true},
		{Name: SetMember, HasArg: true, ReadOnly: true},
	}
}

// Apply implements Type. Implemented directly (not via ApplyU) so the
// no-undo paths never allocate a discarded undo record.
func (t Set) Apply(s State, op Op) (Ret, error) {
	ss, ok := s.(*SetState)
	if !ok || !op.HasArg {
		return Ret{}, badOp(t, op)
	}
	switch op.Name {
	case SetInsert:
		ss.m[op.Arg] = true
		return RetOK, nil
	case SetDelete:
		if ss.m[op.Arg] {
			delete(ss.m, op.Arg)
			return RetOK, nil
		}
		return Ret{Code: Fail}, nil
	case SetMember:
		if ss.m[op.Arg] {
			return Ret{Code: Yes}, nil
		}
		return Ret{Code: No}, nil
	}
	return Ret{}, badOp(t, op)
}

// CopyFrom implements Copier.
func (s *SetState) CopyFrom(src State) bool {
	q, ok := src.(*SetState)
	if !ok {
		return false
	}
	if s.m == nil {
		s.m = make(map[int]bool, len(q.m))
	} else {
		clear(s.m)
	}
	for v := range q.m {
		s.m[v] = true
	}
	return true
}

// setRec remembers whether an insert actually added / a delete actually
// removed its element, so undo restores exactly the prior membership.
type setRec struct {
	changed bool
}

// ApplyU implements Undoer.
func (t Set) ApplyU(s State, op Op) (Ret, UndoRec, error) {
	ss, ok := s.(*SetState)
	if !ok || !op.HasArg {
		return Ret{}, nil, badOp(t, op)
	}
	switch op.Name {
	case SetInsert:
		rec := &setRec{changed: !ss.m[op.Arg]}
		ss.m[op.Arg] = true
		return RetOK, rec, nil
	case SetDelete:
		if ss.m[op.Arg] {
			delete(ss.m, op.Arg)
			return RetOK, &setRec{changed: true}, nil
		}
		return Ret{Code: Fail}, &setRec{}, nil
	case SetMember:
		if ss.m[op.Arg] {
			return Ret{Code: Yes}, nil, nil
		}
		return Ret{Code: No}, nil, nil
	}
	return Ret{}, nil, badOp(t, op)
}

// Undo implements Undoer. The concurrency control protocol guarantees no
// uncommitted same-element insert/delete follows an uncommitted
// insert/delete (those pairs are Yes-DP, i.e. conflicts when the element
// matches), so a local membership flip is always correct.
func (t Set) Undo(s State, op Op, rec UndoRec, _ []UndoEntry) error {
	ss, ok := s.(*SetState)
	if !ok {
		return badOp(t, op)
	}
	switch op.Name {
	case SetMember:
		return nil
	case SetInsert:
		if rec.(*setRec).changed {
			delete(ss.m, op.Arg)
		}
		return nil
	case SetDelete:
		if rec.(*setRec).changed {
			ss.m[op.Arg] = true
		}
		return nil
	}
	return badOp(t, op)
}

// EnumStates implements Enumerable: every subset of {1, 2, 3}.
func (Set) EnumStates() []State {
	var out []State
	for mask := 0; mask < 8; mask++ {
		var vals []int
		for b := 0; b < 3; b++ {
			if mask&(1<<b) != 0 {
				vals = append(vals, b+1)
			}
		}
		out = append(out, NewSetState(vals...))
	}
	return out
}

// EnumArgs implements Enumerable.
func (Set) EnumArgs() []int { return []int{1, 2, 3} }
