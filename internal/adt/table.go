package adt

import (
	"fmt"
	"sort"
	"strings"
)

// KTable is the Table type of §3.2.4: unique (key, item) pairs with
// Insert, Delete, Lookup, Size and Modify.
//
//   - Insert(key, item) adds the pair; Failure if the key is present.
//   - Delete(key) removes the pair; Failure if the key is absent.
//   - Lookup(key) returns the item, or not_found.
//   - Size() returns the number of entries.
//   - Modify(key, item) replaces the item; Failure if the key is absent.
//
// (Named KTable to avoid colliding with the compatibility-table types in
// the compat package; the object's paper name is simply "Table".)
type KTable struct{}

// KTable operation names.
const (
	TableInsert = "insert"
	TableDelete = "delete"
	TableLookup = "lookup"
	TableSize   = "size"
	TableModify = "modify"
)

// KTableState is the state of a KTable.
type KTableState struct {
	m map[int]int
}

// NewKTableState returns a table holding the given pairs. Pairs
// alternate key, item.
func NewKTableState(kv ...int) *KTableState {
	if len(kv)%2 != 0 {
		panic("adt: NewKTableState needs key/item pairs")
	}
	s := &KTableState{m: make(map[int]int, len(kv)/2)}
	for i := 0; i < len(kv); i += 2 {
		s.m[kv[i]] = kv[i+1]
	}
	return s
}

// Get returns the item bound to key.
func (s *KTableState) Get(key int) (int, bool) { v, ok := s.m[key]; return v, ok }

// Len returns the number of entries.
func (s *KTableState) Len() int { return len(s.m) }

// Keys returns the keys in ascending order.
func (s *KTableState) Keys() []int {
	out := make([]int, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Clone implements State.
func (s *KTableState) Clone() State {
	c := &KTableState{m: make(map[int]int, len(s.m))}
	for k, v := range s.m {
		c.m[k] = v
	}
	return c
}

// Equal implements State.
func (s *KTableState) Equal(o State) bool {
	q, ok := o.(*KTableState)
	if !ok || len(s.m) != len(q.m) {
		return false
	}
	for k, v := range s.m {
		if qv, ok := q.m[k]; !ok || qv != v {
			return false
		}
	}
	return true
}

// String implements State.
func (s *KTableState) String() string {
	parts := make([]string, 0, len(s.m))
	for _, k := range s.Keys() {
		parts = append(parts, fmt.Sprintf("%d:%d", k, s.m[k]))
	}
	return "table{" + strings.Join(parts, " ") + "}"
}

// Name implements Type.
func (KTable) Name() string { return "table" }

// New implements Type.
func (KTable) New() State { return NewKTableState() }

// Specs implements Type.
func (KTable) Specs() []OpSpec {
	return []OpSpec{
		{Name: TableInsert, HasArg: true, HasAux: true},
		{Name: TableDelete, HasArg: true},
		{Name: TableLookup, HasArg: true, ReadOnly: true},
		{Name: TableSize, ReadOnly: true},
		{Name: TableModify, HasArg: true, HasAux: true},
	}
}

// Apply implements Type. Implemented directly (not via ApplyU) so the
// no-undo paths never allocate a discarded undo record.
func (t KTable) Apply(s State, op Op) (Ret, error) {
	ts, ok := s.(*KTableState)
	if !ok {
		return Ret{}, badOp(t, op)
	}
	switch op.Name {
	case TableInsert:
		if !op.HasArg || !op.HasAux {
			return Ret{}, badOp(t, op)
		}
		if _, exists := ts.m[op.Arg]; exists {
			return Ret{Code: Fail}, nil
		}
		ts.m[op.Arg] = op.Aux
		return RetOK, nil
	case TableDelete:
		if !op.HasArg {
			return Ret{}, badOp(t, op)
		}
		if _, exists := ts.m[op.Arg]; exists {
			delete(ts.m, op.Arg)
			return RetOK, nil
		}
		return Ret{Code: Fail}, nil
	case TableLookup:
		if !op.HasArg {
			return Ret{}, badOp(t, op)
		}
		if item, exists := ts.m[op.Arg]; exists {
			return Ret{Code: Value, Val: item}, nil
		}
		return Ret{Code: NotFound}, nil
	case TableSize:
		return Ret{Code: Count, Val: len(ts.m)}, nil
	case TableModify:
		if !op.HasArg || !op.HasAux {
			return Ret{}, badOp(t, op)
		}
		if _, exists := ts.m[op.Arg]; exists {
			ts.m[op.Arg] = op.Aux
			return RetOK, nil
		}
		return Ret{Code: Fail}, nil
	}
	return Ret{}, badOp(t, op)
}

// CopyFrom implements Copier.
func (s *KTableState) CopyFrom(src State) bool {
	q, ok := src.(*KTableState)
	if !ok {
		return false
	}
	if s.m == nil {
		s.m = make(map[int]int, len(q.m))
	} else {
		clear(s.m)
	}
	for k, v := range q.m {
		s.m[k] = v
	}
	return true
}

// tableInsRec remembers whether an insert succeeded (undo removes the
// key) — a failed insert changed nothing.
type tableInsRec struct {
	added bool
}

// tableDelRec remembers the removed pair for re-insertion on undo.
type tableDelRec struct {
	removed bool
	item    int
}

// tableModRec remembers a modify's before-image. Like page writes,
// modifies of the same key are mutually recoverable, so undoing an
// earlier modify must re-point the before-image of a later uncommitted
// modify of the same key rather than clobbering its effect.
type tableModRec struct {
	ok     bool
	before int
}

// ApplyU implements Undoer.
func (t KTable) ApplyU(s State, op Op) (Ret, UndoRec, error) {
	ts, ok := s.(*KTableState)
	if !ok {
		return Ret{}, nil, badOp(t, op)
	}
	switch op.Name {
	case TableInsert:
		if !op.HasArg || !op.HasAux {
			return Ret{}, nil, badOp(t, op)
		}
		if _, exists := ts.m[op.Arg]; exists {
			return Ret{Code: Fail}, &tableInsRec{}, nil
		}
		ts.m[op.Arg] = op.Aux
		return RetOK, &tableInsRec{added: true}, nil
	case TableDelete:
		if !op.HasArg {
			return Ret{}, nil, badOp(t, op)
		}
		if item, exists := ts.m[op.Arg]; exists {
			delete(ts.m, op.Arg)
			return RetOK, &tableDelRec{removed: true, item: item}, nil
		}
		return Ret{Code: Fail}, &tableDelRec{}, nil
	case TableLookup:
		if !op.HasArg {
			return Ret{}, nil, badOp(t, op)
		}
		if item, exists := ts.m[op.Arg]; exists {
			return Ret{Code: Value, Val: item}, nil, nil
		}
		return Ret{Code: NotFound}, nil, nil
	case TableSize:
		return Ret{Code: Count, Val: len(ts.m)}, nil, nil
	case TableModify:
		if !op.HasArg || !op.HasAux {
			return Ret{}, nil, badOp(t, op)
		}
		if before, exists := ts.m[op.Arg]; exists {
			ts.m[op.Arg] = op.Aux
			return RetOK, &tableModRec{ok: true, before: before}, nil
		}
		return Ret{Code: Fail}, &tableModRec{}, nil
	}
	return Ret{}, nil, badOp(t, op)
}

// Undo implements Undoer.
func (t KTable) Undo(s State, op Op, rec UndoRec, later []UndoEntry) error {
	ts, ok := s.(*KTableState)
	if !ok {
		return badOp(t, op)
	}
	switch op.Name {
	case TableLookup, TableSize:
		return nil
	case TableInsert:
		if rec.(*tableInsRec).added {
			delete(ts.m, op.Arg)
		}
		return nil
	case TableDelete:
		if dr := rec.(*tableDelRec); dr.removed {
			ts.m[op.Arg] = dr.item
		}
		return nil
	case TableModify:
		mr := rec.(*tableModRec)
		if !mr.ok {
			return nil
		}
		for _, e := range later {
			if e.Op.Name == TableModify && e.Op.Arg == op.Arg {
				if lr := e.Rec.(*tableModRec); lr.ok {
					lr.before = mr.before
					return nil
				}
			}
		}
		ts.m[op.Arg] = mr.before
		return nil
	}
	return badOp(t, op)
}

// EnumStates implements Enumerable: every partial map {1,2} -> {1,2}.
func (KTable) EnumStates() []State {
	items := []int{0, 1, 2} // 0 means absent
	var out []State
	for _, i1 := range items {
		for _, i2 := range items {
			s := NewKTableState()
			if i1 != 0 {
				s.m[1] = i1
			}
			if i2 != 0 {
				s.m[2] = i2
			}
			out = append(out, s)
		}
	}
	return out
}

// EnumArgs implements Enumerable. Args are keys; Aux items are drawn
// from the same sample by the derivation engine.
func (KTable) EnumArgs() []int { return []int{1, 2} }
