package adt

import "testing"

func ins(v int) Op { return Op{Name: SetInsert, Arg: v, HasArg: true} }
func del(v int) Op { return Op{Name: SetDelete, Arg: v, HasArg: true} }
func mem(v int) Op { return Op{Name: SetMember, Arg: v, HasArg: true} }

func TestSetSemantics(t *testing.T) {
	se := Set{}
	s := se.New()
	if r := MustApply(se, s, mem(3)); r.Code != No {
		t.Errorf("member on empty = %v", r)
	}
	if r := MustApply(se, s, ins(3)); r != RetOK {
		t.Errorf("insert = %v", r)
	}
	if r := MustApply(se, s, ins(3)); r != RetOK {
		t.Errorf("re-insert = %v (paper's set insert always returns ok)", r)
	}
	if r := MustApply(se, s, mem(3)); r.Code != Yes {
		t.Errorf("member = %v", r)
	}
	if r := MustApply(se, s, del(3)); r != RetOK {
		t.Errorf("delete = %v", r)
	}
	if r := MustApply(se, s, del(3)); r.Code != Fail {
		t.Errorf("delete absent = %v", r)
	}
}

// TestSetPaperSequence2 replays the paper's sequence (2): even though T2
// aborts, the semantics of T1's operations are unchanged — the history
// is free from cascading aborts.
func TestSetPaperSequence2(t *testing.T) {
	se := Set{}
	x := NewSetState()
	y := NewSetState(5)

	// X: (member(3), no, T2)
	if r := MustApply(se, x, mem(3)); r.Code != No {
		t.Fatalf("member(3) = %v, want no", r)
	}
	// X: (insert(3), ok, T1)
	_, recIns, _ := se.ApplyU(x, ins(3))
	_ = recIns
	// Y: (insert(4), ok, T1)
	MustApply(se, y, ins(4))
	// Y: (delete(5), ok, T2)
	_, recDel, _ := se.ApplyU(y, del(5))

	// (commit, T1); (abort, T2): undo T2's delete on Y.
	if err := se.Undo(y, del(5), recDel, nil); err != nil {
		t.Fatal(err)
	}
	if !y.Contains(5) || !y.Contains(4) {
		t.Errorf("Y after abort of T2 = %v, want {4 5}", y)
	}
	if !x.Contains(3) {
		t.Errorf("X lost T1's insert: %v", x)
	}
}

func TestSetUndoInsertAlreadyPresent(t *testing.T) {
	se := Set{}
	s := NewSetState(3)
	_, rec, _ := se.ApplyU(s, ins(3))
	if err := se.Undo(s, ins(3), rec, nil); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(3) {
		t.Error("undo of a no-op insert must not delete the pre-existing element")
	}
}

func TestSetUndoDeleteAbsent(t *testing.T) {
	se := Set{}
	s := NewSetState()
	_, rec, _ := se.ApplyU(s, del(3))
	if err := se.Undo(s, del(3), rec, nil); err != nil {
		t.Fatal(err)
	}
	if s.Contains(3) {
		t.Error("undo of a failed delete must not insert")
	}
}

func TestSetStateHelpers(t *testing.T) {
	s := NewSetState(3, 1, 2)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	el := s.Elements()
	if len(el) != 3 || el[0] != 1 || el[1] != 2 || el[2] != 3 {
		t.Errorf("Elements = %v", el)
	}
	if s.String() != "set{1 2 3}" {
		t.Errorf("String = %q", s.String())
	}
	c := s.Clone().(*SetState)
	MustApply(Set{}, c, del(1))
	if !s.Contains(1) {
		t.Error("clone mutation leaked into original")
	}
	if s.Equal(c) {
		t.Error("mutated clone should differ")
	}
	if s.Equal(NewSetState(1, 2, 4)) {
		t.Error("different sets compared equal")
	}
}
