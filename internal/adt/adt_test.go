package adt

import (
	"testing"
)

func TestRetString(t *testing.T) {
	cases := []struct {
		r    Ret
		want string
	}{
		{RetOK, "ok"},
		{Ret{Code: Fail}, "failure"},
		{Ret{Code: Yes}, "yes"},
		{Ret{Code: No}, "no"},
		{Ret{Code: Null}, "null"},
		{Ret{Code: NotFound}, "not_found"},
		{Ret{Code: Value, Val: 3}, "value(3)"},
		{Ret{Code: Count, Val: 7}, "count(7)"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Ret%+v.String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if got := (Op{Name: "size"}).String(); got != "size" {
		t.Errorf("got %q", got)
	}
	if got := (Op{Name: "insert", Arg: 3, HasArg: true}).String(); got != "insert(3)" {
		t.Errorf("got %q", got)
	}
	if got := (Op{Name: "insert", Arg: 3, HasArg: true, Aux: 9, HasAux: true}).String(); got != "insert(3,9)" {
		t.Errorf("got %q", got)
	}
}

func TestSameArg(t *testing.T) {
	a := Op{Name: "insert", Arg: 1, HasArg: true}
	b := Op{Name: "delete", Arg: 1, HasArg: true}
	c := Op{Name: "delete", Arg: 2, HasArg: true}
	d := Op{Name: "size"}
	if !a.SameArg(b) {
		t.Error("same args should match")
	}
	if a.SameArg(c) {
		t.Error("different args should not match")
	}
	if a.SameArg(d) || d.SameArg(d) {
		t.Error("parameterless operations are never same-arg")
	}
}

func TestOpSpecInvoke(t *testing.T) {
	sp := OpSpec{Name: "insert", HasArg: true, HasAux: true}
	op := sp.Invoke(4, 9)
	if !op.HasArg || op.Arg != 4 || !op.HasAux || op.Aux != 9 {
		t.Errorf("Invoke built %+v", op)
	}
	sp2 := OpSpec{Name: "size"}
	op2 := sp2.Invoke(4)
	if op2.HasArg || op2.HasAux {
		t.Errorf("parameterless spec picked up args: %+v", op2)
	}
}

func TestSpecByName(t *testing.T) {
	if _, ok := SpecByName(Stack{}, StackPush); !ok {
		t.Error("stack should define push")
	}
	if _, ok := SpecByName(Stack{}, "enqueue"); ok {
		t.Error("stack should not define enqueue")
	}
}

func TestApplySeq(t *testing.T) {
	st := Stack{}
	s := st.New()
	rets, err := ApplySeq(st, s, []Op{
		{Name: StackPush, Arg: 4, HasArg: true},
		{Name: StackPush, Arg: 2, HasArg: true},
		{Name: StackTop},
		{Name: StackPop},
		{Name: StackPop},
		{Name: StackPop},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Ret{RetOK, RetOK, {Code: Value, Val: 2}, {Code: Value, Val: 2}, {Code: Value, Val: 4}, {Code: Null}}
	for i := range want {
		if rets[i] != want[i] {
			t.Errorf("ret[%d] = %v, want %v", i, rets[i], want[i])
		}
	}
}

func TestApplySeqError(t *testing.T) {
	st := Stack{}
	s := st.New()
	_, err := ApplySeq(st, s, []Op{{Name: "bogus"}})
	if err == nil {
		t.Fatal("expected error for unknown operation")
	}
}

func TestMustApplyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustApply should panic on malformed op")
		}
	}()
	MustApply(Set{}, Set{}.New(), Op{Name: "bogus"})
}

// TestAllTypesBasicContract exercises the Type contract shared by all
// built-in types: fresh states are empty and equal, Clone is deep,
// unknown ops error, read-only specs don't change state.
func TestAllTypesBasicContract(t *testing.T) {
	types := []Type{Page{}, Stack{}, Set{}, KTable{}, Abstract{Sigma: 4}}
	for _, typ := range types {
		t.Run(typ.Name(), func(t *testing.T) {
			a, b := typ.New(), typ.New()
			if !a.Equal(b) {
				t.Error("two fresh states should be equal")
			}
			if _, err := typ.Apply(a, Op{Name: "no-such-op"}); err == nil {
				t.Error("unknown operation should error")
			}
			if len(typ.Specs()) == 0 {
				t.Fatal("type defines no operations")
			}
			for _, sp := range typ.Specs() {
				op := sp.Invoke(1, 1)
				before := a.Clone()
				if _, err := typ.Apply(a, op); err != nil {
					t.Fatalf("Apply(%v): %v", op, err)
				}
				if sp.ReadOnly && !a.Equal(before) {
					t.Errorf("read-only op %s changed state %v -> %v", sp.Name, before, a)
				}
			}
			// Clone independence: mutating the clone leaves the
			// original untouched.
			orig := typ.New()
			cl := orig.Clone()
			for _, sp := range typ.Specs() {
				if !sp.ReadOnly {
					MustApply(typ, cl, sp.Invoke(2, 2))
				}
			}
			if !orig.Equal(typ.New()) {
				t.Error("mutating a clone affected the original state")
			}
		})
	}
}

// TestEnumerables checks the enumeration contract used by the derivation
// engine.
func TestEnumerables(t *testing.T) {
	for _, typ := range []Enumerable{Page{}, Stack{}, Set{}, KTable{}} {
		t.Run(typ.Name(), func(t *testing.T) {
			states := typ.EnumStates()
			if len(states) < 2 {
				t.Fatalf("want at least 2 sample states, got %d", len(states))
			}
			if len(typ.EnumArgs()) < 2 {
				t.Fatalf("want at least 2 sample args")
			}
			// The empty state must be included.
			found := false
			for _, s := range states {
				if s.Equal(typ.New()) {
					found = true
				}
			}
			if !found {
				t.Error("EnumStates must include the initial state")
			}
			// Samples must be pairwise independent (cloned).
			for _, s := range states {
				c := s.Clone()
				if !c.Equal(s) {
					t.Error("clone differs from original")
				}
			}
		})
	}
}
