package adt

import "strconv"

// Abstract is the synthetic data type used by the paper's abstract-data-
// type simulation model (§5.5.2): an object with σ parameter-less
// operations ("op0" … "opσ−1") whose conflict behaviour is given entirely
// by a randomly generated compatibility table rather than by real
// semantics. Every operation returns ok and leaves the (empty) state
// unchanged; the simulator pairs Abstract objects with generated tables
// from the compat package.
type Abstract struct {
	// Sigma is the number of operations defined on the object. The
	// paper's experiments use σ = 4.
	Sigma int
}

// AbstractOpName returns the name of abstract operation i.
func AbstractOpName(i int) string { return "op" + strconv.Itoa(i) }

// abstractState is the (information-free) state of an Abstract object.
type abstractState struct{}

func (abstractState) Clone() State       { return abstractState{} }
func (abstractState) Equal(o State) bool { _, ok := o.(abstractState); return ok }
func (abstractState) String() string     { return "abstract{}" }

// Name implements Type.
func (Abstract) Name() string { return "abstract" }

// New implements Type.
func (Abstract) New() State { return abstractState{} }

// Specs implements Type.
func (a Abstract) Specs() []OpSpec {
	specs := make([]OpSpec, a.Sigma)
	for i := range specs {
		specs[i] = OpSpec{Name: AbstractOpName(i)}
	}
	return specs
}

// Apply implements Type.
func (a Abstract) Apply(s State, op Op) (Ret, error) {
	ret, _, err := a.ApplyU(s, op)
	return ret, err
}

// ApplyU implements Undoer. Abstract operations carry no state, so undo
// is trivial.
func (a Abstract) ApplyU(s State, op Op) (Ret, UndoRec, error) {
	if _, ok := s.(abstractState); !ok {
		return Ret{}, nil, badOp(a, op)
	}
	for i := 0; i < a.Sigma; i++ {
		if op.Name == AbstractOpName(i) {
			return RetOK, nil, nil
		}
	}
	return Ret{}, nil, badOp(a, op)
}

// Undo implements Undoer.
func (a Abstract) Undo(s State, op Op, _ UndoRec, _ []UndoEntry) error {
	if _, ok := s.(abstractState); !ok {
		return badOp(a, op)
	}
	return nil
}
