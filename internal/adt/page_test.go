package adt

import "testing"

func TestPageReadWrite(t *testing.T) {
	p := Page{}
	s := p.New()
	if r := MustApply(p, s, Op{Name: PageRead}); r != (Ret{Code: Value, Val: 0}) {
		t.Errorf("fresh page read = %v", r)
	}
	if r := MustApply(p, s, Op{Name: PageWrite, Arg: 42, HasArg: true}); r != RetOK {
		t.Errorf("write = %v", r)
	}
	if r := MustApply(p, s, Op{Name: PageRead}); r != (Ret{Code: Value, Val: 42}) {
		t.Errorf("read after write = %v", r)
	}
}

func TestPageWriteNeedsArg(t *testing.T) {
	p := Page{}
	if _, err := p.Apply(p.New(), Op{Name: PageWrite}); err == nil {
		t.Error("write without a value should error")
	}
}

func TestPageUndoSimple(t *testing.T) {
	p := Page{}
	s := &PageState{V: 1}
	ret, rec, err := p.ApplyU(s, Op{Name: PageWrite, Arg: 5, HasArg: true})
	if err != nil || ret != RetOK {
		t.Fatalf("ApplyU: %v %v", ret, err)
	}
	if err := p.Undo(s, Op{Name: PageWrite, Arg: 5, HasArg: true}, rec, nil); err != nil {
		t.Fatal(err)
	}
	if s.V != 1 {
		t.Errorf("undo restored %d, want 1", s.V)
	}
}

// TestPageUndoWriteChain covers §4.4: T1 writes, T2 writes on top
// ((write, write) is recoverable), then T1 aborts. The page must keep
// T2's value; if T2 later aborts too, the page must fall back to the
// original value — the before-image chain fix-up.
func TestPageUndoWriteChain(t *testing.T) {
	p := Page{}
	s := &PageState{V: 1}
	w1 := Op{Name: PageWrite, Arg: 5, HasArg: true}
	w2 := Op{Name: PageWrite, Arg: 9, HasArg: true}
	_, rec1, _ := p.ApplyU(s, w1)
	_, rec2, _ := p.ApplyU(s, w2)

	// T1 aborts first: state keeps T2's write.
	if err := p.Undo(s, w1, rec1, []UndoEntry{{Op: w2, Rec: rec2}}); err != nil {
		t.Fatal(err)
	}
	if s.V != 9 {
		t.Fatalf("after undoing earlier write state = %d, want 9", s.V)
	}
	// T2 aborts second: state falls back to the original value 1.
	if err := p.Undo(s, w2, rec2, nil); err != nil {
		t.Fatal(err)
	}
	if s.V != 1 {
		t.Fatalf("after undoing both writes state = %d, want 1", s.V)
	}
}

// TestPageUndoWriteChainCommitLater: T1 writes, T2 writes, T2 aborts
// (reverse order). T2's undo restores T1's value.
func TestPageUndoWriteChainReverse(t *testing.T) {
	p := Page{}
	s := &PageState{V: 1}
	w1 := Op{Name: PageWrite, Arg: 5, HasArg: true}
	w2 := Op{Name: PageWrite, Arg: 9, HasArg: true}
	_, rec1, _ := p.ApplyU(s, w1)
	_, rec2, _ := p.ApplyU(s, w2)

	if err := p.Undo(s, w2, rec2, nil); err != nil {
		t.Fatal(err)
	}
	if s.V != 5 {
		t.Fatalf("after undoing later write state = %d, want 5", s.V)
	}
	if err := p.Undo(s, w1, rec1, nil); err != nil {
		t.Fatal(err)
	}
	if s.V != 1 {
		t.Fatalf("after undoing both state = %d, want 1", s.V)
	}
}

func TestPageStateEqualClone(t *testing.T) {
	a := &PageState{V: 3}
	b := a.Clone().(*PageState)
	if !a.Equal(b) {
		t.Error("clone should equal original")
	}
	b.V = 4
	if a.Equal(b) {
		t.Error("mutated clone should differ")
	}
	if a.Equal(NewSetState()) {
		t.Error("page never equals a set")
	}
	if a.String() != "page{3}" {
		t.Errorf("String = %q", a.String())
	}
}
