package adt

import (
	"fmt"
	"strings"
)

// Stack is the stack object of §3.2.2 with Push, Pop and Top. Push adds
// an element to the top and returns ok. Pop removes and returns the top
// element, or null if the stack is empty. Top returns the top element
// without removing it, or null if the stack is empty.
type Stack struct{}

// Stack operation names.
const (
	StackPush = "push"
	StackPop  = "pop"
	StackTop  = "top"
)

// stackCell is one element of a stack. Each pushed cell carries a unique
// token so semantic undo can remove exactly the cell a given push created
// even after later pushes have buried it (undo of a push "involves
// removing the pushed element from the stack", §4.4).
type stackCell struct {
	v   int
	tok uint64
}

// StackState is the state of a Stack; the last cell is the top.
type StackState struct {
	cells   []stackCell
	nextTok uint64
}

// NewStackState returns a stack holding the given values bottom-to-top.
func NewStackState(vals ...int) *StackState {
	s := &StackState{}
	for _, v := range vals {
		s.push(v)
	}
	return s
}

func (s *StackState) push(v int) uint64 {
	s.nextTok++
	s.cells = append(s.cells, stackCell{v: v, tok: s.nextTok})
	return s.nextTok
}

// Values returns the stack contents bottom-to-top.
func (s *StackState) Values() []int {
	out := make([]int, len(s.cells))
	for i, c := range s.cells {
		out[i] = c.v
	}
	return out
}

// Len returns the number of elements on the stack.
func (s *StackState) Len() int { return len(s.cells) }

// Clone implements State.
func (s *StackState) Clone() State {
	c := &StackState{cells: make([]stackCell, len(s.cells)), nextTok: s.nextTok}
	copy(c.cells, s.cells)
	return c
}

// Equal implements State. Equality compares values only, not undo
// tokens: two stacks with the same elements in the same order are the
// same abstract state.
func (s *StackState) Equal(o State) bool {
	q, ok := o.(*StackState)
	if !ok || len(s.cells) != len(q.cells) {
		return false
	}
	for i := range s.cells {
		if s.cells[i].v != q.cells[i].v {
			return false
		}
	}
	return true
}

// String implements State.
func (s *StackState) String() string {
	var b strings.Builder
	b.WriteString("stack[")
	for i, c := range s.cells {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", c.v)
	}
	b.WriteString("]")
	return b.String()
}

// Name implements Type.
func (Stack) Name() string { return "stack" }

// New implements Type.
func (Stack) New() State { return &StackState{} }

// Specs implements Type.
func (Stack) Specs() []OpSpec {
	return []OpSpec{
		{Name: StackPush, HasArg: true},
		{Name: StackPop},
		{Name: StackTop, ReadOnly: true},
	}
}

// Apply implements Type. Implemented directly (not via ApplyU) so the
// no-undo paths never allocate a discarded undo record.
func (t Stack) Apply(s State, op Op) (Ret, error) {
	ss, ok := s.(*StackState)
	if !ok {
		return Ret{}, badOp(t, op)
	}
	switch op.Name {
	case StackPush:
		if !op.HasArg {
			return Ret{}, badOp(t, op)
		}
		ss.push(op.Arg)
		return RetOK, nil
	case StackPop:
		if len(ss.cells) == 0 {
			return Ret{Code: Null}, nil
		}
		top := ss.cells[len(ss.cells)-1]
		ss.cells = ss.cells[:len(ss.cells)-1]
		return Ret{Code: Value, Val: top.v}, nil
	case StackTop:
		if len(ss.cells) == 0 {
			return Ret{Code: Null}, nil
		}
		return Ret{Code: Value, Val: ss.cells[len(ss.cells)-1].v}, nil
	}
	return Ret{}, badOp(t, op)
}

// CopyFrom implements Copier.
func (s *StackState) CopyFrom(src State) bool {
	q, ok := src.(*StackState)
	if !ok {
		return false
	}
	s.cells = append(s.cells[:0], q.cells...)
	s.nextTok = q.nextTok
	return true
}

// stackPushRec identifies the pushed cell by token.
type stackPushRec struct {
	tok uint64
}

// stackPopRec remembers the removed cell and its depth from the bottom,
// so undo can re-insert it beneath any cells pushed after the pop
// (push is recoverable relative to pop, so such cells may exist).
type stackPopRec struct {
	cell  stackCell
	depth int
	empty bool
}

// ApplyU implements Undoer.
func (t Stack) ApplyU(s State, op Op) (Ret, UndoRec, error) {
	ss, ok := s.(*StackState)
	if !ok {
		return Ret{}, nil, badOp(t, op)
	}
	switch op.Name {
	case StackPush:
		if !op.HasArg {
			return Ret{}, nil, badOp(t, op)
		}
		tok := ss.push(op.Arg)
		return RetOK, &stackPushRec{tok: tok}, nil
	case StackPop:
		if len(ss.cells) == 0 {
			return Ret{Code: Null}, &stackPopRec{empty: true}, nil
		}
		top := ss.cells[len(ss.cells)-1]
		rec := &stackPopRec{cell: top, depth: len(ss.cells) - 1}
		ss.cells = ss.cells[:len(ss.cells)-1]
		return Ret{Code: Value, Val: top.v}, rec, nil
	case StackTop:
		if len(ss.cells) == 0 {
			return Ret{Code: Null}, nil, nil
		}
		return Ret{Code: Value, Val: ss.cells[len(ss.cells)-1].v}, nil, nil
	}
	return Ret{}, nil, badOp(t, op)
}

// Undo implements Undoer.
func (t Stack) Undo(s State, op Op, rec UndoRec, later []UndoEntry) error {
	ss, ok := s.(*StackState)
	if !ok {
		return badOp(t, op)
	}
	switch op.Name {
	case StackTop:
		return nil
	case StackPush:
		tok := rec.(*stackPushRec).tok
		for i := range ss.cells {
			if ss.cells[i].tok == tok {
				ss.cells = append(ss.cells[:i], ss.cells[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("adt: stack undo: pushed cell %d not found", tok)
	case StackPop:
		pr := rec.(*stackPopRec)
		if pr.empty {
			return nil
		}
		if pr.depth > len(ss.cells) {
			return fmt.Errorf("adt: stack undo: pop depth %d beyond stack of %d", pr.depth, len(ss.cells))
		}
		ss.cells = append(ss.cells, stackCell{})
		copy(ss.cells[pr.depth+1:], ss.cells[pr.depth:])
		ss.cells[pr.depth] = pr.cell
		return nil
	}
	return badOp(t, op)
}

// EnumStates implements Enumerable: all stacks of depth ≤ 2 over {1, 2},
// plus one deeper stack. Stack semantics only inspect the top element,
// so this sample distinguishes every behaviourally distinct case.
func (Stack) EnumStates() []State {
	return []State{
		NewStackState(),
		NewStackState(1),
		NewStackState(2),
		NewStackState(1, 1),
		NewStackState(1, 2),
		NewStackState(2, 1),
		NewStackState(2, 2),
		NewStackState(1, 2, 1),
	}
}

// EnumArgs implements Enumerable.
func (Stack) EnumArgs() []int { return []int{1, 2} }
