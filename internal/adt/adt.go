// Package adt implements the atomic data types of Badrinath &
// Ramamritham's "Semantics-Based Concurrency Control: Beyond
// Commutativity" (§3.2): Page, Stack, Set and Table.
//
// Each type defines a set of states and a set of operations. The
// specification of an operation is a total function S -> S x V: for a
// state s, Apply produces the successor state state(o, s) and the return
// value return(o, s). Those two components are exactly what the paper's
// Definitions 1 and 2 (recoverability and commutativity) are stated in
// terms of, and the compat package derives the paper's compatibility
// tables by enumerating them.
//
// Every operation returns a value — at least a status code — matching the
// paper's footnote 1.
package adt

import (
	"fmt"
	"strconv"
)

// Code is the status portion of an operation's return value.
type Code uint8

// Return status codes used across the built-in types.
const (
	OK       Code = iota // operation completed ("ok")
	Fail                 // operation failed ("Failure")
	Yes                  // membership test positive
	No                   // membership test negative
	Null                 // stack operation on an empty stack
	NotFound             // table lookup miss ("not_found")
	Value                // a data-carrying return; Val holds the data
	Count                // a count-carrying return; Val holds the count
)

// String returns the paper's name for the code.
func (c Code) String() string {
	switch c {
	case OK:
		return "ok"
	case Fail:
		return "failure"
	case Yes:
		return "yes"
	case No:
		return "no"
	case Null:
		return "null"
	case NotFound:
		return "not_found"
	case Value:
		return "value"
	case Count:
		return "count"
	}
	return "code(" + strconv.Itoa(int(c)) + ")"
}

// Ret is an operation's return value: a status code plus, for
// data-carrying returns (Value, Count), the datum itself. Ret is
// comparable with ==, which is what the recoverability definition needs.
type Ret struct {
	Code Code
	Val  int
}

// RetOK is the plain success return.
var RetOK = Ret{Code: OK}

// String renders the return the way the paper writes it, e.g. "ok" or
// "value(3)".
func (r Ret) String() string {
	switch r.Code {
	case Value:
		return fmt.Sprintf("value(%d)", r.Val)
	case Count:
		return fmt.Sprintf("count(%d)", r.Val)
	default:
		return r.Code.String()
	}
}

// Op is an operation invocation: a name plus its input parameter(s).
//
// Arg is the parameter the paper's Yes-SP / Yes-DP table entries compare
// ("Same input Parameter" / "Different input Parameter"): the element for
// set operations, the key for table operations, the pushed value for
// stack pushes, the written value for page writes. Aux carries a second
// datum where the operation needs one (the item in table insert/modify).
type Op struct {
	Name   string
	Arg    int
	HasArg bool
	Aux    int
	HasAux bool
}

// SameArg reports whether two operations have equal input parameters.
// Operations without parameters are never "same parameter" in the sense
// of the paper's Yes-SP entries (those entries only appear for
// parameterised pairs).
func (o Op) SameArg(p Op) bool {
	return o.HasArg && p.HasArg && o.Arg == p.Arg
}

// String renders the invocation, e.g. "insert(3)" or "size".
func (o Op) String() string {
	switch {
	case o.HasArg && o.HasAux:
		return fmt.Sprintf("%s(%d,%d)", o.Name, o.Arg, o.Aux)
	case o.HasArg:
		return fmt.Sprintf("%s(%d)", o.Name, o.Arg)
	default:
		return o.Name
	}
}

// OpSpec describes one operation of a type: its name, arity, and whether
// it can modify the state (ReadOnly operations never need undo).
type OpSpec struct {
	Name     string
	HasArg   bool
	HasAux   bool
	ReadOnly bool
}

// Invoke builds an Op for this spec with the given parameters. Extra
// parameters beyond the spec's arity are ignored; missing ones are zero.
func (s OpSpec) Invoke(args ...int) Op {
	op := Op{Name: s.Name}
	if s.HasArg && len(args) > 0 {
		op.Arg, op.HasArg = args[0], true
	}
	if s.HasAux && len(args) > 1 {
		op.Aux, op.HasAux = args[1], true
	}
	return op
}

// State is an object state. Implementations are mutable; Clone produces
// an independent deep copy (used by the derivation engine, the history
// checker and intentions-list recovery).
type State interface {
	Clone() State
	Equal(State) bool
	fmt.Stringer
}

// Copier is optionally implemented by states that can adopt another
// state's value in place. Long-lived holders — the intentions-list
// abort replay rebuilds the materialised state from the committed base
// on every abort — use it to reuse one allocation instead of cloning
// per rebuild. CopyFrom reports false (receiver unchanged) when src has
// a different concrete type.
type Copier interface {
	State
	CopyFrom(src State) bool
}

// Type is an atomic data type: a state space plus operations.
type Type interface {
	// Name identifies the type ("page", "stack", "set", "table", ...).
	Name() string
	// New returns the initial (empty) state.
	New() State
	// Specs lists the operations the type defines.
	Specs() []OpSpec
	// Apply executes op on s, mutating s, and returns return(op, s).
	// It returns an error only for malformed invocations (unknown
	// operation name, missing parameter).
	Apply(s State, op Op) (Ret, error)
}

// Undoer is implemented by types that support semantic undo-log recovery
// (§4.4 of the paper). ApplyU behaves like Apply but additionally
// captures an undo record; Undo reverses the operation given that record
// and the log entries of uncommitted operations that executed after it
// (needed for before-image chain fix-ups, e.g. undoing a page write that
// a later uncommitted write has overwritten).
type Undoer interface {
	Type
	ApplyU(s State, op Op) (Ret, UndoRec, error)
	Undo(s State, op Op, rec UndoRec, later []UndoEntry) error
}

// UndoRec is an opaque, type-specific undo record. Records are pointers
// so Undo can fix up the records of later entries in place.
type UndoRec interface{}

// UndoEntry pairs a later uncommitted operation with its undo record, as
// seen by Undo.
type UndoEntry struct {
	Op  Op
	Rec UndoRec
}

// Enumerable is implemented by types whose state and parameter spaces can
// be sampled finitely. The compat package derives compatibility tables by
// exhausting these samples; for the built-in types the samples are
// exhaustive up to a size bound, which is sufficient because all four
// types' semantics are insensitive to values outside the sampled range.
type Enumerable interface {
	Type
	// EnumStates returns representative states (including the empty
	// state).
	EnumStates() []State
	// EnumArgs returns representative parameter values.
	EnumArgs() []int
}

// SpecByName returns the OpSpec with the given name, if the type defines
// one.
func SpecByName(t Type, name string) (OpSpec, bool) {
	for _, s := range t.Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return OpSpec{}, false
}

// MustApply is Apply but panics on malformed invocations. It is a
// convenience for tests and examples where the operation is statically
// well-formed.
func MustApply(t Type, s State, op Op) Ret {
	ret, err := t.Apply(s, op)
	if err != nil {
		panic(fmt.Sprintf("adt: %s.Apply(%s): %v", t.Name(), op, err))
	}
	return ret
}

// ApplySeq applies a sequence of operations in order and returns their
// return values.
func ApplySeq(t Type, s State, ops []Op) ([]Ret, error) {
	rets := make([]Ret, 0, len(ops))
	for _, op := range ops {
		r, err := t.Apply(s, op)
		if err != nil {
			return rets, err
		}
		rets = append(rets, r)
	}
	return rets, nil
}

func badOp(t Type, op Op) error {
	return fmt.Errorf("adt: type %s has no operation %q (or missing parameter)", t.Name(), op.Name)
}
