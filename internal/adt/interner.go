package adt

// OpID is a small dense integer identifying an operation name within one
// Interner's universe. The compat package's compiled classifiers index
// their dense relation arrays by OpID, turning the per-log-entry table
// lookup of Figure 2 into an array load. NoOpID marks a name outside the
// universe.
type OpID int32

// NoOpID is returned for names the interner has never seen.
const NoOpID OpID = -1

// Interner assigns dense OpIDs to operation names. It is built once
// (per compatibility table / per object) and read-only afterwards, so it
// is safe for concurrent readers.
type Interner struct {
	ids   map[string]OpID
	names []string
}

// NewInterner interns the given names in order: names[i] gets OpID(i).
// Duplicate names keep their first id.
func NewInterner(names []string) *Interner {
	in := &Interner{
		ids:   make(map[string]OpID, len(names)),
		names: make([]string, 0, len(names)),
	}
	for _, n := range names {
		if _, ok := in.ids[n]; ok {
			continue
		}
		in.ids[n] = OpID(len(in.names))
		in.names = append(in.names, n)
	}
	return in
}

// ID returns the OpID for name, or NoOpID.
func (in *Interner) ID(name string) OpID {
	if id, ok := in.ids[name]; ok {
		return id
	}
	return NoOpID
}

// Len returns the number of interned names.
func (in *Interner) Len() int { return len(in.names) }

// Name returns the name interned at id.
func (in *Interner) Name(id OpID) string { return in.names[id] }
