package adt

import "testing"

func tins(k, v int) Op { return Op{Name: TableInsert, Arg: k, HasArg: true, Aux: v, HasAux: true} }
func tdel(k int) Op    { return Op{Name: TableDelete, Arg: k, HasArg: true} }
func tlku(k int) Op    { return Op{Name: TableLookup, Arg: k, HasArg: true} }
func tmod(k, v int) Op { return Op{Name: TableModify, Arg: k, HasArg: true, Aux: v, HasAux: true} }
func tsiz() Op         { return Op{Name: TableSize} }

func TestKTableSemantics(t *testing.T) {
	tb := KTable{}
	s := tb.New()
	if r := MustApply(tb, s, tlku(1)); r.Code != NotFound {
		t.Errorf("lookup empty = %v", r)
	}
	if r := MustApply(tb, s, tsiz()); r != (Ret{Code: Count, Val: 0}) {
		t.Errorf("size empty = %v", r)
	}
	if r := MustApply(tb, s, tins(1, 10)); r != RetOK {
		t.Errorf("insert = %v", r)
	}
	if r := MustApply(tb, s, tins(1, 20)); r.Code != Fail {
		t.Errorf("duplicate insert = %v (keys are unique)", r)
	}
	if r := MustApply(tb, s, tlku(1)); r != (Ret{Code: Value, Val: 10}) {
		t.Errorf("lookup = %v", r)
	}
	if r := MustApply(tb, s, tmod(1, 30)); r != RetOK {
		t.Errorf("modify = %v", r)
	}
	if r := MustApply(tb, s, tlku(1)); r != (Ret{Code: Value, Val: 30}) {
		t.Errorf("lookup after modify = %v", r)
	}
	if r := MustApply(tb, s, tmod(9, 1)); r.Code != Fail {
		t.Errorf("modify absent = %v", r)
	}
	if r := MustApply(tb, s, tsiz()); r != (Ret{Code: Count, Val: 1}) {
		t.Errorf("size = %v", r)
	}
	if r := MustApply(tb, s, tdel(1)); r != RetOK {
		t.Errorf("delete = %v", r)
	}
	if r := MustApply(tb, s, tdel(1)); r.Code != Fail {
		t.Errorf("delete absent = %v", r)
	}
}

func TestKTableUndoInsertDelete(t *testing.T) {
	tb := KTable{}
	s := NewKTableState(1, 10)

	_, recIns, _ := tb.ApplyU(s, tins(2, 20))
	_, recDel, _ := tb.ApplyU(s, tdel(1))

	if err := tb.Undo(s, tdel(1), recDel, nil); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(1); !ok || v != 10 {
		t.Errorf("undo delete: key 1 = %v,%v", v, ok)
	}
	if err := tb.Undo(s, tins(2, 20), recIns, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(2); ok {
		t.Error("undo insert left the key behind")
	}
}

func TestKTableUndoFailedOpsAreNoops(t *testing.T) {
	tb := KTable{}
	s := NewKTableState(1, 10)
	_, recIns, _ := tb.ApplyU(s, tins(1, 99)) // fails: key present
	_, recDel, _ := tb.ApplyU(s, tdel(7))     // fails: key absent
	_, recMod, _ := tb.ApplyU(s, tmod(7, 1))  // fails: key absent
	for _, u := range []struct {
		op  Op
		rec UndoRec
	}{{tins(1, 99), recIns}, {tdel(7), recDel}, {tmod(7, 1), recMod}} {
		if err := tb.Undo(s, u.op, u.rec, nil); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := s.Get(1); v != 10 || s.Len() != 1 {
		t.Errorf("state disturbed: %v", s)
	}
}

// TestKTableUndoModifyChain mirrors the page write chain: modify/modify
// of the same key is mutually recoverable (both return Success whenever
// the key exists), so undo must fix up the later modify's before-image.
func TestKTableUndoModifyChain(t *testing.T) {
	tb := KTable{}
	s := NewKTableState(1, 10)
	m1, m2 := tmod(1, 20), tmod(1, 30)
	_, rec1, _ := tb.ApplyU(s, m1)
	_, rec2, _ := tb.ApplyU(s, m2)

	// Earlier modify aborts: later one's effect must stand.
	if err := tb.Undo(s, m1, rec1, []UndoEntry{{Op: m2, Rec: rec2}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(1); v != 30 {
		t.Fatalf("key 1 = %d, want 30", v)
	}
	// Later modify aborts afterwards: fall back to the original item.
	if err := tb.Undo(s, m2, rec2, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(1); v != 10 {
		t.Fatalf("key 1 = %d, want 10", v)
	}
}

// TestKTableUndoModifyChainDifferentKeys: the fix-up must only chain
// modifies of the same key.
func TestKTableUndoModifyChainDifferentKeys(t *testing.T) {
	tb := KTable{}
	s := NewKTableState(1, 10, 2, 20)
	m1, m2 := tmod(1, 11), tmod(2, 22)
	_, rec1, _ := tb.ApplyU(s, m1)
	_, rec2, _ := tb.ApplyU(s, m2)
	if err := tb.Undo(s, m1, rec1, []UndoEntry{{Op: m2, Rec: rec2}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(1); v != 10 {
		t.Errorf("key 1 = %d, want 10 (restored)", v)
	}
	if v, _ := s.Get(2); v != 22 {
		t.Errorf("key 2 = %d, want 22 (untouched)", v)
	}
}

func TestKTableStateHelpers(t *testing.T) {
	s := NewKTableState(2, 20, 1, 10)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if keys := s.Keys(); len(keys) != 2 || keys[0] != 1 || keys[1] != 2 {
		t.Errorf("Keys = %v", keys)
	}
	if s.String() != "table{1:10 2:20}" {
		t.Errorf("String = %q", s.String())
	}
	c := s.Clone().(*KTableState)
	MustApply(KTable{}, c, tdel(1))
	if _, ok := s.Get(1); !ok {
		t.Error("clone mutation leaked")
	}
	if s.Equal(c) || s.Equal(NewKTableState(1, 10, 2, 99)) {
		t.Error("unequal tables compared equal")
	}
	defer func() {
		if recover() == nil {
			t.Error("odd kv list should panic")
		}
	}()
	NewKTableState(1)
}

func TestAbstractType(t *testing.T) {
	a := Abstract{Sigma: 4}
	if len(a.Specs()) != 4 {
		t.Fatalf("specs = %d", len(a.Specs()))
	}
	s := a.New()
	for i := 0; i < 4; i++ {
		ret, rec, err := a.ApplyU(s, Op{Name: AbstractOpName(i)})
		if err != nil || ret != RetOK {
			t.Fatalf("op%d: %v %v", i, ret, err)
		}
		if err := a.Undo(s, Op{Name: AbstractOpName(i)}, rec, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Apply(s, Op{Name: "op9"}); err == nil {
		t.Error("out-of-range abstract op should error")
	}
}
