package adt

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// opSeq is a generated operation sequence for one type; it implements
// quick.Generator so testing/quick can synthesise random programs.
type opSeq struct {
	typIdx int
	ops    []Op
}

var quickTypes = []Enumerable{Page{}, Stack{}, Set{}, KTable{}}

// Generate implements quick.Generator.
func (opSeq) Generate(r *rand.Rand, size int) reflect.Value {
	ti := r.Intn(len(quickTypes))
	typ := quickTypes[ti]
	specs := typ.Specs()
	args := typ.EnumArgs()
	n := r.Intn(size%12 + 1)
	ops := make([]Op, n)
	for i := range ops {
		sp := specs[r.Intn(len(specs))]
		ops[i] = sp.Invoke(args[r.Intn(len(args))], args[r.Intn(len(args))])
	}
	return reflect.ValueOf(opSeq{typIdx: ti, ops: ops})
}

// TestQuickCloneIndependence: applying a program to a clone never
// disturbs the original, and the clone ends in the same state as a
// fresh replay.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(seq opSeq) bool {
		typ := quickTypes[seq.typIdx]
		orig := typ.New()
		for _, op := range seq.ops[:len(seq.ops)/2] {
			MustApply(typ, orig, op)
		}
		snapshot := orig.Clone()
		work := orig.Clone()
		for _, op := range seq.ops[len(seq.ops)/2:] {
			MustApply(typ, work, op)
		}
		return orig.Equal(snapshot)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterminism: the specification is a total function — the
// same program from the same state yields identical returns and states.
func TestQuickDeterminism(t *testing.T) {
	f := func(seq opSeq) bool {
		typ := quickTypes[seq.typIdx]
		s1, s2 := typ.New(), typ.New()
		r1, err1 := ApplySeq(typ, s1, seq.ops)
		r2, err2 := ApplySeq(typ, s2, seq.ops)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if len(r1) != len(r2) {
			return false
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				return false
			}
		}
		return s1.Equal(s2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickEqualIsEquivalence: Equal is reflexive and symmetric across
// randomly generated states (transitivity follows from the two given
// determinism, but is spot-checked too).
func TestQuickEqualIsEquivalence(t *testing.T) {
	f := func(a, b opSeq) bool {
		typ := quickTypes[a.typIdx]
		sa := typ.New()
		ApplySeq(typ, sa, a.ops)
		if !sa.Equal(sa) {
			return false // reflexivity
		}
		if b.typIdx != a.typIdx {
			return true // only compare same-type states
		}
		sb := typ.New()
		ApplySeq(typ, sb, b.ops)
		return sa.Equal(sb) == sb.Equal(sa) // symmetry
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickUndoLastIsInverse: for every type and random prefix,
// applying any single operation and immediately undoing it (no later
// entries) restores the prior state exactly.
func TestQuickUndoLastIsInverse(t *testing.T) {
	f := func(seq opSeq, extra uint8) bool {
		typ := quickTypes[seq.typIdx]
		und := typ.(Undoer)
		s := typ.New()
		ApplySeq(typ, s, seq.ops)
		before := s.Clone()

		specs := typ.Specs()
		args := typ.EnumArgs()
		sp := specs[int(extra)%len(specs)]
		op := sp.Invoke(args[int(extra)%len(args)], args[int(extra/16)%len(args)])

		_, rec, err := und.ApplyU(s, op)
		if err != nil {
			return false
		}
		if err := und.Undo(s, op, rec, nil); err != nil {
			return false
		}
		return s.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickRecoverabilityDefinition: re-verify Definition 1 on random
// (state, op, op) triples — the derivation engine's table entry must
// agree with a direct check whenever it claims recoverability.
func TestQuickRecoverabilityDefinition(t *testing.T) {
	f := func(seq opSeq, i, j uint8) bool {
		typ := quickTypes[seq.typIdx]
		specs := typ.Specs()
		args := typ.EnumArgs()
		spReq := specs[int(i)%len(specs)]
		spExec := specs[int(j)%len(specs)]
		req := spReq.Invoke(args[int(i)%len(args)], args[int(j)%len(args)])
		exec := spExec.Invoke(args[int(j)%len(args)], args[int(i)%len(args)])

		s := typ.New()
		ApplySeq(typ, s, seq.ops)

		// Direct Definition 1 check on this concrete state.
		sa := s.Clone()
		MustApply(typ, sa, exec)
		withExec := MustApply(typ, sa, req)
		sb := s.Clone()
		without := MustApply(typ, sb, req)

		// If the pairwise relation holds for all states it must hold
		// here; we only test that direction (a single state cannot
		// refute a universally quantified No).
		holdsHere := withExec == without
		universal := recoverableForAllStates(typ, req, exec)
		if universal && !holdsHere {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// recoverableForAllStates mirrors the derivation engine's inner loop.
func recoverableForAllStates(typ Enumerable, req, exec Op) bool {
	for _, s := range typ.EnumStates() {
		sa := s.Clone()
		MustApply(typ, sa, exec)
		withExec := MustApply(typ, sa, req)
		sb := s.Clone()
		without := MustApply(typ, sb, req)
		if withExec != without {
			return false
		}
	}
	return true
}
