package adt

import (
	"math/rand"
	"testing"
)

func push(v int) Op { return Op{Name: StackPush, Arg: v, HasArg: true} }

func TestStackSemantics(t *testing.T) {
	st := Stack{}
	s := st.New()
	if r := MustApply(st, s, Op{Name: StackPop}); r.Code != Null {
		t.Errorf("pop on empty = %v", r)
	}
	if r := MustApply(st, s, Op{Name: StackTop}); r.Code != Null {
		t.Errorf("top on empty = %v", r)
	}
	MustApply(st, s, push(4))
	MustApply(st, s, push(2))
	if r := MustApply(st, s, Op{Name: StackTop}); r != (Ret{Code: Value, Val: 2}) {
		t.Errorf("top = %v", r)
	}
	if r := MustApply(st, s, Op{Name: StackPop}); r != (Ret{Code: Value, Val: 2}) {
		t.Errorf("pop = %v", r)
	}
	if got := s.(*StackState).Values(); len(got) != 1 || got[0] != 4 {
		t.Errorf("remaining = %v", got)
	}
}

// TestStackUndoPushInterleaved is the paper's flagship example: two
// pushes by different transactions; the earlier one aborts; the later
// one's element must survive (no cascading abort, exact state as if the
// aborted push never happened).
func TestStackUndoPushInterleaved(t *testing.T) {
	st := Stack{}
	s := NewStackState(9)
	_, rec1, _ := st.ApplyU(s, push(4)) // T1
	_, rec2, _ := st.ApplyU(s, push(2)) // T2

	if err := st.Undo(s, push(4), rec1, []UndoEntry{{Op: push(2), Rec: rec2}}); err != nil {
		t.Fatal(err)
	}
	got := s.Values()
	want := []int{9, 2}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("after undo stack = %v, want %v", got, want)
	}
}

// TestStackUndoPopWithLaterPush: T1 pops, T2 pushes (push RR pop), T1
// aborts. The popped cell must be re-inserted beneath T2's push.
func TestStackUndoPopWithLaterPush(t *testing.T) {
	st := Stack{}
	s := NewStackState(1, 2, 3)
	popOp := Op{Name: StackPop}
	ret, recPop, _ := st.ApplyU(s, popOp)
	if ret != (Ret{Code: Value, Val: 3}) {
		t.Fatalf("pop = %v", ret)
	}
	_, _, _ = st.ApplyU(s, push(7))

	if err := st.Undo(s, popOp, recPop, nil); err != nil {
		t.Fatal(err)
	}
	got := s.Values()
	want := []int{1, 2, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("stack = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stack = %v, want %v", got, want)
		}
	}
}

func TestStackUndoPopEmpty(t *testing.T) {
	st := Stack{}
	s := NewStackState()
	popOp := Op{Name: StackPop}
	_, rec, _ := st.ApplyU(s, popOp)
	if err := st.Undo(s, popOp, rec, nil); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("stack should stay empty, got %v", s.Values())
	}
}

func TestStackUndoTopIsNoop(t *testing.T) {
	st := Stack{}
	s := NewStackState(5)
	topOp := Op{Name: StackTop}
	_, rec, _ := st.ApplyU(s, topOp)
	if err := st.Undo(s, topOp, rec, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Values(); len(got) != 1 || got[0] != 5 {
		t.Errorf("stack changed: %v", got)
	}
}

func TestStackEqualIgnoresTokens(t *testing.T) {
	a := NewStackState(1, 2)
	b := NewStackState()
	// Build b with interleaved push/pop so its tokens differ.
	st := Stack{}
	MustApply(st, b, push(1))
	MustApply(st, b, push(9))
	MustApply(st, b, Op{Name: StackPop})
	MustApply(st, b, push(2))
	if !a.Equal(b) {
		t.Errorf("%v should equal %v regardless of tokens", a, b)
	}
	if a.Equal(NewStackState(1)) || a.Equal(NewStackState(1, 3)) {
		t.Error("different stacks compared equal")
	}
	if a.String() != "stack[1 2]" {
		t.Errorf("String = %q", a.String())
	}
}

// TestStackUndoRandomized: random interleavings of protocol-legal
// operation sequences; undoing a random executed prefix subset in
// reverse order must equal replaying the kept operations from the base.
//
// Legality constraint from the stack's recoverability table: once any
// transaction has an uncommitted push or pop, only push may follow
// (pop/top after push or pop conflict and would block). So a legal
// uncommitted suffix is: any number of top/pop while the log has no
// push/pop yet... in practice the simplest legal families are (a) pops
// by a single leading transaction followed by pushes, and (b) pure
// pushes. We generate family (a).
func TestStackUndoRandomized(t *testing.T) {
	st := Stack{}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		depth := rng.Intn(4)
		base := NewStackState()
		for i := 0; i < depth; i++ {
			base.push(rng.Intn(5))
		}
		work := base.Clone().(*StackState)

		nPops := rng.Intn(2)
		nPushes := rng.Intn(4)
		type entry struct {
			op  Op
			rec UndoRec
		}
		var log []entry
		for i := 0; i < nPops; i++ {
			op := Op{Name: StackPop}
			_, rec, err := st.ApplyU(work, op)
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, entry{op, rec})
		}
		for i := 0; i < nPushes; i++ {
			op := push(rng.Intn(5))
			_, rec, err := st.ApplyU(work, op)
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, entry{op, rec})
		}

		// Abort a random subset (in reverse execution order, with
		// later entries passed for fix-ups).
		aborted := make([]bool, len(log))
		for i := range aborted {
			aborted[i] = rng.Intn(2) == 0
		}
		for i := len(log) - 1; i >= 0; i-- {
			if !aborted[i] {
				continue
			}
			var later []UndoEntry
			for j := i + 1; j < len(log); j++ {
				if !aborted[j] { // still present
					later = append(later, UndoEntry{Op: log[j].op, Rec: log[j].rec})
				}
			}
			if err := st.Undo(work, log[i].op, log[i].rec, later); err != nil {
				t.Fatal(err)
			}
		}

		// Replay kept ops from base.
		replay := base.Clone().(*StackState)
		for i, e := range log {
			if !aborted[i] {
				MustApply(st, replay, e.op)
			}
		}
		if !work.Equal(replay) {
			t.Fatalf("trial %d: undo result %v != replay %v (base %v)", trial, work, replay, base)
		}
	}
}
