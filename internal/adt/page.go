package adt

import "strconv"

// Page is the read/write object of §3.2.1: a single storage cell with
// Read and Write operations. Read returns the page's value; Write
// replaces it and returns ok.
type Page struct{}

// Page operation names.
const (
	PageRead  = "read"
	PageWrite = "write"
)

// PageState is the state of a Page: its current value.
type PageState struct {
	V int
}

// Clone implements State.
func (p *PageState) Clone() State { c := *p; return &c }

// Equal implements State.
func (p *PageState) Equal(o State) bool {
	q, ok := o.(*PageState)
	return ok && p.V == q.V
}

// String implements State.
func (p *PageState) String() string { return "page{" + strconv.Itoa(p.V) + "}" }

// Name implements Type.
func (Page) Name() string { return "page" }

// New implements Type. A fresh page holds zero.
func (Page) New() State { return &PageState{} }

// Specs implements Type.
func (Page) Specs() []OpSpec {
	return []OpSpec{
		{Name: PageRead, ReadOnly: true},
		{Name: PageWrite, HasArg: true},
	}
}

// Apply implements Type. It is implemented directly rather than through
// ApplyU so the no-undo paths (intentions-list execution and replay, the
// derivation engine) never allocate a discarded undo record.
func (t Page) Apply(s State, op Op) (Ret, error) {
	ps, ok := s.(*PageState)
	if !ok {
		return Ret{}, badOp(t, op)
	}
	switch op.Name {
	case PageRead:
		return Ret{Code: Value, Val: ps.V}, nil
	case PageWrite:
		if !op.HasArg {
			return Ret{}, badOp(t, op)
		}
		ps.V = op.Arg
		return RetOK, nil
	}
	return Ret{}, badOp(t, op)
}

// CopyFrom implements Copier.
func (p *PageState) CopyFrom(src State) bool {
	q, ok := src.(*PageState)
	if !ok {
		return false
	}
	*p = *q
	return true
}

// pageWriteRec remembers the value overwritten by a write (its
// before-image). It is a pointer so that undoing an *earlier* write can
// re-point a later uncommitted write's before-image (§4.4: "(write,
// write) is recoverable but a write operation needs undo").
type pageWriteRec struct {
	before int
}

// ApplyU implements Undoer.
func (t Page) ApplyU(s State, op Op) (Ret, UndoRec, error) {
	ps, ok := s.(*PageState)
	if !ok {
		return Ret{}, nil, badOp(t, op)
	}
	switch op.Name {
	case PageRead:
		return Ret{Code: Value, Val: ps.V}, nil, nil
	case PageWrite:
		if !op.HasArg {
			return Ret{}, nil, badOp(t, op)
		}
		rec := &pageWriteRec{before: ps.V}
		ps.V = op.Arg
		return RetOK, rec, nil
	}
	return Ret{}, nil, badOp(t, op)
}

// Undo implements Undoer. Undoing a write restores its before-image —
// unless a later uncommitted write exists, in which case the state
// already reflects that later write and must keep doing so; instead the
// later write's before-image chain is fixed up, so that if *it* later
// aborts the page falls back to the value it would have had all along.
func (t Page) Undo(s State, op Op, rec UndoRec, later []UndoEntry) error {
	ps, ok := s.(*PageState)
	if !ok {
		return badOp(t, op)
	}
	switch op.Name {
	case PageRead:
		return nil
	case PageWrite:
		wr := rec.(*pageWriteRec)
		for _, e := range later {
			if e.Op.Name == PageWrite {
				e.Rec.(*pageWriteRec).before = wr.before
				return nil
			}
		}
		ps.V = wr.before
		return nil
	}
	return badOp(t, op)
}

// EnumStates implements Enumerable.
func (Page) EnumStates() []State {
	return []State{&PageState{V: 0}, &PageState{V: 1}, &PageState{V: 2}, &PageState{V: 7}}
}

// EnumArgs implements Enumerable.
func (Page) EnumArgs() []int { return []int{1, 2, 7} }
