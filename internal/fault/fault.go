// Package fault adds crash-stop fault tolerance to the §6 distributed
// design: Crashable wraps a per-site scheduler so it can crash (drop
// every piece of volatile state, fail subsequent calls with
// ErrSiteDown) and restart with presumed-abort recovery against the
// coordinator's decision log (Log).
//
// The durability model is the paper's own (§4.4, intentions lists): a
// site's disk holds the committed base state of every object — commits
// are the only writes to it — plus, for each transaction the site has
// pseudo-committed-and-held (the prepare of the distributed commit
// conversation), a forced record of the transaction's operations, the
// redo log. Everything else — execution logs of uncommitted
// operations, blocked queues, the dependency graph, active and blocked
// transactions — is volatile and lost on crash.
//
// Recovery is presumed abort. On Restart the site rebuilds its objects
// from the durable snapshots, then resolves each prepared (in-doubt)
// transaction against the coordinator's decision log: a logged commit
// is redone by replaying its recorded operations into the committed
// state (the coordinator promised the commit before releasing anyone,
// so the effects must reappear); anything else is presumed aborted and
// discarded — which is correct exactly because the coordinator forces
// its commit decision to the log before releasing any participant.
//
// The simulation shortcut: instead of shadow-writing a disk image on
// every commit, Crash captures the committed base states at the crash
// instant. The two are equivalent — the base state at any instant is
// precisely what a forced-at-commit disk would hold — and the shortcut
// keeps the no-crash path free of fault-tolerance overhead.
//
// Crash-stop means crash-stop: no byzantine behaviour, no network
// partitions without a crash, and a restarted site rejoins empty-handed
// except for its disk. See DESIGN.md, "Failure model".
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/depgraph"
)

// ErrSiteDown is returned by every operation on a crashed site, and by
// Crash itself when the site is already down. The distributed
// coordinator maps it to a ReasonSiteFailed abort of the transactions
// involved.
var ErrSiteDown = errors.New("fault: site is down")

// opRec is one recorded operation of a transaction at this site — the
// redo unit of a prepared record. seq is the site-local observation
// order across all transactions, so interleaved redo reproduces the
// original intentions-log order.
type opRec struct {
	seq uint64
	obj core.ObjectID
	op  adt.Op
}

// reg remembers an explicit registration so a restarted site can
// re-create the object (factory-built objects use the factory).
type reg struct {
	typ   adt.Type
	class compat.Classifier
}

// RecoveryReport says what Restart did with the site's in-doubt
// (prepared) transactions, in ascending id order.
type RecoveryReport struct {
	// Redone transactions had a logged commit outcome: their recorded
	// operations were replayed into the committed state.
	Redone []core.TxnID
	// PresumedAborted transactions had no logged commit outcome: their
	// prepared records were discarded.
	PresumedAborted []core.TxnID
	// Aborted transactions were live (active or blocked) at a restart
	// that reconciled surviving state — a remote site outliving its
	// coordinator — and were rolled back as orphans. Always empty for
	// an in-process Crashable, whose volatile actives die with the
	// crash.
	Aborted []core.TxnID
}

// Crashable is a core.Participant (plus the registration and
// inspection surface a cluster site needs) that can crash and restart.
// It is safe for concurrent use; every call is serialised under one
// mutex, like the scheduler it wraps.
type Crashable struct {
	mu   sync.Mutex
	opts core.Options
	log  Log

	sched *Sched // nil while down
	down  bool
	inc   uint64 // incarnation, bumped on every restart

	// hist is the volatile per-transaction operation history, the
	// prepare record in waiting. seq orders observations across
	// transactions. histFree pools retired history slices so the
	// no-crash steady state allocates nothing per transaction here.
	hist     map[core.TxnID][]opRec
	histFree [][]opRec
	seq      uint64

	// Simulated durable storage: forced prepare records, the committed
	// object snapshots captured at crash, and the registration DDL.
	prepared map[core.TxnID][]opRec
	disk     []core.ObjectSnapshot
	regs     map[core.ObjectID]reg
	factory  func(core.ObjectID) (adt.Type, compat.Classifier)

	// statsBase accumulates counters of previous incarnations so
	// monitoring survives crashes.
	statsBase core.Stats
}

// Sched aliases the concrete scheduler type Crashable wraps, so the
// dist layer can name it without importing core twice.
type Sched = core.Scheduler

// Crashable is a Participant.
var _ core.Participant = (*Crashable)(nil)

// New builds an up Crashable site running a fresh scheduler with the
// given options, recovering against log. The crash-stop simulation
// requires intentions-list recovery (the committed base state is the
// simulated disk) and rejects the state-dependent refinement (redo
// admission must be reproducible from the static tables alone).
func New(opts core.Options, log Log) (*Crashable, error) {
	if opts.Recovery != core.RecoveryIntentions {
		return nil, fmt.Errorf("fault: crash-stop sites require intentions-list recovery (the committed base is the simulated disk)")
	}
	if opts.StateDependent {
		return nil, fmt.Errorf("fault: crash-stop sites cannot use the state-dependent refinement (redo admission must be static)")
	}
	if log == nil {
		return nil, fmt.Errorf("fault: crash-stop sites need a decision log")
	}
	return &Crashable{
		opts:     opts,
		log:      log,
		sched:    core.NewScheduler(opts),
		hist:     make(map[core.TxnID][]opRec),
		prepared: make(map[core.TxnID][]opRec),
		regs:     make(map[core.ObjectID]reg),
	}, nil
}

// Down reports whether the site is currently crashed.
func (c *Crashable) Down() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down
}

// Incarnation returns how many times the site has restarted.
func (c *Crashable) Incarnation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inc
}

// Crash atomically drops every piece of volatile state — the
// scheduler with its execution logs, blocked queues, dependency graph
// and transaction table, and the unforced operation histories — and
// marks the site down. The committed base states are captured as the
// simulated disk image (see the package comment for why this is
// equivalent to forcing them at commit time); prepared records, being
// forced at CommitHold time, survive. Crashing a down site returns
// ErrSiteDown.
func (c *Crashable) Crash() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return ErrSiteDown
	}
	c.disk = c.sched.ExportCommitted()
	c.statsBase.Add(c.sched.StatsSnapshot())
	c.sched = nil
	c.down = true
	clear(c.hist)
	return nil
}

// Restart brings a crashed site back with a fresh scheduler: objects
// are rebuilt from the disk snapshots, then every prepared (in-doubt)
// transaction is resolved against the coordinator's decision log — a
// logged commit is redone (its recorded operations replayed, in the
// original site-local order, and really committed), anything else is
// presumed aborted and discarded. Restarting an up site is an error.
func (c *Crashable) Restart() (RecoveryReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.down {
		return RecoveryReport{}, fmt.Errorf("fault: Restart: site is not down")
	}
	sched := core.NewScheduler(c.opts)
	if c.factory != nil {
		sched.SetFactory(c.factory)
	}
	for _, snap := range c.disk {
		typ, class, err := c.typeOf(snap.ID)
		if err != nil {
			return RecoveryReport{}, err
		}
		if err := sched.RegisterSeeded(snap.ID, typ, class, snap.State); err != nil {
			return RecoveryReport{}, fmt.Errorf("fault: Restart: rebuild object %d: %w", snap.ID, err)
		}
	}

	var rep RecoveryReport
	type redoOp struct {
		txn core.TxnID
		r   opRec
	}
	var redo []redoOp // merged redo stream of every logged-commit txn
	for id, ops := range c.prepared {
		if o, ok := c.log.Lookup(id); ok && o == OutcomeCommit {
			rep.Redone = append(rep.Redone, id)
			for _, r := range ops {
				redo = append(redo, redoOp{txn: id, r: r})
			}
		} else {
			rep.PresumedAborted = append(rep.PresumedAborted, id)
		}
		delete(c.prepared, id)
	}
	sort.Slice(rep.Redone, func(i, j int) bool { return rep.Redone[i] < rep.Redone[j] })
	sort.Slice(rep.PresumedAborted, func(i, j int) bool { return rep.PresumedAborted[i] < rep.PresumedAborted[j] })
	// Replay in the original observation order across transactions, so
	// the rebuilt intentions log folds into the base exactly as the
	// pre-crash one would have. Admission is static (New rejects the
	// state-dependent refinement): every pair of operations co-held
	// before the crash was commute-or-recoverable then, so it is now,
	// and the replay can neither block nor deadlock.
	sort.Slice(redo, func(i, j int) bool { return redo[i].r.seq < redo[j].r.seq })
	var eff core.Effects
	for _, id := range rep.Redone {
		if err := sched.Begin(id); err != nil {
			return RecoveryReport{}, fmt.Errorf("fault: Restart: redo T%d: %w", id, err)
		}
	}
	for _, ro := range redo {
		dec, err := sched.RequestInto(&eff, ro.txn, ro.r.obj, ro.r.op)
		if err != nil {
			return RecoveryReport{}, fmt.Errorf("fault: Restart: redo T%d op on %d: %w", ro.txn, ro.r.obj, err)
		}
		if dec.Outcome != core.Executed {
			return RecoveryReport{}, fmt.Errorf("fault: Restart: redo T%d op on %d did not execute (outcome %d)", ro.txn, ro.r.obj, dec.Outcome)
		}
	}
	for _, id := range rep.Redone {
		st, err := sched.CommitInto(&eff, id)
		if err != nil {
			return RecoveryReport{}, fmt.Errorf("fault: Restart: redo commit T%d: %w", id, err)
		}
		// PseudoCommitted here means a commit dependency on another
		// redo transaction: the cascade commits it when that one lands.
		// Verified below once every commit has been issued.
		_ = st
	}
	for _, id := range rep.Redone {
		if st := sched.TxnState(id); st != "unknown" && st != "committed" {
			return RecoveryReport{}, fmt.Errorf("fault: Restart: redo T%d ended %s, want committed", id, st)
		}
		sched.Forget(id)
	}

	c.sched = sched
	c.down = false
	c.inc++
	c.disk = nil
	return rep, nil
}

// record appends one executed operation to the transaction's volatile
// history, reusing a pooled slice for the first entry. Caller holds
// c.mu.
func (c *Crashable) record(id core.TxnID, obj core.ObjectID, op adt.Op) {
	c.seq++
	h, ok := c.hist[id]
	if !ok {
		if n := len(c.histFree); n > 0 {
			h = c.histFree[n-1]
			c.histFree[n-1] = nil
			c.histFree = c.histFree[:n-1]
		}
	}
	c.hist[id] = append(h, opRec{seq: c.seq, obj: obj, op: op})
}

// histDrop retires a transaction's history, returning the slice to the
// pool (op payloads cleared so the pool pins nothing). Caller holds
// c.mu.
func (c *Crashable) histDrop(id core.TxnID) {
	if h, ok := c.hist[id]; ok {
		delete(c.hist, id)
		clear(h)
		c.histFree = append(c.histFree, h[:0])
	}
}

// preparedDrop retires a resolved prepare record, returning its slice
// to the same pool — the hold-release path is the common case, so it
// must refill the pool too. Caller holds c.mu.
func (c *Crashable) preparedDrop(id core.TxnID) {
	if h, ok := c.prepared[id]; ok {
		delete(c.prepared, id)
		clear(h)
		c.histFree = append(c.histFree, h[:0])
	}
}

// absorb folds one scheduler call's effects into the histories:
// granted requests are executed operations of their transactions,
// retry-aborted transactions lose their histories, and cascaded real
// commits are terminal (the committed base now carries their effects).
// Caller holds c.mu.
func (c *Crashable) absorb(eff *core.Effects) {
	for i := range eff.Grants {
		g := &eff.Grants[i]
		c.record(g.Txn, g.Object, g.Op)
	}
	for _, a := range eff.RetryAborts {
		c.histDrop(a.Txn)
	}
	for _, id := range eff.Committed {
		c.histDrop(id)
	}
}

// ---- core.Participant ----

// Begin implements core.Participant.
func (c *Crashable) Begin(id core.TxnID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return ErrSiteDown
	}
	return c.sched.Begin(id)
}

// RequestInto implements core.Participant, recording executed
// operations (immediate and granted) as redo candidates.
func (c *Crashable) RequestInto(eff *core.Effects, id core.TxnID, obj core.ObjectID, op adt.Op) (core.Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return core.Decision{}, ErrSiteDown
	}
	dec, err := c.sched.RequestInto(eff, id, obj, op)
	if err != nil {
		return dec, err
	}
	switch dec.Outcome {
	case core.Executed:
		c.record(id, obj, op)
	case core.Aborted:
		c.histDrop(id)
	}
	c.absorb(eff)
	return dec, nil
}

// CommitInto implements core.Participant. A single-site real commit
// needs no prepare record: the fold into the committed base is the
// durable write.
func (c *Crashable) CommitInto(eff *core.Effects, id core.TxnID) (core.CommitStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return 0, ErrSiteDown
	}
	st, err := c.sched.CommitInto(eff, id)
	if err != nil {
		return st, err
	}
	if st == core.Committed {
		c.histDrop(id)
	}
	c.absorb(eff)
	return st, nil
}

// CommitHoldInto implements core.Participant: the prepare of the
// distributed commit conversation. On success the transaction's
// operation history is forced to the simulated stable store — the redo
// record recovery replays if the coordinator logged a commit.
func (c *Crashable) CommitHoldInto(eff *core.Effects, id core.TxnID) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return 0, ErrSiteDown
	}
	deg, err := c.sched.CommitHoldInto(eff, id)
	if err != nil {
		return deg, err
	}
	if _, ok := c.prepared[id]; !ok {
		c.prepared[id] = c.hist[id]
		delete(c.hist, id)
	}
	c.absorb(eff)
	return deg, nil
}

// ReleaseInto implements core.Participant. The real commit folds the
// transaction into the committed base, so the prepare record is
// obsolete (a real coordinator would piggyback this as the 2PC ack
// that lets the log truncate).
func (c *Crashable) ReleaseInto(eff *core.Effects, id core.TxnID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return ErrSiteDown
	}
	if err := c.sched.ReleaseInto(eff, id); err != nil {
		return err
	}
	c.preparedDrop(id)
	c.absorb(eff)
	return nil
}

// AbortInto implements core.Participant.
func (c *Crashable) AbortInto(eff *core.Effects, id core.TxnID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return ErrSiteDown
	}
	if err := c.sched.AbortInto(eff, id); err != nil {
		return err
	}
	c.histDrop(id)
	c.absorb(eff)
	return nil
}

// RevokeInto implements core.Participant: the coordinator taking back
// a held pseudo-commit after another participant's crash. The prepare
// record is dropped — the same decision a presumed-abort recovery
// would reach, just without waiting for this site to crash too.
func (c *Crashable) RevokeInto(eff *core.Effects, id core.TxnID, reason core.AbortReason) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return ErrSiteDown
	}
	if err := c.sched.RevokeInto(eff, id, reason); err != nil {
		return err
	}
	c.preparedDrop(id)
	c.histDrop(id)
	c.absorb(eff)
	return nil
}

// WithdrawInto implements core.Participant.
func (c *Crashable) WithdrawInto(eff *core.Effects, id core.TxnID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return ErrSiteDown
	}
	if err := c.sched.WithdrawInto(eff, id); err != nil {
		return err
	}
	c.absorb(eff)
	return nil
}

// OutEdgesAppend implements core.Participant. A down site has no
// edges: its volatile dependency state is gone.
func (c *Crashable) OutEdgesAppend(id core.TxnID, buf []depgraph.Edge) []depgraph.Edge {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return buf[:0]
	}
	return c.sched.OutEdgesAppend(id, buf)
}

// Forget implements core.Participant. Forgetting on a down site is a
// no-op (there is nothing to forget); the prepare record, if any, is
// deliberately kept — it is durable state, resolved only by Release,
// Revoke or recovery.
func (c *Crashable) Forget(id core.TxnID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.histDrop(id)
	if !c.down {
		c.sched.Forget(id)
	}
}

// ---- Registration and inspection (the cluster site surface) ----

// Register creates the object eagerly, recording the registration so a
// restarted site can rebuild it. Fails with ErrSiteDown while down.
func (c *Crashable) Register(id core.ObjectID, typ adt.Type, class compat.Classifier) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return ErrSiteDown
	}
	if err := c.sched.Register(id, typ, class); err != nil {
		return err
	}
	c.regs[id] = reg{typ: typ, class: class}
	return nil
}

// SetFactory installs the lazy object constructor, kept across
// restarts (configuration, not volatile state).
func (c *Crashable) SetFactory(f func(core.ObjectID) (adt.Type, compat.Classifier)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.factory = f
	if !c.down {
		c.sched.SetFactory(f)
	}
}

// StatsSnapshot returns the cumulative counters across every
// incarnation (monitoring continuity; the per-incarnation counters are
// volatile, their sum is kept at each crash).
func (c *Crashable) StatsSnapshot() core.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.statsBase
	if !c.down {
		st.Add(c.sched.StatsSnapshot())
	}
	return st
}

// ObjectState returns the materialised state of an object, or
// ErrSiteDown while down.
func (c *Crashable) ObjectState(id core.ObjectID) (adt.State, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return nil, ErrSiteDown
	}
	return c.sched.ObjectState(id)
}

// CommittedState returns the committed (base) state of an object, or
// ErrSiteDown while down.
func (c *Crashable) CommittedState(id core.ObjectID) (adt.State, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return nil, ErrSiteDown
	}
	return c.sched.CommittedState(id)
}

// TxnState returns a human-readable local state for tests and tools
// ("site-down" while down).
func (c *Crashable) TxnState(id core.TxnID) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return "site-down"
	}
	return c.sched.TxnState(id)
}

// OutDegree returns the transaction's local dependency out-degree
// (zero while down).
func (c *Crashable) OutDegree(id core.TxnID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return 0
	}
	return c.sched.OutDegree(id)
}

// OutEdgesOf returns the transaction's local out-edges (nil while
// down).
func (c *Crashable) OutEdgesOf(id core.TxnID) []depgraph.Edge {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return nil
	}
	return c.sched.OutEdgesOf(id)
}

// PreparedIDs returns the ids of the site's current prepared
// (in-doubt) records, in ascending order — durable state, readable
// even while down (tests and tools).
func (c *Crashable) PreparedIDs() []core.TxnID {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]core.TxnID, 0, len(c.prepared))
	for id := range c.prepared {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// typeOf resolves an object's type and classifier from the recorded
// registration or the factory.
func (c *Crashable) typeOf(id core.ObjectID) (adt.Type, compat.Classifier, error) {
	if r, ok := c.regs[id]; ok {
		return r.typ, r.class, nil
	}
	if c.factory != nil {
		typ, class := c.factory(id)
		return typ, class, nil
	}
	return nil, nil, fmt.Errorf("fault: Restart: no registration or factory for object %d", id)
}
