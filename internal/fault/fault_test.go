package fault

import (
	"errors"
	"slices"
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

func push(v int) adt.Op  { return adt.Op{Name: adt.StackPush, Arg: v, HasArg: true} }
func write(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }

// newSite builds an up crashable site with a stack object 1 and a page
// object 2.
func newSite(t *testing.T, log Log) *Crashable {
	t.Helper()
	c, err := New(core.Options{}, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(2, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	return c
}

// doOp executes one operation, failing the test unless it executes
// immediately.
func doOp(t *testing.T, c *Crashable, id core.TxnID, obj core.ObjectID, op adt.Op) {
	t.Helper()
	var eff core.Effects
	dec, err := c.RequestInto(&eff, id, obj, op)
	if err != nil || dec.Outcome != core.Executed {
		t.Fatalf("T%d op on %d: %v %v", id, obj, dec, err)
	}
}

func TestNewValidation(t *testing.T) {
	log := NewMemLog()
	if _, err := New(core.Options{Recovery: core.RecoveryUndo}, log); err == nil {
		t.Fatal("undo-log recovery accepted")
	}
	if _, err := New(core.Options{StateDependent: true}, log); err == nil {
		t.Fatal("state-dependent refinement accepted")
	}
	if _, err := New(core.Options{}, nil); err == nil {
		t.Fatal("nil decision log accepted")
	}
}

// TestCrashDropsVolatileKeepsCommitted: a crash loses active
// transactions and uncommitted operations; committed state survives
// the restart.
func TestCrashDropsVolatileKeepsCommitted(t *testing.T) {
	c := newSite(t, NewMemLog())
	var eff core.Effects
	// T1 commits a write; T2 leaves an uncommitted one.
	if err := c.Begin(1); err != nil {
		t.Fatal(err)
	}
	doOp(t, c, 1, 2, write(10))
	if st, err := c.CommitInto(&eff, 1); err != nil || st != core.Committed {
		t.Fatalf("commit: %v %v", st, err)
	}
	c.Forget(1)
	if err := c.Begin(2); err != nil {
		t.Fatal(err)
	}
	doOp(t, c, 2, 2, write(20))

	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if !c.Down() {
		t.Fatal("site not down after Crash")
	}
	if err := c.Begin(3); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("Begin on down site = %v, want ErrSiteDown", err)
	}
	if _, err := c.RequestInto(&eff, 2, 2, write(21)); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("Request on down site = %v, want ErrSiteDown", err)
	}
	if err := c.Crash(); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("double Crash = %v, want ErrSiteDown", err)
	}

	rep, err := c.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Redone) != 0 || len(rep.PresumedAborted) != 0 {
		t.Fatalf("unexpected recovery report %+v", rep)
	}
	st, err := c.CommittedState(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(*adt.PageState); got.V != 10 {
		t.Fatalf("committed page after restart = %d, want 10 (T2's uncommitted 20 must be gone)", got.V)
	}
	// The restarted site has no memory of T2.
	if got := c.TxnState(2); got != "unknown" {
		t.Fatalf("T2 after restart = %s, want unknown", got)
	}
}

// TestPresumedAbortOfUnloggedHold: a prepared (held) transaction whose
// outcome never reached the decision log is aborted at restart and its
// effects discarded.
func TestPresumedAbortOfUnloggedHold(t *testing.T) {
	c := newSite(t, NewMemLog())
	var eff core.Effects
	if err := c.Begin(7); err != nil {
		t.Fatal(err)
	}
	doOp(t, c, 7, 1, push(41))
	if _, err := c.CommitHoldInto(&eff, 7); err != nil {
		t.Fatal(err)
	}
	if got := c.PreparedIDs(); !slices.Equal(got, []core.TxnID{7}) {
		t.Fatalf("prepared = %v", got)
	}
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(rep.PresumedAborted, []core.TxnID{7}) || len(rep.Redone) != 0 {
		t.Fatalf("recovery report %+v, want T7 presumed aborted", rep)
	}
	st, _ := c.CommittedState(1)
	if st.(*adt.StackState).Len() != 0 {
		t.Fatalf("presumed-aborted push survived: %v", st)
	}
	if got := c.PreparedIDs(); len(got) != 0 {
		t.Fatalf("prepared records survived recovery: %v", got)
	}
}

// TestLoggedHoldRedone: a prepared transaction with a logged commit is
// replayed into the committed state at restart — the re-release half
// of presumed abort.
func TestLoggedHoldRedone(t *testing.T) {
	log := NewMemLog()
	c := newSite(t, log)
	var eff core.Effects
	if err := c.Begin(9); err != nil {
		t.Fatal(err)
	}
	doOp(t, c, 9, 1, push(5))
	doOp(t, c, 9, 2, write(55))
	if _, err := c.CommitHoldInto(&eff, 9); err != nil {
		t.Fatal(err)
	}
	if err := log.Record(9, OutcomeCommit); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(rep.Redone, []core.TxnID{9}) || len(rep.PresumedAborted) != 0 {
		t.Fatalf("recovery report %+v, want T9 redone", rep)
	}
	st, _ := c.CommittedState(1)
	if got := st.(*adt.StackState).Values(); !slices.Equal(got, []int{5}) {
		t.Fatalf("redone stack = %v, want [5]", got)
	}
	pg, _ := c.CommittedState(2)
	if got := pg.(*adt.PageState); got.V != 55 {
		t.Fatalf("redone page = %d, want 55", got.V)
	}
}

// TestRedoPreservesInterleavedOrder: two logged-commit holds with
// interleaved pushes on one stack replay in the original site-local
// order, including operations that arrived as grants.
func TestRedoPreservesInterleavedOrder(t *testing.T) {
	log := NewMemLog()
	c := newSite(t, log)
	var eff core.Effects
	for _, id := range []core.TxnID{1, 2} {
		if err := c.Begin(id); err != nil {
			t.Fatal(err)
		}
	}
	doOp(t, c, 1, 1, push(10)) // T1 first
	doOp(t, c, 2, 1, push(20)) // then T2, recoverable after T1
	if _, err := c.CommitHoldInto(&eff, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CommitHoldInto(&eff, 1); err != nil {
		t.Fatal(err)
	}
	for _, id := range []core.TxnID{1, 2} {
		if err := log.Record(id, OutcomeCommit); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(rep.Redone, []core.TxnID{1, 2}) {
		t.Fatalf("redone = %v", rep.Redone)
	}
	st, _ := c.CommittedState(1)
	if got := st.(*adt.StackState).Values(); !slices.Equal(got, []int{10, 20}) {
		t.Fatalf("redone stack = %v, want [10 20] (original order)", got)
	}
}

// TestRevokeDropsPrepared: revoking a held transaction (coordinator
// abort after another site's crash) undoes it and discards the
// prepared record, so a later crash+restart has nothing in doubt.
func TestRevokeDropsPrepared(t *testing.T) {
	c := newSite(t, NewMemLog())
	var eff core.Effects
	if err := c.Begin(3); err != nil {
		t.Fatal(err)
	}
	doOp(t, c, 3, 1, push(1))
	if _, err := c.CommitHoldInto(&eff, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.RevokeInto(&eff, 3, core.ReasonSiteFailed); err != nil {
		t.Fatal(err)
	}
	if got := c.PreparedIDs(); len(got) != 0 {
		t.Fatalf("prepared after revoke = %v", got)
	}
	st, _ := c.ObjectState(1)
	if st.(*adt.StackState).Len() != 0 {
		t.Fatalf("revoked push survived: %v", st)
	}
	// Revoking a non-held transaction is refused.
	if err := c.Begin(4); err != nil {
		t.Fatal(err)
	}
	if err := c.RevokeInto(&eff, 4, core.ReasonSiteFailed); err == nil {
		t.Fatal("revoke of an active transaction accepted")
	}
}

// TestFactoryObjectsRebuilt: lazily constructed objects are part of
// the durable image too.
func TestFactoryObjectsRebuilt(t *testing.T) {
	c, err := New(core.Options{}, NewMemLog())
	if err != nil {
		t.Fatal(err)
	}
	table := compat.PageTable()
	c.SetFactory(func(core.ObjectID) (adt.Type, compat.Classifier) { return adt.Page{}, table })
	var eff core.Effects
	if err := c.Begin(1); err != nil {
		t.Fatal(err)
	}
	doOp(t, c, 1, 42, write(4))
	if st, err := c.CommitInto(&eff, 1); err != nil || st != core.Committed {
		t.Fatalf("commit: %v %v", st, err)
	}
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restart(); err != nil {
		t.Fatal(err)
	}
	st, err := c.CommittedState(42)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(*adt.PageState); got.V != 4 {
		t.Fatalf("factory object after restart = %d, want 4", got.V)
	}
}

// TestStatsSurviveCrash: counters accumulate across incarnations.
func TestStatsSurviveCrash(t *testing.T) {
	c := newSite(t, NewMemLog())
	var eff core.Effects
	if err := c.Begin(1); err != nil {
		t.Fatal(err)
	}
	doOp(t, c, 1, 2, write(1))
	if _, err := c.CommitInto(&eff, 1); err != nil {
		t.Fatal(err)
	}
	before := c.StatsSnapshot()
	if before.Executes != 1 || before.Commits != 1 {
		t.Fatalf("pre-crash stats %+v", before)
	}
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restart(); err != nil {
		t.Fatal(err)
	}
	after := c.StatsSnapshot()
	if after.Executes < before.Executes || after.Commits < before.Commits {
		t.Fatalf("stats went backwards across restart: %+v -> %+v", before, after)
	}
	if c.Incarnation() != 1 {
		t.Fatalf("incarnation = %d, want 1", c.Incarnation())
	}
}
