package fault

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestMemLog(t *testing.T) {
	l := NewMemLog()
	if _, ok := l.Lookup(1); ok {
		t.Fatal("empty log found an outcome")
	}
	if err := l.Record(1, OutcomeCommit); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(1, OutcomeCommit); err != nil {
		t.Fatalf("idempotent re-record refused: %v", err)
	}
	if err := l.Record(1, OutcomeAbort); err == nil {
		t.Fatal("outcome flip accepted")
	}
	if o, ok := l.Lookup(1); !ok || o != OutcomeCommit {
		t.Fatalf("lookup = %v %v", o, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
}

// TestFileLogReplay: records survive a close/reopen (the coordinator
// restart story), and conflicting re-records are refused.
func TestFileLogReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	l, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Record(3, OutcomeCommit); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(4, OutcomeAbort); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(3, OutcomeAbort); err == nil {
		t.Fatal("outcome flip accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if o, ok := l2.Lookup(3); !ok || o != OutcomeCommit {
		t.Fatalf("replayed T3 = %v %v, want commit", o, ok)
	}
	if o, ok := l2.Lookup(4); !ok || o != OutcomeAbort {
		t.Fatalf("replayed T4 = %v %v, want abort", o, ok)
	}
	if _, ok := l2.Lookup(5); ok {
		t.Fatal("phantom outcome")
	}
	if err := l2.Record(6, OutcomeCommit); err != nil {
		t.Fatalf("forced append: %v", err)
	}
	if l2.Len() != 3 {
		t.Fatalf("len = %d, want 3", l2.Len())
	}
}

// TestFileLogTornTail: a record torn by a crash mid-write is never
// interpreted (a truncated commit must not resurrect as a commit of a
// shorter id) and is truncated on open, so later appends cannot fuse
// with the fragment.
func TestFileLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	// "C 7\n" is intact; "C 1234\n" was torn to "C 1".
	if err := os.WriteFile(path, []byte("C 7\nC 1"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if o, ok := l.Lookup(7); !ok || o != OutcomeCommit {
		t.Fatalf("intact record lost: %v %v", o, ok)
	}
	if _, ok := l.Lookup(1); ok {
		t.Fatal("torn 'C 1234' tail resurrected as a commit of T1")
	}
	if _, ok := l.Lookup(1234); ok {
		t.Fatal("torn record replayed")
	}
	// The tail was truncated: a fresh append starts on its own line.
	if err := l.Record(345, OutcomeCommit); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "C 7\nC 345\n" {
		t.Fatalf("log after torn-tail append = %q, want %q", raw, "C 7\nC 345\n")
	}
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if o, ok := l2.Lookup(345); !ok || o != OutcomeCommit {
		t.Fatalf("T345 lost across reopen: %v %v", o, ok)
	}
	if l2.Len() != 2 {
		t.Fatalf("len = %d, want 2", l2.Len())
	}
}

// TestMemLogTruncate: a truncated decision is gone (which presumed
// abort reads as abort) and truncating an absent id is a no-op.
func TestMemLogTruncate(t *testing.T) {
	l := NewMemLog()
	if err := l.Record(1, OutcomeCommit); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Lookup(1); ok {
		t.Fatal("truncated decision still visible")
	}
	if l.Len() != 0 {
		t.Fatalf("len = %d, want 0", l.Len())
	}
	if err := l.Truncate(99); err != nil {
		t.Fatalf("truncating an absent id: %v", err)
	}
	// The id space is free again: recovery presumes abort, so a fresh
	// Record of a different outcome for a truncated id must not trip
	// the flip check (ids are unique in practice; this pins that
	// truncation really forgets).
	if err := l.Record(1, OutcomeAbort); err != nil {
		t.Fatal(err)
	}
}

// TestFileLogTruncateReplay: tombstones survive a reopen — a truncated
// decision stays gone after replay.
func TestFileLogTruncateReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	l, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		if err := l.Record(core.TxnID(id), OutcomeCommit); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, ok := l2.Lookup(2); ok {
		t.Fatal("tombstoned T2 resurrected by replay")
	}
	if o, ok := l2.Lookup(3); !ok || o != OutcomeCommit {
		t.Fatalf("live T3 lost: %v %v", o, ok)
	}
	if l2.Len() != 2 {
		t.Fatalf("replayed len = %d, want 2", l2.Len())
	}
}

// TestMemLogRecordBatch: one RecordBatch round equals the per-id
// Records, re-recording the same outcome is idempotent, and a single
// conflicting id rejects the whole wave without applying any of it.
func TestMemLogRecordBatch(t *testing.T) {
	l := NewMemLog()
	if err := l.RecordBatch(nil, OutcomeCommit); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := l.RecordBatch([]core.TxnID{1, 2, 3}, OutcomeCommit); err != nil {
		t.Fatal(err)
	}
	for id := core.TxnID(1); id <= 3; id++ {
		if o, ok := l.Lookup(id); !ok || o != OutcomeCommit {
			t.Fatalf("T%d = %v %v, want commit", id, o, ok)
		}
	}
	// Idempotent overlap: {2,3,4} with the same outcome is fine.
	if err := l.RecordBatch([]core.TxnID{2, 3, 4}, OutcomeCommit); err != nil {
		t.Fatalf("idempotent overlap refused: %v", err)
	}
	// All-or-nothing: T3 is already a commit, so an abort wave naming it
	// must leave T5 unrecorded too.
	if err := l.RecordBatch([]core.TxnID{5, 3}, OutcomeAbort); err == nil {
		t.Fatal("conflicting batch accepted")
	}
	if _, ok := l.Lookup(5); ok {
		t.Fatal("rejected batch partially applied (T5 recorded)")
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
}

// TestFileLogRecordBatch: a batched force is one durability round that
// survives replay, with the same all-or-nothing validation as MemLog.
func TestFileLogRecordBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	l, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RecordBatch([]core.TxnID{7, 8, 9}, OutcomeCommit); err != nil {
		t.Fatal(err)
	}
	if err := l.RecordBatch([]core.TxnID{10, 7}, OutcomeAbort); err == nil {
		t.Fatal("conflicting batch accepted")
	}
	if _, ok := l.Lookup(10); ok {
		t.Fatal("rejected batch partially applied (T10 recorded)")
	}
	if err := l.RecordBatch(nil, OutcomeCommit); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for id := core.TxnID(7); id <= 9; id++ {
		if o, ok := l2.Lookup(id); !ok || o != OutcomeCommit {
			t.Fatalf("replayed T%d = %v %v, want commit", id, o, ok)
		}
	}
	if _, ok := l2.Lookup(10); ok {
		t.Fatal("rejected batch resurrected by replay")
	}
	if l2.Len() != 3 {
		t.Fatalf("replayed len = %d, want 3", l2.Len())
	}
	// Batched records truncate like plain ones.
	if err := l2.Truncate(8); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 2 {
		t.Fatalf("len after truncate = %d, want 2", l2.Len())
	}
}

// TestFileLogCompaction is the boundedness proof for long chaos runs:
// record-and-truncate far more decisions than compactSlack and check
// the file size stays bounded by the live set plus the slack, instead
// of growing with history.
func TestFileLogCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	l, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const cycles = 20 * compactSlack // »> slack: several compactions must fire
	for id := 1; id <= cycles; id++ {
		if err := l.Record(core.TxnID(id), OutcomeCommit); err != nil {
			t.Fatal(err)
		}
		// Keep a small tail of live decisions (the "in-flight holds").
		if id > 8 {
			if err := l.Truncate(core.TxnID(id - 8)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if l.Len() != 8 {
		t.Fatalf("live len = %d, want 8", l.Len())
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Worst case between compactions: live + compactSlack dead lines,
	// each at most ~12 bytes ("C 1234567\n").
	if max := int64((8 + compactSlack + 16) * 16); st.Size() > max {
		t.Fatalf("log file is %d bytes after %d record+truncate cycles, want <= %d (compaction not bounding it)", st.Size(), cycles, max)
	}
	// The compacted log still replays to the live set.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != 8 {
		t.Fatalf("replayed live len = %d, want 8", l2.Len())
	}
	for id := cycles - 7; id <= cycles; id++ {
		if o, ok := l2.Lookup(core.TxnID(id)); !ok || o != OutcomeCommit {
			t.Fatalf("live T%d lost after compaction: %v %v", id, o, ok)
		}
	}
	if _, ok := l2.Lookup(1); ok {
		t.Fatal("truncated T1 survived compaction")
	}
	// Appends keep working on the reopened-after-rename handle.
	if err := l2.Record(core.TxnID(cycles+1), OutcomeCommit); err != nil {
		t.Fatal(err)
	}
}
