package fault

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMemLog(t *testing.T) {
	l := NewMemLog()
	if _, ok := l.Lookup(1); ok {
		t.Fatal("empty log found an outcome")
	}
	if err := l.Record(1, OutcomeCommit); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(1, OutcomeCommit); err != nil {
		t.Fatalf("idempotent re-record refused: %v", err)
	}
	if err := l.Record(1, OutcomeAbort); err == nil {
		t.Fatal("outcome flip accepted")
	}
	if o, ok := l.Lookup(1); !ok || o != OutcomeCommit {
		t.Fatalf("lookup = %v %v", o, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
}

// TestFileLogReplay: records survive a close/reopen (the coordinator
// restart story), and conflicting re-records are refused.
func TestFileLogReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	l, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Record(3, OutcomeCommit); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(4, OutcomeAbort); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(3, OutcomeAbort); err == nil {
		t.Fatal("outcome flip accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenFileLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if o, ok := l2.Lookup(3); !ok || o != OutcomeCommit {
		t.Fatalf("replayed T3 = %v %v, want commit", o, ok)
	}
	if o, ok := l2.Lookup(4); !ok || o != OutcomeAbort {
		t.Fatalf("replayed T4 = %v %v, want abort", o, ok)
	}
	if _, ok := l2.Lookup(5); ok {
		t.Fatal("phantom outcome")
	}
	if err := l2.Record(6, OutcomeCommit); err != nil {
		t.Fatalf("forced append: %v", err)
	}
	if l2.Len() != 3 {
		t.Fatalf("len = %d, want 3", l2.Len())
	}
}

// TestFileLogTornTail: a record torn by a crash mid-write is never
// interpreted (a truncated commit must not resurrect as a commit of a
// shorter id) and is truncated on open, so later appends cannot fuse
// with the fragment.
func TestFileLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.log")
	// "C 7\n" is intact; "C 1234\n" was torn to "C 1".
	if err := os.WriteFile(path, []byte("C 7\nC 1"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if o, ok := l.Lookup(7); !ok || o != OutcomeCommit {
		t.Fatalf("intact record lost: %v %v", o, ok)
	}
	if _, ok := l.Lookup(1); ok {
		t.Fatal("torn 'C 1234' tail resurrected as a commit of T1")
	}
	if _, ok := l.Lookup(1234); ok {
		t.Fatal("torn record replayed")
	}
	// The tail was truncated: a fresh append starts on its own line.
	if err := l.Record(345, OutcomeCommit); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "C 7\nC 345\n" {
		t.Fatalf("log after torn-tail append = %q, want %q", raw, "C 7\nC 345\n")
	}
	l2, err := OpenFileLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if o, ok := l2.Lookup(345); !ok || o != OutcomeCommit {
		t.Fatalf("T345 lost across reopen: %v %v", o, ok)
	}
	if l2.Len() != 2 {
		t.Fatalf("len = %d, want 2", l2.Len())
	}
}
