package fault

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	"repro/internal/core"
)

// Outcome is a logged commit-conversation decision.
type Outcome uint8

// Outcomes. The zero value means "no decision recorded", which under
// presumed abort reads as abort.
const (
	// OutcomeCommit: the coordinator reached the transaction's commit
	// point (its global dependency set drained) and promised the real
	// commit to every participant.
	OutcomeCommit Outcome = iota + 1
	// OutcomeAbort: the coordinator decided abort. Presumed abort makes
	// recording this optional — recovery treats an absent outcome as
	// abort — but an explicit record lets tools distinguish "decided
	// abort" from "never decided".
	OutcomeAbort
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeCommit:
		return "commit"
	case OutcomeAbort:
		return "abort"
	}
	return "undecided"
}

// Log is the coordinator's decision log — the one durable structure
// the presumed-abort commit conversation needs. Record must be forced
// (durable when it returns): the coordinator writes OutcomeCommit at
// the commit point, before releasing any participant, so that a
// participant crash after the write can always be redone. Recovery
// reads with Lookup: a prepared transaction with no logged outcome is
// presumed aborted.
//
// Implementations must be safe for concurrent use: the coordinator
// records under its own lock, but restarted sites look up outcomes
// from their recovery path.
type Log interface {
	// Record durably notes the transaction's outcome. Re-recording the
	// same outcome is idempotent; changing a recorded outcome is a
	// protocol violation and implementations may reject or ignore it.
	Record(id core.TxnID, o Outcome) error
	// Lookup returns the recorded outcome, if any.
	Lookup(id core.TxnID) (Outcome, bool)
	// Len returns the number of recorded decisions (for tests and
	// introspection).
	Len() int
}

// MemLog is the in-memory Log: "durable" for the lifetime of the
// process, which is exactly the durability the simulated crash-stop
// model needs — Crashable sites lose their volatile state on Crash,
// the coordinator (and its log) stays up.
type MemLog struct {
	mu sync.RWMutex
	m  map[core.TxnID]Outcome
}

// NewMemLog returns an empty in-memory decision log.
func NewMemLog() *MemLog {
	return &MemLog{m: make(map[core.TxnID]Outcome)}
}

// Record implements Log.
func (l *MemLog) Record(id core.TxnID, o Outcome) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.m[id]; ok && prev != o {
		return fmt.Errorf("fault: decision log: T%d already %s, refusing %s", id, prev, o)
	}
	l.m[id] = o
	return nil
}

// Lookup implements Log.
func (l *MemLog) Lookup(id core.TxnID) (Outcome, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	o, ok := l.m[id]
	return o, ok
}

// Len implements Log.
func (l *MemLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.m)
}

// FileLog is the file-backed Log: an append-only text file ("C <id>"
// or "A <id>" per line) with an in-memory index for lookups. Opening
// an existing file replays it, so a coordinator process restart keeps
// its decisions — the optional durability step beyond MemLog. Record
// appends and, when Sync is set, fsyncs before returning (a forced
// write in the 2PC sense; leave it off for tests and benchmarks).
//
// Replay follows the WAL rule for torn tails: records must parse
// exactly and end with a newline; the first record that does not —
// a write torn by a crash — ends the replay, and the file is
// truncated there so later appends cannot fuse with the fragment. A
// torn fragment is never interpreted (a truncated "C 1234\n" must not
// resurrect as a commit of T1).
type FileLog struct {
	mu   sync.Mutex
	m    map[core.TxnID]Outcome
	f    *os.File
	sync bool
}

// parseLogLine strictly parses one record line (without its
// terminating newline): 'C' or 'A', one space, a full decimal id.
func parseLogLine(line string) (core.TxnID, Outcome, bool) {
	if len(line) < 3 || line[1] != ' ' {
		return 0, 0, false
	}
	var o Outcome
	switch line[0] {
	case 'C':
		o = OutcomeCommit
	case 'A':
		o = OutcomeAbort
	default:
		return 0, 0, false
	}
	id, err := strconv.ParseUint(line[2:], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return core.TxnID(id), o, true
}

// OpenFileLog opens (creating if necessary) the decision log at path,
// replaying any existing records and truncating a torn tail. sync
// selects forced appends.
func OpenFileLog(path string, sync bool) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &FileLog{m: make(map[core.TxnID]Outcome), f: f, sync: sync}
	r := bufio.NewReader(f)
	var good int64 // offset just past the last fully valid record
	for {
		line, err := r.ReadString('\n')
		if err == nil {
			if id, o, ok := parseLogLine(line[:len(line)-1]); ok {
				l.m[id] = o
				good += int64(len(line))
				continue
			}
			// A malformed interior line: everything from here on is
			// untrustworthy (single sequential writer — only a torn
			// tail is expected). Stop and truncate.
		} else if err != io.EOF {
			f.Close()
			return nil, err
		}
		break // unterminated tail, malformed line, or clean EOF
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Record implements Log.
func (l *FileLog) Record(id core.TxnID, o Outcome) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.m[id]; ok {
		if prev != o {
			return fmt.Errorf("fault: decision log: T%d already %s, refusing %s", id, prev, o)
		}
		return nil
	}
	kind := "C"
	if o == OutcomeAbort {
		kind = "A"
	}
	if _, err := fmt.Fprintf(l.f, "%s %d\n", kind, uint64(id)); err != nil {
		return err
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	l.m[id] = o
	return nil
}

// Lookup implements Log.
func (l *FileLog) Lookup(id core.TxnID) (Outcome, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	o, ok := l.m[id]
	return o, ok
}

// Len implements Log.
func (l *FileLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// Close closes the underlying file.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
