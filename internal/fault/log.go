package fault

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"slices"
	"strconv"
	"sync"

	"repro/internal/core"
)

// Outcome is a logged commit-conversation decision.
type Outcome uint8

// Outcomes. The zero value means "no decision recorded", which under
// presumed abort reads as abort.
const (
	// OutcomeCommit: the coordinator reached the transaction's commit
	// point (its global dependency set drained) and promised the real
	// commit to every participant.
	OutcomeCommit Outcome = iota + 1
	// OutcomeAbort: the coordinator decided abort. Presumed abort makes
	// recording this optional — recovery treats an absent outcome as
	// abort — but an explicit record lets tools distinguish "decided
	// abort" from "never decided".
	OutcomeAbort
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeCommit:
		return "commit"
	case OutcomeAbort:
		return "abort"
	}
	return "undecided"
}

// Log is the coordinator's decision log — the one durable structure
// the presumed-abort commit conversation needs. Record must be forced
// (durable when it returns): the coordinator writes OutcomeCommit at
// the commit point, before releasing any participant, so that a
// participant crash after the write can always be redone. Recovery
// reads with Lookup: a prepared transaction with no logged outcome is
// presumed aborted.
//
// Implementations must be safe for concurrent use: the coordinator
// records under its own lock, but restarted sites look up outcomes
// from their recovery path.
type Log interface {
	// Record durably notes the transaction's outcome. Re-recording the
	// same outcome is idempotent; changing a recorded outcome is a
	// protocol violation and implementations may reject or ignore it.
	Record(id core.TxnID, o Outcome) error
	// Lookup returns the recorded outcome, if any.
	Lookup(id core.TxnID) (Outcome, bool)
	// Truncate prunes the transaction's decision. The coordinator calls
	// it once every participant has released (or redone, at restart)
	// the logged commit: presumed abort never needs the entry again —
	// no prepared record for the transaction survives anywhere, and an
	// absent outcome already reads as abort — so a long-running cluster
	// keeps its log bounded by the number of in-flight holds, not by
	// history. Truncating an absent id is a no-op.
	Truncate(id core.TxnID) error
	// Len returns the number of live (recorded, untruncated) decisions
	// (for tests and introspection).
	Len() int
}

// BatchRecorder is the optional group-commit extension of Log: one
// durability round — a single append and a single force — covers a
// whole wave of decisions. The coordinator's conversation pipeline
// decides batches of concurrent commits in one critical section and
// forces them with one RecordBatch instead of one fsync per
// transaction; callers fall back to per-id Record when a Log does not
// implement it.
//
// RecordBatch is all-or-nothing with respect to validation: if any id
// already carries a conflicting outcome the whole batch is rejected
// and no id is recorded. Re-recording the same outcome for some ids of
// the batch is idempotent, as with Record.
type BatchRecorder interface {
	RecordBatch(ids []core.TxnID, o Outcome) error
}

// MemLog is the in-memory Log: "durable" for the lifetime of the
// process, which is exactly the durability the simulated crash-stop
// model needs — Crashable sites lose their volatile state on Crash,
// the coordinator (and its log) stays up.
type MemLog struct {
	mu sync.RWMutex
	m  map[core.TxnID]Outcome
}

// NewMemLog returns an empty in-memory decision log.
func NewMemLog() *MemLog {
	return &MemLog{m: make(map[core.TxnID]Outcome)}
}

// Record implements Log.
func (l *MemLog) Record(id core.TxnID, o Outcome) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.m[id]; ok && prev != o {
		return fmt.Errorf("fault: decision log: T%d already %s, refusing %s", id, prev, o)
	}
	l.m[id] = o
	return nil
}

// RecordBatch implements BatchRecorder: one lock round for the whole
// wave, validated before any id is applied.
func (l *MemLog) RecordBatch(ids []core.TxnID, o Outcome) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, id := range ids {
		if prev, ok := l.m[id]; ok && prev != o {
			return fmt.Errorf("fault: decision log: T%d already %s, refusing %s", id, prev, o)
		}
	}
	for _, id := range ids {
		l.m[id] = o
	}
	return nil
}

// Lookup implements Log.
func (l *MemLog) Lookup(id core.TxnID) (Outcome, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	o, ok := l.m[id]
	return o, ok
}

// OutcomeIDs returns every id with outcome o recorded, sorted — the
// log replay entry point for a restarting coordinator, which must
// re-adopt logged commits (releases owed, truncation gated on the
// client learning the outcome) before serving.
func (l *MemLog) OutcomeIDs(o Outcome) []core.TxnID {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return outcomeIDs(l.m, o)
}

// outcomeIDs collects and sorts the ids mapping to o.
func outcomeIDs(m map[core.TxnID]Outcome, o Outcome) []core.TxnID {
	var ids []core.TxnID
	for id, got := range m {
		if got == o {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	return ids
}

// Truncate implements Log.
func (l *MemLog) Truncate(id core.TxnID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.m, id)
	return nil
}

// Len implements Log.
func (l *MemLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.m)
}

// FileLog is the file-backed Log: an append-only text file ("C <id>",
// "A <id>" or a "T <id>" truncation tombstone per line) with an
// in-memory index for lookups. Opening an existing file replays it, so
// a coordinator process restart keeps its decisions — the optional
// durability step beyond MemLog. Record and Truncate append and, when
// Sync is set, fsync before returning (a forced write in the 2PC
// sense; leave it off for tests and benchmarks).
//
// Truncation compacts: once tombstoned records outnumber live ones by
// compactSlack, the live set is rewritten to a temp file that is
// renamed over the log, so a long-running cluster's log file is
// bounded by its in-flight holds, not its history. The rename is the
// atomic switch; a crash between writing the temp file and the rename
// leaves the old log, which replays to the same live set.
//
// Replay follows the WAL rule for torn tails: records must parse
// exactly and end with a newline; the first record that does not —
// a write torn by a crash — ends the replay, and the file is
// truncated there so later appends cannot fuse with the fragment. A
// torn fragment is never interpreted (a truncated "C 1234\n" must not
// resurrect as a commit of T1).
type FileLog struct {
	mu   sync.Mutex
	m    map[core.TxnID]Outcome
	f    *os.File
	path string
	sync bool
	// dead counts file lines that no longer contribute to the live set
	// (tombstones plus the records they killed); compaction triggers
	// when it overtakes the live count by compactSlack.
	dead int
}

// Both logs support grouped forces.
var (
	_ BatchRecorder = (*MemLog)(nil)
	_ BatchRecorder = (*FileLog)(nil)
)

// compactSlack is how many dead lines a FileLog tolerates beyond the
// live count before compacting — large enough that compaction cost
// amortises, small enough that the file stays within a constant factor
// of the live set.
const compactSlack = 256

// parseLogLine strictly parses one record line (without its
// terminating newline): 'C', 'A' or 'T', one space, a full decimal id.
func parseLogLine(line string) (core.TxnID, byte, bool) {
	if len(line) < 3 || line[1] != ' ' {
		return 0, 0, false
	}
	switch line[0] {
	case 'C', 'A', 'T':
	default:
		return 0, 0, false
	}
	id, err := strconv.ParseUint(line[2:], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return core.TxnID(id), line[0], true
}

// OpenFileLog opens (creating if necessary) the decision log at path,
// replaying any existing records and truncating a torn tail. sync
// selects forced appends.
func OpenFileLog(path string, sync bool) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &FileLog{m: make(map[core.TxnID]Outcome), f: f, path: path, sync: sync}
	r := bufio.NewReader(f)
	var good int64 // offset just past the last fully valid record
	var lines int
	for {
		line, err := r.ReadString('\n')
		if err == nil {
			if id, kind, ok := parseLogLine(line[:len(line)-1]); ok {
				switch kind {
				case 'C':
					l.m[id] = OutcomeCommit
				case 'A':
					l.m[id] = OutcomeAbort
				case 'T':
					delete(l.m, id)
				}
				lines++
				good += int64(len(line))
				continue
			}
			// A malformed interior line: everything from here on is
			// untrustworthy (single sequential writer — only a torn
			// tail is expected). Stop and truncate.
		} else if err != io.EOF {
			f.Close()
			return nil, err
		}
		break // unterminated tail, malformed line, or clean EOF
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.dead = lines - len(l.m)
	return l, nil
}

// Record implements Log.
func (l *FileLog) Record(id core.TxnID, o Outcome) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.m[id]; ok {
		if prev != o {
			return fmt.Errorf("fault: decision log: T%d already %s, refusing %s", id, prev, o)
		}
		return nil
	}
	kind := "C"
	if o == OutcomeAbort {
		kind = "A"
	}
	if _, err := fmt.Fprintf(l.f, "%s %d\n", kind, uint64(id)); err != nil {
		return err
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	l.m[id] = o
	return nil
}

// RecordBatch implements BatchRecorder: the whole wave is validated,
// appended as one write and forced with one Sync — the group-commit
// amortisation the conversation pipeline exists for.
func (l *FileLog) RecordBatch(ids []core.TxnID, o Outcome) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	fresh := ids[:0:0]
	for _, id := range ids {
		if prev, ok := l.m[id]; ok {
			if prev != o {
				return fmt.Errorf("fault: decision log: T%d already %s, refusing %s", id, prev, o)
			}
			continue // idempotent re-record: no new line needed
		}
		fresh = append(fresh, id)
	}
	if len(fresh) == 0 {
		return nil
	}
	kind := byte('C')
	if o == OutcomeAbort {
		kind = 'A'
	}
	buf := make([]byte, 0, 12*len(fresh))
	for _, id := range fresh {
		buf = append(buf, kind, ' ')
		buf = strconv.AppendUint(buf, uint64(id), 10)
		buf = append(buf, '\n')
	}
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	for _, id := range fresh {
		l.m[id] = o
	}
	return nil
}

// Lookup implements Log.
func (l *FileLog) Lookup(id core.TxnID) (Outcome, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	o, ok := l.m[id]
	return o, ok
}

// OutcomeIDs returns every id with outcome o recorded, sorted (see
// MemLog.OutcomeIDs).
func (l *FileLog) OutcomeIDs(o Outcome) []core.TxnID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return outcomeIDs(l.m, o)
}

// Truncate implements Log: a "T <id>" tombstone is appended (so replay
// reaches the same live set) and the record leaves the index; when the
// dead lines outnumber the live ones by compactSlack, the file is
// compacted to the live set alone.
func (l *FileLog) Truncate(id core.TxnID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.m[id]; !ok {
		return nil
	}
	if _, err := fmt.Fprintf(l.f, "T %d\n", uint64(id)); err != nil {
		return err
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	delete(l.m, id)
	l.dead += 2 // the tombstone plus the record it killed
	if l.dead > len(l.m)+compactSlack {
		return l.compact()
	}
	return nil
}

// compact rewrites the live set to a temp file and renames it over the
// log. Caller holds l.mu.
func (l *FileLog) compact() error {
	tmpPath := l.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	ids := make([]core.TxnID, 0, len(l.m))
	for id := range l.m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	w := bufio.NewWriter(tmp)
	for _, id := range ids {
		kind := "C"
		if l.m[id] == OutcomeAbort {
			kind = "A"
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", kind, uint64(id)); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if l.sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		tmp.Close()
		return err
	}
	// The temp handle now names the log file (the rename moved the
	// inode under it, positioned at end-of-file) — keep writing
	// through it instead of a close-and-reopen, whose failure would
	// leave the log appending to the unlinked old inode while Record
	// keeps reporting success.
	l.f.Close()
	l.f = tmp
	l.dead = 0
	return nil
}

// Len implements Log.
func (l *FileLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// Close closes the underlying file.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
