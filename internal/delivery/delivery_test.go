package delivery

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/proto"
)

// TestParkChannelPooling: a recycled channel serves the next park
// (receiver-side recycling keeps the blocked path allocation-free),
// while a channel with an unconsumed buffered message is dropped
// rather than pooled.
func TestParkChannelPooling(t *testing.T) {
	h := NewHub()
	ch := h.Park(1)
	eff := h.Effects()
	eff.Grants = append(eff.Grants, proto.Grant{Txn: 1})
	h.Deliver(eff)
	<-ch // consumed: safe to recycle
	h.Recycle(ch)
	if got := h.Park(2); got != ch {
		t.Fatal("recycled channel not reused by the next park")
	}
	// A channel whose message was never consumed must not re-enter the
	// pool: the next parker would read a stale resolution.
	h.Fail(2, proto.ReasonDeadlock)
	h.Recycle(ch) // buffered message still inside
	if got := h.Park(3); got == ch {
		t.Fatal("channel with a buffered message re-entered the pool")
	}
}

// TestFailAll wakes every parked waiter with the abort verdict — the
// crash path: the scheduler state the waiters were queued in is gone.
func TestFailAll(t *testing.T) {
	h := NewHub()
	chans := map[proto.TxnID]chan Msg{}
	for id := proto.TxnID(1); id <= 3; id++ {
		chans[id] = h.Park(id)
	}
	if n := h.FailAll(proto.ReasonSiteFailed); n != 3 {
		t.Fatalf("FailAll woke %d waiters, want 3", n)
	}
	if h.Len() != 0 {
		t.Fatalf("waiters left after FailAll: %d", h.Len())
	}
	for id, ch := range chans {
		msg := <-ch
		if !msg.Aborted || msg.Reason != proto.ReasonSiteFailed {
			t.Fatalf("T%d got %+v, want site-failed abort", id, msg)
		}
	}
	if h.FailAll(proto.ReasonSiteFailed) != 0 {
		t.Fatal("second FailAll woke someone")
	}
}

func TestParkDeliverGrant(t *testing.T) {
	h := NewHub()
	ch := h.Park(1)
	if !h.Parked(1) || h.Len() != 1 {
		t.Fatal("park not registered")
	}
	eff := h.Effects()
	eff.Grants = append(eff.Grants, proto.Grant{Txn: 1, Ret: adt.Ret{Code: adt.Value, Val: 7}})
	h.Deliver(eff)
	if h.Parked(1) {
		t.Fatal("grant must unpark")
	}
	msg := <-ch
	if msg.Aborted || msg.Ret.Val != 7 {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestParkDeliverRetryAbort(t *testing.T) {
	h := NewHub()
	ch := h.Park(2)
	eff := h.Effects()
	eff.RetryAborts = append(eff.RetryAborts, proto.RetryAbort{Txn: 2, Reason: proto.ReasonDeadlock})
	h.Deliver(eff)
	msg := <-ch
	if !msg.Aborted || msg.Reason != proto.ReasonDeadlock {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestWithdrawBeatsDeliver(t *testing.T) {
	h := NewHub()
	ch := h.Park(3)
	if !h.Withdraw(3) {
		t.Fatal("withdraw of parked txn must succeed")
	}
	if h.Withdraw(3) {
		t.Fatal("second withdraw must report not-parked")
	}
	eff := h.Effects()
	eff.Grants = append(eff.Grants, proto.Grant{Txn: 3})
	h.Deliver(eff) // must not send to the withdrawn channel
	select {
	case msg := <-ch:
		t.Fatalf("withdrawn waiter received %+v", msg)
	default:
	}
}

func TestDeliverBeatsWithdraw(t *testing.T) {
	h := NewHub()
	ch := h.Park(4)
	eff := h.Effects()
	eff.Grants = append(eff.Grants, proto.Grant{Txn: 4, Ret: adt.Ret{Val: 9}})
	h.Deliver(eff)
	// The cancellation path: Withdraw fails, so the message must be
	// sitting in the buffer.
	if h.Withdraw(4) {
		t.Fatal("withdraw after delivery must fail")
	}
	select {
	case msg := <-ch:
		if msg.Ret.Val != 9 {
			t.Fatalf("msg = %+v", msg)
		}
	default:
		t.Fatal("resolved message missing from buffer")
	}
}

func TestFail(t *testing.T) {
	h := NewHub()
	ch := h.Park(5)
	if !h.Fail(5, proto.ReasonDeadlock) {
		t.Fatal("fail of parked txn must succeed")
	}
	if h.Fail(5, proto.ReasonDeadlock) {
		t.Fatal("double fail must report not-parked")
	}
	msg := <-ch
	if !msg.Aborted || msg.Reason != proto.ReasonDeadlock {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestEffectsReuse(t *testing.T) {
	h := NewHub()
	eff := h.Effects()
	eff.Grants = append(eff.Grants, proto.Grant{Txn: 1})
	eff.Committed = append(eff.Committed, 1)
	eff2 := h.Effects()
	if eff2 != eff {
		t.Fatal("Effects must return the hub's one reusable buffer")
	}
	if len(eff2.Grants) != 0 || len(eff2.Committed) != 0 || !eff2.Empty() {
		t.Fatalf("Effects must reset the buffer, got %+v", eff2)
	}
}

func TestAppendIDs(t *testing.T) {
	h := NewHub()
	h.Park(7)
	h.Park(9)
	ids := h.AppendIDs(nil)
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
	seen := map[proto.TxnID]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if !seen[7] || !seen[9] {
		t.Fatalf("ids = %v", ids)
	}
}
