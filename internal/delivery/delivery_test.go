package delivery

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/proto"
)

func TestParkDeliverGrant(t *testing.T) {
	h := NewHub()
	ch := h.Park(1)
	if !h.Parked(1) || h.Len() != 1 {
		t.Fatal("park not registered")
	}
	eff := h.Effects()
	eff.Grants = append(eff.Grants, proto.Grant{Txn: 1, Ret: adt.Ret{Code: adt.Value, Val: 7}})
	h.Deliver(eff)
	if h.Parked(1) {
		t.Fatal("grant must unpark")
	}
	msg := <-ch
	if msg.Aborted || msg.Ret.Val != 7 {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestParkDeliverRetryAbort(t *testing.T) {
	h := NewHub()
	ch := h.Park(2)
	eff := h.Effects()
	eff.RetryAborts = append(eff.RetryAborts, proto.RetryAbort{Txn: 2, Reason: proto.ReasonDeadlock})
	h.Deliver(eff)
	msg := <-ch
	if !msg.Aborted || msg.Reason != proto.ReasonDeadlock {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestWithdrawBeatsDeliver(t *testing.T) {
	h := NewHub()
	ch := h.Park(3)
	if !h.Withdraw(3) {
		t.Fatal("withdraw of parked txn must succeed")
	}
	if h.Withdraw(3) {
		t.Fatal("second withdraw must report not-parked")
	}
	eff := h.Effects()
	eff.Grants = append(eff.Grants, proto.Grant{Txn: 3})
	h.Deliver(eff) // must not send to the withdrawn channel
	select {
	case msg := <-ch:
		t.Fatalf("withdrawn waiter received %+v", msg)
	default:
	}
}

func TestDeliverBeatsWithdraw(t *testing.T) {
	h := NewHub()
	ch := h.Park(4)
	eff := h.Effects()
	eff.Grants = append(eff.Grants, proto.Grant{Txn: 4, Ret: adt.Ret{Val: 9}})
	h.Deliver(eff)
	// The cancellation path: Withdraw fails, so the message must be
	// sitting in the buffer.
	if h.Withdraw(4) {
		t.Fatal("withdraw after delivery must fail")
	}
	select {
	case msg := <-ch:
		if msg.Ret.Val != 9 {
			t.Fatalf("msg = %+v", msg)
		}
	default:
		t.Fatal("resolved message missing from buffer")
	}
}

func TestFail(t *testing.T) {
	h := NewHub()
	ch := h.Park(5)
	if !h.Fail(5, proto.ReasonDeadlock) {
		t.Fatal("fail of parked txn must succeed")
	}
	if h.Fail(5, proto.ReasonDeadlock) {
		t.Fatal("double fail must report not-parked")
	}
	msg := <-ch
	if !msg.Aborted || msg.Reason != proto.ReasonDeadlock {
		t.Fatalf("msg = %+v", msg)
	}
}

func TestEffectsReuse(t *testing.T) {
	h := NewHub()
	eff := h.Effects()
	eff.Grants = append(eff.Grants, proto.Grant{Txn: 1})
	eff.Committed = append(eff.Committed, 1)
	eff2 := h.Effects()
	if eff2 != eff {
		t.Fatal("Effects must return the hub's one reusable buffer")
	}
	if len(eff2.Grants) != 0 || len(eff2.Committed) != 0 || !eff2.Empty() {
		t.Fatalf("Effects must reset the buffer, got %+v", eff2)
	}
}

func TestAppendIDs(t *testing.T) {
	h := NewHub()
	h.Park(7)
	h.Park(9)
	ids := h.AppendIDs(nil)
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
	seen := map[proto.TxnID]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if !seen[7] || !seen[9] {
		t.Fatalf("ids = %v", ids)
	}
}
