// Package delivery is the shared routing layer between a synchronous
// scheduler and the goroutines parked on its decisions. Both blocking
// front ends — core.DB locally and each dist site in the §6 cluster —
// used to carry their own copy of this plumbing (a waitMsg struct, a
// waiter map and a hand-rolled Effects loop); a Hub centralises it:
//
//	goroutine            Hub (one per lock domain)         scheduler
//	---------            -------------------------         ---------
//	Do ──────────────▶ Park(id) ── chan Msg
//	   ◀── <-ch ─────── Deliver(eff) ◀────────────────── Effects{Grants,
//	                                                        RetryAborts}
//	ctx cancelled ───▶ Withdraw(id)  ─────────────────▶ Scheduler.Withdraw
//
// A Hub is deliberately lock-free: every front end already owns a mutex
// that serialises its scheduler calls (core.DB's db.mu, a dist site's
// site.mu), and every Hub method must be called with that same lock
// held. The channels are buffered (capacity 1), so Deliver never blocks
// on a slow waiter; the delete-then-send pair runs atomically under the
// domain lock, which is what makes the cancellation race resolvable:
// a context-cancelled waiter that finds itself withdrawn knows no
// message is coming, and one that finds itself already resolved knows
// the message is sitting in the buffer.
//
// The Hub also owns the domain's reusable Effects buffer (Effects()),
// so a front end's steady-state scheduler conversation allocates
// nothing for effect routing.
package delivery

import (
	"repro/internal/adt"
	"repro/internal/proto"
)

// Msg resolves a parked request: either the operation's return value or
// the scheduler's abort verdict.
type Msg struct {
	Ret     adt.Ret
	Aborted bool
	Reason  proto.AbortReason
}

// Hub tracks the goroutines parked on one scheduler's decisions. All
// methods must be called with the owning front end's lock held; see the
// package comment.
type Hub struct {
	waiters map[proto.TxnID]chan Msg
	eff     proto.Effects
	// chFree pools park channels. A channel returns to the pool via
	// Recycle once its receiver is done with it — receiver-side
	// recycling, because only the receiver knows the buffered message
	// (if any) has been consumed. The pool's size is bounded by the
	// peak number of concurrent parks in the domain.
	chFree []chan Msg
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{waiters: make(map[proto.TxnID]chan Msg)}
}

// Effects resets and returns the hub's reusable Effects buffer for the
// next scheduler call. The buffer is valid until the next Effects call
// on this hub, which the lock discipline guarantees is after the
// current call's results have been delivered.
func (h *Hub) Effects() *proto.Effects {
	h.eff.Reset()
	return &h.eff
}

// Park registers id as parked and returns the buffered channel its
// goroutine must receive on. A transaction parks on at most one request
// at a time (the handle contract: one driving goroutine). Channels are
// pooled: the receiver gives the channel back with Recycle when it is
// done, so the steady-state blocked path allocates nothing here.
func (h *Hub) Park(id proto.TxnID) chan Msg {
	var ch chan Msg
	if n := len(h.chFree); n > 0 {
		ch = h.chFree[n-1]
		h.chFree[n-1] = nil
		h.chFree = h.chFree[:n-1]
	} else {
		ch = make(chan Msg, 1)
	}
	h.waiters[id] = ch
	return ch
}

// Recycle returns a park channel to the pool. The caller — the
// goroutine that received on the channel — must call it under the
// domain lock, after either consuming the resolution message or
// winning a Withdraw race (in which case no message was ever sent:
// the delete-then-send pair runs atomically under the same lock). A
// channel that still has a buffered message is dropped instead of
// pooled, as a safety net.
func (h *Hub) Recycle(ch chan Msg) {
	if len(ch) == 0 {
		h.chFree = append(h.chFree, ch)
	}
}

// Withdraw removes id's parked entry without resolving it, reporting
// whether it was still parked. A false return means the resolution
// already happened: the message is in the channel buffer and the caller
// must consume it instead.
func (h *Hub) Withdraw(id proto.TxnID) bool {
	if _, ok := h.waiters[id]; !ok {
		return false
	}
	delete(h.waiters, id)
	return true
}

// Fail resolves id's parked request with an abort verdict directly
// (used when a coordinator aborts a parked transaction on its owner's
// behalf), reporting whether it was still parked.
func (h *Hub) Fail(id proto.TxnID, reason proto.AbortReason) bool {
	ch, ok := h.waiters[id]
	if !ok {
		return false
	}
	delete(h.waiters, id)
	ch <- Msg{Aborted: true, Reason: reason}
	return true
}

// FailAll resolves every parked request with an abort verdict and
// returns how many waiters were woken. The fault layer uses it when a
// site crashes: the volatile scheduler state the waiters were queued
// in is gone, so every parked conversation at the site ends in the
// given abort reason.
func (h *Hub) FailAll(reason proto.AbortReason) int {
	n := 0
	for id, ch := range h.waiters {
		delete(h.waiters, id)
		ch <- Msg{Aborted: true, Reason: reason}
		n++
	}
	return n
}

// Deliver routes one scheduler call's effects to the parked goroutines:
// grants resolve with the operation's return value, retry-aborts with
// the abort verdict. Cascaded real commits (eff.Committed) are the
// front end's business — they resolve transactions, not parked
// requests — and are left to the caller.
func (h *Hub) Deliver(eff *proto.Effects) {
	for i := range eff.Grants {
		g := &eff.Grants[i]
		if ch, ok := h.waiters[g.Txn]; ok {
			delete(h.waiters, g.Txn)
			ch <- Msg{Ret: g.Ret}
		}
	}
	for _, a := range eff.RetryAborts {
		if ch, ok := h.waiters[a.Txn]; ok {
			delete(h.waiters, a.Txn)
			ch <- Msg{Aborted: true, Reason: a.Reason}
		}
	}
}

// Parked reports whether id currently has a parked request.
func (h *Hub) Parked(id proto.TxnID) bool {
	_, ok := h.waiters[id]
	return ok
}

// Len returns the number of parked transactions.
func (h *Hub) Len() int { return len(h.waiters) }

// AppendIDs appends every parked transaction id to buf[:0] and returns
// the result (a reused buffer makes the snapshot allocation-free). The
// distributed layer's refreshParked uses this to re-mirror parked
// transactions' edges.
func (h *Hub) AppendIDs(buf []proto.TxnID) []proto.TxnID {
	buf = buf[:0]
	for id := range h.waiters {
		buf = append(buf, id)
	}
	return buf
}
