package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"time"
)

// Causal tracing: per-transaction trace contexts, span records, and the
// per-process span buffer the debug plane exports.
//
// A TraceContext is minted once per transaction (deterministically, by
// a seeded Sampler — or by a remote client, in which case it arrives
// over the wire) and carried through every layer the transaction
// crosses: the coordinator's conversation, the wire frames, the site
// daemons. Every process records its own spans into a SpanBuffer; the
// shared trace id is what lets sccctl stitch the buffers back into one
// end-to-end timeline. The overhead contract matches the rest of the
// package: Record is allocation-free and nil-safe, and an unsampled
// context short-circuits before taking the lock, so tracing disabled
// (or a transaction not sampled) costs one branch.

// TraceContext identifies a transaction's position in a distributed
// trace: the trace id (shared by every span of the transaction, across
// processes), the parent span id, and the sampling decision. The zero
// value is "no trace" — every consumer treats it as unsampled.
type TraceContext struct {
	Trace uint64
	Span  uint64
	Flags uint8
}

// TraceSampled is the Flags bit carrying the sampling decision.
const TraceSampled uint8 = 0x01

// Sampled reports whether spans should be recorded for this context.
func (tc TraceContext) Sampled() bool { return tc.Flags&TraceSampled != 0 }

// Valid reports whether the context carries a trace at all.
func (tc TraceContext) Valid() bool { return tc.Trace != 0 }

// SpanKind labels one step of a transaction's causal timeline.
type SpanKind uint8

const (
	SpanBegin   SpanKind = iota + 1 // transaction created / first touch
	SpanRequest                     // an operation executed at a site
	SpanBlock                       // a request parked behind a conflict
	SpanGrant                       // a parked request resumed
	SpanHold                        // commit-hold (prepare) at a site
	SpanDecide                      // coordinator decision round (Arg: wave)
	SpanRelease                     // real commit released at a site
	SpanShed                        // hold policy refused the conversation
	SpanAbort                       // transaction aborted
	SpanRedo                        // logged commit redone at restart
)

// String names the kind for JSON and the sccctl timeline.
func (k SpanKind) String() string {
	switch k {
	case SpanBegin:
		return "begin"
	case SpanRequest:
		return "request"
	case SpanBlock:
		return "block"
	case SpanGrant:
		return "grant"
	case SpanHold:
		return "hold"
	case SpanDecide:
		return "decide"
	case SpanRelease:
		return "release"
	case SpanShed:
		return "shed"
	case SpanAbort:
		return "abort"
	case SpanRedo:
		return "redo"
	}
	return "?"
}

// Span is one recorded step of a trace: identity (trace id, span id,
// parent), what happened (kind, transaction, site, object, decide
// wave), and when (Wall: nanoseconds since the Unix epoch, for
// cross-process alignment; Start: monotonic nanoseconds since the
// buffer's epoch; Dur: the step's duration, 0 for instant events).
type Span struct {
	Trace  uint64   `json:"trace"`
	ID     uint64   `json:"id"`
	Parent uint64   `json:"parent,omitempty"`
	Kind   SpanKind `json:"-"`
	KindS  string   `json:"kind"`
	Txn    uint64   `json:"txn"`
	Site   int32    `json:"site"`
	Object int64    `json:"object,omitempty"`
	Wave   int64    `json:"wave,omitempty"`
	Wall   int64    `json:"wall"`
	Start  int64    `json:"start"`
	Dur    int64    `json:"dur,omitempty"`
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijective
// hash, used to derive trace ids (and the sampling decision)
// deterministically from a seed and a transaction id.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sampler mints trace contexts deterministically: the same seed and
// transaction id always produce the same trace id and the same
// sampling decision, so two runs of a seeded workload sample the same
// transactions — and a coordinator can re-derive a transaction's
// context (after a restart, say) without having stored it. A nil
// Sampler mints only zero (unsampled) contexts.
type Sampler struct {
	seed      uint64
	threshold uint64 // sample when mix(seed,txn)>>32 < threshold
}

// NewSampler builds a sampler with the given seed and sampling rate in
// [0,1] (clamped). rate 1 samples everything; rate 0 disables.
func NewSampler(seed int64, rate float64) *Sampler {
	if rate <= 0 {
		return &Sampler{seed: uint64(seed), threshold: 0}
	}
	if rate >= 1 {
		return &Sampler{seed: uint64(seed), threshold: 1 << 32}
	}
	return &Sampler{seed: uint64(seed), threshold: uint64(rate * (1 << 32))}
}

// Context mints the transaction's trace context. Deterministic and
// allocation-free; nil-safe (a nil sampler returns the zero context).
func (s *Sampler) Context(txn uint64) TraceContext {
	if s == nil {
		return TraceContext{}
	}
	id := mix64(s.seed ^ txn*0x9e3779b97f4a7c15)
	if id == 0 {
		id = 1
	}
	tc := TraceContext{Trace: id, Span: mix64(id)}
	if id>>32 < s.threshold {
		tc.Flags |= TraceSampled
	}
	return tc
}

// TraceExemplar is one completed trace pinned by tail-based retention:
// its end-to-end latency landed in the buffer's top latency buckets, so
// its spans were copied out of the ring before wraparound could
// overwrite them.
type TraceExemplar struct {
	Trace   uint64 `json:"trace"`
	Txn     uint64 `json:"txn"`
	Latency int64  `json:"latency"`
	Bucket  int    `json:"bucket"`
	Spans   []Span `json:"spans"`
}

// SpanBuffer records spans into a fixed ring (overwriting the oldest
// once full) plus a small pinned exemplar store for the latency tail.
// Record is allocation-free and nil-safe; an unsampled context is a
// no-op before the lock. Complete — called once per finished trace —
// runs the tail-based exemplar retention and may allocate.
type SpanBuffer struct {
	mu    sync.Mutex
	ring  []Span
	next  uint64 // total spans ever recorded
	epoch time.Time
	wall0 int64 // UnixNano at epoch

	// clock, when non-nil, replaces wall time entirely: it returns the
	// current time in nanoseconds, used for both Wall and Start. distsim
	// installs the virtual clock here, which is what makes simulated
	// spans deterministic.
	clock func() int64

	exCap     int
	exemplars []TraceExemplar
}

// NewSpanBuffer builds a span buffer with ring capacity size and up to
// exemplars pinned tail traces (exemplars <= 0 picks a small default).
// size <= 0 disables: the returned buffer is nil, and every method on a
// nil buffer no-ops.
func NewSpanBuffer(size, exemplars int) *SpanBuffer {
	if size <= 0 {
		return nil
	}
	if exemplars <= 0 {
		exemplars = 8
	}
	now := time.Now()
	return &SpanBuffer{
		ring:  make([]Span, size),
		epoch: now,
		wall0: now.UnixNano(),
		exCap: exemplars,
	}
}

// SetClock installs a deterministic time source (nanoseconds): both the
// wall and monotonic stamps of subsequent spans come from it. For
// simulations driving spans from a virtual clock.
func (b *SpanBuffer) SetClock(fn func() int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.clock = fn
	b.mu.Unlock()
}

// Record appends one span for a sampled context. Nil-safe and
// allocation-free; a nil buffer or an unsampled context is a no-op.
func (b *SpanBuffer) Record(tc TraceContext, kind SpanKind, txn uint64, site int32, object, wave, dur int64) {
	if b == nil || !tc.Sampled() {
		return
	}
	b.mu.Lock()
	var wall, start int64
	if b.clock != nil {
		start = b.clock()
		wall = start
	} else {
		start = int64(time.Since(b.epoch))
		wall = b.wall0 + start
	}
	s := &b.ring[b.next%uint64(len(b.ring))]
	s.Trace = tc.Trace
	s.ID = b.next + 1
	s.Parent = tc.Span
	s.Kind = kind
	s.KindS = ""
	s.Txn = txn
	s.Site = site
	s.Object = object
	s.Wave = wave
	s.Wall = wall
	s.Start = start
	s.Dur = dur
	b.next++
	b.mu.Unlock()
}

// Complete marks a sampled trace finished with the given end-to-end
// latency (nanoseconds) and runs tail-based exemplar retention: if the
// latency lands in the top latency buckets seen so far — concretely, if
// the exemplar store has room or the latency beats the slowest pinned
// trace — the trace's spans are copied out of the ring and pinned, so
// ring wraparound cannot lose the tail that matters.
func (b *SpanBuffer) Complete(tc TraceContext, txn uint64, latency int64) {
	if b == nil || !tc.Sampled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Find the current minimum-latency exemplar (the eviction victim).
	minIdx, minLat := -1, int64(0)
	for i := range b.exemplars {
		if minIdx < 0 || b.exemplars[i].Latency < minLat {
			minIdx, minLat = i, b.exemplars[i].Latency
		}
	}
	if len(b.exemplars) >= b.exCap && latency <= minLat {
		return // not in the tail: the ring keeps (and may overwrite) it
	}
	spans := b.collectLocked(tc.Trace)
	if len(spans) == 0 {
		return
	}
	ex := TraceExemplar{
		Trace:   tc.Trace,
		Txn:     txn,
		Latency: latency,
		Bucket:  bucketOf(uint64(latency)),
		Spans:   spans,
	}
	// Re-completing the same trace (a retry under the same id) replaces
	// its pin rather than duplicating it.
	for i := range b.exemplars {
		if b.exemplars[i].Trace == tc.Trace {
			b.exemplars[i] = ex
			return
		}
	}
	if len(b.exemplars) < b.exCap {
		b.exemplars = append(b.exemplars, ex)
		return
	}
	b.exemplars[minIdx] = ex
}

// collectLocked copies the retained spans of one trace, oldest-first.
// Caller holds b.mu.
func (b *SpanBuffer) collectLocked(trace uint64) []Span {
	n := uint64(len(b.ring))
	start, count := uint64(0), b.next
	if b.next > n {
		start, count = b.next-n, n
	}
	var out []Span
	for i := uint64(0); i < count; i++ {
		s := b.ring[(start+i)%n]
		if s.Trace == trace {
			s.KindS = s.Kind.String()
			out = append(out, s)
		}
	}
	return out
}

// Len reports how many spans are currently retained in the ring.
func (b *SpanBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.next < uint64(len(b.ring)) {
		return int(b.next)
	}
	return len(b.ring)
}

// Cap reports the ring capacity (0 for nil).
func (b *SpanBuffer) Cap() int {
	if b == nil {
		return 0
	}
	return len(b.ring)
}

// Snapshot copies out the retained ring spans oldest-first, with KindS
// filled in for JSON rendering.
func (b *SpanBuffer) Snapshot() []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := uint64(len(b.ring))
	start, count := uint64(0), b.next
	if b.next > n {
		start, count = b.next-n, n
	}
	out := make([]Span, 0, count)
	for i := uint64(0); i < count; i++ {
		s := b.ring[(start+i)%n]
		s.KindS = s.Kind.String()
		out = append(out, s)
	}
	return out
}

// Exemplars copies out the pinned tail traces (unsorted).
func (b *SpanBuffer) Exemplars() []TraceExemplar {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TraceExemplar, len(b.exemplars))
	copy(out, b.exemplars)
	return out
}

// TraceOf copies out the retained spans (ring or exemplar) of the trace
// a transaction belongs to, oldest-first.
func (b *SpanBuffer) TraceOf(trace uint64) []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if spans := b.collectLocked(trace); len(spans) > 0 {
		return spans
	}
	for i := range b.exemplars {
		if b.exemplars[i].Trace == trace {
			out := make([]Span, len(b.exemplars[i].Spans))
			copy(out, b.exemplars[i].Spans)
			return out
		}
	}
	return nil
}

// WriteChromeTrace renders spans as a Chrome trace_event JSON document
// ({"traceEvents": [...]}, the chrome://tracing / Perfetto format).
// Timestamps are the spans' wall stamps in microseconds, so documents
// from different processes of one cluster merge on a shared axis; the
// process name becomes pid, the transaction becomes tid, and the trace
// identity travels in args.
func WriteChromeTrace(w io.Writer, process string, spans []Span) error {
	return WriteChromeTraceGroups(w, []SpanGroup{{Process: process, Spans: spans}})
}

// SpanGroup is one process's contribution to a merged Chrome trace.
type SpanGroup struct {
	Process string `json:"process"`
	Spans   []Span `json:"spans"`
}

// WriteChromeTraceGroups renders several processes' spans as ONE Chrome
// trace document: each group keeps its own pid lane, and because every
// span's ts is a wall stamp the lanes line up on a shared time axis —
// the cluster-wide view sccctl trace -chrome produces.
func WriteChromeTraceGroups(w io.Writer, groups []SpanGroup) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	for _, g := range groups {
		for _, s := range g.Spans {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			ph, dur := "X", s.Dur
			if dur <= 0 {
				// Instant events render as zero-width slices; keep them "X"
				// with a 1µs floor so chrome://tracing shows them.
				dur = 1000
			}
			kind := s.KindS
			if kind == "" {
				kind = s.Kind.String()
			}
			fmt.Fprintf(bw,
				`{"name":%q,"ph":%q,"ts":%.3f,"dur":%.3f,"pid":%q,"tid":"T%d","args":{"trace":"%016x","span":%d,"parent":%d,"site":%d,"object":%d,"wave":%d}}`,
				kind, ph, float64(s.Wall)/1e3, float64(dur)/1e3, g.Process, s.Txn,
				s.Trace, s.ID, s.Parent, s.Site, s.Object, s.Wave)
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
