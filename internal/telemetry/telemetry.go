// Package telemetry is the repo's low-overhead instrumentation layer:
// nil-safe atomic counters and gauges, lock-free sharded histograms
// with power-of-two buckets, and a ring-buffered structured event
// tracer for the commit conversation (tracer.go). It imports nothing
// from the rest of the repo so every layer — core, depgraph, dist,
// wire — can depend on it without cycles.
//
// The overhead contract, pinned by alloc_test.go: Counter.Inc,
// Gauge.Set, Histogram.Observe and Tracer.Record are allocation-free,
// and every method is nil-safe (a nil receiver is a no-op), so
// instrumented hot paths cost one branch when telemetry is off.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count (0 for nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed level (held-set size, pipeline
// depth). The zero value is ready; a nil *Gauge is a no-op.
type Gauge struct {
	v    atomic.Int64
	high atomic.Int64
}

// Set stores the current level and folds it into the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Load returns the current level (0 for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High returns the high-water mark since creation (0 for nil).
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.high.Load()
}

// Histogram buckets and sharding. Values land in power-of-two buckets
// — bucket i counts observations v with 2^(i-1) <= v < 2^i (bucket 0
// counts v == 0) — so 48 buckets cover the full useful range of
// nanosecond latencies (2^47 ns ≈ 1.6 days) and of any count we
// track. Observers are spread over a small fixed set of shards to
// keep concurrent Observe calls off a shared cache line; Snapshot
// sums the shards.
const (
	numBuckets = 48
	numShards  = 8
)

type histShard struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Uint64
	_      [48]byte // pad to keep shards on separate cache lines
}

// Histogram is a lock-free sharded histogram with power-of-two
// buckets. The zero value is ready to embed; a nil *Histogram is a
// no-op.
type Histogram struct {
	shards [numShards]histShard
}

// bucketOf maps a value to its power-of-two bucket index: the
// position of the highest set bit plus one, capped at the last
// bucket (so bucket 0 holds only v == 0).
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// Observe records one value. Shard choice keys off the observer's
// stack address, which is stable per goroutine and free to compute —
// no per-goroutine state, no hashing.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	var pin byte
	s := &h.shards[(uintptr(unsafe.Pointer(&pin))>>10)&(numShards-1)]
	s.counts[bucketOf(v)].Add(1)
	s.sum.Add(v)
}

// HistSnapshot is a merged, consistent-enough view of a histogram
// (each shard read atomically; cross-shard skew is bounded by
// in-flight Observe calls).
type HistSnapshot struct {
	Counts [numBuckets]uint64
	Sum    uint64
	Count  uint64
}

// Snapshot merges the shards.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			n := sh.counts[b].Load()
			s.Counts[b] += n
			s.Count += n
		}
		s.Sum += sh.sum.Load()
	}
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.Snapshot().Count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.Snapshot().Sum }

// BucketUpperBound returns the exclusive upper bound of bucket i
// (inclusive for rendering as a Prometheus `le` bound): 0 for bucket
// 0, 2^i - 1 thereafter, +Inf for the last bucket.
func BucketUpperBound(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= numBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)) - 1
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]): the upper bound of the bucket the q-th observation falls
// in. Returns 0 on an empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, n := range s.Counts {
		seen += n
		if seen > rank {
			return BucketUpperBound(i)
		}
	}
	return BucketUpperBound(numBuckets - 1)
}

// Mean returns the arithmetic mean of the observations (0 if empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
