package telemetry

// DistMetrics is the coordinator's instrument block: conversation
// counts, per-phase latency, wave/release shape, and the decision-log
// conservation counters the cluster smoke asserts (per coordinator
// incarnation: Logged + Adopted == Resolved + Live at quiesce).
type DistMetrics struct {
	FastCommits   Counter // edge-free direct commits (no conversation)
	Conversations Counter // commit conversations entered (hold phase run)

	HoldNanos    Histogram // commit-hold phase (all sites held)
	DecideNanos  Histogram // decision round incl. pipeline wait + log force
	ReleaseNanos Histogram // release fan-out after a clean decision

	WaveSize     Histogram // decide-pipeline flat-combining wave width
	ReleaseWidth Histogram // transactions released per cascade round
	Sheds        Counter   // conversations refused by the hold policy
	Held         Gauge     // held (pseudo-committed) set size + high-water

	DecisionsLogged   Counter // commit decisions forced to the log
	DecisionsAdopted  Counter // decisions adopted from a predecessor's log
	DecisionsResolved Counter // decisions fully acked and truncated
	LiveDecisions     Gauge   // open release-ack sets + high-water

	Crashes  Counter // site crash transitions observed
	Restarts Counter // site recoveries completed

	// Mirror is the dependency-mirror instrument block; the cluster
	// attaches it via depgraph.Mirror.SetMetrics.
	Mirror MirrorMetrics
}

// WireMetrics instruments the coordinator's transport: frame and byte
// flow, reconnects, outstanding-call depth, and a per-verb RTT
// histogram indexed directly by the frame kind byte (all wire kinds
// fit under 64). One instance is shared by every peer connection.
type WireMetrics struct {
	FramesOut Counter
	FramesIn  Counter
	BytesOut  Counter
	BytesIn   Counter

	Reconnects Counter // successful re-dials after a connection loss
	Pipeline   Gauge   // outstanding request/response calls + high-water

	rtt [64]Histogram
}

// RTT returns the round-trip histogram for a frame kind, or nil when
// out of range (so callers can Observe unconditionally).
func (w *WireMetrics) RTT(kind byte) *Histogram {
	if w == nil || int(kind) >= len(w.rtt) {
		return nil
	}
	return &w.rtt[kind]
}

// EachRTT visits every verb histogram that has observations.
func (w *WireMetrics) EachRTT(f func(kind byte, s HistSnapshot)) {
	if w == nil {
		return
	}
	for k := range w.rtt {
		if s := w.rtt[k].Snapshot(); s.Count > 0 {
			f(byte(k), s)
		}
	}
}

// MirrorMetrics instruments the coordinator's dependency mirror:
// cycle-check cost (nodes visited per search) and observed chain
// depth. The mirror runs under the coordinator mutex, so plain
// Observe calls are already serialized.
type MirrorMetrics struct {
	CycleCost  Histogram // nodes visited per HasCycleFrom search
	ChainDepth Histogram // LongestChainFrom results
}
