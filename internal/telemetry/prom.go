package telemetry

import (
	"fmt"
	"io"
	"math"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (hand-rolled — the repo takes no dependencies). Each helper writes
// the # HELP / # TYPE header the first time a metric family appears
// and the sample lines after it; histogram families emit cumulative
// le-buckets plus _sum and _count, trimming the empty tail of the
// power-of-two bucket range.
type PromWriter struct {
	W    io.Writer
	seen map[string]bool
}

func (p *PromWriter) header(name, typ, help string) {
	if p.seen == nil {
		p.seen = make(map[string]bool)
	}
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	fmt.Fprintf(p.W, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// lbl wraps a `key="value"` label set in braces (empty stays empty).
func lbl(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// lblMore appends extra to a label set for bucket lines.
func lblMore(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// Counter writes one counter sample. labels is a pre-formatted
// `key="value"` list or empty.
func (p *PromWriter) Counter(name, help string, v uint64, labels string) {
	p.header(name, "counter", help)
	fmt.Fprintf(p.W, "%s%s %d\n", name, lbl(labels), v)
}

// Gauge writes one gauge sample.
func (p *PromWriter) Gauge(name, help string, v int64, labels string) {
	p.header(name, "gauge", help)
	fmt.Fprintf(p.W, "%s%s %d\n", name, lbl(labels), v)
}

// Histogram writes one histogram family member: cumulative le-bucket
// lines, _sum and _count.
func (p *PromWriter) Histogram(name, help string, s HistSnapshot, labels string) {
	p.header(name, "histogram", help)
	// Trim trailing empty buckets: find the last non-zero bucket so a
	// histogram of small counts does not emit 40 identical lines.
	last := 0
	for i, n := range s.Counts {
		if n != 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += s.Counts[i]
		ub := BucketUpperBound(i)
		if math.IsInf(ub, 1) {
			break
		}
		fmt.Fprintf(p.W, "%s_bucket%s %d\n", name, lblMore(labels, fmt.Sprintf(`le="%g"`, ub)), cum)
	}
	fmt.Fprintf(p.W, "%s_bucket%s %d\n", name, lblMore(labels, `le="+Inf"`), s.Count)
	fmt.Fprintf(p.W, "%s_sum%s %d\n", name, lbl(labels), s.Sum)
	fmt.Fprintf(p.W, "%s_count%s %d\n", name, lbl(labels), s.Count)
}
