package telemetry

import (
	"sync"
	"time"
)

// EventKind labels one step of a commit conversation (or a fault
// transition) in the tracer's ring.
type EventKind uint8

const (
	EvBegin   EventKind = iota + 1 // transaction first touched a site
	EvBlocked                      // a request parked behind a conflict
	EvHold                         // commit-hold issued at a site
	EvDecide                       // decision round done (Arg = global deps)
	EvRelease                      // pseudo-commit released at a site
	EvShed                         // hold policy refused the conversation
	EvCrash                        // site crashed
	EvRestart                      // site recovered (Arg = redone commits)
)

// String names the kind for /tracez and sccctl trace.
func (k EventKind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvBlocked:
		return "blocked"
	case EvHold:
		return "hold"
	case EvDecide:
		return "decide"
	case EvRelease:
		return "release"
	case EvShed:
		return "shed"
	case EvCrash:
		return "crash"
	case EvRestart:
		return "restart"
	}
	return "?"
}

// Event is one recorded step: a monotonic timestamp (nanoseconds
// since the tracer's epoch), the transaction and site involved, and a
// kind-specific argument (dependency count, redo count, ...).
type Event struct {
	Seq   uint64    `json:"seq"`
	Nanos int64     `json:"nanos"`
	Kind  EventKind `json:"-"`
	KindS string    `json:"kind"`
	Txn   uint64    `json:"txn"`
	Site  int32     `json:"site"`
	Arg   int64     `json:"arg"`
}

// Tracer records conversation events into a fixed ring, overwriting
// the oldest once full — drained on demand (Snapshot) rather than
// logged eagerly. Record is allocation-free and nil-safe; the ring is
// pre-allocated at construction. A mutex (not atomics) guards the
// ring: Record's critical section is a few stores, and tracing is
// opt-in, so contention is not on the default path at all.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	next  uint64 // total events ever recorded; ring index is next % len
	epoch time.Time
}

// NewTracer builds a tracer with capacity size (<= 0 disables: the
// returned tracer is nil, and every method on a nil tracer no-ops).
func NewTracer(size int) *Tracer {
	if size <= 0 {
		return nil
	}
	return &Tracer{ring: make([]Event, size), epoch: time.Now()}
}

// Record appends one event. Nil-safe, allocation-free.
func (tr *Tracer) Record(kind EventKind, txn uint64, site int32, arg int64) {
	if tr == nil {
		return
	}
	now := int64(time.Since(tr.epoch))
	tr.mu.Lock()
	e := &tr.ring[tr.next%uint64(len(tr.ring))]
	e.Seq = tr.next
	e.Nanos = now
	e.Kind = kind
	e.Txn = txn
	e.Site = site
	e.Arg = arg
	tr.next++
	tr.mu.Unlock()
}

// Len reports how many events are currently retained.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.next < uint64(len(tr.ring)) {
		return int(tr.next)
	}
	return len(tr.ring)
}

// Snapshot copies out the retained events oldest-first, with KindS
// filled in for JSON rendering.
func (tr *Tracer) Snapshot() []Event {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := uint64(len(tr.ring))
	start, count := uint64(0), tr.next
	if tr.next > n {
		start, count = tr.next-n, n
	}
	out := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		e := tr.ring[(start+i)%n]
		e.KindS = e.Kind.String()
		out = append(out, e)
	}
	return out
}
