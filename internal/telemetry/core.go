package telemetry

// CoreStats is the scheduler's counter block — one Counter per field
// of core.Stats (which stays a plain comparable struct built FROM
// these counters on snapshot, so the documented snapshot semantics
// are unchanged). The scheduler increments under its own mutex, so
// the counters are exact; being atomics they can also be read
// lock-free by /metrics scrapes.
type CoreStats struct {
	Executes       Counter // requests executed immediately
	Blocks         Counter // requests parked behind a conflict
	Grants         Counter // blocked requests later granted
	Aborts         Counter // transactions aborted (all causes)
	DeadlockAborts Counter // aborts from wait-for deadlock
	CycleAborts    Counter // aborts from commit-dependency cycles
	Withdrawals    Counter // blocked requests withdrawn before grant
	Commits        Counter // transactions fully committed
	PseudoCommits  Counter // commits deferred on commit dependencies
	CycleChecks    Counter // dependency-graph cycle searches
	CommitDepEdges Counter // commit-dependency edges added
	WaitForEdges   Counter // wait-for edges added
}
