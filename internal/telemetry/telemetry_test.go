package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the power-of-two bucketing: bucket 0
// holds exactly v == 0, bucket i holds 2^(i-1) <= v < 2^i, and the
// top bucket absorbs everything beyond the range.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1 << 20, 21},
		{(1 << 21) - 1, 21},
		{1 << 46, 47},
		{1 << 47, 47},        // capped
		{math.MaxUint64, 47}, // capped
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Boundary consistency with the rendered upper bounds: every value
	// must satisfy v <= BucketUpperBound(bucketOf(v)).
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1023, 1024, 1 << 30} {
		ub := BucketUpperBound(bucketOf(v))
		if float64(v) > ub {
			t.Errorf("value %d above its bucket bound %g", v, ub)
		}
		if b := bucketOf(v); b > 0 {
			below := BucketUpperBound(b - 1)
			if float64(v) <= below {
				t.Errorf("value %d fits the previous bucket (bound %g)", v, below)
			}
		}
	}
	if !math.IsInf(BucketUpperBound(numBuckets-1), 1) {
		t.Errorf("top bucket bound must be +Inf")
	}
}

// TestHistogramSnapshot checks count/sum/quantile arithmetic across
// the shard merge.
func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if want := uint64(1000 * 1001 / 2); s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	if q := s.Quantile(0.5); q < 500 || q > 1023 {
		t.Fatalf("p50 = %g, want within [500,1023] (power-of-two bound above the median)", q)
	}
	if q := s.Quantile(1.0); q < 1000 {
		t.Fatalf("p100 = %g, want >= 1000", q)
	}
	if m := s.Mean(); m != float64(s.Sum)/1000 {
		t.Fatalf("mean = %g", m)
	}
}

// TestConcurrentExactness asserts counters, gauges and histograms
// lose no increments under concurrency — run under -race this also
// proves the paths are data-race-free.
func TestConcurrentExactness(t *testing.T) {
	const workers = 8
	const perWorker = 10000
	var c Counter
	var g Gauge
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(w*perWorker + i))
				h.Observe(uint64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if c.Load() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*perWorker)
	}
	if s := h.Snapshot(); s.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
	if g.High() < perWorker-1 {
		t.Fatalf("gauge high-water = %d, want >= %d", g.High(), perWorker-1)
	}
}

// TestNilSafety: every instrument no-ops on a nil receiver — this is
// the "telemetry off" fast path.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var w *WireMetrics
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(9)
	tr.Record(EvHold, 1, 2, 3)
	if c.Load() != 0 || g.Load() != 0 || g.High() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if tr.Snapshot() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer must be empty")
	}
	if w.RTT(0x12) != nil {
		t.Fatal("nil wire metrics must hand out nil histograms")
	}
	w.RTT(0x12).Observe(1) // and those must still be safe to observe
	if NewTracer(0) != nil {
		t.Fatal("NewTracer(0) must disable tracing")
	}
}

// TestTracerWraparound pins the ring semantics: once full the oldest
// events are overwritten, Snapshot returns oldest-first, and Seq
// keeps counting across the wrap.
func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(EvHold, uint64(i), int32(i), int64(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		want := uint64(6 + i)
		if e.Seq != want || e.Txn != want {
			t.Fatalf("event %d = seq %d txn %d, want %d (oldest-first after wrap)", i, e.Seq, e.Txn, want)
		}
		if e.KindS != "hold" {
			t.Fatalf("event kind string = %q", e.KindS)
		}
	}
	// Before wrapping, a short tracer returns exactly what was recorded.
	tr2 := NewTracer(8)
	tr2.Record(EvBegin, 1, 0, 0)
	tr2.Record(EvDecide, 1, -1, 2)
	evs = tr2.Snapshot()
	if len(evs) != 2 || evs[0].Kind != EvBegin || evs[1].Kind != EvDecide {
		t.Fatalf("pre-wrap snapshot = %+v", evs)
	}
	if evs[1].Nanos < evs[0].Nanos {
		t.Fatalf("timestamps must be monotonic: %d then %d", evs[0].Nanos, evs[1].Nanos)
	}
}

// TestPromRender sanity-checks the text exposition: headers once per
// family, cumulative buckets ending at +Inf, sum/count lines.
func TestPromRender(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)
	var sb strings.Builder
	p := &PromWriter{W: &sb}
	var c Counter
	c.Add(7)
	p.Counter("scc_commits_total", "commits", c.Load(), "")
	p.Counter("scc_commits_total", "commits", 1, `site="1"`)
	p.Histogram("scc_hold_nanos", "hold phase", h.Snapshot(), "")
	out := sb.String()
	if strings.Count(out, "# TYPE scc_commits_total counter") != 1 {
		t.Fatalf("counter header must appear exactly once:\n%s", out)
	}
	for _, want := range []string{
		"scc_commits_total 7",
		`scc_commits_total{site="1"} 1`,
		`scc_hold_nanos_bucket{le="+Inf"} 3`,
		"scc_hold_nanos_sum 104",
		"scc_hold_nanos_count 3",
		`scc_hold_nanos_bucket{le="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative: the le="127" bucket (holding 100) must count all 3.
	if !strings.Contains(out, `scc_hold_nanos_bucket{le="127"} 3`) {
		t.Fatalf("cumulative bucket wrong:\n%s", out)
	}
}

// TestGaugeHighWater pins Set's max-fold under regressing values.
func TestGaugeHighWater(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Set(2)
	if g.Load() != 2 || g.High() != 5 {
		t.Fatalf("load=%d high=%d, want 2/5", g.Load(), g.High())
	}
	g.Set(9)
	if g.High() != 9 {
		t.Fatalf("high=%d, want 9", g.High())
	}
}
