//go:build !race

package telemetry

import "testing"

// The telemetry overhead contract: every hot-path instrument call —
// enabled or nil — is allocation-free. The scheduler/coordinator pins
// in internal/core and internal/dist depend on this; a regression
// here would surface there as a budget blowout, but failing at the
// source is a clearer signal.

func TestInstrumentZeroAllocs(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	tr := NewTracer(64)
	sb := NewSpanBuffer(64, 4)
	fr := NewFlightRecorder(64, "test", t.TempDir())
	smp := NewSampler(42, 0.5)
	sampled := TraceContext{Trace: 1, Span: 1, Flags: TraceSampled}
	unsampled := TraceContext{Trace: 2, Span: 2}
	var nilC *Counter
	var nilH *Histogram
	var nilTr *Tracer
	var nilSB *SpanBuffer
	var nilFR *FlightRecorder
	cases := []struct {
		name string
		f    func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(7) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"Tracer.Record", func() { tr.Record(EvHold, 1, 2, 3) }},
		{"Sampler.Context", func() { smp.Context(7) }},
		{"SpanBuffer.Record sampled", func() { sb.Record(sampled, SpanHold, 1, 2, 3, 0, 0) }},
		{"SpanBuffer.Record unsampled", func() { sb.Record(unsampled, SpanHold, 1, 2, 3, 0, 0) }},
		{"FlightRecorder.Record", func() { fr.Record(EvHold, 1, 2, 3) }},
		{"nil Counter.Inc", func() { nilC.Inc() }},
		{"nil Histogram.Observe", func() { nilH.Observe(1) }},
		{"nil Tracer.Record", func() { nilTr.Record(EvHold, 1, 2, 3) }},
		{"nil SpanBuffer.Record", func() { nilSB.Record(sampled, SpanHold, 1, 2, 3, 0, 0) }},
		{"nil FlightRecorder.Record", func() { nilFR.Record(EvHold, 1, 2, 3) }},
	}
	for _, tc := range cases {
		if avg := testing.AllocsPerRun(200, tc.f); avg != 0 {
			t.Errorf("%s allocates %.2f times per op, want 0", tc.name, avg)
		}
	}
}
