package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Flight recorder: a bounded structured-event black box per process.
//
// The recorder accumulates the same conversation events the Tracer
// does — but it exists to be *dumped*, not scraped: on SIGQUIT, on a
// daemon panic, or when a decision-log conservation invariant trips,
// the recorder writes a self-contained JSON post-mortem (its own event
// ring, plus snapshots of any attached span buffer and tracer) to
// disk. The recording path keeps the package's contract: Record is
// allocation-free and nil-safe; only Dump allocates.

// FlightEvent is one black-box entry: wall and monotonic stamps plus
// the same (kind, txn, site, arg) shape the Tracer records.
type FlightEvent struct {
	Seq   uint64    `json:"seq"`
	Wall  int64     `json:"wall"`
	Nanos int64     `json:"nanos"`
	Kind  EventKind `json:"-"`
	KindS string    `json:"kind"`
	Txn   uint64    `json:"txn"`
	Site  int32     `json:"site"`
	Arg   int64     `json:"arg"`
}

// FlightDump is the JSON document a dump writes.
type FlightDump struct {
	Process   string          `json:"process"`
	Reason    string          `json:"reason"`
	Wall      string          `json:"wall"`
	Events    []FlightEvent   `json:"events"`
	Spans     []Span          `json:"spans,omitempty"`
	Exemplars []TraceExemplar `json:"exemplars,omitempty"`
	Trace     []Event         `json:"trace,omitempty"`
}

// FlightRecorder is the per-process black box. A nil recorder no-ops
// everywhere, so call sites never guard.
type FlightRecorder struct {
	mu      sync.Mutex
	ring    []FlightEvent
	next    uint64
	epoch   time.Time
	wall0   int64
	process string
	dir     string

	spans  *SpanBuffer
	tracer *Tracer

	lastPath string
	dumps    int
	once     map[string]bool // reasons already dumped via DumpOnce
}

// NewFlightRecorder builds a recorder with capacity size for process
// (a short role label: "coord", "site-a", ...), dumping into dir
// (defaulted to the working directory). size <= 0 disables: the
// returned recorder is nil.
func NewFlightRecorder(size int, process, dir string) *FlightRecorder {
	if size <= 0 {
		return nil
	}
	if dir == "" {
		dir = "."
	}
	now := time.Now()
	return &FlightRecorder{
		ring:    make([]FlightEvent, size),
		epoch:   now,
		wall0:   now.UnixNano(),
		process: process,
		dir:     dir,
		once:    make(map[string]bool),
	}
}

// AttachSpans includes the span buffer's snapshot in future dumps.
func (f *FlightRecorder) AttachSpans(b *SpanBuffer) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.spans = b
	f.mu.Unlock()
}

// AttachTracer includes the tracer's snapshot in future dumps.
func (f *FlightRecorder) AttachTracer(tr *Tracer) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.tracer = tr
	f.mu.Unlock()
}

// Record appends one event. Nil-safe, allocation-free.
func (f *FlightRecorder) Record(kind EventKind, txn uint64, site int32, arg int64) {
	if f == nil {
		return
	}
	now := int64(time.Since(f.epoch))
	f.mu.Lock()
	e := &f.ring[f.next%uint64(len(f.ring))]
	e.Seq = f.next
	e.Wall = f.wall0 + now
	e.Nanos = now
	e.Kind = kind
	e.KindS = ""
	e.Txn = txn
	e.Site = site
	e.Arg = arg
	f.next++
	f.mu.Unlock()
}

// Len reports how many events are currently retained.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next < uint64(len(f.ring)) {
		return int(f.next)
	}
	return len(f.ring)
}

// Cap reports the ring capacity (0 for nil).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// LastDump reports the path of the most recent on-disk dump ("" if
// none yet).
func (f *FlightRecorder) LastDump() string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastPath
}

// Dumps reports how many dumps have been written.
func (f *FlightRecorder) Dumps() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// snapshot assembles the dump document. Caller must NOT hold f.mu.
func (f *FlightRecorder) snapshot(reason string) FlightDump {
	f.mu.Lock()
	n := uint64(len(f.ring))
	start, count := uint64(0), f.next
	if f.next > n {
		start, count = f.next-n, n
	}
	events := make([]FlightEvent, 0, count)
	for i := uint64(0); i < count; i++ {
		e := f.ring[(start+i)%n]
		e.KindS = e.Kind.String()
		events = append(events, e)
	}
	spans, tracer := f.spans, f.tracer
	process := f.process
	f.mu.Unlock()

	d := FlightDump{
		Process: process,
		Reason:  reason,
		Wall:    time.Now().UTC().Format(time.RFC3339Nano),
		Events:  events,
	}
	if spans != nil {
		d.Spans = spans.Snapshot()
		d.Exemplars = spans.Exemplars()
	}
	if tracer != nil {
		d.Trace = tracer.Snapshot()
	}
	return d
}

// DumpTo writes the post-mortem document to w.
func (f *FlightRecorder) DumpTo(w io.Writer, reason string) error {
	if f == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f.snapshot(reason))
}

// Dump writes the post-mortem to a fresh file in the recorder's dump
// directory and returns its path. File naming is
// flight-<process>-<n>.json so successive dumps never clobber.
func (f *FlightRecorder) Dump(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	f.dumps++
	path := filepath.Join(f.dir, fmt.Sprintf("flight-%s-%d.json", f.process, f.dumps))
	f.mu.Unlock()

	tmp := path + ".tmp"
	file, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	err = f.DumpTo(file, reason)
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	f.mu.Lock()
	f.lastPath = path
	f.mu.Unlock()
	return path, nil
}

// DumpOnce dumps at most once per reason — the hook for invariant
// violations that would otherwise re-trip on every subsequent check.
// Returns the dump path ("" when this reason already fired).
func (f *FlightRecorder) DumpOnce(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	if f.once[reason] {
		f.mu.Unlock()
		return "", nil
	}
	f.once[reason] = true
	f.mu.Unlock()
	return f.Dump(reason)
}
