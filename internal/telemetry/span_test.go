package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSamplerDeterminism pins the sampling contract: the same (seed,
// txn) pair always yields the same trace id and the same decision, so
// seeded runs are reproducible and contexts can be re-derived after a
// restart without having been stored.
func TestSamplerDeterminism(t *testing.T) {
	a := NewSampler(42, 0.5)
	b := NewSampler(42, 0.5)
	sampled := 0
	for txn := uint64(1); txn <= 4096; txn++ {
		ca, cb := a.Context(txn), b.Context(txn)
		if ca != cb {
			t.Fatalf("txn %d: contexts differ across samplers: %+v vs %+v", txn, ca, cb)
		}
		if !ca.Valid() {
			t.Fatalf("txn %d: invalid trace id", txn)
		}
		if ca.Sampled() {
			sampled++
		}
	}
	// Rate 0.5 over 4096 uniform hashes: expect roughly half, with wide
	// slack — this asserts the threshold works, not the distribution.
	if sampled < 1024 || sampled > 3072 {
		t.Errorf("rate 0.5 sampled %d/4096, far from half", sampled)
	}

	// Different seeds must diverge (else the seed does nothing).
	c := NewSampler(43, 0.5)
	diff := 0
	for txn := uint64(1); txn <= 256; txn++ {
		if a.Context(txn).Trace != c.Context(txn).Trace {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seed change did not change any trace id")
	}

	// Rate edges: 1 samples everything, 0 nothing; nil mints zero.
	all := NewSampler(7, 1)
	none := NewSampler(7, 0)
	for txn := uint64(1); txn <= 64; txn++ {
		if !all.Context(txn).Sampled() {
			t.Fatalf("rate 1 skipped txn %d", txn)
		}
		if none.Context(txn).Sampled() {
			t.Fatalf("rate 0 sampled txn %d", txn)
		}
	}
	var nilS *Sampler
	if tc := nilS.Context(9); tc.Valid() || tc.Sampled() {
		t.Errorf("nil sampler minted %+v", tc)
	}
}

// TestSpanBufferWraparound checks the ring semantics: capacity bounds
// retention, oldest spans are overwritten first, and snapshots come
// out oldest-first.
func TestSpanBufferWraparound(t *testing.T) {
	b := NewSpanBuffer(4, 2)
	tc := TraceContext{Trace: 1, Span: 1, Flags: TraceSampled}
	for i := uint64(1); i <= 6; i++ {
		b.Record(tc, SpanRequest, i, 0, 0, 0, 0)
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	snap := b.Snapshot()
	var txns []uint64
	for _, s := range snap {
		txns = append(txns, s.Txn)
	}
	want := []uint64{3, 4, 5, 6}
	for i := range want {
		if txns[i] != want[i] {
			t.Fatalf("snapshot txns = %v, want %v", txns, want)
		}
	}
	// Unsampled contexts record nothing.
	b.Record(TraceContext{Trace: 2}, SpanBegin, 9, 0, 0, 0, 0)
	if b.Len() != 4 || b.Snapshot()[3].Txn != 6 {
		t.Error("unsampled context was recorded")
	}
	// Nil buffer no-ops everywhere.
	var nb *SpanBuffer
	nb.Record(tc, SpanBegin, 1, 0, 0, 0, 0)
	nb.Complete(tc, 1, 1)
	if nb.Len() != 0 || nb.Snapshot() != nil || nb.Exemplars() != nil {
		t.Error("nil buffer retained data")
	}
}

// TestExemplarRetention is the tail-based retention contract: a
// completed trace whose latency lands in the top buckets is pinned
// with its spans copied out, so subsequent ring wraparound cannot lose
// it, and the slowest traces win eviction once the store is full.
func TestExemplarRetention(t *testing.T) {
	b := NewSpanBuffer(8, 2)
	mk := func(trace uint64) TraceContext {
		return TraceContext{Trace: trace, Span: trace, Flags: TraceSampled}
	}

	// Trace 1 completes slow, then the ring wraps completely.
	b.Record(mk(1), SpanBegin, 1, 0, 0, 0, 0)
	b.Record(mk(1), SpanRelease, 1, 0, 0, 0, 0)
	b.Complete(mk(1), 1, 1_000_000)
	for i := uint64(10); i < 30; i++ {
		b.Record(mk(i), SpanRequest, i, 0, 0, 0, 0)
	}
	if got := b.TraceOf(1); len(got) != 2 {
		t.Fatalf("trace 1 lost to wraparound: %d spans retained, want 2", len(got))
	}

	// Fill the store (cap 2), then evict by latency: a faster trace
	// must not displace a slower pin; a slower one must.
	b.Record(mk(2), SpanBegin, 2, 0, 0, 0, 0)
	b.Complete(mk(2), 2, 2_000_000)
	b.Record(mk(3), SpanBegin, 3, 0, 0, 0, 0)
	b.Complete(mk(3), 3, 500) // faster than both pins: rejected
	exs := b.Exemplars()
	if len(exs) != 2 {
		t.Fatalf("exemplar count = %d, want 2", len(exs))
	}
	for _, ex := range exs {
		if ex.Trace == 3 {
			t.Fatal("fast trace displaced a slower exemplar")
		}
	}
	b.Record(mk(4), SpanBegin, 4, 0, 0, 0, 0)
	b.Complete(mk(4), 4, 5_000_000) // slower than the min pin (trace 1)
	traces := map[uint64]bool{}
	for _, ex := range b.Exemplars() {
		traces[ex.Trace] = true
	}
	if !traces[4] || !traces[2] || traces[1] {
		t.Fatalf("eviction picked wrong victim: pins = %v, want {2,4}", traces)
	}

	// Unsampled completion is a no-op.
	b.Complete(TraceContext{Trace: 99}, 99, 1<<40)
	if len(b.Exemplars()) != 2 {
		t.Error("unsampled completion changed the exemplar store")
	}
}

// TestSpanBufferVirtualClock checks SetClock: both stamps come from
// the injected source, which is what makes distsim spans deterministic.
func TestSpanBufferVirtualClock(t *testing.T) {
	b := NewSpanBuffer(4, 1)
	now := int64(0)
	b.SetClock(func() int64 { return now })
	tc := TraceContext{Trace: 5, Span: 5, Flags: TraceSampled}
	now = 1500
	b.Record(tc, SpanBegin, 1, 0, 0, 0, 0)
	now = 2500
	b.Record(tc, SpanHold, 1, 2, 0, 0, 300)
	snap := b.Snapshot()
	if snap[0].Wall != 1500 || snap[0].Start != 1500 {
		t.Errorf("first span stamps = (%d,%d), want (1500,1500)", snap[0].Wall, snap[0].Start)
	}
	if snap[1].Wall != 2500 || snap[1].Dur != 300 {
		t.Errorf("second span = %+v, want wall 2500 dur 300", snap[1])
	}
}

// TestWriteChromeTrace checks the export is valid JSON in the
// trace_event shape with the trace identity in args.
func TestWriteChromeTrace(t *testing.T) {
	b := NewSpanBuffer(8, 1)
	tc := TraceContext{Trace: 0xabc, Span: 7, Flags: TraceSampled}
	b.Record(tc, SpanHold, 3, 1, 42, 0, 2000)
	b.Record(tc, SpanDecide, 3, -1, 0, 4, 0)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, "coord", b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  string  `json:"pid"`
			Tid  string  `json:"tid"`
			Args struct {
				Trace string `json:"trace"`
				Site  int32  `json:"site"`
				Wave  int64  `json:"wave"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("event count = %d, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Name != "hold" || doc.TraceEvents[0].Pid != "coord" || doc.TraceEvents[0].Tid != "T3" {
		t.Errorf("first event = %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[0].Args.Trace != "0000000000000abc" {
		t.Errorf("trace id rendered as %q", doc.TraceEvents[0].Args.Trace)
	}
	if doc.TraceEvents[1].Args.Wave != 4 {
		t.Errorf("wave = %d, want 4", doc.TraceEvents[1].Args.Wave)
	}
}

// TestFlightRecorderDump checks the black box end to end: record,
// attach spans/tracer, dump to a buffer and to disk, DumpOnce
// once-per-reason semantics, and nil safety.
func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(8, "site-a", dir)
	spans := NewSpanBuffer(8, 1)
	tr := NewTracer(8)
	f.AttachSpans(spans)
	f.AttachTracer(tr)

	tc := TraceContext{Trace: 11, Span: 11, Flags: TraceSampled}
	spans.Record(tc, SpanHold, 7, 2, 0, 0, 0)
	tr.Record(EvHold, 7, 2, 1)
	f.Record(EvHold, 7, 2, 1)
	f.Record(EvCrash, 0, 2, 0)

	var buf bytes.Buffer
	if err := f.DumpTo(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Process != "site-a" || d.Reason != "test" {
		t.Errorf("dump header = %q/%q", d.Process, d.Reason)
	}
	if len(d.Events) != 2 || d.Events[1].KindS != "crash" {
		t.Errorf("dump events = %+v", d.Events)
	}
	if len(d.Spans) != 1 || d.Spans[0].Trace != 11 {
		t.Errorf("dump spans = %+v", d.Spans)
	}
	if len(d.Trace) != 1 {
		t.Errorf("dump tracer events = %+v", d.Trace)
	}

	path, err := f.Dump("sigquit")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(path, dir) || f.LastDump() != path {
		t.Errorf("dump path %q, LastDump %q", path, f.LastDump())
	}
	if p2, _ := f.Dump("sigquit"); p2 == path {
		t.Error("second dump clobbered the first")
	}

	if p, err := f.DumpOnce("conservation"); err != nil || p == "" {
		t.Fatalf("first DumpOnce = %q, %v", p, err)
	}
	if p, err := f.DumpOnce("conservation"); err != nil || p != "" {
		t.Errorf("second DumpOnce fired: %q, %v", p, err)
	}

	var nf *FlightRecorder
	nf.Record(EvHold, 1, 1, 1)
	if nf.Len() != 0 || nf.Cap() != 0 || nf.LastDump() != "" {
		t.Error("nil recorder retained state")
	}
	if p, err := nf.Dump("x"); p != "" || err != nil {
		t.Error("nil recorder dumped")
	}
	if NewFlightRecorder(0, "x", "") != nil {
		t.Error("size 0 must disable")
	}
	if NewSpanBuffer(0, 0) != nil {
		t.Error("size 0 must disable")
	}
}
