package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/history"
)

// propConfig shapes one randomized protocol run.
type propConfig struct {
	seed      int64
	objects   int
	steps     int
	maxActive int
	predicate core.Predicate
	recovery  core.Recovery
	unfair    bool
	stateDep  bool
}

// runRandomProtocol drives the scheduler with a random client mix and
// returns everything needed to verify the run.
func runRandomProtocol(t *testing.T, cfg propConfig) (*history.Recorder, *core.Scheduler, map[core.ObjectID]adt.Type, map[core.ObjectID]compat.Classifier) {
	t.Helper()
	rng := rand.New(rand.NewSource(cfg.seed))
	rec := history.NewRecorder()
	s := core.NewScheduler(core.Options{
		Predicate:      cfg.predicate,
		Recovery:       cfg.recovery,
		Unfair:         cfg.unfair,
		StateDependent: cfg.stateDep,
		Debug:          true,
		Recorder:       rec,
	})

	types := map[core.ObjectID]adt.Type{}
	classes := map[core.ObjectID]compat.Classifier{}
	kinds := []struct {
		typ adt.Type
		tab *compat.Table
	}{
		{adt.Page{}, compat.PageTable()},
		{adt.Stack{}, compat.StackTable()},
		{adt.Set{}, compat.SetTable()},
		{adt.KTable{}, compat.KTableTable()},
	}
	for i := 0; i < cfg.objects; i++ {
		k := kinds[rng.Intn(len(kinds))]
		id := core.ObjectID(i + 1)
		types[id] = k.typ
		classes[id] = k.tab
		if err := s.Register(id, k.typ, k.tab); err != nil {
			t.Fatal(err)
		}
	}

	randomOp := func(typ adt.Type) adt.Op {
		specs := typ.Specs()
		sp := specs[rng.Intn(len(specs))]
		return sp.Invoke(1+rng.Intn(3), 1+rng.Intn(3))
	}

	type client struct {
		id      core.TxnID
		blocked bool
	}
	var nextID core.TxnID
	active := map[core.TxnID]*client{}
	// applyEffects resolves grants and retry-aborts for blocked
	// clients and forgets cascaded commits.
	applyEffects := func(eff core.Effects) {
		for _, g := range eff.Grants {
			if c, ok := active[g.Txn]; ok {
				c.blocked = false
			}
		}
		for _, a := range eff.RetryAborts {
			delete(active, a.Txn)
		}
		for _, id := range eff.Committed {
			delete(active, id)
		}
	}

	for step := 0; step < cfg.steps; step++ {
		// Maybe start a new transaction.
		if len(active) < cfg.maxActive && (len(active) == 0 || rng.Intn(3) == 0) {
			nextID++
			if err := s.Begin(nextID); err != nil {
				t.Fatal(err)
			}
			active[nextID] = &client{id: nextID}
			continue
		}
		// Pick a random runnable client (deterministic order).
		var runnable []*client
		for _, c := range active {
			if !c.blocked {
				runnable = append(runnable, c)
			}
		}
		if len(runnable) == 0 {
			// Everyone is blocked: abort one to break the wait
			// (the simulator would do this via timeouts; here any
			// victim works).
			var any *client
			for _, c := range active {
				if any == nil || c.id < any.id {
					any = c
				}
			}
			eff, err := s.Abort(any.id)
			if err != nil {
				t.Fatal(err)
			}
			delete(active, any.id)
			applyEffects(eff)
			continue
		}
		// Deterministic pick.
		min := runnable[0]
		for _, c := range runnable {
			if c.id < min.id {
				min = c
			}
		}
		c := min
		switch rng.Intn(10) {
		case 0: // commit
			st, eff, err := s.Commit(c.id)
			if err != nil {
				t.Fatal(err)
			}
			if st == core.Committed {
				delete(active, c.id)
			} else {
				delete(active, c.id) // pseudo: client is done issuing ops
			}
			applyEffects(eff)
		case 1: // user abort
			eff, err := s.Abort(c.id)
			if err != nil {
				t.Fatal(err)
			}
			delete(active, c.id)
			applyEffects(eff)
		default: // operation
			obj := core.ObjectID(1 + rng.Intn(cfg.objects))
			dec, eff, err := s.Request(c.id, obj, randomOp(types[obj]))
			if err != nil {
				t.Fatal(err)
			}
			switch dec.Outcome {
			case core.Blocked:
				c.blocked = true
			case core.Aborted:
				delete(active, c.id)
			}
			applyEffects(eff)
		}
	}

	// Drain: first commit every runnable client, then abort any still
	// blocked, until none remain.
	for len(active) > 0 {
		var pick *client
		for _, c := range active {
			if !c.blocked && (pick == nil || c.id < pick.id) {
				pick = c
			}
		}
		if pick != nil {
			_, eff, err := s.Commit(pick.id)
			if err != nil {
				t.Fatal(err)
			}
			delete(active, pick.id)
			applyEffects(eff)
			continue
		}
		for _, c := range active {
			if pick == nil || c.id < pick.id {
				pick = c
			}
		}
		eff, err := s.Abort(pick.id)
		if err != nil {
			t.Fatal(err)
		}
		delete(active, pick.id)
		applyEffects(eff)
	}
	return rec, s, types, classes
}

// verifyRun applies every correctness check from DESIGN.md to a
// recorded run.
func verifyRun(t *testing.T, rec *history.Recorder, s *core.Scheduler, types map[core.ObjectID]adt.Type, classes map[core.ObjectID]compat.Classifier, pred core.Predicate) {
	t.Helper()
	if err := rec.PseudoCommitPrecedesCommit(); err != nil {
		t.Error(err)
	}
	events := rec.Events()
	aborted := rec.AbortedTxns()
	if err := history.CheckSoundness(types, events, aborted); err != nil {
		t.Error(err)
	}
	want := map[core.ObjectID]adt.State{}
	for oid := range types {
		st, err := s.CommittedState(oid)
		if err != nil {
			t.Fatal(err)
		}
		want[oid] = st
	}
	if err := history.CheckSerializability(types, events, rec.Commits(), want); err != nil {
		t.Error(err)
	}
	classify := func(obj core.ObjectID, requested, executed adt.Op) bool {
		cl := classes[obj]
		if pred == core.PredCommutativity {
			return compat.CommutativityOnly{C: cl}.Classify(requested, executed) != compat.Commutes
		}
		return cl.Classify(requested, executed) == compat.Recoverable
	}
	if err := history.CommitOrderRespectsDependencies(events, rec.Commits(), classify); err != nil {
		t.Error(err)
	}
}

// TestRandomProtocolRuns is the main property test: many random
// schedules across both predicates, both recovery strategies and both
// scheduling policies; every accepted history must be sound,
// serializable in commit order, and honour the pseudo-commit contract.
func TestRandomProtocolRuns(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, pred := range []core.Predicate{core.PredRecoverability, core.PredCommutativity} {
		for _, recv := range []core.Recovery{core.RecoveryIntentions, core.RecoveryUndo} {
			for _, unfair := range []bool{false, true} {
				for _, seed := range seeds {
					name := fmt.Sprintf("%s/%s/unfair=%v/seed=%d", pred, recv, unfair, seed)
					t.Run(name, func(t *testing.T) {
						cfg := propConfig{
							seed:      seed,
							objects:   6,
							steps:     600,
							maxActive: 8,
							predicate: pred,
							recovery:  recv,
							unfair:    unfair,
						}
						rec, s, types, classes := runRandomProtocol(t, cfg)
						verifyRun(t, rec, s, types, classes, pred)
					})
				}
			}
		}
	}
}

// TestStateDependentRunsStaySoundAndSerializable runs the randomized
// protocol suite with the §3.2 state-dependent refinement enabled: the
// extra concurrency it admits must not cost soundness or
// serializability. Serializability is checked against an order derived
// from the execution's own constraints, because state-recoverable
// admissions are not captured by the static tables.
func TestStateDependentRunsStaySoundAndSerializable(t *testing.T) {
	for seed := int64(50); seed < 58; seed++ {
		cfg := propConfig{
			seed:      seed,
			objects:   5,
			steps:     500,
			maxActive: 6,
			stateDep:  true,
		}
		rec, s, types, classes := runRandomProtocol(t, cfg)
		if err := rec.PseudoCommitPrecedesCommit(); err != nil {
			t.Error(err)
		}
		events := rec.Events()
		if err := history.CheckSoundness(types, events, rec.AbortedTxns()); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		order, err := history.SerializationOrder(events, rec.Commits(),
			func(obj core.ObjectID, later, earlier adt.Op) bool {
				return classes[obj].Classify(later, earlier) != compat.Commutes
			})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := map[core.ObjectID]adt.State{}
		for oid := range types {
			st, err := s.CommittedState(oid)
			if err != nil {
				t.Fatal(err)
			}
			want[oid] = st
		}
		if err := history.CheckSerializability(types, events, order, want); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestRecoveryStrategiesAgree replays identical random schedules under
// both recovery strategies and verifies identical histories and final
// states (§4.4: the protocol is recovery-scheme agnostic).
func TestRecoveryStrategiesAgree(t *testing.T) {
	for seed := int64(10); seed < 18; seed++ {
		cfg := propConfig{seed: seed, objects: 5, steps: 500, maxActive: 6}
		cfg.recovery = core.RecoveryIntentions
		recA, sA, typesA, _ := runRandomProtocol(t, cfg)
		cfg.recovery = core.RecoveryUndo
		recB, sB, _, _ := runRandomProtocol(t, cfg)

		evA, evB := recA.Events(), recB.Events()
		if len(evA) != len(evB) {
			t.Fatalf("seed %d: %d vs %d events", seed, len(evA), len(evB))
		}
		for i := range evA {
			if evA[i] != evB[i] {
				t.Fatalf("seed %d: event %d differs: %+v vs %+v", seed, i, evA[i], evB[i])
			}
		}
		for oid := range typesA {
			a, _ := sA.CommittedState(oid)
			b, _ := sB.CommittedState(oid)
			if !a.Equal(b) {
				t.Fatalf("seed %d object %d: %v vs %v", seed, oid, a, b)
			}
		}
	}
}

// TestRecoverabilityNeverBlocksMoreThanCommutativity: on identical
// schedules the recoverability predicate can only block less (it is a
// strictly weaker conflict predicate).
func TestRecoverabilityNeverBlocksMoreThanCommutativity(t *testing.T) {
	for seed := int64(30); seed < 36; seed++ {
		cfg := propConfig{seed: seed, objects: 5, steps: 400, maxActive: 6}
		cfg.predicate = core.PredRecoverability
		recR, _, _, _ := runRandomProtocol(t, cfg)
		cfg.predicate = core.PredCommutativity
		recC, _, _, _ := runRandomProtocol(t, cfg)
		// The schedules diverge once decisions differ, so an exact
		// per-step comparison is not meaningful, but aggregate
		// blocking with the weaker predicate should not exceed the
		// baseline on the same seed and client mix.
		if recR.Blocks() > recC.Blocks() {
			t.Errorf("seed %d: recoverability blocked %d times, commutativity %d",
				seed, recR.Blocks(), recC.Blocks())
		}
	}
}
