// Package core implements the paper's concurrency control and commit
// protocol (§4): object managers holding execution logs of uncommitted
// operations, conflict classification by recoverability (Figure 2), the
// unified wait-for/commit-dependency graph with combined deadlock and
// serializability-cycle detection, pseudo-commit (§4.3), and both
// recovery strategies of §4.4.
//
// The Scheduler is a synchronous, deterministic state machine: every
// mutating call returns the full set of side effects (granted requests,
// cascaded real commits) so that both the discrete-event simulator and
// the blocking goroutine API (DB/Handle in txn.go) can be built on it.
package core

import (
	"errors"
	"fmt"

	"repro/internal/adt"
	"repro/internal/proto"
)

// The protocol's shared value vocabulary (identifier types, abort
// reasons, the Effects record) lives in internal/proto so that the
// delivery layer can route it without importing core; this package
// aliases every name, so core remains the package user code imports.

// TxnID identifies a transaction. IDs are assigned by the caller and
// must be unique for the scheduler's lifetime (restarted transactions
// get fresh IDs).
type TxnID = proto.TxnID

// ObjectID identifies a database object.
type ObjectID = proto.ObjectID

// Predicate selects the conflict predicate.
type Predicate uint8

// Predicates.
const (
	// PredRecoverability uses both commutativity and recoverability
	// (the paper's protocol).
	PredRecoverability Predicate = iota
	// PredCommutativity is the baseline: only commuting operations
	// run concurrently; recoverable pairs conflict.
	PredCommutativity
)

// String implements fmt.Stringer.
func (p Predicate) String() string {
	if p == PredCommutativity {
		return "commutativity"
	}
	return "recoverability"
}

// Recovery selects the abort-recovery strategy (§4.4).
type Recovery uint8

// Recovery strategies.
const (
	// RecoveryIntentions keeps a committed base state plus the log of
	// uncommitted operations; abort removes the transaction's entries
	// and replays the remainder (an intentions-list scheme).
	RecoveryIntentions Recovery = iota
	// RecoveryUndo applies operations eagerly and reverses them with
	// per-operation semantic undo records (an undo-log scheme). The
	// object's type must implement adt.Undoer.
	RecoveryUndo
)

// String implements fmt.Stringer.
func (r Recovery) String() string {
	if r == RecoveryUndo {
		return "undo-log"
	}
	return "intentions-list"
}

// AbortReason says why the scheduler aborted a transaction (see
// proto.AbortReason for the values' meanings).
type AbortReason = proto.AbortReason

// Abort reasons.
const (
	// ReasonNone: not aborted.
	ReasonNone = proto.ReasonNone
	// ReasonDeadlock: a cycle was found when the transaction blocked
	// (wait-for edges closed a cycle).
	ReasonDeadlock = proto.ReasonDeadlock
	// ReasonCommitCycle: a cycle was found when a recoverable
	// operation tried to execute (commit-dependency edges closed a
	// cycle) — the serializability guard of Lemma 4.
	ReasonCommitCycle = proto.ReasonCommitCycle
	// ReasonUser: the caller invoked Abort.
	ReasonUser = proto.ReasonUser
	// ReasonSiteFailed: a participant site holding the transaction's
	// uncommitted operations crashed before the commit point.
	ReasonSiteFailed = proto.ReasonSiteFailed
	// ReasonShed: the coordinator's hold policy revoked the hold as
	// overload control (bounded-hold release policies; retryable).
	ReasonShed = proto.ReasonShed
)

// Outcome is the immediate result of a Request.
type Outcome uint8

// Outcomes.
const (
	// Executed: the operation ran; Decision.Ret holds its return.
	Executed Outcome = iota
	// Blocked: the transaction must wait; a later Grant (or abort)
	// will resolve the request.
	Blocked
	// Aborted: the scheduler chose the requester as a victim and has
	// already aborted it.
	Aborted
)

// Decision is the immediate result of Request.
type Decision struct {
	Outcome Outcome
	Ret     adt.Ret
	Reason  AbortReason
}

// CommitStatus is the result of Commit.
type CommitStatus uint8

// Commit statuses.
const (
	// Committed: the transaction had no outstanding commit
	// dependencies and committed for real.
	Committed CommitStatus = iota
	// PseudoCommitted: complete from the user's perspective; the real
	// commit will happen automatically once every transaction it
	// depends on terminates (§4.3).
	PseudoCommitted
)

// String implements fmt.Stringer.
func (s CommitStatus) String() string {
	if s == PseudoCommitted {
		return "pseudo-committed"
	}
	return "committed"
}

// Grant reports a previously blocked request that has now executed.
type Grant = proto.Grant

// RetryAbort reports a previously blocked transaction that was aborted
// while its request was being retried (a new cycle formed).
type RetryAbort = proto.RetryAbort

// Effects collects everything that happened downstream of one scheduler
// call: requests granted, blocked transactions aborted during retry,
// and pseudo-committed transactions that really committed. Reusable via
// Reset; the *Into scheduler variants append into a caller-owned value.
type Effects = proto.Effects

// Recorder receives protocol events; internal/history implements it to
// check soundness and serializability. Methods are called with the
// scheduler lock held and must not call back into the scheduler.
type Recorder interface {
	Executed(txn TxnID, obj ObjectID, op adt.Op, ret adt.Ret, seq uint64)
	Blocked(txn TxnID, obj ObjectID, op adt.Op)
	Aborted(txn TxnID, reason AbortReason)
	PseudoCommitted(txn TxnID)
	Committed(txn TxnID)
}

// Options configures a Scheduler. The zero value is the paper's
// protocol: recoverability predicate, fair scheduling, intentions-list
// recovery.
type Options struct {
	// Predicate selects recoverability (default) or the
	// commutativity-only baseline.
	Predicate Predicate
	// Recovery selects the recovery strategy.
	Recovery Recovery
	// Unfair disables fair scheduling. Under fair scheduling (the
	// paper's default, §5.2) an incoming request blocks if it
	// conflicts with any already-blocked request on the object, even
	// when it is compatible with the executed operations.
	Unfair bool
	// StateDependent enables the §3.2 state-dependent refinement:
	// statically conflicting requests are admitted when their return
	// value is provably invariant on the object's current state and
	// log (e.g. two pops when the top two elements are equal), at the
	// cost of up to 2^t replays per check. Requires
	// RecoveryIntentions.
	StateDependent bool
	// Debug enables internal invariant assertions (return-value
	// stability under replay, graph acyclicity) — used by the test
	// suite; too expensive for benchmark runs.
	Debug bool
	// Recorder, if non-nil, observes protocol events.
	Recorder Recorder
}

// Stats are cumulative scheduler counters. CycleChecks counts every
// invocation of cycle detection (both deadlock checks on block and
// commit-dependency checks on recoverable execution), matching the
// paper's cycle check ratio numerator.
type Stats struct {
	Executes       uint64
	Blocks         uint64
	Grants         uint64
	Aborts         uint64
	DeadlockAborts uint64
	CycleAborts    uint64
	Withdrawals    uint64
	Commits        uint64
	PseudoCommits  uint64
	CycleChecks    uint64
	CommitDepEdges uint64
	WaitForEdges   uint64
}

// Add accumulates o into s, field by field — the one place the
// counter list is spelled out for summing (multi-site aggregation,
// cross-incarnation accumulation).
func (s *Stats) Add(o Stats) {
	s.Executes += o.Executes
	s.Blocks += o.Blocks
	s.Grants += o.Grants
	s.Aborts += o.Aborts
	s.DeadlockAborts += o.DeadlockAborts
	s.CycleAborts += o.CycleAborts
	s.Withdrawals += o.Withdrawals
	s.Commits += o.Commits
	s.PseudoCommits += o.PseudoCommits
	s.CycleChecks += o.CycleChecks
	s.CommitDepEdges += o.CommitDepEdges
	s.WaitForEdges += o.WaitForEdges
}

// Misuse errors.
var (
	ErrUnknownTxn    = errors.New("core: unknown transaction")
	ErrUnknownObject = errors.New("core: unknown object")
	ErrTxnNotActive  = errors.New("core: transaction is not active")
	ErrTxnBlocked    = errors.New("core: transaction has a blocked request outstanding")
	ErrDuplicateTxn  = errors.New("core: transaction id already in use")
	ErrDuplicateObj  = errors.New("core: object id already registered")
	ErrNeedsUndoer   = errors.New("core: undo-log recovery requires the type to implement adt.Undoer")
	ErrTxnTerminated = errors.New("core: transaction already terminated")
	ErrPseudoRequest = errors.New("core: pseudo-committed transaction cannot issue operations")
	ErrNotBlocked    = errors.New("core: transaction has no blocked request to withdraw")
)

// txnState is a transaction's lifecycle state.
type txnState uint8

const (
	stActive txnState = iota
	stBlocked
	stPseudo
	stCommitted
	stAborted
)

func (s txnState) String() string {
	switch s {
	case stActive:
		return "active"
	case stBlocked:
		return "blocked"
	case stPseudo:
		return "pseudo-committed"
	case stCommitted:
		return "committed"
	case stAborted:
		return "aborted"
	}
	return fmt.Sprintf("txnState(%d)", uint8(s))
}
