package core

import (
	"repro/internal/adt"
	"repro/internal/compat"
)

// objectStore owns the per-object managers: eager registration, lazy
// construction through the factory, and lookup. It is one of the three
// separable components of the scheduler (object state, transaction
// bookkeeping, graph maintenance); it holds no locking of its own — the
// owning Scheduler (or any other Participant implementation) serialises
// access.
type objectStore struct {
	recovery  Recovery
	predicate Predicate
	objects   map[ObjectID]*object
	factory   func(ObjectID) (adt.Type, compat.Classifier)
}

func newObjectStore(rec Recovery, pred Predicate) objectStore {
	return objectStore{recovery: rec, predicate: pred, objects: make(map[ObjectID]*object)}
}

// setFactory installs the lazy constructor used by lookup for
// unregistered ids.
func (st *objectStore) setFactory(f func(ObjectID) (adt.Type, compat.Classifier)) {
	st.factory = f
}

// register creates the object eagerly.
func (st *objectStore) register(id ObjectID, typ adt.Type, class compat.Classifier) error {
	if _, ok := st.objects[id]; ok {
		return ErrDuplicateObj
	}
	o, err := newObject(id, typ, class, st.recovery, st.predicate)
	if err != nil {
		return err
	}
	st.objects[id] = o
	return nil
}

// registerSeeded creates the object eagerly with an explicit committed
// state (cloned into both the base and the materialised state — the
// log is empty at registration, so the two coincide).
func (st *objectStore) registerSeeded(id ObjectID, typ adt.Type, class compat.Classifier, seed adt.State) error {
	if _, ok := st.objects[id]; ok {
		return ErrDuplicateObj
	}
	o, err := newObject(id, typ, class, st.recovery, st.predicate)
	if err != nil {
		return err
	}
	o.cur = seed.Clone()
	if st.recovery == RecoveryIntentions {
		o.base = seed.Clone()
	}
	st.objects[id] = o
	return nil
}

// lookup returns the object, constructing it through the factory on
// first touch.
func (st *objectStore) lookup(id ObjectID) (*object, error) {
	if o, ok := st.objects[id]; ok {
		return o, nil
	}
	if st.factory != nil {
		typ, class := st.factory(id)
		o, err := newObject(id, typ, class, st.recovery, st.predicate)
		if err != nil {
			return nil, err
		}
		st.objects[id] = o
		return o, nil
	}
	return nil, ErrUnknownObject
}

// get returns the object without materialising it.
func (st *objectStore) get(id ObjectID) (*object, bool) {
	o, ok := st.objects[id]
	return o, ok
}
