package core

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
)

// newDynStackSched builds a state-dependent scheduler over one stack
// seeded with the given values (committed).
func newDynStackSched(t *testing.T, vals ...int) *Scheduler {
	t.Helper()
	s := NewScheduler(Options{StateDependent: true, Debug: true})
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	if len(vals) > 0 {
		mustBegin(t, s, 1000)
		for _, v := range vals {
			mustExec(t, s, 1000, 1, push(v))
		}
		if st, _, err := s.Commit(1000); err != nil || st != Committed {
			t.Fatalf("seed commit: %v %v", st, err)
		}
		s.Forget(1000)
	}
	return s
}

// TestDynamicPopsEqualTops is the paper's own example: two pops commute
// when the top two elements are the same. With the refinement, the
// second pop runs (with a commit dependency); without it, it blocks.
func TestDynamicPopsEqualTops(t *testing.T) {
	s := newDynStackSched(t, 9, 7, 7)
	mustBegin(t, s, 1, 2, 3)

	if r := mustExec(t, s, 1, 1, pop()); r != (adt.Ret{Code: adt.Value, Val: 7}) {
		t.Fatalf("T1 pop = %v", r)
	}
	// Top two were equal: T2's pop is state-recoverable.
	if r := mustExec(t, s, 2, 1, pop()); r != (adt.Ret{Code: adt.Value, Val: 7}) {
		t.Fatalf("T2 pop = %v", r)
	}
	if d := s.OutDegree(2); d != 1 {
		t.Fatalf("T2 out-degree = %d, want a commit dependency on T1", d)
	}
	// "it cannot be allowed to execute concurrently with them unless
	// the top three elements of the stack are the same" — they are
	// not (9 ≠ 7), so the third pop blocks.
	dec, _, err := s.Request(3, 1, pop())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Blocked {
		t.Fatalf("T3 pop = %v, want blocked", dec.Outcome)
	}

	// Abort T1: T2's pop return is unaffected (soundness), T3 still
	// cannot run until T2 terminates.
	if _, err := s.Abort(1); err != nil {
		t.Fatal(err)
	}
	if st, _, err := s.Commit(2); err != nil || st != Committed {
		t.Fatalf("T2 commit = %v, %v", st, err)
	}
	// T2's commit releases T3's pop, which sees the remaining 9.
	// (After T1's abort and T2's commit exactly one 7 was removed.)
	got, err := s.CommittedState(1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(adt.NewStackState(9, 7)) {
		t.Fatalf("stack = %v, want stack[9 7]", got)
	}
}

// TestDynamicThreeEqualTops: with three equal top elements all three
// pops proceed.
func TestDynamicThreeEqualTops(t *testing.T) {
	s := newDynStackSched(t, 4, 4, 4)
	mustBegin(t, s, 1, 2, 3)
	for _, id := range []TxnID{1, 2, 3} {
		if r := mustExec(t, s, id, 1, pop()); r != (adt.Ret{Code: adt.Value, Val: 4}) {
			t.Fatalf("T%d pop = %v", id, r)
		}
	}
	// Commit in invocation order; all real by cascade.
	if st, _, _ := s.Commit(3); st != PseudoCommitted {
		t.Fatal("T3 should pseudo-commit")
	}
	if st, _, _ := s.Commit(2); st != PseudoCommitted {
		t.Fatal("T2 should pseudo-commit")
	}
	st, eff, err := s.Commit(1)
	if err != nil || st != Committed || len(eff.Committed) != 2 {
		t.Fatalf("T1 commit: %v %+v %v", st, eff, err)
	}
	got, _ := s.CommittedState(1)
	if !got.Equal(adt.NewStackState()) {
		t.Fatalf("stack = %v, want empty", got)
	}
}

// TestDynamicDisabledBlocks: the same schedule blocks without the
// refinement.
func TestDynamicDisabledBlocks(t *testing.T) {
	s := NewScheduler(Options{Debug: true})
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1000)
	mustExec(t, s, 1000, 1, push(7))
	mustExec(t, s, 1000, 1, push(7))
	if _, _, err := s.Commit(1000); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, pop())
	dec, _, err := s.Request(2, 1, pop())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Blocked {
		t.Fatalf("static pop/pop = %v, want blocked", dec.Outcome)
	}
}

// TestDynamicTopOverUncommittedPushesOfSameValue: top over an
// uncommitted push is statically a conflict, but if the pushed value
// equals the committed top the answer cannot change.
func TestDynamicTopOverSameValuePush(t *testing.T) {
	s := newDynStackSched(t, 5)
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, push(5)) // same value as the committed top
	if r := mustExec(t, s, 2, 1, adt.Op{Name: adt.StackTop}); r != (adt.Ret{Code: adt.Value, Val: 5}) {
		t.Fatalf("top = %v", r)
	}
	// A different value would have blocked.
	mustBegin(t, s, 3, 4)
	mustExec(t, s, 3, 1, push(6))
	dec, _, err := s.Request(4, 1, adt.Op{Name: adt.StackTop})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Blocked {
		t.Fatalf("top over push(6) = %v, want blocked", dec.Outcome)
	}
}

// TestDynamicRandomRunsStaySound: the randomized protocol property
// suite with the refinement enabled — soundness and serializability
// must survive the extra concurrency. (Mirrors property_test.go; kept
// here because the dynamic path needs Options access.)
func TestDynamicRandomRunsStaySound(t *testing.T) {
	// Reuse the package-level scenario helpers via a small local
	// drive: a set of transactions popping/pushing a shared stack
	// with the dynamic check on, then full verification by replay.
	s := newDynStackSched(t, 1, 1, 1, 2, 2)
	mustBegin(t, s, 1, 2, 3)
	mustExec(t, s, 1, 1, pop())   // 2
	mustExec(t, s, 2, 1, pop())   // 2 (equal tops: state-recoverable)
	mustExec(t, s, 3, 1, push(9)) // push RR pop: deps T3 -> {T1, T2}
	if _, err := s.Abort(1); err != nil {
		t.Fatal(err)
	}
	if st, _, _ := s.Commit(2); st != Committed {
		t.Fatal("T2 should commit for real (its dependency aborted)")
	}
	if st, _, _ := s.Commit(3); st != Committed {
		t.Fatal("T3 should commit")
	}
	got, _ := s.CommittedState(1)
	// From [1 1 1 2 2]: T2's pop removed one 2; T1's pop+push undone;
	// T3 pushed 9.
	if !got.Equal(adt.NewStackState(1, 1, 1, 2, 9)) {
		t.Fatalf("stack = %v, want stack[1 1 1 2 9]", got)
	}
}

// TestDynamicNeedsIntentions: the refinement silently disables itself
// under undo-log recovery (no base state to replay from).
func TestDynamicNeedsIntentions(t *testing.T) {
	s := NewScheduler(Options{StateDependent: true, Recovery: RecoveryUndo, Debug: true})
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1000)
	mustExec(t, s, 1000, 1, push(7))
	mustExec(t, s, 1000, 1, push(7))
	if _, _, err := s.Commit(1000); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, pop())
	dec, _, err := s.Request(2, 1, pop())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Blocked {
		t.Fatalf("dynamic under undo recovery = %v, want blocked (disabled)", dec.Outcome)
	}
}
