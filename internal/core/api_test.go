package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

// TestRunCommits: the happy path — fn runs once, Run commits.
func TestRunCommits(t *testing.T) {
	db := newStackDB(t, core.Options{Debug: true})
	calls := 0
	err := db.Run(context.Background(), func(tx core.Txn) error {
		calls++
		_, err := tx.Do(1, pushOp(1))
		return err
	})
	if err != nil || calls != 1 {
		t.Fatalf("Run = %v after %d calls", err, calls)
	}
	got, err := db.Scheduler().CommittedState(1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(adt.NewStackState(1)) {
		t.Fatalf("state = %v, want stack[1]", got)
	}
}

// TestRunRetriesRetryableAbort: a retryable abort error surfaced by fn
// (here a real scheduler deadlock) restarts the body; the second
// attempt succeeds.
func TestRunRetriesRetryableAbort(t *testing.T) {
	db := core.NewDB(core.Options{Debug: true})
	for _, id := range []core.ObjectID{1, 2} {
		if err := db.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	// The first attempt surfaces the typed abort a Do returns when the
	// scheduler picks the transaction as a deadlock victim; Run must
	// classify it retryable and restart the body (the real-deadlock
	// variant below exercises the same path end to end).
	attempts := 0
	err := db.Run(context.Background(), func(tx core.Txn) error {
		attempts++
		if attempts == 1 {
			return &core.ErrAborted{Txn: tx.ID(), Reason: core.ReasonDeadlock}
		}
		_, err := tx.Do(1, writeOp(7))
		return err
	})
	if err != nil {
		t.Fatalf("Run = %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	got, err := db.Scheduler().ObjectState(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "page{7}" {
		t.Fatalf("state = %v", got)
	}
}

// TestRunRealDeadlockRetries: two Run bodies that lock the same two
// pages in opposite order; the deadlock victim restarts and both
// eventually commit.
func TestRunRealDeadlockRetries(t *testing.T) {
	db := core.NewDB(core.Options{})
	for _, id := range []core.ObjectID{1, 2} {
		if err := db.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	body := func(first, second core.ObjectID) func(core.Txn) error {
		return func(tx core.Txn) error {
			if _, err := tx.Do(first, writeOp(int(first))); err != nil {
				return err
			}
			_, err := tx.Do(second, readOp())
			return err
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = db.Run(context.Background(), body(1, 2)) }()
	go func() { defer wg.Done(); errs[1] = db.Run(context.Background(), body(2, 1)) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Run %d = %v", i, err)
		}
	}
	if st := db.Stats(); st.Commits != 2 {
		t.Fatalf("commits = %d, want 2", st.Commits)
	}
}

// TestRunFatalError: a non-abort error from fn aborts the transaction
// and is returned verbatim, with no retry.
func TestRunFatalError(t *testing.T) {
	db := newStackDB(t, core.Options{})
	boom := errors.New("boom")
	calls := 0
	err := db.Run(context.Background(), func(tx core.Txn) error {
		calls++
		if _, err := tx.Do(1, pushOp(9)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("Run = %v after %d calls, want boom after 1", err, calls)
	}
	// The aborted body's push must not survive.
	got, err := db.Scheduler().ObjectState(1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(adt.NewStackState()) {
		t.Fatalf("state = %v, want empty", got)
	}
}

// TestRunUserAbortNotRetried: a user abort (fn aborts its own txn and
// propagates the resulting error) is classified fatal.
func TestRunUserAbortNotRetried(t *testing.T) {
	db := newStackDB(t, core.Options{})
	calls := 0
	err := db.Run(context.Background(), func(tx core.Txn) error {
		calls++
		return &core.ErrAborted{Txn: tx.ID(), Reason: core.ReasonUser}
	})
	var ab *core.ErrAborted
	if !errors.As(err, &ab) || ab.Reason != core.ReasonUser || calls != 1 {
		t.Fatalf("Run = %v after %d calls", err, calls)
	}
}

// TestRunCtxCancelled: a cancelled context stops the loop with
// ctx.Err().
func TestRunCtxCancelled(t *testing.T) {
	db := newStackDB(t, core.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := db.Run(ctx, func(core.Txn) error { t.Fatal("fn must not run"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v", err)
	}
}

// TestStoreClose: Close gates new work with ErrClosed but leaves
// in-flight transactions alone; it is idempotent.
func TestStoreClose(t *testing.T) {
	db := newStackDB(t, core.Options{})
	inflight := db.Begin()
	if _, err := inflight.Do(1, pushOp(3)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	late := db.Begin()
	if _, err := late.Do(1, pushOp(4)); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Do on closed store = %v", err)
	}
	if _, err := late.Commit(); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Commit on closed store = %v", err)
	}
	select {
	case <-late.Done():
	default:
		t.Fatal("closed-store txn must be Done already")
	}
	if err := db.Register(2, adt.Stack{}, compat.StackTable()); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Register on closed store = %v", err)
	}
	if err := db.Run(context.Background(), func(tx core.Txn) error {
		_, err := tx.Do(1, pushOp(5))
		return err
	}); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Run on closed store = %v", err)
	}
	// The in-flight transaction is unaffected.
	if st, err := inflight.Commit(); err != nil || st != core.Committed {
		t.Fatalf("in-flight commit = %v, %v", st, err)
	}
}

// TestTypedAbortErrors: the error taxonomy — Is against the sentinels,
// As for the reason, retryability classification.
func TestTypedAbortErrors(t *testing.T) {
	db := core.NewDB(core.Options{})
	for _, id := range []core.ObjectID{1, 2} {
		if err := db.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	t1 := db.Begin()
	t2 := db.Begin()
	if _, err := t1.Do(1, writeOp(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Do(2, writeOp(2)); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		_, err := t1.Do(2, readOp())
		blocked <- err
	}()
	waitState(t, db.Scheduler(), t1.ID(), "blocked")
	_, err := t2.Do(1, readOp()) // closes the cycle; t2 is the victim
	if !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("err = %v, want Is(ErrTxnAborted)", err)
	}
	if !errors.Is(err, core.ErrDeadlock) {
		t.Fatalf("err = %v, want Is(ErrDeadlock)", err)
	}
	if errors.Is(err, core.ErrConflictCycle) {
		t.Fatalf("deadlock must not match ErrConflictCycle: %v", err)
	}
	var ab *core.ErrAborted
	if !errors.As(err, &ab) {
		t.Fatalf("err = %v, want As(*ErrAborted)", err)
	}
	if ab.Txn != t2.ID() || ab.Reason != core.ReasonDeadlock || !ab.Retryable() {
		t.Fatalf("ErrAborted = %+v", ab)
	}
	// Err() on the dead handle reports the same typed verdict.
	<-t2.Done()
	if err := t2.Err(); !errors.Is(err, core.ErrDeadlock) {
		t.Fatalf("Err() = %v", err)
	}
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t1 commit = %v, %v", st, err)
	}
}
