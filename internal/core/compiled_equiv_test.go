package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
)

// opaqueClass hides a classifier's structure so CompileClassifier
// refuses it and the scheduler takes the interface fallback path.
type opaqueClass struct{ inner compat.Classifier }

func (o opaqueClass) Classify(req, exec adt.Op) compat.Rel { return o.inner.Classify(req, exec) }

// TestCompiledSchedulerEquivalence drives an identical random call
// script through two schedulers — one whose objects carry compiled
// table classifiers, one forced onto the uncompiled interface path —
// and requires bit-identical protocol behaviour: every Decision,
// Effects list, commit status, error, the final object states and the
// cumulative counters. Covers both predicates and the §3.2
// state-dependent refinement, so the compile-time composition is
// proven against the per-call original.
func TestCompiledSchedulerEquivalence(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"recoverability", Options{}},
		{"commutativity", Options{Predicate: PredCommutativity}},
		{"state-dependent", Options{StateDependent: true}},
		{"unfair", Options{Unfair: true}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				runMirroredScript(t, cfg.opts, seed)
			}
		})
	}
}

func runMirroredScript(t *testing.T, opts Options, seed int64) {
	t.Helper()
	fast := NewScheduler(opts)
	slow := NewScheduler(opts)

	types := []adt.Type{adt.Stack{}, adt.Set{}, adt.Page{}, adt.KTable{}}
	tables := []*compat.Table{
		compat.StackTable(), compat.SetTable(), compat.PageTable(), compat.KTableTable(),
	}
	const objects = 6
	for id := ObjectID(1); id <= objects; id++ {
		i := int(id) % len(types)
		if err := fast.Register(id, types[i], tables[i]); err != nil {
			t.Fatal(err)
		}
		if err := slow.Register(id, types[i], opaqueClass{tables[i]}); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	randOp := func(obj ObjectID) adt.Op {
		typ := types[int(obj)%len(types)]
		specs := typ.Specs()
		sp := specs[rng.Intn(len(specs))]
		return sp.Invoke(rng.Intn(3), rng.Intn(3))
	}

	const txns = 40
	for id := TxnID(1); id <= txns; id++ {
		ef, es := fast.Begin(id), slow.Begin(id)
		if fmt.Sprint(ef) != fmt.Sprint(es) {
			t.Fatalf("seed %d: Begin(%d) diverged: %v vs %v", seed, id, ef, es)
		}
	}
	for step := 0; step < 400; step++ {
		id := TxnID(1 + rng.Intn(txns))
		switch rng.Intn(10) {
		case 0: // commit
			stF, effF, errF := fast.Commit(id)
			stS, effS, errS := slow.Commit(id)
			if stF != stS || fmt.Sprint(effF) != fmt.Sprint(effS) || fmt.Sprint(errF) != fmt.Sprint(errS) {
				t.Fatalf("seed %d step %d: Commit(%d) diverged: (%v %v %v) vs (%v %v %v)",
					seed, step, id, stF, effF, errF, stS, effS, errS)
			}
		case 1: // abort
			effF, errF := fast.Abort(id)
			effS, errS := slow.Abort(id)
			if fmt.Sprint(effF) != fmt.Sprint(effS) || fmt.Sprint(errF) != fmt.Sprint(errS) {
				t.Fatalf("seed %d step %d: Abort(%d) diverged", seed, step, id)
			}
		default: // request
			obj := ObjectID(1 + rng.Intn(objects))
			op := randOp(obj)
			decF, effF, errF := fast.Request(id, obj, op)
			decS, effS, errS := slow.Request(id, obj, op)
			if fmt.Sprint(decF) != fmt.Sprint(decS) || fmt.Sprint(effF) != fmt.Sprint(effS) ||
				fmt.Sprint(errF) != fmt.Sprint(errS) {
				t.Fatalf("seed %d step %d: Request(%d, %d, %v) diverged: (%v %v %v) vs (%v %v %v)",
					seed, step, id, obj, op, decF, effF, errF, decS, effS, errS)
			}
		}
	}
	// Drain: abort every transaction that is still around, then compare
	// the end states.
	for id := TxnID(1); id <= txns; id++ {
		effF, errF := fast.Abort(id)
		effS, errS := slow.Abort(id)
		if fmt.Sprint(effF) != fmt.Sprint(effS) || fmt.Sprint(errF) != fmt.Sprint(errS) {
			t.Fatalf("seed %d: drain Abort(%d) diverged", seed, id)
		}
		// Pseudo-committed stragglers refuse Abort on both sides; their
		// dependencies were aborted above, so they have cascaded.
	}
	for id := ObjectID(1); id <= objects; id++ {
		sf, errF := fast.ObjectState(id)
		ss, errS := slow.ObjectState(id)
		if (errF == nil) != (errS == nil) {
			t.Fatalf("seed %d: ObjectState(%d) errors diverged: %v vs %v", seed, id, errF, errS)
		}
		if errF == nil && !sf.Equal(ss) {
			t.Fatalf("seed %d: object %d final state diverged: %v vs %v", seed, id, sf, ss)
		}
	}
	if f, s := fast.StatsSnapshot(), slow.StatsSnapshot(); f != s {
		t.Fatalf("seed %d: stats diverged:\nfast: %+v\nslow: %+v", seed, f, s)
	}
}
