package core_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

func writeOp(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }
func readOp() adt.Op       { return adt.Op{Name: adt.PageRead} }

func waitState(t *testing.T, s *core.Scheduler, id core.TxnID, state string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.TxnState(id) == state {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("T%d never reached %s (now %s)", id, state, s.TxnState(id))
}

// TestDoCtxCancelWithdraws: cancelling a blocked DoCtx returns
// ctx.Err(), withdraws the queued request from the scheduler, and
// leaves the transaction active — it can issue further operations and
// commit.
func TestDoCtxCancelWithdraws(t *testing.T) {
	db := core.NewDB(core.Options{Debug: true})
	if err := db.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	t1 := db.Begin()
	t2 := db.Begin()
	if _, err := t1.Do(1, writeOp(10)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, err := t2.DoCtx(ctx, 1, readOp()) // read conflicts with the uncommitted write
		res <- err
	}()
	waitState(t, db.Scheduler(), t2.ID(), "blocked")
	cancel()
	select {
	case err := <-res:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled DoCtx = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled DoCtx never returned")
	}
	// The request is withdrawn, the transaction back to active.
	waitState(t, db.Scheduler(), t2.ID(), "active")
	// T2 is still usable: once T1 commits, the same read executes.
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t1 commit = %v, %v", st, err)
	}
	if ret, err := t2.Do(1, readOp()); err != nil || ret.Val != 10 {
		t.Fatalf("post-cancel read = %v, %v", ret, err)
	}
	if st, err := t2.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t2 commit = %v, %v", st, err)
	}
}

// TestDoCtxCancelWakesFairnessFollowers is the lost-wakeup regression
// for the withdrawal path (the PR 1 finalize bug class): a request
// fairness-gated behind the cancelled one must be retried when the
// cancelled request leaves the queue, not wait forever.
func TestDoCtxCancelWakesFairnessFollowers(t *testing.T) {
	db := core.NewDB(core.Options{Debug: true})
	if err := db.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	t1 := db.Begin()
	t2 := db.Begin()
	t3 := db.Begin()
	if _, err := t1.Do(1, writeOp(10)); err != nil { // uncommitted write
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t2res := make(chan error, 1)
	go func() {
		_, err := t2.DoCtx(ctx, 1, readOp()) // parks first (conflict)
		t2res <- err
	}()
	waitState(t, db.Scheduler(), t2.ID(), "blocked")
	// T3's write is recoverable with T1's write but does not commute
	// with T2's parked read: fairness queues it behind T2 only.
	t3res := make(chan error, 1)
	go func() {
		_, err := t3.Do(1, writeOp(30))
		t3res <- err
	}()
	waitState(t, db.Scheduler(), t3.ID(), "blocked")
	// T2 gives up. Its departure must wake T3 even though T1 — the
	// transaction T3 is recoverable with — never terminated.
	cancel()
	if err := <-t2res; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled DoCtx = %v", err)
	}
	select {
	case err := <-t3res:
		if err != nil {
			t.Fatalf("follower's write failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("lost wakeup: follower stayed parked after the withdrawal")
	}
	if st, err := t3.Commit(); err != nil || st != core.PseudoCommitted {
		t.Fatalf("t3 commit = %v, %v (want pseudo: recoverable over T1)", st, err)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t1 commit = %v, %v", st, err)
	}
	if st, err := t2.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t2 (cancelled-Do) commit = %v, %v", st, err)
	}
}

// TestCommitCtxExpiredLeavesAbortable: a deadline-expired CommitCtx
// performs no commit and leaves the transaction active, so the caller
// can still abort it (or retry the commit).
func TestCommitCtxExpiredLeavesAbortable(t *testing.T) {
	db := core.NewDB(core.Options{Debug: true})
	if err := db.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	h := db.Begin()
	if _, err := h.Do(1, pushOp(5)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := h.CommitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired CommitCtx = %v, want DeadlineExceeded", err)
	}
	if st := db.Scheduler().TxnState(h.ID()); st != "active" {
		t.Fatalf("after expired CommitCtx txn is %s, want active", st)
	}
	if err := h.Abort(); err != nil {
		t.Fatalf("abort after expired CommitCtx = %v", err)
	}
	got, err := db.Scheduler().ObjectState(1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(adt.NewStackState()) {
		t.Fatalf("stack after abort = %v, want empty", got)
	}
}

// TestDoCtxPreCancelled: an already-cancelled context fails fast
// without touching the scheduler.
func TestDoCtxPreCancelled(t *testing.T) {
	db := core.NewDB(core.Options{})
	if err := db.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	h := db.Begin()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.DoCtx(ctx, 1, pushOp(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled DoCtx = %v", err)
	}
	if n := db.Stats().Executes; n != 0 {
		t.Fatalf("pre-cancelled DoCtx executed %d ops", n)
	}
	if _, err := h.Do(1, pushOp(1)); err != nil {
		t.Fatal(err)
	}
	if st, err := h.Commit(); err != nil || st != core.Committed {
		t.Fatalf("commit = %v, %v", st, err)
	}
}

// TestDBCancelStress hammers the DB with workers whose DoCtx calls are
// randomly cancelled, then checks conservation: every commit-reported
// push survives in the committed state, everything else is rolled
// back. Run under -race this is the cancellation path's data-race
// test.
func TestDBCancelStress(t *testing.T) {
	const (
		workers = 8
		rounds  = 60
		objects = 3
	)
	db := core.NewDB(core.Options{})
	for id := core.ObjectID(1); id <= objects; id++ {
		if err := db.Register(id, adt.Stack{}, compat.StackTable()); err != nil {
			t.Fatal(err)
		}
	}
	var balance [objects + 1]atomic.Int64
	var cancels atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) * 7919))
			for i := 0; i < rounds; i++ {
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(r.Intn(500))*time.Microsecond)
				h := db.Begin()
				obj := core.ObjectID(1 + (w+i)%objects)
				popping := (w+i)%3 == 0
				var op adt.Op
				if popping {
					op = adt.Op{Name: adt.StackPop}
				} else {
					op = adt.Op{Name: adt.StackPush, Arg: w*rounds + i, HasArg: true}
				}
				ret, err := h.DoCtx(ctx, obj, op)
				if err != nil {
					cancel()
					switch {
					case errors.Is(err, context.DeadlineExceeded):
						cancels.Add(1)
						h.Abort() // cancelled mid-txn: roll back
					case errors.Is(err, core.ErrTxnAborted):
					default:
						t.Errorf("DoCtx: %v", err)
					}
					continue
				}
				cancel()
				if _, err := h.Commit(); err != nil {
					if !errors.Is(err, core.ErrTxnAborted) {
						t.Errorf("Commit: %v", err)
					}
					continue
				}
				if popping {
					if ret.Code == adt.Value {
						balance[obj].Add(-1)
					}
				} else {
					balance[obj].Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	for id := core.ObjectID(1); id <= objects; id++ {
		s, err := db.Scheduler().CommittedState(id)
		if err != nil {
			t.Fatal(err)
		}
		depth := int64(s.(*adt.StackState).Len())
		if want := balance[id].Load(); depth != want {
			t.Errorf("object %d: committed depth %d, want %d", id, depth, want)
		}
	}
	t.Logf("cancel stress: %d deadline cancellations", cancels.Load())
}
