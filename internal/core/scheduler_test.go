package core

import (
	"errors"
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
)

func push(v int) adt.Op  { return adt.Op{Name: adt.StackPush, Arg: v, HasArg: true} }
func pop() adt.Op        { return adt.Op{Name: adt.StackPop} }
func read() adt.Op       { return adt.Op{Name: adt.PageRead} }
func write(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }
func sins(v int) adt.Op  { return adt.Op{Name: adt.SetInsert, Arg: v, HasArg: true} }
func smem(v int) adt.Op  { return adt.Op{Name: adt.SetMember, Arg: v, HasArg: true} }

// newStackSched builds a scheduler with one stack object (id 1).
func newStackSched(t *testing.T, opts Options) *Scheduler {
	t.Helper()
	opts.Debug = true
	s := NewScheduler(opts)
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	return s
}

func mustExec(t *testing.T, s *Scheduler, id TxnID, obj ObjectID, op adt.Op) adt.Ret {
	t.Helper()
	dec, _, err := s.Request(id, obj, op)
	if err != nil {
		t.Fatalf("T%d %v: %v", id, op, err)
	}
	if dec.Outcome != Executed {
		t.Fatalf("T%d %v: outcome %v, want executed", id, op, dec.Outcome)
	}
	return dec.Ret
}

func mustBegin(t *testing.T, s *Scheduler, ids ...TxnID) {
	t.Helper()
	for _, id := range ids {
		if err := s.Begin(id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTwoPushesRunConcurrently is the paper's headline example: two
// pushes do not commute but are recoverable, so the second executes
// without waiting; the invoker merely picks up a commit dependency.
func TestTwoPushesRunConcurrently(t *testing.T) {
	s := newStackSched(t, Options{})
	mustBegin(t, s, 1, 2)

	mustExec(t, s, 1, 1, push(4))
	mustExec(t, s, 2, 1, push(2)) // executes immediately despite T1's uncommitted push

	if d := s.OutDegree(2); d != 1 {
		t.Fatalf("T2 out-degree = %d, want 1 (commit dependency on T1)", d)
	}

	// T2 commits first: it can only pseudo-commit.
	st, eff, err := s.Commit(2)
	if err != nil {
		t.Fatal(err)
	}
	if st != PseudoCommitted || !eff.Empty() {
		t.Fatalf("T2 commit = %v (effects %+v), want pseudo-committed", st, eff)
	}

	// T1 commits: real commit, cascading T2's real commit.
	st, eff, err = s.Commit(1)
	if err != nil {
		t.Fatal(err)
	}
	if st != Committed {
		t.Fatalf("T1 commit = %v", st)
	}
	if len(eff.Committed) != 1 || eff.Committed[0] != 2 {
		t.Fatalf("cascaded commits = %v, want [2]", eff.Committed)
	}

	// Final committed state preserves execution order: [4 2].
	got, err := s.CommittedState(1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(adt.NewStackState(4, 2)) {
		t.Fatalf("final stack = %v, want stack[4 2]", got)
	}
}

// TestAbortDoesNotCascade: the earlier pusher aborts; the later one
// still commits and only its element survives — recoverability's whole
// point.
func TestAbortDoesNotCascade(t *testing.T) {
	for _, rec := range []Recovery{RecoveryIntentions, RecoveryUndo} {
		t.Run(rec.String(), func(t *testing.T) {
			s := newStackSched(t, Options{Recovery: rec})
			mustBegin(t, s, 1, 2)
			mustExec(t, s, 1, 1, push(4))
			mustExec(t, s, 2, 1, push(2))

			if _, err := s.Abort(1); err != nil {
				t.Fatal(err)
			}
			// T2 is unaffected and now has no dependencies.
			if d := s.OutDegree(2); d != 0 {
				t.Fatalf("T2 out-degree after T1 abort = %d, want 0", d)
			}
			st, _, err := s.Commit(2)
			if err != nil {
				t.Fatal(err)
			}
			if st != Committed {
				t.Fatalf("T2 commit = %v, want real commit", st)
			}
			got, err := s.CommittedState(1)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(adt.NewStackState(2)) {
				t.Fatalf("final stack = %v, want stack[2]", got)
			}
		})
	}
}

// TestCommutativityBaselineBlocks: under the commutativity-only
// predicate the second push must wait for the first to terminate.
func TestCommutativityBaselineBlocks(t *testing.T) {
	s := newStackSched(t, Options{Predicate: PredCommutativity})
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, push(4))

	dec, _, err := s.Request(2, 1, push(2))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Blocked {
		t.Fatalf("push under commutativity = %v, want blocked", dec.Outcome)
	}

	// T1 commits; T2's push is granted.
	st, eff, err := s.Commit(1)
	if err != nil {
		t.Fatal(err)
	}
	if st != Committed {
		t.Fatalf("T1 commit = %v", st)
	}
	if len(eff.Grants) != 1 || eff.Grants[0].Txn != 2 || eff.Grants[0].Ret != adt.RetOK {
		t.Fatalf("grants = %+v, want T2's push", eff.Grants)
	}
	if st, _, _ := s.Commit(2); st != Committed {
		t.Fatalf("T2 commit = %v", st)
	}
}

// TestPaperSequence3 replays sequence (3) of §3.2: stack S and set X;
// T2's operations (push, insert) are recoverable relative to T1's
// uncommitted (push, member), so they run immediately, and T2 commits
// only after T1.
func TestPaperSequence3(t *testing.T) {
	s := NewScheduler(Options{Debug: true})
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); err != nil { // S
		t.Fatal(err)
	}
	if err := s.Register(2, adt.Set{}, compat.SetTable()); err != nil { // X
		t.Fatal(err)
	}
	mustBegin(t, s, 1, 2)

	mustExec(t, s, 1, 1, push(4))                             // S: (push(4), T1, ok)
	if r := mustExec(t, s, 1, 2, smem(3)); r.Code != adt.No { // X: (member(3), T1, no)
		t.Fatalf("member = %v", r)
	}
	mustExec(t, s, 2, 1, push(2)) // S: (push(2), T2, ok) — no waiting
	mustExec(t, s, 2, 2, sins(3)) // X: (insert(3), T2, ok) — no waiting

	st2, _, err := s.Commit(2)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != PseudoCommitted {
		t.Fatalf("T2 before T1 terminates: %v, want pseudo-committed", st2)
	}
	st1, eff, err := s.Commit(1)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != Committed || len(eff.Committed) != 1 || eff.Committed[0] != 2 {
		t.Fatalf("T1 commit %v effects %+v", st1, eff)
	}
}

// TestReadWriteDeadlock: T1 and T2 each write one page then try to read
// the other's — reads after uncommitted writes conflict, producing a
// wait-for cycle; the second blocker is the victim.
func TestReadWriteDeadlock(t *testing.T) {
	s := NewScheduler(Options{Debug: true})
	for _, id := range []ObjectID{1, 2} {
		if err := s.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, write(10))
	mustExec(t, s, 2, 2, write(20))

	dec, _, err := s.Request(1, 2, read())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Blocked {
		t.Fatalf("T1 read obj2 = %v, want blocked", dec.Outcome)
	}
	dec, eff, err := s.Request(2, 1, read())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Aborted || dec.Reason != ReasonDeadlock {
		t.Fatalf("T2 read obj1 = %v/%v, want deadlock abort", dec.Outcome, dec.Reason)
	}
	// T2's abort releases obj2: T1's read must be granted with the
	// committed (pre-T2) value.
	if len(eff.Grants) != 1 || eff.Grants[0].Txn != 1 {
		t.Fatalf("grants after deadlock abort = %+v", eff.Grants)
	}
	if got := eff.Grants[0].Ret; got != (adt.Ret{Code: adt.Value, Val: 0}) {
		t.Fatalf("T1's granted read = %v, want value(0) — T2's write undone", got)
	}
}

// TestCommitDependencyCycleAborts: commit dependencies in opposite
// directions across two pages form a cycle; the closing transaction is
// aborted to preserve serializability (Lemma 4).
func TestCommitDependencyCycleAborts(t *testing.T) {
	s := NewScheduler(Options{Debug: true})
	for _, id := range []ObjectID{1, 2} {
		if err := s.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, write(10))           // X: T1
	mustExec(t, s, 2, 1, write(11))           // X: T2 after T1 -> dep T2->T1
	mustExec(t, s, 2, 2, write(20))           // Y: T2
	dec, _, err := s.Request(1, 2, write(21)) // Y: T1 after T2 -> dep T1->T2: cycle
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Aborted || dec.Reason != ReasonCommitCycle {
		t.Fatalf("cycle-closing write = %v/%v, want commit-cycle abort", dec.Outcome, dec.Reason)
	}
	// T2 survives and commits for real (T1's entries are gone).
	if st, _, err := s.Commit(2); err != nil || st != Committed {
		t.Fatalf("T2 commit = %v, %v", st, err)
	}
	got, _ := s.CommittedState(1)
	if !got.Equal(&adt.PageState{V: 11}) {
		t.Fatalf("X = %v, want 11 (T1's write undone beneath T2's)", got)
	}
}

// TestPseudoCommitChain: three stacked writers commit in reverse order;
// real commits cascade strictly in dependency order.
func TestPseudoCommitChain(t *testing.T) {
	s := NewScheduler(Options{Debug: true})
	if err := s.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1, 2, 3)
	mustExec(t, s, 1, 1, write(10))
	mustExec(t, s, 2, 1, write(20))
	mustExec(t, s, 3, 1, write(30))

	if st, _, _ := s.Commit(3); st != PseudoCommitted {
		t.Fatal("T3 should pseudo-commit")
	}
	if st, _, _ := s.Commit(2); st != PseudoCommitted {
		t.Fatal("T2 should pseudo-commit")
	}
	st, eff, err := s.Commit(1)
	if err != nil || st != Committed {
		t.Fatalf("T1 commit: %v, %v", st, err)
	}
	if len(eff.Committed) != 2 || eff.Committed[0] != 2 || eff.Committed[1] != 3 {
		t.Fatalf("cascade order = %v, want [2 3]", eff.Committed)
	}
	got, _ := s.CommittedState(1)
	if !got.Equal(&adt.PageState{V: 30}) {
		t.Fatalf("final page = %v, want 30", got)
	}
}

// TestPseudoCommittedSurviveDependencyAbort: T2 pseudo-commits depending
// on T1; T1 aborts; T2 must still really commit (commit dependencies
// only order commits "if both commit").
func TestPseudoCommittedSurviveDependencyAbort(t *testing.T) {
	s := newStackSched(t, Options{})
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, push(4))
	mustExec(t, s, 2, 1, push(2))
	if st, _, _ := s.Commit(2); st != PseudoCommitted {
		t.Fatal("T2 should pseudo-commit")
	}
	eff, err := s.Abort(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Committed) != 1 || eff.Committed[0] != 2 {
		t.Fatalf("T2 should really commit when T1 aborts; effects %+v", eff)
	}
	got, _ := s.CommittedState(1)
	if !got.Equal(adt.NewStackState(2)) {
		t.Fatalf("final stack = %v, want stack[2]", got)
	}
}

// TestFairSchedulingBlocksBehindBlockedRequest: under recoverability an
// incoming write would normally run over an executed write, but with a
// blocked read ahead of it fair scheduling parks it behind the read —
// the paper's defence against starvation.
func TestFairSchedulingBlocksBehindBlockedRequest(t *testing.T) {
	newPageSched := func(unfair bool) *Scheduler {
		s := NewScheduler(Options{Unfair: unfair, Debug: true})
		if err := s.Register(1, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
		mustBegin(t, s, 1, 2, 3)
		mustExec(t, s, 1, 1, write(10))
		dec, _, err := s.Request(2, 1, read())
		if err != nil || dec.Outcome != Blocked {
			t.Fatalf("read should block: %v %v", dec, err)
		}
		return s
	}

	// Fair: T3's write waits behind T2's blocked read.
	s := newPageSched(false)
	dec, _, err := s.Request(3, 1, write(30))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Blocked {
		t.Fatalf("fair: T3 write = %v, want blocked behind T2's read", dec.Outcome)
	}
	// T1 commits: FIFO grants — T2's read first (sees 10), then T3's
	// write.
	_, eff, err := s.Commit(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Grants) != 2 || eff.Grants[0].Txn != 2 || eff.Grants[1].Txn != 3 {
		t.Fatalf("grants = %+v, want T2 then T3", eff.Grants)
	}
	if eff.Grants[0].Ret != (adt.Ret{Code: adt.Value, Val: 10}) {
		t.Fatalf("T2 read %v, want value(10)", eff.Grants[0].Ret)
	}

	// Unfair: T3's write jumps the queue (preferential treatment of
	// writes under recoverability, §5.5.1).
	s = newPageSched(true)
	dec, _, err = s.Request(3, 1, write(30))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Executed {
		t.Fatalf("unfair: T3 write = %v, want executed", dec.Outcome)
	}
}

// TestBlockedAbortByUser: a blocked transaction can be aborted by the
// caller (the simulator does this on restart policies); its queue slot
// disappears.
func TestBlockedAbortByUser(t *testing.T) {
	s := NewScheduler(Options{Debug: true})
	if err := s.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, write(10))
	dec, _, _ := s.Request(2, 1, read())
	if dec.Outcome != Blocked {
		t.Fatal("read should block")
	}
	if _, err := s.Abort(2); err != nil {
		t.Fatal(err)
	}
	// T1 commits with nothing to grant.
	_, eff, err := s.Commit(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Grants) != 0 {
		t.Fatalf("grants = %+v, want none", eff.Grants)
	}
}

// TestMisuseErrors covers the scheduler's error surface.
func TestMisuseErrors(t *testing.T) {
	s := newStackSched(t, Options{})
	if err := s.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(1); !errors.Is(err, ErrDuplicateTxn) {
		t.Errorf("duplicate begin: %v", err)
	}
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); !errors.Is(err, ErrDuplicateObj) {
		t.Errorf("duplicate register: %v", err)
	}
	if _, _, err := s.Request(9, 1, push(1)); !errors.Is(err, ErrUnknownTxn) {
		t.Errorf("unknown txn: %v", err)
	}
	if _, _, err := s.Request(1, 9, push(1)); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("unknown object: %v", err)
	}
	if _, err := s.ObjectState(9); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("unknown object state: %v", err)
	}

	// Blocked transactions cannot issue requests or commit.
	mustBegin(t, s, 2)
	mustExec(t, s, 1, 1, push(1))
	if dec, _, _ := s.Request(2, 1, pop()); dec.Outcome != Blocked {
		t.Fatal("pop after push should block")
	}
	if _, _, err := s.Request(2, 1, push(2)); !errors.Is(err, ErrTxnBlocked) {
		t.Errorf("request while blocked: %v", err)
	}
	if _, _, err := s.Commit(2); !errors.Is(err, ErrTxnBlocked) {
		t.Errorf("commit while blocked: %v", err)
	}

	// Terminated transactions are terminated.
	if _, _, err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Commit(1); !errors.Is(err, ErrTxnTerminated) {
		t.Errorf("commit after commit: %v", err)
	}
	if _, err := s.Abort(1); !errors.Is(err, ErrTxnTerminated) {
		t.Errorf("abort after commit: %v", err)
	}

	// Pseudo-committed transactions cannot issue requests or abort.
	mustBegin(t, s, 3, 4)
	mustExec(t, s, 3, 1, push(7))
	mustExec(t, s, 4, 1, push(8))
	if st, _, _ := s.Commit(4); st != PseudoCommitted {
		t.Fatal("T4 should pseudo-commit")
	}
	if _, _, err := s.Request(4, 1, push(9)); !errors.Is(err, ErrPseudoRequest) {
		t.Errorf("request while pseudo-committed: %v", err)
	}
	if _, err := s.Abort(4); err == nil {
		t.Error("abort of pseudo-committed transaction must be refused")
	}
	if st, _, err := s.Commit(4); err != nil || st != PseudoCommitted {
		t.Errorf("re-commit of pseudo-committed: %v, %v", st, err)
	}
}

// TestUndoRecoveryRequiresUndoer: registering a non-Undoer type under
// undo-log recovery fails.
type noUndoType struct{ adt.Page }

func (noUndoType) Name() string { return "no-undo" }

func TestUndoRecoveryRequiresUndoer(t *testing.T) {
	// adt.Page implements Undoer; wrap it in a struct that hides the
	// methods by embedding only Type.
	type plain struct{ adt.Type }
	s := NewScheduler(Options{Recovery: RecoveryUndo})
	err := s.Register(1, plain{adt.Page{}}, compat.PageTable())
	if !errors.Is(err, ErrNeedsUndoer) {
		t.Errorf("got %v, want ErrNeedsUndoer", err)
	}
}

func TestStatsAndIntrospection(t *testing.T) {
	s := newStackSched(t, Options{})
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, push(1))
	mustExec(t, s, 1, 1, push(2))
	mustExec(t, s, 2, 1, push(3))
	if got := s.TxnOps(1); got != 2 {
		t.Errorf("TxnOps(1) = %d", got)
	}
	if got := s.TxnOps(99); got != 0 {
		t.Errorf("TxnOps(99) = %d", got)
	}
	if st := s.TxnState(1); st != "active" {
		t.Errorf("TxnState(1) = %q", st)
	}
	if st := s.TxnState(99); st != "unknown" {
		t.Errorf("TxnState(99) = %q", st)
	}
	stats := s.StatsSnapshot()
	if stats.Executes != 3 || stats.CommitDepEdges == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stv, e := s.ObjectState(1); e != nil || !stv.Equal(adt.NewStackState(1, 2, 3)) {
		t.Errorf("ObjectState = %v, %v", stv, e)
	}

	if _, _, err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	s.Forget(1)
	if st := s.TxnState(1); st != "unknown" {
		t.Errorf("after Forget, TxnState(1) = %q", st)
	}
	// Forget must not drop live transactions.
	s.Forget(2)
	if st := s.TxnState(2); st != "active" {
		t.Errorf("Forget dropped a live transaction: %q", st)
	}
}

// TestSetParameterConflicts: delete of the same element as an
// uncommitted insert blocks, a different element commutes.
func TestSetParameterConflicts(t *testing.T) {
	s := NewScheduler(Options{Debug: true})
	if err := s.Register(1, adt.Set{}, compat.SetTable()); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, sins(3))

	del3 := adt.Op{Name: adt.SetDelete, Arg: 3, HasArg: true}
	dec, _, err := s.Request(2, 1, del3)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Blocked {
		t.Fatalf("delete(3) after uncommitted insert(3) = %v, want blocked", dec.Outcome)
	}
	_, eff, err := s.Commit(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Grants) != 1 || eff.Grants[0].Ret != adt.RetOK {
		t.Fatalf("granted delete = %+v, want ok (element present after commit)", eff.Grants)
	}
}
