package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/adt"
	"repro/internal/compat"
)

// ErrTxnAborted is returned by Handle methods after the scheduler has
// aborted the transaction (deadlock or commit-dependency cycle). The
// caller should begin a fresh transaction and retry.
var ErrTxnAborted = errors.New("core: transaction aborted")

// DB is the blocking, goroutine-friendly front end to a Scheduler: real
// goroutines call Handle.Do and are parked until their operation
// executes, exactly the shape of a multi-threaded transaction system.
// The deterministic simulator talks to the Scheduler directly instead.
type DB struct {
	s *Scheduler

	mu      sync.Mutex
	nextTxn TxnID
	handles map[TxnID]*Handle
}

// NewDB wraps options in a fresh scheduler and returns the blocking
// front end.
func NewDB(opts Options) *DB {
	return &DB{s: NewScheduler(opts), handles: make(map[TxnID]*Handle)}
}

// Scheduler exposes the underlying scheduler (for stats and state
// inspection).
func (db *DB) Scheduler() *Scheduler { return db.s }

// Register forwards to Scheduler.Register.
func (db *DB) Register(id ObjectID, typ adt.Type, class compat.Classifier) error {
	return db.s.Register(id, typ, class)
}

// waitMsg resolves a blocked Do call.
type waitMsg struct {
	ret     adt.Ret
	aborted bool
	reason  AbortReason
}

// Handle is one transaction's session. A Handle must be used from a
// single goroutine at a time (concurrent transactions use separate
// handles).
type Handle struct {
	db *DB
	id TxnID

	mu        sync.Mutex
	waitCh    chan waitMsg
	dead      bool
	reason    AbortReason
	committed chan struct{} // closed at real commit
	pseudo    bool
}

// Begin starts a new transaction.
func (db *DB) Begin() *Handle {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.nextTxn++
	h := &Handle{db: db, id: db.nextTxn, committed: make(chan struct{})}
	if err := db.s.Begin(h.id); err != nil {
		// IDs are generated here, so this cannot collide.
		panic(fmt.Sprintf("core: Begin: %v", err))
	}
	db.handles[h.id] = h
	return h
}

// ID returns the transaction id.
func (h *Handle) ID() TxnID { return h.id }

// deliver routes scheduler effects to waiting handles.
func (db *DB) deliver(eff Effects) {
	for _, g := range eff.Grants {
		if h := db.handles[g.Txn]; h != nil && h.waitCh != nil {
			h.waitCh <- waitMsg{ret: g.Ret}
			h.waitCh = nil
		}
	}
	for _, a := range eff.RetryAborts {
		if h := db.handles[a.Txn]; h != nil && h.waitCh != nil {
			h.waitCh <- waitMsg{aborted: true, reason: a.Reason}
			h.waitCh = nil
		}
	}
	for _, id := range eff.Committed {
		if h := db.handles[id]; h != nil {
			close(h.committed)
			delete(db.handles, id)
		}
	}
}

// Do executes op against obj, blocking until the operation runs. It
// returns ErrTxnAborted (wrapped with the reason) if the scheduler
// aborts the transaction instead.
func (h *Handle) Do(obj ObjectID, op adt.Op) (adt.Ret, error) {
	db := h.db
	db.mu.Lock()
	if h.dead {
		db.mu.Unlock()
		return adt.Ret{}, fmt.Errorf("%w (%s)", ErrTxnAborted, h.reason)
	}
	dec, eff, err := db.s.Request(h.id, obj, op)
	if err != nil {
		db.mu.Unlock()
		return adt.Ret{}, err
	}
	var ch chan waitMsg
	if dec.Outcome == Blocked {
		ch = make(chan waitMsg, 1)
		h.waitCh = ch
	}
	db.deliver(eff)
	if dec.Outcome == Aborted {
		h.die(dec.Reason)
	}
	db.mu.Unlock()

	switch dec.Outcome {
	case Executed:
		return dec.Ret, nil
	case Aborted:
		return adt.Ret{}, fmt.Errorf("%w (%s)", ErrTxnAborted, dec.Reason)
	}

	msg := <-ch
	if msg.aborted {
		db.mu.Lock()
		h.die(msg.reason)
		db.mu.Unlock()
		return adt.Ret{}, fmt.Errorf("%w (%s)", ErrTxnAborted, msg.reason)
	}
	return msg.ret, nil
}

// die marks the handle dead. Caller holds db.mu.
func (h *Handle) die(reason AbortReason) {
	h.dead = true
	h.reason = reason
	delete(h.db.handles, h.id)
}

// Commit completes the transaction. The returned status is
// PseudoCommitted when the transaction still has commit dependencies:
// its results are final from the caller's perspective, and
// WaitCommitted (or the Committed channel) reports when the real commit
// lands.
func (h *Handle) Commit() (CommitStatus, error) {
	db := h.db
	db.mu.Lock()
	if h.dead {
		db.mu.Unlock()
		return 0, fmt.Errorf("%w (%s)", ErrTxnAborted, h.reason)
	}
	status, eff, err := db.s.Commit(h.id)
	if err != nil {
		db.mu.Unlock()
		return 0, err
	}
	db.deliver(eff)
	if status == Committed {
		select {
		case <-h.committed:
		default:
			close(h.committed)
		}
		delete(db.handles, h.id)
	} else {
		h.pseudo = true
	}
	db.mu.Unlock()
	return status, nil
}

// Abort rolls the transaction back.
func (h *Handle) Abort() error {
	db := h.db
	db.mu.Lock()
	if h.dead {
		db.mu.Unlock()
		return nil // already gone
	}
	eff, err := db.s.Abort(h.id)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	db.deliver(eff)
	h.die(ReasonUser)
	db.mu.Unlock()
	return nil
}

// Committed returns a channel closed when the transaction has really
// committed (for pseudo-committed transactions this happens once every
// transaction it depends on has terminated).
func (h *Handle) Committed() <-chan struct{} { return h.committed }

// WaitCommitted blocks until the real commit.
func (h *Handle) WaitCommitted() { <-h.committed }
