package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/delivery"
)

// DB is the blocking, goroutine-friendly front end to a Scheduler: real
// goroutines call Txn.Do and are parked until their operation executes,
// exactly the shape of a multi-threaded transaction system. The
// deterministic simulator talks to the Scheduler directly instead.
//
// DB implements Store; it shares the Effects→parked-goroutine routing
// (internal/delivery) with the distributed front end, so both speak to
// their schedulers through one delivery layer.
type DB struct {
	s *Scheduler

	mu      sync.Mutex
	hub     *delivery.Hub
	nextTxn TxnID
	handles map[TxnID]*Handle
	closed  bool
	// drain, when non-nil, is closed once the handle table empties
	// after Close — the CloseCtx waiters' signal.
	drain chan struct{}
}

// NewDB wraps options in a fresh scheduler and returns the blocking
// front end.
func NewDB(opts Options) *DB {
	return &DB{s: NewScheduler(opts), hub: delivery.NewHub(), handles: make(map[TxnID]*Handle)}
}

// Scheduler exposes the underlying scheduler (for stats and state
// inspection).
func (db *DB) Scheduler() *Scheduler { return db.s }

// Register forwards to Scheduler.Register. It fails with ErrClosed on a
// closed store.
func (db *DB) Register(id ObjectID, typ adt.Type, class compat.Classifier) error {
	db.mu.Lock()
	closed := db.closed
	db.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return db.s.Register(id, typ, class)
}

// SetFactory installs a lazy object constructor on the underlying
// scheduler; the first request against an unregistered object id calls
// it. The workload harness uses this so both back ends are seeded the
// same way.
func (db *DB) SetFactory(f func(ObjectID) (adt.Type, compat.Classifier)) {
	db.s.SetFactory(f)
}

// Stats returns a snapshot of the protocol counters, taken under the
// scheduler lock (globally consistent — every counter reflects the same
// call prefix).
func (db *DB) Stats() Stats { return db.s.StatsSnapshot() }

// Close marks the store closed: Begin afterwards returns a transaction
// failing with ErrClosed, Register fails, and Run refuses. Transactions
// already begun are unaffected and run to completion. Idempotent.
func (db *DB) Close() error {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	return nil
}

// CloseCtx is the draining close: it gates the store like Close, then
// waits until every transaction in flight at close time has reached
// its terminal state (real commit or abort). A cancelled ctx stops the
// wait and returns ctx.Err() with the gate left in place; the
// in-flight transactions still run to completion on their own.
func (db *DB) CloseCtx(ctx context.Context) error {
	db.mu.Lock()
	db.closed = true
	if len(db.handles) == 0 {
		db.mu.Unlock()
		return nil
	}
	if db.drain == nil {
		db.drain = make(chan struct{})
	}
	drained := db.drain
	db.mu.Unlock()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run executes fn inside a transaction with automatic retry of
// retryable aborts; see RunStore.
func (db *DB) Run(ctx context.Context, fn func(Txn) error) error {
	return RunStore(ctx, db, fn)
}

// Handle states. Transitions happen under db.mu; reads are lock-free.
const (
	hActive int32 = iota
	hPseudo
	hCommitted
	hAborted
)

// Handle is one transaction's session on a DB, implementing Txn. A
// Handle must be driven by a single goroutine at a time (concurrent
// transactions use separate handles).
type Handle struct {
	db *DB
	id TxnID

	state  atomic.Int32
	reason atomic.Int32  // AbortReason, stored before state becomes hAborted
	done   chan struct{} // closed at the terminal state (real commit or abort)
}

// Begin starts a new transaction. On a closed store it returns a
// transaction whose operations fail with ErrClosed.
func (db *DB) Begin() Txn {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ClosedTxn(ErrClosed)
	}
	db.nextTxn++
	h := &Handle{db: db, id: db.nextTxn, done: make(chan struct{})}
	if err := db.s.Begin(h.id); err != nil {
		// IDs are generated here, so this cannot collide.
		panic(fmt.Sprintf("core: Begin: %v", err))
	}
	db.handles[h.id] = h
	return h
}

// ID returns the transaction id.
func (h *Handle) ID() TxnID { return h.id }

// Done returns a channel closed when the transaction reaches its
// terminal state: the real commit has landed (for pseudo-committed
// transactions, once every transaction it depends on has terminated) or
// the transaction aborted.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Err reports how the transaction ended: nil after a real commit (and
// while the transaction is still in flight), a *ErrAborted after an
// abort. Meaningful once Done's channel is closed.
func (h *Handle) Err() error {
	if h.state.Load() == hAborted {
		return abortErr(h.id, AbortReason(h.reason.Load()))
	}
	return nil
}

// deliver routes scheduler effects: grants and retry-aborts to parked
// goroutines through the shared delivery hub, cascaded real commits to
// their handles. Caller holds db.mu.
func (db *DB) deliver(eff *Effects) {
	db.hub.Deliver(eff)
	for _, id := range eff.Committed {
		if h := db.handles[id]; h != nil {
			h.settle(hCommitted, ReasonNone)
		}
	}
}

// settle moves the handle to a terminal state, closes Done and drops
// the scheduler's and the DB's bookkeeping; the last handle out after
// Close signals any CloseCtx waiter. Caller holds db.mu.
func (h *Handle) settle(state int32, reason AbortReason) {
	h.reason.Store(int32(reason))
	h.state.Store(state)
	close(h.done)
	db := h.db
	delete(db.handles, h.id)
	db.s.Forget(h.id)
	if db.closed && db.drain != nil && len(db.handles) == 0 {
		close(db.drain)
		db.drain = nil
	}
}

// liveErr reports why the handle can no longer issue operations, or nil
// while it is active. Caller holds db.mu.
func (h *Handle) liveErr() error {
	switch h.state.Load() {
	case hActive:
		return nil
	case hAborted:
		return abortErr(h.id, AbortReason(h.reason.Load()))
	default:
		return fmt.Errorf("%w (T%d)", ErrTxnDone, h.id)
	}
}

// Do executes op against obj, blocking until the operation runs. It
// returns a *ErrAborted (matching ErrTxnAborted and the reason
// sentinels under errors.Is) if the scheduler aborts the transaction
// instead.
func (h *Handle) Do(obj ObjectID, op adt.Op) (adt.Ret, error) {
	return h.do(nil, obj, op)
}

// DoCtx is Do with cancellation: if ctx expires while the request is
// blocked, the request is withdrawn from the scheduler queue —
// transactions parked behind it are retried, so nothing strands — the
// transaction stays active with its executed operations intact, and
// ctx.Err() is returned. If the grant raced the cancellation, the
// operation has executed and its result is returned instead.
func (h *Handle) DoCtx(ctx context.Context, obj ObjectID, op adt.Op) (adt.Ret, error) {
	if err := ctx.Err(); err != nil {
		return adt.Ret{}, err
	}
	return h.do(ctx, obj, op)
}

// do runs the request; a nil ctx means no cancellation (the plain Do
// path, which skips the select on the hot receive).
func (h *Handle) do(ctx context.Context, obj ObjectID, op adt.Op) (adt.Ret, error) {
	db := h.db
	db.mu.Lock()
	if err := h.liveErr(); err != nil {
		db.mu.Unlock()
		return adt.Ret{}, err
	}
	eff := db.hub.Effects()
	dec, err := db.s.RequestInto(eff, h.id, obj, op)
	if err != nil {
		db.mu.Unlock()
		return adt.Ret{}, err
	}
	var ch chan delivery.Msg
	if dec.Outcome == Blocked {
		ch = db.hub.Park(h.id)
	}
	db.deliver(eff)
	if dec.Outcome == Aborted {
		h.settle(hAborted, dec.Reason)
	}
	db.mu.Unlock()

	switch dec.Outcome {
	case Executed:
		return dec.Ret, nil
	case Aborted:
		return adt.Ret{}, abortErr(h.id, dec.Reason)
	}

	var msg delivery.Msg
	if ctx == nil {
		msg = <-ch
	} else {
		select {
		case msg = <-ch:
		case <-ctx.Done():
			db.mu.Lock()
			if db.hub.Withdraw(h.id) {
				// Still parked: the request is still queued at the
				// scheduler — pull it out so it cannot gate anyone.
				// The channel is unmapped and no message was ever
				// sent, so it goes straight back to the pool.
				db.hub.Recycle(ch)
				eff := db.hub.Effects()
				err := db.s.WithdrawInto(eff, h.id)
				if err == nil {
					db.deliver(eff)
				}
				db.mu.Unlock()
				if err != nil {
					return adt.Ret{}, err
				}
				return adt.Ret{}, ctx.Err()
			}
			db.mu.Unlock()
			// The resolution raced the cancellation: the message is in
			// the buffer (delivery deletes-then-sends under db.mu).
			// Honour it.
			msg = <-ch
		}
	}
	// Receiver-side recycling: the resolution has been consumed, so the
	// drained channel can serve the next park.
	db.mu.Lock()
	db.hub.Recycle(ch)
	if msg.Aborted {
		h.settle(hAborted, msg.Reason)
		db.mu.Unlock()
		return adt.Ret{}, abortErr(h.id, msg.Reason)
	}
	db.mu.Unlock()
	return msg.Ret, nil
}

// Commit completes the transaction. The returned status is
// PseudoCommitted when the transaction still has commit dependencies:
// its results are final from the caller's perspective, and Done reports
// when the real commit lands.
func (h *Handle) Commit() (CommitStatus, error) {
	db := h.db
	db.mu.Lock()
	switch h.state.Load() {
	case hActive:
	case hPseudo:
		db.mu.Unlock()
		return PseudoCommitted, nil
	case hCommitted:
		db.mu.Unlock()
		return Committed, nil
	default:
		db.mu.Unlock()
		return 0, abortErr(h.id, AbortReason(h.reason.Load()))
	}
	eff := db.hub.Effects()
	status, err := db.s.CommitInto(eff, h.id)
	if err != nil {
		db.mu.Unlock()
		return 0, err
	}
	db.deliver(eff)
	if status == Committed {
		h.settle(hCommitted, ReasonNone)
	} else {
		h.state.Store(hPseudo)
	}
	db.mu.Unlock()
	return status, nil
}

// CommitCtx is Commit guarded by ctx: if ctx is already done no commit
// is attempted, ctx.Err() is returned, and the transaction remains
// active — in particular, still abortable.
func (h *Handle) CommitCtx(ctx context.Context) (CommitStatus, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return h.Commit()
}

// Abort rolls the transaction back. Aborting an already-aborted
// transaction is a no-op; committed (incl. pseudo-committed)
// transactions refuse with ErrTxnDone.
func (h *Handle) Abort() error {
	db := h.db
	db.mu.Lock()
	switch h.state.Load() {
	case hActive:
	case hAborted:
		db.mu.Unlock()
		return nil // already gone
	default:
		db.mu.Unlock()
		return fmt.Errorf("%w: committed transactions cannot abort", ErrTxnDone)
	}
	eff := db.hub.Effects()
	if err := db.s.AbortInto(eff, h.id); err != nil {
		db.mu.Unlock()
		return err
	}
	db.deliver(eff)
	h.settle(hAborted, ReasonUser)
	db.mu.Unlock()
	return nil
}
