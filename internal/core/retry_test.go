package core

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
)

// TestRetryAbort builds the one remaining protocol path: a blocked
// request whose retry closes a commit-dependency cycle, so the blocked
// transaction is aborted *during retry* and surfaces in
// Effects.RetryAborts.
//
// Construction (unfair scheduling so T3's push can overtake T2's
// blocked pop):
//
//	T2 write Y                      (executed)
//	T3 write Y   -> dep T3 -> T2    (recoverable)
//	T1 push S                       (executed)
//	T2 pop  S    -> blocked, wait T2 -> T1
//	T3 push S    -> dep T3 -> T1    (unfair: jumps the blocked pop)
//	T1 commit    -> retry T2's pop: it now conflicts with T3's
//	               uncommitted push, so the retry adds wait T2 -> T3;
//	               with dep T3 -> T2 that is a cycle => abort T2.
func TestRetryAbort(t *testing.T) {
	s := NewScheduler(Options{Unfair: true, Debug: true})
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(2, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1, 2, 3)

	mustExec(t, s, 2, 2, write(20))
	mustExec(t, s, 3, 2, write(30)) // dep T3 -> T2
	mustExec(t, s, 1, 1, push(1))

	dec, _, err := s.Request(2, 1, pop())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Outcome != Blocked {
		t.Fatalf("T2 pop = %v, want blocked", dec.Outcome)
	}
	mustExec(t, s, 3, 1, push(2)) // dep T3 -> T1, overtakes the pop

	st, eff, err := s.Commit(1)
	if err != nil {
		t.Fatal(err)
	}
	if st != Committed {
		t.Fatalf("T1 commit = %v", st)
	}
	if len(eff.RetryAborts) != 1 || eff.RetryAborts[0].Txn != 2 || eff.RetryAborts[0].Reason != ReasonDeadlock {
		t.Fatalf("retry aborts = %+v, want T2 aborted on retry", eff.RetryAborts)
	}
	if got := s.TxnState(2); got != "aborted" {
		t.Fatalf("T2 state = %s", got)
	}
	// T3 survives; T2's abort dropped T3's dependency on it.
	if st, _, err := s.Commit(3); err != nil || st != Committed {
		t.Fatalf("T3 commit = %v, %v", st, err)
	}
	// T2's write on Y was undone underneath T3's (write-chain):
	// final page value is T3's.
	got, err := s.CommittedState(2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&adt.PageState{V: 30}) {
		t.Fatalf("page Y = %v, want 30", got)
	}
}

// TestWaitEdgesClearedOnGrant: once a blocked request is granted, its
// transient wait-for edges are gone; only commit dependencies remain.
func TestWaitEdgesClearedOnGrant(t *testing.T) {
	s := NewScheduler(Options{Debug: true})
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, push(1))
	if dec, _, _ := s.Request(2, 1, pop()); dec.Outcome != Blocked {
		t.Fatal("pop should block")
	}
	if d := s.OutDegree(2); d != 1 {
		t.Fatalf("blocked T2 out-degree = %d, want 1 wait edge", d)
	}
	if _, eff, err := s.Commit(1); err != nil || len(eff.Grants) != 1 {
		t.Fatalf("commit effects = %+v, %v", eff, err)
	}
	if d := s.OutDegree(2); d != 0 {
		t.Fatalf("granted T2 out-degree = %d, want 0 (wait edges cleared, holder gone)", d)
	}
}

// TestFIFOAcrossRetry: three requests block behind a holder; grants
// come strictly in arrival order even when the retry leaves some
// blocked (the second conflicts with the first under fair scheduling).
func TestFIFOAcrossRetry(t *testing.T) {
	s := NewScheduler(Options{Debug: true})
	if err := s.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1, 2, 3, 4)
	mustExec(t, s, 1, 1, write(10))

	// Three blocked requests: read (conflicts with the write), write
	// (fair-blocked behind the read), read (fair-blocked behind the
	// write).
	for _, req := range []struct {
		txn TxnID
		op  adt.Op
	}{{2, read()}, {3, write(30)}, {4, read()}} {
		dec, _, err := s.Request(req.txn, 1, req.op)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Outcome != Blocked {
			t.Fatalf("T%d %v = %v, want blocked", req.txn, req.op, dec.Outcome)
		}
	}

	// Holder commits. The retry grants T2's read (value 10), then
	// T3's write (no conflict left: the read executed and write RR
	// read), then T4's read must NOT run (it conflicts with T3's
	// uncommitted write).
	_, eff, err := s.Commit(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Grants) != 2 || eff.Grants[0].Txn != 2 || eff.Grants[1].Txn != 3 {
		t.Fatalf("grants = %+v, want T2 then T3", eff.Grants)
	}
	if eff.Grants[0].Ret != (adt.Ret{Code: adt.Value, Val: 10}) {
		t.Fatalf("T2 read = %v", eff.Grants[0].Ret)
	}
	if got := s.TxnState(4); got != "blocked" {
		t.Fatalf("T4 = %s, want still blocked behind T3's write", got)
	}
	// T3's granted write ran over T2's uncommitted read, so T3 picked
	// up a commit dependency on T2 and can only pseudo-commit while
	// T2 is active.
	if st, _, err := s.Commit(3); err != nil || st != PseudoCommitted {
		t.Fatalf("T3 commit = %v, %v, want pseudo-committed (depends on T2)", st, err)
	}
	// T2 commits: T3's real commit cascades, releasing its write from
	// the log, which finally grants T4's read with T3's value.
	_, eff, err = s.Commit(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Committed) != 1 || eff.Committed[0] != 3 {
		t.Fatalf("cascade after T2 = %+v, want T3", eff.Committed)
	}
	if len(eff.Grants) != 1 || eff.Grants[0].Txn != 4 || eff.Grants[0].Ret != (adt.Ret{Code: adt.Value, Val: 30}) {
		t.Fatalf("grants after T2 = %+v", eff.Grants)
	}
}

// TestCommitDepAcrossObjectsOrdersCascade: dependencies gathered on
// different objects all gate the real commit.
func TestCommitDepAcrossObjectsOrdersCascade(t *testing.T) {
	s := NewScheduler(Options{Debug: true})
	for _, id := range []ObjectID{1, 2} {
		if err := s.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	mustBegin(t, s, 1, 2, 3)
	mustExec(t, s, 1, 1, write(10)) // X: T1
	mustExec(t, s, 2, 2, write(20)) // Y: T2
	mustExec(t, s, 3, 1, write(31)) // X: T3 -> dep on T1
	mustExec(t, s, 3, 2, write(32)) // Y: T3 -> dep on T2

	if st, _, _ := s.Commit(3); st != PseudoCommitted {
		t.Fatal("T3 should pseudo-commit")
	}
	// Committing only T1 must not release T3 (still depends on T2).
	if _, eff, err := s.Commit(1); err != nil || len(eff.Committed) != 0 {
		t.Fatalf("after T1: effects %+v, %v", eff, err)
	}
	if got := s.TxnState(3); got != "pseudo-committed" {
		t.Fatalf("T3 = %s", got)
	}
	_, eff, err := s.Commit(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Committed) != 1 || eff.Committed[0] != 3 {
		t.Fatalf("after T2: effects %+v, want T3's real commit", eff)
	}
}

// TestUndoRecoveryStateViews: under undo-log recovery CommittedState
// falls back to the materialised state.
func TestUndoRecoveryStateViews(t *testing.T) {
	s := NewScheduler(Options{Recovery: RecoveryUndo})
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1)
	mustExec(t, s, 1, 1, push(5))
	a, err := s.ObjectState(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CommittedState(1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) || !a.Equal(adt.NewStackState(5)) {
		t.Fatalf("views differ under undo recovery: %v vs %v", a, b)
	}
	if _, err := s.CommittedState(9); err == nil {
		t.Error("unknown object accepted")
	}
}
