package core

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/compat"
)

// logEntry is one uncommitted operation in an object's execution log.
type logEntry struct {
	txn TxnID
	op  adt.Op
	ret adt.Ret
	rec adt.UndoRec // undo-log recovery only
	seq uint64      // global execution sequence number
}

// request is a pending (possibly blocked) operation request.
type request struct {
	txn TxnID
	obj ObjectID
	op  adt.Op
}

// object is the per-object manager: type, classifier, state(s),
// execution log of uncommitted operations, and the FIFO blocked queue.
type object struct {
	id    ObjectID
	typ   adt.Type
	und   adt.Undoer // non-nil iff typ implements adt.Undoer
	class compat.Classifier

	base    adt.State // committed state (intentions-list recovery only)
	cur     adt.State // materialised current state
	log     []logEntry
	blocked []*request
}

func newObject(id ObjectID, typ adt.Type, class compat.Classifier, rec Recovery) (*object, error) {
	o := &object{id: id, typ: typ, class: class, cur: typ.New()}
	if u, ok := typ.(adt.Undoer); ok {
		o.und = u
	}
	switch rec {
	case RecoveryIntentions:
		o.base = typ.New()
	case RecoveryUndo:
		if o.und == nil {
			return nil, fmt.Errorf("%w: type %s", ErrNeedsUndoer, typ.Name())
		}
	}
	return o, nil
}

// classifyAgainstLog classifies op (requested by txn) against every
// uncommitted log entry of other transactions and returns the
// de-duplicated holders it conflicts with and the holders it is
// recoverable (but not commuting) with, in log order.
func (o *object) classifyAgainstLog(txn TxnID, op adt.Op, class compat.Classifier) (conflicts, recovs []TxnID) {
	seenC := map[TxnID]bool{}
	seenR := map[TxnID]bool{}
	for _, e := range o.log {
		if e.txn == txn {
			continue
		}
		switch class.Classify(op, e.op) {
		case compat.Conflict:
			if !seenC[e.txn] {
				seenC[e.txn] = true
				conflicts = append(conflicts, e.txn)
			}
		case compat.Recoverable:
			if !seenR[e.txn] {
				seenR[e.txn] = true
				recovs = append(recovs, e.txn)
			}
		}
	}
	return conflicts, recovs
}

// conflictsWithBlocked reports whether op (requested by txn) fails the
// fair-scheduling admission test: it is not commutative with some
// blocked request of another transaction. It returns the blocked
// requesters op must wait behind.
func (o *object) conflictsWithBlocked(txn TxnID, op adt.Op, class compat.Classifier) []TxnID {
	var waits []TxnID
	seen := map[TxnID]bool{}
	for _, r := range o.blocked {
		if r.txn == txn || seen[r.txn] {
			continue
		}
		if class.Classify(op, r.op) != compat.Commutes {
			seen[r.txn] = true
			waits = append(waits, r.txn)
		}
	}
	return waits
}

// execute applies op for txn, appends the log entry and returns the
// operation's return value.
func (o *object) execute(txn TxnID, op adt.Op, seq uint64, rec Recovery) (adt.Ret, error) {
	var (
		ret adt.Ret
		ur  adt.UndoRec
		err error
	)
	if rec == RecoveryUndo {
		ret, ur, err = o.und.ApplyU(o.cur, op)
	} else {
		ret, err = o.typ.Apply(o.cur, op)
	}
	if err != nil {
		return adt.Ret{}, err
	}
	o.log = append(o.log, logEntry{txn: txn, op: op, ret: ret, rec: ur, seq: seq})
	return ret, nil
}

// removeTxn removes txn's entries from the log, folding them into the
// committed state (commit=true) or reversing their effects
// (commit=false) according to the recovery strategy. With debug set it
// asserts the soundness property: surviving entries' return values are
// unchanged by the removal.
func (o *object) removeTxn(txn TxnID, commit bool, rec Recovery, debug bool) error {
	if rec == RecoveryUndo {
		return o.removeTxnUndo(txn, commit)
	}
	return o.removeTxnIntentions(txn, commit, debug)
}

func (o *object) removeTxnIntentions(txn TxnID, commit bool, debug bool) error {
	kept := o.log[:0:0]
	var removed []logEntry
	for _, e := range o.log {
		if e.txn == txn {
			removed = append(removed, e)
		} else {
			kept = append(kept, e)
		}
	}
	if len(removed) == 0 {
		return nil
	}
	o.log = kept

	if commit {
		// Fold the committing transaction's operations into the
		// base. Every surviving earlier entry commutes with them
		// (the committing transaction has out-degree zero), so
		// applying them directly to the base is sound.
		for _, e := range removed {
			ret, err := o.typ.Apply(o.base, e.op)
			if err != nil {
				return fmt.Errorf("core: intentions commit replay on object %d: %w", o.id, err)
			}
			if debug && ret != e.ret {
				return fmt.Errorf("core: object %d: commit fold changed return of %v: logged %v, replayed %v",
					o.id, e.op, e.ret, ret)
			}
		}
		if debug {
			return o.checkReplayMatchesCur()
		}
		return nil
	}

	// Abort: rebuild the materialised state by replaying the
	// surviving log onto the base. Soundness (Theorem 1) guarantees
	// every replayed return equals the logged one.
	curr := o.base.Clone()
	for i := range o.log {
		ret, err := o.typ.Apply(curr, o.log[i].op)
		if err != nil {
			return fmt.Errorf("core: intentions abort replay on object %d: %w", o.id, err)
		}
		if debug && ret != o.log[i].ret {
			return fmt.Errorf("core: object %d: abort replay changed return of %v: logged %v, replayed %v (soundness violation)",
				o.id, o.log[i].op, o.log[i].ret, ret)
		}
		o.log[i].ret = ret
	}
	o.cur = curr
	return nil
}

// checkReplayMatchesCur asserts base+log == cur (debug only).
func (o *object) checkReplayMatchesCur() error {
	s := o.base.Clone()
	for _, e := range o.log {
		if _, err := o.typ.Apply(s, e.op); err != nil {
			return err
		}
	}
	if !s.Equal(o.cur) {
		return fmt.Errorf("core: object %d: base+log = %v diverges from materialised state %v", o.id, s, o.cur)
	}
	return nil
}

func (o *object) removeTxnUndo(txn TxnID, commit bool) error {
	if commit {
		kept := o.log[:0:0]
		for _, e := range o.log {
			if e.txn != txn {
				kept = append(kept, e)
			}
		}
		o.log = kept
		return nil
	}
	// Undo the transaction's operations in reverse execution order.
	// Each undo sees the later entries still present in the log so it
	// can fix up before-image chains.
	for i := len(o.log) - 1; i >= 0; i-- {
		e := o.log[i]
		if e.txn != txn {
			continue
		}
		later := make([]adt.UndoEntry, 0, len(o.log)-i-1)
		for _, le := range o.log[i+1:] {
			later = append(later, adt.UndoEntry{Op: le.op, Rec: le.rec})
		}
		if err := o.und.Undo(o.cur, e.op, e.rec, later); err != nil {
			return fmt.Errorf("core: undo on object %d: %w", o.id, err)
		}
		o.log = append(o.log[:i], o.log[i+1:]...)
	}
	return nil
}

// dequeueBlocked removes txn's blocked request, if any.
func (o *object) dequeueBlocked(txn TxnID) {
	for i, r := range o.blocked {
		if r.txn == txn {
			o.blocked = append(o.blocked[:i], o.blocked[i+1:]...)
			return
		}
	}
}

// hasEntries reports whether txn has uncommitted operations here.
func (o *object) hasEntries(txn TxnID) bool {
	for _, e := range o.log {
		if e.txn == txn {
			return true
		}
	}
	return false
}
