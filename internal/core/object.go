package core

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/compat"
)

// logEntry is one uncommitted operation in an object's execution log.
type logEntry struct {
	txn  TxnID
	op   adt.Op
	opid adt.OpID // op.Name interned against the compiled classifier, or NoOpID
	ret  adt.Ret
	rec  adt.UndoRec // undo-log recovery only
	seq  uint64      // global execution sequence number
}

// request is a pending (possibly blocked) operation request.
type request struct {
	txn  TxnID
	obj  ObjectID
	op   adt.Op
	opid adt.OpID // like logEntry.opid, for the fair-admission test
}

// object is the per-object manager: type, classifier, state(s),
// execution log of uncommitted operations, and the FIFO blocked queue.
type object struct {
	id    ObjectID
	typ   adt.Type
	und   adt.Undoer // non-nil iff typ implements adt.Undoer
	class compat.Classifier

	// comp is the classifier lowered to interned-id array lookups
	// (non-nil whenever the classifier is table-backed); commOnly
	// selects the compile-time-composed commutativity-only baseline.
	// classEff is the effective classifier for fallback paths — the
	// predicate wrapper is applied once here instead of being boxed on
	// every request.
	comp     *compat.Compiled
	commOnly bool
	classEff compat.Classifier

	base    adt.State // committed state (intentions-list recovery only)
	cur     adt.State // materialised current state
	log     []logEntry
	blocked []*request
}

func newObject(id ObjectID, typ adt.Type, class compat.Classifier, rec Recovery, pred Predicate) (*object, error) {
	o := &object{id: id, typ: typ, class: class, cur: typ.New()}
	if u, ok := typ.(adt.Undoer); ok {
		o.und = u
	}
	o.comp, _ = compat.CompileClassifier(class)
	o.commOnly = pred == PredCommutativity
	if o.commOnly {
		o.classEff = compat.CommutativityOnly{C: class}
	} else {
		o.classEff = class
	}
	switch rec {
	case RecoveryIntentions:
		o.base = typ.New()
	case RecoveryUndo:
		if o.und == nil {
			return nil, fmt.Errorf("%w: type %s", ErrNeedsUndoer, typ.Name())
		}
	}
	return o, nil
}

// opID interns an operation name against the object's compiled
// classifier (NoOpID when the classifier did not compile).
func (o *object) opID(op adt.Op) adt.OpID {
	if o.comp == nil {
		return adt.NoOpID
	}
	return o.comp.OpID(op.Name)
}

// classify relates a requested operation (pre-interned as reqID) to an
// executed or blocked one under the object's effective predicate.
func (o *object) classify(reqID adt.OpID, req adt.Op, execID adt.OpID, exec adt.Op) compat.Rel {
	if o.comp != nil {
		return o.comp.ClassifyIDs(reqID, execID, req.SameArg(exec), o.commOnly)
	}
	return o.classEff.Classify(req, exec)
}

// appendUniqueTxn appends t unless present. Holder lists are short (a
// handful of uncommitted transactions), so the linear scan beats the
// map the old implementation allocated per call.
func appendUniqueTxn(list []TxnID, t TxnID) []TxnID {
	for _, x := range list {
		if x == t {
			return list
		}
	}
	return append(list, t)
}

// classifyAgainstLog classifies op (requested by txn) against every
// uncommitted log entry of other transactions and returns the
// de-duplicated holders it conflicts with and the holders it is
// recoverable (but not commuting) with, in log order. Results are
// appended to conflicts[:0] and recovs[:0]; passing reused scratch
// buffers makes the scan allocation-free.
func (o *object) classifyAgainstLog(txn TxnID, op adt.Op, conflicts, recovs []TxnID) (c, r []TxnID) {
	conflicts, recovs = conflicts[:0], recovs[:0]
	if o.comp != nil {
		// Resolve the requested op's table row (and the predicate)
		// once; each log entry is then one indexed load.
		row := o.comp.Row(o.comp.OpID(op.Name), o.commOnly)
		for i := range o.log {
			e := &o.log[i]
			if e.txn == txn {
				continue
			}
			switch row.Classify(e.opid, op.SameArg(e.op)) {
			case compat.Conflict:
				conflicts = appendUniqueTxn(conflicts, e.txn)
			case compat.Recoverable:
				recovs = appendUniqueTxn(recovs, e.txn)
			}
		}
		return conflicts, recovs
	}
	for i := range o.log {
		e := &o.log[i]
		if e.txn == txn {
			continue
		}
		switch o.classEff.Classify(op, e.op) {
		case compat.Conflict:
			conflicts = appendUniqueTxn(conflicts, e.txn)
		case compat.Recoverable:
			recovs = appendUniqueTxn(recovs, e.txn)
		}
	}
	return conflicts, recovs
}

// conflictsWithBlocked reports whether op (requested by txn) fails the
// fair-scheduling admission test: it is not commutative with some
// blocked request of another transaction. It returns the blocked
// requesters op must wait behind, appended to waits[:0].
func (o *object) conflictsWithBlocked(txn TxnID, op adt.Op, waits []TxnID) []TxnID {
	waits = waits[:0]
	if len(o.blocked) == 0 {
		return waits
	}
	if o.comp != nil {
		row := o.comp.Row(o.comp.OpID(op.Name), o.commOnly)
		for _, r := range o.blocked {
			if r.txn == txn {
				continue
			}
			if row.Classify(r.opid, op.SameArg(r.op)) != compat.Commutes {
				waits = appendUniqueTxn(waits, r.txn)
			}
		}
		return waits
	}
	for _, r := range o.blocked {
		if r.txn == txn {
			continue
		}
		if o.classEff.Classify(op, r.op) != compat.Commutes {
			waits = appendUniqueTxn(waits, r.txn)
		}
	}
	return waits
}

// execute applies op for txn, appends the log entry and returns the
// operation's return value.
func (o *object) execute(txn TxnID, op adt.Op, seq uint64, rec Recovery) (adt.Ret, error) {
	var (
		ret adt.Ret
		ur  adt.UndoRec
		err error
	)
	if rec == RecoveryUndo {
		ret, ur, err = o.und.ApplyU(o.cur, op)
	} else {
		ret, err = o.typ.Apply(o.cur, op)
	}
	if err != nil {
		return adt.Ret{}, err
	}
	o.log = append(o.log, logEntry{txn: txn, op: op, opid: o.opID(op), ret: ret, rec: ur, seq: seq})
	return ret, nil
}

// removeTxn removes txn's entries from the log, folding them into the
// committed state (commit=true) or reversing their effects
// (commit=false) according to the recovery strategy. With debug set it
// asserts the soundness property: surviving entries' return values are
// unchanged by the removal. sc provides reusable buffers.
func (o *object) removeTxn(txn TxnID, commit bool, rec Recovery, debug bool, sc *schedScratch) error {
	if rec == RecoveryUndo {
		return o.removeTxnUndo(txn, commit, sc)
	}
	return o.removeTxnIntentions(txn, commit, debug, sc)
}

func (o *object) removeTxnIntentions(txn TxnID, commit bool, debug bool, sc *schedScratch) error {
	// Compact the log in place, collecting the transaction's entries
	// into the reusable scratch buffer (the old version allocated a
	// fresh kept slice plus a removed slice on every termination).
	removed := sc.removed[:0]
	kept := o.log[:0]
	for i := range o.log {
		if o.log[i].txn == txn {
			removed = append(removed, o.log[i])
		} else {
			kept = append(kept, o.log[i])
		}
	}
	if len(removed) == 0 {
		sc.removed = removed
		return nil
	}
	// Zero the vacated tail so undo records and op payloads don't leak
	// past the shrunk length.
	tail := o.log[len(kept):len(o.log)]
	for i := range tail {
		tail[i] = logEntry{}
	}
	o.log = kept

	err := o.foldOrReplay(removed, commit, debug)
	sc.removed = clearLogEntries(removed)
	return err
}

// foldOrReplay finishes an intentions-list removal once the departing
// entries have been extracted.
func (o *object) foldOrReplay(removed []logEntry, commit, debug bool) error {
	if commit {
		// Fold the committing transaction's operations into the
		// base. Every surviving earlier entry commutes with them
		// (the committing transaction has out-degree zero), so
		// applying them directly to the base is sound.
		for i := range removed {
			e := &removed[i]
			ret, err := o.typ.Apply(o.base, e.op)
			if err != nil {
				return fmt.Errorf("core: intentions commit replay on object %d: %w", o.id, err)
			}
			if debug && ret != e.ret {
				return fmt.Errorf("core: object %d: commit fold changed return of %v: logged %v, replayed %v",
					o.id, e.op, e.ret, ret)
			}
		}
		if debug {
			return o.checkReplayMatchesCur()
		}
		return nil
	}

	// Abort: rebuild the materialised state by replaying the
	// surviving log onto the base. Soundness (Theorem 1) guarantees
	// every replayed return equals the logged one. States that support
	// in-place copying are rebuilt into the existing materialised
	// state, so the steady-state abort path allocates nothing; a
	// replay error leaves the object unusable either way (the caller
	// treats it as a broken internal invariant).
	var curr adt.State
	if c, ok := o.cur.(adt.Copier); ok && c.CopyFrom(o.base) {
		curr = o.cur
	} else {
		curr = o.base.Clone()
	}
	for i := range o.log {
		ret, err := o.typ.Apply(curr, o.log[i].op)
		if err != nil {
			return fmt.Errorf("core: intentions abort replay on object %d: %w", o.id, err)
		}
		if debug && ret != o.log[i].ret {
			return fmt.Errorf("core: object %d: abort replay changed return of %v: logged %v, replayed %v (soundness violation)",
				o.id, o.log[i].op, o.log[i].ret, ret)
		}
		o.log[i].ret = ret
	}
	o.cur = curr
	return nil
}

// checkReplayMatchesCur asserts base+log == cur (debug only).
func (o *object) checkReplayMatchesCur() error {
	s := o.base.Clone()
	for _, e := range o.log {
		if _, err := o.typ.Apply(s, e.op); err != nil {
			return err
		}
	}
	if !s.Equal(o.cur) {
		return fmt.Errorf("core: object %d: base+log = %v diverges from materialised state %v", o.id, s, o.cur)
	}
	return nil
}

func (o *object) removeTxnUndo(txn TxnID, commit bool, sc *schedScratch) error {
	if commit {
		o.compactLogExcluding(txn, -1)
		return nil
	}
	// Undo the transaction's operations in reverse execution order.
	// Each undo must see the later entries still present in the log so
	// it can fix up before-image chains; walking backwards, those are
	// exactly the surviving (other-transaction) entries processed so
	// far, maintained as the suffix later[pos:] of one reusable buffer.
	// The old version rebuilt a fresh `later` slice and shifted the log
	// with append(log[:i], log[i+1:]...) per undone entry — O(n²) for
	// a transaction with many operations on one object.
	n := len(o.log)
	later := sc.undoLater
	if cap(later) < n {
		later = make([]adt.UndoEntry, n)
	}
	later = later[:n]
	pos := n
	undone := false
	for i := n - 1; i >= 0; i-- {
		e := &o.log[i]
		if e.txn != txn {
			pos--
			later[pos] = adt.UndoEntry{Op: e.op, Rec: e.rec}
			continue
		}
		undone = true
		if err := o.und.Undo(o.cur, e.op, e.rec, later[pos:]); err != nil {
			// Keep the log consistent with the undos applied so far:
			// drop the entries at index > i that were already undone.
			o.compactLogExcluding(txn, i)
			sc.undoLater = clearUndoEntries(later)
			return fmt.Errorf("core: undo on object %d: %w", o.id, err)
		}
	}
	if undone {
		o.compactLogExcluding(txn, -1)
	}
	sc.undoLater = clearUndoEntries(later)
	return nil
}

// compactLogExcluding removes txn's entries with index > from in a
// single pass, preserving order (from = -1 removes them all).
func (o *object) compactLogExcluding(txn TxnID, from int) {
	kept := o.log[:0]
	for i := range o.log {
		if o.log[i].txn == txn && i > from {
			continue
		}
		kept = append(kept, o.log[i])
	}
	tail := o.log[len(kept):len(o.log)]
	for i := range tail {
		tail[i] = logEntry{}
	}
	o.log = kept
}

// clearUndoEntries drops the buffer's references so pooled undo records
// don't pin aborted transactions' state, and returns it for reuse.
func clearUndoEntries(buf []adt.UndoEntry) []adt.UndoEntry {
	for i := range buf {
		buf[i] = adt.UndoEntry{}
	}
	return buf[:0]
}

// clearLogEntries likewise zeroes extracted log entries (undo records,
// op payloads) so the scratch buffer's capacity doesn't pin them, and
// returns it for reuse.
func clearLogEntries(buf []logEntry) []logEntry {
	for i := range buf {
		buf[i] = logEntry{}
	}
	return buf[:0]
}

// dequeueBlocked removes txn's blocked request, if any.
func (o *object) dequeueBlocked(txn TxnID) {
	for i, r := range o.blocked {
		if r.txn == txn {
			copy(o.blocked[i:], o.blocked[i+1:])
			o.blocked[len(o.blocked)-1] = nil
			o.blocked = o.blocked[:len(o.blocked)-1]
			return
		}
	}
}

// hasEntries reports whether txn has uncommitted operations here.
func (o *object) hasEntries(txn TxnID) bool {
	for i := range o.log {
		if o.log[i].txn == txn {
			return true
		}
	}
	return false
}
