package core

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
)

// Store is the transactional client API. Both back ends implement it —
// DB (one scheduler, one process) and dist.Cluster (the §6 distributed
// cluster / local sharding layer) — so client code, the workload
// harness and the examples are written once against Store/Txn and run
// unchanged on either. The recommended way to write a transaction is
// Run; Begin is the low-level entry for code that manages its own
// retries.
type Store interface {
	// Register creates an object with an explicit type and classifier.
	// The classifier should be the plain (recoverability-aware) table
	// even under PredCommutativity; the store applies the predicate
	// itself.
	Register(id ObjectID, typ adt.Type, class compat.Classifier) error
	// Begin starts a transaction. It never fails: on a closed store it
	// returns a transaction whose operations report ErrClosed.
	Begin() Txn
	// Run executes fn inside a transaction and commits it, retrying on
	// retryable aborts (deadlock, commit-dependency cycle) with bounded
	// exponential backoff. See RunStore for the exact contract.
	Run(ctx context.Context, fn func(Txn) error) error
	// Stats returns a snapshot of the protocol counters. DB snapshots
	// under the scheduler lock (globally consistent); Cluster sums
	// per-site snapshots (each site consistent, the sum fuzzy across
	// sites — see Cluster.Stats for how multi-site transactions count).
	Stats() Stats
	// Close marks the store closed: transactions begun afterwards fail
	// with ErrClosed. Transactions already in flight are unaffected and
	// run to completion. Close is idempotent and never blocks.
	Close() error
	// CloseCtx is the draining close: it gates the store like Close,
	// then waits until every transaction in flight at close time —
	// including pseudo-commits awaiting their real commit — has reached
	// its terminal state. A cancelled ctx stops the wait and returns
	// ctx.Err() with the gate left in place (force-gate); the in-flight
	// transactions still run to completion on their own.
	CloseCtx(ctx context.Context) error
}

// Txn is one transaction's session, implemented by *Handle (DB) and
// *dist.Txn (Cluster). A Txn must be driven by one goroutine at a time;
// separate transactions are fully concurrent.
//
// Abort outcomes are typed: errors satisfy errors.As(err, **ErrAborted)
// and errors.Is against ErrTxnAborted / ErrDeadlock / ErrConflictCycle.
type Txn interface {
	// ID returns the transaction id.
	ID() TxnID
	// Do executes op against obj, blocking until the operation runs or
	// the scheduler aborts the transaction.
	Do(obj ObjectID, op adt.Op) (adt.Ret, error)
	// DoCtx is Do with cancellation: if ctx expires while the request
	// is blocked, the request is withdrawn from the scheduler queue
	// (transactions parked behind it are retried, so nothing strands),
	// the transaction stays active with its executed operations intact,
	// and ctx.Err() is returned. If the grant raced the cancellation,
	// the operation has executed and its result is returned instead.
	DoCtx(ctx context.Context, obj ObjectID, op adt.Op) (adt.Ret, error)
	// Commit completes the transaction. PseudoCommitted means complete
	// from the caller's perspective with the real commit pending on
	// dependencies; Done reports when it lands.
	Commit() (CommitStatus, error)
	// CommitCtx is Commit guarded by ctx: if ctx is already done, no
	// commit is attempted, ctx.Err() is returned, and the transaction
	// remains active (in particular, still abortable).
	CommitCtx(ctx context.Context) (CommitStatus, error)
	// Abort rolls the transaction back at every participant. Aborting
	// an already-aborted transaction is a no-op; pseudo-committed
	// transactions refuse (they have promised to commit).
	Abort() error
	// Done returns a channel closed when the transaction reaches its
	// terminal state: the real commit has landed (for pseudo-commits,
	// after every dependency drained) or the transaction aborted. It
	// replaces the old WaitCommitted/Committed methods.
	Done() <-chan struct{}
	// Err reports how the transaction ended: nil after a real commit
	// (and while still in flight), a *ErrAborted after an abort. It is
	// meaningful once Done's channel is closed.
	Err() error
}

// Compile-time conformance: both front ends satisfy Store, their
// transactions Txn. (Cluster's assertions live in internal/dist.)
var (
	_ Store = (*DB)(nil)
	_ Txn   = (*Handle)(nil)
	_ Txn   = closedTxn{}
)

// Retry policy shared by RunStore and the workload load harness:
// restarts back off exponentially from RunBackoffBase, capped at
// RunBackoffShift doublings (the closed-loop stand-in for the
// simulator's think time), with full jitter. After RunMaxAttempts the
// last abort error is returned — a safety valve against pathological
// livelock.
const (
	RunBackoffBase  = 25 * time.Microsecond
	RunBackoffShift = 6
	RunMaxAttempts  = 1000
)

// RunStore executes fn inside a transaction against st and commits it.
// Both Store implementations delegate their Run method here.
//
// The contract: a fresh transaction is begun per attempt and passed to
// fn; if fn returns nil the transaction is committed (pseudo-commit
// counts as success — the commit is a promise). If fn returns an error,
// or the commit fails, the transaction is aborted (a no-op if the
// scheduler already aborted it) and the error is classified: retryable
// aborts (*ErrAborted with a deadlock or commit-dependency-cycle
// reason, however deep in fn's wrapping) restart fn with backoff;
// anything else — user errors, ErrClosed, ctx expiry — is returned
// as-is. fn must be prepared to run more than once and must not retain
// the Txn across calls.
func RunStore(ctx context.Context, st Store, fn func(Txn) error) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := st.Begin()
		err := fn(t)
		if err == nil {
			_, err = t.CommitCtx(ctx)
			if err == nil {
				return nil
			}
		}
		t.Abort() // no-op if the scheduler already finalised it
		var ab *ErrAborted
		if !errors.As(err, &ab) || !ab.Retryable() || attempt+1 >= RunMaxAttempts {
			return err
		}
		shift := attempt
		if shift > RunBackoffShift {
			shift = RunBackoffShift
		}
		// Full jitter: an immediate replay of the same operations tends
		// to re-collide with the same resident set.
		delay := time.Duration(1+rand.Int63n(1<<shift)) * RunBackoffBase
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// closedDone is the shared pre-closed Done channel for transactions
// that failed before they began.
var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// closedTxn is the transaction a closed Store's Begin returns: every
// operation fails with the recorded error, Done is already closed.
type closedTxn struct{ err error }

// ClosedTxn returns a Txn that failed before it began: operations
// report err, Done is already closed. Store implementations return it
// from Begin after Close.
func ClosedTxn(err error) Txn { return closedTxn{err: err} }

func (c closedTxn) ID() TxnID                            { return 0 }
func (c closedTxn) Do(ObjectID, adt.Op) (adt.Ret, error) { return adt.Ret{}, c.err }
func (c closedTxn) Commit() (CommitStatus, error)        { return 0, c.err }
func (c closedTxn) CommitCtx(context.Context) (CommitStatus, error) {
	return 0, c.err
}
func (c closedTxn) Abort() error          { return nil }
func (c closedTxn) Done() <-chan struct{} { return closedDone }
func (c closedTxn) Err() error            { return c.err }

func (c closedTxn) DoCtx(_ context.Context, _ ObjectID, _ adt.Op) (adt.Ret, error) {
	return adt.Ret{}, c.err
}
