package core

import (
	"errors"
	"fmt"
)

// Client-facing errors for the Store/Txn API. Abort outcomes are typed
// (*ErrAborted) so callers classify them with errors.Is/errors.As
// instead of string matching; the sentinels below are the Is targets.
var (
	// ErrTxnAborted matches every scheduler- or user-initiated abort,
	// whatever the reason. It is the stable "begin a fresh transaction
	// and retry" signal (Store.Run does exactly that for retryable
	// reasons).
	ErrTxnAborted = errors.New("transaction aborted")
	// ErrDeadlock matches aborts whose reason is a wait-for cycle
	// (local or cross-site deadlock).
	ErrDeadlock = errors.New("transaction aborted: deadlock")
	// ErrConflictCycle matches aborts whose reason is a
	// commit-dependency cycle — the serializability guard tripping on a
	// recoverable execution (local or cross-site).
	ErrConflictCycle = errors.New("transaction aborted: commit-dependency cycle")
	// ErrSiteFailed matches aborts caused by the crash of a participant
	// site that held the transaction's uncommitted operations (the
	// crash-stop fault model of internal/fault). Like deadlocks, these
	// are artifacts of timing, not of the transaction itself, so they
	// are retryable — a restart after the site recovers can succeed.
	ErrSiteFailed = errors.New("transaction aborted: participant site failed")
	// ErrHoldShed matches aborts whose reason is the coordinator's hold
	// policy shedding an overloaded hold (the bounded-hold release
	// policies of internal/dist). Like deadlocks, a shed is an artifact
	// of the instantaneous convoy, not of the transaction — retryable.
	ErrHoldShed = errors.New("transaction aborted: shed by hold policy")
	// ErrClosed is returned by operations on a closed Store and by
	// transactions begun after Close.
	ErrClosed = errors.New("store is closed")
	// ErrTxnDone is returned for operations on a transaction that has
	// already entered commit (pseudo- or really committed).
	ErrTxnDone = errors.New("transaction already committed")
)

// ErrAborted is the typed abort outcome: the scheduler (or the
// distributed coordinator) terminated the transaction instead of
// executing the request. It matches ErrTxnAborted always, and
// ErrDeadlock / ErrConflictCycle according to Reason, so both coarse
// and precise errors.Is checks work:
//
//	var ab *core.ErrAborted
//	if errors.As(err, &ab) && ab.Retryable() { restart() }
//	if errors.Is(err, core.ErrDeadlock) { ... }
type ErrAborted struct {
	// Txn is the aborted transaction's id.
	Txn TxnID
	// Reason says why the scheduler chose it as a victim.
	Reason AbortReason
}

// Error implements error.
func (e *ErrAborted) Error() string {
	return fmt.Sprintf("transaction T%d aborted (%s)", e.Txn, e.Reason)
}

// Is makes errors.Is(err, ErrTxnAborted / ErrDeadlock /
// ErrConflictCycle) work on wrapped abort errors.
func (e *ErrAborted) Is(target error) bool {
	switch target {
	case ErrTxnAborted:
		return true
	case ErrDeadlock:
		return e.Reason == ReasonDeadlock
	case ErrConflictCycle:
		return e.Reason == ReasonCommitCycle
	case ErrSiteFailed:
		return e.Reason == ReasonSiteFailed
	case ErrHoldShed:
		return e.Reason == ReasonShed
	}
	return false
}

// Retryable reports whether restarting the transaction can succeed:
// true for scheduler-chosen victims (deadlock and commit-dependency
// cycles are artifacts of the interleaving), for site failures (the
// site may have recovered), and for policy sheds (the convoy may have
// drained); false for user aborts.
func (e *ErrAborted) Retryable() bool {
	switch e.Reason {
	case ReasonDeadlock, ReasonCommitCycle, ReasonSiteFailed, ReasonShed:
		return true
	}
	return false
}

// abortErr builds the typed abort error for a transaction.
func abortErr(id TxnID, reason AbortReason) error {
	return &ErrAborted{Txn: id, Reason: reason}
}
