package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
)

// TestDBCloseCtxWaitsForInFlight: the draining close gates Begin
// immediately but returns only after the in-flight transaction
// terminates.
func TestDBCloseCtxWaitsForInFlight(t *testing.T) {
	db := NewDB(Options{})
	if err := db.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	slow := db.Begin()
	if _, err := slow.Do(1, adt.Op{Name: adt.PageWrite, Arg: 1, HasArg: true}); err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- db.CloseCtx(context.Background()) }()
	select {
	case err := <-closed:
		t.Fatalf("CloseCtx returned %v with a transaction in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Gated: new transactions fail, the in-flight one is unaffected.
	if _, err := db.Begin().Do(1, adt.Op{Name: adt.PageRead}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin after CloseCtx = %v, want ErrClosed", err)
	}
	if st, err := slow.Commit(); err != nil || st != Committed {
		t.Fatalf("slow commit = %v %v", st, err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("CloseCtx after drain = %v", err)
	}
	// Idempotent once drained.
	if err := db.CloseCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDBCloseCtxForceGates: a cancelled context stops the wait with
// the gate left in place; the straggler still finishes on its own.
func TestDBCloseCtxForceGates(t *testing.T) {
	db := NewDB(Options{})
	if err := db.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	hung := db.Begin()
	if _, err := hung.Do(1, adt.Op{Name: adt.PageWrite, Arg: 1, HasArg: true}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := db.CloseCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseCtx with hung transaction = %v, want deadline", err)
	}
	if tx := db.Begin(); !errors.Is(tx.Err(), ErrClosed) {
		t.Fatalf("force-gated store accepted Begin: %v", tx.Err())
	}
	if st, err := hung.Commit(); err != nil || st != Committed {
		t.Fatalf("hung commit = %v %v", st, err)
	}
	if err := db.CloseCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
}
