package core

import (
	"runtime"
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
)

// The allocation regression tests pin the tentpole property of the
// compiled-classifier + scratch-reuse work: the steady-state request
// path does not touch the heap. They run a generous warm-up first so
// every pool and scratch buffer reaches its steady capacity.

// TestCommutingPathZeroAllocs asserts a steady-state Begin / Request
// (commuting op) / Commit / Forget cycle performs zero heap
// allocations.
func TestCommutingPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := NewScheduler(Options{})
	if err := s.Register(1, adt.Set{}, compat.SetTable()); err != nil {
		t.Fatal(err)
	}
	var id TxnID
	cycle := func() {
		id++
		if err := s.Begin(id); err != nil {
			t.Fatal(err)
		}
		op := adt.Op{Name: adt.SetMember, Arg: int(id % 97), HasArg: true}
		if dec, _, err := s.Request(id, 1, op); err != nil || dec.Outcome != Executed {
			t.Fatalf("request: %v %v", dec, err)
		}
		if st, _, err := s.Commit(id); err != nil || st != Committed {
			t.Fatalf("commit: %v %v", st, err)
		}
		s.Forget(id)
	}
	for i := 0; i < 200; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(500, cycle); avg != 0 {
		t.Fatalf("commuting Request/Commit cycle allocates %.2f times per op, want 0", avg)
	}
}

// TestBlockedPathZeroAllocs asserts the blocked path — park a
// conflicting request, wait-for edge, deadlock check, grant on the
// holder's commit — allocates nothing in steady state when driven
// through the *Into variants with a reused Effects buffer: the
// per-block request is pooled (graveyard -> free list) and the grant
// is appended into the caller's buffer.
func TestBlockedPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := NewScheduler(Options{})
	if err := s.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	write := func(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }
	read := adt.Op{Name: adt.PageRead}
	var eff Effects
	var id TxnID
	cycle := func() {
		ta, tb := id+1, id+2
		id += 2
		if err := s.Begin(ta); err != nil {
			t.Fatal(err)
		}
		if err := s.Begin(tb); err != nil {
			t.Fatal(err)
		}
		if dec, err := s.RequestInto(&eff, ta, 1, write(int(id))); err != nil || dec.Outcome != Executed {
			t.Fatalf("write: %v %v", dec, err)
		}
		if dec, err := s.RequestInto(&eff, tb, 1, read); err != nil || dec.Outcome != Blocked {
			t.Fatalf("read: %v %v", dec, err)
		}
		if st, err := s.CommitInto(&eff, ta); err != nil || st != Committed {
			t.Fatalf("commit a: %v %v", st, err)
		}
		if len(eff.Grants) != 1 || eff.Grants[0].Txn != tb {
			t.Fatalf("grants = %+v", eff.Grants)
		}
		if st, err := s.CommitInto(&eff, tb); err != nil || st != Committed {
			t.Fatalf("commit b: %v %v", st, err)
		}
		s.Forget(ta)
		s.Forget(tb)
	}
	for i := 0; i < 200; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(500, cycle); avg != 0 {
		t.Fatalf("blocked Request/grant cycle allocates %.2f times per pair, want 0", avg)
	}
}

// TestWithdrawPathZeroAllocs asserts the cancellation path — park,
// withdraw, followers retried — allocates nothing in steady state.
func TestWithdrawPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := NewScheduler(Options{})
	if err := s.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	write := func(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }
	read := adt.Op{Name: adt.PageRead}
	var eff Effects
	var id TxnID
	cycle := func() {
		ta, tb := id+1, id+2
		id += 2
		if err := s.Begin(ta); err != nil {
			t.Fatal(err)
		}
		if err := s.Begin(tb); err != nil {
			t.Fatal(err)
		}
		if dec, err := s.RequestInto(&eff, ta, 1, write(int(id))); err != nil || dec.Outcome != Executed {
			t.Fatalf("write: %v %v", dec, err)
		}
		if dec, err := s.RequestInto(&eff, tb, 1, read); err != nil || dec.Outcome != Blocked {
			t.Fatalf("read: %v %v", dec, err)
		}
		if err := s.WithdrawInto(&eff, tb); err != nil {
			t.Fatalf("withdraw: %v", err)
		}
		if err := s.AbortInto(&eff, tb); err != nil {
			t.Fatalf("abort b: %v", err)
		}
		if st, err := s.CommitInto(&eff, ta); err != nil || st != Committed {
			t.Fatalf("commit a: %v %v", st, err)
		}
		s.Forget(ta)
		s.Forget(tb)
	}
	for i := 0; i < 200; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(500, cycle); avg != 0 {
		t.Fatalf("withdraw cycle allocates %.2f times per pair, want 0", avg)
	}
}

// TestRecoverablePathIntoZeroAllocs asserts that the recoverable path
// driven through the *Into variants — commit-dependency edges, a cycle
// check, pseudo-commit and cascade, with the Effects appended into a
// reused buffer — performs zero allocations (the value-returning
// variant below still pays for the escaping Effects lists).
func TestRecoverablePathIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := NewScheduler(Options{})
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	push := func(v int) adt.Op { return adt.Op{Name: adt.StackPush, Arg: v, HasArg: true} }
	var eff Effects
	var id TxnID
	pair := func() {
		ta, tb := id+1, id+2
		id += 2
		if err := s.Begin(ta); err != nil {
			t.Fatal(err)
		}
		if err := s.Begin(tb); err != nil {
			t.Fatal(err)
		}
		if dec, err := s.RequestInto(&eff, ta, 1, push(1)); err != nil || dec.Outcome != Executed {
			t.Fatalf("request: %v %v", dec, err)
		}
		if dec, err := s.RequestInto(&eff, tb, 1, push(2)); err != nil || dec.Outcome != Executed {
			t.Fatalf("request: %v %v", dec, err)
		}
		if st, err := s.CommitInto(&eff, tb); err != nil || st != PseudoCommitted {
			t.Fatalf("commit b: %v %v", st, err)
		}
		if st, err := s.CommitInto(&eff, ta); err != nil || st != Committed {
			t.Fatalf("commit a: %v %v", st, err)
		}
		if len(eff.Committed) != 1 || eff.Committed[0] != tb {
			t.Fatalf("cascade = %+v", eff.Committed)
		}
		s.Forget(ta)
		s.Forget(tb)
	}
	for i := 0; i < 200; i++ {
		pair()
	}
	if avg := testing.AllocsPerRun(500, pair); avg != 0 {
		t.Fatalf("recoverable Into pair allocates %.2f times, want 0", avg)
	}
}

// TestRecoverablePathBoundedAllocs asserts the recoverable path —
// commit-dependency edges, a cycle check, pseudo-commit and cascade —
// stays within a fixed small allocation bound per transaction pair
// (the Effects lists returned to the caller still allocate).
func TestRecoverablePathBoundedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := NewScheduler(Options{})
	if err := s.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	var id TxnID
	pair := func() {
		ta, tb := id+1, id+2
		id += 2
		if err := s.Begin(ta); err != nil {
			t.Fatal(err)
		}
		if err := s.Begin(tb); err != nil {
			t.Fatal(err)
		}
		push := func(v int) adt.Op { return adt.Op{Name: adt.StackPush, Arg: v, HasArg: true} }
		if dec, _, err := s.Request(ta, 1, push(1)); err != nil || dec.Outcome != Executed {
			t.Fatalf("request: %v %v", dec, err)
		}
		if dec, _, err := s.Request(tb, 1, push(2)); err != nil || dec.Outcome != Executed {
			t.Fatalf("request: %v %v", dec, err)
		}
		if st, _, err := s.Commit(tb); err != nil || st != PseudoCommitted {
			t.Fatalf("commit b: %v %v", st, err)
		}
		if st, _, err := s.Commit(ta); err != nil || st != Committed {
			t.Fatalf("commit a: %v %v", st, err)
		}
		s.Forget(ta)
		s.Forget(tb)
	}
	for i := 0; i < 200; i++ {
		pair()
	}
	const bound = 4.0
	if avg := testing.AllocsPerRun(500, pair); avg > bound {
		t.Fatalf("recoverable pair allocates %.2f times, want <= %.0f", avg, bound)
	}
}

// TestDBBlockedPathBoundedAllocs pins the DB-level blocked path: a
// real goroutine parks on a conflicting Do and is granted by the
// holder's commit. With the park channels pooled in the delivery hub
// (receiver-side recycling), the cycle's only steady-state allocations
// are the per-transaction fixtures Begin cannot avoid — two Handle
// records and their two Done channels — so the bound is 4. Before the
// pool, every park added a fifth (the one-shot buffered channel).
func TestDBBlockedPathBoundedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	db := NewDB(Options{})
	if err := db.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	write := func(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }
	read := adt.Op{Name: adt.PageRead}

	// A long-lived worker drives the blocked side, so the measured
	// closure never spawns goroutines or builds channels of its own.
	reqCh := make(chan Txn)
	resCh := make(chan error)
	go func() {
		for tb := range reqCh {
			_, err := tb.Do(1, read)
			resCh <- err
		}
	}()
	defer close(reqCh)

	i := 0
	cycle := func() {
		i++
		ta, tb := db.Begin(), db.Begin()
		if _, err := ta.Do(1, write(i)); err != nil {
			t.Fatal(err)
		}
		reqCh <- tb
		for db.Scheduler().TxnState(tb.ID()) != "blocked" {
			runtime.Gosched()
		}
		if _, err := ta.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := <-resCh; err != nil {
			t.Fatal(err)
		}
		if _, err := tb.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		cycle()
	}
	const bound = 4.0
	if avg := testing.AllocsPerRun(500, cycle); avg > bound {
		t.Fatalf("DB blocked cycle allocates %.2f times, want <= %.0f (park channel must come from the pool)", avg, bound)
	}
}
