package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
)

// TestSchedulerConcurrentStress exercises the "safe for concurrent
// use" claim directly against the raw Scheduler from many goroutines:
// disjoint transaction id ranges, overlapping objects, committing and
// aborting — run under -race this is the scheduler's data-race test.
func TestSchedulerConcurrentStress(t *testing.T) {
	const (
		workers = 8
		txns    = 150
		objects = 10
	)
	s := NewScheduler(Options{})
	for id := ObjectID(1); id <= objects; id++ {
		if err := s.Register(id, adt.Set{}, compat.SetTable()); err != nil {
			t.Fatal(err)
		}
	}
	var commits, aborts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				id := TxnID(w*txns + i + 1)
				if err := s.Begin(id); err != nil {
					t.Error(err)
					return
				}
				obj := ObjectID(1 + (w*13+i)%objects)
				// Insert then member: inserts of distinct values
				// commute, members are recoverable — plenty of
				// commit-dependency traffic, no blocking.
				ops := []adt.Op{
					{Name: adt.SetInsert, Arg: w*txns + i, HasArg: true},
					{Name: adt.SetMember, Arg: w, HasArg: true},
				}
				dead := false
				for _, op := range ops {
					dec, _, err := s.Request(id, obj, op)
					if err != nil {
						t.Error(err)
						return
					}
					if dec.Outcome == Aborted {
						aborts.Add(1)
						dead = true
						break
					}
					if dec.Outcome != Executed {
						t.Errorf("unexpected outcome %v", dec.Outcome)
						return
					}
				}
				if dead {
					continue
				}
				if i%7 == 0 {
					if _, err := s.Abort(id); err != nil {
						t.Error(err)
						return
					}
					aborts.Add(1)
					s.Forget(id)
					continue
				}
				if _, _, err := s.Commit(id); err != nil {
					t.Error(err)
					return
				}
				commits.Add(1)
			}
		}(w)
	}
	wg.Wait()

	stats := s.StatsSnapshot()
	if int64(stats.Commits) != commits.Load() {
		t.Errorf("scheduler commits %d != client view %d", stats.Commits, commits.Load())
	}
	if commits.Load() == 0 {
		t.Fatal("stress committed nothing")
	}
}

// TestDBConcurrentStress drives the blocking DB/Handle front end from
// many goroutines over a small hot set of stacks, where requests
// genuinely block and abort. Conservation check: committed pushes
// minus committed successful pops equals the final committed depths.
func TestDBConcurrentStress(t *testing.T) {
	const (
		workers = 8
		rounds  = 80
		objects = 4
	)
	db := NewDB(Options{})
	for id := ObjectID(1); id <= objects; id++ {
		if err := db.Register(id, adt.Stack{}, compat.StackTable()); err != nil {
			t.Fatal(err)
		}
	}
	var balance [objects + 1]atomic.Int64 // committed pushes - pops per object
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				h := db.Begin()
				obj := ObjectID(1 + (w+i)%objects)
				popping := (w+i)%3 == 0
				var op adt.Op
				if popping {
					op = adt.Op{Name: adt.StackPop}
				} else {
					op = adt.Op{Name: adt.StackPush, Arg: w*rounds + i, HasArg: true}
				}
				ret, err := h.Do(obj, op)
				if err != nil {
					if !errors.Is(err, ErrTxnAborted) {
						t.Error(err)
					}
					continue
				}
				if _, err := h.Commit(); err != nil {
					if !errors.Is(err, ErrTxnAborted) {
						t.Error(err)
					}
					continue
				}
				// Commit (even pseudo) is a promise the op's effect
				// persists.
				if popping {
					if ret.Code == adt.Value {
						balance[obj].Add(-1)
					}
				} else {
					balance[obj].Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	// All transactions are done, so every pseudo-commit has cascaded;
	// committed state must match the balance.
	for id := ObjectID(1); id <= objects; id++ {
		s, err := db.Scheduler().CommittedState(id)
		if err != nil {
			t.Fatal(err)
		}
		depth := int64(s.(*adt.StackState).Len())
		if want := balance[id].Load(); depth != want {
			t.Errorf("object %d: committed depth %d, want %d", id, depth, want)
		}
	}
}

// TestBlockedRequesterAbortWakesFairnessWaiters: terminating a
// transaction whose only presence on an object is a BLOCKED request
// (no log entries) must rescan that object's queue — later requests
// that were fairness-gated behind the dequeued request would
// otherwise wait forever (lost wakeup).
func TestBlockedRequesterAbortWakesFairnessWaiters(t *testing.T) {
	s := NewScheduler(Options{})
	if err := s.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	read := adt.Op{Name: adt.PageRead}
	write := func(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }

	mustBegin(t, s, 1, 2, 3)
	mustExec(t, s, 1, 1, write(10)) // T1 holds an uncommitted write
	// T2's read conflicts with the uncommitted write: parks first.
	if dec, _, err := s.Request(2, 1, read); err != nil || dec.Outcome != Blocked {
		t.Fatalf("T2 read = %+v, %v, want blocked", dec, err)
	}
	// T3's write is recoverable with T1's write but does not commute
	// with T2's parked read: fairness queues it behind T2 only.
	if dec, _, err := s.Request(3, 1, write(30)); err != nil || dec.Outcome != Blocked {
		t.Fatalf("T3 write = %+v, %v, want blocked", dec, err)
	}
	// T2 gives up. It has no log entries anywhere — only the blocked
	// request — yet its departure must wake T3.
	eff, err := s.Abort(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Grants) != 1 || eff.Grants[0].Txn != 3 {
		t.Fatalf("grants after T2 abort = %+v, want T3's write granted", eff.Grants)
	}
	if st := s.TxnState(3); st != "active" {
		t.Fatalf("T3 = %s, want active (granted)", st)
	}
	// T3 executed over T1's write: commit dependency as usual.
	if st, _, err := s.Commit(3); err != nil || st != PseudoCommitted {
		t.Fatalf("T3 commit = %v, %v", st, err)
	}
	if _, eff, err := s.Commit(1); err != nil || len(eff.Committed) != 1 || eff.Committed[0] != 3 {
		t.Fatalf("T1 commit effects = %+v, %v, want T3 cascaded", eff, err)
	}
}
