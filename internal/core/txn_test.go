package core_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

func newStackDB(t *testing.T, opts core.Options) *core.DB {
	t.Helper()
	db := core.NewDB(opts)
	if err := db.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	return db
}

func pushOp(v int) adt.Op { return adt.Op{Name: adt.StackPush, Arg: v, HasArg: true} }
func popOp() adt.Op       { return adt.Op{Name: adt.StackPop} }

// TestHandleConcurrentPushes: two goroutines push concurrently under
// recoverability; neither waits; the later committer pseudo-commits and
// its real commit lands once the first terminates.
func TestHandleConcurrentPushes(t *testing.T) {
	db := newStackDB(t, core.Options{Debug: true})

	t1 := db.Begin()
	t2 := db.Begin()

	if _, err := t1.Do(1, pushOp(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Do(1, pushOp(2)); err != nil {
		t.Fatal(err)
	}

	st, err := t2.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st != core.PseudoCommitted {
		t.Fatalf("t2 commit = %v, want pseudo-committed", st)
	}
	select {
	case <-t2.Done():
		t.Fatal("t2 must not really commit before t1 terminates")
	default:
	}

	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t1 commit = %v, %v", st, err)
	}

	select {
	case <-t2.Done():
	case <-time.After(time.Second):
		t.Fatal("t2's real commit never landed")
	}

	got, err := db.Scheduler().CommittedState(1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(adt.NewStackState(4, 2)) {
		t.Fatalf("stack = %v, want stack[4 2]", got)
	}
}

// TestHandleBlockingDo: a pop blocks behind an uncommitted push and is
// granted when the pusher commits.
func TestHandleBlockingDo(t *testing.T) {
	db := newStackDB(t, core.Options{Debug: true})
	t1 := db.Begin()
	t2 := db.Begin()

	if _, err := t1.Do(1, pushOp(7)); err != nil {
		t.Fatal(err)
	}

	got := make(chan adt.Ret, 1)
	errs := make(chan error, 1)
	var started sync.WaitGroup
	started.Add(1)
	go func() {
		started.Done()
		ret, err := t2.Do(1, popOp())
		if err != nil {
			errs <- err
			return
		}
		got <- ret
	}()
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let t2 reach the blocked state

	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t1 commit: %v, %v", st, err)
	}
	select {
	case ret := <-got:
		if ret != (adt.Ret{Code: adt.Value, Val: 7}) {
			t.Fatalf("pop = %v, want value(7)", ret)
		}
	case err := <-errs:
		t.Fatalf("pop failed: %v", err)
	case <-time.After(time.Second):
		t.Fatal("blocked pop never granted")
	}
	if st, err := t2.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t2 commit: %v, %v", st, err)
	}
}

// TestHandleDeadlockVictim: two handles form a wait-for cycle; the
// second blocker gets ErrTxnAborted from its parked Do.
func TestHandleDeadlockVictim(t *testing.T) {
	db := core.NewDB(core.Options{Debug: true})
	for _, id := range []core.ObjectID{1, 2} {
		if err := db.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	w := func(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }
	r := adt.Op{Name: adt.PageRead}

	t1 := db.Begin()
	t2 := db.Begin()
	if _, err := t1.Do(1, w(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Do(2, w(2)); err != nil {
		t.Fatal(err)
	}

	blocked := make(chan error, 1)
	go func() {
		_, err := t1.Do(2, r)
		blocked <- err
	}()
	time.Sleep(10 * time.Millisecond)

	// t2 closes the cycle and is chosen as the victim.
	_, err := t2.Do(1, r)
	if !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("t2 read = %v, want ErrTxnAborted", err)
	}
	// t1's parked read is granted by t2's abort.
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("t1's read failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("t1's read never resumed")
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t1 commit: %v, %v", st, err)
	}
	// Operations on the dead handle keep failing fast.
	if _, err := t2.Do(1, r); !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("dead handle Do = %v", err)
	}
	if _, err := t2.Commit(); !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("dead handle Commit = %v", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatalf("dead handle Abort should be a no-op, got %v", err)
	}
}

// TestHandleAbort: user abort undoes effects.
func TestHandleAbort(t *testing.T) {
	db := newStackDB(t, core.Options{})
	t1 := db.Begin()
	if _, err := t1.Do(1, pushOp(5)); err != nil {
		t.Fatal(err)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	got, err := db.Scheduler().ObjectState(1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(adt.NewStackState()) {
		t.Fatalf("stack after abort = %v, want empty", got)
	}
}

// TestHandleHammer drives many goroutines through random operations to
// shake out races (run with -race).
func TestHandleHammer(t *testing.T) {
	db := core.NewDB(core.Options{})
	for i := 1; i <= 4; i++ {
		if err := db.Register(core.ObjectID(i), adt.Set{}, compat.SetTable()); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	const txnsPerWorker = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWorker; i++ {
				h := db.Begin()
				ok := true
				for k := 0; k < 4 && ok; k++ {
					obj := core.ObjectID(1 + (w+i+k)%4)
					var op adt.Op
					switch (w + i + k) % 3 {
					case 0:
						op = adt.Op{Name: adt.SetInsert, Arg: k, HasArg: true}
					case 1:
						op = adt.Op{Name: adt.SetMember, Arg: k, HasArg: true}
					default:
						op = adt.Op{Name: adt.SetDelete, Arg: k, HasArg: true}
					}
					if _, err := h.Do(obj, op); err != nil {
						if !errors.Is(err, core.ErrTxnAborted) {
							t.Errorf("Do: %v", err)
						}
						ok = false
					}
				}
				if ok {
					if _, err := h.Commit(); err != nil {
						t.Errorf("Commit: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// Everything terminated, so all logs must be empty: committed
	// state == materialised state.
	for i := 1; i <= 4; i++ {
		a, _ := db.Scheduler().ObjectState(core.ObjectID(i))
		b, _ := db.Scheduler().CommittedState(core.ObjectID(i))
		if !a.Equal(b) {
			t.Errorf("object %d: materialised %v != committed %v after drain", i, a, b)
		}
	}
}
