package core

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/depgraph"
	"repro/internal/telemetry"
)

// graphKeeper owns dependency-graph maintenance: edge insertion and
// cycle detection, with the protocol counters kept in lockstep. It is
// the third separable scheduler component beside objectStore and
// txnStore.
type graphKeeper struct {
	g     *depgraph.Graph
	stats *telemetry.CoreStats
}

func newGraphKeeper(stats *telemetry.CoreStats) graphKeeper {
	return graphKeeper{g: depgraph.New(), stats: stats}
}

// waitFor adds a wait-for edge from -> to.
func (gk graphKeeper) waitFor(from, to TxnID) {
	gk.g.AddEdge(from, to, depgraph.WaitFor)
	gk.stats.WaitForEdges.Inc()
}

// commitDep adds a commit-dependency edge from -> to.
func (gk graphKeeper) commitDep(from, to TxnID) {
	gk.g.AddEdge(from, to, depgraph.CommitDep)
	gk.stats.CommitDepEdges.Inc()
}

// cycleFrom runs counted cycle detection starting at t.
func (gk graphKeeper) cycleFrom(t TxnID) bool {
	gk.stats.CycleChecks.Inc()
	return gk.g.HasCycleFrom(t)
}

// schedScratch holds the scheduler's reusable buffers. Every holder
// list, affected-object list and queue snapshot the protocol's inner
// loops need lives here, grown once and reused, so a steady-state
// Request+Commit of a commuting operation performs zero heap
// allocations. All fields follow the same discipline: a consumer takes
// field[:0], appends, and stores the result back so the grown capacity
// survives.
type schedScratch struct {
	conflicts []TxnID // classifyAgainstLog conflict holders
	recovs    []TxnID // classifyAgainstLog recoverable holders
	fairWaits []TxnID // conflictsWithBlocked waiters

	affected []ObjectID // finalize's touched-object list

	// dependants holds one reusable buffer per finalize recursion
	// depth: a cascading commit at depth d iterates its dependant list
	// while deeper finalizes fill theirs.
	dependants [][]TxnID
	depth      int

	removed   []logEntry      // removeTxnIntentions' extracted entries
	undoLater []adt.UndoEntry // removeTxnUndo's suffix buffer

	retrySnap    []*request // retryObject's queue snapshot
	stillBlocked []*request // retryObject's fairness gate
}

// Scheduler is the semantics-based concurrency controller. It is safe
// for concurrent use; every public method runs under one mutex, so calls
// are serialised and deterministic given a call order. For parallelism
// beyond one scheduler, shard objects across several schedulers behind
// the Participant interface (see internal/dist).
type Scheduler struct {
	mu      sync.Mutex
	opts    Options
	store   objectStore
	txns    txnStore
	gk      graphKeeper
	nextSeq uint64
	stats   telemetry.CoreStats
	sc      schedScratch

	// pendingRetry holds objects whose blocked queues must be
	// rescanned before the current call returns.
	pendingRetry map[ObjectID]bool

	// reqFree pools retired blocked-path requests for reuse; reqGrave
	// parks requests retired during the current call until its end, so
	// a pooled request is never handed out while retryObject's queue
	// snapshot may still alias it (stale entries are recognised by
	// pointer identity).
	reqFree  []*request
	reqGrave []*request
}

// NewScheduler returns a scheduler with the given options.
func NewScheduler(opts Options) *Scheduler {
	s := &Scheduler{
		opts:         opts,
		store:        newObjectStore(opts.Recovery, opts.Predicate),
		txns:         newTxnStore(),
		pendingRetry: make(map[ObjectID]bool),
	}
	s.gk = newGraphKeeper(&s.stats)
	return s
}

// SetFactory installs a lazy object constructor: the first request
// against an unregistered object id calls it. The simulator uses this so
// a 1000-object database only materialises touched objects.
func (s *Scheduler) SetFactory(f func(ObjectID) (adt.Type, compat.Classifier)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.setFactory(f)
}

// Register creates the object eagerly with an explicit type and
// classifier. The classifier should be the plain (recoverability-aware)
// table even under PredCommutativity; the scheduler applies the
// predicate itself (composed once at registration, not per request).
func (s *Scheduler) Register(id ObjectID, typ adt.Type, class compat.Classifier) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.register(id, typ, class)
}

// ObjectState returns a snapshot (clone) of the object's materialised
// state, for inspection by examples and tests.
func (s *Scheduler) ObjectState(id ObjectID) (adt.State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.store.get(id)
	if !ok {
		return nil, ErrUnknownObject
	}
	return o.cur.Clone(), nil
}

// CommittedState returns a snapshot of the object's committed (base)
// state under intentions-list recovery; under undo-log recovery it
// returns the materialised state (there is no separate base).
func (s *Scheduler) CommittedState(id ObjectID) (adt.State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.store.get(id)
	if !ok {
		return nil, ErrUnknownObject
	}
	if s.opts.Recovery == RecoveryIntentions {
		return o.base.Clone(), nil
	}
	return o.cur.Clone(), nil
}

// Begin registers a new transaction.
func (s *Scheduler) Begin(id TxnID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.txns.begin(id); err != nil {
		return err
	}
	s.gk.g.AddNode(id)
	return nil
}

// Request asks to execute op on obj for transaction id, implementing
// Figure 2 of the paper. The Decision reports the immediate outcome;
// Effects reports anything that happened downstream (an abort of the
// requester can unblock other transactions and cascade commits).
func (s *Scheduler) Request(id TxnID, obj ObjectID, op adt.Op) (Decision, Effects, error) {
	var eff Effects
	s.mu.Lock()
	defer s.mu.Unlock()
	dec, err := s.requestLocked(&eff, id, obj, op)
	s.drainRetired()
	return dec, eff, err
}

// RequestInto is Request appending its effects into a caller-owned,
// reusable buffer (reset on entry): the delivery layer passes one
// Effects per lock domain, so the steady-state conversation between a
// blocking front end and the scheduler allocates nothing.
func (s *Scheduler) RequestInto(eff *Effects, id TxnID, obj ObjectID, op adt.Op) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	eff.Reset()
	dec, err := s.requestLocked(eff, id, obj, op)
	s.drainRetired()
	return dec, err
}

func (s *Scheduler) requestLocked(eff *Effects, id TxnID, obj ObjectID, op adt.Op) (Decision, error) {
	t, err := s.txns.lookup(id)
	if err != nil {
		return Decision{}, err
	}
	switch t.state {
	case stActive:
	case stBlocked:
		return Decision{}, ErrTxnBlocked
	case stPseudo:
		return Decision{}, ErrPseudoRequest
	default:
		return Decision{}, ErrTxnTerminated
	}
	o, err := s.store.lookup(obj)
	if err != nil {
		return Decision{}, err
	}

	dec, err := s.tryExecute(t, o, op, false, eff)
	if err != nil {
		return Decision{}, err
	}
	if err := s.settle(eff); err != nil {
		return Decision{}, err
	}
	s.assertInvariants()
	return dec, nil
}

// tryExecute runs the Figure-2 decision procedure for one request. When
// retry is true the request is a blocked-queue retry: the fair-admission
// test against *earlier* blocked requests is handled by the caller.
func (s *Scheduler) tryExecute(t *txn, o *object, op adt.Op, retry bool, eff *Effects) (Decision, error) {
	// Fair scheduling: an incoming request that does not commute with
	// a blocked request waits behind it, even if it is compatible
	// with every executed operation (§5.2).
	fairWaits := s.sc.fairWaits[:0]
	if !s.opts.Unfair && !retry {
		fairWaits = o.conflictsWithBlocked(t.id, op, fairWaits)
	}

	conflicts, recovs := o.classifyAgainstLog(t.id, op, s.sc.conflicts, s.sc.recovs)

	// State-dependent refinement (§3.2): a statically conflicting
	// request whose return value is invariant on the live object is
	// demoted to recoverable — commit dependencies instead of
	// blocking. Only consulted when the static tables said conflict,
	// so the common paths pay nothing.
	if len(conflicts) > 0 && s.opts.StateDependent && s.opts.Recovery == RecoveryIntentions &&
		o.stateRecoverable(t.id, op) {
		recovs = mergeTxnLists(recovs, conflicts)
		conflicts = conflicts[:0]
	}

	// Store the (possibly grown) buffers back before any nested
	// finalize runs; the locals keep aliasing them safely because the
	// nested paths only touch the other scratch fields.
	s.sc.fairWaits, s.sc.conflicts, s.sc.recovs = fairWaits, conflicts, recovs

	if len(conflicts) > 0 || len(fairWaits) > 0 {
		// Step 1 of Figure 2: wait-for edges to every holder of a
		// non-recoverable operation (and, under fair scheduling,
		// to the blocked requesters ahead of us), then deadlock
		// detection.
		for _, h := range conflicts {
			s.gk.waitFor(t.id, h)
		}
		for _, h := range fairWaits {
			s.gk.waitFor(t.id, h)
		}
		if s.gk.cycleFrom(t.id) {
			s.stats.DeadlockAborts.Inc()
			if err := s.finalize(t, false, ReasonDeadlock, eff); err != nil {
				return Decision{}, err
			}
			return Decision{Outcome: Aborted, Reason: ReasonDeadlock}, nil
		}
		t.state = stBlocked
		t.blocked = s.newRequest(t.id, o.id, op, o.opID(op))
		if !retry {
			o.blocked = append(o.blocked, t.blocked)
			// A retried request that stays blocked never resumed
			// running, so it is not a fresh block for the paper's
			// blocking-ratio metric (the deadlock check above still
			// counted).
			s.stats.Blocks.Inc()
			if r := s.opts.Recorder; r != nil {
				r.Blocked(t.id, o.id, op)
			}
		}
		return Decision{Outcome: Blocked}, nil
	}

	if len(recovs) > 0 {
		// Step 3: commit-dependency edges to every holder the
		// operation is recoverable (but not commuting) with, then
		// cycle detection (serializability guard).
		for _, h := range recovs {
			s.gk.commitDep(t.id, h)
		}
		if s.gk.cycleFrom(t.id) {
			s.stats.CycleAborts.Inc()
			if err := s.finalize(t, false, ReasonCommitCycle, eff); err != nil {
				return Decision{}, err
			}
			return Decision{Outcome: Aborted, Reason: ReasonCommitCycle}, nil
		}
	}

	// Step 2/3: execute.
	s.nextSeq++
	ret, err := o.execute(t.id, op, s.nextSeq, s.opts.Recovery)
	if err != nil {
		return Decision{}, err
	}
	t.visited[o.id] = struct{}{}
	t.nops++
	s.stats.Executes.Inc()
	if r := s.opts.Recorder; r != nil {
		r.Executed(t.id, o.id, op, ret, s.nextSeq)
	}
	return Decision{Outcome: Executed, Ret: ret}, nil
}

// Commit finishes transaction id. If it has outstanding commit
// dependencies it pseudo-commits (§4.3); otherwise it commits for real,
// which may unblock waiters and cascade commits of its dependants.
func (s *Scheduler) Commit(id TxnID) (CommitStatus, Effects, error) {
	var eff Effects
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.commitLocked(&eff, id)
	s.drainRetired()
	return st, eff, err
}

// CommitInto is Commit appending into a caller-owned, reusable Effects
// buffer (reset on entry).
func (s *Scheduler) CommitInto(eff *Effects, id TxnID) (CommitStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	eff.Reset()
	st, err := s.commitLocked(eff, id)
	s.drainRetired()
	return st, err
}

func (s *Scheduler) commitLocked(eff *Effects, id TxnID) (CommitStatus, error) {
	t, err := s.txns.lookup(id)
	if err != nil {
		return 0, err
	}
	switch t.state {
	case stActive:
	case stBlocked:
		return 0, ErrTxnBlocked
	case stPseudo:
		return PseudoCommitted, nil
	default:
		return 0, ErrTxnTerminated
	}

	if s.gk.g.OutDegree(id) > 0 {
		t.state = stPseudo
		s.stats.PseudoCommits.Inc()
		if r := s.opts.Recorder; r != nil {
			r.PseudoCommitted(id)
		}
		s.assertInvariants()
		return PseudoCommitted, nil
	}

	if err := s.finalize(t, true, ReasonNone, eff); err != nil {
		return 0, err
	}
	if err := s.settle(eff); err != nil {
		return 0, err
	}
	s.assertInvariants()
	return Committed, nil
}

// CommitHold is the distributed variant of Commit (phase one of the
// §6 commit conversation): the transaction pseudo-commits even if it
// has no local dependencies, its operations stay in the logs, and it is
// excluded from the automatic cascade — only Release (or, for the whole
// cluster, the coordinator) finalises it. It returns the transaction's
// current out-degree so the coordinator can decide whether the global
// dependency set is empty.
func (s *Scheduler) CommitHold(id TxnID) (int, Effects, error) {
	var eff Effects
	s.mu.Lock()
	defer s.mu.Unlock()
	deg, err := s.commitHoldLocked(id)
	return deg, eff, err
}

// CommitHoldInto is CommitHold with the caller-owned Effects convention
// of the other *Into variants (a hold has no downstream effects today,
// but the distributed layer treats every participant call uniformly).
func (s *Scheduler) CommitHoldInto(eff *Effects, id TxnID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	eff.Reset()
	return s.commitHoldLocked(id)
}

func (s *Scheduler) commitHoldLocked(id TxnID) (int, error) {
	t, err := s.txns.lookup(id)
	if err != nil {
		return 0, err
	}
	switch t.state {
	case stActive:
	case stBlocked:
		return 0, ErrTxnBlocked
	case stPseudo:
		return s.gk.g.OutDegree(id), nil
	default:
		return 0, ErrTxnTerminated
	}
	t.state = stPseudo
	t.held = true
	s.stats.PseudoCommits.Inc()
	if r := s.opts.Recorder; r != nil {
		r.PseudoCommitted(id)
	}
	s.assertInvariants()
	return s.gk.g.OutDegree(id), nil
}

// Release really commits a held, pseudo-committed transaction. The
// caller (the distributed coordinator) must have established that the
// transaction's global dependency set is empty; locally that means an
// out-degree of zero, which Release enforces.
func (s *Scheduler) Release(id TxnID) (Effects, error) {
	var eff Effects
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.releaseLocked(&eff, id)
	s.drainRetired()
	return eff, err
}

// ReleaseInto is Release appending into a caller-owned, reusable
// Effects buffer (reset on entry).
func (s *Scheduler) ReleaseInto(eff *Effects, id TxnID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	eff.Reset()
	err := s.releaseLocked(eff, id)
	s.drainRetired()
	return err
}

func (s *Scheduler) releaseLocked(eff *Effects, id TxnID) error {
	t, err := s.txns.lookup(id)
	if err != nil {
		return err
	}
	if t.state != stPseudo || !t.held {
		return fmt.Errorf("core: Release: T%d is %s, not a held pseudo-committed transaction", id, t.state)
	}
	if d := s.gk.g.OutDegree(id); d != 0 {
		return fmt.Errorf("core: Release: T%d still has %d outstanding dependencies", id, d)
	}
	if err := s.finalize(t, true, ReasonNone, eff); err != nil {
		return err
	}
	if err := s.settle(eff); err != nil {
		return err
	}
	s.assertInvariants()
	return nil
}

// Abort aborts transaction id at the caller's request.
func (s *Scheduler) Abort(id TxnID) (Effects, error) {
	var eff Effects
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.abortLocked(&eff, id)
	s.drainRetired()
	return eff, err
}

// AbortInto is Abort appending into a caller-owned, reusable Effects
// buffer (reset on entry).
func (s *Scheduler) AbortInto(eff *Effects, id TxnID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	eff.Reset()
	err := s.abortLocked(eff, id)
	s.drainRetired()
	return err
}

func (s *Scheduler) abortLocked(eff *Effects, id TxnID) error {
	t, err := s.txns.lookup(id)
	if err != nil {
		return err
	}
	switch t.state {
	case stActive, stBlocked:
	case stPseudo:
		// "A transaction which has pseudo-committed will definitely
		// commit" — user aborts are refused.
		return fmt.Errorf("%w: pseudo-committed transactions cannot abort", ErrTxnTerminated)
	default:
		return ErrTxnTerminated
	}

	if err := s.finalize(t, false, ReasonUser, eff); err != nil {
		return err
	}
	if err := s.settle(eff); err != nil {
		return err
	}
	s.assertInvariants()
	return nil
}

// RevokeInto aborts a held, pseudo-committed transaction — the one
// abort the protocol otherwise forbids. Pseudo-commit is a promise to
// commit, but in the crash-stop fault model the promise is conditional
// on every participant surviving to the commit point: when a site
// crashes while holding a transaction's uncommitted operations, the
// coordinator revokes the hold at the surviving sites (presumed abort
// — the outcome was never logged). The transaction's operations are
// undone exactly as in a normal abort; dependants with commit
// dependencies on it may still commit (recoverability means aborts do
// not cascade), and anything blocked behind it is retried.
func (s *Scheduler) RevokeInto(eff *Effects, id TxnID, reason AbortReason) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	eff.Reset()
	err := s.revokeLocked(eff, id, reason)
	s.drainRetired()
	return err
}

func (s *Scheduler) revokeLocked(eff *Effects, id TxnID, reason AbortReason) error {
	t, err := s.txns.lookup(id)
	if err != nil {
		return err
	}
	if t.state != stPseudo || !t.held {
		return fmt.Errorf("core: Revoke: T%d is %s, not a held pseudo-committed transaction", id, t.state)
	}
	// Re-arm finalize's abort path: the held pseudo-commit is being
	// taken back, so the transaction is treated as active again for the
	// duration of the undo.
	t.state = stActive
	t.held = false
	if err := s.finalize(t, false, reason, eff); err != nil {
		return err
	}
	if err := s.settle(eff); err != nil {
		return err
	}
	s.assertInvariants()
	return nil
}

// Withdraw abandons transaction id's blocked request: the request is
// dequeued, its wait-for edges are shed, and the transaction returns to
// the active state with its executed operations intact — the
// cancellation path of a context-aware Do. Requests parked behind the
// withdrawn one are retried before the call returns (the same rescan a
// terminating transaction triggers), so a withdrawal can never strand a
// fairness-gated follower.
func (s *Scheduler) Withdraw(id TxnID) (Effects, error) {
	var eff Effects
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.withdrawLocked(&eff, id)
	s.drainRetired()
	return eff, err
}

// WithdrawInto is Withdraw appending into a caller-owned, reusable
// Effects buffer (reset on entry).
func (s *Scheduler) WithdrawInto(eff *Effects, id TxnID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	eff.Reset()
	err := s.withdrawLocked(eff, id)
	s.drainRetired()
	return err
}

func (s *Scheduler) withdrawLocked(eff *Effects, id TxnID) error {
	t, err := s.txns.lookup(id)
	if err != nil {
		return err
	}
	if t.state != stBlocked || t.blocked == nil {
		return ErrNotBlocked
	}
	r := t.blocked
	if o, ok := s.store.get(r.obj); ok {
		o.dequeueBlocked(t.id)
		// Followers fairness-gated behind the withdrawn request must be
		// rescanned, exactly as when a blocked requester terminates.
		s.pendingRetry[o.id] = true
	}
	t.blocked = nil
	s.retireRequest(r)
	s.gk.g.RemoveWaitEdges(t.id)
	t.state = stActive
	s.stats.Withdrawals.Inc()
	if err := s.settle(eff); err != nil {
		return err
	}
	s.assertInvariants()
	return nil
}

// finalize terminates t: it removes the transaction's operations from
// every object it visited (folding or undoing per the recovery
// strategy), removes its node from the dependency graph, really commits
// any pseudo-committed dependants whose out-degree dropped to zero, and
// schedules blocked-queue retries on the affected objects.
func (s *Scheduler) finalize(t *txn, commit bool, reason AbortReason, eff *Effects) error {
	if t.state == stPseudo && !commit {
		return fmt.Errorf("core: internal: pseudo-committed T%d selected for abort", t.id)
	}
	if t.blocked != nil {
		if o, ok := s.store.get(t.blocked.obj); ok {
			o.dequeueBlocked(t.id)
			// Removing a blocked request can unblock later queue
			// members that were fairness-gated behind it, even when
			// the terminating transaction had no log entries on the
			// object — without a rescan they would wait forever.
			s.pendingRetry[o.id] = true
		}
		s.retireRequest(t.blocked)
		t.blocked = nil
	}

	// The affected-object pass completes before the cascade below, so
	// one shared buffer serves every recursion depth.
	affected := s.sc.affected[:0]
	for oid := range t.visited {
		affected = append(affected, oid)
	}
	slices.Sort(affected)
	s.sc.affected = affected
	for _, oid := range affected {
		o, _ := s.store.get(oid)
		if err := o.removeTxn(t.id, commit, s.opts.Recovery, s.opts.Debug, &s.sc); err != nil {
			return err
		}
		s.pendingRetry[oid] = true
	}

	if commit {
		t.state = stCommitted
		s.stats.Commits.Inc()
		if r := s.opts.Recorder; r != nil {
			r.Committed(t.id)
		}
	} else {
		t.state = stAborted
		s.stats.Aborts.Inc()
		if r := s.opts.Recorder; r != nil {
			r.Aborted(t.id, reason)
		}
	}

	// Each recursion depth owns one reusable dependants buffer: the
	// list is iterated while deeper cascades fill theirs.
	depth := s.sc.depth
	if depth == len(s.sc.dependants) {
		s.sc.dependants = append(s.sc.dependants, nil)
	}
	dependants := s.gk.g.RemoveNodeInto(t.id, s.sc.dependants[depth][:0])
	s.sc.dependants[depth] = dependants
	s.sc.depth++
	for _, d := range dependants {
		dt, ok := s.txns.get(d)
		if !ok {
			continue
		}
		if dt.state == stPseudo && !dt.held && s.gk.g.OutDegree(d) == 0 {
			// Record before recursing so Effects.Committed lists
			// cascaded commits in the order they happen.
			eff.Committed = append(eff.Committed, d)
			if err := s.finalize(dt, true, ReasonNone, eff); err != nil {
				s.sc.depth--
				return err
			}
		}
	}
	s.sc.depth--
	return nil
}

// settle drains the pending-retry set: for each affected object it
// rescans the blocked queue in FIFO order, granting requests that can
// now run. A retry can itself abort a blocked transaction (new cycle),
// which re-triggers finalization and more retries; settle loops to a
// fixpoint. Objects are processed in ascending id order for
// determinism.
func (s *Scheduler) settle(eff *Effects) error {
	for len(s.pendingRetry) > 0 {
		oid := minObject(s.pendingRetry)
		delete(s.pendingRetry, oid)
		o, _ := s.store.get(oid)
		if err := s.retryObject(o, eff); err != nil {
			return err
		}
	}
	return nil
}

// mergeTxnLists appends the members of extra not already in base,
// preserving order. Both lists are short holder lists, so the linear
// scan replaces the map the old version allocated.
func mergeTxnLists(base, extra []TxnID) []TxnID {
	for _, t := range extra {
		base = appendUniqueTxn(base, t)
	}
	return base
}

func minObject(m map[ObjectID]bool) ObjectID {
	first := true
	var min ObjectID
	for k := range m {
		if first || k < min {
			min, first = k, false
		}
	}
	return min
}

// retryObject rescans one object's blocked queue in order. Under fair
// scheduling a request stays blocked if it does not commute with an
// earlier request that is itself still blocked. If a retry aborts the
// blocked transaction, the queue has changed under us: the object is
// re-queued for another pass and the scan restarts via settle.
func (s *Scheduler) retryObject(o *object, eff *Effects) error {
	queue := append(s.sc.retrySnap[:0], o.blocked...)
	stillBlocked := s.sc.stillBlocked[:0]
	defer func() {
		s.sc.retrySnap = clearRequests(queue)
		s.sc.stillBlocked = clearRequests(stillBlocked)
	}()

scan:
	for _, r := range queue {
		t, ok := s.txns.get(r.txn)
		if !ok || t.state != stBlocked || t.blocked != r {
			continue // stale entry
		}
		if !s.opts.Unfair {
			for _, earlier := range stillBlocked {
				if o.classify(r.opid, r.op, earlier.opid, earlier.op) != compat.Commutes {
					stillBlocked = append(stillBlocked, r)
					continue scan
				}
			}
		}

		// A retry is a fresh request: shed the old wait-for edges,
		// re-classify, and either execute, re-block (fresh edges,
		// fresh deadlock check) or abort on a new cycle.
		s.gk.g.RemoveWaitEdges(r.txn)
		t.state = stActive
		t.blocked = nil
		o.dequeueBlocked(r.txn)
		// Retire r now: if the retry re-blocks, tryExecute parks a
		// fresh request (the graveyard keeps r's pointer unique until
		// this call's queue snapshots are gone).
		s.retireRequest(r)

		dec, err := s.tryExecute(t, o, r.op, true, eff)
		if err != nil {
			return err
		}
		switch dec.Outcome {
		case Executed:
			s.stats.Grants.Inc()
			eff.Grants = append(eff.Grants, Grant{Txn: r.txn, Object: o.id, Op: r.op, Ret: dec.Ret})
		case Blocked:
			// Re-insert at the front of the remaining queue
			// positions — i.e. keep FIFO order. tryExecute set
			// t.blocked; put it back in the queue where it was.
			o.blocked = append(o.blocked, nil)
			copy(o.blocked[len(stillBlocked)+1:], o.blocked[len(stillBlocked):])
			o.blocked[len(stillBlocked)] = t.blocked
			stillBlocked = append(stillBlocked, t.blocked)
		case Aborted:
			eff.RetryAborts = append(eff.RetryAborts, RetryAbort{Txn: r.txn, Reason: dec.Reason})
			// finalize (inside tryExecute) re-queued affected
			// objects, possibly including this one; restart the
			// scan from settle's loop.
			s.pendingRetry[o.id] = true
			return nil
		}
	}
	return nil
}

// clearRequests nils out the buffer's pointers so retired requests can
// be collected, and returns it for reuse.
func clearRequests(buf []*request) []*request {
	for i := range buf {
		buf[i] = nil
	}
	return buf[:0]
}

// newRequest takes a pooled request or allocates one. Only the free
// list is consulted — requests retired during the current call sit in
// the graveyard so their pointers stay unique while retryObject's queue
// snapshots may alias them.
func (s *Scheduler) newRequest(txn TxnID, obj ObjectID, op adt.Op, opid adt.OpID) *request {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree[n-1] = nil
		s.reqFree = s.reqFree[:n-1]
		*r = request{txn: txn, obj: obj, op: op, opid: opid}
		return r
	}
	return &request{txn: txn, obj: obj, op: op, opid: opid}
}

// retireRequest parks a request that left every queue in the graveyard;
// drainRetired recycles it once the call's snapshots are gone.
func (s *Scheduler) retireRequest(r *request) {
	s.reqGrave = append(s.reqGrave, r)
}

// drainRetired moves graveyard requests to the free list. Called at the
// end of every public mutating call, when no retry-scan snapshot can
// alias them any longer.
func (s *Scheduler) drainRetired() {
	for i, r := range s.reqGrave {
		*r = request{} // drop the op payload so the pool pins nothing
		s.reqFree = append(s.reqFree, r)
		s.reqGrave[i] = nil
	}
	s.reqGrave = s.reqGrave[:0]
}

// assertInvariants runs debug-only global checks.
func (s *Scheduler) assertInvariants() {
	if !s.opts.Debug {
		return
	}
	if !s.gk.g.Acyclic() {
		panic("core: dependency graph became cyclic")
	}
	for _, o := range s.store.objects {
		if s.opts.Recovery == RecoveryIntentions {
			if err := o.checkReplayMatchesCur(); err != nil {
				panic(err)
			}
		}
	}
}

// StatsSnapshot returns a copy of the cumulative counters. CycleChecks
// reflects the scheduler's own count (block-time deadlock checks plus
// recoverable-execution checks). The snapshot is built from the live
// telemetry counters — the one source of truth — under the scheduler
// mutex, so it is exact and the returned struct stays plainly
// comparable.
func (s *Scheduler) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &s.stats
	return Stats{
		Executes:       c.Executes.Load(),
		Blocks:         c.Blocks.Load(),
		Grants:         c.Grants.Load(),
		Aborts:         c.Aborts.Load(),
		DeadlockAborts: c.DeadlockAborts.Load(),
		CycleAborts:    c.CycleAborts.Load(),
		Withdrawals:    c.Withdrawals.Load(),
		Commits:        c.Commits.Load(),
		PseudoCommits:  c.PseudoCommits.Load(),
		CycleChecks:    c.CycleChecks.Load(),
		CommitDepEdges: c.CommitDepEdges.Load(),
		WaitForEdges:   c.WaitForEdges.Load(),
	}
}

// Telemetry exposes the scheduler's live counter block for lock-free
// reads (/metrics scrapes read it without taking the scheduler
// mutex; increments still happen under the mutex, so per-counter
// values are exact).
func (s *Scheduler) Telemetry() *telemetry.CoreStats {
	return &s.stats
}

// BlockedDepth counts transactions currently parked on a blocked
// request — the instantaneous queue depth, as opposed to the
// cumulative Blocks counter.
func (s *Scheduler) BlockedDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.txns.m {
		if t.state == stBlocked {
			n++
		}
	}
	return n
}

// TxnOps returns how many operations the transaction has executed (used
// for the paper's abort-length metric).
func (s *Scheduler) TxnOps(id TxnID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.txns.get(id); ok {
		return t.nops
	}
	return 0
}

// TxnState returns a human-readable state for tests and tools.
func (s *Scheduler) TxnState(id TxnID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.txns.get(id); ok {
		return t.state.String()
	}
	return "unknown"
}

// Forget drops a terminated transaction's bookkeeping. Long-running
// users (the simulator) call it to keep the txn map bounded.
func (s *Scheduler) Forget(id TxnID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.txns.forget(id)
}

// OutDegree exposes the transaction's dependency-graph out-degree (for
// tests and examples).
func (s *Scheduler) OutDegree(id TxnID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gk.g.OutDegree(id)
}

// OutEdgesOf returns the transaction's current outgoing dependency
// edges at this scheduler (wait-for and commit-dependency). The
// distributed layer piggybacks these on its coordination calls to
// maintain the global dependency graph (§6 of the paper).
func (s *Scheduler) OutEdgesOf(id TxnID) []depgraph.Edge {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gk.g.OutEdges(id)
}

// ObjectSnapshot is one object's committed state, as exported by
// ExportCommitted — what a site's durable storage holds in the
// crash-stop fault model.
type ObjectSnapshot struct {
	ID    ObjectID
	State adt.State // a clone; the caller owns it
}

// ExportCommitted clones every materialised object's committed state:
// the base state under intentions-list recovery, where uncommitted
// operations live only in the (volatile) intentions log. The fault
// layer uses this as the site's simulated disk image — capturing it at
// crash time is equivalent to having forced each base state at commit
// time, because commits are the only writes to the base. It is not
// meaningful under undo-log recovery (uncommitted effects are folded
// into the materialised state), which the fault layer rejects.
func (s *Scheduler) ExportCommitted() []ObjectSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snaps := make([]ObjectSnapshot, 0, len(s.store.objects))
	for id, o := range s.store.objects {
		st := o.cur
		if s.opts.Recovery == RecoveryIntentions {
			st = o.base
		}
		snaps = append(snaps, ObjectSnapshot{ID: id, State: st.Clone()})
	}
	return snaps
}

// RegisterSeeded is Register with an explicit initial committed state
// (cloned): the recovery path of the fault layer re-creates a restarted
// site's objects from their durable snapshots.
func (s *Scheduler) RegisterSeeded(id ObjectID, typ adt.Type, class compat.Classifier, st adt.State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.registerSeeded(id, typ, class, st)
}

// OutEdgesAppend is OutEdgesOf with a caller-provided scratch buffer:
// edges are appended to buf[:0]. The distributed layer reuses one
// buffer per site so the per-coordination-call export allocates
// nothing.
func (s *Scheduler) OutEdgesAppend(id TxnID, buf []depgraph.Edge) []depgraph.Edge {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gk.g.OutEdgesAppend(id, buf)
}
