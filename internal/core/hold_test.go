package core

import (
	"strings"
	"testing"
)

// TestCommitHoldBasics: a held transaction with no dependencies stays
// pseudo-committed (it is not auto-cascaded) until Release finalises
// it.
func TestCommitHoldBasics(t *testing.T) {
	s := newStackSched(t, Options{})
	mustBegin(t, s, 1)
	mustExec(t, s, 1, 1, push(5))

	deps, eff, err := s.CommitHold(1)
	if err != nil || deps != 0 || !eff.Empty() {
		t.Fatalf("CommitHold = %d, %+v, %v", deps, eff, err)
	}
	if st := s.TxnState(1); st != "pseudo-committed" {
		t.Fatalf("state = %s", st)
	}
	// Idempotent while pseudo.
	if deps, _, err := s.CommitHold(1); err != nil || deps != 0 {
		t.Fatalf("second CommitHold = %d, %v", deps, err)
	}
	// The held transaction's operations still gate others.
	mustBegin(t, s, 2)
	if dec, _, _ := s.Request(2, 1, pop()); dec.Outcome != Blocked {
		t.Fatal("pop should block behind the held push")
	}

	eff, err = s.Release(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Grants) != 1 || eff.Grants[0].Txn != 2 {
		t.Fatalf("release grants = %+v", eff.Grants)
	}
	if st := s.TxnState(1); st != "committed" {
		t.Fatalf("state after release = %s", st)
	}
}

// TestCommitHoldReportsDeps: the returned out-degree is the local
// dependency count the distributed coordinator sums.
func TestCommitHoldReportsDeps(t *testing.T) {
	s := newStackSched(t, Options{})
	mustBegin(t, s, 1, 2)
	mustExec(t, s, 1, 1, push(1))
	mustExec(t, s, 2, 1, push(2)) // dep T2 -> T1

	deps, _, err := s.CommitHold(2)
	if err != nil || deps != 1 {
		t.Fatalf("CommitHold(2) = %d, %v, want 1 dependency", deps, err)
	}
	// Release is refused while dependencies remain.
	if _, err := s.Release(2); err == nil || !strings.Contains(err.Error(), "outstanding") {
		t.Fatalf("Release with deps = %v", err)
	}
	// T1 terminates; the held T2 must NOT auto-commit (that is the
	// whole point of holding).
	if _, eff, err := s.Commit(1); err != nil || len(eff.Committed) != 0 {
		t.Fatalf("T1 commit effects = %+v, %v — held T2 must not cascade", eff, err)
	}
	if st := s.TxnState(2); st != "pseudo-committed" {
		t.Fatalf("T2 = %s, want still pseudo-committed (held)", st)
	}
	if _, err := s.Release(2); err != nil {
		t.Fatal(err)
	}
	if st := s.TxnState(2); st != "committed" {
		t.Fatalf("T2 = %s", st)
	}
}

// TestCommitHoldErrors covers the error surface.
func TestCommitHoldErrors(t *testing.T) {
	s := newStackSched(t, Options{})
	if _, _, err := s.CommitHold(9); err == nil {
		t.Error("unknown txn accepted")
	}
	if _, err := s.Release(9); err == nil {
		t.Error("release of unknown txn accepted")
	}
	mustBegin(t, s, 1, 2)
	// Release of a plain active transaction is refused.
	if _, err := s.Release(1); err == nil {
		t.Error("release of an active transaction accepted")
	}
	// Blocked transactions cannot hold.
	mustExec(t, s, 1, 1, push(1))
	if dec, _, _ := s.Request(2, 1, pop()); dec.Outcome != Blocked {
		t.Fatal("setup")
	}
	if _, _, err := s.CommitHold(2); err != ErrTxnBlocked {
		t.Errorf("CommitHold while blocked = %v", err)
	}
	// Terminated transactions cannot hold or release.
	if _, err := s.Abort(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CommitHold(1); err != ErrTxnTerminated {
		t.Errorf("CommitHold after abort = %v", err)
	}
	// A Release on a non-held pseudo-committed transaction is refused.
	s2 := newStackSched(t, Options{})
	mustBegin(t, s2, 1, 2)
	mustExec(t, s2, 1, 1, push(1))
	mustExec(t, s2, 2, 1, push(2))
	if st, _, _ := s2.Commit(2); st != PseudoCommitted {
		t.Fatal("setup")
	}
	if _, err := s2.Release(2); err == nil || !strings.Contains(err.Error(), "held") {
		t.Errorf("Release of unheld pseudo = %v", err)
	}
}
