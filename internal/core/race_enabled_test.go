//go:build race

package core

// raceEnabled reports that the race detector is active; allocation
// regression tests skip, since instrumentation allocates.
const raceEnabled = true
