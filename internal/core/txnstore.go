package core

// txn is the scheduler's bookkeeping for one transaction.
type txn struct {
	id      TxnID
	state   txnState
	visited map[ObjectID]struct{} // objects with log entries of this txn
	blocked *request              // outstanding blocked request, if any
	nops    int                   // operations executed so far
	// held marks a pseudo-committed transaction whose real commit is
	// controlled by an external coordinator (distributed commit): it
	// is excluded from the automatic out-degree-zero cascade and
	// finalised only by Release.
	held bool
}

// txnStore owns the transaction table. Like objectStore it is a
// lock-free component; the owning scheduler serialises access.
// Forgotten transactions are pooled and reused so a steady-state
// begin/terminate/forget cycle allocates nothing.
type txnStore struct {
	m    map[TxnID]*txn
	free []*txn
}

func newTxnStore() txnStore {
	return txnStore{m: make(map[TxnID]*txn)}
}

// begin registers a fresh transaction.
func (ts *txnStore) begin(id TxnID) (*txn, error) {
	if _, ok := ts.m[id]; ok {
		return nil, ErrDuplicateTxn
	}
	var t *txn
	if n := len(ts.free); n > 0 {
		t = ts.free[n-1]
		ts.free[n-1] = nil
		ts.free = ts.free[:n-1]
		visited := t.visited
		clear(visited)
		*t = txn{id: id, state: stActive, visited: visited}
	} else {
		t = &txn{id: id, state: stActive, visited: make(map[ObjectID]struct{})}
	}
	ts.m[id] = t
	return t, nil
}

// lookup returns the transaction or ErrUnknownTxn.
func (ts *txnStore) lookup(id TxnID) (*txn, error) {
	t, ok := ts.m[id]
	if !ok {
		return nil, ErrUnknownTxn
	}
	return t, nil
}

// get returns the transaction without an error wrapper.
func (ts *txnStore) get(id TxnID) (*txn, bool) {
	t, ok := ts.m[id]
	return t, ok
}

// forget drops a terminated transaction's bookkeeping and recycles the
// record.
func (ts *txnStore) forget(id TxnID) {
	if t, ok := ts.m[id]; ok && (t.state == stCommitted || t.state == stAborted) {
		delete(ts.m, id)
		t.blocked = nil
		ts.free = append(ts.free, t)
	}
}
