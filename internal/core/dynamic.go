package core

import (
	"repro/internal/adt"
)

// This file implements the state-dependent refinement §3.2 discusses
// and deliberately leaves out of the paper's protocol: "two pop
// operations commute if the top two elements of the stack they are
// operating on are the same", and a third concurrent pop needs the top
// three equal, and so on. Rather than hand-writing such rules per type,
// the scheduler checks the *defining property* directly on the live
// object: a requested operation that statically conflicts is admitted
// as state-recoverable iff its return value is invariant under every
// subset of the other uncommitted transactions aborting (Definition 3
// applied to the current log). The price is exactly the complexity the
// paper warns about — up to 2^t replays for t uncommitted transactions
// — so t is capped and larger logs fall back to blocking.

// maxDynamicTxns caps the subset enumeration; beyond this the request
// blocks as it would have without the refinement.
const maxDynamicTxns = 6

// stateRecoverable reports whether op's return value on this object is
// unchanged no matter which subset of the other uncommitted
// transactions later aborts. It needs the committed base state, so it
// is only available under intentions-list recovery.
func (o *object) stateRecoverable(requester TxnID, op adt.Op) bool {
	if o.base == nil {
		return false
	}
	// Distinct other transactions in the log, in first-appearance
	// order.
	var others []TxnID
	seen := map[TxnID]bool{}
	for _, e := range o.log {
		if e.txn != requester && !seen[e.txn] {
			seen[e.txn] = true
			others = append(others, e.txn)
		}
	}
	if len(others) > maxDynamicTxns {
		return false
	}

	first := true
	var want adt.Ret
	for mask := 0; mask < 1<<len(others); mask++ {
		keep := map[TxnID]bool{requester: true}
		for i, t := range others {
			if mask&(1<<i) != 0 {
				keep[t] = true
			}
		}
		s := o.base.Clone()
		ok := true
		for _, e := range o.log {
			if !keep[e.txn] {
				continue
			}
			if _, err := o.typ.Apply(s, e.op); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			return false
		}
		got, err := o.typ.Apply(s, op)
		if err != nil {
			return false
		}
		if first {
			want, first = got, false
		} else if got != want {
			return false
		}
	}
	return true
}
