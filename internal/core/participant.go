package core

import (
	"repro/internal/adt"
	"repro/internal/depgraph"
)

// Participant is the per-site face of the protocol: everything the §6
// distributed layer needs from a local scheduler, and nothing more. A
// cluster coordinator drives one Participant per site; the local
// single-site path and the distributed path share this abstraction, so
// a site can be an in-process Scheduler today and a network stub
// tomorrow without the coordinator changing.
//
// The method set corresponds to the paper's per-site operations:
// Begin/RequestInto ("do"), CommitInto (single-site commit),
// CommitHoldInto (pseudo-commit-and-hold, phase one of the distributed
// commit conversation), ReleaseInto (the real commit, once the
// coordinator has established that the global dependency set is empty),
// AbortInto, WithdrawInto (a context-cancelled waiter abandoning its
// blocked request), and OutEdgesAppend — the dependency-event export
// the coordinator mirrors into its union graph to detect cross-site
// deadlock and commit-dependency cycles no single site can see.
//
// Every mutating call follows the *Into convention: downstream effects
// are appended into a caller-owned Effects buffer (reset on entry), so
// a coordinator that reuses one buffer per site allocates nothing per
// conversation round.
type Participant interface {
	// Begin registers a new transaction at this participant.
	Begin(id TxnID) error
	// RequestInto asks to execute op on obj for the transaction.
	RequestInto(eff *Effects, id TxnID, obj ObjectID, op adt.Op) (Decision, error)
	// CommitInto finishes the transaction locally (single-site commit:
	// pseudo-commits under outstanding dependencies, else commits for
	// real and cascades).
	CommitInto(eff *Effects, id TxnID) (CommitStatus, error)
	// CommitHoldInto pseudo-commits and holds: the transaction is
	// excluded from the automatic cascade until Release. Returns the
	// local out-degree so the coordinator can sum the global dependency
	// set.
	CommitHoldInto(eff *Effects, id TxnID) (int, error)
	// ReleaseInto really commits a held transaction whose local
	// dependencies have drained.
	ReleaseInto(eff *Effects, id TxnID) error
	// AbortInto aborts the transaction (active or blocked).
	AbortInto(eff *Effects, id TxnID) error
	// RevokeInto aborts a held pseudo-committed transaction — the
	// coordinator taking back a hold after a participant crash made
	// the commit impossible (presumed abort). It fails unless the
	// transaction is pseudo-committed and held.
	RevokeInto(eff *Effects, id TxnID, reason AbortReason) error
	// WithdrawInto abandons the transaction's blocked request and
	// returns it to the active state (context cancellation of a parked
	// Do). Followers queued behind the request are retried.
	WithdrawInto(eff *Effects, id TxnID) error
	// OutEdgesAppend exports the transaction's current outgoing
	// dependency edges at this participant, appended into buf[:0], so a
	// caller that exports edges on every coordination call can reuse
	// one buffer. The result never aliases implementation state — only
	// buf: the coordinator filters and retains it.
	OutEdgesAppend(id TxnID, buf []depgraph.Edge) []depgraph.Edge
	// Forget drops a terminated transaction's bookkeeping.
	Forget(id TxnID)
}

// Scheduler is the in-process Participant.
var _ Participant = (*Scheduler)(nil)
