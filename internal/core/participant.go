package core

import (
	"repro/internal/adt"
	"repro/internal/depgraph"
)

// Participant is the per-site face of the protocol: everything the §6
// distributed layer needs from a local scheduler, and nothing more. A
// cluster coordinator drives one Participant per site; the local
// single-site path and the distributed path share this abstraction, so
// a site can be an in-process Scheduler today and a network stub
// tomorrow without the coordinator changing.
//
// The method set corresponds to the paper's per-site operations:
// Begin/Request ("do"), CommitHold (pseudo-commit-and-hold, phase one
// of the distributed commit conversation), Release (the real commit,
// once the coordinator has established that the global dependency set
// is empty), Abort, and OutEdgesOf — the dependency-event export the
// coordinator mirrors into its union graph to detect cross-site
// deadlock and commit-dependency cycles no single site can see.
type Participant interface {
	// Begin registers a new transaction at this participant.
	Begin(id TxnID) error
	// Request asks to execute op on obj for the transaction.
	Request(id TxnID, obj ObjectID, op adt.Op) (Decision, Effects, error)
	// Commit finishes the transaction locally (single-site commit:
	// pseudo-commits under outstanding dependencies, else commits for
	// real and cascades).
	Commit(id TxnID) (CommitStatus, Effects, error)
	// CommitHold pseudo-commits and holds: the transaction is excluded
	// from the automatic cascade until Release. Returns the local
	// out-degree so the coordinator can sum the global dependency set.
	CommitHold(id TxnID) (int, Effects, error)
	// Release really commits a held transaction whose local
	// dependencies have drained.
	Release(id TxnID) (Effects, error)
	// Abort aborts the transaction (active or blocked).
	Abort(id TxnID) (Effects, error)
	// OutEdgesOf exports the transaction's current outgoing dependency
	// edges at this participant. The returned slice is owned by the
	// caller (implementations must return a fresh copy, not internal
	// state): the coordinator filters and retains it.
	OutEdgesOf(id TxnID) []depgraph.Edge
	// OutEdgesAppend is OutEdgesOf appending into buf[:0], so a caller
	// that exports edges on every coordination call can reuse one
	// buffer. As with OutEdgesOf, the result never aliases
	// implementation state — only buf.
	OutEdgesAppend(id TxnID, buf []depgraph.Edge) []depgraph.Edge
	// Forget drops a terminated transaction's bookkeeping.
	Forget(id TxnID)
}

// Scheduler is the in-process Participant.
var _ Participant = (*Scheduler)(nil)
