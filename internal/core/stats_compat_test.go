package core

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
)

// TestStatsSnapshotDerivesFromTelemetry pins the unified stats
// surface: the plain Stats snapshot is a view over the live telemetry
// counters, not separate bookkeeping, so the two must agree
// field-for-field after a run that moves every exercised counter.
func TestStatsSnapshotDerivesFromTelemetry(t *testing.T) {
	s := newStackSched(t, Options{})
	if err := s.Register(2, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	mustBegin(t, s, 1, 2, 3)

	// Page conflict: T1 writes, T2's read blocks, then T2 withdraws
	// and aborts (Blocks, WaitForEdges, Withdrawals, Aborts).
	mustExec(t, s, 1, 2, write(10))
	if dec, _, err := s.Request(2, 2, read()); err != nil || dec.Outcome != Blocked {
		t.Fatalf("read: %+v, %v", dec, err)
	}
	if _, err := s.Withdraw(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Abort(2); err != nil {
		t.Fatal(err)
	}

	// Recoverable non-commuting pushes: a commit dependency and a
	// pseudo-commit, released by T1's real commit (CommitDepEdges,
	// PseudoCommits, Commits, CycleChecks).
	mustExec(t, s, 1, 1, push(1))
	mustExec(t, s, 3, 1, push(2))
	if st, _, err := s.Commit(3); err != nil || st != PseudoCommitted {
		t.Fatalf("T3 commit = %v, %v; want pseudo-committed", st, err)
	}
	if st, _, err := s.Commit(1); err != nil || st != Committed {
		t.Fatalf("T1 commit = %v, %v; want committed", st, err)
	}

	st := s.StatsSnapshot()
	tel := s.Telemetry()
	want := Stats{
		Executes:       tel.Executes.Load(),
		Blocks:         tel.Blocks.Load(),
		Grants:         tel.Grants.Load(),
		Aborts:         tel.Aborts.Load(),
		DeadlockAborts: tel.DeadlockAborts.Load(),
		CycleAborts:    tel.CycleAborts.Load(),
		Withdrawals:    tel.Withdrawals.Load(),
		Commits:        tel.Commits.Load(),
		PseudoCommits:  tel.PseudoCommits.Load(),
		CycleChecks:    tel.CycleChecks.Load(),
		CommitDepEdges: tel.CommitDepEdges.Load(),
		WaitForEdges:   tel.WaitForEdges.Load(),
	}
	if st != want {
		t.Fatalf("StatsSnapshot %+v disagrees with telemetry view %+v", st, want)
	}
	if st.Executes == 0 || st.Blocks == 0 || st.Withdrawals != 1 ||
		st.Commits == 0 || st.PseudoCommits != 1 || st.CommitDepEdges == 0 || st.WaitForEdges == 0 {
		t.Fatalf("expected every exercised counter non-zero: %+v", st)
	}
}
