package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// PeerConfig parameterises a Peer.
type PeerConfig struct {
	// Addr is the remote daemon's TCP address.
	Addr string
	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
	// RedialDelay is the pause between reconnect attempts (default
	// 50ms). Redial runs until the peer is closed.
	RedialDelay time.Duration
	// Redial keeps a background loop re-dialling after a connection
	// loss. Without it the peer stays down until Connect is called
	// again.
	Redial bool
	// OnDown/OnUp observe connection-state transitions, called from
	// the peer's own goroutines with no peer lock held. OnUp fires
	// after every successful (re)connect, OnDown after every loss.
	// Both receive the connection incarnation the transition belongs
	// to: the callbacks race under rapid drop/redial cycles, and the
	// incarnation (monotone per dial; up precedes down within one)
	// lets the observer discard a stale event that lost the race to a
	// newer one.
	OnDown func(gen int)
	OnUp   func(gen int)
	// Metrics, when set, counts frames/bytes both ways, tracks the
	// outstanding-call depth, reconnects, and per-verb round-trip
	// latency. Typically one shared instance across all of a
	// coordinator's peers.
	Metrics *telemetry.WireMetrics
}

// resp is one response as delivered to a waiting call.
type resp struct {
	kind    uint8
	payload []byte
	err     error
}

// Peer is one pipelined connection to a remote daemon. Any number of
// goroutines may call concurrently: each request gets a fresh
// correlation id, frames interleave on the connection, and the reader
// loop routes responses back by id. A lost connection fails every
// in-flight call with ErrPeerDown and (with Redial) keeps re-dialling
// in the background; OnDown/OnUp let the owner map connection state to
// cluster-level crash/restart handling.
type Peer struct {
	cfg PeerConfig

	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	up      bool
	closed  bool
	corr    uint64
	pending map[uint64]chan resp
	gen     int // connection incarnation, so a stale reader cannot fail its successor
}

// NewPeer returns an unconnected peer; Connect establishes the first
// connection.
func NewPeer(cfg PeerConfig) *Peer {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.RedialDelay <= 0 {
		cfg.RedialDelay = 50 * time.Millisecond
	}
	return &Peer{cfg: cfg, pending: make(map[uint64]chan resp)}
}

// Addr returns the configured remote address.
func (p *Peer) Addr() string { return p.cfg.Addr }

// Up reports whether the connection is currently established.
func (p *Peer) Up() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up
}

// Connect dials the peer, retrying until the deadline (a zero wait
// means one attempt). It is also the manual reconnect for peers
// without Redial.
func (p *Peer) Connect(wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		err := p.dialOnce()
		if err == nil {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("wire: connect %s: %w", p.cfg.Addr, err)
		}
		time.Sleep(p.cfg.RedialDelay)
	}
}

// dialOnce attempts one connection and installs it on success.
func (p *Peer) dialOnce() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPeerDown
	}
	if p.up {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	conn, err := net.DialTimeout("tcp", p.cfg.Addr, p.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	p.mu.Lock()
	if p.closed || p.up {
		p.mu.Unlock()
		conn.Close()
		if p.closed {
			return ErrPeerDown
		}
		return nil
	}
	p.conn = conn
	p.bw = bufio.NewWriterSize(conn, 64<<10)
	p.up = true
	p.gen++
	gen := p.gen
	p.mu.Unlock()
	if m := p.cfg.Metrics; m != nil && gen > 1 {
		m.Reconnects.Inc()
	}
	go p.readLoop(conn, gen)
	if p.cfg.OnUp != nil {
		p.cfg.OnUp(gen)
	}
	return nil
}

// readLoop routes responses to waiting calls until the connection
// dies, then runs the down transition for its own incarnation.
func (p *Peer) readLoop(conn net.Conn, gen int) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	for {
		corr, kind, payload, nbuf, err := readFrame(br, buf)
		if err != nil {
			p.connLost(conn, gen)
			return
		}
		buf = nbuf
		if m := p.cfg.Metrics; m != nil {
			m.FramesIn.Inc()
			m.BytesIn.Add(uint64(frameOverhead + len(payload)))
		}
		body := append([]byte(nil), payload...) // reader buffer is reused
		p.mu.Lock()
		ch := p.pending[corr]
		delete(p.pending, corr)
		if m := p.cfg.Metrics; m != nil {
			m.Pipeline.Set(int64(len(p.pending)))
		}
		p.mu.Unlock()
		if ch != nil {
			ch <- resp{kind: kind, payload: body}
		}
	}
}

// connLost tears down one connection incarnation: every in-flight call
// fails with ErrPeerDown, OnDown fires, and (with Redial) the redial
// loop starts.
func (p *Peer) connLost(conn net.Conn, gen int) {
	p.mu.Lock()
	if p.gen != gen || !p.up {
		p.mu.Unlock()
		return
	}
	p.up = false
	p.conn = nil
	p.bw = nil
	failed := p.pending
	p.pending = make(map[uint64]chan resp)
	closed := p.closed
	p.mu.Unlock()
	conn.Close()
	for _, ch := range failed {
		ch <- resp{err: ErrPeerDown}
	}
	if closed {
		return
	}
	if p.cfg.OnDown != nil {
		p.cfg.OnDown(gen)
	}
	if p.cfg.Redial {
		go p.redialLoop()
	}
}

// redialLoop re-dials until the connection is back or the peer closes.
func (p *Peer) redialLoop() {
	for {
		p.mu.Lock()
		stop := p.closed || p.up
		p.mu.Unlock()
		if stop {
			return
		}
		if p.dialOnce() == nil {
			return
		}
		time.Sleep(p.cfg.RedialDelay)
	}
}

// roundTrip sends one request and waits for its response frame.
func (p *Peer) roundTrip(kind uint8, payload []byte) (uint8, []byte, error) {
	return p.roundTripT(kind, telemetry.TraceContext{}, payload)
}

// roundTripT is roundTrip with trace-context propagation: a valid
// context rides the request frame's trace block so the remote process
// records its spans into the same trace.
func (p *Peer) roundTripT(kind uint8, tc telemetry.TraceContext, payload []byte) (uint8, []byte, error) {
	m := p.cfg.Metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	p.mu.Lock()
	if p.closed || !p.up {
		p.mu.Unlock()
		return 0, nil, ErrPeerDown
	}
	p.corr++
	corr := p.corr
	ch := make(chan resp, 1)
	p.pending[corr] = ch
	if m != nil {
		m.FramesOut.Inc()
		m.BytesOut.Add(uint64(frameOverhead + len(payload)))
		m.Pipeline.Set(int64(len(p.pending)))
	}
	err := writeFrameT(p.bw, corr, kind, tc, payload)
	if err == nil {
		err = p.bw.Flush()
	}
	if err != nil {
		delete(p.pending, corr)
		conn, gen := p.conn, p.gen
		p.mu.Unlock()
		if conn != nil {
			conn.Close() // the reader observes the close and runs connLost
			_ = gen
		}
		return 0, nil, fmt.Errorf("%w (write: %v)", ErrPeerDown, err)
	}
	p.mu.Unlock()
	r := <-ch
	if m != nil && r.err == nil {
		m.RTT(kind).Observe(uint64(time.Since(start)))
	}
	return r.kind, r.payload, r.err
}

// call is roundTrip plus the kOK/kErr convention: a kErr response is
// decoded into its typed error, a kOK response returned as a payload
// reader.
func (p *Peer) call(kind uint8, payload []byte) (*reader, error) {
	return p.callT(kind, telemetry.TraceContext{}, payload)
}

// callT is call with trace-context propagation.
func (p *Peer) callT(kind uint8, tc telemetry.TraceContext, payload []byte) (*reader, error) {
	rkind, body, err := p.roundTripT(kind, tc, payload)
	if err != nil {
		return nil, err
	}
	r := &reader{b: body}
	if rkind == kErr {
		return nil, r.errResp()
	}
	if rkind != kOK {
		return nil, fmt.Errorf("wire: unexpected response kind %#x", rkind)
	}
	return r, nil
}

// oneway sends a request that expects no response (correlation id 0).
func (p *Peer) oneway(kind uint8, payload []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || !p.up {
		return
	}
	if m := p.cfg.Metrics; m != nil {
		m.FramesOut.Inc()
		m.BytesOut.Add(uint64(frameOverhead + len(payload)))
	}
	if err := writeFrame(p.bw, 0, kind, payload); err == nil {
		_ = p.bw.Flush()
	}
}

// DropConnection closes the current connection without closing the
// peer — fault injection for tests and chaos tooling. In-flight calls
// fail with ErrPeerDown and, with Redial, the background loop brings
// the connection back.
func (p *Peer) DropConnection() {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Close shuts the peer down: the connection is closed, in-flight calls
// fail, redial stops.
func (p *Peer) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conn := p.conn
	p.up = false
	p.conn = nil
	p.bw = nil
	failed := p.pending
	p.pending = make(map[uint64]chan resp)
	p.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, ch := range failed {
		ch <- resp{err: ErrPeerDown}
	}
}
