package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/depgraph"
)

// The codec is append-style on the write side (everything goes through
// a caller-owned []byte, so steady-state calls reuse one buffer) and a
// consuming reader on the read side. Integers are little-endian fixed
// width; strings and slices carry a u32 count. Signed ints cross as
// two's-complement u64.

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// reader consumes a payload; the first decode error sticks and every
// later read returns zero values, so call sites check err once at the
// end instead of after every field.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s", what)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail("u8")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail("u16")
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || uint64(len(r.b)) < uint64(n) {
		r.fail("string")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// count reads a u32 element count, bounding it by the bytes that
// remain so a corrupt frame cannot drive a huge allocation.
func (r *reader) count(minElem int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if minElem > 0 && n > len(r.b)/minElem {
		r.fail("count")
		return 0
	}
	return n
}

// ---- protocol values ----

func appendOp(b []byte, op adt.Op) []byte {
	b = appendStr(b, op.Name)
	var flags uint8
	if op.HasArg {
		flags |= 1
	}
	if op.HasAux {
		flags |= 2
	}
	b = appendU8(b, flags)
	if op.HasArg {
		b = appendI64(b, int64(op.Arg))
	}
	if op.HasAux {
		b = appendI64(b, int64(op.Aux))
	}
	return b
}

func (r *reader) op() adt.Op {
	var op adt.Op
	op.Name = r.str()
	flags := r.u8()
	if flags&1 != 0 {
		op.HasArg = true
		op.Arg = int(r.i64())
	}
	if flags&2 != 0 {
		op.HasAux = true
		op.Aux = int(r.i64())
	}
	return op
}

func appendRet(b []byte, ret adt.Ret) []byte {
	b = appendU8(b, uint8(ret.Code))
	return appendI64(b, int64(ret.Val))
}

func (r *reader) ret() adt.Ret {
	return adt.Ret{Code: adt.Code(r.u8()), Val: int(r.i64())}
}

func appendEffects(b []byte, eff *core.Effects) []byte {
	b = appendU32(b, uint32(len(eff.Grants)))
	for _, g := range eff.Grants {
		b = appendU64(b, uint64(g.Txn))
		b = appendU64(b, uint64(g.Object))
		b = appendOp(b, g.Op)
		b = appendRet(b, g.Ret)
	}
	b = appendU32(b, uint32(len(eff.RetryAborts)))
	for _, ra := range eff.RetryAborts {
		b = appendU64(b, uint64(ra.Txn))
		b = appendU8(b, uint8(ra.Reason))
	}
	b = appendU32(b, uint32(len(eff.Committed)))
	for _, id := range eff.Committed {
		b = appendU64(b, uint64(id))
	}
	return b
}

// effects decodes into eff, appending (the caller owns Reset, matching
// the *Into convention).
func (r *reader) effects(eff *core.Effects) {
	for n := r.count(18); n > 0; n-- {
		g := core.Grant{Txn: core.TxnID(r.u64()), Object: core.ObjectID(r.u64())}
		g.Op = r.op()
		g.Ret = r.ret()
		eff.Grants = append(eff.Grants, g)
	}
	for n := r.count(9); n > 0; n-- {
		eff.RetryAborts = append(eff.RetryAborts, core.RetryAbort{
			Txn: core.TxnID(r.u64()), Reason: core.AbortReason(r.u8()),
		})
	}
	for n := r.count(8); n > 0; n-- {
		eff.Committed = append(eff.Committed, core.TxnID(r.u64()))
	}
}

func appendEdges(b []byte, edges []depgraph.Edge) []byte {
	b = appendU32(b, uint32(len(edges)))
	for _, e := range edges {
		b = appendU64(b, uint64(e.From))
		b = appendU64(b, uint64(e.To))
		b = appendU8(b, uint8(e.Kind))
	}
	return b
}

func (r *reader) edges(buf []depgraph.Edge) []depgraph.Edge {
	for n := r.count(17); n > 0; n-- {
		buf = append(buf, depgraph.Edge{
			From: depgraph.TxnID(r.u64()),
			To:   depgraph.TxnID(r.u64()),
			Kind: depgraph.EdgeKind(r.u8()),
		})
	}
	return buf
}

// edgeSet is one transaction's out-edge export inside a batched edge
// report.
type edgeSet struct {
	txn   core.TxnID
	edges []depgraph.Edge
}

func appendEdgeSets(b []byte, sets []edgeSet) []byte {
	b = appendU32(b, uint32(len(sets)))
	for _, s := range sets {
		b = appendU64(b, uint64(s.txn))
		b = appendEdges(b, s.edges)
	}
	return b
}

func (r *reader) edgeSets() []edgeSet {
	n := r.count(12)
	sets := make([]edgeSet, 0, n)
	for ; n > 0; n-- {
		s := edgeSet{txn: core.TxnID(r.u64())}
		s.edges = r.edges(nil)
		sets = append(sets, s)
	}
	return sets
}

func appendStats(b []byte, st core.Stats) []byte {
	for _, v := range []uint64{
		st.Executes, st.Blocks, st.Grants, st.Aborts, st.DeadlockAborts,
		st.CycleAborts, st.Withdrawals, st.Commits, st.PseudoCommits,
		st.CycleChecks, st.CommitDepEdges, st.WaitForEdges,
	} {
		b = appendU64(b, v)
	}
	return b
}

func (r *reader) stats() core.Stats {
	return core.Stats{
		Executes: r.u64(), Blocks: r.u64(), Grants: r.u64(), Aborts: r.u64(),
		DeadlockAborts: r.u64(), CycleAborts: r.u64(), Withdrawals: r.u64(),
		Commits: r.u64(), PseudoCommits: r.u64(), CycleChecks: r.u64(),
		CommitDepEdges: r.u64(), WaitForEdges: r.u64(),
	}
}

// appendErrResp builds a kErr payload from an error.
func appendErrResp(b []byte, err error) []byte {
	code, txn, reason, msg := encodeErr(err)
	b = appendU8(b, code)
	b = appendU64(b, uint64(txn))
	b = appendU8(b, uint8(reason))
	return appendStr(b, msg)
}

// errResp decodes a kErr payload back into a typed error.
func (r *reader) errResp() error {
	code := r.u8()
	txn := core.TxnID(r.u64())
	reason := core.AbortReason(r.u8())
	msg := r.str()
	if r.err != nil {
		return r.err
	}
	return decodeErr(code, txn, reason, msg)
}

// sanity bound for i64 values that should be small non-negative counts.
func clampLen(v int64) int {
	if v < 0 || v > math.MaxInt32 {
		return -1
	}
	return int(v)
}
