package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// frameOverhead is the on-wire cost of a frame beyond its payload:
// u32 length + u64 correlation id + u8 kind.
const frameOverhead = 4 + 8 + 1

// kindTrace is the kind-byte flag marking a trace block between the
// header and the payload. The block is length-prefixed —
//
//	u8 blockLen | u64 trace id | u64 parent span | u8 flags | ...
//
// — so a decoder reads the fields it knows and skips the rest: a newer
// sender can extend the block without breaking an older receiver
// (forward compatibility), and a receiver that predates tracing still
// fails loudly on the unknown kind bit rather than misparsing the
// payload.
const kindTrace uint8 = 0x80

// traceBlockKnown is the size of the trace-block fields this version
// writes and understands.
const traceBlockKnown = 8 + 8 + 1

// writeFrame appends one frame to w: length prefix, correlation id,
// kind, payload. The caller is responsible for flushing (the peer and
// the servers flush once per batch of queued frames, which is what
// amortises the syscall under pipelining).
func writeFrame(w *bufio.Writer, corr uint64, kind uint8, payload []byte) error {
	n := 8 + 1 + len(payload)
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	binary.LittleEndian.PutUint64(hdr[4:12], corr)
	hdr[12] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeFrameT is writeFrame with a trace block: a valid context sets
// the kindTrace bit and travels between the header and the payload, so
// the receiving process stitches its spans into the sender's trace. An
// invalid (zero) context degrades to a plain frame — the wire carries
// no tracing overhead when tracing is off.
func writeFrameT(w *bufio.Writer, corr uint64, kind uint8, tc telemetry.TraceContext, payload []byte) error {
	if !tc.Valid() {
		return writeFrame(w, corr, kind, payload)
	}
	n := 8 + 1 + 1 + traceBlockKnown + len(payload)
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	var hdr [13 + 1 + traceBlockKnown]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	binary.LittleEndian.PutUint64(hdr[4:12], corr)
	hdr[12] = kind | kindTrace
	hdr[13] = traceBlockKnown
	binary.LittleEndian.PutUint64(hdr[14:22], tc.Trace)
	binary.LittleEndian.PutUint64(hdr[22:30], tc.Span)
	hdr[30] = tc.Flags
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// splitTrace strips a received frame's trace block: it returns the
// base kind, the decoded context, and the payload proper. Unknown
// trailing block bytes (a newer sender) are skipped; a block shorter
// than the known fields decodes the prefix it carries and leaves the
// rest zero.
func splitTrace(kind uint8, payload []byte) (uint8, telemetry.TraceContext, []byte, error) {
	if kind&kindTrace == 0 {
		return kind, telemetry.TraceContext{}, payload, nil
	}
	if len(payload) < 1 {
		return 0, telemetry.TraceContext{}, nil, fmt.Errorf("wire: truncated trace block")
	}
	bl := int(payload[0])
	if len(payload) < 1+bl {
		return 0, telemetry.TraceContext{}, nil, fmt.Errorf("wire: truncated trace block (%d of %d bytes)", len(payload)-1, bl)
	}
	block := payload[1 : 1+bl]
	var tc telemetry.TraceContext
	if len(block) >= 8 {
		tc.Trace = binary.LittleEndian.Uint64(block)
		block = block[8:]
	}
	if len(block) >= 8 {
		tc.Span = binary.LittleEndian.Uint64(block)
		block = block[8:]
	}
	if len(block) >= 1 {
		tc.Flags = block[0]
	}
	return kind &^ kindTrace, tc, payload[1+bl:], nil
}

// readFrame reads one frame, reusing buf when it is large enough. The
// returned payload aliases the (possibly grown) buffer, which is also
// returned for reuse.
func readFrame(r *bufio.Reader, buf []byte) (corr uint64, kind uint8, payload, newBuf []byte, err error) {
	var hdr [13]byte
	if _, err = io.ReadFull(r, hdr[:4]); err != nil {
		return 0, 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < 9 || n > MaxFrame {
		return 0, 0, nil, buf, fmt.Errorf("wire: bad frame length %d", n)
	}
	if _, err = io.ReadFull(r, hdr[4:13]); err != nil {
		return 0, 0, nil, buf, err
	}
	corr = binary.LittleEndian.Uint64(hdr[4:12])
	kind = hdr[12]
	body := int(n) - 9
	if cap(buf) < body {
		buf = make([]byte, body+256)
	}
	payload = buf[:body]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, buf, err
	}
	return corr, kind, payload, buf, nil
}
