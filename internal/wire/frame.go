package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// frameOverhead is the on-wire cost of a frame beyond its payload:
// u32 length + u64 correlation id + u8 kind.
const frameOverhead = 4 + 8 + 1

// writeFrame appends one frame to w: length prefix, correlation id,
// kind, payload. The caller is responsible for flushing (the peer and
// the servers flush once per batch of queued frames, which is what
// amortises the syscall under pipelining).
func writeFrame(w *bufio.Writer, corr uint64, kind uint8, payload []byte) error {
	n := 8 + 1 + len(payload)
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	binary.LittleEndian.PutUint64(hdr[4:12], corr)
	hdr[12] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, reusing buf when it is large enough. The
// returned payload aliases the (possibly grown) buffer, which is also
// returned for reuse.
func readFrame(r *bufio.Reader, buf []byte) (corr uint64, kind uint8, payload, newBuf []byte, err error) {
	var hdr [13]byte
	if _, err = io.ReadFull(r, hdr[:4]); err != nil {
		return 0, 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < 9 || n > MaxFrame {
		return 0, 0, nil, buf, fmt.Errorf("wire: bad frame length %d", n)
	}
	if _, err = io.ReadFull(r, hdr[4:13]); err != nil {
		return 0, 0, nil, buf, err
	}
	corr = binary.LittleEndian.Uint64(hdr[4:12])
	kind = hdr[12]
	body := int(n) - 9
	if cap(buf) < body {
		buf = make([]byte, body+256)
	}
	payload = buf[:body]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, buf, err
	}
	return corr, kind, payload, buf, nil
}
