package wire

import (
	"errors"
	"time"
)

// ShutdownDaemon asks the site daemon at addr to exit (the wire
// protocol's shutdown request). The daemon acknowledges and then
// exits; a connection that dies right after the request was sent
// counts as success.
func ShutdownDaemon(addr string, wait time.Duration) error {
	p := NewPeer(PeerConfig{Addr: addr})
	if err := p.Connect(wait); err != nil {
		return err
	}
	defer p.Close()
	if _, err := p.call(kShutdown, nil); err != nil && !errors.Is(err, ErrPeerDown) {
		return err
	}
	return nil
}

// PingDaemon checks the site daemon at addr answers the participant
// plane (sccctl's readiness probe).
func PingDaemon(addr string, sid uint16, wait time.Duration) error {
	p := NewPeer(PeerConfig{Addr: addr})
	if err := p.Connect(wait); err != nil {
		return err
	}
	defer p.Close()
	_, err := p.call(kPing, appendU16(nil, sid))
	return err
}
