package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// Client is a core.Store whose coordinator lives in another process.
// Transactions run over one pipelined connection; a connection loss
// surfaces as a retryable site-failure abort everywhere except inside
// Commit, where the outcome may already be decided — there the client
// blocks in a resolve loop until it can learn the outcome from the
// coordinator's decision log (logged = committed exactly once, absent
// = presumed abort, safe to re-run). Commits are acknowledged back
// (kCliAck) once the client has the outcome, which is what lets the
// coordinator truncate the gated decision.
type Client struct {
	peer *Peer
	// ResolveWindow bounds how long an interrupted commit waits for the
	// coordinator to come back before giving up with a non-retryable
	// error (default 60s). A timeout means the outcome is UNKNOWN — the
	// caller must not re-run the transaction.
	ResolveWindow time.Duration
	numSites      int
	sampler       *telemetry.Sampler
}

// SetSampler enables client-rooted tracing: each transaction mints a
// deterministic trace context from the sampler at Begin, and every
// subsequent frame of that transaction carries it — the coordinator
// adopts the client's trace id, so the resulting cluster-wide trace is
// rooted here. Call before starting transactions.
func (c *Client) SetSampler(s *telemetry.Sampler) { c.sampler = s }

// Dial connects to a coordinator's client plane, retrying for wait.
func Dial(addr string, wait time.Duration) (*Client, error) {
	peer := NewPeer(PeerConfig{Addr: addr, Redial: true, RedialDelay: 50 * time.Millisecond})
	if err := peer.Connect(wait); err != nil {
		peer.Close()
		return nil, err
	}
	c := &Client{peer: peer, ResolveWindow: 60 * time.Second}
	if r, err := peer.call(kCliStatus, nil); err == nil {
		c.numSites = int(r.u32())
		if r.err != nil {
			c.numSites = 0
		}
	}
	return c, nil
}

// coordDown wraps transport loss as the retryable site-failure abort,
// so core.RunStore and the workload harness retry through coordinator
// downtime exactly like through a participant crash.
func coordDown(id core.TxnID, err error) error {
	return fmt.Errorf("wire: coordinator unreachable (%v): %w", err,
		&core.ErrAborted{Txn: id, Reason: core.ReasonSiteFailed})
}

// NumSites reports the cluster's site count (0 if the first status
// call failed).
func (c *Client) NumSites() int { return c.numSites }

// Register creates the object at its home site. Only the id crosses
// the wire; the coordinator's configured workload factory resolves the
// type, so typ and class are advisory here (kept for the Store
// signature).
func (c *Client) Register(id core.ObjectID, typ adt.Type, class compat.Classifier) error {
	_, _ = typ, class
	r, err := c.peer.call(kCliRegister, appendU64(nil, uint64(id)))
	if err != nil {
		return coordDown(0, err)
	}
	return r.err
}

// SetFactory is a no-op: the coordinator and the site daemons install
// their factories from the cluster config's workload spec. Present so
// the workload harness (which requires it) runs against Client.
func (c *Client) SetFactory(f func(core.ObjectID) (adt.Type, compat.Classifier)) {}

// Begin starts a transaction. On an unreachable coordinator it returns
// a pre-failed transaction whose operations report a retryable
// site-failure abort, so Run-style loops retry through the outage.
func (c *Client) Begin() core.Txn {
	r, err := c.peer.call(kCliBegin, nil)
	if err != nil {
		return core.ClosedTxn(coordDown(0, err))
	}
	id := core.TxnID(r.u64())
	// Older responses end at the id; newer ones append the
	// coordinator-minted trace context, which the client adopts unless
	// its own sampler overrides it (the client then roots the trace and
	// tells the coordinator so on the next frame).
	var tc telemetry.TraceContext
	if len(r.b) >= traceBlockKnown {
		tc = telemetry.TraceContext{Trace: r.u64(), Span: r.u64(), Flags: r.u8()}
	}
	if r.err != nil {
		return core.ClosedTxn(r.err)
	}
	if c.sampler != nil {
		tc = c.sampler.Context(uint64(id))
	}
	return &clientTxn{c: c, id: id, tc: tc}
}

// Run executes fn in a transaction with the standard retry loop.
func (c *Client) Run(ctx context.Context, fn func(core.Txn) error) error {
	return core.RunStore(ctx, c, fn)
}

// Stats fetches the cluster's protocol counters.
func (c *Client) Stats() core.Stats {
	r, err := c.peer.call(kCliStatus, nil)
	if err != nil {
		return core.Stats{}
	}
	n := int(r.u32())
	for i := 0; i < n; i++ {
		r.u8()
	}
	st := r.stats()
	if r.err != nil {
		return core.Stats{}
	}
	return st
}

// Status fetches per-site down flags, the stats snapshot and the
// decision log's live length.
func (c *Client) Status() (down []bool, st core.Stats, logLen uint64, err error) {
	r, err := c.peer.call(kCliStatus, nil)
	if err != nil {
		return nil, core.Stats{}, 0, coordDown(0, err)
	}
	n := r.count(1)
	down = make([]bool, n)
	for i := range down {
		down[i] = r.u8() == 1
	}
	st = r.stats()
	logLen = r.u64()
	return down, st, logLen, r.err
}

// StateLen fetches an object's state summary: its description and
// length (-1 when the type has none). committed selects the committed
// state instead of the current one.
func (c *Client) StateLen(obj core.ObjectID, committed bool) (string, int, error) {
	b := appendU64(nil, uint64(obj))
	var cb uint8
	if committed {
		cb = 1
	}
	r, err := c.peer.call(kCliStateLen, appendU8(b, cb))
	if err != nil {
		return "", 0, coordDown(0, err)
	}
	desc := r.str()
	n := int(r.i64())
	return desc, n, r.err
}

// Close closes the client's connection. The coordinator rolls back
// this client's unfinished transactions; it is otherwise unaffected.
func (c *Client) Close() error {
	c.peer.Close()
	return nil
}

// CloseCtx is Close (the remote coordinator owns draining).
func (c *Client) CloseCtx(ctx context.Context) error { return c.Close() }

var _ core.Store = (*Client)(nil)

// resolve asks the coordinator (reconnecting as needed, within the
// window) how the transaction ended. A definitive answer is
// exactly-once safe: logged means the commit landed or will land,
// absent means presumed abort — the coordinator cannot truncate the
// decision before our ack.
func (c *Client) resolve(id core.TxnID) (committed bool, err error) {
	window := c.ResolveWindow
	if window <= 0 {
		window = 60 * time.Second
	}
	deadline := time.Now().Add(window)
	for {
		r, err := c.peer.call(kCliResolve, appendU64(nil, uint64(id)))
		if err == nil {
			committed := r.u8() == 1
			if r.err != nil {
				return false, r.err
			}
			return committed, nil
		}
		if !errors.Is(err, ErrPeerDown) {
			return false, err
		}
		if !time.Now().Before(deadline) {
			return false, fmt.Errorf("wire: T%d outcome unresolved after %v (coordinator unreachable; NOT safe to re-run): %w",
				id, window, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// clientTxn is one transaction session over the wire.
type clientTxn struct {
	c  *Client
	id core.TxnID
	tc telemetry.TraceContext

	mu          sync.Mutex
	dead        error         // terminal client-side error, short-circuits later ops
	doneCh      chan struct{} // created lazily; closed by finish
	finished    bool
	waitStarted bool
	outErr      error
}

// ID implements core.Txn.
func (t *clientTxn) ID() core.TxnID { return t.id }

func (t *clientTxn) deadErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dead
}

func (t *clientTxn) setDead(err error) {
	t.mu.Lock()
	if t.dead == nil {
		t.dead = err
	}
	t.mu.Unlock()
}

// Do implements core.Txn. A transport failure dooms the transaction:
// the coordinator's connection cleanup rolls the orphan back, and the
// caller sees the retryable site-failure abort.
func (t *clientTxn) Do(obj core.ObjectID, op adt.Op) (adt.Ret, error) {
	if err := t.deadErr(); err != nil {
		return adt.Ret{}, err
	}
	b := appendU64(nil, uint64(t.id))
	b = appendU64(b, uint64(obj))
	b = appendOp(b, op)
	r, err := t.c.peer.callT(kCliDo, t.tc, b)
	if err != nil {
		derr := coordDown(t.id, err)
		t.setDead(derr)
		return adt.Ret{}, derr
	}
	if r.err != nil {
		var ab *core.ErrAborted
		if errors.As(r.err, &ab) {
			t.setDead(r.err)
		}
		return adt.Ret{}, r.err
	}
	ret := r.ret()
	return ret, r.err
}

// DoCtx implements core.Txn. Cancellation is checked before the call;
// a request already on the wire runs to its verdict (the remote
// scheduler cannot be told to withdraw mid-RPC yet).
func (t *clientTxn) DoCtx(ctx context.Context, obj core.ObjectID, op adt.Op) (adt.Ret, error) {
	if err := ctx.Err(); err != nil {
		return adt.Ret{}, err
	}
	return t.Do(obj, op)
}

// ack tells the coordinator we have the outcome (one-way), releasing
// the gated decision for truncation. Only call with the outcome in
// hand: the ack lets the coordinator drop the session and truncate the
// decision, after which nothing can answer a Wait or Resolve.
func (t *clientTxn) ack() {
	t.c.peer.oneway(kCliAck, appendU64(nil, uint64(t.id)))
}

// finish records the terminal outcome locally: Err answers it and
// Done's channel closes. Idempotent; first outcome wins.
func (t *clientTxn) finish(err error) {
	t.mu.Lock()
	if !t.finished {
		t.finished = true
		t.outErr = err
		if t.doneCh != nil {
			close(t.doneCh)
		}
	}
	t.mu.Unlock()
}

// Commit implements core.Txn with exactly-once semantics across
// connection loss: a response is the outcome; no response means the
// outcome must be resolved against the decision log before this
// logical transaction may run again. A PseudoCommitted response is a
// promise, not yet the real outcome — the ack is deferred to the wait
// goroutine, which learns how the hold drained (Done/Err report it).
func (t *clientTxn) Commit() (core.CommitStatus, error) {
	if err := t.deadErr(); err != nil {
		return 0, err
	}
	r, err := t.c.peer.callT(kCliCommit, t.tc, appendU64(nil, uint64(t.id)))
	if err == nil {
		if r.err != nil {
			t.setDead(r.err)
			t.ack() // the outcome (abort) is known; release the gate
			t.finish(r.err)
			return 0, r.err
		}
		st := core.CommitStatus(r.u8())
		if r.err != nil {
			return 0, r.err
		}
		if st == core.PseudoCommitted {
			t.startWait()
			return st, nil
		}
		t.ack()
		t.finish(nil)
		return st, nil
	}
	if !errors.Is(err, ErrPeerDown) {
		return 0, err
	}
	committed, rerr := t.c.resolve(t.id)
	if rerr != nil {
		t.setDead(rerr)
		return 0, rerr
	}
	t.ack()
	if committed {
		t.finish(nil)
		return core.Committed, nil
	}
	aerr := fmt.Errorf("wire: T%d presumed aborted (connection lost mid-commit): %w",
		t.id, &core.ErrAborted{Txn: t.id, Reason: core.ReasonSiteFailed})
	t.setDead(aerr)
	t.finish(aerr)
	return 0, aerr
}

// CommitCtx implements core.Txn.
func (t *clientTxn) CommitCtx(ctx context.Context) (core.CommitStatus, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return t.Commit()
}

// Abort implements core.Txn. Transport loss is fine: the coordinator's
// connection cleanup aborts the orphan.
func (t *clientTxn) Abort() error {
	aerr := fmt.Errorf("T%d: %w", t.id, core.ErrTxnTerminated)
	t.setDead(aerr)
	t.finish(fmt.Errorf("T%d: %w", t.id, &core.ErrAborted{Txn: t.id}))
	r, err := t.c.peer.call(kCliAbort, appendU64(nil, uint64(t.id)))
	if err != nil {
		return nil
	}
	return r.err
}

// Done implements core.Txn: the channel closes once the real commit
// has landed or the transaction aborted. The wait runs over the wire
// (kCliWait); if the connection dies during it, the outcome comes from
// the resolve loop instead. A transaction already terminal client-side
// answers locally.
func (t *clientTxn) Done() <-chan struct{} {
	t.mu.Lock()
	if t.doneCh == nil {
		t.doneCh = make(chan struct{})
		if t.finished {
			close(t.doneCh)
		}
	}
	ch := t.doneCh
	t.mu.Unlock()
	t.startWait()
	return ch
}

// startWait spawns the outcome-wait goroutine once. It is a no-op for
// transactions that already finished (their outcome is local).
func (t *clientTxn) startWait() {
	t.mu.Lock()
	if t.finished || t.waitStarted {
		t.mu.Unlock()
		return
	}
	t.waitStarted = true
	t.mu.Unlock()
	go t.wait()
}

// wait learns the real outcome of an in-flight (pseudo-committed)
// transaction, acknowledges it, and finishes the session locally.
func (t *clientTxn) wait() {
	var outErr error
	r, err := t.c.peer.callT(kCliWait, t.tc, appendU64(nil, uint64(t.id)))
	switch {
	case err == nil:
		committed := r.u8() == 1
		if r.err != nil {
			outErr = r.err
		} else if !committed {
			outErr = r.errResp()
		}
		t.ack()
	case errors.Is(err, ErrPeerDown):
		committed, rerr := t.c.resolve(t.id)
		switch {
		case rerr != nil:
			outErr = rerr
		case !committed:
			outErr = fmt.Errorf("wire: T%d presumed aborted: %w",
				t.id, &core.ErrAborted{Txn: t.id, Reason: core.ReasonSiteFailed})
			t.ack()
		default:
			t.ack()
		}
	default:
		outErr = err
	}
	t.finish(outErr)
}

// Err implements core.Txn: meaningful once Done's channel closed.
func (t *clientTxn) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.outErr
}

var _ core.Txn = (*clientTxn)(nil)
