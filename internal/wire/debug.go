package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/telemetry"
)

// DebugConfig parameterises ServeDebug, the opt-in observability plane
// a daemon exposes next to its wire listener. Exactly one of Cluster
// (coordinator role) or Sites (site-daemon role) should be set; Wire
// optionally adds the transport instrument block to a coordinator.
type DebugConfig struct {
	// Addr is the HTTP listen address ("127.0.0.1:0" picks a port).
	Addr string
	// Role labels the process in /statusz ("coord" or "site").
	Role string
	// Cluster, when set, serves the coordinator view: cluster-wide
	// scheduler counters, conversation phase histograms, decision-log
	// conservation counters, hold-policy state, and /tracez.
	Cluster *dist.Cluster
	// Wire, when set, adds frame/byte/RTT transport metrics.
	Wire *telemetry.WireMetrics
	// Sites, when set, serves the site-daemon view: each local
	// backend's scheduler counters under a site label.
	Sites map[uint16]dist.SiteBackend
}

// DebugServer is the HTTP observability plane: /metrics (Prometheus
// text), /statusz (JSON), /tracez (JSON event ring), and net/http/pprof
// under /debug/pprof/. It runs on its own mux so pprof's default-mux
// registration never leaks into the daemon.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the debug plane on cfg.Addr.
func ServeDebug(cfg DebugConfig) (*DebugServer, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		pw := &telemetry.PromWriter{W: w}
		if cfg.Cluster != nil {
			writeCoordMetrics(pw, cfg.Cluster)
		}
		if cfg.Wire != nil {
			writeWireMetrics(pw, cfg.Wire)
		}
		for sid, b := range cfg.Sites {
			writeSchedMetrics(pw, b.StatsSnapshot(), fmt.Sprintf(`site="%d"`, sid))
			if bd, ok := b.(interface{ BlockedDepth() int }); ok {
				pw.Gauge("scc_sched_blocked", "transactions currently blocked at the site",
					int64(bd.BlockedDepth()), fmt.Sprintf(`site="%d"`, sid))
			}
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(buildStatusz(cfg))
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var events []telemetry.Event
		if cfg.Cluster != nil {
			events = cfg.Cluster.Tracer().Snapshot()
		}
		if events == nil {
			events = []telemetry.Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the debug server.
func (s *DebugServer) Close() { _ = s.srv.Close() }

// writeSchedMetrics renders one core.Stats block as counter samples.
func writeSchedMetrics(pw *telemetry.PromWriter, st core.Stats, labels string) {
	pw.Counter("scc_sched_executes_total", "operations executed", st.Executes, labels)
	pw.Counter("scc_sched_blocks_total", "requests parked behind a conflict", st.Blocks, labels)
	pw.Counter("scc_sched_grants_total", "parked requests granted", st.Grants, labels)
	pw.Counter("scc_sched_aborts_total", "transactions aborted", st.Aborts, labels)
	pw.Counter("scc_sched_deadlock_aborts_total", "aborts from wait-for deadlocks", st.DeadlockAborts, labels)
	pw.Counter("scc_sched_cycle_aborts_total", "aborts from commit-dependency cycles", st.CycleAborts, labels)
	pw.Counter("scc_sched_withdrawals_total", "blocked requests withdrawn", st.Withdrawals, labels)
	pw.Counter("scc_sched_commits_total", "transactions committed", st.Commits, labels)
	pw.Counter("scc_sched_pseudo_commits_total", "transactions pseudo-committed (held)", st.PseudoCommits, labels)
	pw.Counter("scc_sched_cycle_checks_total", "dependency-graph cycle searches", st.CycleChecks, labels)
	pw.Counter("scc_sched_commit_dep_edges_total", "commit-dependency edges added", st.CommitDepEdges, labels)
	pw.Counter("scc_sched_wait_for_edges_total", "wait-for edges added", st.WaitForEdges, labels)
}

// writeCoordMetrics renders the coordinator instrument block: the
// cluster-wide scheduler sum, the commit-conversation phase
// histograms, the decision-log conservation counters, hold-policy
// state, and the mirror's shape.
func writeCoordMetrics(pw *telemetry.PromWriter, c *dist.Cluster) {
	writeSchedMetrics(pw, c.Stats(), "")
	tel := c.Telemetry()

	pw.Counter("scc_commit_fast_total", "edge-free direct commits (no conversation)", tel.FastCommits.Load(), "")
	pw.Counter("scc_conversations_total", "commit conversations entered", tel.Conversations.Load(), "")
	pw.Histogram("scc_phase_nanos", "commit-conversation phase latency", tel.HoldNanos.Snapshot(), `phase="hold"`)
	pw.Histogram("scc_phase_nanos", "commit-conversation phase latency", tel.DecideNanos.Snapshot(), `phase="decide"`)
	pw.Histogram("scc_phase_nanos", "commit-conversation phase latency", tel.ReleaseNanos.Snapshot(), `phase="release"`)
	pw.Histogram("scc_wave_size", "decide-pipeline flat-combining wave width", tel.WaveSize.Snapshot(), "")
	pw.Histogram("scc_release_width", "transactions released per cascade round", tel.ReleaseWidth.Snapshot(), "")
	pw.Counter("scc_sheds_total", "conversations refused by the hold policy", tel.Sheds.Load(), "")
	pw.Gauge("scc_held", "held (pseudo-committed) transactions", tel.Held.Load(), "")
	pw.Gauge("scc_held_high", "held-set high-water mark", tel.Held.High(), "")

	pw.Counter("scc_decisions_logged_total", "commit decisions forced to the log", tel.DecisionsLogged.Load(), "")
	pw.Counter("scc_decisions_adopted_total", "decisions adopted from a predecessor's log", tel.DecisionsAdopted.Load(), "")
	pw.Counter("scc_decisions_resolved_total", "decisions fully acked and truncated", tel.DecisionsResolved.Load(), "")
	pw.Gauge("scc_decisions_live", "open release-ack sets", tel.LiveDecisions.Load(), "")
	pw.Gauge("scc_decisions_live_high", "open release-ack high-water mark", tel.LiveDecisions.High(), "")

	pw.Counter("scc_site_crashes_total", "site crash transitions observed", tel.Crashes.Load(), "")
	pw.Counter("scc_site_restarts_total", "site recoveries completed", tel.Restarts.Load(), "")

	pw.Gauge("scc_mirror_edges", "dependency-mirror edge count", int64(c.MirrorEdges()), "")
	pw.Histogram("scc_mirror_cycle_cost", "nodes visited per cycle search", tel.Mirror.CycleCost.Snapshot(), "")
	pw.Histogram("scc_mirror_chain_depth", "observed longest-chain depths", tel.Mirror.ChainDepth.Snapshot(), "")

	ps := c.PolicyStats()
	policy := fmt.Sprintf(`policy=%q`, c.PolicyName())
	pw.Counter("scc_policy_tail_aborts_total", "conversations shed by a depth bound", uint64(ps.TailAborts), policy)
	pw.Counter("scc_policy_admission_rejects_total", "conversations shed by admission control", uint64(ps.AdmissionRejects), policy)
	pw.Counter("scc_policy_eager_rounds_total", "eager-release subtree scans", uint64(ps.EagerRounds), policy)
	pw.Counter("scc_policy_eager_released_total", "transactions released by eager scans", uint64(ps.EagerReleased), policy)
	pw.Gauge("scc_policy_held_peak", "held-set peak since start", int64(ps.HeldPeak), policy)

	for sid := 0; sid < c.NumSites(); sid++ {
		up := int64(1)
		if c.SiteDown(dist.SiteID(sid)) {
			up = 0
		}
		pw.Gauge("scc_site_up", "1 when the site is reachable", up, fmt.Sprintf(`site="%d"`, sid))
	}
}

// writeWireMetrics renders the transport instrument block with a
// per-verb RTT histogram family.
func writeWireMetrics(pw *telemetry.PromWriter, m *telemetry.WireMetrics) {
	pw.Counter("scc_wire_frames_out_total", "frames sent", m.FramesOut.Load(), "")
	pw.Counter("scc_wire_frames_in_total", "frames received", m.FramesIn.Load(), "")
	pw.Counter("scc_wire_bytes_out_total", "bytes sent (incl. frame headers)", m.BytesOut.Load(), "")
	pw.Counter("scc_wire_bytes_in_total", "bytes received (incl. frame headers)", m.BytesIn.Load(), "")
	pw.Counter("scc_wire_reconnects_total", "successful re-dials after a loss", m.Reconnects.Load(), "")
	pw.Gauge("scc_wire_pipeline", "outstanding pipelined calls", m.Pipeline.Load(), "")
	pw.Gauge("scc_wire_pipeline_high", "outstanding-call high-water mark", m.Pipeline.High(), "")
	m.EachRTT(func(kind byte, s telemetry.HistSnapshot) {
		pw.Histogram("scc_wire_rtt_nanos", "request round-trip latency", s, fmt.Sprintf(`verb=%q`, kindName(kind)))
	})
}

// Statusz is the /statusz JSON document; fields are omitted when the
// role does not populate them.
type Statusz struct {
	Role   string `json:"role"`
	Policy string `json:"policy,omitempty"`

	Stats     *core.Stats           `json:"stats,omitempty"`
	SiteStats map[string]core.Stats `json:"site_stats,omitempty"`

	PolicyStats *dist.PolicyStats `json:"policy_stats,omitempty"`

	FastCommits   uint64 `json:"fast_commits,omitempty"`
	Conversations uint64 `json:"conversations,omitempty"`
	Sheds         uint64 `json:"sheds,omitempty"`
	Held          int64  `json:"held,omitempty"`
	HeldHigh      int64  `json:"held_high,omitempty"`

	DecisionsLogged   uint64 `json:"decisions_logged,omitempty"`
	DecisionsAdopted  uint64 `json:"decisions_adopted,omitempty"`
	DecisionsResolved uint64 `json:"decisions_resolved,omitempty"`
	LiveDecisions     int64  `json:"live_decisions,omitempty"`

	Crashes     uint64 `json:"crashes,omitempty"`
	Restarts    uint64 `json:"restarts,omitempty"`
	MirrorEdges int    `json:"mirror_edges,omitempty"`
	TraceLen    int    `json:"trace_len,omitempty"`

	Wire *WireStatusz `json:"wire,omitempty"`
}

// WireStatusz is the transport block inside /statusz.
type WireStatusz struct {
	FramesOut    uint64 `json:"frames_out"`
	FramesIn     uint64 `json:"frames_in"`
	BytesOut     uint64 `json:"bytes_out"`
	BytesIn      uint64 `json:"bytes_in"`
	Reconnects   uint64 `json:"reconnects"`
	Pipeline     int64  `json:"pipeline"`
	PipelineHigh int64  `json:"pipeline_high"`
}

func buildStatusz(cfg DebugConfig) Statusz {
	st := Statusz{Role: cfg.Role}
	if c := cfg.Cluster; c != nil {
		sum := c.Stats()
		st.Stats = &sum
		st.SiteStats = make(map[string]core.Stats, c.NumSites())
		for sid := 0; sid < c.NumSites(); sid++ {
			st.SiteStats[fmt.Sprintf("%d", sid)] = c.SiteStats(dist.SiteID(sid))
		}
		st.Policy = c.PolicyName()
		ps := c.PolicyStats()
		st.PolicyStats = &ps
		tel := c.Telemetry()
		st.FastCommits = tel.FastCommits.Load()
		st.Conversations = tel.Conversations.Load()
		st.Sheds = tel.Sheds.Load()
		st.Held = tel.Held.Load()
		st.HeldHigh = tel.Held.High()
		st.DecisionsLogged = tel.DecisionsLogged.Load()
		st.DecisionsAdopted = tel.DecisionsAdopted.Load()
		st.DecisionsResolved = tel.DecisionsResolved.Load()
		st.LiveDecisions = tel.LiveDecisions.Load()
		st.Crashes = tel.Crashes.Load()
		st.Restarts = tel.Restarts.Load()
		st.MirrorEdges = c.MirrorEdges()
		st.TraceLen = c.Tracer().Len()
	}
	if len(cfg.Sites) > 0 {
		st.SiteStats = make(map[string]core.Stats, len(cfg.Sites))
		for sid, b := range cfg.Sites {
			st.SiteStats[fmt.Sprintf("%d", sid)] = b.StatsSnapshot()
		}
	}
	if m := cfg.Wire; m != nil {
		st.Wire = &WireStatusz{
			FramesOut:    m.FramesOut.Load(),
			FramesIn:     m.FramesIn.Load(),
			BytesOut:     m.BytesOut.Load(),
			BytesIn:      m.BytesIn.Load(),
			Reconnects:   m.Reconnects.Load(),
			Pipeline:     m.Pipeline.Load(),
			PipelineHigh: m.Pipeline.High(),
		}
	}
	return st
}

// kindName labels a frame kind for metrics and trace rendering.
func kindName(k byte) string {
	switch k {
	case kOK:
		return "ok"
	case kErr:
		return "err"
	case kBegin:
		return "begin"
	case kRequest:
		return "request"
	case kCommit:
		return "commit"
	case kCommitHold:
		return "commit-hold"
	case kRelease:
		return "release"
	case kAbort:
		return "abort"
	case kRevoke:
		return "revoke"
	case kWithdraw:
		return "withdraw"
	case kForget:
		return "forget"
	case kRegister:
		return "register"
	case kFactory:
		return "factory"
	case kStats:
		return "stats"
	case kStateLen:
		return "state-len"
	case kTxnState:
		return "txn-state"
	case kAdopt:
		return "adopt"
	case kPing:
		return "ping"
	case kShutdown:
		return "shutdown"
	case kCliBegin:
		return "cli-begin"
	case kCliDo:
		return "cli-do"
	case kCliCommit:
		return "cli-commit"
	case kCliAbort:
		return "cli-abort"
	case kCliWait:
		return "cli-wait"
	case kCliResolve:
		return "cli-resolve"
	case kCliAck:
		return "cli-ack"
	case kCliStatus:
		return "cli-status"
	case kCliStateLen:
		return "cli-state-len"
	case kCliRegister:
		return "cli-register"
	}
	return fmt.Sprintf("0x%02x", k)
}
