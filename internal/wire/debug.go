package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/telemetry"
)

// DebugConfig parameterises ServeDebug, the opt-in observability plane
// a daemon exposes next to its wire listener. Exactly one of Cluster
// (coordinator role) or Sites (site-daemon role) should be set; Wire
// optionally adds the transport instrument block to a coordinator.
type DebugConfig struct {
	// Addr is the HTTP listen address ("127.0.0.1:0" picks a port).
	Addr string
	// Role labels the process in /statusz ("coord" or "site").
	Role string
	// Cluster, when set, serves the coordinator view: cluster-wide
	// scheduler counters, conversation phase histograms, decision-log
	// conservation counters, hold-policy state, and /tracez.
	Cluster *dist.Cluster
	// Wire, when set, adds frame/byte/RTT transport metrics.
	Wire *telemetry.WireMetrics
	// Sites, when set, serves the site-daemon view: each local
	// backend's scheduler counters under a site label.
	Sites map[uint16]dist.SiteBackend
	// Process labels this process in exported Chrome traces and flight
	// dumps; empty falls back to Role.
	Process string
	// Spans/Flight expose the span plane on /tracez and /statusz. A
	// coordinator may leave them nil: the cluster's own buffer and
	// recorder are used. Site daemons set them explicitly (their spans
	// come from the served backends, not a cluster).
	Spans  *telemetry.SpanBuffer
	Flight *telemetry.FlightRecorder
	// SampleSeed/SampleRate report the span plane's sampler in /statusz
	// for roles without a Cluster (the coordinator's are read from it).
	SampleSeed int64
	SampleRate float64
}

// spanPlane resolves the effective span buffer, flight recorder and
// sampler parameters for this debug plane.
func (cfg DebugConfig) spanPlane() (sb *telemetry.SpanBuffer, fr *telemetry.FlightRecorder, seed int64, rate float64) {
	sb, fr, seed, rate = cfg.Spans, cfg.Flight, cfg.SampleSeed, cfg.SampleRate
	if c := cfg.Cluster; c != nil {
		if sb == nil {
			sb = c.Spans()
		}
		if fr == nil {
			fr = c.Flight()
		}
		if rate == 0 {
			seed, rate = c.SampleConfig()
		}
	}
	return sb, fr, seed, rate
}

// processName labels this process in trace exports.
func (cfg DebugConfig) processName() string {
	if cfg.Process != "" {
		return cfg.Process
	}
	return cfg.Role
}

// mergedSpans returns the span ring's snapshot with pinned exemplar
// spans appended, deduplicated by (trace, span id) — an exemplar's
// spans may still be live in the ring.
func mergedSpans(sb *telemetry.SpanBuffer) []telemetry.Span {
	if sb == nil {
		return []telemetry.Span{}
	}
	spans := sb.Snapshot()
	seen := make(map[[2]uint64]struct{}, len(spans))
	for _, s := range spans {
		seen[[2]uint64{s.Trace, s.ID}] = struct{}{}
	}
	for _, ex := range sb.Exemplars() {
		for _, s := range ex.Spans {
			if _, dup := seen[[2]uint64{s.Trace, s.ID}]; !dup {
				seen[[2]uint64{s.Trace, s.ID}] = struct{}{}
				spans = append(spans, s)
			}
		}
	}
	return spans
}

// DebugServer is the HTTP observability plane: /metrics (Prometheus
// text), /statusz (JSON), /tracez (JSON event ring), and net/http/pprof
// under /debug/pprof/. It runs on its own mux so pprof's default-mux
// registration never leaks into the daemon.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the debug plane on cfg.Addr.
func ServeDebug(cfg DebugConfig) (*DebugServer, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		pw := &telemetry.PromWriter{W: w}
		if cfg.Cluster != nil {
			writeCoordMetrics(pw, cfg.Cluster)
		}
		if cfg.Wire != nil {
			writeWireMetrics(pw, cfg.Wire)
		}
		for sid, b := range cfg.Sites {
			writeSchedMetrics(pw, b.StatsSnapshot(), fmt.Sprintf(`site="%d"`, sid))
			if bd, ok := b.(interface{ BlockedDepth() int }); ok {
				pw.Gauge("scc_sched_blocked", "transactions currently blocked at the site",
					int64(bd.BlockedDepth()), fmt.Sprintf(`site="%d"`, sid))
			}
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(buildStatusz(cfg))
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		sb, _, _, _ := cfg.spanPlane()
		switch r.URL.Query().Get("fmt") {
		case "json":
			// Chrome trace_event JSON: load straight into chrome://tracing
			// or Perfetto.
			w.Header().Set("Content-Type", "application/json")
			_ = telemetry.WriteChromeTrace(w, cfg.processName(), mergedSpans(sb))
			return
		case "spans":
			// Raw span records, the sccctl stitching feed: this process's
			// ring plus its pinned exemplars.
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(SpanzDoc{Process: cfg.processName(), Spans: mergedSpans(sb)})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		var events []telemetry.Event
		if cfg.Cluster != nil {
			events = cfg.Cluster.Tracer().Snapshot()
		}
		if events == nil {
			events = []telemetry.Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the debug server.
func (s *DebugServer) Close() { _ = s.srv.Close() }

// writeSchedMetrics renders one core.Stats block as counter samples.
func writeSchedMetrics(pw *telemetry.PromWriter, st core.Stats, labels string) {
	pw.Counter("scc_sched_executes_total", "operations executed", st.Executes, labels)
	pw.Counter("scc_sched_blocks_total", "requests parked behind a conflict", st.Blocks, labels)
	pw.Counter("scc_sched_grants_total", "parked requests granted", st.Grants, labels)
	pw.Counter("scc_sched_aborts_total", "transactions aborted", st.Aborts, labels)
	pw.Counter("scc_sched_deadlock_aborts_total", "aborts from wait-for deadlocks", st.DeadlockAborts, labels)
	pw.Counter("scc_sched_cycle_aborts_total", "aborts from commit-dependency cycles", st.CycleAborts, labels)
	pw.Counter("scc_sched_withdrawals_total", "blocked requests withdrawn", st.Withdrawals, labels)
	pw.Counter("scc_sched_commits_total", "transactions committed", st.Commits, labels)
	pw.Counter("scc_sched_pseudo_commits_total", "transactions pseudo-committed (held)", st.PseudoCommits, labels)
	pw.Counter("scc_sched_cycle_checks_total", "dependency-graph cycle searches", st.CycleChecks, labels)
	pw.Counter("scc_sched_commit_dep_edges_total", "commit-dependency edges added", st.CommitDepEdges, labels)
	pw.Counter("scc_sched_wait_for_edges_total", "wait-for edges added", st.WaitForEdges, labels)
}

// writeCoordMetrics renders the coordinator instrument block: the
// cluster-wide scheduler sum, the commit-conversation phase
// histograms, the decision-log conservation counters, hold-policy
// state, and the mirror's shape.
func writeCoordMetrics(pw *telemetry.PromWriter, c *dist.Cluster) {
	writeSchedMetrics(pw, c.Stats(), "")
	tel := c.Telemetry()

	pw.Counter("scc_commit_fast_total", "edge-free direct commits (no conversation)", tel.FastCommits.Load(), "")
	pw.Counter("scc_conversations_total", "commit conversations entered", tel.Conversations.Load(), "")
	pw.Histogram("scc_phase_nanos", "commit-conversation phase latency", tel.HoldNanos.Snapshot(), `phase="hold"`)
	pw.Histogram("scc_phase_nanos", "commit-conversation phase latency", tel.DecideNanos.Snapshot(), `phase="decide"`)
	pw.Histogram("scc_phase_nanos", "commit-conversation phase latency", tel.ReleaseNanos.Snapshot(), `phase="release"`)
	pw.Histogram("scc_wave_size", "decide-pipeline flat-combining wave width", tel.WaveSize.Snapshot(), "")
	pw.Histogram("scc_release_width", "transactions released per cascade round", tel.ReleaseWidth.Snapshot(), "")
	pw.Counter("scc_sheds_total", "conversations refused by the hold policy", tel.Sheds.Load(), "")
	pw.Gauge("scc_held", "held (pseudo-committed) transactions", tel.Held.Load(), "")
	pw.Gauge("scc_held_high", "held-set high-water mark", tel.Held.High(), "")

	pw.Counter("scc_decisions_logged_total", "commit decisions forced to the log", tel.DecisionsLogged.Load(), "")
	pw.Counter("scc_decisions_adopted_total", "decisions adopted from a predecessor's log", tel.DecisionsAdopted.Load(), "")
	pw.Counter("scc_decisions_resolved_total", "decisions fully acked and truncated", tel.DecisionsResolved.Load(), "")
	pw.Gauge("scc_decisions_live", "open release-ack sets", tel.LiveDecisions.Load(), "")
	pw.Gauge("scc_decisions_live_high", "open release-ack high-water mark", tel.LiveDecisions.High(), "")

	pw.Counter("scc_site_crashes_total", "site crash transitions observed", tel.Crashes.Load(), "")
	pw.Counter("scc_site_restarts_total", "site recoveries completed", tel.Restarts.Load(), "")

	pw.Gauge("scc_mirror_edges", "dependency-mirror edge count", int64(c.MirrorEdges()), "")
	pw.Histogram("scc_mirror_cycle_cost", "nodes visited per cycle search", tel.Mirror.CycleCost.Snapshot(), "")
	pw.Histogram("scc_mirror_chain_depth", "observed longest-chain depths", tel.Mirror.ChainDepth.Snapshot(), "")

	ps := c.PolicyStats()
	policy := fmt.Sprintf(`policy=%q`, c.PolicyName())
	pw.Counter("scc_policy_tail_aborts_total", "conversations shed by a depth bound", uint64(ps.TailAborts), policy)
	pw.Counter("scc_policy_admission_rejects_total", "conversations shed by admission control", uint64(ps.AdmissionRejects), policy)
	pw.Counter("scc_policy_eager_rounds_total", "eager-release subtree scans", uint64(ps.EagerRounds), policy)
	pw.Counter("scc_policy_eager_released_total", "transactions released by eager scans", uint64(ps.EagerReleased), policy)
	pw.Gauge("scc_policy_held_peak", "held-set peak since start", int64(ps.HeldPeak), policy)

	for sid := 0; sid < c.NumSites(); sid++ {
		up := int64(1)
		if c.SiteDown(dist.SiteID(sid)) {
			up = 0
		}
		pw.Gauge("scc_site_up", "1 when the site is reachable", up, fmt.Sprintf(`site="%d"`, sid))
	}
}

// writeWireMetrics renders the transport instrument block with a
// per-verb RTT histogram family.
func writeWireMetrics(pw *telemetry.PromWriter, m *telemetry.WireMetrics) {
	pw.Counter("scc_wire_frames_out_total", "frames sent", m.FramesOut.Load(), "")
	pw.Counter("scc_wire_frames_in_total", "frames received", m.FramesIn.Load(), "")
	pw.Counter("scc_wire_bytes_out_total", "bytes sent (incl. frame headers)", m.BytesOut.Load(), "")
	pw.Counter("scc_wire_bytes_in_total", "bytes received (incl. frame headers)", m.BytesIn.Load(), "")
	pw.Counter("scc_wire_reconnects_total", "successful re-dials after a loss", m.Reconnects.Load(), "")
	pw.Gauge("scc_wire_pipeline", "outstanding pipelined calls", m.Pipeline.Load(), "")
	pw.Gauge("scc_wire_pipeline_high", "outstanding-call high-water mark", m.Pipeline.High(), "")
	m.EachRTT(func(kind byte, s telemetry.HistSnapshot) {
		pw.Histogram("scc_wire_rtt_nanos", "request round-trip latency", s, fmt.Sprintf(`verb=%q`, kindName(kind)))
	})
}

// Statusz is the /statusz JSON document; fields are omitted when the
// role does not populate them.
type Statusz struct {
	Role   string `json:"role"`
	Policy string `json:"policy,omitempty"`

	Stats     *core.Stats           `json:"stats,omitempty"`
	SiteStats map[string]core.Stats `json:"site_stats,omitempty"`

	PolicyStats *dist.PolicyStats `json:"policy_stats,omitempty"`

	FastCommits   uint64 `json:"fast_commits,omitempty"`
	Conversations uint64 `json:"conversations,omitempty"`
	Sheds         uint64 `json:"sheds,omitempty"`
	Held          int64  `json:"held,omitempty"`
	HeldHigh      int64  `json:"held_high,omitempty"`

	DecisionsLogged   uint64 `json:"decisions_logged,omitempty"`
	DecisionsAdopted  uint64 `json:"decisions_adopted,omitempty"`
	DecisionsResolved uint64 `json:"decisions_resolved,omitempty"`
	LiveDecisions     int64  `json:"live_decisions,omitempty"`

	Crashes     uint64 `json:"crashes,omitempty"`
	Restarts    uint64 `json:"restarts,omitempty"`
	MirrorEdges int    `json:"mirror_edges,omitempty"`
	TraceLen    int    `json:"trace_len,omitempty"`

	Tracing *TracingStatusz `json:"tracing,omitempty"`
	Flight  *FlightStatusz  `json:"flight,omitempty"`

	Wire *WireStatusz `json:"wire,omitempty"`
}

// SpanzDoc is the /tracez?fmt=spans JSON document: one process's span
// records, ready for cross-process stitching by trace id.
type SpanzDoc struct {
	Process string           `json:"process"`
	Spans   []telemetry.Span `json:"spans"`
}

// TracingStatusz is the span-plane block inside /statusz.
type TracingStatusz struct {
	Enabled    bool    `json:"enabled"`
	SpanLen    int     `json:"span_len"`
	SpanCap    int     `json:"span_cap"`
	Exemplars  int     `json:"exemplars"`
	SampleSeed int64   `json:"sample_seed"`
	SampleRate float64 `json:"sample_rate"`
}

// FlightStatusz is the flight-recorder block inside /statusz.
type FlightStatusz struct {
	Enabled  bool   `json:"enabled"`
	Len      int    `json:"len"`
	Cap      int    `json:"cap"`
	Dumps    int    `json:"dumps"`
	LastDump string `json:"last_dump,omitempty"`
}

// WireStatusz is the transport block inside /statusz.
type WireStatusz struct {
	FramesOut    uint64 `json:"frames_out"`
	FramesIn     uint64 `json:"frames_in"`
	BytesOut     uint64 `json:"bytes_out"`
	BytesIn      uint64 `json:"bytes_in"`
	Reconnects   uint64 `json:"reconnects"`
	Pipeline     int64  `json:"pipeline"`
	PipelineHigh int64  `json:"pipeline_high"`
}

func buildStatusz(cfg DebugConfig) Statusz {
	st := Statusz{Role: cfg.Role}
	if c := cfg.Cluster; c != nil {
		sum := c.Stats()
		st.Stats = &sum
		st.SiteStats = make(map[string]core.Stats, c.NumSites())
		for sid := 0; sid < c.NumSites(); sid++ {
			st.SiteStats[fmt.Sprintf("%d", sid)] = c.SiteStats(dist.SiteID(sid))
		}
		st.Policy = c.PolicyName()
		ps := c.PolicyStats()
		st.PolicyStats = &ps
		tel := c.Telemetry()
		st.FastCommits = tel.FastCommits.Load()
		st.Conversations = tel.Conversations.Load()
		st.Sheds = tel.Sheds.Load()
		st.Held = tel.Held.Load()
		st.HeldHigh = tel.Held.High()
		st.DecisionsLogged = tel.DecisionsLogged.Load()
		st.DecisionsAdopted = tel.DecisionsAdopted.Load()
		st.DecisionsResolved = tel.DecisionsResolved.Load()
		st.LiveDecisions = tel.LiveDecisions.Load()
		st.Crashes = tel.Crashes.Load()
		st.Restarts = tel.Restarts.Load()
		st.MirrorEdges = c.MirrorEdges()
		st.TraceLen = c.Tracer().Len()
	}
	if len(cfg.Sites) > 0 {
		st.SiteStats = make(map[string]core.Stats, len(cfg.Sites))
		for sid, b := range cfg.Sites {
			st.SiteStats[fmt.Sprintf("%d", sid)] = b.StatsSnapshot()
		}
	}
	if sb, fr, seed, rate := cfg.spanPlane(); sb != nil || fr != nil {
		st.Tracing = &TracingStatusz{
			Enabled:    sb != nil,
			SampleSeed: seed,
			SampleRate: rate,
		}
		if sb != nil {
			st.Tracing.SpanLen = sb.Len()
			st.Tracing.SpanCap = sb.Cap()
			st.Tracing.Exemplars = len(sb.Exemplars())
		}
		if fr != nil {
			st.Flight = &FlightStatusz{
				Enabled:  true,
				Len:      fr.Len(),
				Cap:      fr.Cap(),
				Dumps:    fr.Dumps(),
				LastDump: fr.LastDump(),
			}
		}
	}
	if m := cfg.Wire; m != nil {
		st.Wire = &WireStatusz{
			FramesOut:    m.FramesOut.Load(),
			FramesIn:     m.FramesIn.Load(),
			BytesOut:     m.BytesOut.Load(),
			BytesIn:      m.BytesIn.Load(),
			Reconnects:   m.Reconnects.Load(),
			Pipeline:     m.Pipeline.Load(),
			PipelineHigh: m.Pipeline.High(),
		}
	}
	return st
}

// dumpOnPanic (deferred in request handlers) writes the flight
// recorder's black box before letting a panic take the process down,
// so even an invariant-violation crash leaves a post-mortem artifact.
func dumpOnPanic(fr *telemetry.FlightRecorder) {
	if r := recover(); r != nil {
		if fr != nil {
			_, _ = fr.DumpOnce("panic")
		}
		panic(r)
	}
}

// KindName labels a frame kind (verb) for metrics and trace rendering
// — the labels /metrics and sccbench's per-verb RTT tables share.
func KindName(k byte) string { return kindName(k) }

// kindName labels a frame kind for metrics and trace rendering.
func kindName(k byte) string {
	switch k {
	case kOK:
		return "ok"
	case kErr:
		return "err"
	case kBegin:
		return "begin"
	case kRequest:
		return "request"
	case kCommit:
		return "commit"
	case kCommitHold:
		return "commit-hold"
	case kRelease:
		return "release"
	case kAbort:
		return "abort"
	case kRevoke:
		return "revoke"
	case kWithdraw:
		return "withdraw"
	case kForget:
		return "forget"
	case kRegister:
		return "register"
	case kFactory:
		return "factory"
	case kStats:
		return "stats"
	case kStateLen:
		return "state-len"
	case kTxnState:
		return "txn-state"
	case kAdopt:
		return "adopt"
	case kPing:
		return "ping"
	case kShutdown:
		return "shutdown"
	case kCliBegin:
		return "cli-begin"
	case kCliDo:
		return "cli-do"
	case kCliCommit:
		return "cli-commit"
	case kCliAbort:
		return "cli-abort"
	case kCliWait:
		return "cli-wait"
	case kCliResolve:
		return "cli-resolve"
	case kCliAck:
		return "cli-ack"
	case kCliStatus:
		return "cli-status"
	case kCliStateLen:
		return "cli-state-len"
	case kCliRegister:
		return "cli-register"
	}
	return fmt.Sprintf("0x%02x", k)
}
