package wire

import (
	"testing"

	"repro/internal/core"
)

// TestStatsRoundTrip pins the wire encoding of core.Stats with every
// field set to a distinct value, so a field added on one side but not
// the other (or an order mismatch) fails loudly rather than silently
// shifting counters — the kStats path is how cluster-wide stats
// aggregation crosses processes.
func TestStatsRoundTrip(t *testing.T) {
	in := core.Stats{
		Executes: 1, Blocks: 2, Grants: 3, Aborts: 4, DeadlockAborts: 5,
		CycleAborts: 6, Withdrawals: 7, Commits: 8, PseudoCommits: 9,
		CycleChecks: 10, CommitDepEdges: 11, WaitForEdges: 12,
	}
	b := appendStats(nil, in)
	r := &reader{b: b}
	out := r.stats()
	if r.err != nil {
		t.Fatal(r.err)
	}
	if out != in {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
	if len(r.b) != 0 {
		t.Fatalf("%d bytes left over after decode", len(r.b))
	}
}
