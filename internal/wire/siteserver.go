package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/dist"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// SiteServerConfig parameterises a site daemon's participant-plane
// server.
type SiteServerConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" picks a port).
	Addr string
	// Sites maps global site ids to their local backends; one daemon
	// can serve several sites on one listener.
	Sites map[uint16]dist.SiteBackend
	// Workload optionally names a workload spec (workload.ParseSpec);
	// its object factory is installed on every site at startup, so the
	// daemon can resolve Register calls that carry only an object id.
	Workload string
	// OnShutdown runs when a kShutdown request arrives (the daemon's
	// exit hook). Nil ignores the request.
	OnShutdown func()
	// Spans, when set, records this daemon's side of every traced
	// conversation: requests arriving with a sampled trace context in
	// their frame emit spans here, which is the daemon's half of the
	// cluster-wide trace sccctl stitches.
	Spans *telemetry.SpanBuffer
	// Flight, when set, records hold/release/abort transitions into the
	// daemon's flight recorder (the black box dumped on SIGQUIT/panic).
	Flight *telemetry.FlightRecorder
}

// servedSite is one site behind the server. A single worker goroutine
// executes its requests in arrival order — the wire's per-site FIFO —
// so the backend sees the same serialised call pattern dist's site
// mutex would produce in process, and the tracked-transaction map
// needs no lock.
type servedSite struct {
	sid     uint16
	backend dist.SiteBackend
	factory func(core.ObjectID) (adt.Type, compat.Classifier)
	work    chan wreq
	txns    map[core.TxnID]struct{}
	scratch []depgraph.Edge
	eff     core.Effects
}

// wreq is one dispatched request: where to answer, the frame, and the
// trace context it carried (zero when the frame had none).
type wreq struct {
	c    *serverConn
	corr uint64
	kind uint8
	tc   telemetry.TraceContext
	body []byte
}

// serverConn wraps one accepted connection with a write lock, since
// several site workers answer onto the same connection.
type serverConn struct {
	conn net.Conn
	wmu  sync.Mutex
	bw   *bufio.Writer
}

func (c *serverConn) send(corr uint64, kind uint8, payload []byte) {
	if corr == 0 {
		return // one-way request
	}
	c.wmu.Lock()
	if err := writeFrame(c.bw, corr, kind, payload); err == nil {
		_ = c.bw.Flush()
	}
	c.wmu.Unlock()
}

// SiteServer serves sites' participant plane on one listener.
type SiteServer struct {
	cfg   SiteServerConfig
	ln    net.Listener
	sites map[uint16]*servedSite
	done  chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// ServeSites starts a site server: it listens, installs the configured
// workload factory, and accepts connections in the background.
func ServeSites(cfg SiteServerConfig) (*SiteServer, error) {
	var factory func(core.ObjectID) (adt.Type, compat.Classifier)
	if cfg.Workload != "" {
		gen, err := workload.ParseSpec(cfg.Workload)
		if err != nil {
			return nil, err
		}
		factory = gen.Factory()
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &SiteServer{
		cfg:   cfg,
		ln:    ln,
		sites: make(map[uint16]*servedSite, len(cfg.Sites)),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	for sid, b := range cfg.Sites {
		ss := &servedSite{
			sid:     sid,
			backend: b,
			factory: factory,
			work:    make(chan wreq, 256),
			txns:    make(map[core.TxnID]struct{}),
		}
		if factory != nil {
			b.SetFactory(factory)
		}
		s.sites[sid] = ss
		go s.siteWorker(ss)
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *SiteServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server: listener and connections close, workers
// exit. Backends are left as they are.
func (s *SiteServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	close(s.done)
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (s *SiteServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.readLoop(conn)
	}
}

// readLoop parses frames off one connection and dispatches each to its
// site's worker. Site ids are the first u16 of every participant
// payload; kShutdown is daemon-level and handled inline.
func (s *SiteServer) readLoop(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sc := &serverConn{conn: conn, bw: bufio.NewWriterSize(conn, 64<<10)}
	br := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	for {
		corr, kind, payload, nbuf, err := readFrame(br, buf)
		if err != nil {
			return
		}
		buf = nbuf
		kind, tc, payload, err := splitTrace(kind, payload)
		if err != nil {
			sc.send(corr, kErr, appendErrResp(nil, err))
			continue
		}
		if kind == kShutdown {
			sc.send(corr, kOK, nil)
			if s.cfg.OnShutdown != nil {
				go s.cfg.OnShutdown()
			}
			continue
		}
		if len(payload) < 2 {
			sc.send(corr, kErr, appendErrResp(nil, fmt.Errorf("short payload")))
			continue
		}
		sid := uint16(payload[0]) | uint16(payload[1])<<8
		ss := s.sites[sid]
		if ss == nil {
			sc.send(corr, kErr, appendErrResp(nil, fmt.Errorf("unknown site %d", sid)))
			continue
		}
		body := append([]byte(nil), payload[2:]...)
		select {
		case ss.work <- wreq{c: sc, corr: corr, kind: kind, tc: tc, body: body}:
		case <-s.done:
			return
		}
	}
}

// siteWorker executes one site's requests sequentially.
func (s *SiteServer) siteWorker(ss *servedSite) {
	defer dumpOnPanic(s.cfg.Flight)
	for {
		select {
		case wr := <-ss.work:
			kind, payload := s.handle(ss, wr.kind, wr.tc, wr.body)
			wr.c.send(wr.corr, kind, payload)
		case <-s.done:
			return
		}
	}
}

// report appends the site's full live edge report: every tracked
// transaction with its current out-edges. Terminated-but-unforgotten
// transactions export empty sets, which is exactly what the caller's
// cache must learn (their edges drained).
func (ss *servedSite) report(b []byte) []byte {
	b = appendU32(b, uint32(len(ss.txns)))
	for id := range ss.txns {
		b = appendU64(b, uint64(id))
		ss.scratch = ss.backend.OutEdgesAppend(id, ss.scratch[:0])
		b = appendEdges(b, ss.scratch)
	}
	return b
}

// settled reports whether a failed terminal verb is a duplicate whose
// outcome already landed: the coordinator's live commit conversation
// and a reconnect reconcile can both deliver the release (or revoke)
// for the same transaction — the daemon's state survives a connection
// blip, so unlike a real crash the second delivery finds the
// transaction terminated rather than unknown. Answering OK keeps the
// verbs idempotent, which exactly-once delivery over a flapping
// connection requires.
func (s *SiteServer) settled(ss *servedSite, kind uint8, id core.TxnID) bool {
	switch kind {
	case kRelease:
		return ss.backend.TxnState(id) == "committed"
	case kAbort, kRevoke:
		return ss.backend.TxnState(id) == "aborted"
	}
	return false
}

// handle executes one request against the site backend and builds the
// response frame body. A sampled trace context records the daemon's
// half of the conversation: spans into the span buffer, hold/release
// transitions into the flight recorder.
func (s *SiteServer) handle(ss *servedSite, kind uint8, tc telemetry.TraceContext, body []byte) (uint8, []byte) {
	r := &reader{b: body}
	fail := func(err error) (uint8, []byte) { return kErr, appendErrResp(nil, err) }
	sid := int32(ss.sid)
	var start time.Time
	if tc.Sampled() && s.cfg.Spans != nil {
		start = time.Now()
	}
	dur := func() int64 {
		if start.IsZero() {
			return 0
		}
		return int64(time.Since(start))
	}
	switch kind {
	case kBegin:
		id := core.TxnID(r.u64())
		if r.err != nil {
			return fail(r.err)
		}
		if err := ss.backend.Begin(id); err != nil {
			return fail(err)
		}
		ss.txns[id] = struct{}{}
		s.cfg.Spans.Record(tc, telemetry.SpanBegin, uint64(id), sid, 0, 0, 0)
		return kOK, ss.report(nil)

	case kRequest:
		id := core.TxnID(r.u64())
		obj := core.ObjectID(r.u64())
		op := r.op()
		if r.err != nil {
			return fail(r.err)
		}
		dec, err := ss.backend.RequestInto(&ss.eff, id, obj, op)
		if err != nil {
			return fail(err)
		}
		sk := telemetry.SpanRequest
		if dec.Outcome == core.Blocked {
			sk = telemetry.SpanBlock
		}
		s.cfg.Spans.Record(tc, sk, uint64(id), sid, int64(obj), 0, dur())
		b := appendU8(nil, uint8(dec.Outcome))
		b = appendRet(b, dec.Ret)
		b = appendU8(b, uint8(dec.Reason))
		b = appendEffects(b, &ss.eff)
		return kOK, ss.report(b)

	case kCommit:
		id := core.TxnID(r.u64())
		if r.err != nil {
			return fail(r.err)
		}
		st, err := ss.backend.CommitInto(&ss.eff, id)
		if err != nil {
			return fail(err)
		}
		s.cfg.Spans.Record(tc, telemetry.SpanRelease, uint64(id), sid, 0, 0, dur())
		s.cfg.Flight.Record(telemetry.EvRelease, uint64(id), sid, 0)
		b := appendU8(nil, uint8(st))
		b = appendEffects(b, &ss.eff)
		return kOK, ss.report(b)

	case kCommitHold:
		id := core.TxnID(r.u64())
		if r.err != nil {
			return fail(r.err)
		}
		deg, err := ss.backend.CommitHoldInto(&ss.eff, id)
		if err != nil {
			return fail(err)
		}
		s.cfg.Spans.Record(tc, telemetry.SpanHold, uint64(id), sid, 0, 0, dur())
		s.cfg.Flight.Record(telemetry.EvHold, uint64(id), sid, int64(deg))
		b := appendI64(nil, int64(deg))
		b = appendEffects(b, &ss.eff)
		return kOK, ss.report(b)

	case kRelease, kAbort, kWithdraw:
		id := core.TxnID(r.u64())
		if r.err != nil {
			return fail(r.err)
		}
		var err error
		switch kind {
		case kRelease:
			err = ss.backend.ReleaseInto(&ss.eff, id)
		case kAbort:
			err = ss.backend.AbortInto(&ss.eff, id)
		case kWithdraw:
			err = ss.backend.WithdrawInto(&ss.eff, id)
		}
		if err != nil && !s.settled(ss, kind, id) {
			return fail(err)
		}
		if err != nil {
			ss.eff.Reset() // duplicate delivery: nothing new happened
		}
		if kind == kRelease {
			s.cfg.Spans.Record(tc, telemetry.SpanRelease, uint64(id), sid, 0, 0, dur())
			s.cfg.Flight.Record(telemetry.EvRelease, uint64(id), sid, 0)
		} else {
			s.cfg.Spans.Record(tc, telemetry.SpanAbort, uint64(id), sid, 0, 0, dur())
		}
		b := appendEffects(nil, &ss.eff)
		return kOK, ss.report(b)

	case kRevoke:
		id := core.TxnID(r.u64())
		reason := core.AbortReason(r.u8())
		if r.err != nil {
			return fail(r.err)
		}
		if err := ss.backend.RevokeInto(&ss.eff, id, reason); err != nil {
			if !s.settled(ss, kRevoke, id) {
				return fail(err)
			}
			ss.eff.Reset()
		}
		s.cfg.Spans.Record(tc, telemetry.SpanAbort, uint64(id), sid, 0, 0, dur())
		s.cfg.Flight.Record(telemetry.EvShed, uint64(id), sid, int64(reason))
		b := appendEffects(nil, &ss.eff)
		return kOK, ss.report(b)

	case kForget:
		id := core.TxnID(r.u64())
		if r.err == nil {
			ss.backend.Forget(id)
			delete(ss.txns, id)
		}
		return kOK, nil // one-way: never sent

	case kRegister:
		obj := core.ObjectID(r.u64())
		if r.err != nil {
			return fail(r.err)
		}
		if ss.factory == nil {
			return fail(fmt.Errorf("site %d has no workload factory", ss.sid))
		}
		typ, class := ss.factory(obj)
		if err := ss.backend.Register(obj, typ, class); err != nil {
			return fail(err)
		}
		return kOK, nil

	case kFactory:
		spec := r.str()
		if r.err != nil {
			return fail(r.err)
		}
		gen, err := workload.ParseSpec(spec)
		if err != nil {
			return fail(err)
		}
		ss.factory = gen.Factory()
		ss.backend.SetFactory(ss.factory)
		return kOK, nil

	case kStats:
		return kOK, appendStats(nil, ss.backend.StatsSnapshot())

	case kStateLen:
		obj := core.ObjectID(r.u64())
		committed := r.u8() == 1
		if r.err != nil {
			return fail(r.err)
		}
		var st adt.State
		var err error
		if committed {
			st, err = ss.backend.CommittedState(obj)
		} else {
			st, err = ss.backend.ObjectState(obj)
		}
		if err != nil {
			return fail(err)
		}
		n := -1
		if l, ok := st.(interface{ Len() int }); ok {
			n = l.Len()
		}
		b := appendStr(nil, st.String())
		return kOK, appendI64(b, int64(n))

	case kTxnState:
		id := core.TxnID(r.u64())
		if r.err != nil {
			return fail(r.err)
		}
		return kOK, appendStr(nil, ss.backend.TxnState(id))

	case kAdopt:
		// Report the site's live transactions for log-driven
		// reconciliation: actives (and blocked) are orphans the caller
		// aborts, pseudo-committed-and-held ones are in doubt.
		var b []byte
		n := 0
		for id := range ss.txns {
			switch ss.backend.TxnState(id) {
			case "active", "blocked":
				b = appendU64(b, uint64(id))
				b = appendU8(b, adoptActive)
				n++
			case "pseudo-committed":
				b = appendU64(b, uint64(id))
				b = appendU8(b, adoptHeld)
				n++
			}
		}
		out := appendU32(nil, uint32(n))
		out = append(out, b...)
		return kOK, ss.report(out)

	case kPing:
		return kOK, nil
	}
	return fail(fmt.Errorf("unknown request kind %#x", kind))
}
