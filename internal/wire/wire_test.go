package wire

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/workload"
)

func write(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }
func read() adt.Op       { return adt.Op{Name: adt.PageRead} }

// wireCluster is a coordinator over remote sites served by in-process
// SiteServers — the full network stack on loopback, minus the separate
// processes.
type wireCluster struct {
	c       *dist.Cluster
	peers   []*Peer
	servers []*SiteServer
}

func (w *wireCluster) close() {
	w.c.Close()
	for _, p := range w.peers {
		p.Close()
	}
	for _, s := range w.servers {
		s.Close()
	}
}

// startWireCluster brings up daemons×perDaemon remote sites behind
// TCP and a fault-tolerant coordinator over them. wl is the daemons'
// workload spec (their Register factory).
func startWireCluster(t *testing.T, daemons, perDaemon int, wl string) *wireCluster {
	t.Helper()
	return startWireClusterRedial(t, daemons, perDaemon, wl, 5*time.Millisecond)
}

// startWireClusterRedial is startWireCluster with an explicit redial
// delay. Tests that observe the down window after a connection drop
// (waitSiteDown) need it wide enough that the drop's crash event
// reliably beats the redial's restart event to the binding; load tests
// that only care about riding through drops keep it tight.
func startWireClusterRedial(t *testing.T, daemons, perDaemon int, wl string, redial time.Duration) *wireCluster {
	t.Helper()
	mlog := fault.NewMemLog()
	// Late-bound so reconcile redos go through the cluster's ClaimRedo
	// arbitration (safe: clu is set before Bind publishes the cluster,
	// and no reconcile runs earlier).
	var clu *dist.Cluster
	decided := func(id core.TxnID) bool {
		if clu != nil {
			return clu.ClaimRedo(id)
		}
		o, ok := mlog.Lookup(id)
		return ok && o == fault.OutcomeCommit
	}
	total := daemons * perDaemon
	backends := make([]dist.SiteBackend, total)
	w := &wireCluster{}
	var bindings []*PeerBinding
	for d := 0; d < daemons; d++ {
		sites := make(map[uint16]dist.SiteBackend, perDaemon)
		for k := 0; k < perDaemon; k++ {
			sid := uint16(d*perDaemon + k)
			cr, err := fault.New(core.Options{}, fault.NewMemLog())
			if err != nil {
				t.Fatal(err)
			}
			sites[sid] = cr
		}
		srv, err := ServeSites(SiteServerConfig{Addr: "127.0.0.1:0", Sites: sites, Workload: wl})
		if err != nil {
			t.Fatal(err)
		}
		w.servers = append(w.servers, srv)
		bind := &PeerBinding{}
		peer := NewPeer(PeerConfig{
			Addr:        srv.Addr(),
			Redial:      true,
			RedialDelay: redial,
			OnDown:      bind.Down,
			OnUp:        bind.Up,
		})
		if err := peer.Connect(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		w.peers = append(w.peers, peer)
		bindings = append(bindings, bind)
		for k := 0; k < perDaemon; k++ {
			sid := uint16(d*perDaemon + k)
			backends[sid] = NewRemoteSite(peer, sid, decided)
			bind.AddSite(dist.SiteID(sid))
		}
	}
	c, err := dist.NewWithConfig(dist.Config{
		Sites:         total,
		FaultTolerant: true,
		Log:           mlog,
		Backends:      backends,
	})
	if err != nil {
		t.Fatal(err)
	}
	clu = c
	for _, b := range bindings {
		b.Bind(c)
	}
	w.c = c
	t.Cleanup(w.close)
	return w
}

func registerPages(t *testing.T, c *dist.Cluster, objects int) {
	t.Helper()
	for id := core.ObjectID(1); id <= core.ObjectID(objects); id++ {
		if err := c.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
}

// remoteLen reads an object's committed length through the wire.
func remoteLen(t *testing.T, c *dist.Cluster, obj core.ObjectID) int {
	t.Helper()
	st, err := c.Site(c.SiteOf(obj)).CommittedState(obj)
	if err != nil {
		t.Fatalf("CommittedState(%d): %v", obj, err)
	}
	rs, ok := st.(*RemoteState)
	if !ok {
		t.Fatalf("CommittedState(%d) = %T, want *RemoteState", obj, st)
	}
	return rs.Len()
}

// TestWireCrossSiteCommit: a transaction spanning two remote sites
// commits through the wire and its writes land in both committed
// states; reads observe them; stats and txn state cross back.
func TestWireCrossSiteCommit(t *testing.T) {
	w := startWireCluster(t, 2, 1, "readwrite:64")
	registerPages(t, w.c, 4)
	tx := w.c.Begin()
	if _, err := tx.Do(1, write(11)); err != nil { // site 1
		t.Fatal(err)
	}
	if _, err := tx.Do(2, write(22)); err != nil { // site 0
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := w.c.Begin()
	for obj, want := range map[core.ObjectID]int{1: 11, 2: 22} {
		ret, err := tx2.Do(obj, read())
		if err != nil {
			t.Fatal(err)
		}
		if ret.Val != want {
			t.Fatalf("read(%d) = %d, want %d", obj, ret.Val, want)
		}
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := w.c.Site(0).TxnState(tx.ID()); st != "committed" && st != "unknown" {
		t.Fatalf("TxnState after commit = %q", st)
	}
	stats := w.c.Stats()
	if stats.Commits == 0 || stats.Executes == 0 {
		t.Fatalf("stats did not cross the wire: %+v", stats)
	}
}

// TestWireLoadConservation: a concurrent pushes load over the wire
// conserves — every committed push is in exactly one committed stack.
func TestWireLoadConservation(t *testing.T) {
	const db = 16
	w := startWireCluster(t, 2, 2, "pushes:16")
	var mu sync.Mutex
	counts := make(map[core.ObjectID]uint64)
	res, err := workload.RunLoad(w.c, workload.LoadConfig{
		Workload:      workload.Pushes{DBSize: db},
		Workers:       8,
		TxnsPerWorker: 25,
		Seed:          42,
		OnCommitted: func(steps []workload.Step) {
			mu.Lock()
			for _, s := range steps {
				counts[s.Object]++
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 8*25 {
		t.Fatalf("Commits = %d, want %d", res.Commits, 8*25)
	}
	for obj := core.ObjectID(1); obj <= db; obj++ {
		if got, want := remoteLen(t, w.c, obj), int(counts[obj]); got != want {
			t.Fatalf("object %d: committed depth %d, want %d pushes", obj, got, want)
		}
	}
}

// TestWireChaosReconcile: the chaos harness crashes and restarts
// remote sites under load; Restart reconciles each daemon against the
// decision log (orphan aborts, log-driven release/revoke of in-doubt
// holds) and conservation holds exactly.
func TestWireChaosReconcile(t *testing.T) {
	const db = 12
	w := startWireCluster(t, 2, 2, "pushes:12")
	res, err := workload.RunChaos(w.c, workload.ChaosConfig{
		Load: workload.LoadConfig{
			Workload:      workload.Pushes{DBSize: db},
			Workers:       6,
			TxnsPerWorker: 20,
			Seed:          7,
			MaxRestarts:   100000,
		},
		CrashEvery:   15 * time.Millisecond,
		RestartAfter: 5 * time.Millisecond,
		MaxCrashes:   6,
		Deadline:     60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("chaos injected no crashes")
	}
	for obj := core.ObjectID(1); obj <= db; obj++ {
		if got, want := remoteLen(t, w.c, obj), int(res.CommittedSteps[obj]); got != want {
			t.Fatalf("object %d: committed depth %d, want %d pushes", obj, got, want)
		}
	}
}

// TestWireDroppedPeerTypedError: a dropped connection surfaces as the
// typed retryable site failure — the transaction that touched the
// dropped daemon aborts with ErrSiteFailed and Retryable() true — and
// the redial loop brings the site back for fresh work.
func TestWireDroppedPeerTypedError(t *testing.T) {
	w := startWireClusterRedial(t, 2, 1, "readwrite:64", 200*time.Millisecond)
	registerPages(t, w.c, 4)
	tx := w.c.Begin()
	if _, err := tx.Do(1, write(10)); err != nil { // site 1
		t.Fatal(err)
	}
	w.peers[1].DropConnection()
	waitSiteDown(t, w.c, 1, true)
	_, err := tx.Do(1, write(11))
	if !errors.Is(err, core.ErrSiteFailed) {
		t.Fatalf("Do after drop = %v, want ErrSiteFailed", err)
	}
	var ab *core.ErrAborted
	if !errors.As(err, &ab) || !ab.Retryable() {
		t.Fatalf("site-failure abort not retryable: %v", err)
	}
	waitSiteDown(t, w.c, 1, false)
	tx2 := w.c.Begin()
	if _, err := tx2.Do(1, write(12)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestWireDropFailsParkedWaiter: a request parked at a remote site is
// woken with the site-failure verdict when the connection drops,
// instead of waiting forever.
func TestWireDropFailsParkedWaiter(t *testing.T) {
	w := startWireCluster(t, 2, 1, "readwrite:64")
	registerPages(t, w.c, 4)
	t1, t2 := w.c.Begin(), w.c.Begin()
	if _, err := t1.Do(1, write(10)); err != nil { // site 1
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		_, err := t2.Do(1, read()) // parks behind T1's write
		res <- err
	}()
	waitRemoteState(t, w.c.Site(1), t2.ID(), "blocked")
	w.peers[1].DropConnection()
	select {
	case err := <-res:
		if !errors.Is(err, core.ErrSiteFailed) {
			t.Fatalf("parked Do after drop = %v, want ErrSiteFailed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked waiter never woke after connection drop")
	}
}

// TestWireLoadSurvivesConnectionDrops: Store.Run's retry loop rides
// through repeated real TCP connection losses — the load completes and
// conserves once the daemons are back.
func TestWireLoadSurvivesConnectionDrops(t *testing.T) {
	const db = 12
	w := startWireCluster(t, 2, 2, "pushes:12")
	var mu sync.Mutex
	counts := make(map[core.ObjectID]uint64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			time.Sleep(20 * time.Millisecond)
			w.peers[i%len(w.peers)].DropConnection()
		}
	}()
	res, err := workload.RunLoad(w.c, workload.LoadConfig{
		Workload:        workload.Pushes{DBSize: db},
		Workers:         6,
		TxnsPerWorker:   20,
		Seed:            99,
		MaxRestarts:     100000,
		RetryHeldAborts: true,
		OnCommitted: func(steps []workload.Step) {
			mu.Lock()
			for _, s := range steps {
				counts[s.Object]++
			}
			mu.Unlock()
		},
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 6*20 {
		t.Fatalf("Commits = %d, want %d", res.Commits, 6*20)
	}
	// Wait for any still-down site to reconcile before auditing state.
	for sid := 0; sid < w.c.NumSites(); sid++ {
		waitSiteDown(t, w.c, dist.SiteID(sid), false)
	}
	for obj := core.ObjectID(1); obj <= db; obj++ {
		if got, want := remoteLen(t, w.c, obj), int(counts[obj]); got != want {
			t.Fatalf("object %d: committed depth %d, want %d pushes", obj, got, want)
		}
	}
}

func waitSiteDown(t *testing.T, c *dist.Cluster, sid dist.SiteID, want bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.SiteDown(sid) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("site %d never reached down=%v", sid, want)
}

func waitRemoteState(t *testing.T, s dist.SiteBackend, id core.TxnID, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.TxnState(id) == state {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("T%d never reached %s remotely", id, state)
}
