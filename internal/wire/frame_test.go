package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/telemetry"
)

// TestTraceBlockRoundTrip pins the trace-context frame encoding: a
// valid context rides the kindTrace bit and a length-prefixed block,
// decodes bit-identically, and leaves the payload untouched; an
// invalid context produces a plain frame.
func TestTraceBlockRoundTrip(t *testing.T) {
	tc := telemetry.TraceContext{Trace: 0xdeadbeefcafe, Span: 0x1234, Flags: telemetry.TraceSampled}
	payload := []byte{1, 2, 3, 4, 5}

	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrameT(bw, 7, kCommitHold, tc, payload); err != nil {
		t.Fatal(err)
	}
	bw.Flush()

	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	corr, kind, body, _, err := readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if corr != 7 {
		t.Errorf("corr = %d, want 7", corr)
	}
	if kind&kindTrace == 0 {
		t.Fatal("trace bit not set on the wire")
	}
	base, got, rest, err := splitTrace(kind, body)
	if err != nil {
		t.Fatal(err)
	}
	if base != kCommitHold {
		t.Errorf("base kind = %#x, want %#x", base, kCommitHold)
	}
	if got != tc {
		t.Errorf("context = %+v, want %+v", got, tc)
	}
	if !bytes.Equal(rest, payload) {
		t.Errorf("payload = %v, want %v", rest, payload)
	}

	// Invalid context: plain frame, no trace bit, splitTrace passthrough.
	buf.Reset()
	bw = bufio.NewWriter(&buf)
	if err := writeFrameT(bw, 8, kCommit, telemetry.TraceContext{}, payload); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	br = bufio.NewReader(bytes.NewReader(buf.Bytes()))
	_, kind, body, _, err = readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if kind&kindTrace != 0 {
		t.Fatal("plain frame carries the trace bit")
	}
	base, got, rest, err = splitTrace(kind, body)
	if err != nil || base != kCommit || got.Valid() || !bytes.Equal(rest, payload) {
		t.Errorf("plain passthrough = (%#x, %+v, %v, %v)", base, got, rest, err)
	}
}

// TestTraceBlockForwardCompat pins the unknown-field rule: a block
// longer than this version's known fields (a newer sender) decodes the
// known prefix and skips the rest; a shorter block decodes what it
// carries; a truncated block is a loud error, not a misparse.
func TestTraceBlockForwardCompat(t *testing.T) {
	mkBlock := func(blockLen int, tc telemetry.TraceContext, payload []byte) []byte {
		b := []byte{byte(blockLen)}
		var f [17]byte
		binary.LittleEndian.PutUint64(f[0:8], tc.Trace)
		binary.LittleEndian.PutUint64(f[8:16], tc.Span)
		f[16] = tc.Flags
		if blockLen <= len(f) {
			b = append(b, f[:blockLen]...)
		} else {
			b = append(b, f[:]...)
			for i := len(f); i < blockLen; i++ {
				b = append(b, 0xee) // future fields
			}
		}
		return append(b, payload...)
	}
	tc := telemetry.TraceContext{Trace: 42, Span: 43, Flags: 1}
	payload := []byte{9, 9, 9}

	// Newer sender: 8 extra bytes after the known fields.
	base, got, rest, err := splitTrace(kCommit|kindTrace, mkBlock(17+8, tc, payload))
	if err != nil || base != kCommit || got != tc || !bytes.Equal(rest, payload) {
		t.Errorf("extended block = (%#x, %+v, %v, %v)", base, got, rest, err)
	}

	// Older sender: trace id only (8-byte block).
	base, got, rest, err = splitTrace(kCommit|kindTrace, mkBlock(8, tc, payload))
	if err != nil || got.Trace != 42 || got.Span != 0 || got.Flags != 0 || !bytes.Equal(rest, payload) {
		t.Errorf("short block = (%#x, %+v, %v, %v)", base, got, rest, err)
	}

	// Truncated block: blockLen promises more bytes than the frame has.
	if _, _, _, err := splitTrace(kCommit|kindTrace, []byte{17, 1, 2, 3}); err == nil {
		t.Error("truncated block decoded without error")
	}
	if _, _, _, err := splitTrace(kCommit|kindTrace, nil); err == nil {
		t.Error("empty traced payload decoded without error")
	}
}

// TestClientAdoptsCoordinatorTrace checks the Begin-response context
// hand-off end to end over a real connection: with cluster tracing on,
// the client's transaction adopts a valid context and its later frames
// carry it back (exercised implicitly by the traced kCliDo path).
func TestClientAdoptsCoordinatorTrace(t *testing.T) {
	tc := telemetry.TraceContext{Trace: 5, Span: 6, Flags: telemetry.TraceSampled}
	// Response encoding as the coordinator writes it.
	b := appendU64(nil, uint64(77))
	b = appendU64(b, tc.Trace)
	b = appendU64(b, tc.Span)
	b = appendU8(b, tc.Flags)
	r := &reader{b: b}
	id := r.u64()
	var got telemetry.TraceContext
	if len(r.b) >= traceBlockKnown {
		got = telemetry.TraceContext{Trace: r.u64(), Span: r.u64(), Flags: r.u8()}
	}
	if r.err != nil || id != 77 || got != tc {
		t.Errorf("decoded (%d, %+v, %v)", id, got, r.err)
	}
	// Old-style response (id only): no context, no error.
	r = &reader{b: appendU64(nil, 77)}
	_ = r.u64()
	if len(r.b) >= traceBlockKnown {
		t.Error("old response misread as carrying a context")
	}
	if r.err != nil {
		t.Errorf("old response errored: %v", r.err)
	}
}
