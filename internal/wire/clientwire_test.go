package wire

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/workload"
)

// netCluster is the full three-tier deployment in one process: site
// daemons behind TCP, a restartable coordinator (FileLog-backed) over
// them, and clients dialling the coordinator's client plane.
type netCluster struct {
	t       *testing.T
	daemons []*SiteServer
	specs   []DaemonSpec
	logPath string
	wl      string
	co      *Coordinator
}

func startNetCluster(t *testing.T, daemons, perDaemon int, wl string) *netCluster {
	t.Helper()
	nc := &netCluster{t: t, wl: wl, logPath: filepath.Join(t.TempDir(), "decision.log")}
	for d := 0; d < daemons; d++ {
		sites := make(map[uint16]dist.SiteBackend, perDaemon)
		var ids []uint16
		for k := 0; k < perDaemon; k++ {
			sid := uint16(d*perDaemon + k)
			cr, err := fault.New(core.Options{}, fault.NewMemLog())
			if err != nil {
				t.Fatal(err)
			}
			sites[sid] = cr
			ids = append(ids, sid)
		}
		srv, err := ServeSites(SiteServerConfig{Addr: "127.0.0.1:0", Sites: sites, Workload: wl})
		if err != nil {
			t.Fatal(err)
		}
		nc.daemons = append(nc.daemons, srv)
		nc.specs = append(nc.specs, DaemonSpec{Listen: srv.Addr(), Sites: ids})
	}
	nc.startCoord()
	t.Cleanup(func() {
		if nc.co != nil {
			nc.co.Close()
		}
		for _, d := range nc.daemons {
			d.Close()
		}
	})
	return nc
}

// startCoord starts (or restarts) the coordinator against the same
// decision log file and the same daemons.
func (nc *netCluster) startCoord() {
	nc.t.Helper()
	flog, err := fault.OpenFileLog(nc.logPath, false)
	if err != nil {
		nc.t.Fatal(err)
	}
	co, err := StartCoordinator(CoordinatorConfig{
		ClientAddr: "127.0.0.1:0",
		Log:        flog,
		CloseLog:   flog.Close,
		Daemons:    nc.specs,
		Workload:   nc.wl,
		DialWait:   2 * time.Second,
	})
	if err != nil {
		flog.Close()
		nc.t.Fatal(err)
	}
	nc.co = co
}

// crashCoord kills the coordinator the unfriendly way a kill -9 would:
// daemon connections die first (no clean revokes or releases reach the
// sites), then the client plane. The durable decision log survives.
func (nc *netCluster) crashCoord() {
	co := nc.co
	nc.co = nil
	for _, p := range co.peers {
		p.Close()
	}
	co.Server.Close()
	co.Cluster.Close()
	if co.closeLog != nil {
		_ = co.closeLog()
	}
}

func (nc *netCluster) dial() *Client {
	nc.t.Helper()
	cl, err := Dial(nc.co.Addr(), 2*time.Second)
	if err != nil {
		nc.t.Fatal(err)
	}
	nc.t.Cleanup(func() { cl.Close() })
	return cl
}

// ---- raw client-plane calls (a client we can stop mid-protocol) ----

func rawDial(t *testing.T, addr string) *Peer {
	t.Helper()
	p := NewPeer(PeerConfig{Addr: addr})
	if err := p.Connect(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func rawBegin(t *testing.T, p *Peer) core.TxnID {
	t.Helper()
	r, err := p.call(kCliBegin, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := core.TxnID(r.u64())
	if r.err != nil {
		t.Fatal(r.err)
	}
	return id
}

func rawPush(t *testing.T, p *Peer, id core.TxnID, obj core.ObjectID, v int) {
	t.Helper()
	b := appendU64(nil, uint64(id))
	b = appendU64(b, uint64(obj))
	b = appendOp(b, adt.Op{Name: adt.StackPush, Arg: v, HasArg: true})
	r, err := p.call(kCliDo, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.err != nil {
		t.Fatal(r.err)
	}
}

func rawCommit(t *testing.T, p *Peer, id core.TxnID) error {
	t.Helper()
	r, err := p.call(kCliCommit, appendU64(nil, uint64(id)))
	if err != nil {
		t.Fatal(err)
	}
	return r.err
}

func rawResolve(t *testing.T, p *Peer, id core.TxnID) bool {
	t.Helper()
	r, err := p.call(kCliResolve, appendU64(nil, uint64(id)))
	if err != nil {
		t.Fatal(err)
	}
	committed := r.u8() == 1
	if r.err != nil {
		t.Fatal(r.err)
	}
	return committed
}

func clientDepth(t *testing.T, cl *Client, obj core.ObjectID) int {
	t.Helper()
	_, n, err := cl.StateLen(obj, true)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func waitLogLen(t *testing.T, flog fault.Log, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for flog.Len() != want {
		if time.Now().After(deadline) {
			t.Fatalf("decision log length = %d, want %d", flog.Len(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestNetLoadConservation drives the standard load harness end to end
// through the client plane: every operation crosses two network hops
// (client→coordinator→site daemon), and the committed stack depths
// must still exactly equal the committed pushes.
func TestNetLoadConservation(t *testing.T) {
	const db = 10
	nc := startNetCluster(t, 2, 2, "pushes:10")
	cl := nc.dial()
	if cl.NumSites() != 4 {
		t.Fatalf("NumSites = %d, want 4", cl.NumSites())
	}
	var mu sync.Mutex
	counts := make(map[core.ObjectID]uint64)
	res, err := workload.RunLoad(cl, workload.LoadConfig{
		Workload:      workload.Pushes{DBSize: db},
		Workers:       6,
		TxnsPerWorker: 20,
		Seed:          7,
		// All-push on 10 objects over the wire restart-storms when the
		// race build runs on a loaded machine; the default budget of
		// 1000 restarts for one transaction is occasionally too tight.
		// The load is finite (120 commits), so a bigger budget changes
		// nothing but the flake rate.
		MaxRestarts: 100000,
		OnCommitted: func(steps []workload.Step) {
			mu.Lock()
			for _, s := range steps {
				counts[s.Object]++
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 6*20 {
		t.Fatalf("Commits = %d, want %d", res.Commits, 6*20)
	}
	for obj := core.ObjectID(1); obj <= db; obj++ {
		if got, want := clientDepth(t, cl, obj), int(counts[obj]); got != want {
			t.Fatalf("object %d: committed depth %d, want %d pushes", obj, got, want)
		}
	}
	// All decisions resolved and acked: the log has drained.
	waitLogLen(t, nc.co.Log, 0)
}

// TestNetCoordinatorRestartExactlyOnce is the tentpole's recovery
// story in one scenario. A client commits but never acks (its
// connection "dies" with the outcome unread); another transaction is
// left mid-flight. The coordinator is then killed the kill -9 way and
// a fresh one started on the same decision log. The new coordinator
// must adopt the logged commit (the client resolves it as committed,
// exactly once — no re-run, no lost push), presumed-abort the
// mid-flight orphan at the daemons, and then serve new load normally.
func TestNetCoordinatorRestartExactlyOnce(t *testing.T) {
	nc := startNetCluster(t, 2, 1, "pushes:4")
	cl := nc.dial()

	p := rawDial(t, nc.co.Addr())
	// Committed but never acknowledged.
	tCommitted := rawBegin(t, p)
	rawPush(t, p, tCommitted, 1, 11) // site 1
	rawPush(t, p, tCommitted, 2, 22) // site 0
	if err := rawCommit(t, p, tCommitted); err != nil {
		t.Fatal(err)
	}
	// Orphan: operations executed, no commit attempted.
	tOrphan := rawBegin(t, p)
	rawPush(t, p, tOrphan, 3, 33)
	rawPush(t, p, tOrphan, 4, 44)

	if nc.co.Log.Len() == 0 {
		t.Fatal("gated decision should still be in the log before the client ack")
	}
	if got := clientDepth(t, cl, 1); got != 1 {
		t.Fatalf("object 1 depth before crash = %d, want 1", got)
	}

	nc.crashCoord()
	nc.startCoord()

	if len(nc.co.Adopted) != 1 || nc.co.Adopted[0] != tCommitted {
		t.Fatalf("Adopted = %v, want [%d]", nc.co.Adopted, tCommitted)
	}
	aborted := 0
	for _, rep := range nc.co.Reports {
		aborted += len(rep.Aborted)
	}
	if aborted == 0 {
		t.Fatalf("startup reconcile aborted no orphans; reports = %+v", nc.co.Reports)
	}

	// The client reconnects and resolves: committed, exactly once.
	p2 := rawDial(t, nc.co.Addr())
	if !rawResolve(t, p2, tCommitted) {
		t.Fatal("logged commit resolved as aborted after coordinator restart")
	}
	p2.oneway(kCliAck, appendU64(nil, uint64(tCommitted)))
	if rawResolve(t, p2, tOrphan) {
		t.Fatal("orphan resolved as committed; want presumed abort")
	}

	cl2 := nc.dial()
	for obj, want := range map[core.ObjectID]int{1: 1, 2: 1, 3: 0, 4: 0} {
		if got := clientDepth(t, cl2, obj); got != want {
			t.Fatalf("object %d depth after restart = %d, want %d", obj, got, want)
		}
	}
	// The resolved decision truncates once the client ack lands.
	waitLogLen(t, nc.co.Log, 0)

	// The restarted coordinator serves fresh load.
	res, err := workload.RunLoad(cl2, workload.LoadConfig{
		Workload:      workload.Pushes{DBSize: 4},
		Workers:       4,
		TxnsPerWorker: 10,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 4*10 {
		t.Fatalf("post-restart Commits = %d, want %d", res.Commits, 4*10)
	}
}

// TestNetDirectCommitResolvedAfterRestart pins the direct-commit
// flavour of exactly-once: an edge-free single-site transaction takes
// the fast path with no hold conversation, so its decision record is
// the ONLY durable trace the commit happened. If the coordinator dies
// after the site commit but before the client ack, the restarted
// coordinator must adopt that record and the client must resolve
// committed — never presumed abort followed by a re-run (a double
// push). The site daemon may still report the transaction active (the
// crash beat the commit delivery) or already committed; both reconcile
// to exactly one push.
func TestNetDirectCommitResolvedAfterRestart(t *testing.T) {
	nc := startNetCluster(t, 2, 1, "pushes:4")
	cl := nc.dial()

	p := rawDial(t, nc.co.Addr())
	id := rawBegin(t, p)
	rawPush(t, p, id, 1, 7) // single site, edge-free: the direct path
	if err := rawCommit(t, p, id); err != nil {
		t.Fatal(err)
	}
	if nc.co.Log.Len() == 0 {
		t.Fatal("direct commit left no decision record; a coordinator crash here loses exactly-once")
	}
	if got := clientDepth(t, cl, 1); got != 1 {
		t.Fatalf("object 1 depth before crash = %d, want 1", got)
	}

	// kill -9 before the client acks.
	nc.crashCoord()
	nc.startCoord()

	found := false
	for _, a := range nc.co.Adopted {
		found = found || a == id
	}
	if !found {
		t.Fatalf("Adopted = %v, want it to include direct commit %d", nc.co.Adopted, id)
	}

	p2 := rawDial(t, nc.co.Addr())
	if !rawResolve(t, p2, id) {
		t.Fatal("direct commit resolved as aborted after coordinator restart")
	}
	p2.oneway(kCliAck, appendU64(nil, uint64(id)))

	cl2 := nc.dial()
	if got := clientDepth(t, cl2, 1); got != 1 {
		t.Fatalf("object 1 depth after restart = %d, want exactly 1", got)
	}
	waitLogLen(t, nc.co.Log, 0)
}

// TestNetResolveDetachedSession covers the connection-blip flavour of
// exactly-once (no coordinator restart): the client's connection dies
// right after the commit decision, before the reply was read. The
// session detaches instead of rolling back, and the reconnected
// client resolves it from the live coordinator.
func TestNetResolveDetachedSession(t *testing.T) {
	nc := startNetCluster(t, 2, 1, "pushes:4")
	cl := nc.dial()

	p := rawDial(t, nc.co.Addr())
	tCommitted := rawBegin(t, p)
	rawPush(t, p, tCommitted, 1, 5)
	if err := rawCommit(t, p, tCommitted); err != nil {
		t.Fatal(err)
	}
	tActive := rawBegin(t, p)
	rawPush(t, p, tActive, 2, 6)
	p.Close() // the blip: outcome never read, no ack sent

	p2 := rawDial(t, nc.co.Addr())
	if !rawResolve(t, p2, tCommitted) {
		t.Fatal("committed session resolved as aborted after reconnect")
	}
	p2.oneway(kCliAck, appendU64(nil, uint64(tCommitted)))
	// The never-committed session rolls back with its connection.
	if rawResolve(t, p2, tActive) {
		t.Fatal("dead connection's active txn resolved as committed")
	}

	if got := clientDepth(t, cl, 1); got != 1 {
		t.Fatalf("object 1 depth = %d, want 1", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for clientDepth(t, cl, 2) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("object 2 depth = %d, want 0 (rollback)", clientDepth(t, cl, 2))
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitLogLen(t, nc.co.Log, 0)
}

// TestNetClientRetryableWhileCoordinatorDown pins the typed error
// clients see while the coordinator is unreachable: a retryable
// site-failure abort, so Run-style loops ride through the outage.
func TestNetClientRetryableWhileCoordinatorDown(t *testing.T) {
	nc := startNetCluster(t, 1, 2, "pushes:4")
	cl := nc.dial()
	tx := cl.Begin()
	if _, err := tx.Do(1, adt.Op{Name: adt.StackPush, Arg: 1, HasArg: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	nc.crashCoord()
	tx2 := cl.Begin()
	_, err := tx2.Do(1, adt.Op{Name: adt.StackPush, Arg: 2, HasArg: true})
	if err == nil {
		t.Fatal("Do succeeded against a dead coordinator")
	}
	var ab *core.ErrAborted
	if !errors.As(err, &ab) || !ab.Retryable() {
		t.Fatalf("want retryable *ErrAborted, got %v", err)
	}
	if !errors.Is(err, core.ErrSiteFailed) {
		t.Fatalf("want ErrSiteFailed in chain, got %v", err)
	}

	nc.startCoord()
	cl2 := nc.dial()
	if got := clientDepth(t, cl2, 1); got != 1 {
		t.Fatalf("object 1 depth after coordinator restart = %d, want 1", got)
	}
}
