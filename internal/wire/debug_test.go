package wire

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func httpGet(t *testing.T, addr, path string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestDebugPlaneEndToEnd drives a real loopback deployment — one site
// daemon, a coordinator with a hold policy and tracing, both debug
// planes — through a conversation-heavy load, then scrapes /metrics,
// /statusz and /tracez and asserts the instruments observed the run:
// phase histograms populated, PolicyStats surfaced, per-verb RTTs
// recorded, and the decision-log conservation invariant (logged +
// adopted == resolved + live, live == 0) holding at quiesce.
func TestDebugPlaneEndToEnd(t *testing.T) {
	const spec = "pushes:32"
	sites := make(map[uint16]dist.SiteBackend, 2)
	for sid := uint16(0); sid < 2; sid++ {
		cr, err := fault.New(core.Options{}, fault.NewMemLog())
		if err != nil {
			t.Fatal(err)
		}
		sites[sid] = cr
	}
	srv, err := ServeSites(SiteServerConfig{Addr: "127.0.0.1:0", Sites: sites, Workload: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	co, err := StartCoordinator(CoordinatorConfig{
		ClientAddr: "127.0.0.1:0",
		Daemons:    []DaemonSpec{{Listen: srv.Addr(), Sites: []uint16{0, 1}}},
		Workload:   spec,
		DialWait:   2 * time.Second,
		Policy:     dist.EagerRelease{},
		Trace:      1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	dbg, err := ServeDebug(DebugConfig{Addr: "127.0.0.1:0", Role: "coord", Cluster: co.Cluster, Wire: co.WireMetrics()})
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	sdbg, err := ServeDebug(DebugConfig{Addr: "127.0.0.1:0", Role: "site", Sites: sites})
	if err != nil {
		t.Fatal(err)
	}
	defer sdbg.Close()

	cl, err := Dial(co.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := workload.RunLoad(cl, workload.LoadConfig{
		Workload:        workload.Sharded{Inner: workload.Pushes{DBSize: 32}, Sites: 2, CrossProb: 0.5},
		Workers:         4,
		TxnsPerWorker:   25,
		Seed:            1,
		MaxRestarts:     10000,
		RetryHeldAborts: true,
	}); err != nil {
		t.Fatal(err)
	}

	metrics := string(httpGet(t, dbg.Addr(), "/metrics"))
	for _, want := range []string{
		"scc_sched_commits_total",
		"scc_conversations_total",
		`scc_phase_nanos_bucket{phase="hold",le="+Inf"}`,
		`scc_phase_nanos_bucket{phase="decide",le="+Inf"}`,
		"scc_wave_size_count",
		"scc_decisions_logged_total",
		`scc_policy_eager_rounds_total{policy="eager"}`,
		`scc_wire_rtt_nanos_count{verb="request"}`,
		`scc_site_up{site="0"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("coordinator /metrics missing %q", want)
		}
	}

	var st Statusz
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := json.Unmarshal(httpGet(t, dbg.Addr(), "/statusz"), &st); err != nil {
			t.Fatal(err)
		}
		// Quiesce: the client has acked every outcome, so every logged
		// decision must be resolved and none live.
		if st.LiveDecisions == 0 && st.DecisionsLogged+st.DecisionsAdopted == st.DecisionsResolved {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("conservation violated at quiesce: logged=%d adopted=%d resolved=%d live=%d",
				st.DecisionsLogged, st.DecisionsAdopted, st.DecisionsResolved, st.LiveDecisions)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Role != "coord" || st.Policy != "eager" {
		t.Errorf("statusz role/policy = %q/%q", st.Role, st.Policy)
	}
	if st.Stats == nil || st.Stats.Commits == 0 {
		t.Errorf("statusz stats missing or empty: %+v", st.Stats)
	}
	if st.PolicyStats == nil {
		t.Errorf("statusz policy_stats missing")
	}
	if st.Conversations == 0 && st.FastCommits == 0 {
		t.Errorf("no commits observed: %+v", st)
	}
	if st.Wire == nil || st.Wire.FramesOut == 0 || st.Wire.BytesOut == 0 {
		t.Errorf("wire block missing or empty: %+v", st.Wire)
	}

	var events []telemetry.Event
	if err := json.Unmarshal(httpGet(t, dbg.Addr(), "/tracez"), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Error("tracez empty with tracing enabled")
	}

	siteMetrics := string(httpGet(t, sdbg.Addr(), "/metrics"))
	if !strings.Contains(siteMetrics, `scc_sched_commits_total{site="0"}`) ||
		!strings.Contains(siteMetrics, `scc_sched_commits_total{site="1"}`) {
		t.Errorf("site daemon /metrics missing per-site commit counters")
	}
	var sst Statusz
	if err := json.Unmarshal(httpGet(t, sdbg.Addr(), "/statusz"), &sst); err != nil {
		t.Fatal(err)
	}
	if sst.Role != "site" || len(sst.SiteStats) != 2 {
		t.Errorf("site statusz role=%q sites=%d", sst.Role, len(sst.SiteStats))
	}
}
