package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// CoordConfig parameterises the coordinator's client-plane server.
type CoordConfig struct {
	// Addr is the TCP listen address for clients.
	Addr string
	// Cluster is the coordinator this server fronts.
	Cluster *dist.Cluster
	// Factory resolves object types for kCliRegister (nil rejects
	// remote registration). Comes from the cluster config's workload
	// spec, like the site daemons' factories.
	Factory func(core.ObjectID) (adt.Type, compat.Classifier)
	// Flight, when non-nil, is dumped before a panic in a request
	// handler takes the process down, so the crash leaves a black box.
	Flight *telemetry.FlightRecorder
}

// servedTxn is one client transaction's session state at the
// coordinator. It outlives its connection when a commit conversation
// is in flight: a client whose connection died mid-commit reconnects
// and resolves the outcome against this record (or, after a
// coordinator restart, against the decision log).
type servedTxn struct {
	t core.Txn

	mu         sync.Mutex
	committing bool
	finished   bool
	status     core.CommitStatus
	err        error
	done       chan struct{} // closed when the commit attempt returns
}

// cliConn is one accepted client connection and the transactions it
// owns.
type cliConn struct {
	conn net.Conn
	wmu  sync.Mutex
	bw   *bufio.Writer

	mu    sync.Mutex
	owned map[core.TxnID]*servedTxn
}

func (c *cliConn) send(corr uint64, kind uint8, payload []byte) {
	if corr == 0 {
		return
	}
	c.wmu.Lock()
	if err := writeFrame(c.bw, corr, kind, payload); err == nil {
		_ = c.bw.Flush()
	}
	c.wmu.Unlock()
}

// CoordServer serves the client plane: core.Store calls from remote
// clients against the wrapped cluster, with exactly-once commit
// resolution across connection loss and coordinator restart.
type CoordServer struct {
	cfg CoordConfig
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]*cliConn
	txns   map[core.TxnID]*servedTxn
	closed bool
}

// ServeCoord starts the client-plane server on cfg.Addr.
func ServeCoord(cfg CoordConfig) (*CoordServer, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &CoordServer{
		cfg:   cfg,
		ln:    ln,
		conns: make(map[net.Conn]*cliConn),
		txns:  make(map[core.TxnID]*servedTxn),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *CoordServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and closes every client connection. Sessions
// mid-commit finish server-side; the cluster itself is not closed.
func (s *CoordServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (s *CoordServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		cc := &cliConn{
			conn:  conn,
			bw:    bufio.NewWriterSize(conn, 64<<10),
			owned: make(map[core.TxnID]*servedTxn),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = cc
		s.mu.Unlock()
		go s.readLoop(cc)
	}
}

// readLoop parses frames and runs each request in its own goroutine —
// client operations block (a Do parks until granted, a Wait until the
// real commit lands), and pipelining by correlation id keeps the
// connection usable underneath them.
func (s *CoordServer) readLoop(cc *cliConn) {
	defer s.connCleanup(cc)
	br := bufio.NewReaderSize(cc.conn, 64<<10)
	var buf []byte
	for {
		corr, kind, payload, nbuf, err := readFrame(br, buf)
		if err != nil {
			return
		}
		buf = nbuf
		kind, tc, payload, err := splitTrace(kind, payload)
		if err != nil {
			cc.send(corr, kErr, appendErrResp(nil, err))
			continue
		}
		body := append([]byte(nil), payload...)
		go s.handle(cc, corr, kind, tc, body)
	}
}

// connCleanup runs when a client connection dies: transactions the
// connection owned are rolled back — unless a commit conversation is
// in flight or finished, in which case the session detaches and waits
// for the client to reconnect and resolve (the decision, once logged,
// is gated on that resolution; see Cluster.GateDecision).
func (s *CoordServer) connCleanup(cc *cliConn) {
	s.mu.Lock()
	delete(s.conns, cc.conn)
	s.mu.Unlock()
	cc.conn.Close()
	cc.mu.Lock()
	owned := cc.owned
	cc.owned = make(map[core.TxnID]*servedTxn)
	cc.mu.Unlock()
	for id, sv := range owned {
		sv.mu.Lock()
		committing := sv.committing
		sv.mu.Unlock()
		if committing {
			continue // detached: resolve owns it now
		}
		s.mu.Lock()
		delete(s.txns, id)
		s.mu.Unlock()
		go sv.t.Abort()
	}
}

func (s *CoordServer) lookup(id core.TxnID) *servedTxn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txns[id]
}

func (s *CoordServer) drop(id core.TxnID) {
	s.mu.Lock()
	delete(s.txns, id)
	s.mu.Unlock()
}

// handle executes one client request and answers it. A trace context
// on kCliBegin is a client-minted root: it is attached to the new
// transaction and overrides the coordinator's own sampling decision,
// so the client's trace id spans the whole cluster.
func (s *CoordServer) handle(cc *cliConn, corr uint64, kind uint8, tc telemetry.TraceContext, body []byte) {
	defer dumpOnPanic(s.cfg.Flight)
	r := &reader{b: body}
	fail := func(err error) { cc.send(corr, kErr, appendErrResp(nil, err)) }
	ok := func(payload []byte) { cc.send(corr, kOK, payload) }
	c := s.cfg.Cluster
	switch kind {
	case kCliBegin:
		t := c.Begin()
		if t.ID() == 0 {
			fail(core.ErrClosed)
			return
		}
		attachTrace(t, tc)
		sv := &servedTxn{t: t}
		s.mu.Lock()
		s.txns[t.ID()] = sv
		s.mu.Unlock()
		cc.mu.Lock()
		cc.owned[t.ID()] = sv
		cc.mu.Unlock()
		// The response carries the transaction's trace context (the
		// coordinator-minted one unless the client just overrode it), so
		// the client can adopt the cluster's trace id.
		b := appendU64(nil, uint64(t.ID()))
		if tt, okT := any(t).(interface {
			Trace() telemetry.TraceContext
		}); okT {
			ttc := tt.Trace()
			b = appendU64(b, ttc.Trace)
			b = appendU64(b, ttc.Span)
			b = appendU8(b, ttc.Flags)
		}
		ok(b)

	case kCliDo:
		id := core.TxnID(r.u64())
		obj := core.ObjectID(r.u64())
		op := r.op()
		if r.err != nil {
			fail(r.err)
			return
		}
		sv := s.lookup(id)
		if sv == nil {
			fail(fmt.Errorf("T%d: %w", id, core.ErrUnknownTxn))
			return
		}
		attachTrace(sv.t, tc)
		ret, err := sv.t.Do(obj, op)
		if err != nil {
			fail(err)
			return
		}
		ok(appendRet(nil, ret))

	case kCliCommit:
		id := core.TxnID(r.u64())
		if r.err != nil {
			fail(r.err)
			return
		}
		sv := s.lookup(id)
		if sv == nil {
			fail(fmt.Errorf("T%d: %w", id, core.ErrUnknownTxn))
			return
		}
		attachTrace(sv.t, tc)
		sv.mu.Lock()
		if sv.committing {
			// A duplicate commit (client retried on a blip that did not
			// actually kill the session): wait for the first attempt.
			done := sv.done
			sv.mu.Unlock()
			<-done
		} else {
			sv.committing = true
			sv.done = make(chan struct{})
			sv.mu.Unlock()
			// Gate the decision before the conversation can log it: if
			// the connection dies before the client learns the outcome,
			// the log entry survives for resolution.
			c.GateDecision(id)
			st, err := sv.t.Commit()
			sv.mu.Lock()
			sv.status, sv.err, sv.finished = st, err, true
			close(sv.done)
			sv.mu.Unlock()
		}
		sv.mu.Lock()
		st, err := sv.status, sv.err
		sv.mu.Unlock()
		if err != nil {
			fail(err)
			return
		}
		ok(appendU8(nil, uint8(st)))

	case kCliAbort:
		id := core.TxnID(r.u64())
		if r.err != nil {
			fail(r.err)
			return
		}
		if sv := s.lookup(id); sv != nil {
			s.drop(id)
			cc.mu.Lock()
			delete(cc.owned, id)
			cc.mu.Unlock()
			if err := sv.t.Abort(); err != nil {
				fail(err)
				return
			}
		}
		ok(nil) // aborting an unknown (already cleaned) txn is a no-op

	case kCliWait:
		id := core.TxnID(r.u64())
		if r.err != nil {
			fail(r.err)
			return
		}
		sv := s.lookup(id)
		if sv == nil {
			// Coordinator restarted under the client: answer from the
			// decision log (logged = the commit will land; absent =
			// presumed abort).
			if committed := s.loggedCommit(id); committed {
				ok(appendU8(nil, 1))
			} else {
				b := appendU8(nil, 0)
				ok(appendErrResp(b, fmt.Errorf("T%d: %w", id,
					&core.ErrAborted{Txn: id, Reason: core.ReasonSiteFailed})))
			}
			return
		}
		<-sv.t.Done()
		if err := sv.t.Err(); err != nil {
			b := appendU8(nil, 0)
			ok(appendErrResp(b, err))
			return
		}
		ok(appendU8(nil, 1))

	case kCliResolve:
		id := core.TxnID(r.u64())
		if r.err != nil {
			fail(r.err)
			return
		}
		committed := false
		if sv := s.lookup(id); sv != nil {
			sv.mu.Lock()
			committing, done := sv.committing, sv.done
			sv.mu.Unlock()
			if committing {
				<-done // the in-flight conversation decides the answer
				sv.mu.Lock()
				committed = sv.err == nil
				sv.mu.Unlock()
			}
			// A session that never reached commit resolves as abort; the
			// connection cleanup (possibly still pending) rolls it back.
		} else {
			committed = s.loggedCommit(id)
		}
		var b []byte
		if committed {
			b = appendU8(nil, 1)
		} else {
			b = appendU8(nil, 0)
		}
		ok(b)

	case kCliAck:
		id := core.TxnID(r.u64())
		if r.err != nil {
			return // one-way
		}
		c.AckDecision(id)
		s.drop(id)
		cc.mu.Lock()
		delete(cc.owned, id)
		cc.mu.Unlock()

	case kCliStatus:
		b := appendU32(nil, uint32(c.NumSites()))
		for sid := 0; sid < c.NumSites(); sid++ {
			var down uint8
			if c.SiteDown(dist.SiteID(sid)) {
				down = 1
			}
			b = appendU8(b, down)
		}
		b = appendStats(b, c.Stats())
		var logLen uint64
		if l := c.DecisionLog(); l != nil {
			logLen = uint64(l.Len())
		}
		ok(appendU64(b, logLen))

	case kCliStateLen:
		obj := core.ObjectID(r.u64())
		committed := r.u8() == 1
		if r.err != nil {
			fail(r.err)
			return
		}
		site := c.Site(c.SiteOf(obj))
		var st adt.State
		var err error
		if committed {
			st, err = site.CommittedState(obj)
		} else {
			st, err = site.ObjectState(obj)
		}
		if err != nil {
			fail(err)
			return
		}
		n := -1
		if l, okLen := st.(interface{ Len() int }); okLen {
			n = l.Len()
		}
		b := appendStr(nil, st.String())
		ok(appendI64(b, int64(n)))

	case kCliRegister:
		obj := core.ObjectID(r.u64())
		if r.err != nil {
			fail(r.err)
			return
		}
		if s.cfg.Factory == nil {
			fail(fmt.Errorf("coordinator has no workload factory for registration"))
			return
		}
		typ, class := s.cfg.Factory(obj)
		if err := c.Register(obj, typ, class); err != nil {
			fail(err)
			return
		}
		ok(nil)

	default:
		fail(fmt.Errorf("unknown client request kind %#x", kind))
	}
}

// attachTrace hands a client-carried trace context to the transaction.
// A no-op for invalid contexts or transactions without tracing; for a
// context the transaction already carries it is an idempotent store.
func attachTrace(t core.Txn, tc telemetry.TraceContext) {
	if !tc.Valid() {
		return
	}
	if at, ok := any(t).(interface {
		AttachTrace(telemetry.TraceContext)
	}); ok {
		at.AttachTrace(tc)
	}
}

// loggedCommit consults the decision log for a transaction with no
// live session: under presumed abort, a logged commit is the only way
// the transaction committed.
func (s *CoordServer) loggedCommit(id core.TxnID) bool {
	l := s.cfg.Cluster.DecisionLog()
	if l == nil {
		return false
	}
	o, ok := l.Lookup(id)
	return ok && o == fault.OutcomeCommit
}
