package wire

import (
	"fmt"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Coordinator is the whole coordinator process in one value: the
// fault-tolerant cluster over remote participants, the client-plane
// server, the decision log, and the peer connections to the site
// daemons. StartCoordinator builds it; Close tears it down without
// touching the daemons.
type Coordinator struct {
	Cluster *dist.Cluster
	Server  *CoordServer
	Log     fault.Log

	// Adopted lists the commit decisions found in the log at startup —
	// transactions whose commit conversation a previous coordinator
	// incarnation decided but possibly never finished releasing.
	Adopted []core.TxnID
	// Reports holds each site's startup reconciliation report (redone
	// logged commits, presumed-aborted in-doubt holds). Sites whose
	// first reconcile failed are absent (they retry via the peer's
	// reconnect binding).
	Reports map[dist.SiteID]fault.RecoveryReport

	peers    []*Peer
	wireMet  *telemetry.WireMetrics
	closeLog func() error
}

// CoordinatorConfig parameterises StartCoordinator.
type CoordinatorConfig struct {
	// ClientAddr is the client-plane TCP listen address.
	ClientAddr string
	// Log is the coordinator's decision log. Restart-from-log adoption
	// needs a log that can enumerate outcomes (fault.FileLog and
	// fault.MemLog both can); nil means a fresh MemLog — correct for a
	// coordinator that can never restart, i.e. tests.
	Log fault.Log
	// CloseLog, when non-nil, is invoked by Close (for FileLog owners).
	CloseLog func() error
	// Daemons places the global sites onto site-daemon processes. The
	// union of all Sites lists must be exactly 0..N-1.
	Daemons []DaemonSpec
	// Workload is the workload spec (workload.ParseSpec) both planes
	// resolve object types from. Empty leaves registration disabled.
	Workload string
	// DialWait bounds how long startup waits for each daemon to accept
	// (default 10s). Startup proceeds with a daemon down: its sites
	// start crashed and adopt when the connection lands.
	DialWait time.Duration
	// Policy optionally bounds the hold convoy (see dist.HoldPolicy).
	Policy dist.HoldPolicy
	// Trace sizes the cluster's conversation-event ring (0 disables).
	Trace int
	// Spans/SpanExemplars/SampleSeed/SampleRate configure the cluster's
	// causal span plane (see dist.Config); Spans 0 disables it.
	Spans         int
	SpanExemplars int
	SampleSeed    int64
	SampleRate    float64
	// Flight, when non-nil, is the process's flight recorder, shared
	// with the cluster so conversation events land in the black box.
	Flight *telemetry.FlightRecorder
}

// DaemonSpec places a set of global site ids on one daemon address.
// Debug optionally gives the daemon its own debug-plane HTTP address.
type DaemonSpec struct {
	Listen string   `json:"listen"`
	Sites  []uint16 `json:"sites"`
	Debug  string   `json:"debug,omitempty"`
}

// outcomeLister is the optional log extension adoption needs: both
// fault.MemLog and fault.FileLog enumerate their recorded decisions.
type outcomeLister interface {
	OutcomeIDs(o fault.Outcome) []core.TxnID
}

// StartCoordinator builds the coordinator over the configured site
// daemons and starts serving clients. If the decision log is non-empty
// — this coordinator is a restart of a crashed one — every logged
// commit is adopted before any client is served: each reachable site
// reports its surviving transactions, orphaned actives are aborted,
// in-doubt holds with a logged decision are released (redo) and the
// rest revoked (presumed abort), and the adopted decisions stay in the
// log until the owning clients resolve them (exactly-once commits
// across the crash).
func StartCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	flog := cfg.Log
	if flog == nil {
		flog = fault.NewMemLog()
	}
	nsites := 0
	for _, d := range cfg.Daemons {
		nsites += len(d.Sites)
	}
	if nsites == 0 {
		return nil, fmt.Errorf("wire: no sites configured")
	}
	var objFactory func(core.ObjectID) (adt.Type, compat.Classifier)
	if cfg.Workload != "" {
		gen, err := workload.ParseSpec(cfg.Workload)
		if err != nil {
			return nil, fmt.Errorf("wire: workload spec: %w", err)
		}
		objFactory = gen.Factory()
	}
	dialWait := cfg.DialWait
	if dialWait <= 0 {
		dialWait = 10 * time.Second
	}

	// decided routes restart-time redo checks through the cluster's
	// ClaimRedo arbitration so a reconcile that redoes a logged direct
	// commit wins against the live conversation's withdrawal (see
	// dist.Cluster.ClaimRedo). clu is assigned before any reconcile can
	// run: the initial Restart loop follows NewWithConfig in program
	// order, and binding-driven reconciles only start after Bind
	// publishes the cluster under the binding mutex.
	var clu *dist.Cluster
	decided := func(id core.TxnID) bool {
		if clu != nil {
			return clu.ClaimRedo(id)
		}
		o, ok := flog.Lookup(id)
		return ok && o == fault.OutcomeCommit
	}

	co := &Coordinator{
		Log:      flog,
		Reports:  make(map[dist.SiteID]fault.RecoveryReport),
		wireMet:  &telemetry.WireMetrics{},
		closeLog: cfg.CloseLog,
	}
	backends := make([]dist.SiteBackend, nsites)
	type daemonConn struct {
		peer *Peer
		bind *PeerBinding
		up   bool
	}
	conns := make([]daemonConn, 0, len(cfg.Daemons))
	fail := func(err error) (*Coordinator, error) {
		for _, dc := range conns {
			dc.peer.Close()
		}
		return nil, err
	}
	for _, d := range cfg.Daemons {
		bind := &PeerBinding{}
		peer := NewPeer(PeerConfig{
			Addr:        d.Listen,
			Redial:      true,
			RedialDelay: 50 * time.Millisecond,
			OnDown:      bind.Down,
			OnUp:        bind.Up,
			Metrics:     co.wireMet,
		})
		up := true
		if err := peer.Connect(dialWait); err != nil {
			// The daemon is not up yet; its sites start crashed and the
			// redial loop adopts them when the connection lands.
			up = false
		}
		for _, sid := range d.Sites {
			if int(sid) >= nsites || backends[sid] != nil {
				peer.Close()
				return fail(fmt.Errorf("wire: bad site placement: site %d (want each of 0..%d exactly once)", sid, nsites-1))
			}
			backends[sid] = NewRemoteSite(peer, sid, decided)
			bind.AddSite(dist.SiteID(sid))
		}
		conns = append(conns, daemonConn{peer: peer, bind: bind, up: up})
		co.peers = append(co.peers, peer)
	}
	for sid, b := range backends {
		if b == nil {
			return fail(fmt.Errorf("wire: bad site placement: site %d unassigned", sid))
		}
	}

	c, err := dist.NewWithConfig(dist.Config{
		Sites:         nsites,
		FaultTolerant: true,
		Log:           flog,
		Backends:      backends,
		Policy:        cfg.Policy,
		Trace:         cfg.Trace,
		Spans:         cfg.Spans,
		SpanExemplars: cfg.SpanExemplars,
		SampleSeed:    cfg.SampleSeed,
		SampleRate:    cfg.SampleRate,
		Flight:        cfg.Flight,
	})
	if err != nil {
		return fail(err)
	}
	co.Cluster = c
	clu = c

	// Adopt the previous incarnation's logged commits before any site
	// reconciles or any client connects: the gate keeps each decision in
	// the log until (a) every site has confirmed it needs no redo for it
	// and (b) the owning client has resolved the outcome.
	if lister, ok := flog.(outcomeLister); ok {
		co.Adopted = lister.OutcomeIDs(fault.OutcomeCommit)
	}
	for _, id := range co.Adopted {
		c.AdoptDecision(id)
	}

	// Reconcile every site. Connection loss from here on is the peers'
	// problem: the binding crashes the site on disconnect and re-runs
	// this same reconcile on reconnect.
	for _, dc := range conns {
		dc.bind.Bind(c)
	}
	for sid := 0; sid < nsites; sid++ {
		rep, err := c.Restart(dist.SiteID(sid))
		if err != nil {
			// Unreachable (or reconcile interrupted): mark it down so
			// client transactions fail fast with the retryable verdict
			// until the binding brings it back.
			_ = c.Crash(dist.SiteID(sid))
			continue
		}
		co.Reports[dist.SiteID(sid)] = rep
		for _, id := range co.Adopted {
			c.AckDecisionSite(id, dist.SiteID(sid))
		}
	}

	srv, err := ServeCoord(CoordConfig{
		Addr:    cfg.ClientAddr,
		Cluster: c,
		Factory: objFactory,
		Flight:  cfg.Flight,
	})
	if err != nil {
		return fail(err)
	}
	co.Server = srv
	return co, nil
}

// Addr returns the client-plane listen address.
func (co *Coordinator) Addr() string { return co.Server.Addr() }

// WireMetrics returns the transport instrument block shared by every
// daemon connection.
func (co *Coordinator) WireMetrics() *telemetry.WireMetrics { return co.wireMet }

// Close stops serving clients, closes the daemon connections and the
// decision log. The daemons themselves keep running (and keep their
// state; a new coordinator adopts it).
func (co *Coordinator) Close() error {
	co.Server.Close()
	for _, p := range co.peers {
		p.Close()
	}
	co.Cluster.Close()
	if co.closeLog != nil {
		return co.closeLog()
	}
	return nil
}
