package wire

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// RemoteSite is a dist.SiteBackend whose scheduler lives in another
// process behind a Peer connection. The coordinator drives it exactly
// like an in-process site; every participant call is one RPC, and the
// read-side methods (OutEdgesAppend, OutDegree, OutEdgesOf) are served
// from a local edge cache refreshed by the batched edge report each
// mutating response carries — so the commit conversation's hold phase
// costs one round trip per site and the observe path costs none.
//
// The cache needs no versioning: dist serializes every participant
// call to a site under that site's mutex, so a response's report is
// always the newest information about the site when it is applied.
//
// RemoteSite is also the cluster's dist.CrashRestarter: a lost
// connection is reported as a crash (calls answer fault.ErrSiteDown),
// and Restart reconciles the re-reachable daemon against the
// coordinator's decision log — orphaned actives are aborted, in-doubt
// holds released when their decision was logged and revoked (presumed
// abort) when it was not.
type RemoteSite struct {
	peer *Peer
	sid  uint16

	// decided reports whether a commit decision for the transaction is
	// in the coordinator's log. Nil is allowed on clusters that never
	// restart sites (plain transport tests); Restart then treats every
	// in-doubt hold as undecided.
	decided func(core.TxnID) bool

	// traceOf resolves a transaction's trace context so participant
	// calls carry it in their frames (the coordinator installs it via
	// SetTraceLookup; nil propagates nothing). Installed before traffic
	// starts, so reads need no lock.
	traceOf func(core.TxnID) telemetry.TraceContext

	mu    sync.Mutex
	down  bool
	cache map[core.TxnID][]depgraph.Edge
}

// NewRemoteSite builds a backend for global site sid served by the
// daemon behind peer. decided (may be nil) is the coordinator's
// decision-log lookup, consulted when Restart resolves in-doubt holds.
func NewRemoteSite(peer *Peer, sid uint16, decided func(core.TxnID) bool) *RemoteSite {
	return &RemoteSite{
		peer:    peer,
		sid:     sid,
		decided: decided,
		cache:   make(map[core.TxnID][]depgraph.Edge),
	}
}

// SiteID returns the global site id this backend addresses.
func (rs *RemoteSite) SiteID() uint16 { return rs.sid }

// SetTraceLookup installs the coordinator's trace-context resolver:
// every participant call addressed to a transaction then carries that
// transaction's context in its frame, which is what lets the remote
// daemon's spans stitch into the coordinator's trace. Call before the
// backend serves traffic.
func (rs *RemoteSite) SetTraceLookup(f func(core.TxnID) telemetry.TraceContext) {
	rs.traceOf = f
}

// tc resolves the transaction's trace context (zero when tracing is
// off or no resolver is installed).
func (rs *RemoteSite) tc(id core.TxnID) telemetry.TraceContext {
	if rs.traceOf == nil {
		return telemetry.TraceContext{}
	}
	return rs.traceOf(id)
}

// mapErr turns transport loss into the sentinel the coordinator's
// failure handling branches on. Typed remote errors pass through
// (decodeErr already rebuilt their chains).
func (rs *RemoteSite) mapErr(err error) error {
	if errors.Is(err, ErrPeerDown) {
		return fmt.Errorf("wire: site %d unreachable: %w", rs.sid, fault.ErrSiteDown)
	}
	return err
}

// req starts a request payload addressed to this site.
func (rs *RemoteSite) req(extra int) []byte {
	b := make([]byte, 0, 2+extra)
	return appendU16(b, rs.sid)
}

// guard fails fast while the site is in the crashed state — between
// the cluster observing the connection loss and Restart completing
// reconciliation, no call may reach the daemon (it could be back up
// with unreconciled orphans).
func (rs *RemoteSite) guard() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.down {
		return fmt.Errorf("wire: site %d crashed: %w", rs.sid, fault.ErrSiteDown)
	}
	return nil
}

// applyReport replaces the edge cache with the response's report of
// every live transaction at the site.
func (rs *RemoteSite) applyReport(sets []edgeSet) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	cache := make(map[core.TxnID][]depgraph.Edge, len(sets))
	for _, s := range sets {
		cache[s.txn] = s.edges
	}
	rs.cache = cache
}

// ---- core.Participant ----

// Begin registers the transaction at the remote site.
func (rs *RemoteSite) Begin(id core.TxnID) error {
	if err := rs.guard(); err != nil {
		return err
	}
	b := appendU64(rs.req(8), uint64(id))
	r, err := rs.peer.callT(kBegin, rs.tc(id), b)
	if err != nil {
		return rs.mapErr(err)
	}
	rs.applyReport(r.edgeSets())
	return r.err
}

// RequestInto executes op on obj at the remote site.
func (rs *RemoteSite) RequestInto(eff *core.Effects, id core.TxnID, obj core.ObjectID, op adt.Op) (core.Decision, error) {
	eff.Reset()
	if err := rs.guard(); err != nil {
		return core.Decision{}, err
	}
	b := appendU64(rs.req(32), uint64(id))
	b = appendU64(b, uint64(obj))
	b = appendOp(b, op)
	r, err := rs.peer.callT(kRequest, rs.tc(id), b)
	if err != nil {
		return core.Decision{}, rs.mapErr(err)
	}
	dec := core.Decision{Outcome: core.Outcome(r.u8())}
	dec.Ret = r.ret()
	dec.Reason = core.AbortReason(r.u8())
	r.effects(eff)
	rs.applyReport(r.edgeSets())
	return dec, r.err
}

// CommitInto commits the transaction locally at the remote site.
func (rs *RemoteSite) CommitInto(eff *core.Effects, id core.TxnID) (core.CommitStatus, error) {
	eff.Reset()
	if err := rs.guard(); err != nil {
		return 0, err
	}
	b := appendU64(rs.req(8), uint64(id))
	r, err := rs.peer.callT(kCommit, rs.tc(id), b)
	if err != nil {
		return 0, rs.mapErr(err)
	}
	st := core.CommitStatus(r.u8())
	r.effects(eff)
	rs.applyReport(r.edgeSets())
	return st, r.err
}

// CommitHoldInto pseudo-commits and holds at the remote site. The
// response's edge report is what makes the conversation's subsequent
// edge read free: dist calls OutEdgesAppend right after this under the
// same site mutex, and the cache already holds the answer.
func (rs *RemoteSite) CommitHoldInto(eff *core.Effects, id core.TxnID) (int, error) {
	eff.Reset()
	if err := rs.guard(); err != nil {
		return 0, err
	}
	b := appendU64(rs.req(8), uint64(id))
	r, err := rs.peer.callT(kCommitHold, rs.tc(id), b)
	if err != nil {
		return 0, rs.mapErr(err)
	}
	deg := clampLen(r.i64())
	r.effects(eff)
	rs.applyReport(r.edgeSets())
	if r.err != nil {
		return 0, r.err
	}
	if deg < 0 {
		return 0, fmt.Errorf("wire: site %d: bad out-degree", rs.sid)
	}
	return deg, nil
}

// ReleaseInto really commits a held transaction at the remote site.
func (rs *RemoteSite) ReleaseInto(eff *core.Effects, id core.TxnID) error {
	return rs.effectsCall(kRelease, eff, id)
}

// AbortInto aborts the transaction at the remote site.
func (rs *RemoteSite) AbortInto(eff *core.Effects, id core.TxnID) error {
	return rs.effectsCall(kAbort, eff, id)
}

// WithdrawInto abandons the transaction's blocked request.
func (rs *RemoteSite) WithdrawInto(eff *core.Effects, id core.TxnID) error {
	return rs.effectsCall(kWithdraw, eff, id)
}

// effectsCall is the shared shape of Release/Abort/Withdraw: txn id
// out, effects + edge report back.
func (rs *RemoteSite) effectsCall(kind uint8, eff *core.Effects, id core.TxnID) error {
	eff.Reset()
	if err := rs.guard(); err != nil {
		return err
	}
	b := appendU64(rs.req(8), uint64(id))
	r, err := rs.peer.callT(kind, rs.tc(id), b)
	if err != nil {
		return rs.mapErr(err)
	}
	r.effects(eff)
	rs.applyReport(r.edgeSets())
	return r.err
}

// RevokeInto aborts a held pseudo-committed transaction (presumed
// abort) at the remote site.
func (rs *RemoteSite) RevokeInto(eff *core.Effects, id core.TxnID, reason core.AbortReason) error {
	eff.Reset()
	if err := rs.guard(); err != nil {
		return err
	}
	b := appendU64(rs.req(9), uint64(id))
	b = appendU8(b, uint8(reason))
	r, err := rs.peer.callT(kRevoke, rs.tc(id), b)
	if err != nil {
		return rs.mapErr(err)
	}
	r.effects(eff)
	rs.applyReport(r.edgeSets())
	return r.err
}

// OutEdgesAppend serves the transaction's out-edges from the cache —
// no network. dist reads edges only after a mutating call on the same
// site mutex, so the cache is current by construction.
func (rs *RemoteSite) OutEdgesAppend(id core.TxnID, buf []depgraph.Edge) []depgraph.Edge {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append(buf[:0], rs.cache[id]...)
}

// Forget drops the transaction's bookkeeping. It is fire-and-forget on
// the wire (correlation id 0): nothing downstream depends on its
// completion, so the conversation does not wait on it.
func (rs *RemoteSite) Forget(id core.TxnID) {
	rs.mu.Lock()
	delete(rs.cache, id)
	down := rs.down
	rs.mu.Unlock()
	if down {
		return
	}
	rs.peer.oneway(kForget, appendU64(rs.req(8), uint64(id)))
}

// ---- dist.SiteBackend extras ----

// Register installs the object at the remote site. Only the id
// crosses the wire: the daemon resolves the type and classifier from
// its own workload spec (see workload.ParseSpec), because adt.Type
// carries behaviour that cannot be serialised.
func (rs *RemoteSite) Register(id core.ObjectID, typ adt.Type, class compat.Classifier) error {
	if err := rs.guard(); err != nil {
		return err
	}
	_, _ = typ, class
	r, err := rs.peer.call(kRegister, appendU64(rs.req(8), uint64(id)))
	if err != nil {
		return rs.mapErr(err)
	}
	return r.err
}

// SetFactory is a documented no-op: remote daemons install their
// factory from the cluster config's workload spec at startup, so both
// processes agree on object types without closures crossing the wire.
func (rs *RemoteSite) SetFactory(f func(core.ObjectID) (adt.Type, compat.Classifier)) {}

// StatsSnapshot fetches the remote scheduler's counters.
func (rs *RemoteSite) StatsSnapshot() core.Stats {
	if err := rs.guard(); err != nil {
		return core.Stats{}
	}
	r, err := rs.peer.call(kStats, rs.req(0))
	if err != nil {
		return core.Stats{}
	}
	st := r.stats()
	if r.err != nil {
		return core.Stats{}
	}
	return st
}

// ObjectState fetches the object's current state as a RemoteState
// summary (description plus length).
func (rs *RemoteSite) ObjectState(id core.ObjectID) (adt.State, error) {
	return rs.stateCall(id, false)
}

// CommittedState fetches the object's committed state summary.
func (rs *RemoteSite) CommittedState(id core.ObjectID) (adt.State, error) {
	return rs.stateCall(id, true)
}

func (rs *RemoteSite) stateCall(id core.ObjectID, committed bool) (adt.State, error) {
	if err := rs.guard(); err != nil {
		return nil, err
	}
	b := appendU64(rs.req(9), uint64(id))
	var c uint8
	if committed {
		c = 1
	}
	b = appendU8(b, c)
	r, err := rs.peer.call(kStateLen, b)
	if err != nil {
		return nil, rs.mapErr(err)
	}
	st := &RemoteState{Desc: r.str(), N: int(r.i64())}
	if r.err != nil {
		return nil, r.err
	}
	return st, nil
}

// TxnState fetches the transaction's state string; transport loss
// reads as "site-down", matching fault.Crashable.
func (rs *RemoteSite) TxnState(id core.TxnID) string {
	if err := rs.guard(); err != nil {
		return "site-down"
	}
	r, err := rs.peer.call(kTxnState, appendU64(rs.req(8), uint64(id)))
	if err != nil {
		return "site-down"
	}
	s := r.str()
	if r.err != nil {
		return "unknown"
	}
	return s
}

// OutDegree is the cached out-edge count.
func (rs *RemoteSite) OutDegree(id core.TxnID) int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.cache[id])
}

// OutEdgesOf is the cached out-edge set.
func (rs *RemoteSite) OutEdgesOf(id core.TxnID) []depgraph.Edge {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]depgraph.Edge(nil), rs.cache[id]...)
}

// ---- dist.CrashRestarter ----

// Crash marks the site failed: the edge cache is dropped and every
// call answers fault.ErrSiteDown until Restart. The cluster invokes it
// when the peer connection dies (and in tests, to simulate a failure).
func (rs *RemoteSite) Crash() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.down = true
	rs.cache = make(map[core.TxnID][]depgraph.Edge)
	return nil
}

// Down reports whether the site is in the crashed state.
func (rs *RemoteSite) Down() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.down
}

// Restart reconciles a re-reachable daemon with the coordinator's
// decision log and brings the site back into rotation. The daemon
// reports its live transactions; orphaned actives are aborted, and
// each in-doubt hold is resolved by the log — logged decision means
// the global commit happened, so the hold is released (reported in
// Redone, which the cluster acks); no logged decision means presumed
// abort, so the hold is revoked. Release order is free: a logged
// decision implies the transaction's global out-degree was zero, so a
// logged hold has no out-edges at any site.
//
// The same routine serves both reconnect-after-blip (daemon kept its
// state; the coordinator doomed what it had to while the site was
// unreachable) and coordinator startup adoption (the daemon outlived a
// coordinator crash), because resolution is purely log-driven per
// transaction.
func (rs *RemoteSite) Restart() (fault.RecoveryReport, error) {
	var rep fault.RecoveryReport
	if !rs.peer.Up() {
		return rep, fmt.Errorf("wire: site %d still unreachable: %w", rs.sid, fault.ErrSiteDown)
	}
	r, err := rs.peer.call(kAdopt, rs.req(0))
	if err != nil {
		return rep, rs.mapErr(err)
	}
	type entry struct {
		txn  core.TxnID
		kind uint8
	}
	n := r.count(9)
	entries := make([]entry, 0, n)
	for ; n > 0; n-- {
		entries = append(entries, entry{txn: core.TxnID(r.u64()), kind: r.u8()})
	}
	sets := r.edgeSets()
	if r.err != nil {
		return rep, r.err
	}
	rs.applyReport(sets)
	var eff core.Effects
	for _, e := range entries {
		switch e.kind {
		case adoptActive:
			// A still-active transaction with a logged decision is a
			// direct commit the crashed coordinator logged but never
			// delivered: redo the commit. Unlogged actives are orphans
			// whose client will retry — abort them.
			if rs.decided != nil && rs.decided(e.txn) {
				b := appendU64(rs.req(8), uint64(e.txn))
				rr, err := rs.peer.call(kCommit, b)
				switch {
				case err == nil:
					if rr.err == nil {
						_ = rr.u8() // commit status
						eff.Reset()
						rr.effects(&eff)
						rs.applyReport(rr.edgeSets())
					}
				case errors.Is(err, core.ErrUnknownTxn), errors.Is(err, core.ErrTxnTerminated):
					// The live conversation landed this commit (and may
					// have forgotten the transaction) between the adopt
					// snapshot and this redo: with the decision logged,
					// terminated can only mean committed.
				default:
					return rep, rs.mapErr(err)
				}
				rep.Redone = append(rep.Redone, e.txn)
				continue
			}
			b := appendU64(rs.req(8), uint64(e.txn))
			if r, err := rs.peer.call(kAbort, b); err != nil {
				if !errors.Is(err, core.ErrUnknownTxn) {
					return rep, rs.mapErr(err)
				}
				// Aborted and forgotten concurrently — already resolved.
			} else if r.err == nil {
				eff.Reset()
				r.effects(&eff)
				rs.applyReport(r.edgeSets())
			}
			rep.Aborted = append(rep.Aborted, e.txn)
		case adoptHeld:
			logged := rs.decided != nil && rs.decided(e.txn)
			kind := kRevoke
			b := appendU64(rs.req(9), uint64(e.txn))
			if logged {
				kind = kRelease
			} else {
				b = appendU8(b, uint8(core.ReasonSiteFailed))
			}
			rr, err := rs.peer.call(kind, b)
			if err != nil {
				if !errors.Is(err, core.ErrUnknownTxn) {
					return rep, rs.mapErr(err)
				}
				// Resolved and forgotten by the live conversation between
				// the adopt snapshot and this verb — nothing left to do.
			} else if rr.err == nil {
				eff.Reset()
				rr.effects(&eff)
				rs.applyReport(rr.edgeSets())
			}
			if logged {
				rep.Redone = append(rep.Redone, e.txn)
			} else {
				rep.PresumedAborted = append(rep.PresumedAborted, e.txn)
			}
		}
	}
	rs.mu.Lock()
	rs.down = false
	rs.mu.Unlock()
	return rep, nil
}

// RemoteState is the summary form object state crosses the wire in: a
// printable description plus the state's length when it has one (-1
// otherwise). Conservation checks over the wire sum Len.
type RemoteState struct {
	Desc string
	N    int
}

// Clone returns a copy.
func (s *RemoteState) Clone() adt.State { c := *s; return &c }

// Equal compares against another remote summary.
func (s *RemoteState) Equal(o adt.State) bool {
	r, ok := o.(*RemoteState)
	return ok && r.Desc == s.Desc && r.N == s.N
}

// String returns the remote state's own description.
func (s *RemoteState) String() string { return s.Desc }

// Len is the remote state's length (-1 when the type has none).
func (s *RemoteState) Len() int { return s.N }
