package wire

import (
	"sync"
	"time"

	"repro/internal/dist"
)

// resyncDelay is the pause before a PeerBinding retries a failed
// restart while the connection is still in its up phase (the
// reconcile raced a blip, or a transient daemon error). The chain
// stops as soon as the sites are up or a down transition supersedes
// it.
const resyncDelay = 250 * time.Millisecond

// PeerBinding maps one peer's connection state onto the cluster's
// crash-stop model: connection loss is the crash of every site the
// daemon serves, reconnection is their restart (reconciliation against
// the decision log). Install Down/Up as the peer's OnDown/OnUp and
// call Bind once the cluster exists — transitions before then are
// ignored, which is what makes the construction order (peer first,
// cluster second) safe.
//
// The callbacks fire from different peer goroutines and can acquire
// the binding mutex out of event order under rapid drop/redial cycles
// — a stale down event applied after the up event of a newer
// connection would crash the sites with no later event ever
// restarting them. The connection incarnation the peer passes to each
// callback totally orders the events (up(g) precedes down(g) precedes
// up(g+1) in real time), and the binding discards any event older
// than the newest it has applied. A discarded down is still a real
// disconnect: when an up supersedes an older generation's up
// directly, the binding synthesizes the missed crash before
// reconciling, so every drop reconciles exactly as if its down event
// had won the race.
type PeerBinding struct {
	mu      sync.Mutex
	c       *dist.Cluster
	sids    []dist.SiteID
	lastKey int  // 2*gen for up events, 2*gen+1 for down events
	upPhase bool // phase of the newest applied event
	pending bool // a delayed restart retry is already scheduled
}

// AddSite registers a site served by the bound peer.
func (b *PeerBinding) AddSite(sid dist.SiteID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sids = append(b.sids, sid)
}

// Bind attaches the cluster; transitions start taking effect.
func (b *PeerBinding) Bind(c *dist.Cluster) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.c = c
}

// Down crashes every bound site that is still up, unless a newer
// transition has already been applied.
func (b *PeerBinding) Down(gen int) { b.apply(2*gen+1, false) }

// Up restarts every bound site that is down, unless a newer
// transition has already been applied. A failed restart (the
// connection died again mid-reconciliation, or the daemon answered a
// transient error) is retried after resyncDelay for as long as the
// binding stays in its up phase.
func (b *PeerBinding) Up(gen int) { b.apply(2*gen, true) }

func (b *PeerBinding) apply(key int, up bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.c == nil || key < b.lastKey {
		return
	}
	// An up event superseding the up of an OLDER generation means the
	// down between them lost the mutex race and was discarded. The
	// disconnect was real — and the new connection may be to a
	// restarted daemon that lost its state — so synthesize the missed
	// crash before reconciling, in the same critical section.
	if up && b.lastKey < key && b.lastKey%2 == 0 {
		b.upPhase = false
		b.applyLocked()
	}
	b.lastKey = key
	b.upPhase = up
	b.applyLocked()
}

// applyLocked drives the sites toward the current phase. Caller holds
// b.mu.
func (b *PeerBinding) applyLocked() {
	if !b.upPhase {
		for _, sid := range b.sids {
			if !b.c.SiteDown(sid) {
				_ = b.c.Crash(sid)
			}
		}
		return
	}
	failed := false
	for _, sid := range b.sids {
		if b.c.SiteDown(sid) {
			if _, err := b.c.Restart(sid); err != nil {
				failed = true
			}
		}
	}
	if failed && !b.pending {
		b.pending = true
		time.AfterFunc(resyncDelay, b.retry)
	}
}

// retry re-runs the up-phase reconcile a failed restart left behind.
// Not an event: it carries no ordering key, and a down transition
// applied meanwhile simply makes it a no-op.
func (b *PeerBinding) retry() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pending = false
	if b.c != nil && b.upPhase {
		b.applyLocked()
	}
}
