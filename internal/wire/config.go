package wire

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/dist"
	"repro/internal/workload"
)

// ClusterFile is the JSON cluster description the sccd and sccctl
// binaries share: one file describes the whole deployment, and every
// process picks its own role out of it.
//
//	{
//	  "client":   "127.0.0.1:7400",
//	  "log":      "/var/tmp/scc/decision.log",
//	  "sync":     false,
//	  "workload": "pushes:64",
//	  "daemons": [
//	    {"listen": "127.0.0.1:7401", "sites": [0, 1]},
//	    {"listen": "127.0.0.1:7402", "sites": [2, 3]}
//	  ]
//	}
type ClusterFile struct {
	// Client is the coordinator's client-plane listen address.
	Client string `json:"client"`
	// Log is the coordinator's decision-log file path.
	Log string `json:"log"`
	// Sync forces an fsync per decision record (slower, survives OS
	// crash; off survives process crash only).
	Sync bool `json:"sync"`
	// Workload names the workload spec (workload.ParseSpec) whose
	// object factory every site daemon and the coordinator install, so
	// all processes agree on object types without code crossing the
	// wire.
	Workload string `json:"workload"`
	// Policy optionally names the coordinator's hold policy
	// (dist.ParsePolicy syntax: "depth=N", "eager", "admit=H/L"; empty
	// or "off" holds unboundedly).
	Policy string `json:"policy,omitempty"`
	// Debug is the coordinator's debug-plane HTTP listen address
	// (/metrics, /statusz, /tracez, pprof); empty disables it.
	Debug string `json:"debug,omitempty"`
	// Trace sizes the coordinator's conversation-event ring for
	// /tracez; 0 disables tracing.
	Trace int `json:"trace,omitempty"`
	// Spans sizes every process's causal span ring (coordinator and
	// site daemons alike); 0 disables the span plane cluster-wide.
	Spans int `json:"spans,omitempty"`
	// SpanExemplars bounds each process's pinned tail-latency exemplar
	// store; 0 picks a small default.
	SpanExemplars int `json:"span_exemplars,omitempty"`
	// SampleRate is the traced fraction of transactions in [0,1]; 0
	// means sample everything when the span plane is on.
	SampleRate float64 `json:"sample_rate,omitempty"`
	// SampleSeed seeds the deterministic trace sampler; every process
	// derives the same trace ids from it.
	SampleSeed int64 `json:"sample_seed,omitempty"`
	// Flight sizes every process's flight-recorder ring; 0 disables
	// the black box.
	Flight int `json:"flight,omitempty"`
	// FlightDir is where flight dumps land (default: the working
	// directory of each process).
	FlightDir string `json:"flight_dir,omitempty"`
	// Daemons places the global site ids onto site-daemon processes.
	Daemons []DaemonSpec `json:"daemons"`
}

// LoadClusterFile reads and validates a cluster description.
func LoadClusterFile(path string) (*ClusterFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f ClusterFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("wire: cluster file %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("wire: cluster file %s: %w", path, err)
	}
	return &f, nil
}

// NumSites returns the total number of global sites the file places.
func (f *ClusterFile) NumSites() int {
	n := 0
	for _, d := range f.Daemons {
		n += len(d.Sites)
	}
	return n
}

// Validate checks the file is a runnable deployment: a client address,
// a parseable workload (when present), and a site placement covering
// exactly 0..N-1.
func (f *ClusterFile) Validate() error {
	if f.Client == "" {
		return fmt.Errorf("missing client address")
	}
	if len(f.Daemons) == 0 {
		return fmt.Errorf("no daemons")
	}
	n := f.NumSites()
	seen := make(map[uint16]bool, n)
	for i, d := range f.Daemons {
		if d.Listen == "" {
			return fmt.Errorf("daemon %d: missing listen address", i)
		}
		if len(d.Sites) == 0 {
			return fmt.Errorf("daemon %d: no sites", i)
		}
		for _, sid := range d.Sites {
			if int(sid) >= n || seen[sid] {
				return fmt.Errorf("daemon %d: bad site placement %d (want each of 0..%d exactly once)", i, sid, n-1)
			}
			seen[sid] = true
		}
	}
	if f.Workload != "" {
		if _, err := workload.ParseSpec(f.Workload); err != nil {
			return err
		}
	}
	if _, err := dist.ParsePolicy(f.Policy); err != nil {
		return err
	}
	return nil
}
