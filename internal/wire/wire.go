// Package wire is the cluster's network transport: a length-prefixed
// binary framing layer and the two RPC planes built on it.
//
// The participant plane carries the coordinator's core.Participant
// calls to remote site daemons: RemoteSite implements dist.SiteBackend
// over a Peer connection, so a dist.Cluster built with Config.Backends
// runs the paper's commit conversation across processes without
// changing a line of coordinator logic. Every response that carries
// scheduler effects also carries a batched edge report — the site's
// current out-edges for the calling transaction, every transaction the
// response granted, and everything still live there — so the
// coordinator's observe/refreshParked reads (OutEdgesAppend) are served
// from a local cache and the commit conversation's hold phase stays one
// round trip per site.
//
// The client plane carries core.Store calls from a remote client
// (sccctl, or any process using Client) to the coordinator. Commits are
// exactly-once across coordinator crashes: the coordinator gates each
// decision's log truncation on a client acknowledgement
// (dist.GateDecision), so a client whose connection died mid-commit
// reconnects and Resolves the transaction against the decision log —
// logged means committed, unlogged means presumed abort, never both.
//
// Frame format (all integers little-endian):
//
//	u32 length | u64 correlation id | u8 kind | payload
//
// length counts everything after itself. Requests carry a fresh
// correlation id; the matching response echoes it, so many requests can
// be in flight on one connection (pipelining). Correlation id 0 marks a
// one-way request (no response; used for Forget and client acks).
package wire

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
)

// MaxFrame bounds a frame's length field — a corrupt or hostile peer
// cannot make us allocate unboundedly.
const MaxFrame = 16 << 20

// ErrPeerDown reports that the remote process is unreachable: the
// connection is gone and redial has not succeeded yet. Participant-
// plane calls wrap it in fault.ErrSiteDown (what dist maps to a
// retryable ReasonSiteFailed abort); client-plane calls wrap it in a
// retryable *core.ErrAborted.
var ErrPeerDown = errors.New("wire: peer is down")

// Error codes carried by kErr responses, so typed sentinel errors
// survive the wire: the coordinator's failure handling branches on
// errors.Is(err, fault.ErrSiteDown / core.ErrUnknownTxn /
// core.ErrTxnTerminated), and those must keep matching when the
// participant is remote.
const (
	ceGeneric uint8 = iota
	ceSiteDown
	ceUnknownTxn
	ceTxnTerminated
	ceAborted // payload carries txn id + reason: decodes to *core.ErrAborted
	ceClosed
	ceTxnDone
)

// encodeErr classifies err into a wire error code plus the abort
// details when it is a typed abort.
func encodeErr(err error) (code uint8, txn core.TxnID, reason core.AbortReason, msg string) {
	msg = err.Error()
	var ab *core.ErrAborted
	switch {
	case errors.As(err, &ab):
		return ceAborted, ab.Txn, ab.Reason, msg
	case errors.Is(err, fault.ErrSiteDown):
		return ceSiteDown, 0, 0, msg
	case errors.Is(err, core.ErrUnknownTxn):
		return ceUnknownTxn, 0, 0, msg
	case errors.Is(err, core.ErrTxnTerminated):
		return ceTxnTerminated, 0, 0, msg
	case errors.Is(err, core.ErrClosed):
		return ceClosed, 0, 0, msg
	case errors.Is(err, core.ErrTxnDone):
		return ceTxnDone, 0, 0, msg
	}
	return ceGeneric, 0, 0, msg
}

// decodeErr reverses encodeErr: the returned error wraps the matching
// sentinel so errors.Is/errors.As work as if the call had been local.
func decodeErr(code uint8, txn core.TxnID, reason core.AbortReason, msg string) error {
	switch code {
	case ceAborted:
		return fmt.Errorf("remote: %w", &core.ErrAborted{Txn: txn, Reason: reason})
	case ceSiteDown:
		return fmt.Errorf("remote (%s): %w", msg, fault.ErrSiteDown)
	case ceUnknownTxn:
		return fmt.Errorf("remote (%s): %w", msg, core.ErrUnknownTxn)
	case ceTxnTerminated:
		return fmt.Errorf("remote (%s): %w", msg, core.ErrTxnTerminated)
	case ceClosed:
		return fmt.Errorf("remote (%s): %w", msg, core.ErrClosed)
	case ceTxnDone:
		return fmt.Errorf("remote (%s): %w", msg, core.ErrTxnDone)
	}
	return fmt.Errorf("remote: %s", msg)
}

// Message kinds. kOK/kErr are responses; the request's sender knows
// which payload shape to expect from the kind it sent.
const (
	kOK  uint8 = 0x01
	kErr uint8 = 0x02

	// Participant plane: coordinator -> site daemon. Payloads start
	// with the global site id (u16) the call addresses; one daemon can
	// serve several sites on one connection.
	kBegin      uint8 = 0x10
	kRequest    uint8 = 0x11
	kCommit     uint8 = 0x12
	kCommitHold uint8 = 0x13
	kRelease    uint8 = 0x14
	kAbort      uint8 = 0x15
	kRevoke     uint8 = 0x16
	kWithdraw   uint8 = 0x17
	kForget     uint8 = 0x18
	kRegister   uint8 = 0x19
	kFactory    uint8 = 0x1a
	kStats      uint8 = 0x1b
	kStateLen   uint8 = 0x1c
	kTxnState   uint8 = 0x1d
	kAdopt      uint8 = 0x1e
	kPing       uint8 = 0x1f
	kShutdown   uint8 = 0x20

	// Client plane: client -> coordinator.
	kCliBegin    uint8 = 0x30
	kCliDo       uint8 = 0x31
	kCliCommit   uint8 = 0x32
	kCliAbort    uint8 = 0x33
	kCliWait     uint8 = 0x34
	kCliResolve  uint8 = 0x35
	kCliAck      uint8 = 0x36
	kCliStatus   uint8 = 0x37
	kCliStateLen uint8 = 0x38
	kCliRegister uint8 = 0x39
)

// Adopt-report transaction states (see SiteServer's adopt handler).
const (
	adoptActive uint8 = iota // active or blocked: an orphan to abort
	adoptHeld                // pseudo-committed-and-held: in doubt
)
