package sim

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// smallCfg returns a quick configuration for tests.
func smallCfg(w workload.Generator, mpl int, seed int64) Config {
	cfg := Default(w, mpl, seed)
	cfg.Terminals = 50
	cfg.Completions = 600
	cfg.Warmup = 60
	return cfg
}

func rw() workload.Generator { return workload.ReadWrite{DBSize: 200, WriteProb: 0.3} }

func TestSimulateBasic(t *testing.T) {
	run, err := Simulate(smallCfg(rw(), 25, 1))
	if err != nil {
		t.Fatal(err)
	}
	if run.Completed != 600 {
		t.Errorf("completed = %d, want 600", run.Completed)
	}
	if run.SimTime <= 0 {
		t.Errorf("simulated time = %v", run.SimTime)
	}
	if run.Throughput() <= 0 {
		t.Errorf("throughput = %v", run.Throughput())
	}
	if run.ResponseTime() <= 0 {
		t.Errorf("response time = %v", run.ResponseTime())
	}
}

// TestDeterminism: identical seeds give bit-identical metrics;
// different seeds differ somewhere.
func TestDeterminism(t *testing.T) {
	a, err := Simulate(smallCfg(rw(), 25, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(smallCfg(rw(), 25, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := Simulate(smallCfg(rw(), 25, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// TestRecoverabilityBeatsCommutativity is the paper's headline claim at
// simulation level: with meaningful data contention the recoverability
// predicate yields at least the commutativity baseline's throughput,
// and lower blocking.
func TestRecoverabilityBeatsCommutativity(t *testing.T) {
	cfg := smallCfg(workload.ReadWrite{DBSize: 300, WriteProb: 0.3}, 50, 3)
	cfg.Completions = 1500
	cfg.Warmup = 150

	cfg.Predicate = core.PredRecoverability
	recRuns, err := SimulateRuns(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Predicate = core.PredCommutativity
	commRuns, err := SimulateRuns(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	recTP, _ := metrics.AggregateRuns(recRuns, metrics.Throughput)
	commTP, _ := metrics.AggregateRuns(commRuns, metrics.Throughput)
	if recTP.Mean < commTP.Mean {
		t.Errorf("throughput: recoverability %.2f < commutativity %.2f", recTP.Mean, commTP.Mean)
	}
	recBR, _ := metrics.AggregateRuns(recRuns, metrics.BlockingRatio)
	commBR, _ := metrics.AggregateRuns(commRuns, metrics.BlockingRatio)
	if recBR.Mean > commBR.Mean {
		t.Errorf("blocking ratio: recoverability %.3f > commutativity %.3f", recBR.Mean, commBR.Mean)
	}
	recRT, _ := metrics.AggregateRuns(recRuns, metrics.ResponseTime)
	commRT, _ := metrics.AggregateRuns(commRuns, metrics.ResponseTime)
	if recRT.Mean > commRT.Mean*1.05 {
		t.Errorf("response time: recoverability %.3f noticeably above commutativity %.3f", recRT.Mean, commRT.Mean)
	}
}

// TestFiniteResourcesSlower: with one resource unit the same workload
// takes longer per transaction than with infinite resources.
func TestFiniteResourcesSlower(t *testing.T) {
	cfg := smallCfg(rw(), 25, 5)
	inf, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ResourceUnits = 1
	one, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if one.Throughput() >= inf.Throughput() {
		t.Errorf("1 resource unit throughput %.2f >= infinite %.2f", one.Throughput(), inf.Throughput())
	}
	if one.ResponseTime() <= inf.ResponseTime() {
		t.Errorf("1 resource unit response %.3f <= infinite %.3f", one.ResponseTime(), inf.ResponseTime())
	}
}

// TestAbstractWorkload: the ADT model runs, and more recoverability
// (higher Pr) means less blocking on the same seed.
func TestAbstractWorkload(t *testing.T) {
	mk := func(pr int) workload.Generator {
		return workload.Abstract{DBSize: 120, Sigma: 4, Pc: 4, Pr: pr, TableSeed: 99}
	}
	cfg := smallCfg(mk(0), 50, 2)
	r0, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = mk(8)
	r8, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r8.BlockingRatio() >= r0.BlockingRatio() {
		t.Errorf("Pr=8 blocking ratio %.3f >= Pr=0 %.3f", r8.BlockingRatio(), r0.BlockingRatio())
	}
	if r8.Throughput() <= r0.Throughput() {
		t.Errorf("Pr=8 throughput %.2f <= Pr=0 %.2f", r8.Throughput(), r0.Throughput())
	}
}

// TestMixWorkload: the realistic stack/set/table mix completes cleanly
// under both recovery strategies with identical results (determinism of
// the protocol is recovery-agnostic).
func TestMixWorkload(t *testing.T) {
	cfg := smallCfg(workload.Mix{DBSize: 90, ArgRange: 6}, 25, 4)
	cfg.Recovery = core.RecoveryIntentions
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recovery = core.RecoveryUndo
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("recovery strategies diverged:\n%+v\n%+v", a, b)
	}
}

// TestAblationPseudoCommit: at moderate contention (where the MPL slot
// pressure pseudo-commit relieves is not itself the bottleneck),
// disabling pseudo-commit increases response time — completion waits
// for the real commit. In deep-thrash regimes the comparison can
// invert because deferred completions throttle admission; the ablation
// benchmark sweeps both.
func TestAblationPseudoCommit(t *testing.T) {
	cfg := smallCfg(workload.ReadWrite{DBSize: 600, WriteProb: 0.3}, 25, 6)
	on, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisablePseudoCommit = true
	off, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if off.ResponseTime() < on.ResponseTime() {
		t.Errorf("response without pseudo-commit %.3f < with %.3f", off.ResponseTime(), on.ResponseTime())
	}
}

// TestFakeRestarts: the alternative restart policy runs to completion.
func TestFakeRestarts(t *testing.T) {
	cfg := smallCfg(workload.ReadWrite{DBSize: 60, WriteProb: 0.5}, 50, 9)
	cfg.FakeRestarts = true
	run, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Completed != cfg.Completions {
		t.Errorf("completed = %d", run.Completed)
	}
}

// TestUnfairScheduling runs the unfair variant (Figures 8–9) and
// checks it blocks no more than fair scheduling on the same seed.
func TestUnfairScheduling(t *testing.T) {
	cfg := smallCfg(workload.ReadWrite{DBSize: 300, WriteProb: 0.3}, 50, 10)
	fair, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Unfair = true
	unfair, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if unfair.BlockingRatio() > fair.BlockingRatio() {
		t.Errorf("unfair blocking ratio %.3f > fair %.3f", unfair.BlockingRatio(), fair.BlockingRatio())
	}
}

func TestConfigValidation(t *testing.T) {
	good := smallCfg(rw(), 10, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Workload = nil }, "workload"},
		{func(c *Config) { c.Terminals = 0 }, "Terminals"},
		{func(c *Config) { c.MPL = 0 }, "MPL"},
		{func(c *Config) { c.MinLength = 0 }, "length"},
		{func(c *Config) { c.MaxLength = 1 }, "length"},
		{func(c *Config) { c.StepTime = 0 }, "StepTime"},
		{func(c *Config) { c.ResourceUnits = -1 }, "ResourceUnits"},
		{func(c *Config) { c.ResourceUnits = 2; c.CPUTime = 0 }, "CPUTime"},
		{func(c *Config) { c.ThinkTime = -1 }, "ThinkTime"},
		{func(c *Config) { c.Completions = 0 }, "Completions"},
		{func(c *Config) { c.Warmup = -1 }, "Warmup"},
	}
	for _, c := range cases {
		cfg := good
		c.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("mutation %q: err = %v", c.want, err)
		}
		if _, simErr := Simulate(cfg); simErr == nil {
			t.Errorf("Simulate accepted invalid config (%s)", c.want)
		}
	}
}

func TestMaxEventsGuard(t *testing.T) {
	cfg := smallCfg(rw(), 10, 1)
	if cfg.maxEvents() < 1_000_000 {
		t.Error("default guard too small")
	}
	cfg.MaxEvents = 10
	if cfg.maxEvents() != 10 {
		t.Error("explicit guard ignored")
	}
	_, err := Simulate(cfg)
	if err == nil || !strings.Contains(err.Error(), "event guard") {
		t.Errorf("guard did not trip: %v", err)
	}
}

// TestSimulateRunsSeeds: n runs use consecutive seeds and all complete.
func TestSimulateRunsSeeds(t *testing.T) {
	cfg := smallCfg(rw(), 10, 42)
	cfg.Completions = 200
	cfg.Warmup = 20
	runs, err := SimulateRuns(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0] == runs[1] && runs[1] == runs[2] {
		t.Error("all runs identical — seeds not advancing")
	}
	single, err := Simulate(Config(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if runs[0] != single {
		t.Error("first run should equal a single run with the base seed")
	}
}
