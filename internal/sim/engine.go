package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// procPhase tracks where a transaction is in its lifecycle.
type procPhase uint8

const (
	phReady    procPhase = iota // waiting in the ready queue
	phRunning                   // between events (issuing requests)
	phBlocked                   // waiting for a conflicting operation
	phResource                  // consuming CPU/disk or flat step time
	phDone                      // completed (pseudo-committed or committed)
)

// proc is one in-flight transaction (a terminal's current submission,
// across restarts).
type proc struct {
	txn       core.TxnID // current incarnation
	terminal  int
	steps     []workload.Step
	idx       int     // next step to issue
	submitted float64 // original submission time (survives restarts)
	phase     procPhase
	waitsReal bool // completion deferred to real commit (ablation A)
}

// Engine runs one simulation to completion.
type Engine struct {
	cfg   Config
	src   workload.Source
	rng   *rand.Rand
	sched *core.Scheduler

	tl Timeline[*event]

	readyQ []*proc
	active int // admitted, not yet completed transactions

	procs   map[core.TxnID]*proc
	nextTxn core.TxnID

	// Finite-resource state: one pool of CPUs, per-disk FIFO queues.
	freeCPUs int
	cpuQ     []*proc
	diskBusy []bool
	diskQ    [][]*proc

	// Counters (whole run; the measurement window is taken as a
	// delta).
	completions  int
	restarts     int
	abortOps     int
	sumResponse  float64
	inWindow     bool
	windowStart  float64
	baseStats    core.Stats
	baseRestarts int
	baseAbortOps int
	windowResp   float64
	windowCompl  int
}

// NewEngine builds an engine for the configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:   cfg,
		src:   workload.Source{Gen: cfg.Workload, MinLen: cfg.MinLength, MaxLen: cfg.MaxLength},
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		sched: core.NewScheduler(core.Options{Predicate: cfg.Predicate, Unfair: cfg.Unfair, Recovery: cfg.Recovery}),
		procs: make(map[core.TxnID]*proc),
	}
	e.sched.SetFactory(cfg.Workload.Factory())
	if cfg.ResourceUnits > 0 {
		e.freeCPUs = cfg.ResourceUnits
		nDisks := 2 * cfg.ResourceUnits
		e.diskBusy = make([]bool, nDisks)
		e.diskQ = make([][]*proc, nDisks)
	}
	return e, nil
}

// Run simulates until Warmup+Completions transactions complete and
// returns the measured window's metrics.
func (e *Engine) Run() (metrics.Run, error) {
	target := e.cfg.Warmup + e.cfg.Completions
	if e.cfg.Warmup == 0 {
		e.openWindow()
	}
	for t := 0; t < e.cfg.Terminals; t++ {
		e.schedule(e.think(), &event{kind: evArrive, terminal: t})
	}

	guard := e.cfg.maxEvents()
	for steps := 0; e.completions < target; steps++ {
		if steps >= guard {
			return metrics.Run{}, fmt.Errorf("sim: event guard tripped after %d events (%d/%d completions) — likely stall", steps, e.completions, target)
		}
		ev := e.nextEvent()
		if ev == nil {
			return metrics.Run{}, fmt.Errorf("sim: event queue drained at %d/%d completions", e.completions, target)
		}
		switch ev.kind {
		case evArrive:
			e.arrive(ev.terminal)
		case evOpDone:
			e.opComplete(ev.proc)
		case evCPUDone:
			e.cpuDone(ev.proc)
		case evDiskDone:
			e.diskDone(ev.proc, ev.disk)
		}
	}
	return e.window(), nil
}

// think draws an exponential terminal think time.
func (e *Engine) think() float64 {
	if e.cfg.ThinkTime == 0 {
		return e.tl.Now()
	}
	return e.tl.Now() + e.rng.ExpFloat64()*e.cfg.ThinkTime
}

// openWindow starts the measurement window.
func (e *Engine) openWindow() {
	e.inWindow = true
	e.windowStart = e.tl.Now()
	e.baseStats = e.sched.StatsSnapshot()
	e.baseRestarts = e.restarts
	e.baseAbortOps = e.abortOps
}

// window assembles the measured metrics.
func (e *Engine) window() metrics.Run {
	st := e.sched.StatsSnapshot()
	return metrics.Run{
		SimTime:       e.tl.Now() - e.windowStart,
		Completed:     e.windowCompl,
		TotalResponse: e.windowResp,
		Blocks:        int(st.Blocks - e.baseStats.Blocks),
		Restarts:      e.restarts - e.baseRestarts,
		CycleChecks:   int(st.CycleChecks - e.baseStats.CycleChecks),
		AbortOps:      e.abortOps - e.baseAbortOps,
	}
}

// arrive handles a terminal submitting a new transaction.
func (e *Engine) arrive(terminal int) {
	p := &proc{
		terminal:  terminal,
		steps:     e.src.Draw(e.rng),
		submitted: e.tl.Now(),
		phase:     phReady,
	}
	e.readyQ = append(e.readyQ, p)
	e.admit()
}

// admit starts ready transactions while the multiprogramming level
// allows.
func (e *Engine) admit() {
	for e.active < e.cfg.MPL && len(e.readyQ) > 0 {
		p := e.readyQ[0]
		e.readyQ = e.readyQ[1:]
		e.active++
		e.nextTxn++
		p.txn = e.nextTxn
		p.phase = phRunning
		e.procs[p.txn] = p
		if err := e.sched.Begin(p.txn); err != nil {
			panic(fmt.Sprintf("sim: Begin: %v", err)) // ids are fresh by construction
		}
		e.issueNext(p)
	}
}

// issueNext submits the transaction's next operation to the
// concurrency controller, or commits if it has none left.
func (e *Engine) issueNext(p *proc) {
	if p.idx >= len(p.steps) {
		e.finish(p)
		return
	}
	step := p.steps[p.idx]
	dec, eff, err := e.sched.Request(p.txn, step.Object, step.Op)
	if err != nil {
		panic(fmt.Sprintf("sim: Request: %v", err))
	}
	switch dec.Outcome {
	case core.Executed:
		p.idx++
		e.startResources(p)
	case core.Blocked:
		p.phase = phBlocked
	case core.Aborted:
		e.restartAborted(p)
	}
	e.applyEffects(eff)
}

// startResources charges the operation's service demand: a flat step
// under infinite resources, else a CPU burst followed by a disk access
// at a randomly chosen disk.
func (e *Engine) startResources(p *proc) {
	p.phase = phResource
	if e.cfg.ResourceUnits == 0 {
		e.schedule(e.tl.Now()+e.cfg.StepTime, &event{kind: evOpDone, proc: p})
		return
	}
	if e.freeCPUs > 0 {
		e.freeCPUs--
		e.schedule(e.tl.Now()+e.cfg.CPUTime, &event{kind: evCPUDone, proc: p})
	} else {
		e.cpuQ = append(e.cpuQ, p)
	}
}

// cpuDone releases the CPU to the next waiter and moves p to a disk.
func (e *Engine) cpuDone(p *proc) {
	if len(e.cpuQ) > 0 {
		next := e.cpuQ[0]
		e.cpuQ = e.cpuQ[1:]
		e.schedule(e.tl.Now()+e.cfg.CPUTime, &event{kind: evCPUDone, proc: next})
	} else {
		e.freeCPUs++
	}
	// "When a transaction needs to access a disk, it chooses a disk
	// randomly and waits in the queue of the selected disk."
	d := e.rng.Intn(len(e.diskBusy))
	if !e.diskBusy[d] {
		e.diskBusy[d] = true
		e.schedule(e.tl.Now()+e.cfg.IOTime, &event{kind: evDiskDone, proc: p, disk: d})
	} else {
		e.diskQ[d] = append(e.diskQ[d], p)
	}
}

// diskDone finishes p's disk access and starts the next queued one.
func (e *Engine) diskDone(p *proc, d int) {
	if len(e.diskQ[d]) > 0 {
		next := e.diskQ[d][0]
		e.diskQ[d] = e.diskQ[d][1:]
		e.schedule(e.tl.Now()+e.cfg.IOTime, &event{kind: evDiskDone, proc: next, disk: d})
	} else {
		e.diskBusy[d] = false
	}
	e.opComplete(p)
}

// opComplete moves to the next operation.
func (e *Engine) opComplete(p *proc) {
	p.phase = phRunning
	e.issueNext(p)
}

// finish commits the transaction. Completion (terminal release,
// response-time stop) happens at pseudo-commit time unless ablation A
// defers it to the real commit.
func (e *Engine) finish(p *proc) {
	status, eff, err := e.sched.Commit(p.txn)
	if err != nil {
		panic(fmt.Sprintf("sim: Commit: %v", err))
	}
	if status == core.Committed {
		e.complete(p)
		e.sched.Forget(p.txn)
		delete(e.procs, p.txn)
	} else if e.cfg.DisablePseudoCommit {
		p.waitsReal = true
		p.phase = phDone
	} else {
		e.complete(p)
		p.phase = phDone // stays in procs until the real commit
	}
	e.applyEffects(eff)
}

// complete records a transaction completion and frees its terminal and
// MPL slot.
func (e *Engine) complete(p *proc) {
	e.completions++
	resp := e.tl.Now() - p.submitted
	e.sumResponse += resp
	if e.inWindow {
		e.windowCompl++
		e.windowResp += resp
	}
	e.active--
	e.schedule(e.think(), &event{kind: evArrive, terminal: p.terminal})
	e.admit()
	if !e.inWindow && e.completions >= e.cfg.Warmup {
		e.openWindow()
	}
}

// restartAborted handles an abort chosen by the scheduler: record the
// abort length, put the transaction at the tail of the ready queue and
// re-admit ("an aborted transaction is restarted immediately, i.e.,
// placed at the end of ready queue"; it re-executes the same operation
// sequence unless FakeRestarts is on).
func (e *Engine) restartAborted(p *proc) {
	e.restarts++
	e.abortOps += p.idx
	e.sched.Forget(p.txn)
	delete(e.procs, p.txn)
	e.active--

	p.idx = 0
	p.txn = 0
	p.phase = phReady
	if e.cfg.FakeRestarts {
		p.steps = e.src.Draw(e.rng)
	}
	e.readyQ = append(e.readyQ, p)
	e.admit()
}

// applyEffects processes downstream consequences of a scheduler call:
// granted requests resume their transactions, retry-aborts restart
// them, real commits of pseudo-committed transactions release
// bookkeeping (and, under ablation A, complete them).
func (e *Engine) applyEffects(eff core.Effects) {
	for _, g := range eff.Grants {
		p := e.procs[g.Txn]
		if p == nil || p.phase != phBlocked {
			continue
		}
		p.idx++
		e.startResources(p)
	}
	for _, a := range eff.RetryAborts {
		if p := e.procs[a.Txn]; p != nil {
			e.restartAborted(p)
		}
	}
	for _, id := range eff.Committed {
		p := e.procs[id]
		if p == nil {
			continue
		}
		if p.waitsReal {
			e.complete(p)
		}
		e.sched.Forget(id)
		delete(e.procs, id)
	}
}

// Now returns the current simulated time (tests).
func (e *Engine) Now() float64 { return e.tl.Now() }

// Scheduler exposes the controller (tests).
func (e *Engine) Scheduler() *core.Scheduler { return e.sched }

// Simulate is the package's one-call entry point: build and run.
func Simulate(cfg Config) (metrics.Run, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return metrics.Run{}, err
	}
	return eng.Run()
}

// SimulateRuns performs n independent runs with seeds cfg.Seed,
// cfg.Seed+1, … and returns the per-run metrics.
func SimulateRuns(cfg Config, n int) ([]metrics.Run, error) {
	runs := make([]metrics.Run, 0, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		r, err := Simulate(c)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}
