package sim

// Timeline is the deterministic virtual clock and event queue the
// discrete-event simulators share: the single-site engine in this
// package and the multi-site cluster simulator (internal/distsim) both
// schedule onto one. Events fire in (time, insertion-sequence) order —
// ties break on the order Schedule was called — so a run is a pure
// function of its seed: same seed, bit-identical event sequence, no
// wall clock anywhere.
//
// The zero value is ready to use. Timeline is not safe for concurrent
// use; a simulation is one goroutine by construction.
type Timeline[E any] struct {
	now  float64
	seq  uint64
	heap []timed[E]
}

// timed is one scheduled entry.
type timed[E any] struct {
	at  float64
	seq uint64
	ev  E
}

// Now returns the current virtual time: the timestamp of the most
// recently popped event (0 before the first pop).
func (t *Timeline[E]) Now() float64 { return t.now }

// Len returns the number of pending events.
func (t *Timeline[E]) Len() int { return len(t.heap) }

// Schedule enqueues ev to fire at virtual time at. Scheduling in the
// past is not checked; the queue simply fires it next (callers that
// care schedule at >= Now()).
func (t *Timeline[E]) Schedule(at float64, ev E) {
	t.seq++
	t.heap = append(t.heap, timed[E]{at: at, seq: t.seq, ev: ev})
	t.up(len(t.heap) - 1)
}

// Next pops the earliest event and advances the clock to its time.
// ok is false when the queue is empty (the clock does not move).
func (t *Timeline[E]) Next() (ev E, ok bool) {
	if len(t.heap) == 0 {
		return ev, false
	}
	top := t.heap[0]
	last := len(t.heap) - 1
	t.heap[0] = t.heap[last]
	t.heap[last] = timed[E]{} // release the event for GC
	t.heap = t.heap[:last]
	if last > 0 {
		t.down(0)
	}
	t.now = top.at
	return top.ev, true
}

// less orders entries by (at, seq).
func (t *Timeline[E]) less(i, j int) bool {
	if t.heap[i].at != t.heap[j].at {
		return t.heap[i].at < t.heap[j].at
	}
	return t.heap[i].seq < t.heap[j].seq
}

// up restores the heap property from index i towards the root.
func (t *Timeline[E]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			return
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

// down restores the heap property from index i towards the leaves.
func (t *Timeline[E]) down(i int) {
	n := len(t.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && t.less(right, left) {
			least = right
		}
		if !t.less(least, i) {
			return
		}
		t.heap[i], t.heap[least] = t.heap[least], t.heap[i]
		i = least
	}
}
