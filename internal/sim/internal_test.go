package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// TestEventHeapOrdering: events pop in (time, seq) order — seq breaks
// ties deterministically.
func TestEventHeapOrdering(t *testing.T) {
	e := &Engine{}
	e.schedule(3.0, &event{kind: evArrive, terminal: 1})
	e.schedule(1.0, &event{kind: evArrive, terminal: 2})
	e.schedule(1.0, &event{kind: evArrive, terminal: 3}) // same time, later seq
	e.schedule(2.0, &event{kind: evArrive, terminal: 4})

	var got []int
	for {
		ev := e.nextEvent()
		if ev == nil {
			break
		}
		got = append(got, ev.terminal)
	}
	want := []int{2, 3, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3.0 {
		t.Errorf("clock = %v", e.Now())
	}
}

// TestEventHeapQuick: popping a random schedule yields non-decreasing
// times, and equal times pop in insertion order.
func TestEventHeapQuick(t *testing.T) {
	f := func(times []uint16) bool {
		var tl Timeline[int]
		for i, raw := range times {
			tl.Schedule(float64(raw%50), i)
		}
		lastT := -1.0
		lastIdxAtT := -1
		for {
			i, ok := tl.Next()
			if !ok {
				break
			}
			at := tl.Now()
			if at < lastT {
				return false
			}
			if at == lastT {
				// Same-time events pop in insertion order, which for
				// this schedule means ascending payload index.
				if i < lastIdxAtT {
					return false
				}
			}
			lastT, lastIdxAtT = at, i
		}
		return tl.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestResourcePath walks one transaction through the CPU/disk pipeline
// and checks the service times add up: with one resource unit and no
// contention, each operation costs exactly CPUTime+IOTime of simulated
// time.
func TestResourcePath(t *testing.T) {
	cfg := Default(workload.ReadWrite{DBSize: 100, WriteProb: 0}, 1, 1)
	cfg.Terminals = 1
	cfg.ResourceUnits = 1
	cfg.MinLength, cfg.MaxLength = 5, 5
	cfg.Completions = 10
	cfg.Warmup = 0
	cfg.ThinkTime = 0 // arrivals back-to-back so timing is exact

	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 10 transactions x 5 ops x (0.015 + 0.035) s with a single
	// always-idle terminal: total simulated time 2.5 s, response
	// 0.25 s each.
	if got, want := eng.Now(), 2.5; !close(got, want) {
		t.Errorf("simulated end = %v, want %v", got, want)
	}
	if got, want := run.ResponseTime(), 0.25; !close(got, want) {
		t.Errorf("response = %v, want %v", got, want)
	}
	if got, want := run.Throughput(), 4.0; !close(got, want) {
		t.Errorf("throughput = %v, want %v", got, want)
	}
}

// TestInfiniteResourcePath: same but with the flat step time.
func TestInfiniteResourcePath(t *testing.T) {
	cfg := Default(workload.ReadWrite{DBSize: 100, WriteProb: 0}, 1, 1)
	cfg.Terminals = 1
	cfg.MinLength, cfg.MaxLength = 4, 4
	cfg.Completions = 5
	cfg.Warmup = 0
	cfg.ThinkTime = 0

	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 5 x 4 x 0.05 = 1.0 s total, 0.2 s response each.
	if !close(eng.Now(), 1.0) || !close(run.ResponseTime(), 0.2) {
		t.Errorf("end=%v response=%v", eng.Now(), run.ResponseTime())
	}
}

// TestCPUQueueing: two always-busy terminals sharing one CPU see the
// CPU as the bottleneck — simulated time doubles versus one terminal.
func TestCPUQueueing(t *testing.T) {
	base := Default(workload.ReadWrite{DBSize: 100, WriteProb: 0}, 4, 1)
	base.ResourceUnits = 1
	base.MinLength, base.MaxLength = 5, 5
	base.Completions = 20
	base.Warmup = 0
	base.ThinkTime = 0

	base.Terminals = 1
	one, err := NewEngine(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.Run(); err != nil {
		t.Fatal(err)
	}

	base.Terminals = 4
	four, err := NewEngine(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := four.Run(); err != nil {
		t.Fatal(err)
	}
	// With 4 competing terminals the same 20 completions finish
	// faster in wall-clock simulated time than 1-terminal-serial only
	// if resources pipeline; but the single CPU (0.015) and two disks
	// (0.035 each) bound throughput at 1/0.0175 ≈ 57 ops/s versus the
	// serial 1/0.05 = 20 ops/s. Check we're between those bounds.
	opsPerSec := 20.0 * 5 / four.Now()
	if opsPerSec < 20 || opsPerSec > 58 {
		t.Errorf("pipelined op rate = %.1f ops/s, want within (20, 58)", opsPerSec)
	}
	if four.Now() >= one.Now() {
		t.Errorf("4 terminals (%v) should finish the batch faster than 1 (%v)", four.Now(), one.Now())
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// TestWarmupWindow: metrics cover only the post-warm-up window.
func TestWarmupWindow(t *testing.T) {
	cfg := Default(workload.ReadWrite{DBSize: 100, WriteProb: 0}, 1, 1)
	cfg.Terminals = 1
	cfg.MinLength, cfg.MaxLength = 4, 4
	cfg.ThinkTime = 0
	cfg.Completions = 5
	cfg.Warmup = 5

	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Completed != 5 {
		t.Errorf("measured completions = %d, want 5 (warm-up excluded)", run.Completed)
	}
	// 10 transactions total ran; the window covers the second half.
	if !close(run.SimTime, 1.0) {
		t.Errorf("window = %v, want 1.0", run.SimTime)
	}
}
