// Package sim is a discrete-event reproduction of the paper's closed
// queuing simulation model (§5.1, Figure 3), itself a modified version
// of Agrawal, Carey & Livny's model: a fixed set of terminals submits
// transactions; at most mpl.level transactions execute concurrently
// (the rest wait in the ready queue); each operation passes concurrency
// control and then consumes resources (a CPU then a disk under finite
// resources, a flat step time under infinite resources); blocked
// transactions wait in per-object queues; aborted transactions restart
// immediately at the tail of the ready queue; a terminal whose
// transaction completes (pseudo-commits or commits) thinks for an
// exponentially distributed time and submits a new one.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Config collects every model parameter (Tables IX and X) plus protocol
// and run-control knobs.
type Config struct {
	// Terminals is num.of.terminals (nominally 200).
	Terminals int
	// MPL is mpl.level, the multiprogramming level.
	MPL int
	// MinLength/MaxLength bound the uniformly distributed transaction
	// length (nominally 4..12, mean 8).
	MinLength, MaxLength int
	// StepTime is the execution time of each operation under
	// infinite resources (nominally 0.05 s).
	StepTime float64
	// CPUTime and IOTime split a step under finite resources
	// (nominally 0.015 s + 0.035 s).
	CPUTime, IOTime float64
	// ResourceUnits is the number of resource units, each one CPU and
	// two disks; 0 means infinite resources.
	ResourceUnits int
	// ThinkTime is ext.think.time, the mean of the exponential
	// terminal think time (nominally 1 s).
	ThinkTime float64

	// Predicate selects recoverability or the commutativity baseline.
	Predicate core.Predicate
	// Unfair disables fair scheduling (Figures 8–9 study this).
	Unfair bool
	// Recovery selects the recovery strategy (no simulated cost
	// either way; the paper does not charge for recovery).
	Recovery core.Recovery
	// DisablePseudoCommit makes completion wait for the real commit
	// (ablation A: isolates pseudo-commit's latency contribution).
	DisablePseudoCommit bool
	// FakeRestarts makes a restarted transaction draw a fresh
	// operation sequence instead of re-executing the original (the
	// alternative the paper mentions but does not use).
	FakeRestarts bool

	// Workload generates transactions and the database.
	Workload workload.Generator
	// Seed drives all randomness; a fixed seed gives a bit-identical
	// run.
	Seed int64

	// Completions is how many transaction completions to simulate
	// after warm-up (the paper runs 50,000).
	Completions int
	// Warmup is how many completions to discard before measuring.
	Warmup int
	// MaxEvents guards against runaway runs; 0 picks a generous
	// default.
	MaxEvents int
}

// Default returns the paper's nominal settings (Table X) with the given
// workload, multiprogramming level and seed. Completions defaults to a
// laptop-friendly 4,000 with 10% warm-up; pass the paper's 50,000 for
// full fidelity.
func Default(w workload.Generator, mpl int, seed int64) Config {
	return Config{
		Terminals:   200,
		MPL:         mpl,
		MinLength:   4,
		MaxLength:   12,
		StepTime:    0.05,
		CPUTime:     0.015,
		IOTime:      0.035,
		ThinkTime:   1.0,
		Workload:    w,
		Seed:        seed,
		Completions: 4000,
		Warmup:      400,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Workload == nil:
		return errors.New("sim: config needs a workload")
	case c.Terminals <= 0:
		return errors.New("sim: Terminals must be positive")
	case c.MPL <= 0:
		return errors.New("sim: MPL must be positive")
	case c.MinLength <= 0 || c.MaxLength < c.MinLength:
		return fmt.Errorf("sim: bad length bounds [%d,%d]", c.MinLength, c.MaxLength)
	case c.StepTime <= 0 && c.ResourceUnits == 0:
		return errors.New("sim: StepTime must be positive under infinite resources")
	case c.ResourceUnits > 0 && (c.CPUTime <= 0 || c.IOTime <= 0):
		return errors.New("sim: CPUTime and IOTime must be positive under finite resources")
	case c.ResourceUnits < 0:
		return errors.New("sim: ResourceUnits must be >= 0")
	case c.ThinkTime < 0:
		return errors.New("sim: ThinkTime must be >= 0")
	case c.Completions <= 0:
		return errors.New("sim: Completions must be positive")
	case c.Warmup < 0:
		return errors.New("sim: Warmup must be >= 0")
	}
	return nil
}

// maxEvents returns the event guard.
func (c Config) maxEvents() int {
	if c.MaxEvents > 0 {
		return c.MaxEvents
	}
	// Each operation needs a handful of events, but deep-thrash
	// regimes (restart ratios beyond the paper's worst case) replay
	// transactions many times over; 20,000 events per completion
	// leaves room for that while still catching genuine stalls.
	n := (c.Completions + c.Warmup) * 20_000
	if n < 2_000_000 {
		n = 2_000_000
	}
	return n
}
