package sim

import "container/heap"

// eventKind discriminates simulator events.
type eventKind uint8

const (
	// evArrive: a terminal submits a new transaction.
	evArrive eventKind = iota
	// evOpDone: an operation's flat step time elapsed (infinite
	// resources).
	evOpDone
	// evCPUDone: a CPU burst finished.
	evCPUDone
	// evDiskDone: a disk access finished.
	evDiskDone
)

// event is one scheduled simulator event. Ties on time break on seq so
// runs are deterministic.
type event struct {
	at       float64
	seq      uint64
	kind     eventKind
	terminal int   // evArrive
	proc     *proc // evOpDone, evCPUDone, evDiskDone
	disk     int   // evDiskDone
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

// Pop implements heap.Interface.
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// schedule pushes a new event.
func (e *Engine) schedule(at float64, ev *event) {
	e.eventSeq++
	ev.at = at
	ev.seq = e.eventSeq
	heap.Push(&e.events, ev)
}

// nextEvent pops the earliest event, advancing the clock.
func (e *Engine) nextEvent() *event {
	if e.events.Len() == 0 {
		return nil
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	return ev
}
