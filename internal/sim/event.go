package sim

// eventKind discriminates simulator events.
type eventKind uint8

const (
	// evArrive: a terminal submits a new transaction.
	evArrive eventKind = iota
	// evOpDone: an operation's flat step time elapsed (infinite
	// resources).
	evOpDone
	// evCPUDone: a CPU burst finished.
	evCPUDone
	// evDiskDone: a disk access finished.
	evDiskDone
)

// event is one scheduled simulator event. Firing order is the shared
// Timeline's (time, sequence) order, so runs are deterministic.
type event struct {
	kind     eventKind
	terminal int   // evArrive
	proc     *proc // evOpDone, evCPUDone, evDiskDone
	disk     int   // evDiskDone
}

// schedule pushes a new event onto the timeline.
func (e *Engine) schedule(at float64, ev *event) {
	e.tl.Schedule(at, ev)
}

// nextEvent pops the earliest event, advancing the clock.
func (e *Engine) nextEvent() *event {
	ev, ok := e.tl.Next()
	if !ok {
		return nil
	}
	return ev
}
