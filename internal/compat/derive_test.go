package compat

import (
	"math/rand"
	"testing"

	"repro/internal/adt"
)

// TestDerivedMatchesPaper is the central verification of §3.2: for every
// built-in type, deriving the compatibility tables from Definitions 1–2
// by state enumeration reproduces the paper's Tables I–VIII entry for
// entry. One documented exception: the paper's Table I uses the
// traditional read/write convention for (write, write) commutativity
// (No), while the definitions yield Yes-SP (two writes of the same value
// commute); we assert that divergence explicitly.
func TestDerivedMatchesPaper(t *testing.T) {
	cases := []struct {
		typ   adt.Enumerable
		paper *Table
	}{
		{adt.Page{}, PageTable()},
		{adt.Stack{}, StackTable()},
		{adt.Set{}, SetTable()},
		{adt.KTable{}, KTableTable()},
	}
	for _, c := range cases {
		t.Run(c.typ.Name(), func(t *testing.T) {
			derived := Derive(c.typ)
			if len(derived.Ops) != len(c.paper.Ops) {
				t.Fatalf("op count: derived %v, paper %v", derived.Ops, c.paper.Ops)
			}
			for i, req := range derived.Ops {
				for j, exec := range derived.Ops {
					wantComm := c.paper.Comm[i][j]
					if c.typ.Name() == "page" && req == adt.PageWrite && exec == adt.PageWrite {
						// The documented exception.
						if derived.Comm[i][j] != YesSP {
							t.Errorf("page (write,write) commutativity derived %v, expected Yes-SP", derived.Comm[i][j])
						}
					} else if derived.Comm[i][j] != wantComm {
						t.Errorf("%s commutativity (%s,%s): derived %v, paper %v",
							c.typ.Name(), req, exec, derived.Comm[i][j], wantComm)
					}
					if derived.Rec[i][j] != c.paper.Rec[i][j] {
						t.Errorf("%s recoverability (%s,%s): derived %v, paper %v",
							c.typ.Name(), req, exec, derived.Rec[i][j], c.paper.Rec[i][j])
					}
				}
			}
		})
	}
}

// TestLemma1CommutativityImpliesRecoverability checks Lemma 1 on every
// derived table: wherever commutativity holds (for a parameter bucket),
// recoverability holds too, in both directions.
func TestLemma1CommutativityImpliesRecoverability(t *testing.T) {
	for _, typ := range []adt.Enumerable{adt.Page{}, adt.Stack{}, adt.Set{}, adt.KTable{}} {
		d := Derive(typ)
		for i := range d.Ops {
			for j := range d.Ops {
				for _, same := range []bool{true, false} {
					if d.Comm[i][j].Holds(same) {
						if !d.Rec[i][j].Holds(same) {
							t.Errorf("%s (%s,%s) same=%v: commutes but not recoverable",
								typ.Name(), d.Ops[i], d.Ops[j], same)
						}
						// Commutativity is symmetric; the reverse
						// direction must be recoverable too.
						if !d.Rec[j][i].Holds(same) {
							t.Errorf("%s (%s,%s) same=%v: commutes but reverse not recoverable",
								typ.Name(), d.Ops[j], d.Ops[i], same)
						}
					}
				}
			}
		}
	}
}

// TestCommutativitySymmetric checks the symmetry property the paper
// notes ("commutativity is a symmetric property whereas recoverability
// is not") on the derived tables, and that recoverability is genuinely
// asymmetric somewhere (the paper's size/insert example).
func TestCommutativitySymmetric(t *testing.T) {
	for _, typ := range []adt.Enumerable{adt.Page{}, adt.Stack{}, adt.Set{}, adt.KTable{}} {
		d := Derive(typ)
		for i := range d.Ops {
			for j := range d.Ops {
				if d.Comm[i][j] != d.Comm[j][i] {
					t.Errorf("%s commutativity not symmetric at (%s,%s): %v vs %v",
						typ.Name(), d.Ops[i], d.Ops[j], d.Comm[i][j], d.Comm[j][i])
				}
			}
		}
	}
	// Asymmetry of recoverability: insert RR size = Yes but
	// size RR insert = No (§3.2.4).
	d := Derive(adt.KTable{})
	if got := d.RecEntry(adt.TableInsert, adt.TableSize); got != Yes {
		t.Errorf("insert RR size = %v, want Yes", got)
	}
	if got := d.RecEntry(adt.TableSize, adt.TableInsert); got != No {
		t.Errorf("size RR insert = %v, want No", got)
	}
}

// TestLemma2SequenceRecoverability randomizes Lemma 2: if a requested
// operation is pairwise recoverable relative to every operation in an
// uncommitted sequence, its return value is invariant under dropping any
// subsequence (Definition 3).
func TestLemma2SequenceRecoverability(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, typ := range []adt.Enumerable{adt.Page{}, adt.Stack{}, adt.Set{}, adt.KTable{}} {
		d := Derive(typ)
		states := typ.EnumStates()
		for trial := 0; trial < 300; trial++ {
			s := states[rng.Intn(len(states))]
			// Random sequence of up to 4 ops, then a requested op
			// that is pairwise recoverable w.r.t. all of them.
			var seq []adt.Op
			for len(seq) < 1+rng.Intn(4) {
				seq = append(seq, randomOp(rng, typ))
			}
			req := randomOp(rng, typ)
			pairwise := true
			for _, e := range seq {
				if d.Classify(req, e) == Conflict {
					pairwise = false
					break
				}
			}
			if !pairwise {
				continue
			}
			// Also require the sequence itself to be protocol-legal
			// (each op recoverable/commuting w.r.t. its
			// predecessors), as it would be in a real log.
			legal := true
			for i := 1; i < len(seq); i++ {
				for j := 0; j < i; j++ {
					if d.Classify(seq[i], seq[j]) == Conflict {
						legal = false
					}
				}
			}
			if !legal {
				continue
			}
			ok, err := RecoverableOverSequence(typ, s, seq, req)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("%s: req %v not sequence-recoverable over %v from %v despite pairwise recoverability",
					typ.Name(), req, seq, s)
			}
		}
	}
}

func randomOp(rng *rand.Rand, typ adt.Enumerable) adt.Op {
	specs := typ.Specs()
	sp := specs[rng.Intn(len(specs))]
	args := typ.EnumArgs()
	return sp.Invoke(args[rng.Intn(len(args))], args[rng.Intn(len(args))])
}

// TestRecoverableOverSequenceNegative: a non-recoverable pair must be
// caught by the sequence checker too (pop after push changes pop's
// return).
func TestRecoverableOverSequenceNegative(t *testing.T) {
	st := adt.Stack{}
	s := adt.NewStackState(1)
	seq := []adt.Op{{Name: adt.StackPush, Arg: 9, HasArg: true}}
	ok, err := RecoverableOverSequence(st, s, seq, adt.Op{Name: adt.StackPop})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("pop should not be recoverable over an uncommitted push")
	}
}
