package compat

import "repro/internal/adt"

// Compiled is a compatibility table lowered into dense arrays indexed by
// interned operation ids, for the protocol's two hottest call sites: the
// object manager's per-uncommitted-log-entry classification (Figure 2)
// and the fair-scheduling admission test. Where Table.Classify resolves
// both operation names and evaluates the Yes/Yes-SP/Yes-DP/No entry
// logic on every call, a Compiled classifier resolves each name to an
// adt.OpID once (per request, per log entry at execute time) and then
// classifies with an indexed load and a parameter compare:
//
//	rel[((req+1)*stride + exec+1)*2 + sameArg]
//
// Both the recoverability-aware relation and the commutativity-only
// baseline (the CommutativityOnly wrapper, §5's comparison protocol) are
// composed at compile time, so selecting the predicate on the hot path
// is a branch, not an allocation.
//
// A Compiled classifier is immutable after Compile and safe for
// concurrent readers.
type Compiled struct {
	typeName string
	in       *adt.Interner
	n        int
	// stride is n+1: the dense grids carry a sentinel row and column 0
	// holding Conflict, onto which NoOpID (-1) lands after the +1 bias
	// in ClassifyIDs — unknown names classify as Conflict without a
	// branch on the hot path.
	stride int
	// rel and relComm hold one Rel per (requested, executed, sameArg)
	// triple; relComm is the CommutativityOnly composition (Recoverable
	// demoted to Conflict).
	rel     []Rel
	relComm []Rel
}

// Classify implements Classifier. It resolves both names through the
// interner; hot paths that classify one request against many executed
// entries should intern once and use ClassifyIDs instead.
func (c *Compiled) Classify(requested, executed adt.Op) Rel {
	return c.ClassifyIDs(c.in.ID(requested.Name), c.in.ID(executed.Name),
		requested.SameArg(executed), false)
}

// ClassifyIDs classifies a pre-interned (requested, executed) pair.
// commOnly selects the commutativity-only baseline composed at compile
// time. Ids must come from OpID: in-table ids hit their cell and NoOpID
// lands on the sentinel Conflict row/column, matching Table.Classify's
// unknown-name behaviour without a branch.
func (c *Compiled) ClassifyIDs(req, exec adt.OpID, sameArg, commOnly bool) Rel {
	idx := (int(req+1)*c.stride + int(exec+1)) * 2
	if sameArg {
		idx++
	}
	if commOnly {
		return c.relComm[idx]
	}
	return c.rel[idx]
}

// Row is one requested-operation row of a compiled table with the
// predicate already selected: what the object manager resolves once per
// request, making the per-uncommitted-log-entry classification a single
// indexed load.
type Row struct {
	rel []Rel // the requested op's row, sentinel column included
}

// Classify classifies the row's requested operation against a
// pre-interned executed operation.
func (r Row) Classify(exec adt.OpID, sameArg bool) Rel {
	idx := int(exec+1) * 2
	if sameArg {
		idx++
	}
	return r.rel[idx]
}

// Row resolves the requested operation's row under the given predicate.
// req must come from OpID (NoOpID selects the sentinel all-Conflict
// row).
func (c *Compiled) Row(req adt.OpID, commOnly bool) Row {
	rel := c.rel
	if commOnly {
		rel = c.relComm
	}
	base := int(req+1) * c.stride * 2
	return Row{rel: rel[base : base+c.stride*2]}
}

// OpID interns an operation name against the compiled table's universe.
func (c *Compiled) OpID(name string) adt.OpID { return c.in.ID(name) }

// NumOps returns the number of operations in the compiled table.
func (c *Compiled) NumOps() int { return c.n }

// TypeName names the data type the compiled table describes.
func (c *Compiled) TypeName() string { return c.typeName }

// set records the relation for one (requested, executed, sameArg) cell,
// keeping the commutativity-only composition in lockstep.
func (c *Compiled) set(req, exec int, sameArg bool, r Rel) {
	idx := ((req+1)*c.stride + exec + 1) * 2
	if sameArg {
		idx++
	}
	c.rel[idx] = r
	if r == Recoverable {
		r = Conflict
	}
	c.relComm[idx] = r
}

func newCompiled(typeName string, names []string) *Compiled {
	in := adt.NewInterner(names)
	n := in.Len()
	c := &Compiled{
		typeName: typeName,
		in:       in,
		n:        n,
		stride:   n + 1,
		rel:      make([]Rel, (n+1)*(n+1)*2),
		relComm:  make([]Rel, (n+1)*(n+1)*2),
	}
	// Sentinel cells (row/column 0) classify as Conflict; Conflict is
	// not the zero Rel, so fill explicitly.
	for i := range c.rel {
		c.rel[i] = Conflict
		c.relComm[i] = Conflict
	}
	return c
}

// Compile lowers the table into a Compiled classifier. The table's
// entries are evaluated per (requested, executed, sameArg) cell exactly
// as Table.Classify would (commutativity first, then recoverability), so
// the two agree on every concrete operation pair; the equivalence tests
// prove it for all paper, derived and generated tables. The snapshot is
// taken at call time — later Set* mutations are not reflected.
func (t *Table) Compile() *Compiled {
	c := newCompiled(t.TypeName, t.Ops)
	for i, req := range t.Ops {
		if t.Index(req) != i {
			continue // duplicated name: Classify resolves the first row
		}
		for j, exec := range t.Ops {
			if t.Index(exec) != j {
				continue
			}
			ci := c.in.ID(req)
			cj := c.in.ID(exec)
			for _, same := range [2]bool{false, true} {
				r := Conflict
				switch {
				case t.Comm[i][j].Holds(same):
					r = Commutes
				case t.Rec[i][j].Holds(same):
					r = Recoverable
				}
				c.set(int(ci), int(cj), same, r)
			}
		}
	}
	return c
}

// Compile lowers the generated merged table (§5.5.2) into a Compiled
// classifier over the abstract operation names. Generated cells carry no
// parameter dependence, so both sameArg variants hold the same relation.
func (g *Generated) Compile() *Compiled {
	names := make([]string, g.Sigma)
	for i := range names {
		names[i] = adt.AbstractOpName(i)
	}
	c := newCompiled("abstract", names)
	for i := 0; i < g.Sigma; i++ {
		for j := 0; j < g.Sigma; j++ {
			c.set(i, j, false, g.Cell[i][j])
			c.set(i, j, true, g.Cell[i][j])
		}
	}
	return c
}

// CompileClassifier lowers any of the package's table-backed classifiers
// into a Compiled classifier: *Table, *Generated, a CommutativityOnly
// wrapper around either, or an already-Compiled classifier. It reports
// false for classifiers with unknown structure (custom implementations
// fall back to the interface path).
func CompileClassifier(cl Classifier) (*Compiled, bool) {
	switch v := cl.(type) {
	case *Compiled:
		return v, true
	case *Table:
		return v.Compile(), true
	case *Generated:
		return v.Compile(), true
	case CommutativityOnly:
		inner, ok := CompileClassifier(v.C)
		if !ok {
			return nil, false
		}
		// Demote by making the commutativity-only composition the
		// primary relation as well.
		return &Compiled{
			typeName: inner.typeName,
			in:       inner.in,
			n:        inner.n,
			stride:   inner.stride,
			rel:      inner.relComm,
			relComm:  inner.relComm,
		}, true
	}
	return nil, false
}
