// Package compat models the commutativity and recoverability relations of
// the paper and the compatibility tables built from them (Tables I–VIII).
//
// A table entry is Yes, Yes-SP, Yes-DP or No (§3.2): Yes-SP (Yes-DP)
// means the property holds exactly when the two operations have the Same
// (Different) input Parameter. Tables are state-independent but
// parameter-dependent, matching the paper's restriction.
//
// The package provides three things:
//
//   - the relation and table types plus classification of a concrete
//     operation pair into commutes / recoverable / conflict, which is what
//     the object managers in internal/core consume;
//   - the paper's tables, hardcoded (paper.go);
//   - a derivation engine (derive.go) that recomputes any Enumerable
//     type's tables directly from Definitions 1 and 2 by exhaustive state
//     enumeration — the test suite proves the two agree.
package compat

import "repro/internal/adt"

// Entry is one cell of a compatibility table.
type Entry uint8

// Entry values. YesSP/YesDP follow the paper's Yes-SP/Yes-DP notation.
const (
	No    Entry = iota // the property never holds
	Yes                // the property always holds
	YesSP              // holds iff the operations have the same parameter
	YesDP              // holds iff the operations have different parameters
)

// String renders the entry in the paper's notation.
func (e Entry) String() string {
	switch e {
	case No:
		return "No"
	case Yes:
		return "Yes"
	case YesSP:
		return "Yes-SP"
	case YesDP:
		return "Yes-DP"
	}
	return "Entry(?)"
}

// Holds reports whether the entry's property holds for a request/executed
// pair with the given parameter relationship.
func (e Entry) Holds(sameArg bool) bool {
	switch e {
	case Yes:
		return true
	case YesSP:
		return sameArg
	case YesDP:
		return !sameArg
	default:
		return false
	}
}

// Rel classifies one requested operation against one executed,
// uncommitted operation.
type Rel uint8

// Rel values, in decreasing permissiveness.
const (
	// Commutes: the pair commutes; the request may execute with no
	// commit dependency.
	Commutes Rel = iota
	// Recoverable: the request is recoverable relative to the executed
	// operation; it may execute after forcing a commit dependency.
	Recoverable
	// Conflict: neither; the requester must wait.
	Conflict
)

// String implements fmt.Stringer.
func (r Rel) String() string {
	switch r {
	case Commutes:
		return "commutes"
	case Recoverable:
		return "recoverable"
	case Conflict:
		return "conflict"
	}
	return "rel(?)"
}

// Table is a compatibility table for one data type: for each
// (requested, executed) operation-name pair, the commutativity entry and
// the recoverability entry. Rows and columns are identified by operation
// name, in the order of Ops.
type Table struct {
	// TypeName names the data type the table describes.
	TypeName string
	// Ops lists the operation names in row/column order.
	Ops []string
	// Comm[i][j] is the commutativity entry for requested Ops[i]
	// against executed Ops[j] (Tables I, III, V, VII).
	Comm [][]Entry
	// Rec[i][j] is the recoverability entry for requested Ops[i]
	// against executed Ops[j] (Tables II, IV, VI, VIII).
	Rec [][]Entry

	// index maps operation name to row/column index. Built by NewTable
	// (Ops is fixed from then on); nil for hand-rolled Table literals,
	// which fall back to the linear scan.
	index map[string]int
}

// NewTable returns an empty table over the given operations with every
// entry No.
func NewTable(typeName string, ops []string) *Table {
	t := &Table{TypeName: typeName, Ops: append([]string(nil), ops...)}
	t.Comm = newGrid(len(ops))
	t.Rec = newGrid(len(ops))
	t.index = make(map[string]int, len(ops))
	for i, name := range t.Ops {
		if _, ok := t.index[name]; !ok {
			t.index[name] = i
		}
	}
	return t
}

func newGrid(n int) [][]Entry {
	g := make([][]Entry, n)
	for i := range g {
		g[i] = make([]Entry, n)
	}
	return g
}

// Index returns the row/column index of the named operation, or -1.
func (t *Table) Index(op string) int {
	if t.index != nil {
		if i, ok := t.index[op]; ok {
			return i
		}
		return -1
	}
	for i, name := range t.Ops {
		if name == op {
			return i
		}
	}
	return -1
}

// CommEntry returns the commutativity entry for requested req against
// executed exec.
func (t *Table) CommEntry(req, exec string) Entry { return t.Comm[t.Index(req)][t.Index(exec)] }

// RecEntry returns the recoverability entry for requested req against
// executed exec.
func (t *Table) RecEntry(req, exec string) Entry { return t.Rec[t.Index(req)][t.Index(exec)] }

// SetComm sets the commutativity entry (and, by Lemma 1 of the paper,
// commutativity implies recoverability, so callers typically also set
// the recoverability entry at least as permissive — paper.go does).
func (t *Table) SetComm(req, exec string, e Entry) { t.Comm[t.Index(req)][t.Index(exec)] = e }

// SetRec sets the recoverability entry.
func (t *Table) SetRec(req, exec string, e Entry) { t.Rec[t.Index(req)][t.Index(exec)] = e }

// Classifier decides the relation between a requested operation and an
// executed, uncommitted operation. Object managers consult a Classifier
// for every uncommitted log entry (Figure 2 of the paper).
type Classifier interface {
	Classify(requested, executed adt.Op) Rel
}

// Classify implements Classifier using the table's entries: commutativity
// is checked first, then recoverability; otherwise the pair conflicts.
func (t *Table) Classify(requested, executed adt.Op) Rel {
	i, j := t.Index(requested.Name), t.Index(executed.Name)
	if i < 0 || j < 0 {
		return Conflict
	}
	same := requested.SameArg(executed)
	if t.Comm[i][j].Holds(same) {
		return Commutes
	}
	if t.Rec[i][j].Holds(same) {
		return Recoverable
	}
	return Conflict
}

// CommutativityOnly wraps a Classifier, demoting Recoverable to Conflict.
// This is the baseline protocol the paper compares against ("when
// conflicts are defined based only on commutativity").
type CommutativityOnly struct {
	C Classifier
}

// Classify implements Classifier.
func (c CommutativityOnly) Classify(requested, executed adt.Op) Rel {
	if r := c.C.Classify(requested, executed); r == Commutes {
		return Commutes
	}
	return Conflict
}

// Equal reports whether two tables have identical operations and entries.
func (t *Table) Equal(o *Table) bool {
	if t.TypeName != o.TypeName || len(t.Ops) != len(o.Ops) {
		return false
	}
	for i := range t.Ops {
		if t.Ops[i] != o.Ops[i] {
			return false
		}
		for j := range t.Ops {
			if t.Comm[i][j] != o.Comm[i][j] || t.Rec[i][j] != o.Rec[i][j] {
				return false
			}
		}
	}
	return true
}
