package compat

import "repro/internal/adt"

// This file hardcodes the paper's compatibility tables (Tables I–VIII).
// The derivation engine in derive.go recomputes them from the data type
// semantics; TestDerivedMatchesPaper proves the two agree (with the one
// documented Page exception below).

// PageTable returns Tables I and II for the Page (read/write) object.
//
// Table I (commutativity) follows the paper's traditional convention:
// two operations conflict if either is a write, so only (read, read) is
// Yes. Note that Definition 2 actually yields Yes-SP for (write, write) —
// two writes of the same value commute — which the derivation engine
// discovers; see DerivedPageCommWriteWrite in the tests. The simulation
// experiments use the paper's convention.
//
// Table II (recoverability) leaves (read, write) as the only conflicting
// pair: a read requested after an uncommitted write is not recoverable,
// everything else is.
func PageTable() *Table {
	t := NewTable("page", []string{adt.PageRead, adt.PageWrite})
	t.SetComm(adt.PageRead, adt.PageRead, Yes)

	t.SetRec(adt.PageRead, adt.PageRead, Yes)
	t.SetRec(adt.PageWrite, adt.PageRead, Yes)
	t.SetRec(adt.PageWrite, adt.PageWrite, Yes)
	// (read requested, write executed) stays No.
	return t
}

// StackTable returns Tables III and IV for the Stack object.
//
// Commutativity: only (top, top) is Yes; (push, push) is Yes-SP (two
// pushes of the same element commute). Recoverability: a push is
// recoverable relative to anything (its return is always ok), and any
// operation is recoverable relative to top (top leaves the state
// unchanged).
func StackTable() *Table {
	t := NewTable("stack", []string{adt.StackPush, adt.StackPop, adt.StackTop})
	t.SetComm(adt.StackPush, adt.StackPush, YesSP)
	t.SetComm(adt.StackTop, adt.StackTop, Yes)

	t.SetRec(adt.StackPush, adt.StackPush, Yes)
	t.SetRec(adt.StackPush, adt.StackPop, Yes)
	t.SetRec(adt.StackPush, adt.StackTop, Yes)
	t.SetRec(adt.StackPop, adt.StackTop, Yes)
	t.SetRec(adt.StackTop, adt.StackTop, Yes)
	return t
}

// SetTable returns Tables V and VI for the Set object.
func SetTable() *Table {
	t := NewTable("set", []string{adt.SetInsert, adt.SetDelete, adt.SetMember})
	// Table V (commutativity), exactly as printed in the paper:
	//             Insert   Delete   Member
	//   Insert    Yes      Yes-DP   Yes-DP
	//   Delete    Yes-DP   Yes-DP   Yes-DP
	//   Member    Yes-DP   Yes-DP   Yes
	t.SetComm(adt.SetInsert, adt.SetInsert, Yes)
	t.SetComm(adt.SetInsert, adt.SetDelete, YesDP)
	t.SetComm(adt.SetInsert, adt.SetMember, YesDP)
	t.SetComm(adt.SetDelete, adt.SetInsert, YesDP)
	t.SetComm(adt.SetDelete, adt.SetDelete, YesDP)
	t.SetComm(adt.SetDelete, adt.SetMember, YesDP)
	t.SetComm(adt.SetMember, adt.SetInsert, YesDP)
	t.SetComm(adt.SetMember, adt.SetDelete, YesDP)
	t.SetComm(adt.SetMember, adt.SetMember, Yes)

	// Table VI (recoverability). Insert's return is always ok, so
	// insert is recoverable relative to everything ("insert is
	// recoverable relative to member", §3.2.3); delete and member are
	// recoverable relative to member (no state change) and, for
	// different elements, relative to insert/delete.
	t.SetRec(adt.SetInsert, adt.SetInsert, Yes)
	t.SetRec(adt.SetInsert, adt.SetDelete, Yes)
	t.SetRec(adt.SetInsert, adt.SetMember, Yes)
	t.SetRec(adt.SetDelete, adt.SetInsert, YesDP)
	t.SetRec(adt.SetDelete, adt.SetDelete, YesDP)
	t.SetRec(adt.SetDelete, adt.SetMember, Yes)
	t.SetRec(adt.SetMember, adt.SetInsert, YesDP)
	t.SetRec(adt.SetMember, adt.SetDelete, YesDP)
	t.SetRec(adt.SetMember, adt.SetMember, Yes)
	return t
}

// KTableTable returns Tables VII and VIII for the Table object. The
// parameter compared by SP/DP entries is the key.
func KTableTable() *Table {
	ins, del, lku, siz, mod := adt.TableInsert, adt.TableDelete, adt.TableLookup, adt.TableSize, adt.TableModify
	t := NewTable("table", []string{ins, del, lku, siz, mod})

	// Table VII (commutativity), rows = requested, cols = executed:
	//            Insert   Delete   Lookup   Size   Modify
	//   Insert   Yes-DP   Yes-DP   Yes-DP   No     Yes-DP
	//   Delete   Yes-DP   Yes-DP   Yes-DP   No     Yes-DP
	//   Lookup   Yes-DP   Yes-DP   Yes      Yes    Yes-DP
	//   Size     No       No       Yes      Yes    Yes
	//   Modify   Yes-DP   Yes-DP   Yes-DP   Yes    Yes-DP
	comm := [][]Entry{
		{YesDP, YesDP, YesDP, No, YesDP},
		{YesDP, YesDP, YesDP, No, YesDP},
		{YesDP, YesDP, Yes, Yes, YesDP},
		{No, No, Yes, Yes, Yes},
		{YesDP, YesDP, YesDP, Yes, YesDP},
	}
	// Table VIII (recoverability):
	//            Insert   Delete   Lookup   Size   Modify
	//   Insert   Yes-DP   Yes-DP   Yes      Yes    Yes
	//   Delete   Yes-DP   Yes-DP   Yes      Yes    Yes
	//   Lookup   Yes-DP   Yes-DP   Yes      Yes    Yes-DP
	//   Size     No       No       Yes      Yes    Yes
	//   Modify   Yes-DP   Yes-DP   Yes      Yes    Yes
	rec := [][]Entry{
		{YesDP, YesDP, Yes, Yes, Yes},
		{YesDP, YesDP, Yes, Yes, Yes},
		{YesDP, YesDP, Yes, Yes, YesDP},
		{No, No, Yes, Yes, Yes},
		{YesDP, YesDP, Yes, Yes, Yes},
	}
	t.Comm = comm
	t.Rec = rec
	return t
}

// PaperTables returns all four paper tables keyed by type name.
func PaperTables() map[string]*Table {
	return map[string]*Table{
		"page":  PageTable(),
		"stack": StackTable(),
		"set":   SetTable(),
		"table": KTableTable(),
	}
}
