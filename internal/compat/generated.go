package compat

import (
	"fmt"
	"math/rand"

	"repro/internal/adt"
)

// Generated is a merged compatibility table for one Abstract object in
// the abstract-data-type simulation model (§5.5.2): each (requested,
// executed) cell is directly one of commutative / recoverable /
// non-recoverable, with no parameter dependence ("we can merge the two
// tables into a single compatibility table; each entry in this table
// will be one of commutative, recoverable, or non-recoverable").
type Generated struct {
	// Sigma is the number of operations.
	Sigma int
	// Cell[i][j] classifies requested op i against executed op j.
	Cell [][]Rel
}

// Classify implements Classifier for abstract operations "op0" … .
func (g *Generated) Classify(requested, executed adt.Op) Rel {
	i, okI := abstractIndex(requested.Name, g.Sigma)
	j, okJ := abstractIndex(executed.Name, g.Sigma)
	if !okI || !okJ {
		return Conflict
	}
	return g.Cell[i][j]
}

// abstractIndex parses "op<i>" without materialising candidate names
// (the old linear probe allocated one string per comparison).
func abstractIndex(name string, sigma int) (int, bool) {
	if len(name) < 3 || name[0] != 'o' || name[1] != 'p' {
		return 0, false
	}
	if name[2] == '0' && len(name) > 3 {
		return 0, false // leading zero: not a canonical AbstractOpName
	}
	if len(name) > 2+10 {
		return 0, false // more digits than any int32-range sigma; avoids overflow
	}
	i := 0
	for k := 2; k < len(name); k++ {
		d := name[k]
		if d < '0' || d > '9' {
			return 0, false
		}
		i = i*10 + int(d-'0')
	}
	if i >= sigma {
		return 0, false
	}
	return i, true
}

// Counts returns the number of commutative, recoverable and
// non-recoverable cells.
func (g *Generated) Counts() (comm, rec, non int) {
	for i := range g.Cell {
		for j := range g.Cell[i] {
			switch g.Cell[i][j] {
			case Commutes:
				comm++
			case Recoverable:
				rec++
			default:
				non++
			}
		}
	}
	return
}

// Generate builds a random merged table per the paper's recipe for an
// object with sigma operations: Pc/2 nondiagonal cells are chosen at
// random and set commutative together with their symmetric partners
// (commutativity is symmetric); then Pr of the remaining cells are
// chosen uniformly at random and set recoverable (recoverability need
// not be symmetric); every other cell is non-recoverable.
//
// Pc must be even, 0 ≤ Pc ≤ sigma²−sigma, and 0 ≤ Pr ≤ sigma²−Pc.
func Generate(r *rand.Rand, sigma, pc, pr int) (*Generated, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("compat: Generate: sigma must be positive, got %d", sigma)
	}
	if pc%2 != 0 || pc < 0 || pc > sigma*sigma-sigma {
		return nil, fmt.Errorf("compat: Generate: Pc=%d invalid for sigma=%d (must be even, ≤ %d)", pc, sigma, sigma*sigma-sigma)
	}
	if pr < 0 || pr > sigma*sigma-pc {
		return nil, fmt.Errorf("compat: Generate: Pr=%d invalid for sigma=%d, Pc=%d", pr, sigma, pc)
	}
	g := &Generated{Sigma: sigma, Cell: make([][]Rel, sigma)}
	for i := range g.Cell {
		g.Cell[i] = make([]Rel, sigma)
		for j := range g.Cell[i] {
			g.Cell[i][j] = Conflict
		}
	}

	// Unordered nondiagonal pairs; picking a pair sets both (i,j) and
	// (j,i) commutative.
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < sigma; i++ {
		for j := i + 1; j < sigma; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	r.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
	for _, p := range pairs[:pc/2] {
		g.Cell[p.i][p.j] = Commutes
		g.Cell[p.j][p.i] = Commutes
	}

	var rest []pair
	for i := 0; i < sigma; i++ {
		for j := 0; j < sigma; j++ {
			if g.Cell[i][j] != Commutes {
				rest = append(rest, pair{i, j})
			}
		}
	}
	r.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
	for _, p := range rest[:pr] {
		g.Cell[p.i][p.j] = Recoverable
	}
	return g, nil
}

// MustGenerate is Generate but panics on invalid parameters; for use
// with the paper's known-good settings.
func MustGenerate(r *rand.Rand, sigma, pc, pr int) *Generated {
	g, err := Generate(r, sigma, pc, pr)
	if err != nil {
		panic(err)
	}
	return g
}
