package compat

import "repro/internal/adt"

// Derive recomputes a data type's compatibility table directly from the
// paper's definitions by exhaustive enumeration of the type's sampled
// states and parameters:
//
//   - Definition 2 (commutativity): state(o2, state(o1, s)) =
//     state(o1, state(o2, s)), return(o1, s) = return(o1, state(o2, s))
//     and return(o2, s) = return(o2, state(o1, s)) for every state s;
//   - Definition 1 (recoverability): return(o2, state(o1, s)) =
//     return(o2, s) for every state s, where o2 is the requested and o1
//     the executed operation.
//
// Each (requested, executed) name pair is classified over every concrete
// parameter assignment, bucketing assignments by whether the two
// operations' input parameters are equal; the buckets map onto the
// paper's Yes / Yes-SP / Yes-DP / No entries.
func Derive(t adt.Enumerable) *Table {
	specs := t.Specs()
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.Name
	}
	out := NewTable(t.Name(), names)
	for i, req := range specs {
		for j, exec := range specs {
			comm, rec := derivePair(t, req, exec)
			out.Comm[i][j] = comm
			out.Rec[i][j] = rec
		}
	}
	return out
}

// derivePair classifies one (requested, executed) operation-name pair.
func derivePair(t adt.Enumerable, req, exec adt.OpSpec) (comm, rec Entry) {
	reqOps := instances(t, req)
	execOps := instances(t, exec)
	bothArgs := req.HasArg && exec.HasArg

	// Bucketed verdicts: index 0 = same parameter, 1 = different.
	// When the pair is not parameterised on both sides there is a
	// single bucket (index 1, "unconditional").
	commOK := [2]bool{true, true}
	recOK := [2]bool{true, true}
	seen := [2]bool{}

	for _, ro := range reqOps {
		for _, eo := range execOps {
			b := 1
			if bothArgs && ro.Arg == eo.Arg {
				b = 0
			}
			seen[b] = true
			if commOK[b] && !commutesForAll(t, ro, eo) {
				commOK[b] = false
			}
			if recOK[b] && !recoverableForAll(t, ro, eo) {
				recOK[b] = false
			}
		}
	}
	return verdict(commOK, seen, bothArgs), verdict(recOK, seen, bothArgs)
}

func verdict(ok [2]bool, seen [2]bool, bothArgs bool) Entry {
	if !bothArgs {
		if ok[1] && seen[1] {
			return Yes
		}
		return No
	}
	switch {
	case ok[0] && ok[1]:
		return Yes
	case ok[0] && seen[0]:
		return YesSP
	case ok[1] && seen[1]:
		return YesDP
	default:
		return No
	}
}

// instances expands a spec into concrete operations over the type's
// sampled parameter values.
func instances(t adt.Enumerable, sp adt.OpSpec) []adt.Op {
	if !sp.HasArg {
		return []adt.Op{{Name: sp.Name}}
	}
	args := t.EnumArgs()
	var out []adt.Op
	for _, a := range args {
		if !sp.HasAux {
			out = append(out, adt.Op{Name: sp.Name, Arg: a, HasArg: true})
			continue
		}
		for _, x := range args {
			out = append(out, adt.Op{Name: sp.Name, Arg: a, HasArg: true, Aux: x, HasAux: true})
		}
	}
	return out
}

// commutesForAll checks Definition 2 over every sampled state.
func commutesForAll(t adt.Enumerable, o1, o2 adt.Op) bool {
	for _, s := range t.EnumStates() {
		sa := s.Clone()
		r1a := adt.MustApply(t, sa, o1)
		r2a := adt.MustApply(t, sa, o2)
		sb := s.Clone()
		r2b := adt.MustApply(t, sb, o2)
		r1b := adt.MustApply(t, sb, o1)
		if !sa.Equal(sb) || r1a != r1b || r2a != r2b {
			return false
		}
	}
	return true
}

// recoverableForAll checks Definition 1 (req RR exec) over every sampled
// state: executing exec first must not change req's return value.
func recoverableForAll(t adt.Enumerable, req, exec adt.Op) bool {
	for _, s := range t.EnumStates() {
		sa := s.Clone()
		adt.MustApply(t, sa, exec)
		withExec := adt.MustApply(t, sa, req)
		sb := s.Clone()
		without := adt.MustApply(t, sb, req)
		if withExec != without {
			return false
		}
	}
	return true
}

// RecoverableOverSequence checks the generalised Definition 3 for a
// concrete case: with base state s, after executing the uncommitted
// sequence seq, operation req's return value must be identical for every
// subsequence of seq (i.e. no matter which of the intervening
// uncommitted operations later abort). Lemma 2 proves pairwise
// recoverability implies this; the tests exercise both directions.
func RecoverableOverSequence(t adt.Type, s adt.State, seq []adt.Op, req adt.Op) (bool, error) {
	var want adt.Ret
	first := true
	n := len(seq)
	for mask := 0; mask < 1<<n; mask++ {
		st := s.Clone()
		for i, op := range seq {
			if mask&(1<<i) != 0 {
				if _, err := t.Apply(st, op); err != nil {
					return false, err
				}
			}
		}
		got, err := t.Apply(st, req)
		if err != nil {
			return false, err
		}
		if first {
			want, first = got, false
		} else if got != want {
			return false, nil
		}
	}
	return true, nil
}
