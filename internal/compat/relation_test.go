package compat

import (
	"math/rand"
	"testing"

	"repro/internal/adt"
)

func TestEntryHolds(t *testing.T) {
	cases := []struct {
		e          Entry
		same, diff bool
	}{
		{No, false, false},
		{Yes, true, true},
		{YesSP, true, false},
		{YesDP, false, true},
	}
	for _, c := range cases {
		if c.e.Holds(true) != c.same || c.e.Holds(false) != c.diff {
			t.Errorf("%v.Holds: got (%v,%v), want (%v,%v)",
				c.e, c.e.Holds(true), c.e.Holds(false), c.same, c.diff)
		}
	}
}

func TestEntryString(t *testing.T) {
	want := map[Entry]string{No: "No", Yes: "Yes", YesSP: "Yes-SP", YesDP: "Yes-DP"}
	for e, s := range want {
		if e.String() != s {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), s)
		}
	}
}

func TestRelString(t *testing.T) {
	want := map[Rel]string{Commutes: "commutes", Recoverable: "recoverable", Conflict: "conflict"}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Rel(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestClassifyPage(t *testing.T) {
	tab := PageTable()
	read := adt.Op{Name: adt.PageRead}
	w1 := adt.Op{Name: adt.PageWrite, Arg: 1, HasArg: true}
	w2 := adt.Op{Name: adt.PageWrite, Arg: 2, HasArg: true}

	if got := tab.Classify(read, read); got != Commutes {
		t.Errorf("(read,read) = %v", got)
	}
	if got := tab.Classify(read, w1); got != Conflict {
		t.Errorf("(read requested, write executed) = %v, want conflict — the only conflicting pair", got)
	}
	if got := tab.Classify(w1, read); got != Recoverable {
		t.Errorf("(write, read) = %v, want recoverable", got)
	}
	if got := tab.Classify(w1, w2); got != Recoverable {
		t.Errorf("(write, write) = %v, want recoverable", got)
	}
}

func TestClassifyStackPaperClaims(t *testing.T) {
	tab := StackTable()
	p1 := adt.Op{Name: adt.StackPush, Arg: 4, HasArg: true}
	p2 := adt.Op{Name: adt.StackPush, Arg: 2, HasArg: true}
	pop := adt.Op{Name: adt.StackPop}
	top := adt.Op{Name: adt.StackTop}

	// "two push operations do not commute but a push operation is
	// recoverable relative to another push"
	if got := tab.Classify(p1, p2); got != Recoverable {
		t.Errorf("(push,push) different values = %v, want recoverable", got)
	}
	// Same value pushes commute (Yes-SP).
	if got := tab.Classify(p1, p1); got != Commutes {
		t.Errorf("(push,push) same value = %v, want commutes", got)
	}
	// "though a push operation does not commute with a top operation,
	// it is recoverable relative to top"
	if got := tab.Classify(p1, top); got != Recoverable {
		t.Errorf("(push,top) = %v, want recoverable", got)
	}
	if got := tab.Classify(pop, p1); got != Conflict {
		t.Errorf("(pop,push) = %v, want conflict", got)
	}
	if got := tab.Classify(top, top); got != Commutes {
		t.Errorf("(top,top) = %v, want commutes", got)
	}
}

func TestClassifySetParameters(t *testing.T) {
	tab := SetTable()
	if got := tab.Classify(adt.Op{Name: adt.SetDelete, Arg: 1, HasArg: true},
		adt.Op{Name: adt.SetInsert, Arg: 1, HasArg: true}); got != Conflict {
		t.Errorf("delete(1) after insert(1) = %v, want conflict", got)
	}
	if got := tab.Classify(adt.Op{Name: adt.SetDelete, Arg: 2, HasArg: true},
		adt.Op{Name: adt.SetInsert, Arg: 1, HasArg: true}); got != Commutes {
		t.Errorf("delete(2) after insert(1) = %v, want commutes", got)
	}
	// "insert is recoverable relative to member" even for the same
	// element.
	if got := tab.Classify(adt.Op{Name: adt.SetInsert, Arg: 3, HasArg: true},
		adt.Op{Name: adt.SetMember, Arg: 3, HasArg: true}); got != Recoverable {
		t.Errorf("insert(3) after member(3) = %v, want recoverable", got)
	}
}

func TestClassifyUnknownOpConflicts(t *testing.T) {
	tab := PageTable()
	if got := tab.Classify(adt.Op{Name: "mystery"}, adt.Op{Name: adt.PageRead}); got != Conflict {
		t.Errorf("unknown op = %v, want conflict", got)
	}
}

func TestCommutativityOnlyDemotesRecoverable(t *testing.T) {
	tab := PageTable()
	base := tab.Classify(adt.Op{Name: adt.PageWrite, Arg: 1, HasArg: true}, adt.Op{Name: adt.PageRead})
	if base != Recoverable {
		t.Fatalf("precondition: (write,read) = %v", base)
	}
	co := CommutativityOnly{C: tab}
	if got := co.Classify(adt.Op{Name: adt.PageWrite, Arg: 1, HasArg: true}, adt.Op{Name: adt.PageRead}); got != Conflict {
		t.Errorf("commutativity-only (write,read) = %v, want conflict", got)
	}
	if got := co.Classify(adt.Op{Name: adt.PageRead}, adt.Op{Name: adt.PageRead}); got != Commutes {
		t.Errorf("commutativity-only (read,read) = %v, want commutes", got)
	}
}

func TestTableEqual(t *testing.T) {
	a, b := PageTable(), PageTable()
	if !a.Equal(b) {
		t.Error("identical tables should be equal")
	}
	b.SetRec(adt.PageRead, adt.PageWrite, Yes)
	if a.Equal(b) {
		t.Error("modified table should differ")
	}
	if a.Equal(StackTable()) {
		t.Error("different types should differ")
	}
}

func TestGenerateCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, pc := range []int{0, 2, 4} {
		for _, pr := range []int{0, 4, 8} {
			g := MustGenerate(rng, 4, pc, pr)
			comm, rec, non := g.Counts()
			if comm != pc || rec != pr || non != 16-pc-pr {
				t.Errorf("Pc=%d Pr=%d: counts = (%d,%d,%d)", pc, pr, comm, rec, non)
			}
			// Commutative cells must be symmetric and nondiagonal.
			for i := 0; i < 4; i++ {
				if g.Cell[i][i] == Commutes {
					t.Errorf("Pc=%d Pr=%d: diagonal cell (%d,%d) commutative", pc, pr, i, i)
				}
				for j := 0; j < 4; j++ {
					if g.Cell[i][j] == Commutes && g.Cell[j][i] != Commutes {
						t.Errorf("commutative cell (%d,%d) not symmetric", i, j)
					}
				}
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(rng, 0, 0, 0); err == nil {
		t.Error("sigma=0 should error")
	}
	if _, err := Generate(rng, 4, 3, 0); err == nil {
		t.Error("odd Pc should error")
	}
	if _, err := Generate(rng, 4, 14, 0); err == nil {
		t.Error("Pc beyond nondiagonal count should error")
	}
	if _, err := Generate(rng, 4, 4, 13); err == nil {
		t.Error("Pr beyond remaining cells should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate should panic on invalid input")
		}
	}()
	MustGenerate(rng, 4, 3, 0)
}

func TestGeneratedClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := MustGenerate(rng, 4, 4, 8)
	op := func(i int) adt.Op { return adt.Op{Name: adt.AbstractOpName(i)} }
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got := g.Classify(op(i), op(j)); got != g.Cell[i][j] {
				t.Errorf("Classify(op%d,op%d) = %v, want %v", i, j, got, g.Cell[i][j])
			}
		}
	}
	if got := g.Classify(adt.Op{Name: "op9"}, op(0)); got != Conflict {
		t.Errorf("out-of-range op = %v, want conflict", got)
	}
}

// TestGenerateDeterministic: same seed, same table.
func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(rand.New(rand.NewSource(77)), 4, 4, 8)
	b := MustGenerate(rand.New(rand.NewSource(77)), 4, 4, 8)
	for i := range a.Cell {
		for j := range a.Cell[i] {
			if a.Cell[i][j] != b.Cell[i][j] {
				t.Fatalf("tables diverge at (%d,%d)", i, j)
			}
		}
	}
}
