package compat

import (
	"fmt"
	"strings"
)

// grid renders one matrix (commutativity or recoverability) in the
// paper's layout: rows are the requested operation, columns the
// executed operation.
func grid(title string, ops []string, m [][]Entry) string {
	width := len("Requested")
	for _, op := range ops {
		if len(op) > width {
			width = len(op)
		}
	}
	for i := range m {
		for j := range m[i] {
			if l := len(m[i][j].String()); l > width {
				width = l
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-*s", width+2, "Requested")
	for _, op := range ops {
		fmt.Fprintf(&b, "%-*s", width+2, op)
	}
	b.WriteByte('\n')
	for i, op := range ops {
		fmt.Fprintf(&b, "%-*s", width+2, op)
		for j := range ops {
			fmt.Fprintf(&b, "%-*s", width+2, m[i][j].String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Format renders both matrices of the table.
func (t *Table) Format() string {
	var b strings.Builder
	b.WriteString(grid(fmt.Sprintf("Commutativity for %s", titleCase(t.TypeName)), t.Ops, t.Comm))
	b.WriteByte('\n')
	b.WriteString(grid(fmt.Sprintf("Recoverability for %s", titleCase(t.TypeName)), t.Ops, t.Rec))
	return b.String()
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
