package compat

import (
	"math/rand"
	"testing"

	"repro/internal/adt"
)

// opInstances expands a type's specs into concrete operations over a
// couple of argument values, plus an operation the table has never
// heard of, so equivalence checks cover same-arg, different-arg,
// no-arg and unknown-name classifications.
func opInstances(t adt.Type) []adt.Op {
	ops := []adt.Op{{Name: "bogus-op"}, {Name: "bogus-arg", Arg: 1, HasArg: true}}
	for _, sp := range t.Specs() {
		if !sp.HasArg {
			ops = append(ops, sp.Invoke())
			continue
		}
		for _, a := range []int{1, 2} {
			if !sp.HasAux {
				ops = append(ops, sp.Invoke(a))
				continue
			}
			for _, x := range []int{1, 7} {
				ops = append(ops, sp.Invoke(a, x))
			}
		}
	}
	return ops
}

// checkEquivalence asserts the compiled classifier agrees with the
// source classifier on every operation pair, for both the plain
// relation and the CommutativityOnly composition, through every API
// surface (Classify, ClassifyIDs, Row).
func checkEquivalence(t *testing.T, name string, src Classifier, comp *Compiled, ops []adt.Op) {
	t.Helper()
	commOnly := CommutativityOnly{C: src}
	for _, req := range ops {
		reqID := comp.OpID(req.Name)
		row := comp.Row(reqID, false)
		rowComm := comp.Row(reqID, true)
		for _, exec := range ops {
			execID := comp.OpID(exec.Name)
			same := req.SameArg(exec)

			want := src.Classify(req, exec)
			if got := comp.Classify(req, exec); got != want {
				t.Fatalf("%s: Classify(%v, %v) = %v, source says %v", name, req, exec, got, want)
			}
			if got := comp.ClassifyIDs(reqID, execID, same, false); got != want {
				t.Fatalf("%s: ClassifyIDs(%v, %v) = %v, source says %v", name, req, exec, got, want)
			}
			if got := row.Classify(execID, same); got != want {
				t.Fatalf("%s: Row.Classify(%v, %v) = %v, source says %v", name, req, exec, got, want)
			}

			wantCO := commOnly.Classify(req, exec)
			if got := comp.ClassifyIDs(reqID, execID, same, true); got != wantCO {
				t.Fatalf("%s: ClassifyIDs(%v, %v, commOnly) = %v, CommutativityOnly says %v",
					name, req, exec, got, wantCO)
			}
			if got := rowComm.Classify(execID, same); got != wantCO {
				t.Fatalf("%s: Row(commOnly).Classify(%v, %v) = %v, CommutativityOnly says %v",
					name, req, exec, got, wantCO)
			}
		}
	}
}

// TestCompiledMatchesPaperTables covers Tables I–VIII (the hardcoded
// paper tables) and the tables the derivation engine recomputes from
// Definitions 1–2.
func TestCompiledMatchesPaperTables(t *testing.T) {
	cases := []struct {
		typ adt.Enumerable
		tab *Table
	}{
		{adt.Page{}, PageTable()},
		{adt.Stack{}, StackTable()},
		{adt.Set{}, SetTable()},
		{adt.KTable{}, KTableTable()},
	}
	for _, c := range cases {
		ops := opInstances(c.typ)
		checkEquivalence(t, "paper/"+c.tab.TypeName, c.tab, c.tab.Compile(), ops)
		derived := Derive(c.typ)
		checkEquivalence(t, "derived/"+derived.TypeName, derived, derived.Compile(), ops)
	}
}

// TestCompiledMatchesGeneratedTables covers the §5.5.2 random merged
// tables across a spread of sigma / Pc / Pr settings.
func TestCompiledMatchesGeneratedTables(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sigma := range []int{1, 2, 4, 6} {
		for trial := 0; trial < 5; trial++ {
			maxPc := sigma*sigma - sigma
			pc := rng.Intn(maxPc/2+1) * 2
			pr := rng.Intn(sigma*sigma - pc + 1)
			g := MustGenerate(rng, sigma, pc, pr)

			ops := []adt.Op{{Name: "bogus-op"}, {Name: "op99999"}}
			for i := 0; i < sigma; i++ {
				ops = append(ops, adt.Op{Name: adt.AbstractOpName(i)})
			}
			checkEquivalence(t, "generated", g, g.Compile(), ops)
		}
	}
}

// TestCompileClassifier covers the wrapper lowering: CommutativityOnly
// compiles to the demoted relation, an already-compiled classifier
// passes through, and unknown classifier implementations are refused.
func TestCompileClassifier(t *testing.T) {
	tab := StackTable()
	comp, ok := CompileClassifier(tab)
	if !ok || comp == nil {
		t.Fatal("table failed to compile")
	}
	if again, ok := CompileClassifier(comp); !ok || again != comp {
		t.Fatal("compiled classifier should pass through")
	}

	co, ok := CompileClassifier(CommutativityOnly{C: tab})
	if !ok {
		t.Fatal("CommutativityOnly(table) failed to compile")
	}
	checkEquivalence(t, "commonly-wrapped", CommutativityOnly{C: tab}, co, opInstances(adt.Stack{}))

	if _, ok := CompileClassifier(opaqueClassifier{tab}); ok {
		t.Fatal("unknown classifier implementations must not compile")
	}
	if _, ok := CompileClassifier(CommutativityOnly{C: opaqueClassifier{tab}}); ok {
		t.Fatal("CommutativityOnly around an unknown classifier must not compile")
	}
}

// opaqueClassifier hides a classifier's structure from CompileClassifier.
type opaqueClassifier struct{ inner Classifier }

func (o opaqueClassifier) Classify(req, exec adt.Op) Rel { return o.inner.Classify(req, exec) }

// TestCompileDuplicateOpName pins Compile against Classify for the
// degenerate table whose Ops repeats a name: both must resolve the
// first occurrence's row, even when a later duplicate row disagrees.
func TestCompileDuplicateOpName(t *testing.T) {
	tab := NewTable("dup", []string{"a", "b", "a"})
	tab.SetComm("a", "b", Yes)
	tab.Comm[2][1] = No // the shadowed duplicate row disagrees
	tab.Rec[2][1] = No
	comp := tab.Compile()
	opA, opB := adt.Op{Name: "a"}, adt.Op{Name: "b"}
	if want, got := tab.Classify(opA, opB), comp.Classify(opA, opB); got != want {
		t.Fatalf("duplicate-name table: compiled %v, source %v", got, want)
	}
	if got := comp.Classify(opA, opB); got != Commutes {
		t.Fatalf("duplicate-name table: classified %v, want commutes (first row wins)", got)
	}
}

// TestTableIndex pins the name→index map against the linear scan it
// replaced, including the miss case and a hand-rolled Table literal
// (nil map) falling back to the scan.
func TestTableIndex(t *testing.T) {
	tab := KTableTable()
	for i, name := range tab.Ops {
		if got := tab.Index(name); got != i {
			t.Fatalf("Index(%q) = %d, want %d", name, got, i)
		}
	}
	if got := tab.Index("nope"); got != -1 {
		t.Fatalf("Index miss = %d, want -1", got)
	}
	literal := &Table{TypeName: "raw", Ops: []string{"a", "b"}}
	if got := literal.Index("b"); got != 1 {
		t.Fatalf("literal Table Index(b) = %d, want 1", got)
	}
	if got := literal.Index("z"); got != -1 {
		t.Fatalf("literal Table Index miss = %d, want -1", got)
	}
}
