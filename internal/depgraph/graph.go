// Package depgraph implements the unified dependency graph of §4.2: a
// directed graph over active transactions whose edges are either
// wait-for edges (the requester waits for the holder of a conflicting
// operation) or commit-dependency edges (the requester executed an
// operation recoverable relative to the holder's and must therefore
// commit after it). Cycle detection over the union of both edge kinds
// simultaneously resolves deadlocks and serializability violations, the
// paper's key implementation trick ("the detection of commit dependency
// cycles is combined with the deadlock detection scheme").
package depgraph

import (
	"cmp"
	"fmt"
	"slices"
)

// TxnID identifies a transaction node.
type TxnID uint64

// EdgeKind distinguishes the two edge varieties.
type EdgeKind uint8

// Edge kinds.
const (
	// WaitFor: the source transaction is blocked waiting for the
	// target to terminate.
	WaitFor EdgeKind = iota
	// CommitDep: the source transaction must commit after the target
	// terminates.
	CommitDep
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	if k == WaitFor {
		return "wait-for"
	}
	return "commit-dep"
}

// node holds a transaction's outgoing edges by kind and a count of
// incoming edges per source (for O(degree) removal).
type node struct {
	out map[TxnID]EdgeKind // target -> kind (CommitDep dominates WaitFor if both)
	in  map[TxnID]struct{} // sources that have an edge to this node
	// visited is the epoch stamp of the last HasCycleFrom traversal
	// that reached this node; comparing against the graph's current
	// epoch replaces a per-call `seen` map.
	visited uint64
}

// Graph is a dependency graph. The zero value is not ready; use New.
// Graph is not safe for concurrent use; the scheduler in internal/core
// serialises access.
type Graph struct {
	nodes map[TxnID]*node
	// cycleChecks counts invocations of the cycle-detection
	// algorithm, the numerator of the paper's cycle check ratio.
	cycleChecks uint64

	// epoch is bumped per HasCycleFrom call; nodes stamped with the
	// current epoch count as visited.
	epoch uint64
	// stack is the reusable DFS work list.
	stack []TxnID
	// free pools removed nodes (with their emptied edge maps) for
	// reuse, so a steady-state Begin/terminate cycle allocates nothing.
	free []*node
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: make(map[TxnID]*node)}
}

// AddNode ensures a node exists for t.
func (g *Graph) AddNode(t TxnID) {
	if _, ok := g.nodes[t]; !ok {
		if n := len(g.free); n > 0 {
			nd := g.free[n-1]
			g.free[n-1] = nil
			g.free = g.free[:n-1]
			g.nodes[t] = nd
			return
		}
		g.nodes[t] = &node{out: make(map[TxnID]EdgeKind), in: make(map[TxnID]struct{})}
	}
}

// HasNode reports whether t is present.
func (g *Graph) HasNode(t TxnID) bool { _, ok := g.nodes[t]; return ok }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// AddEdge inserts a directed edge from -> to of the given kind, creating
// the nodes if needed. Self-edges are ignored. If both kinds of edge
// arise between the same pair, CommitDep wins: a wait-for edge is
// transient (it disappears when the request is granted) while the commit
// dependency constrains commit order for the transactions' lifetimes.
func (g *Graph) AddEdge(from, to TxnID, kind EdgeKind) {
	if from == to {
		return
	}
	g.AddNode(from)
	g.AddNode(to)
	f := g.nodes[from]
	if prev, ok := f.out[to]; ok {
		if prev == CommitDep || kind == WaitFor {
			return
		}
	}
	f.out[to] = kind
	g.nodes[to].in[from] = struct{}{}
}

// RemoveOutEdges deletes every outgoing edge of t, of both kinds. The
// distributed layer uses it to rebuild a transaction's mirrored edges
// from the per-site truth.
func (g *Graph) RemoveOutEdges(t TxnID) {
	n, ok := g.nodes[t]
	if !ok {
		return
	}
	for to := range n.out {
		delete(n.out, to)
		if tn, ok := g.nodes[to]; ok {
			delete(tn.in, t)
		}
	}
}

// RemoveWaitEdges deletes every outgoing wait-for edge of t (called when
// a blocked request is granted or abandoned). Commit-dependency edges
// are retained.
func (g *Graph) RemoveWaitEdges(t TxnID) {
	n, ok := g.nodes[t]
	if !ok {
		return
	}
	for to, kind := range n.out {
		if kind == WaitFor {
			delete(n.out, to)
			if tn, ok := g.nodes[to]; ok {
				delete(tn.in, t)
			}
		}
	}
}

// RemoveNode deletes t and every edge touching it (called when a
// transaction terminates, §4.2: "the node that corresponds to the
// terminating transaction together with the edges associated with the
// node is removed"). It returns the former in-neighbours of t — the
// transactions that were depending on or waiting for t — so the caller
// can re-examine them (e.g. commit pseudo-committed dependants whose
// out-degree dropped to zero).
func (g *Graph) RemoveNode(t TxnID) []TxnID {
	return g.RemoveNodeInto(t, nil)
}

// RemoveNodeInto is RemoveNode with a caller-provided scratch buffer:
// dependants are appended to buf[:0], so a reused buffer makes
// steady-state node removal allocation-free.
func (g *Graph) RemoveNodeInto(t TxnID, buf []TxnID) []TxnID {
	n, ok := g.nodes[t]
	if !ok {
		return buf[:0]
	}
	dependants := buf[:0]
	for src := range n.in {
		if sn, ok := g.nodes[src]; ok {
			delete(sn.out, t)
		}
		dependants = append(dependants, src)
	}
	for to := range n.out {
		if tn, ok := g.nodes[to]; ok {
			delete(tn.in, t)
		}
	}
	delete(g.nodes, t)
	clear(n.out)
	clear(n.in)
	g.free = append(g.free, n)
	slices.Sort(dependants)
	return dependants
}

// OutDegree returns the number of outgoing edges of t (both kinds).
func (g *Graph) OutDegree(t TxnID) int {
	if n, ok := g.nodes[t]; ok {
		return len(n.out)
	}
	return 0
}

// OutEdges returns t's outgoing edges sorted by target.
func (g *Graph) OutEdges(t TxnID) []Edge {
	return g.OutEdgesAppend(t, nil)
}

// OutEdgesAppend appends t's outgoing edges, sorted by target, to
// buf[:0] and returns the result. With a reused buffer the export is
// allocation-free; the distributed layer's per-site mirror traffic uses
// this.
func (g *Graph) OutEdgesAppend(t TxnID, buf []Edge) []Edge {
	out := buf[:0]
	n, ok := g.nodes[t]
	if !ok {
		return out
	}
	for to, kind := range n.out {
		out = append(out, Edge{From: t, To: to, Kind: kind})
	}
	slices.SortFunc(out, func(a, b Edge) int { return cmp.Compare(a.To, b.To) })
	return out
}

// Edge is a materialised edge, for inspection and tests.
type Edge struct {
	From, To TxnID
	Kind     EdgeKind
}

// String implements fmt.Stringer.
func (e Edge) String() string {
	return fmt.Sprintf("T%d -%s-> T%d", e.From, e.Kind, e.To)
}

// HasCycleFrom runs cycle detection starting at t: it reports whether t
// can reach itself following outgoing edges of either kind. Because
// edges are only ever *added* from the transaction currently making a
// request, any new cycle must pass through that transaction, so this
// targeted search is equivalent to a full-graph acyclicity check after
// each scheduler step. Each call increments the cycle-check counter.
func (g *Graph) HasCycleFrom(t TxnID) bool {
	g.cycleChecks++
	n, ok := g.nodes[t]
	if !ok {
		return false
	}
	// Epoch-stamped visited marks and a graph-owned stack replace the
	// per-call map and slice: in steady state the traversal allocates
	// nothing.
	g.epoch++
	epoch := g.epoch
	n.visited = epoch
	stack := g.stack[:0]
	for to := range n.out {
		stack = append(stack, to)
	}
	found := false
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == t {
			found = true
			break
		}
		cn, ok := g.nodes[cur]
		if !ok || cn.visited == epoch {
			continue
		}
		cn.visited = epoch
		for to := range cn.out {
			if to == t {
				found = true
				break
			}
			if tn, ok := g.nodes[to]; ok && tn.visited != epoch {
				stack = append(stack, to)
			}
		}
		if found {
			break
		}
	}
	g.stack = stack[:0]
	return found
}

// Acyclic reports whether the whole graph is acyclic (used by tests and
// debug assertions; the scheduler relies on HasCycleFrom).
func (g *Graph) Acyclic() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[TxnID]int, len(g.nodes))
	var visit func(TxnID) bool
	visit = func(t TxnID) bool {
		colour[t] = grey
		for to := range g.nodes[t].out {
			switch colour[to] {
			case grey:
				return false
			case white:
				if !visit(to) {
					return false
				}
			}
		}
		colour[t] = black
		return true
	}
	for t := range g.nodes {
		if colour[t] == white {
			if !visit(t) {
				return false
			}
		}
	}
	return true
}

// CycleChecks returns the number of cycle-detection invocations so far.
func (g *Graph) CycleChecks() uint64 { return g.cycleChecks }

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []TxnID {
	out := make([]TxnID, 0, len(g.nodes))
	for t := range g.nodes {
		out = append(out, t)
	}
	slices.Sort(out)
	return out
}
