// Package depgraph implements the unified dependency graph of §4.2: a
// directed graph over active transactions whose edges are either
// wait-for edges (the requester waits for the holder of a conflicting
// operation) or commit-dependency edges (the requester executed an
// operation recoverable relative to the holder's and must therefore
// commit after it). Cycle detection over the union of both edge kinds
// simultaneously resolves deadlocks and serializability violations, the
// paper's key implementation trick ("the detection of commit dependency
// cycles is combined with the deadlock detection scheme").
package depgraph

import (
	"fmt"
	"sort"
)

// TxnID identifies a transaction node.
type TxnID uint64

// EdgeKind distinguishes the two edge varieties.
type EdgeKind uint8

// Edge kinds.
const (
	// WaitFor: the source transaction is blocked waiting for the
	// target to terminate.
	WaitFor EdgeKind = iota
	// CommitDep: the source transaction must commit after the target
	// terminates.
	CommitDep
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	if k == WaitFor {
		return "wait-for"
	}
	return "commit-dep"
}

// node holds a transaction's outgoing edges by kind and a count of
// incoming edges per source (for O(degree) removal).
type node struct {
	out map[TxnID]EdgeKind // target -> kind (CommitDep dominates WaitFor if both)
	in  map[TxnID]struct{} // sources that have an edge to this node
}

// Graph is a dependency graph. The zero value is not ready; use New.
// Graph is not safe for concurrent use; the scheduler in internal/core
// serialises access.
type Graph struct {
	nodes map[TxnID]*node
	// cycleChecks counts invocations of the cycle-detection
	// algorithm, the numerator of the paper's cycle check ratio.
	cycleChecks uint64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodes: make(map[TxnID]*node)}
}

// AddNode ensures a node exists for t.
func (g *Graph) AddNode(t TxnID) {
	if _, ok := g.nodes[t]; !ok {
		g.nodes[t] = &node{out: make(map[TxnID]EdgeKind), in: make(map[TxnID]struct{})}
	}
}

// HasNode reports whether t is present.
func (g *Graph) HasNode(t TxnID) bool { _, ok := g.nodes[t]; return ok }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// AddEdge inserts a directed edge from -> to of the given kind, creating
// the nodes if needed. Self-edges are ignored. If both kinds of edge
// arise between the same pair, CommitDep wins: a wait-for edge is
// transient (it disappears when the request is granted) while the commit
// dependency constrains commit order for the transactions' lifetimes.
func (g *Graph) AddEdge(from, to TxnID, kind EdgeKind) {
	if from == to {
		return
	}
	g.AddNode(from)
	g.AddNode(to)
	f := g.nodes[from]
	if prev, ok := f.out[to]; ok {
		if prev == CommitDep || kind == WaitFor {
			return
		}
	}
	f.out[to] = kind
	g.nodes[to].in[from] = struct{}{}
}

// RemoveOutEdges deletes every outgoing edge of t, of both kinds. The
// distributed layer uses it to rebuild a transaction's mirrored edges
// from the per-site truth.
func (g *Graph) RemoveOutEdges(t TxnID) {
	n, ok := g.nodes[t]
	if !ok {
		return
	}
	for to := range n.out {
		delete(n.out, to)
		if tn, ok := g.nodes[to]; ok {
			delete(tn.in, t)
		}
	}
}

// RemoveWaitEdges deletes every outgoing wait-for edge of t (called when
// a blocked request is granted or abandoned). Commit-dependency edges
// are retained.
func (g *Graph) RemoveWaitEdges(t TxnID) {
	n, ok := g.nodes[t]
	if !ok {
		return
	}
	for to, kind := range n.out {
		if kind == WaitFor {
			delete(n.out, to)
			if tn, ok := g.nodes[to]; ok {
				delete(tn.in, t)
			}
		}
	}
}

// RemoveNode deletes t and every edge touching it (called when a
// transaction terminates, §4.2: "the node that corresponds to the
// terminating transaction together with the edges associated with the
// node is removed"). It returns the former in-neighbours of t — the
// transactions that were depending on or waiting for t — so the caller
// can re-examine them (e.g. commit pseudo-committed dependants whose
// out-degree dropped to zero).
func (g *Graph) RemoveNode(t TxnID) []TxnID {
	n, ok := g.nodes[t]
	if !ok {
		return nil
	}
	dependants := make([]TxnID, 0, len(n.in))
	for src := range n.in {
		if sn, ok := g.nodes[src]; ok {
			delete(sn.out, t)
		}
		dependants = append(dependants, src)
	}
	for to := range n.out {
		if tn, ok := g.nodes[to]; ok {
			delete(tn.in, t)
		}
	}
	delete(g.nodes, t)
	sort.Slice(dependants, func(i, j int) bool { return dependants[i] < dependants[j] })
	return dependants
}

// OutDegree returns the number of outgoing edges of t (both kinds).
func (g *Graph) OutDegree(t TxnID) int {
	if n, ok := g.nodes[t]; ok {
		return len(n.out)
	}
	return 0
}

// OutEdges returns t's outgoing edges sorted by target.
func (g *Graph) OutEdges(t TxnID) []Edge {
	n, ok := g.nodes[t]
	if !ok {
		return nil
	}
	out := make([]Edge, 0, len(n.out))
	for to, kind := range n.out {
		out = append(out, Edge{From: t, To: to, Kind: kind})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out
}

// Edge is a materialised edge, for inspection and tests.
type Edge struct {
	From, To TxnID
	Kind     EdgeKind
}

// String implements fmt.Stringer.
func (e Edge) String() string {
	return fmt.Sprintf("T%d -%s-> T%d", e.From, e.Kind, e.To)
}

// HasCycleFrom runs cycle detection starting at t: it reports whether t
// can reach itself following outgoing edges of either kind. Because
// edges are only ever *added* from the transaction currently making a
// request, any new cycle must pass through that transaction, so this
// targeted search is equivalent to a full-graph acyclicity check after
// each scheduler step. Each call increments the cycle-check counter.
func (g *Graph) HasCycleFrom(t TxnID) bool {
	g.cycleChecks++
	n, ok := g.nodes[t]
	if !ok {
		return false
	}
	seen := map[TxnID]bool{t: true}
	stack := make([]TxnID, 0, len(n.out))
	for to := range n.out {
		stack = append(stack, to)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == t {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if cn, ok := g.nodes[cur]; ok {
			for to := range cn.out {
				if to == t {
					return true
				}
				if !seen[to] {
					stack = append(stack, to)
				}
			}
		}
	}
	return false
}

// Acyclic reports whether the whole graph is acyclic (used by tests and
// debug assertions; the scheduler relies on HasCycleFrom).
func (g *Graph) Acyclic() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[TxnID]int, len(g.nodes))
	var visit func(TxnID) bool
	visit = func(t TxnID) bool {
		colour[t] = grey
		for to := range g.nodes[t].out {
			switch colour[to] {
			case grey:
				return false
			case white:
				if !visit(to) {
					return false
				}
			}
		}
		colour[t] = black
		return true
	}
	for t := range g.nodes {
		if colour[t] == white {
			if !visit(t) {
				return false
			}
		}
	}
	return true
}

// CycleChecks returns the number of cycle-detection invocations so far.
func (g *Graph) CycleChecks() uint64 { return g.cycleChecks }

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []TxnID {
	out := make([]TxnID, 0, len(g.nodes))
	for t := range g.nodes {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
