//go:build !race

package depgraph

import "testing"

// TestHasCycleFromZeroAllocs pins the epoch-based cycle detection:
// after the first traversal grows the graph-owned stack, repeated
// checks over a long dependency chain never touch the heap. (Race
// builds skip — instrumentation allocates.)
func TestHasCycleFromZeroAllocs(t *testing.T) {
	g := New()
	const n = 200
	// A dense "every writer depends on every earlier writer" shape,
	// like the cycle-detection benchmark.
	for i := TxnID(1); i <= n; i++ {
		g.AddNode(i)
		for j := TxnID(1); j < i; j++ {
			g.AddEdge(i, j, CommitDep)
		}
	}
	if g.HasCycleFrom(n) {
		t.Fatal("acyclic graph reported a cycle")
	}
	if avg := testing.AllocsPerRun(200, func() {
		if g.HasCycleFrom(n) {
			t.Fatal("acyclic graph reported a cycle")
		}
	}); avg != 0 {
		t.Fatalf("HasCycleFrom allocates %.2f times per check, want 0", avg)
	}
}

// TestMirrorChurnZeroAllocs pins the interned mirror's steady state:
// observe/cycle-check/remove churn over pooled nodes and the
// epoch-stamped DFS never touches the heap (the map-of-maps mirror
// allocated inner maps on every Observe).
func TestMirrorChurnZeroAllocs(t *testing.T) {
	m := NewMirror()
	var next TxnID = 1
	cycle := func() {
		next += 2
		from, to := next, next+1
		m.Observe(0, from, []Edge{{From: from, To: to, Kind: CommitDep}})
		if m.HasCycleFrom(from) {
			t.Fatal("phantom cycle")
		}
		// Remove the source first: the target then has no dependants,
		// so neither removal allocates a dependant list.
		m.RemoveTxn(from)
		m.RemoveTxn(to)
	}
	for i := 0; i < 100; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("mirror churn allocates %.2f times per cycle, want 0", avg)
	}
}

// TestNodeChurnZeroAllocs pins the node pool: a steady-state
// add/remove cycle reuses pooled nodes and scratch.
func TestNodeChurnZeroAllocs(t *testing.T) {
	g := New()
	g.AddNode(1)
	var next TxnID = 1
	var buf []TxnID
	cycle := func() {
		next++
		g.AddNode(next)
		g.AddEdge(next, next-1, WaitFor)
		buf = g.RemoveNodeInto(next-1, buf)
	}
	for i := 0; i < 100; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("node churn allocates %.2f times per cycle, want 0", avg)
	}
}
