package depgraph

import (
	"reflect"
	"testing"
)

func edge(from, to TxnID, k EdgeKind) Edge { return Edge{From: from, To: to, Kind: k} }

// TestMirrorCrossSiteCycle: the defining scenario — site 1 sees only
// B->A, site 2 sees only A->B; neither is cyclic alone, the union is.
func TestMirrorCrossSiteCycle(t *testing.T) {
	m := NewMirror()
	m.Observe(1, 2, []Edge{edge(2, 1, CommitDep)}) // site 1: B(2) -> A(1)
	if m.HasCycleFrom(2) {
		t.Fatal("single-site edge must not be a cycle")
	}
	m.Observe(2, 1, []Edge{edge(1, 2, CommitDep)}) // site 2: A(1) -> B(2)
	if !m.HasCycleFrom(1) {
		t.Fatal("union cycle not detected")
	}
	if got := m.CycleChecks(); got != 2 {
		t.Fatalf("cycle checks = %d, want 2", got)
	}
}

// TestMirrorObserveReplaces: a fresh report for the same (site, txn)
// replaces the old edges rather than accumulating them.
func TestMirrorObserveReplaces(t *testing.T) {
	m := NewMirror()
	m.Observe(0, 1, []Edge{edge(1, 2, WaitFor), edge(1, 3, CommitDep)})
	if d := m.OutDegree(1); d != 2 {
		t.Fatalf("out-degree = %d, want 2", d)
	}
	m.Observe(0, 1, []Edge{edge(1, 3, CommitDep)})
	if d := m.OutDegree(1); d != 1 {
		t.Fatalf("after replace out-degree = %d, want 1", d)
	}
	m.Observe(0, 1, nil)
	if d := m.OutDegree(1); d != 0 {
		t.Fatalf("after clear out-degree = %d, want 0", d)
	}
}

// TestMirrorSiteScoped: clearing one site's contribution leaves
// another site's copy of the same logical edge intact.
func TestMirrorSiteScoped(t *testing.T) {
	m := NewMirror()
	m.Observe(0, 1, []Edge{edge(1, 2, CommitDep)})
	m.Observe(1, 1, []Edge{edge(1, 2, WaitFor)})
	if d := m.OutDegree(1); d != 1 {
		t.Fatalf("distinct targets = %d, want 1 (same target via two sites)", d)
	}
	m.Observe(0, 1, nil) // site 0 withdraws
	if d := m.OutDegree(1); d != 1 {
		t.Fatalf("after site-0 withdrawal = %d, want 1 (site 1 still reports)", d)
	}
	m.Observe(1, 1, nil)
	if d := m.OutDegree(1); d != 0 {
		t.Fatalf("after both withdraw = %d, want 0", d)
	}
}

// TestMirrorRemoveTxn: removal strips edges in both directions and
// returns the dependants whose out-degree may have drained.
func TestMirrorRemoveTxn(t *testing.T) {
	m := NewMirror()
	m.Observe(0, 2, []Edge{edge(2, 1, CommitDep)})
	m.Observe(1, 3, []Edge{edge(3, 1, WaitFor)})
	m.Observe(1, 1, []Edge{edge(1, 4, CommitDep)})

	deps := m.RemoveTxn(1)
	if want := []TxnID{2, 3}; !reflect.DeepEqual(deps, want) {
		t.Fatalf("dependants = %v, want %v", deps, want)
	}
	for _, id := range []TxnID{1, 2, 3} {
		if d := m.OutDegree(id); d != 0 {
			t.Fatalf("T%d out-degree = %d after removal", id, d)
		}
	}
	if deps := m.RemoveTxn(99); len(deps) != 0 {
		t.Fatalf("removing unknown txn returned %v", deps)
	}
}

// TestMirrorEdges: the union snapshot dedups per pair with CommitDep
// dominating.
func TestMirrorEdges(t *testing.T) {
	m := NewMirror()
	m.Observe(0, 1, []Edge{edge(1, 2, WaitFor)})
	m.Observe(1, 1, []Edge{edge(1, 2, CommitDep)})
	m.Observe(0, 2, []Edge{edge(2, 3, WaitFor)})
	got := m.Edges()
	want := []Edge{edge(1, 2, CommitDep), edge(2, 3, WaitFor)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
}

// TestMirrorIgnoresForeignAndSelfEdges: Observe drops edges whose
// source is not the reported transaction, and self-edges.
func TestMirrorIgnoresForeignAndSelfEdges(t *testing.T) {
	m := NewMirror()
	m.Observe(0, 1, []Edge{edge(2, 3, CommitDep), edge(1, 1, CommitDep)})
	if d := m.OutDegree(1) + m.OutDegree(2); d != 0 {
		t.Fatalf("foreign/self edges ingested: %v", m.Edges())
	}
}

// TestMirrorDropSite: the crash-stop purge removes exactly one site's
// contribution — edges another site also reported survive, and the
// structure stays consistent for removal and cycle detection.
func TestMirrorDropSite(t *testing.T) {
	m := NewMirror()
	m.Observe(0, 1, []Edge{edge(1, 2, WaitFor), edge(1, 3, CommitDep)})
	m.Observe(1, 1, []Edge{edge(1, 2, CommitDep)}) // second site confirms 1->2
	m.Observe(1, 4, []Edge{edge(4, 1, WaitFor)})

	m.DropSite(0)
	if got := m.OutDegree(1); got != 1 {
		t.Fatalf("out-degree after drop = %d, want 1 (site 1's 1->2 survives)", got)
	}
	if got := m.Edges(); !reflect.DeepEqual(got, []Edge{edge(1, 2, CommitDep), edge(4, 1, WaitFor)}) {
		t.Fatalf("edges after drop = %v", got)
	}
	// The dropped site's edge to 3 is gone: removing 3 reports no
	// dependants.
	if deps := m.RemoveTxn(3); len(deps) != 0 {
		t.Fatalf("phantom dependants %v after DropSite", deps)
	}
	// Dropping the remaining site empties the mirror.
	m.DropSite(1)
	if got := m.Edges(); len(got) != 0 {
		t.Fatalf("edges after dropping every site = %v", got)
	}
	if m.HasCycleFrom(1) {
		t.Fatal("empty mirror reports a cycle")
	}
}

// TestMirrorLongestChain: the hold-policy depth oracle. Leaves count
// 1, chains count their length, a diamond counts its longest side, and
// the memo survives neither RemoveTxn nor a new Observe (each call
// re-walks under a fresh epoch).
func TestMirrorLongestChain(t *testing.T) {
	m := NewMirror()
	if d := m.LongestChainFrom(9); d != 0 {
		t.Fatalf("unknown txn depth = %d, want 0", d)
	}
	// Chain 4 -> 3 -> 2 -> 1.
	m.Observe(0, 2, []Edge{edge(2, 1, CommitDep)})
	m.Observe(0, 3, []Edge{edge(3, 2, CommitDep)})
	m.Observe(1, 4, []Edge{edge(4, 3, CommitDep)})
	if d := m.LongestChainFrom(1); d != 1 {
		t.Fatalf("leaf depth = %d, want 1", d)
	}
	if d := m.LongestChainFrom(4); d != 4 {
		t.Fatalf("chain head depth = %d, want 4", d)
	}
	if d := m.LongestChainFrom(3); d != 3 {
		t.Fatalf("mid-chain depth = %d, want 3", d)
	}
	// A diamond 5 -> {4, 2}: the long side through 4 wins.
	m.Observe(1, 5, []Edge{edge(5, 4, CommitDep), edge(5, 2, CommitDep)})
	if d := m.LongestChainFrom(5); d != 5 {
		t.Fatalf("diamond depth = %d, want 5 (longest side)", d)
	}
	// Releasing the chain's base shortens every path through it.
	m.RemoveTxn(1)
	m.Observe(0, 2, nil) // 2's report drains with its dependency
	if d := m.LongestChainFrom(4); d != 3 {
		t.Fatalf("depth after base release = %d, want 3", d)
	}
	if d := m.LongestChainFrom(5); d != 4 {
		t.Fatalf("diamond depth after base release = %d, want 4", d)
	}
}
