package depgraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// graphScript is a random sequence of graph mutations, generated for
// testing/quick.
type graphScript struct {
	steps []gstep
}

type gstep struct {
	kind byte // 0 add edge, 1 remove node, 2 remove wait edges
	a, b TxnID
	ek   EdgeKind
}

const quickNodes = 10

// Generate implements quick.Generator.
func (graphScript) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size%80 + 20)
	steps := make([]gstep, n)
	for i := range steps {
		steps[i] = gstep{
			kind: byte(r.Intn(6)), // bias toward adds (kinds 0..3 add)
			a:    TxnID(r.Intn(quickNodes)),
			b:    TxnID(r.Intn(quickNodes)),
			ek:   EdgeKind(r.Intn(2)),
		}
		if steps[i].kind < 4 {
			steps[i].kind = 0
		} else {
			steps[i].kind -= 3 // 1 or 2
		}
	}
	return reflect.ValueOf(graphScript{steps: steps})
}

// runScript replays a script with the scheduler's discipline: after any
// edge addition that closes a cycle, the source node is removed (the
// requester is the victim).
func runScript(s graphScript) *Graph {
	g := New()
	for _, st := range s.steps {
		switch st.kind {
		case 0:
			g.AddEdge(st.a, st.b, st.ek)
			if g.HasCycleFrom(st.a) {
				g.RemoveNode(st.a)
			}
		case 1:
			g.RemoveNode(st.a)
		case 2:
			g.RemoveWaitEdges(st.a)
		}
	}
	return g
}

// TestQuickDisciplineKeepsAcyclic: under the scheduler's add-check-
// abort discipline the graph is acyclic after every script.
func TestQuickDisciplineKeepsAcyclic(t *testing.T) {
	f := func(s graphScript) bool {
		return runScript(s).Acyclic()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickNoDanglingEdges: no surviving node points at a removed node,
// and in/out bookkeeping agree (removal via either endpoint works).
func TestQuickNoDanglingEdges(t *testing.T) {
	f := func(s graphScript) bool {
		g := runScript(s)
		present := make(map[TxnID]bool)
		for _, n := range g.Nodes() {
			present[n] = true
		}
		for _, n := range g.Nodes() {
			for _, e := range g.OutEdges(n) {
				if !present[e.To] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickOutDegreeMatchesEdges: OutDegree equals len(OutEdges) for
// every node after any script.
func TestQuickOutDegreeMatchesEdges(t *testing.T) {
	f := func(s graphScript) bool {
		g := runScript(s)
		for _, n := range g.Nodes() {
			if g.OutDegree(n) != len(g.OutEdges(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickRemoveWaitKeepsCommitDeps: RemoveWaitEdges never deletes a
// commit dependency.
func TestQuickRemoveWaitKeepsCommitDeps(t *testing.T) {
	f := func(s graphScript, victim uint8) bool {
		g := runScript(s)
		v := TxnID(victim) % quickNodes
		var deps []Edge
		for _, e := range g.OutEdges(v) {
			if e.Kind == CommitDep {
				deps = append(deps, e)
			}
		}
		g.RemoveWaitEdges(v)
		after := g.OutEdges(v)
		if len(after) != len(deps) {
			return false
		}
		for i := range deps {
			if after[i] != deps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickRemoveNodeReportsExactDependants: RemoveNode returns exactly
// the nodes that had an edge into the removed node.
func TestQuickRemoveNodeReportsExactDependants(t *testing.T) {
	f := func(s graphScript, victim uint8) bool {
		g := runScript(s)
		v := TxnID(victim) % quickNodes
		want := make(map[TxnID]bool)
		for _, n := range g.Nodes() {
			if n == v {
				continue
			}
			for _, e := range g.OutEdges(n) {
				if e.To == v {
					want[n] = true
				}
			}
		}
		got := g.RemoveNode(v)
		if len(got) != len(want) {
			return false
		}
		for _, d := range got {
			if !want[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
