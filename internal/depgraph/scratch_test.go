package depgraph

import (
	"reflect"
	"testing"
)

// TestRemoveNodeIntoReusesBuffer checks the scratch variant returns the
// same dependants as RemoveNode and appends into the provided buffer.
func TestRemoveNodeIntoReusesBuffer(t *testing.T) {
	build := func() *Graph {
		g := New()
		g.AddEdge(2, 1, WaitFor)
		g.AddEdge(3, 1, CommitDep)
		g.AddEdge(1, 4, WaitFor)
		return g
	}

	want := build().RemoveNode(1)
	if !reflect.DeepEqual(want, []TxnID{2, 3}) {
		t.Fatalf("RemoveNode dependants = %v, want [2 3]", want)
	}

	buf := make([]TxnID, 0, 8)
	got := build().RemoveNodeInto(1, buf)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RemoveNodeInto = %v, want %v", got, want)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("RemoveNodeInto did not use the provided buffer")
	}

	if got := build().RemoveNodeInto(99, buf); len(got) != 0 {
		t.Fatalf("RemoveNodeInto(missing) = %v, want empty", got)
	}
}

// TestOutEdgesAppendReusesBuffer checks the scratch variant matches
// OutEdges and appends into the provided buffer.
func TestOutEdgesAppendReusesBuffer(t *testing.T) {
	g := New()
	g.AddEdge(1, 3, WaitFor)
	g.AddEdge(1, 2, CommitDep)

	want := g.OutEdges(1)
	if !reflect.DeepEqual(want, []Edge{{1, 2, CommitDep}, {1, 3, WaitFor}}) {
		t.Fatalf("OutEdges = %v", want)
	}

	buf := make([]Edge, 0, 8)
	got := g.OutEdgesAppend(1, buf)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("OutEdgesAppend = %v, want %v", got, want)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("OutEdgesAppend did not use the provided buffer")
	}

	if got := g.OutEdgesAppend(42, buf); len(got) != 0 {
		t.Fatalf("OutEdgesAppend(missing) = %v, want empty", got)
	}
}

// TestNodePoolReuse checks a removed node's record is recycled intact:
// edges added after reuse behave like a fresh node's.
func TestNodePoolReuse(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WaitFor)
	g.RemoveNode(1)
	g.AddNode(3) // reuses node 1's record
	g.AddEdge(3, 2, CommitDep)
	if d := g.OutDegree(3); d != 1 {
		t.Fatalf("reused node out-degree = %d, want 1", d)
	}
	if g.HasCycleFrom(3) {
		t.Fatal("reused node reported a phantom cycle")
	}
	g.AddEdge(2, 3, WaitFor)
	if !g.HasCycleFrom(2) {
		t.Fatal("cycle through reused node not detected")
	}
}
