package depgraph

import (
	"cmp"
	"slices"
)

// Mirror is the coordinator's union of per-participant dependency
// graphs (§6 of the paper): each site reports the outgoing edges its
// local scheduler holds for a transaction, the mirror records them
// tagged with the reporting site, and cycle detection runs over the
// union of every site's edges. A cross-site deadlock or
// commit-dependency cycle — invisible to any single site — closes in
// the union and is caught here.
//
// Edges are site-scoped: Observe replaces one site's edge set for a
// transaction without disturbing the edges other sites reported for
// the same transaction, so the mirror can be rebuilt incrementally
// from per-site truth as coordination messages arrive.
//
// Mirror is not safe for concurrent use; the distributed coordinator
// serialises access.
type Mirror struct {
	// out[from][to][site] records that site reported an edge
	// from -> to of the given kind.
	out map[TxnID]map[TxnID]map[int]EdgeKind
	// in[to] is the set of sources with at least one edge to `to`,
	// for O(degree) node removal.
	in          map[TxnID]map[TxnID]struct{}
	cycleChecks uint64
	observes    uint64

	// seen and stack are reusable cycle-detection scratch.
	seen  map[TxnID]bool
	stack []TxnID
}

// NewMirror returns an empty mirror.
func NewMirror() *Mirror {
	return &Mirror{
		out:  make(map[TxnID]map[TxnID]map[int]EdgeKind),
		in:   make(map[TxnID]map[TxnID]struct{}),
		seen: make(map[TxnID]bool),
	}
}

// Observe replaces site's out-edge set for transaction from with the
// given edges (each must have Edge.From == from; edges reported for
// other transactions are ignored). Passing an empty or nil slice
// clears the site's contribution for the transaction.
func (m *Mirror) Observe(site int, from TxnID, edges []Edge) {
	m.observes++
	// Drop the site's previous contribution.
	for to, sites := range m.out[from] {
		if _, ok := sites[site]; ok {
			delete(sites, site)
			if len(sites) == 0 {
				delete(m.out[from], to)
				delete(m.in[to], from)
				if len(m.in[to]) == 0 {
					delete(m.in, to)
				}
			}
		}
	}
	for _, e := range edges {
		if e.From != from || e.To == from {
			continue
		}
		tos := m.out[from]
		if tos == nil {
			tos = make(map[TxnID]map[int]EdgeKind)
			m.out[from] = tos
		}
		sites := tos[e.To]
		if sites == nil {
			sites = make(map[int]EdgeKind)
			tos[e.To] = sites
		}
		sites[site] = e.Kind
		ins := m.in[e.To]
		if ins == nil {
			ins = make(map[TxnID]struct{})
			m.in[e.To] = ins
		}
		ins[from] = struct{}{}
	}
	if len(m.out[from]) == 0 {
		delete(m.out, from)
	}
}

// DropSite deletes every edge the given site contributed, for every
// transaction — the crash-stop purge: a crashed site's volatile
// dependency state is gone, so its reports must leave the union graph.
// Edges another site also reported for the same (from, to) pair
// survive; pairs only the crashed site reported disappear.
func (m *Mirror) DropSite(site int) {
	for from, tos := range m.out {
		for to, sites := range tos {
			if _, ok := sites[site]; ok {
				delete(sites, site)
				if len(sites) == 0 {
					delete(tos, to)
					delete(m.in[to], from)
					if len(m.in[to]) == 0 {
						delete(m.in, to)
					}
				}
			}
		}
		if len(tos) == 0 {
			delete(m.out, from)
		}
	}
}

// RemoveTxn deletes every edge touching t, from every site (the
// transaction terminated globally). It returns the former
// in-neighbours of t in ascending order — the transactions that were
// depending on or waiting for t — so the coordinator can re-examine
// them for release.
func (m *Mirror) RemoveTxn(t TxnID) []TxnID {
	dependants := make([]TxnID, 0, len(m.in[t]))
	for src := range m.in[t] {
		dependants = append(dependants, src)
		if tos := m.out[src]; tos != nil {
			delete(tos, t)
			if len(tos) == 0 {
				delete(m.out, src)
			}
		}
	}
	delete(m.in, t)
	for to := range m.out[t] {
		delete(m.in[to], t)
		if len(m.in[to]) == 0 {
			delete(m.in, to)
		}
	}
	delete(m.out, t)
	slices.Sort(dependants)
	return dependants
}

// OutDegree returns the number of distinct targets t has an edge to,
// across all sites. This is the size of the transaction's global
// dependency set: zero means the coordinator may release it.
func (m *Mirror) OutDegree(t TxnID) int {
	return len(m.out[t])
}

// HasCycleFrom reports whether t can reach itself over the union of
// every site's edges. As with Graph.HasCycleFrom, any new cycle must
// pass through the transaction whose edges were just observed, so the
// targeted search is equivalent to a full acyclicity check after each
// ingest.
func (m *Mirror) HasCycleFrom(t TxnID) bool {
	m.cycleChecks++
	start := m.out[t]
	if len(start) == 0 {
		return false
	}
	clear(m.seen)
	seen := m.seen
	seen[t] = true
	stack := m.stack[:0]
	for to := range start {
		stack = append(stack, to)
	}
	found := false
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == t {
			found = true
			break
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for to := range m.out[cur] {
			if to == t {
				found = true
				break
			}
			if !seen[to] {
				stack = append(stack, to)
			}
		}
		if found {
			break
		}
	}
	m.stack = stack[:0]
	return found
}

// CycleChecks returns the number of cycle-detection invocations so far.
func (m *Mirror) CycleChecks() uint64 { return m.cycleChecks }

// Observes returns the number of Observe calls so far — the mirror
// update count the batching tests pin (one update per touched site per
// conversation step).
func (m *Mirror) Observes() uint64 { return m.observes }

// Edges returns the union's materialised edges, one per (from, to)
// pair (CommitDep dominates WaitFor when sites disagree), sorted by
// source then target — for tests and inspection tools.
func (m *Mirror) Edges() []Edge {
	var out []Edge
	for from, tos := range m.out {
		for to, sites := range tos {
			kind := WaitFor
			for _, k := range sites {
				if k == CommitDep {
					kind = CommitDep
					break
				}
			}
			out = append(out, Edge{From: from, To: to, Kind: kind})
		}
	}
	slices.SortFunc(out, func(a, b Edge) int {
		if c := cmp.Compare(a.From, b.From); c != 0 {
			return c
		}
		return cmp.Compare(a.To, b.To)
	})
	return out
}
