package depgraph

import (
	"cmp"
	"slices"

	"repro/internal/telemetry"
)

// Mirror is the coordinator's union of per-participant dependency
// graphs (§6 of the paper): each site reports the outgoing edges its
// local scheduler holds for a transaction, the mirror records them
// tagged with the reporting site, and cycle detection runs over the
// union of every site's edges. A cross-site deadlock or
// commit-dependency cycle — invisible to any single site — closes in
// the union and is caught here.
//
// Edges are site-scoped: Observe replaces one site's edge set for a
// transaction without disturbing the edges other sites reported for
// the same transaction, so the mirror can be rebuilt incrementally
// from per-site truth as coordination messages arrive.
//
// Internally transactions are interned into dense node ids, adjacency
// is a slice of (target, site, kind) entries per node, and each site
// keeps a reverse index of the nodes it has contributed edges for —
// so DropSite walks only the transactions the crashed site touched
// (O(their edges)) instead of every edge of every transaction, and
// cycle detection stamps nodes with a per-call epoch instead of
// building a visited map (the Graph scratch idiom). Steady-state
// Observe/RemoveTxn/HasCycleFrom over pooled nodes allocate nothing.
//
// Mirror is not safe for concurrent use; the distributed coordinator
// serialises access.
type Mirror struct {
	// idOf interns transaction ids into dense node indices; nodes
	// holds the node bodies, recycled through free.
	idOf  map[TxnID]int32
	nodes []mnode
	free  []int32

	// bySite[site].froms counts, per source node, the edges that site
	// currently contributes — the reverse index DropSite walks.
	bySite map[int]*siteIndex

	cycleChecks uint64
	observes    uint64
	// edges counts live per-site edge contributions, kept in lockstep
	// by addEdge and the three removal paths.
	edges int

	// met, when set, receives cycle-check cost and chain-depth
	// observations (nil until SetMetrics — all calls are nil-safe).
	met *telemetry.MirrorMetrics

	// epoch stamps visited nodes per HasCycleFrom call; stack is the
	// reusable DFS work list; degScratch backs the distinct-target
	// recount in Observe.
	epoch uint64
	stack []int32
}

// SetMetrics attaches a telemetry block: subsequent cycle checks and
// chain-depth queries record their cost into it. The mirror runs
// under the coordinator mutex, so no synchronisation is added.
func (m *Mirror) SetMetrics(met *telemetry.MirrorMetrics) { m.met = met }

// EdgeCount returns the number of live per-site edge contributions —
// the mirror's size, as distinct from OutDegree's per-transaction
// distinct-target count.
func (m *Mirror) EdgeCount() int { return m.edges }

// medge is one site's contribution of a from -> to edge: out-adjacency
// entries live in the source node's out slice.
type medge struct {
	to   int32
	site int32
	kind EdgeKind
}

// mnode is one interned transaction. A free node has txn == 0 and
// empty containers; the maps are retained across reuse so steady-state
// churn allocates nothing.
type mnode struct {
	txn TxnID
	out []medge
	// pairCnt counts contributions per distinct target, so the global
	// dependency set size (distinct targets) and the in-index stay
	// O(1) per edge mutation. len(pairCnt) is the out-degree.
	pairCnt map[int32]int32
	// in is the set of source nodes with at least one edge to this
	// node, for O(degree) removal.
	in map[int32]struct{}
	// visited is the epoch stamp of the last traversal that reached
	// this node.
	visited uint64
	// depth memoises LongestChainFrom within one call (valid while
	// visited holds that call's epoch; 0 marks a node still on the DFS
	// path).
	depth uint32
}

// siteIndex is one site's reverse index: which source nodes it has
// contributed edges for, and how many edges per source.
type siteIndex struct {
	froms map[int32]int32
}

// NewMirror returns an empty mirror.
func NewMirror() *Mirror {
	return &Mirror{
		idOf:   make(map[TxnID]int32),
		bySite: make(map[int]*siteIndex),
	}
}

// intern returns the node index for t, allocating (or recycling) a
// node if t is new.
func (m *Mirror) intern(t TxnID) int32 {
	if idx, ok := m.idOf[t]; ok {
		return idx
	}
	var idx int32
	if n := len(m.free); n > 0 {
		idx = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		m.nodes = append(m.nodes, mnode{
			pairCnt: make(map[int32]int32),
			in:      make(map[int32]struct{}),
		})
		idx = int32(len(m.nodes) - 1)
	}
	m.nodes[idx].txn = t
	m.idOf[t] = idx
	return idx
}

// lookup returns t's node index, or -1.
func (m *Mirror) lookup(t TxnID) int32 {
	if idx, ok := m.idOf[t]; ok {
		return idx
	}
	return -1
}

// siteIdx returns (creating if needed) the reverse index for site.
func (m *Mirror) siteIdx(site int) *siteIndex {
	si := m.bySite[site]
	if si == nil {
		si = &siteIndex{froms: make(map[int32]int32)}
		m.bySite[site] = si
	}
	return si
}

// addEdge ingests one contribution from -> to for site, keeping the
// pair count, in-index and site reverse index consistent.
func (m *Mirror) addEdge(from, to int32, site int32, kind EdgeKind) {
	nf := &m.nodes[from]
	nf.out = append(nf.out, medge{to: to, site: site, kind: kind})
	m.edges++
	nf.pairCnt[to]++
	if nf.pairCnt[to] == 1 {
		m.nodes[to].in[from] = struct{}{}
	}
	m.siteIdx(int(site)).froms[from]++
}

// dropPair decrements the (from, to) pair count after one contribution
// was removed, clearing the in-index entry when the last site's copy
// goes.
func (m *Mirror) dropPair(from, to int32) {
	nf := &m.nodes[from]
	if c := nf.pairCnt[to] - 1; c > 0 {
		nf.pairCnt[to] = c
	} else {
		delete(nf.pairCnt, to)
		delete(m.nodes[to].in, from)
	}
}

// dropSiteRef decrements site's reverse-index count for from.
func (m *Mirror) dropSiteRef(site int32, from int32) {
	si := m.bySite[int(site)]
	if si == nil {
		return
	}
	if c := si.froms[from] - 1; c > 0 {
		si.froms[from] = c
	} else {
		delete(si.froms, from)
	}
}

// maybeFree releases a node that has no edges in either direction —
// the interning stays bounded by transactions with live mirror state,
// not by history. RemoveTxn frees unconditionally; Observe and
// DropSite call this for nodes they may have emptied.
func (m *Mirror) maybeFree(idx int32) {
	n := &m.nodes[idx]
	if n.txn == 0 || len(n.out) != 0 || len(n.in) != 0 {
		return
	}
	delete(m.idOf, n.txn)
	n.txn = 0
	n.out = n.out[:0]
	m.free = append(m.free, idx)
}

// Observe replaces site's out-edge set for transaction from with the
// given edges (each must have Edge.From == from; edges reported for
// other transactions are ignored). Passing an empty or nil slice
// clears the site's contribution for the transaction.
func (m *Mirror) Observe(site int, from TxnID, edges []Edge) {
	m.observes++
	fi := m.lookup(from)
	if fi < 0 {
		// Nothing recorded for from yet: empty reports stay free.
		has := false
		for _, e := range edges {
			if e.From == from && e.To != from {
				has = true
				break
			}
		}
		if !has {
			return
		}
		fi = m.intern(from)
	}
	// Drop the site's previous contribution: swap-delete the site's
	// entries out of the adjacency slice.
	s32 := int32(site)
	out := m.nodes[fi].out
	for i := 0; i < len(out); {
		if out[i].site == s32 {
			to := out[i].to
			out[i] = out[len(out)-1]
			out = out[:len(out)-1]
			m.edges--
			m.dropPair(fi, to)
			m.dropSiteRef(s32, fi)
			m.maybeFree(to)
			continue
		}
		i++
	}
	m.nodes[fi].out = out
	for _, e := range edges {
		if e.From != from || e.To == from {
			continue
		}
		m.addEdge(fi, m.intern(e.To), s32, e.Kind)
	}
	m.maybeFree(fi)
}

// DropSite deletes every edge the given site contributed, for every
// transaction — the crash-stop purge: a crashed site's volatile
// dependency state is gone, so its reports must leave the union graph.
// Edges another site also reported for the same (from, to) pair
// survive; pairs only the crashed site reported disappear. The
// reverse index makes this O(edges of the transactions the site
// touched), independent of the rest of the mirror.
func (m *Mirror) DropSite(site int) {
	si := m.bySite[site]
	if si == nil {
		return
	}
	s32 := int32(site)
	for fi := range si.froms {
		out := m.nodes[fi].out
		for i := 0; i < len(out); {
			if out[i].site == s32 {
				to := out[i].to
				out[i] = out[len(out)-1]
				out = out[:len(out)-1]
				m.edges--
				m.dropPair(fi, to)
				m.maybeFree(to)
				continue
			}
			i++
		}
		m.nodes[fi].out = out
		m.maybeFree(fi)
	}
	clear(si.froms)
}

// RemoveTxn deletes every edge touching t, from every site (the
// transaction terminated globally). It returns the former
// in-neighbours of t in ascending order — the transactions that were
// depending on or waiting for t — so the coordinator can re-examine
// them for release.
func (m *Mirror) RemoveTxn(t TxnID) []TxnID {
	ti := m.lookup(t)
	if ti < 0 {
		return nil
	}
	n := &m.nodes[ti]
	dependants := make([]TxnID, 0, len(n.in))
	for src := range n.in {
		dependants = append(dependants, m.nodes[src].txn)
		// Strip every site's src -> t contribution.
		out := m.nodes[src].out
		for i := 0; i < len(out); {
			if out[i].to == ti {
				m.dropSiteRef(out[i].site, src)
				out[i] = out[len(out)-1]
				out = out[:len(out)-1]
				m.edges--
				continue
			}
			i++
		}
		m.nodes[src].out = out
		delete(m.nodes[src].pairCnt, ti)
		m.maybeFree(src)
	}
	clear(n.in)
	m.edges -= len(n.out)
	for _, e := range n.out {
		m.dropSiteRef(e.site, ti)
		to := e.to
		if c := n.pairCnt[to] - 1; c > 0 {
			n.pairCnt[to] = c
		} else {
			delete(n.pairCnt, to)
			delete(m.nodes[to].in, ti)
			m.maybeFree(to)
		}
	}
	n.out = n.out[:0]
	clear(n.pairCnt)
	delete(m.idOf, t)
	n.txn = 0
	m.free = append(m.free, ti)
	slices.Sort(dependants)
	return dependants
}

// OutDegree returns the number of distinct targets t has an edge to,
// across all sites. This is the size of the transaction's global
// dependency set: zero means the coordinator may release it.
func (m *Mirror) OutDegree(t TxnID) int {
	ti := m.lookup(t)
	if ti < 0 {
		return 0
	}
	return len(m.nodes[ti].pairCnt)
}

// Has reports whether t currently has any mirrored state (an edge in
// either direction). The coordinator's finalisation fast path skips
// the mirror entirely for transactions that never grew one.
func (m *Mirror) Has(t TxnID) bool {
	_, ok := m.idOf[t]
	return ok
}

// HasCycleFrom reports whether t can reach itself over the union of
// every site's edges. As with Graph.HasCycleFrom, any new cycle must
// pass through the transaction whose edges were just observed, so the
// targeted search is equivalent to a full acyclicity check after each
// ingest. Epoch stamps and the mirror-owned stack make steady-state
// checks allocation-free.
func (m *Mirror) HasCycleFrom(t TxnID) bool {
	m.cycleChecks++
	ti := m.lookup(t)
	if ti < 0 || len(m.nodes[ti].out) == 0 {
		return false
	}
	m.epoch++
	epoch := m.epoch
	m.nodes[ti].visited = epoch
	stack := m.stack[:0]
	for _, e := range m.nodes[ti].out {
		stack = append(stack, e.to)
	}
	found := false
	visitedCount := uint64(1)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == ti {
			found = true
			break
		}
		cn := &m.nodes[cur]
		if cn.visited == epoch {
			continue
		}
		cn.visited = epoch
		visitedCount++
		for _, e := range cn.out {
			if e.to == ti {
				found = true
				break
			}
			if m.nodes[e.to].visited != epoch {
				stack = append(stack, e.to)
			}
		}
		if found {
			break
		}
	}
	m.stack = stack[:0]
	if m.met != nil {
		m.met.CycleCost.Observe(visitedCount)
	}
	return found
}

// LongestChainFrom returns the length, in transactions, of the longest
// dependency chain starting at t over the union of every site's edges:
// t itself plus the longest chain below any of its targets. A
// transaction with no mirrored out-edges chains at depth 1; an unknown
// transaction at 0. This is the commit-dependency chain a hold would
// join — the quantity a depth-bounded hold policy compares against its
// threshold — so it deliberately walks through every live target,
// held or still active: an active dependency will itself hold or
// terminate, and either way the chain below it gates this release.
func (m *Mirror) LongestChainFrom(t TxnID) int {
	ti := m.lookup(t)
	if ti < 0 {
		return 0
	}
	m.epoch++
	d := m.chainDepth(ti, m.epoch)
	if m.met != nil {
		m.met.ChainDepth.Observe(uint64(d))
	}
	return int(d)
}

// chainDepth computes the memoised longest-path depth of one node. The
// union graph is acyclic by protocol invariant (every ingest runs
// HasCycleFrom and aborts the closer), so the recursion terminates; a
// back edge that somehow slipped past is still safe — a node on the
// current DFS path carries the 0 sentinel and contributes no depth
// instead of recursing forever.
func (m *Mirror) chainDepth(idx int32, epoch uint64) uint32 {
	n := &m.nodes[idx]
	if n.visited == epoch {
		return n.depth
	}
	n.visited = epoch
	n.depth = 0
	var best uint32
	for _, e := range n.out {
		if d := m.chainDepth(e.to, epoch); d > best {
			best = d
		}
	}
	n.depth = best + 1
	return n.depth
}

// CycleChecks returns the number of cycle-detection invocations so far.
func (m *Mirror) CycleChecks() uint64 { return m.cycleChecks }

// Observes returns the number of Observe calls so far — the mirror
// update count the batching tests pin (one update per touched site per
// conversation step).
func (m *Mirror) Observes() uint64 { return m.observes }

// Edges returns the union's materialised edges, one per (from, to)
// pair (CommitDep dominates WaitFor when sites disagree), sorted by
// source then target — for tests and inspection tools.
func (m *Mirror) Edges() []Edge {
	var out []Edge
	for i := range m.nodes {
		n := &m.nodes[i]
		if n.txn == 0 {
			continue
		}
		for to := range n.pairCnt {
			kind := WaitFor
			for _, e := range n.out {
				if e.to == to && e.kind == CommitDep {
					kind = CommitDep
					break
				}
			}
			out = append(out, Edge{From: n.txn, To: m.nodes[to].txn, Kind: kind})
		}
	}
	slices.SortFunc(out, func(a, b Edge) int {
		if c := cmp.Compare(a.From, b.From); c != 0 {
			return c
		}
		return cmp.Compare(a.To, b.To)
	})
	return out
}
