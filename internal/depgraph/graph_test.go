package depgraph

import (
	"math/rand"
	"testing"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, CommitDep)
	if !g.HasNode(1) || !g.HasNode(2) {
		t.Fatal("AddEdge should create nodes")
	}
	if g.OutDegree(1) != 1 || g.OutDegree(2) != 0 {
		t.Errorf("out degrees: %d, %d", g.OutDegree(1), g.OutDegree(2))
	}
	g.AddEdge(1, 1, WaitFor)
	if g.OutDegree(1) != 1 {
		t.Error("self edges must be ignored")
	}
	edges := g.OutEdges(1)
	if len(edges) != 1 || edges[0] != (Edge{From: 1, To: 2, Kind: CommitDep}) {
		t.Errorf("edges = %v", edges)
	}
	if edges[0].String() != "T1 -commit-dep-> T2" {
		t.Errorf("edge string = %q", edges[0].String())
	}
}

func TestCommitDepDominatesWaitFor(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, CommitDep)
	g.AddEdge(1, 2, WaitFor) // must not downgrade
	if g.OutEdges(1)[0].Kind != CommitDep {
		t.Error("wait-for must not downgrade an existing commit-dep edge")
	}

	g2 := New()
	g2.AddEdge(1, 2, WaitFor)
	g2.AddEdge(1, 2, CommitDep) // must upgrade
	if g2.OutEdges(1)[0].Kind != CommitDep {
		t.Error("commit-dep must upgrade an existing wait-for edge")
	}
}

func TestHasCycleFrom(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, CommitDep)
	g.AddEdge(2, 3, WaitFor)
	if g.HasCycleFrom(1) {
		t.Error("no cycle yet")
	}
	g.AddEdge(3, 1, CommitDep)
	if !g.HasCycleFrom(3) {
		t.Error("3 -> 1 -> 2 -> 3 is a cycle through 3")
	}
	if !g.HasCycleFrom(1) || !g.HasCycleFrom(2) {
		t.Error("every node on the cycle sees it")
	}
	if g.Acyclic() {
		t.Error("Acyclic should report the cycle")
	}
}

// TestMixedKindCycle reflects the paper's observation that "a cycle in
// the dependency graph may involve both commit-dependency and wait-for
// edges".
func TestMixedKindCycle(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, CommitDep)
	g.AddEdge(2, 1, WaitFor)
	if !g.HasCycleFrom(2) {
		t.Error("mixed-kind 2-cycle not detected")
	}
}

func TestRemoveNodeReturnsDependants(t *testing.T) {
	g := New()
	g.AddEdge(2, 1, CommitDep)
	g.AddEdge(3, 1, WaitFor)
	g.AddEdge(1, 4, CommitDep)
	deps := g.RemoveNode(1)
	if len(deps) != 2 || deps[0] != 2 || deps[1] != 3 {
		t.Errorf("dependants = %v, want [2 3]", deps)
	}
	if g.HasNode(1) {
		t.Error("node 1 should be gone")
	}
	if g.OutDegree(2) != 0 || g.OutDegree(3) != 0 {
		t.Error("edges into removed node should be gone")
	}
	// 4's in-edge from 1 must be gone: removing 4 yields no dependants.
	if deps := g.RemoveNode(4); len(deps) != 0 {
		t.Errorf("node 4 dependants = %v, want none", deps)
	}
	if deps := g.RemoveNode(99); deps != nil {
		t.Errorf("removing a missing node = %v, want nil", deps)
	}
}

func TestRemoveWaitEdges(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WaitFor)
	g.AddEdge(1, 3, CommitDep)
	g.RemoveWaitEdges(1)
	edges := g.OutEdges(1)
	if len(edges) != 1 || edges[0].To != 3 || edges[0].Kind != CommitDep {
		t.Errorf("after RemoveWaitEdges: %v", edges)
	}
	g.RemoveWaitEdges(99) // no-op on missing node
}

func TestCycleChecksCounter(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, WaitFor)
	before := g.CycleChecks()
	g.HasCycleFrom(1)
	g.HasCycleFrom(2)
	if g.CycleChecks() != before+2 {
		t.Errorf("cycle checks = %d, want %d", g.CycleChecks(), before+2)
	}
}

func TestNodesSorted(t *testing.T) {
	g := New()
	for _, id := range []TxnID{5, 1, 3} {
		g.AddNode(id)
	}
	ns := g.Nodes()
	if len(ns) != 3 || ns[0] != 1 || ns[1] != 3 || ns[2] != 5 {
		t.Errorf("Nodes = %v", ns)
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestEdgeKindString(t *testing.T) {
	if WaitFor.String() != "wait-for" || CommitDep.String() != "commit-dep" {
		t.Error("EdgeKind strings wrong")
	}
}

// TestRandomizedAcyclicInvariant drives random additions through the
// scheduler's usage pattern (check-then-add from a single source; abort
// on cycle) and verifies the full-graph invariant the core relies on:
// if every HasCycleFrom check at insertion time is clean, the graph
// stays globally acyclic.
func TestRandomizedAcyclicInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		g := New()
		const n = 12
		for step := 0; step < 200; step++ {
			from := TxnID(rng.Intn(n))
			to := TxnID(rng.Intn(n))
			kind := EdgeKind(rng.Intn(2))
			// Tentatively add, then check from the source; roll
			// back if a cycle appears (mirrors abort-of-requester).
			g.AddEdge(from, to, kind)
			if g.HasCycleFrom(from) {
				g.RemoveNode(from)
			}
			if rng.Intn(10) == 0 {
				g.RemoveNode(TxnID(rng.Intn(n)))
			}
			if !g.Acyclic() {
				t.Fatalf("trial %d step %d: graph became cyclic", trial, step)
			}
		}
	}
}

// TestOutEdgesOfMissingNode covers the nil path.
func TestOutEdgesOfMissingNode(t *testing.T) {
	g := New()
	if g.OutEdges(7) != nil {
		t.Error("missing node should have nil edges")
	}
	if g.OutDegree(7) != 0 {
		t.Error("missing node should have zero out-degree")
	}
	if g.HasCycleFrom(7) {
		t.Error("missing node cannot be on a cycle")
	}
}
