package depgraph

import (
	"fmt"
	"testing"
)

// BenchmarkMirrorDropSite pins DropSite's complexity: the per-site
// reverse index makes dropping a site O(that site's edges), so the
// cost of purging a small site must stay flat while the rest of the
// mirror grows 100x. (The map-of-maps mirror scanned every edge of
// every transaction here — a convoy-depth crash purge was O(mirror).)
func BenchmarkMirrorDropSite(b *testing.B) {
	const victimTxns = 8
	for _, background := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("mirror=%d", background), func(b *testing.B) {
			m := NewMirror()
			// Site 0 carries the background load: a long chain of
			// held transactions, untouched by the drops below.
			for i := 0; i < background; i++ {
				from := TxnID(1000 + 2*i)
				m.Observe(0, from, []Edge{{From: from, To: from + 1, Kind: CommitDep}})
			}
			edge := make([]Edge, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Site 1 contributes a constant handful of edges, then
				// crashes: the purge must not scan site 0's edges.
				for v := TxnID(1); v <= victimTxns; v++ {
					edge[0] = Edge{From: v, To: v + 100, Kind: WaitFor}
					m.Observe(1, v, edge)
				}
				m.DropSite(1)
			}
		})
	}
}

// BenchmarkMirrorObserveChurn measures the steady-state cost of the
// coordinator's hottest mirror write: re-observing a transaction's
// edge set as the conversation progresses, over pooled nodes.
func BenchmarkMirrorObserveChurn(b *testing.B) {
	m := NewMirror()
	edges := []Edge{
		{From: 1, To: 2, Kind: WaitFor},
		{From: 1, To: 3, Kind: CommitDep},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(0, 1, edges)
		if m.HasCycleFrom(1) {
			b.Fatal("phantom cycle")
		}
		m.Observe(0, 1, nil)
	}
}
