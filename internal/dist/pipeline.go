package dist

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/fault"
)

// decideReq is one commit conversation's decision round: the hold
// phase's per-site edge exports, and — filled in by the wave that
// processes it — the decision (global dependency count, or a doomed
// verdict from a mid-conversation site crash).
type decideReq struct {
	t      *Txn
	sids   []SiteID
	batch  []depgraph.Edge // per-site exports, concatenated
	counts []int           // batch[off:off+counts[i]] belongs to sids[i]

	gdeps  int
	wave   uint64 // id of the decide wave that processed this request
	doomed bool
	// shed: the hold policy refused to hold the conversation; the
	// owner revokes it everywhere and returns a retryable ReasonShed
	// abort. The wave already moved the transaction to txRevoking.
	shed bool

	done chan struct{} // closed once the wave has decided this request
}

// pipeline coalesces concurrent commit conversations' decision rounds
// (flat combining): whichever owner goroutine finds the pipeline idle
// becomes the combiner and decides everything queued behind it in one
// coordinator critical section with one grouped decision-log force,
// instead of each conversation taking the coordinator mutex and
// fsyncing its own decision. Under convoy load the mutex is acquired
// once per wave and the log forced once per wave; at low concurrency a
// wave is a single request and the path degenerates to the old one
// (same lock round, same force) with no added latency.
type pipeline struct {
	mu      sync.Mutex
	pending []*decideReq
	// combining marks an active combiner; submitters that see it just
	// enqueue and wait, their request is part of someone's wave.
	combining bool
}

// decide runs t's decision round through the pipeline and returns the
// global dependency count, or doomed if a site crash voided the
// conversation. The caller's hold phase is complete: batch/counts are
// the per-site exports copied out under the site mutexes.
func (c *Cluster) decide(t *Txn, sids []SiteID, batch []depgraph.Edge, counts []int) (gdeps int, wave uint64, doomed, shed bool) {
	req := &decideReq{t: t, sids: sids, batch: batch, counts: counts, done: make(chan struct{})}
	p := &c.pipe
	p.mu.Lock()
	p.pending = append(p.pending, req)
	if p.combining {
		p.mu.Unlock()
		<-req.done
		return req.gdeps, req.wave, req.doomed, req.shed
	}
	p.combining = true
	for {
		wave := p.pending
		p.pending = nil
		p.mu.Unlock()
		c.decideWave(wave)
		p.mu.Lock()
		if len(p.pending) == 0 {
			p.combining = false
			p.mu.Unlock()
			return req.gdeps, req.wave, req.doomed, req.shed
		}
	}
}

// decideWave decides a wave of conversations in one coordinator
// critical section: every request's exports are mirrored (one mirror
// update per touched site — the per-conversation batching the counting
// tests pin — and one holdBatches round per conversation), each global
// dependency set is summed, and every conversation that reached its
// commit point is forced to the decision log as one group before
// anyone is released. The doomed re-check runs under the same mutex
// the crash handler dooms under, so a crash during the hold phase
// cannot slip past the commit point.
func (c *Cluster) decideWave(wave []*decideReq) {
	c.tel.WaveSize.Observe(uint64(len(wave)))
	wid := c.waveSeq.Add(1)
	var releasing []*Txn
	c.mu.Lock()
	for _, r := range wave {
		t := r.t
		r.wave = wid
		if t.doomed.Load() {
			r.doomed = true
			continue
		}
		off := 0
		for i, sid := range r.sids {
			edges := r.batch[off : off+r.counts[i]]
			off += r.counts[i]
			if len(edges) > 0 {
				t.anyEdges.Store(true)
			}
			c.mirror.Observe(int(sid), t.id, c.filterLive(edges))
		}
		c.holdBatches++
		r.gdeps = c.mirror.OutDegree(t.id)
		if r.gdeps > 0 {
			if c.policy != nil {
				depth := c.mirror.LongestChainFrom(t.id)
				switch c.policy.AdmitHold(r.gdeps, depth, c.heldCount) {
				case ShedTail:
					c.pstats.TailAborts++
					r.shed = true
				case ShedAdmission:
					c.pstats.AdmissionRejects++
					r.shed = true
				}
				if r.shed {
					// txRevoking bars the crash handler and the release
					// cascade; the owner runs the revocation (outside
					// this critical section — it takes site mutexes).
					t.state.Store(txRevoking)
					c.tel.Sheds.Inc()
					continue
				}
			}
			t.state.Store(txPseudo)
			c.heldCount++
			if c.heldCount > c.pstats.HeldPeak {
				c.pstats.HeldPeak = c.heldCount
			}
			c.tel.Held.Set(int64(c.heldCount))
		} else {
			// The commit point: the decision must be durable before any
			// participant is released (txReleasing also bars the crash
			// handler from revoking). The force itself is grouped below.
			t.state.Store(txReleasing)
			releasing = append(releasing, t)
		}
	}
	c.logCommitBatch(releasing)
	c.mu.Unlock()
	for _, r := range wave {
		close(r.done)
	}
}

// logCommitBatch forces the commit decisions of a wave to the decision
// log (a no-op on a plain cluster) — one grouped force when the log
// supports it, per-id records otherwise — and opens each transaction's
// release-ack set. The write must succeed before any participant is
// released; a failed force would break the recovery promise, so it is
// surfaced loudly. Caller holds c.mu; the ack table lives in its own
// lock domain (lock order c.mu -> logMu).
func (c *Cluster) logCommitBatch(txns []*Txn) {
	if c.flog == nil || len(txns) == 0 {
		return
	}
	if br, ok := c.flog.(fault.BatchRecorder); ok {
		ids := make([]core.TxnID, len(txns))
		for i, t := range txns {
			ids[i] = t.id
		}
		if err := br.RecordBatch(ids, fault.OutcomeCommit); err != nil {
			panic(fmt.Sprintf("dist: decision log commit batch %v: %v", ids, err))
		}
	} else {
		for _, t := range txns {
			if err := c.flog.Record(t.id, fault.OutcomeCommit); err != nil {
				panic(fmt.Sprintf("dist: decision log commit of T%d: %v", t.id, err))
			}
		}
	}
	c.tel.DecisionsLogged.Add(uint64(len(txns)))
	c.logMu.Lock()
	for _, t := range txns {
		pending := make(map[SiteID]struct{}, len(t.visited)+1)
		for _, sid := range t.visited {
			pending[sid] = struct{}{}
		}
		if _, gated := c.clientGate[t.id]; gated {
			pending[clientAck] = struct{}{}
		}
		c.relAcks[t.id] = pending
	}
	c.tel.LiveDecisions.Set(int64(len(c.relAcks)))
	c.logMu.Unlock()
}

// logDirectCommit forces a decision record for an edge-free direct
// commit whose outcome a remote client will resolve from the log
// (GateDecision was called). Without it a coordinator crash between
// the site commit and the client reply would presume the transaction
// aborted and the client would re-run committed work. The record is
// written BEFORE the site commit — the same decision-before-effect
// order as the hold path — and the ack set opens with every visited
// site plus the client gate. Ungated transactions (in-process callers
// that never resolve from the log) skip it: for them presumed abort is
// harmless, the caller saw the outcome directly. Reports whether a
// record was written.
func (c *Cluster) logDirectCommit(id core.TxnID, sids []SiteID) bool {
	if c.flog == nil {
		return false
	}
	c.logMu.Lock()
	_, gated := c.clientGate[id]
	c.logMu.Unlock()
	if !gated {
		return false
	}
	if err := c.flog.Record(id, fault.OutcomeCommit); err != nil {
		panic(fmt.Sprintf("dist: decision log direct commit of T%d: %v", id, err))
	}
	c.tel.DecisionsLogged.Inc()
	c.logMu.Lock()
	pending := make(map[SiteID]struct{}, len(sids)+1)
	for _, sid := range sids {
		pending[sid] = struct{}{}
	}
	pending[clientAck] = struct{}{}
	c.relAcks[id] = pending
	c.tel.LiveDecisions.Set(int64(len(c.relAcks)))
	c.logMu.Unlock()
	return true
}

// ClaimRedo is the restart-reconciliation side of the direct-commit
// arbitration: called (via the decided callback) before redoing a
// logged commit at a recovering participant, it marks the decision as
// redo-claimed and reports whether the log still holds a commit record
// for the transaction. A live commit conversation whose own push
// failed consults the claim in undoDirectCommit: if reconciliation got
// there first, the decision stands and the conversation must report
// Committed rather than retry. Claims are erased when the decision
// truncates (ackRelease), bounding the map by the set of in-flight
// logged commits.
func (c *Cluster) ClaimRedo(id core.TxnID) bool {
	if c.flog == nil {
		return false
	}
	c.logMu.Lock()
	defer c.logMu.Unlock()
	o, ok := c.flog.Lookup(id)
	if !ok || o != fault.OutcomeCommit {
		return false
	}
	if c.redoClaims == nil {
		c.redoClaims = make(map[core.TxnID]struct{})
	}
	c.redoClaims[id] = struct{}{}
	return true
}

// undoDirectCommit withdraws a logDirectCommit record after the site
// commit failed: the transaction is aborting, and a lingering commit
// record would make a restarting coordinator redo it. If restart
// reconciliation already claimed the decision for redo (ClaimRedo),
// the withdrawal loses the race: the commit has landed (or is landing)
// at the recovered participant, so the record stays and the caller
// must treat the transaction as committed. Reports whether the record
// was withdrawn. Only a crash in the narrow window between Record and
// Truncate can leave a stale record behind — a double failure the
// smoke workloads cannot hit and recovery resolves toward commit (the
// at-least-once side of the trade, documented in DESIGN.md).
func (c *Cluster) undoDirectCommit(id core.TxnID) bool {
	c.logMu.Lock()
	if _, claimed := c.redoClaims[id]; claimed {
		c.logMu.Unlock()
		return false
	}
	if _, open := c.relAcks[id]; open {
		delete(c.relAcks, id)
		c.tel.DecisionsResolved.Inc()
		c.tel.LiveDecisions.Set(int64(len(c.relAcks)))
	}
	c.logMu.Unlock()
	_ = c.flog.Truncate(id)
	return true
}
