package dist

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the bounded-hold release policy seam. The paper's
// pseudo-commit-and-hold protocol (§4.3) frees terminals at
// pseudo-commit, so under sustained overload holds pile on faster than
// the release cascade drains them: the held set grows without bound
// (the convoy collapse the distsim.Convoy scenario pins) and real
// throughput decouples from pseudo throughput. A HoldPolicy lets the
// coordinator refuse to grow the convoy. Refusing is cheap precisely
// because of recoverability: a held transaction may be revoked without
// cascading (nobody executed against state only it could produce — that
// is what the recoverability predicate guarantees), so a shed is one
// revocation round plus a client retry, never a cascading abort.
//
// The same policy value plugs into the wall-clock coordinator
// (dist.Config.Policy) and the deterministic simulator
// (distsim.Config.Policy), so a policy proven against the seeded convoy
// baseline is the code that runs under the wall clock.

// HoldVerdict is a policy's answer for one commit conversation that
// would otherwise be held.
type HoldVerdict uint8

const (
	// Hold accepts the hold: the transaction pseudo-commits-and-holds
	// as usual.
	Hold HoldVerdict = iota
	// ShedTail rejects the hold because the transaction would extend a
	// commit-dependency chain past the policy's depth bound; the
	// coordinator revokes it (a retryable ReasonShed abort) instead of
	// growing the convoy's tail.
	ShedTail
	// ShedAdmission rejects the hold because the held set itself is too
	// large (the admission gate is closed); same revocation, attributed
	// to admission control.
	ShedAdmission
)

// HoldPolicy decides, at each commit conversation that reached a
// non-empty global dependency set, whether the coordinator holds the
// transaction or sheds it. Implementations may carry state (hysteresis,
// counters); the coordinator serialises AdmitHold calls under its own
// lock and clones the configured value via Fresh at construction, so
// one policy value can parameterise many clusters or simulation runs
// without sharing state across them.
type HoldPolicy interface {
	// Name identifies the policy for traces and CLI output (stable,
	// parseable by ParsePolicy where possible).
	Name() string
	// Fresh returns an unshared instance with cleared internal state —
	// same parameters, no history. Constructors call it so that runs
	// never share hysteresis state.
	Fresh() HoldPolicy
	// AdmitHold is consulted with the transaction's global dependency
	// count (gdeps >= 1), the length of the longest commit-dependency
	// chain starting at it (depth >= 2: itself plus at least one
	// dependency), and the current held-set size (before this hold).
	AdmitHold(gdeps, depth, held int) HoldVerdict
	// EagerSubtree reports whether release cascades should compute the
	// whole drained subtree in one coordinator round (releasing a chain
	// of depth k in one batched round instead of k cascade hops).
	EagerSubtree() bool
}

// PolicyStats counts the coordinator's policy decisions (and the held
// set's high-water mark, which is maintained with or without a policy).
type PolicyStats struct {
	// TailAborts counts ShedTail revocations (depth bound).
	TailAborts int
	// AdmissionRejects counts ShedAdmission revocations (gate closed).
	AdmissionRejects int
	// EagerRounds counts non-empty eager-release rounds; EagerReleased
	// counts the held transactions those rounds released.
	EagerRounds, EagerReleased int
	// HeldPeak is the held set's high-water mark.
	HeldPeak int
}

// DepthBound sheds any transaction that would sit atop a
// commit-dependency chain longer than Max transactions. Chains are what
// make the convoy's tail expensive: a held transaction at depth k
// releases only after k-1 cascade rounds, so bounding depth bounds the
// worst-case held wait directly. Stateless.
type DepthBound struct {
	// Max is the longest admissible chain, counted in transactions
	// (the joining transaction included). Must be >= 2: depth 2 is the
	// shallowest possible hold.
	Max int
}

// Name implements HoldPolicy.
func (p DepthBound) Name() string { return fmt.Sprintf("depth=%d", p.Max) }

// Fresh implements HoldPolicy (stateless: a copy is fresh).
func (p DepthBound) Fresh() HoldPolicy { return p }

// AdmitHold implements HoldPolicy.
func (p DepthBound) AdmitHold(gdeps, depth, held int) HoldVerdict {
	if depth > p.Max {
		return ShedTail
	}
	return Hold
}

// EagerSubtree implements HoldPolicy.
func (DepthBound) EagerSubtree() bool { return false }

// EagerRelease holds everything (no shedding) but drains convoys in
// batched subtree rounds: when a termination drains a held
// transaction's dependency set, the whole transitively drained subtree
// is decided in one coordinator round — and its releases fan out to all
// participants concurrently — instead of one cascade hop (one
// coordinator round plus a per-site message round-trip) per chain
// level. Stateless.
type EagerRelease struct{}

// Name implements HoldPolicy.
func (EagerRelease) Name() string { return "eager" }

// Fresh implements HoldPolicy.
func (EagerRelease) Fresh() HoldPolicy { return EagerRelease{} }

// AdmitHold implements HoldPolicy.
func (EagerRelease) AdmitHold(gdeps, depth, held int) HoldVerdict { return Hold }

// EagerSubtree implements HoldPolicy.
func (EagerRelease) EagerSubtree() bool { return true }

// Admission gates new holds on the held-set size with hysteresis: once
// the held set reaches High the gate closes and every would-be hold is
// shed until the set drains to Low, then it reopens. The two thresholds
// keep the gate from chattering at the boundary. Stateful — use Fresh
// (constructors do) to avoid sharing the gate between runs.
type Admission struct {
	// High closes the gate (held >= High sheds); Low reopens it
	// (held <= Low admits again). 0 < Low < High.
	High, Low int

	// shedding is the gate's current position.
	shedding bool
}

// Name implements HoldPolicy.
func (p *Admission) Name() string { return fmt.Sprintf("admit=%d/%d", p.High, p.Low) }

// Fresh implements HoldPolicy: same thresholds, gate open.
func (p *Admission) Fresh() HoldPolicy { return &Admission{High: p.High, Low: p.Low} }

// AdmitHold implements HoldPolicy.
func (p *Admission) AdmitHold(gdeps, depth, held int) HoldVerdict {
	if p.shedding {
		if held > p.Low {
			return ShedAdmission
		}
		p.shedding = false
	}
	if held >= p.High {
		p.shedding = true
		return ShedAdmission
	}
	return Hold
}

// EagerSubtree implements HoldPolicy.
func (*Admission) EagerSubtree() bool { return false }

// ParsePolicy parses the CLI policy syntax:
//
//	""            no policy (nil)
//	"off"         no policy (nil)
//	"depth=N"     DepthBound{Max: N}          (N >= 2)
//	"eager"       EagerRelease{}
//	"admit=N"     &Admission{High: N, Low: N/2}
//	"admit=H/L"   &Admission{High: H, Low: L} (0 < L < H)
func ParsePolicy(s string) (HoldPolicy, error) {
	switch s {
	case "", "off":
		return nil, nil
	case "eager":
		return EagerRelease{}, nil
	}
	if v, ok := strings.CutPrefix(s, "depth="); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("dist: bad depth bound %q (want depth=N, N >= 2)", s)
		}
		return DepthBound{Max: n}, nil
	}
	if v, ok := strings.CutPrefix(s, "admit="); ok {
		high, low := 0, 0
		if h, l, both := strings.Cut(v, "/"); both {
			hn, err1 := strconv.Atoi(h)
			ln, err2 := strconv.Atoi(l)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dist: bad admission gate %q (want admit=H/L)", s)
			}
			high, low = hn, ln
		} else {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("dist: bad admission gate %q (want admit=N)", s)
			}
			high, low = n, n/2
		}
		if low <= 0 || low >= high {
			return nil, fmt.Errorf("dist: bad admission gate %q (need 0 < low < high)", s)
		}
		return &Admission{High: high, Low: low}, nil
	}
	return nil, fmt.Errorf("dist: unknown hold policy %q (want off, depth=N, eager, admit=N or admit=H/L)", s)
}
