package dist

import (
	"errors"
	"slices"
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

// newStepCluster builds a 2-site fault-tolerant page cluster whose
// StepHook crashes site `victim` the first time the given step fires
// for a transaction (any transaction — the tests drive exactly one
// conversation).
func newStepCluster(t *testing.T, step Step, victim SiteID) (*Cluster, *int) {
	t.Helper()
	fired := 0
	var c *Cluster
	cfg := Config{Sites: 2, FaultTolerant: true}
	cfg.StepHook = func(s Step, _ core.TxnID, _ SiteID) {
		if s == step {
			fired++
			if fired == 1 {
				if err := c.Crash(victim); err != nil {
					t.Errorf("crash at %s: %v", s, err)
				}
			}
		}
	}
	var err error
	c, err = NewWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= 4; id++ {
		if err := c.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	return c, &fired
}

// TestCrashExactlyAtAfterDecisionBeforeRelease places a crash on the
// protocol-step boundary right after the commit decision is forced and
// before any participant is released — the PR 4 chaos suite could only
// hope a timer landed here; the step hook guarantees it. The logged
// commit must land at the surviving site, skip the dead one, and be
// redone there by recovery; after the redo ack the decision leaves the
// log.
func TestCrashExactlyAtAfterDecisionBeforeRelease(t *testing.T) {
	c, fired := newStepCluster(t, AfterDecisionBeforeRelease, 1)
	tx := c.Begin()
	if _, err := tx.Do(1, write(10)); err != nil { // site 1 (the victim)
		t.Fatal(err)
	}
	if _, err := tx.Do(2, write(20)); err != nil { // site 0
		t.Fatal(err)
	}
	st, err := tx.Commit()
	if err != nil || st != core.Committed {
		t.Fatalf("commit across the crash = %v %v, want Committed (decision was logged)", st, err)
	}
	if *fired == 0 {
		t.Fatal("step hook never fired")
	}
	if err := tx.Err(); err != nil {
		t.Fatalf("Err = %v, want nil", err)
	}
	// Site 0 released; site 1 is down with a prepared record and a
	// logged decision, so the ack set still pins the log entry.
	if c.flog.Len() != 1 {
		t.Fatalf("decision log len = %d, want 1 (site 1's ack outstanding)", c.flog.Len())
	}
	rep, err := c.Restart(1)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(rep.Redone, []core.TxnID{tx.ID()}) {
		t.Fatalf("recovery report %+v, want T%d redone", rep, tx.ID())
	}
	s1, _ := c.Site(1).CommittedState(1)
	if got := s1.(*adt.PageState); got.V != 10 {
		t.Fatalf("site 1 committed after redo = %d, want 10", got.V)
	}
	s0, _ := c.Site(0).CommittedState(2)
	if got := s0.(*adt.PageState); got.V != 20 {
		t.Fatalf("site 0 committed = %d, want 20", got.V)
	}
	// The redo was the final release ack: the decision is truncated.
	if n := c.flog.Len(); n != 0 {
		t.Fatalf("decision log len after redo ack = %d, want 0", n)
	}
}

// TestCrashExactlyAtBeforeDecisionForce places the crash one step
// earlier: every participant holds a forced prepare record, but the
// decision has not been logged. The conversation must fail with the
// typed site-failure abort, and recovery must presume the prepared
// record aborted — the other deterministic half of the presumed-abort
// protocol.
func TestCrashExactlyAtBeforeDecisionForce(t *testing.T) {
	c, fired := newStepCluster(t, BeforeDecisionForce, 1)
	tx := c.Begin()
	if _, err := tx.Do(1, write(10)); err != nil { // site 1 (the victim)
		t.Fatal(err)
	}
	if _, err := tx.Do(2, write(20)); err != nil { // site 0
		t.Fatal(err)
	}
	_, err := tx.Commit()
	if !errors.Is(err, core.ErrSiteFailed) {
		t.Fatalf("commit across the crash = %v, want ErrSiteFailed (before the commit point)", err)
	}
	if *fired == 0 {
		t.Fatal("step hook never fired")
	}
	// Nothing was logged, so nothing pins the log.
	if _, ok := c.flog.Lookup(tx.ID()); ok {
		t.Fatal("pre-decision crash left a logged outcome")
	}
	rep, err := c.Restart(1)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(rep.PresumedAborted, []core.TxnID{tx.ID()}) {
		t.Fatalf("recovery report %+v, want T%d presumed aborted", rep, tx.ID())
	}
	// Both sites are clean: the revoked hold at site 0, the presumed
	// abort at site 1.
	s0, _ := c.Site(0).CommittedState(2)
	if got := s0.(*adt.PageState); got.V != 0 {
		t.Fatalf("site 0 committed = %d, want 0 (hold revoked)", got.V)
	}
	s1, _ := c.Site(1).CommittedState(1)
	if got := s1.(*adt.PageState); got.V != 0 {
		t.Fatalf("site 1 committed = %d, want 0 (presumed aborted)", got.V)
	}
}

// TestCrashExactlyAtAfterPrepareForce: the victim crashes right after
// forcing its own prepare record, while the conversation moves to the
// next participant. The commit cannot reach its decision point, the
// caller sees the retryable site-failure abort, and the orphaned
// prepare record is presumed aborted at restart.
func TestCrashExactlyAtAfterPrepareForce(t *testing.T) {
	// Site 1 is visited first (ascending conversation order is by
	// site id; object 1 lives at site 1, object 2 at site 0 — the
	// conversation order is site 0 then site 1, so crash the first
	// prepared site: site 0's AfterPrepareForce fires first).
	c, fired := newStepCluster(t, AfterPrepareForce, 0)
	tx := c.Begin()
	if _, err := tx.Do(1, write(10)); err != nil { // site 1
		t.Fatal(err)
	}
	if _, err := tx.Do(2, write(20)); err != nil { // site 0, prepared first
		t.Fatal(err)
	}
	_, err := tx.Commit()
	if !errors.Is(err, core.ErrSiteFailed) {
		t.Fatalf("commit across the crash = %v, want ErrSiteFailed", err)
	}
	if *fired == 0 {
		t.Fatal("step hook never fired")
	}
	rep, err := c.Restart(0)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(rep.PresumedAborted, []core.TxnID{tx.ID()}) {
		t.Fatalf("recovery report %+v, want T%d presumed aborted", rep, tx.ID())
	}
}

// TestLogBoundedUnderLoad drives many held cross-site commit
// conversations — the workload whose decision log used to grow without
// bound — and checks that release-ack-keyed truncation leaves the log
// empty once everything drains. Each round builds a deterministic
// hold: T2 pushes onto T1's uncommitted stack (a commit dependency)
// and touches a second site, pseudo-commits-and-holds, then T1's
// commit cascades T2's release; both decisions must then be pruned.
func TestLogBoundedUnderLoad(t *testing.T) {
	c, err := NewWithConfig(Config{Sites: 4, FaultTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= 16; id++ {
		if err := c.Register(id, adt.Stack{}, compat.StackTable()); err != nil {
			t.Fatal(err)
		}
	}
	held := 0
	for round := 0; round < 200; round++ {
		obj := core.ObjectID(1 + round%16)
		other := core.ObjectID(1 + (round+1)%16) // a different site for obj%4 != (obj+1)%4
		t1, t2 := c.Begin(), c.Begin()
		if _, err := t1.Do(obj, push(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := t2.Do(obj, push(2)); err != nil { // dep T2 -> T1
			t.Fatal(err)
		}
		if _, err := t2.Do(other, push(3)); err != nil { // second site
			t.Fatal(err)
		}
		st, err := t2.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if st == core.PseudoCommitted {
			held++
		}
		if st, err := t1.Commit(); err != nil || st != core.Committed {
			t.Fatalf("round %d: T1 commit = %v %v", round, st, err)
		}
		<-t2.Done()
		if err := t2.Err(); err != nil {
			t.Fatalf("round %d: held T2 = %v", round, err)
		}
	}
	if held == 0 {
		t.Fatal("no commit conversation was held — the truncation path was not exercised")
	}
	if n := c.flog.Len(); n != 0 {
		t.Fatalf("decision log holds %d entries after %d rounds (%d held) drained, want 0 (truncation leak)", n, 200, held)
	}
}
