package dist

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/workload"
)

// TestClusterHighContentionLiveness runs a hot cross-site read/write
// load (few objects per site, 60% cross-site steps, forced goroutine
// preemption) and fails with a full coordinator dump if progress
// stalls. This is the liveness net that caught both the stale-mirror
// lost update and the core scheduler's lost fairness wakeup.
func TestClusterHighContentionLiveness(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const sites = 8
	c, err := New(sites, core.Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Bool
	go func() {
		defer done.Store(true)
		_, err := RunLoad(c, LoadConfig{
			Workload: workload.Sharded{
				Inner: workload.ReadWrite{DBSize: 32, WriteProb: 0.3},
				Sites: sites, CrossProb: 0.6,
			},
			Workers:       16,
			TxnsPerWorker: 150,
			Seed:          time.Now().UnixNano() % 1000,
		})
		if err != nil {
			t.Error(err)
		}
	}()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if done.Load() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Stalled: dump the coordinator and per-site view of every live
	// transaction before failing, so the deadlock shape is visible.
	var live []*Txn
	c.reg.forEach(func(tx *Txn) { live = append(live, tx) })
	fmt.Printf("=== stalled: %d live txns ===\n", len(live))
	for _, tx := range live {
		id := tx.id
		var local string
		for si := 0; si < sites; si++ {
			st := c.sites[si].p.TxnState(id)
			if st == "unknown" {
				continue
			}
			local += fmt.Sprintf(" s%d:%s:deg%d", si, st, c.sites[si].p.OutDegree(id))
			for _, e := range c.sites[si].p.OutEdgesOf(id) {
				local += fmt.Sprintf("[%v]", e)
			}
		}
		c.mu.Lock()
		var medges []depgraph.Edge
		for _, e := range c.mirror.Edges() {
			if e.From == id {
				medges = append(medges, e)
			}
		}
		deg := c.mirror.OutDegree(id)
		c.mu.Unlock()
		fmt.Printf("T%d coordState=%d mirrorOutDeg=%d mirrorEdges=%v local:%s\n",
			id, tx.state.Load(), deg, medges, local)
	}
	for si := 0; si < sites; si++ {
		c.sites[si].mu.Lock()
		if c.sites[si].hub.Len() > 0 {
			fmt.Printf("site %d waiters: %v\n", si, c.sites[si].hub.AppendIDs(nil))
		}
		c.sites[si].mu.Unlock()
	}
	t.Fatal("cluster stalled under high contention")
}
