package dist

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

// TestClusterDoCtxCancelWithdraws: cancelling a DoCtx blocked at one
// site withdraws the request there, clears the mirrored wait-for edges
// at the coordinator, and leaves the transaction usable — including at
// other sites.
func TestClusterDoCtxCancelWithdraws(t *testing.T) {
	c := newPageCluster(t, 2, 4)
	t1, t2 := c.Begin(), c.Begin()
	if _, err := t1.Do(2, write(20)); err != nil { // site 0
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		_, err := t2.DoCtx(ctx, 2, read()) // parks at site 0 behind t1
		res <- err
	}()
	waitLocalState(t, c.Site(0), t2.ID(), "blocked")
	cancel()
	select {
	case err := <-res:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled DoCtx = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled DoCtx never returned")
	}
	waitLocalState(t, c.Site(0), t2.ID(), "active")
	// The coordinator must not hold a stale T2 wait-for edge: a fresh
	// T1 request that would close T1 -> ... -> T2 -> T1 through the
	// stale edge must succeed. T1 touches T2's other site freely.
	if _, err := t2.Do(1, write(11)); err != nil { // site 1, clean
		t.Fatal(err)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t1 commit = %v, %v", st, err)
	}
	if st, err := t2.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t2 commit = %v, %v (a stale mirror edge would have held it)", st, err)
	}
}

// TestClusterDoCtxCancelWakesFairnessFollowers: the lost-wakeup
// regression at a site's queue — a request fairness-gated behind the
// cancelled one is retried when the withdrawal dequeues it.
func TestClusterDoCtxCancelWakesFairnessFollowers(t *testing.T) {
	c := newPageCluster(t, 2, 4)
	t1, t2, t3 := c.Begin(), c.Begin(), c.Begin()
	if _, err := t1.Do(2, write(10)); err != nil { // site 0
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t2res := make(chan error, 1)
	go func() {
		_, err := t2.DoCtx(ctx, 2, read()) // parks behind the write
		t2res <- err
	}()
	waitLocalState(t, c.Site(0), t2.ID(), "blocked")
	t3res := make(chan error, 1)
	go func() {
		_, err := t3.Do(2, write(30)) // fairness-gated behind t2's read
		t3res <- err
	}()
	waitLocalState(t, c.Site(0), t3.ID(), "blocked")
	cancel()
	if err := <-t2res; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled DoCtx = %v", err)
	}
	select {
	case err := <-t3res:
		if err != nil {
			t.Fatalf("follower's write failed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("lost wakeup: follower stayed parked after the withdrawal")
	}
	if st, err := t3.Commit(); err != nil || st != core.PseudoCommitted {
		t.Fatalf("t3 commit = %v, %v", st, err)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t1 commit = %v, %v", st, err)
	}
	<-t3.Done()
	if err := t3.Err(); err != nil {
		t.Fatal(err)
	}
	if st, err := t2.Commit(); err != nil || st != core.Committed {
		t.Fatalf("t2 commit = %v, %v", st, err)
	}
}

// TestClusterCommitCtxExpired: an expired context stops the commit
// conversation before it starts; the transaction stays active and
// abortable.
func TestClusterCommitCtxExpired(t *testing.T) {
	c := newPageCluster(t, 2, 4)
	tx := c.Begin()
	if _, err := tx.Do(1, write(5)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := tx.CommitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired CommitCtx = %v", err)
	}
	if st := c.Site(c.SiteOf(1)).TxnState(tx.ID()); st != "active" {
		t.Fatalf("after expired CommitCtx txn is %s at its site", st)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterClose mirrors TestStoreClose for the distributed backend.
func TestClusterClose(t *testing.T) {
	c := newPageCluster(t, 2, 4)
	inflight := c.Begin()
	if _, err := inflight.Do(1, write(9)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	late := c.Begin()
	if _, err := late.Do(1, write(1)); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Do on closed cluster = %v", err)
	}
	if err := c.Register(7, adt.Page{}, nil); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Register on closed cluster = %v", err)
	}
	if st, err := inflight.Commit(); err != nil || st != core.Committed {
		t.Fatalf("in-flight commit = %v, %v", st, err)
	}
}

// TestClusterCancelStress drives the cluster with workers whose DoCtx
// deadlines fire at random, across sites, and checks conservation of
// committed pushes. Run under -race this covers the withdrawal path's
// interaction with the coordinator.
func TestClusterCancelStress(t *testing.T) {
	const (
		sites   = 3
		objects = 9
		workers = 8
		rounds  = 50
	)
	c, err := New(sites, core.Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= objects; id++ {
		if err := c.Register(id, adt.Stack{}, compat.StackTable()); err != nil {
			t.Fatal(err)
		}
	}
	var pushed [objects + 1]atomic.Int64
	var cancels atomic.Int64
	var wg sync.WaitGroup
	var held sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)*104729 + 7))
			for i := 0; i < rounds; i++ {
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(r.Intn(400))*time.Microsecond)
				tx := c.Begin()
				n := 1 + r.Intn(3)
				var objs []core.ObjectID
				failed := false
				for k := 0; k < n; k++ {
					obj := core.ObjectID(1 + r.Intn(objects))
					if _, err := tx.DoCtx(ctx, obj, push(w*1000+i)); err != nil {
						switch {
						case errors.Is(err, context.DeadlineExceeded):
							cancels.Add(1)
							tx.Abort()
						case errors.Is(err, core.ErrTxnAborted):
						default:
							t.Errorf("DoCtx: %v", err)
						}
						failed = true
						break
					}
					objs = append(objs, obj)
				}
				cancel()
				if failed {
					continue
				}
				if _, err := tx.Commit(); err != nil {
					if !errors.Is(err, core.ErrTxnAborted) {
						t.Errorf("Commit: %v", err)
					}
					continue
				}
				for _, obj := range objs {
					pushed[obj].Add(1)
				}
				held.Store(tx, struct{}{})
			}
		}(w)
	}
	wg.Wait()
	held.Range(func(k, _ any) bool {
		tx := k.(core.Txn)
		<-tx.Done()
		if err := tx.Err(); err != nil {
			t.Error(err)
		}
		return true
	})
	total := int64(0)
	for id := core.ObjectID(1); id <= objects; id++ {
		s, err := c.Site(c.SiteOf(id)).CommittedState(id)
		if err != nil {
			t.Fatal(err)
		}
		depth := int64(s.(*adt.StackState).Len())
		if got := pushed[id].Load(); got != depth {
			t.Errorf("object %d: committed depth %d, promised pushes %d", id, depth, got)
		}
		total += depth
	}
	if total == 0 {
		t.Fatal("cancel stress committed nothing")
	}
	t.Logf("cancel stress: %d committed pushes, %d deadline cancellations", total, cancels.Load())
}
