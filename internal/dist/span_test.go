package dist

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// newSpanCluster builds a 3-site page cluster with the span plane and
// a flight recorder armed.
func newSpanCluster(t *testing.T, dir string) *Cluster {
	t.Helper()
	fr := telemetry.NewFlightRecorder(256, "test", dir)
	c, err := NewWithConfig(Config{
		Sites:      3,
		Spans:      1024,
		SampleSeed: 1,
		SampleRate: 1,
		Flight:     fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= 6; id++ {
		if err := c.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// kinds returns the set of span kinds recorded for one transaction.
func kinds(sb *telemetry.SpanBuffer, txn uint64) map[telemetry.SpanKind]int {
	m := make(map[telemetry.SpanKind]int)
	for _, s := range sb.Snapshot() {
		if s.Txn == txn {
			m[s.Kind]++
		}
	}
	return m
}

// TestClusterSpans: a cross-site held transaction leaves a full causal
// chain — begin, per-site begins and requests, per-site holds, a
// decision, per-site releases — and completes into the exemplar store.
func TestClusterSpans(t *testing.T) {
	c := newSpanCluster(t, t.TempDir())
	t1, t2 := c.Begin(), c.Begin()
	if _, err := t1.Do(1, write(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Do(1, write(11)); err != nil { // dep T2->T1 at site 1
		t.Fatal(err)
	}
	if _, err := t2.Do(2, write(22)); err != nil {
		t.Fatal(err)
	}
	if st, err := t2.Commit(); err != nil || st != core.PseudoCommitted {
		t.Fatalf("T2 commit = %v, %v", st, err)
	}
	if tc := t2.(*Txn).Trace(); !tc.Valid() || !tc.Sampled() {
		t.Fatalf("T2 trace context = %+v, want valid+sampled", tc)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v, %v", st, err)
	}
	<-t2.Done()
	if err := t2.Err(); err != nil {
		t.Fatal(err)
	}

	k2 := kinds(c.Spans(), uint64(t2.ID()))
	if k2[telemetry.SpanBegin] == 0 || k2[telemetry.SpanRequest] == 0 {
		t.Fatalf("T2 missing begin/request spans: %v", k2)
	}
	if k2[telemetry.SpanHold] != 2 {
		t.Fatalf("T2 hold spans = %d, want 2 (both visited sites)", k2[telemetry.SpanHold])
	}
	if k2[telemetry.SpanDecide] != 1 {
		t.Fatalf("T2 decide spans = %d, want 1", k2[telemetry.SpanDecide])
	}
	if k2[telemetry.SpanRelease] != 2 {
		t.Fatalf("T2 release spans = %d, want 2", k2[telemetry.SpanRelease])
	}

	// Both terminal transactions completed into the exemplar store.
	ex := c.Spans().Exemplars()
	seen := make(map[uint64]bool)
	for _, e := range ex {
		seen[e.Txn] = true
	}
	if !seen[uint64(t1.ID())] || !seen[uint64(t2.ID())] {
		t.Fatalf("exemplars %v missing T1/T2", seen)
	}

	// TraceContextOf re-derives an unregistered id from the sampler.
	if tc := c.TraceContextOf(core.TxnID(9999)); !tc.Valid() {
		t.Fatal("TraceContextOf(9999) invalid — sampler re-derivation broken")
	}
}

// TestClusterSpansAbort: an aborted transaction's trace terminates
// with an abort span and still completes into the exemplar store.
func TestClusterSpansAbort(t *testing.T) {
	c := newSpanCluster(t, t.TempDir())
	t1 := c.Begin()
	if _, err := t1.Do(1, write(1)); err != nil {
		t.Fatal(err)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	k := kinds(c.Spans(), uint64(t1.ID()))
	if k[telemetry.SpanAbort] == 0 {
		t.Fatalf("aborted T1 has no abort span: %v", k)
	}
}

// TestClusterFlightDump: the cluster's flight recorder accumulates the
// commit conversation's events and dumps a readable artifact.
func TestClusterFlightDump(t *testing.T) {
	dir := t.TempDir()
	c := newSpanCluster(t, dir)
	t1 := c.Begin()
	if _, err := t1.Do(1, write(10)); err != nil {
		t.Fatal(err)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("commit = %v, %v", st, err)
	}
	fr := c.Flight()
	if fr == nil || fr.Len() == 0 {
		t.Fatal("flight recorder empty after a commit")
	}
	path, err := fr.Dump("test")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("dump landed in %s, want %s", filepath.Dir(path), dir)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("flight dump is empty")
	}
}
