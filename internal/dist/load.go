package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// LoadConfig parameterises a closed-loop multi-site load run: Workers
// goroutines each submit TxnsPerWorker transactions drawn from the
// workload generator, restarting aborted transactions with a fresh id
// (the simulator's restart policy, minus think time).
type LoadConfig struct {
	// Workload draws transactions; its Factory is installed at every
	// site (routing keeps each object at its home site).
	Workload workload.Generator
	// Workers is the number of concurrent submitting goroutines.
	Workers int
	// TxnsPerWorker is how many completions each worker drives.
	TxnsPerWorker int
	// MinLength/MaxLength bound the uniformly drawn transaction
	// length (defaults 4..12, the paper's nominal bounds).
	MinLength, MaxLength int
	// Seed drives the per-worker RNGs.
	Seed int64
	// MaxRestarts caps restarts per logical transaction (safety
	// valve; 0 means 1000). Restarts back off exponentially, the
	// closed-loop stand-in for the simulator's think time.
	MaxRestarts int
}

// LoadResult summarises one load run.
type LoadResult struct {
	Shards    int
	Commits   uint64 // logical transactions committed
	Pseudo    uint64 // commits that were held (PseudoCommitted) first
	Aborts    uint64 // aborted attempts (each restarted)
	Ops       uint64 // operations executed, aborted attempts included
	Elapsed   time.Duration
	TxnPerSec float64
}

func (r LoadResult) String() string {
	return fmt.Sprintf("shards=%d commits=%d pseudo=%d aborts=%d ops=%d elapsed=%s txn/s=%.0f",
		r.Shards, r.Commits, r.Pseudo, r.Aborts, r.Ops, r.Elapsed.Round(time.Millisecond), r.TxnPerSec)
}

// RunLoad drives the cluster with the configured closed-loop workload
// and returns aggregate throughput. It is the multi-site counterpart
// of the discrete-event simulator's terminal loop: real goroutines,
// real contention, wall-clock time.
func RunLoad(c *Cluster, cfg LoadConfig) (LoadResult, error) {
	if cfg.Workload == nil {
		return LoadResult{}, errors.New("dist: load needs a workload")
	}
	if cfg.Workers <= 0 || cfg.TxnsPerWorker <= 0 {
		return LoadResult{}, errors.New("dist: load needs positive Workers and TxnsPerWorker")
	}
	minLen, maxLen := cfg.MinLength, cfg.MaxLength
	if minLen <= 0 {
		minLen = 4
	}
	if maxLen < minLen {
		maxLen = minLen + 8
	}
	maxRestarts := cfg.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 1000
	}
	c.SetFactory(cfg.Workload.Factory())

	var commits, pseudo, aborts, ops atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			var held []*Txn
			// Every pseudo-commit is a promise; make sure each one
			// lands before the run is declared done (a stuck hold
			// would hang here and be caught, not silently dropped).
			defer func() {
				for _, t := range held {
					if err := t.WaitCommitted(); err != nil {
						firstErr.CompareAndSwap(nil, err)
					}
				}
			}()
			for i := 0; i < cfg.TxnsPerWorker; i++ {
				length := minLen + r.Intn(maxLen-minLen+1)
				steps := cfg.Workload.NewTxn(r, length)
			restart:
				for attempt := 0; ; attempt++ {
					if attempt > maxRestarts {
						firstErr.CompareAndSwap(nil, fmt.Errorf("dist: transaction exceeded %d restarts", maxRestarts))
						return
					}
					if attempt > 0 {
						// Exponential backoff with jitter: an
						// immediate replay of the same steps tends to
						// re-collide with the same resident set.
						shift := attempt
						if shift > 6 {
							shift = 6
						}
						time.Sleep(time.Duration(1+r.Intn(1<<shift)) * 25 * time.Microsecond)
					}
					t := c.Begin()
					for _, st := range steps {
						if _, err := t.Do(st.Object, st.Op); err != nil {
							if errors.Is(err, core.ErrTxnAborted) {
								aborts.Add(1)
								continue restart
							}
							firstErr.CompareAndSwap(nil, err)
							t.Abort() // don't leave live operations blocking other workers
							return
						}
						ops.Add(1)
					}
					st, err := t.Commit()
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						t.Abort()
						return
					}
					if st == core.PseudoCommitted {
						pseudo.Add(1)
						held = append(held, t)
					}
					commits.Add(1)
					break
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err, ok := firstErr.Load().(error); ok && err != nil {
		return LoadResult{}, err
	}
	res := LoadResult{
		Shards:  c.NumSites(),
		Commits: commits.Load(),
		Pseudo:  pseudo.Load(),
		Aborts:  aborts.Load(),
		Ops:     ops.Load(),
		Elapsed: elapsed,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.TxnPerSec = float64(res.Commits) / sec
	}
	return res, nil
}
