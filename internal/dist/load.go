package dist

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// The closed-loop load harness lives in internal/workload and drives
// any core.Store; these aliases keep the historical dist entry point
// (clusters were the harness's first backend) while guaranteeing both
// back ends go through the same code path.

// LoadConfig parameterises a closed-loop load run; see
// workload.LoadConfig.
type LoadConfig = workload.LoadConfig

// LoadResult summarises one load run; see workload.LoadResult.
type LoadResult = workload.LoadResult

// RunLoad drives any core.Store — a Cluster or a core.DB — with the
// configured closed-loop workload; see workload.RunLoad.
func RunLoad(st core.Store, cfg LoadConfig) (LoadResult, error) {
	return workload.RunLoad(st, cfg)
}
