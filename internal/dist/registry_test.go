package dist

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

// TestRegistryShardStress hammers the sharded live-transaction
// registry from many goroutines: edge-free commits (register,
// fast-path finalise), contended conversations (register, mirror
// marking via filterLive, cascade finalise) and aborts, all racing a
// draining close. Run under -race this exercises every registry
// transition — add, get, markMirror, unregister — across shard
// boundaries; the final drain proves no transaction is leaked or
// double-finalised.
func TestRegistryShardStress(t *testing.T) {
	c, err := New(4, core.Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	const objects = 64
	for id := core.ObjectID(1); id <= objects; id++ {
		if err := c.Register(id, adt.Stack{}, compat.StackTable()); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 16
	const txnsPerWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWorker; i++ {
				tx := c.Begin()
				// Distinct pushes are recoverable, non-commuting:
				// colliding workers grow commit dependencies and take
				// the conversation path; lone ones stay edge-free.
				obj := core.ObjectID(1 + (w*txnsPerWorker+i)%objects)
				if _, err := tx.Do(obj, adt.Op{Name: adt.StackPush, Arg: w<<16 | i, HasArg: true}); err != nil {
					continue // aborted (deadlock/cycle): already finalised
				}
				if i%7 == 0 {
					if err := tx.Abort(); err != nil {
						t.Error(err)
					}
					continue
				}
				if _, err := tx.Commit(); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.CloseCtx(ctx); err != nil {
		t.Fatalf("draining close after stress: %v (live=%d)", err, c.reg.count())
	}
	if n := c.reg.count(); n != 0 {
		t.Fatalf("registry leaked %d transactions", n)
	}
}

// TestBeginCloseRace pins the Begin/Close interleaving: a Begin that
// races the closed flag either runs to completion or fails with
// ErrClosed, and the draining close never waits on a transaction that
// was refused.
func TestBeginCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		c, err := New(2, core.Options{}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Register(1, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			<-start
			tx := c.Begin()
			if _, err := tx.Do(1, adt.Op{Name: adt.PageWrite, Arg: 1, HasArg: true}); err != nil {
				if !errors.Is(err, core.ErrClosed) {
					t.Errorf("raced Begin failed oddly: %v", err)
				}
				return
			}
			if _, err := tx.Commit(); err != nil {
				t.Errorf("raced commit: %v", err)
			}
		}()
		close(start)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := c.CloseCtx(ctx); err != nil {
			t.Fatalf("round %d: draining close: %v", round, err)
		}
		cancel()
		<-done
	}
}
