package dist

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestParsePolicy(t *testing.T) {
	valid := []struct {
		in   string
		want string // Name() of the parsed policy; "" for nil
	}{
		{"", ""},
		{"off", ""},
		{"eager", "eager"},
		{"depth=2", "depth=2"},
		{"depth=16", "depth=16"},
		{"admit=32", "admit=32/16"},
		{"admit=40/10", "admit=40/10"},
	}
	for _, tc := range valid {
		p, err := ParsePolicy(tc.in)
		if err != nil {
			t.Errorf("ParsePolicy(%q) = %v", tc.in, err)
			continue
		}
		got := ""
		if p != nil {
			got = p.Name()
		}
		if got != tc.want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", tc.in, got, tc.want)
		}
		// Names round-trip (except the admit=N sugar, covered above).
		if p != nil {
			rt, err := ParsePolicy(p.Name())
			if err != nil || rt.Name() != p.Name() {
				t.Errorf("ParsePolicy(%q) does not round-trip: %v, %v", p.Name(), rt, err)
			}
		}
	}
	invalid := []string{
		"depth=", "depth=x", "depth=1", "depth=-4",
		"admit=", "admit=x", "admit=0", "admit=1", "admit=-8",
		"admit=5/5", "admit=5/0", "admit=5/9", "admit=a/b",
		"bogus", "eager=2",
	}
	for _, in := range invalid {
		if p, err := ParsePolicy(in); err == nil {
			t.Errorf("ParsePolicy(%q) accepted: %v", in, p)
		}
	}
}

func TestDepthBoundVerdict(t *testing.T) {
	p := DepthBound{Max: 4}
	if v := p.AdmitHold(1, 2, 100); v != Hold {
		t.Errorf("depth 2 under bound 4: %v, want Hold", v)
	}
	if v := p.AdmitHold(1, 4, 100); v != Hold {
		t.Errorf("depth 4 at bound 4: %v, want Hold", v)
	}
	if v := p.AdmitHold(1, 5, 0); v != ShedTail {
		t.Errorf("depth 5 over bound 4: %v, want ShedTail", v)
	}
	if p.EagerSubtree() {
		t.Error("DepthBound reports eager subtree release")
	}
}

func TestAdmissionHysteresis(t *testing.T) {
	p := &Admission{High: 4, Low: 2}
	// Gate open below High.
	for held := 0; held < 4; held++ {
		if v := p.AdmitHold(1, 2, held); v != Hold {
			t.Fatalf("held=%d with open gate: %v, want Hold", held, v)
		}
	}
	// held >= High closes the gate.
	if v := p.AdmitHold(1, 2, 4); v != ShedAdmission {
		t.Fatalf("held=4 at High=4: %v, want ShedAdmission", v)
	}
	// Closed gate sheds anywhere above Low — including below High.
	if v := p.AdmitHold(1, 2, 3); v != ShedAdmission {
		t.Fatalf("held=3 with closed gate: %v, want ShedAdmission (hysteresis)", v)
	}
	// Draining to Low reopens it.
	if v := p.AdmitHold(1, 2, 2); v != Hold {
		t.Fatalf("held=2 at Low=2: %v, want Hold (gate reopens)", v)
	}
	// Fresh clears the gate but keeps the thresholds.
	p.AdmitHold(1, 2, 9) // close it again
	f := p.Fresh().(*Admission)
	if f.High != 4 || f.Low != 2 {
		t.Fatalf("Fresh lost thresholds: %+v", f)
	}
	if v := f.AdmitHold(1, 2, 3); v != Hold {
		t.Fatalf("fresh gate should be open at held=3: %v", v)
	}
	if v := p.AdmitHold(1, 2, 3); v != ShedAdmission {
		t.Fatalf("original gate should still be closed at held=3: %v", v)
	}
}

// newPolicyPageCluster builds an n-site page cluster with the policy
// installed.
func newPolicyPageCluster(t *testing.T, n, objects int, p HoldPolicy) *Cluster {
	t.Helper()
	c, err := NewWithConfig(Config{Sites: n, Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= core.ObjectID(objects); id++ {
		if err := c.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestDepthBoundShedsTail builds the convoy tail by hand: with
// Max=2, the transaction that would sit at chain depth 3 is shed at
// commit with a retryable ReasonShed abort, while the depth-2 hold
// under it survives and releases normally.
func TestDepthBoundShedsTail(t *testing.T) {
	c := newPolicyPageCluster(t, 3, 6, DepthBound{Max: 2})
	t1, t2, t3 := c.Begin(), c.Begin(), c.Begin()
	if _, err := t1.Do(1, write(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Do(1, write(20)); err != nil { // dep T2->T1
		t.Fatal(err)
	}
	if _, err := t2.Do(2, write(22)); err != nil {
		t.Fatal(err)
	}
	if st, err := t2.Commit(); err != nil || st != core.PseudoCommitted {
		t.Fatalf("T2 commit = %v, %v; want pseudo-committed (depth 2 admissible)", st, err)
	}
	if _, err := t3.Do(2, write(30)); err != nil { // dep T3->T2: depth 3
		t.Fatal(err)
	}
	if _, err := t3.Do(3, write(33)); err != nil {
		t.Fatal(err)
	}
	_, err := t3.Commit()
	if !errors.Is(err, core.ErrHoldShed) {
		t.Fatalf("T3 commit = %v, want ErrHoldShed (depth 3 over bound 2)", err)
	}
	var ab *core.ErrAborted
	if !errors.As(err, &ab) || !ab.Retryable() {
		t.Fatalf("shed abort not retryable: %v", err)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v, %v", st, err)
	}
	<-t2.Done()
	if err := t2.Err(); err != nil {
		t.Fatal(err)
	}
	// The shed left no trace in committed state: obj 2 holds T2's
	// write, not T3's.
	for id, want := range map[core.ObjectID]string{1: "page{20}", 2: "page{22}"} {
		s, err := c.Site(c.SiteOf(id)).CommittedState(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprint(s); got != want {
			t.Fatalf("object %d committed state = %s, want %s", id, got, want)
		}
	}
	ps := c.PolicyStats()
	if ps.TailAborts != 1 || ps.AdmissionRejects != 0 {
		t.Fatalf("stats = %+v, want exactly 1 tail abort", ps)
	}
	if ps.HeldPeak != 1 {
		t.Fatalf("held peak = %d, want 1 (only T2 was ever held)", ps.HeldPeak)
	}
}

// TestAdmissionShedsOverCapacity: with High=2, the third would-be hold
// is refused while the first two are admitted, and the refusal is the
// retryable shed abort a client can simply resubmit after the convoy
// drains.
func TestAdmissionShedsOverCapacity(t *testing.T) {
	c := newPolicyPageCluster(t, 3, 8, &Admission{High: 2, Low: 1})
	t1 := c.Begin()
	if _, err := t1.Do(1, write(10)); err != nil {
		t.Fatal(err)
	}
	// Two admissible holds on T1.
	held := []core.Txn{}
	for i, obj := range []core.ObjectID{2, 3} {
		tx := c.Begin()
		if _, err := tx.Do(1, write(100+i)); err != nil { // dep -> T1
			t.Fatal(err)
		}
		if _, err := tx.Do(obj, write(200+i)); err != nil {
			t.Fatal(err)
		}
		if st, err := tx.Commit(); err != nil || st != core.PseudoCommitted {
			t.Fatalf("hold %d commit = %v, %v", i, st, err)
		}
		held = append(held, tx)
	}
	// The gate is at capacity: the next hold is shed.
	t4 := c.Begin()
	if _, err := t4.Do(1, write(400)); err != nil {
		t.Fatal(err)
	}
	if _, err := t4.Do(5, write(404)); err != nil { // site 2: keep T4 cross-site
		t.Fatal(err)
	}
	if _, err := t4.Commit(); !errors.Is(err, core.ErrHoldShed) {
		t.Fatalf("T4 commit over capacity = %v, want ErrHoldShed", err)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v, %v", st, err)
	}
	for _, tx := range held {
		<-tx.Done()
		if err := tx.Err(); err != nil {
			t.Fatal(err)
		}
	}
	ps := c.PolicyStats()
	if ps.AdmissionRejects != 1 || ps.TailAborts != 0 {
		t.Fatalf("stats = %+v, want exactly 1 admission reject", ps)
	}
	if ps.HeldPeak != 2 {
		t.Fatalf("held peak = %d, want 2", ps.HeldPeak)
	}
}

// TestEagerReleaseBatchesSubtree: under the eager policy a two-deep
// held chain drains in ONE coordinator round when its root commits,
// instead of one cascade hop per level.
func TestEagerReleaseBatchesSubtree(t *testing.T) {
	c := newPolicyPageCluster(t, 3, 6, EagerRelease{})
	t1, t2, t3 := c.Begin(), c.Begin(), c.Begin()
	if _, err := t1.Do(1, write(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Do(1, write(20)); err != nil { // T2 -> T1
		t.Fatal(err)
	}
	if _, err := t2.Do(2, write(22)); err != nil {
		t.Fatal(err)
	}
	if st, err := t2.Commit(); err != nil || st != core.PseudoCommitted {
		t.Fatalf("T2 commit = %v, %v", st, err)
	}
	if _, err := t3.Do(2, write(30)); err != nil { // T3 -> T2
		t.Fatal(err)
	}
	if _, err := t3.Do(3, write(33)); err != nil {
		t.Fatal(err)
	}
	if st, err := t3.Commit(); err != nil || st != core.PseudoCommitted {
		t.Fatalf("T3 commit = %v, %v (eager policy never sheds)", st, err)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v, %v", st, err)
	}
	<-t2.Done()
	<-t3.Done()
	if err := t2.Err(); err != nil {
		t.Fatal(err)
	}
	if err := t3.Err(); err != nil {
		t.Fatal(err)
	}
	ps := c.PolicyStats()
	if ps.EagerRounds != 1 || ps.EagerReleased != 2 {
		t.Fatalf("stats = %+v, want the whole T2,T3 subtree released in 1 round", ps)
	}
	// Release order respected the chain: the committed states are the
	// topmost writes.
	for id, want := range map[core.ObjectID]string{1: "page{20}", 2: "page{30}", 3: "page{33}"} {
		s, err := c.Site(c.SiteOf(id)).CommittedState(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprint(s); got != want {
			t.Fatalf("object %d committed state = %s, want %s", id, got, want)
		}
	}
}

// orderObserver flags any transaction reported Aborted after it was
// reported Released — the wall-clock form of "never abort a
// really-committed transaction".
type orderObserver struct {
	mu       sync.Mutex
	released map[core.TxnID]bool
	bad      atomic.Int64
}

func (o *orderObserver) Held(core.TxnID, int) {}
func (o *orderObserver) Released(t core.TxnID) {
	o.mu.Lock()
	o.released[t] = true
	o.mu.Unlock()
}
func (o *orderObserver) Aborted(t core.TxnID, _ string) {
	o.mu.Lock()
	if o.released[t] {
		o.bad.Add(1)
	}
	o.mu.Unlock()
}

// TestPolicyClusterConservation hammers a policy-bearing cluster with
// concurrent stack pushers that retry shed aborts, then checks global
// conservation: every push promised by a successful commit is in a
// committed stack, every shed one is not. Run under -race this is also
// the policy paths' data-race test.
func TestPolicyClusterConservation(t *testing.T) {
	policies := []HoldPolicy{
		DepthBound{Max: 3},
		EagerRelease{},
		&Admission{High: 6, Low: 3},
	}
	for _, p := range policies {
		t.Run(p.Name(), func(t *testing.T) {
			const (
				sites   = 3
				objects = 12
				workers = 6
				txns    = 30
			)
			obs := &orderObserver{released: make(map[core.TxnID]bool)}
			c, err := NewWithConfig(Config{Sites: sites, Obs: obs, Policy: p})
			if err != nil {
				t.Fatal(err)
			}
			for id := core.ObjectID(1); id <= objects; id++ {
				if err := c.Register(id, adt.Stack{}, compat.StackTable()); err != nil {
					t.Fatal(err)
				}
			}
			var pushed [objects + 1]atomic.Int64
			var sheds, aborts atomic.Int64
			var wg sync.WaitGroup
			var handles sync.Map // core.Txn -> struct{}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < txns; i++ {
						// Retry the logical transaction until its commit
						// promise lands: sheds are retryable by design.
						for attempt := 0; ; attempt++ {
							if attempt > 1000 {
								t.Error("logical transaction starved after 1000 attempts")
								return
							}
							tx := c.Begin()
							n := 1 + (w+i)%3
							var objs []core.ObjectID
							ok := true
							for k := 0; k < n; k++ {
								obj := core.ObjectID(1 + (w*31+i*17+k*7)%objects)
								if _, err := tx.Do(obj, push(w*1000+i)); err != nil {
									if !errors.Is(err, core.ErrTxnAborted) {
										t.Error(err)
									}
									aborts.Add(1)
									ok = false
									break
								}
								objs = append(objs, obj)
							}
							if !ok {
								continue
							}
							// Keep the transaction open briefly so workers
							// overlap: that is what forms the commit
							// dependencies (and therefore holds) the policy
							// exists to manage.
							time.Sleep(time.Millisecond)
							if _, err := tx.Commit(); err != nil {
								if errors.Is(err, core.ErrHoldShed) {
									sheds.Add(1)
									continue
								}
								var ab *core.ErrAborted
								if errors.As(err, &ab) && ab.Retryable() {
									aborts.Add(1)
									continue
								}
								t.Error(err)
								return
							}
							for _, obj := range objs {
								pushed[obj].Add(1)
							}
							handles.Store(tx, struct{}{})
							break
						}
					}
				}(w)
			}
			wg.Wait()
			handles.Range(func(k, _ any) bool {
				h := k.(core.Txn)
				<-h.Done()
				if err := h.Err(); err != nil {
					t.Error(err)
				}
				return true
			})
			total := int64(0)
			for id := core.ObjectID(1); id <= objects; id++ {
				s, err := c.Site(c.SiteOf(id)).CommittedState(id)
				if err != nil {
					t.Fatal(err)
				}
				depth := int64(s.(*adt.StackState).Len())
				if got := pushed[id].Load(); got != depth {
					t.Errorf("object %d: committed depth %d, promised pushes %d", id, depth, got)
				}
				total += depth
			}
			if total != workers*txns*2 { // mean 2 pushes per logical txn
				t.Errorf("total committed pushes = %d, want %d", total, workers*txns*2)
			}
			if bad := obs.bad.Load(); bad != 0 {
				t.Errorf("%d transactions aborted after release", bad)
			}
			ps := c.PolicyStats()
			if ps.HeldPeak == 0 {
				t.Error("no hold was ever admitted — the stress never reached the policy")
			}
			t.Logf("%s: stats=%+v sheds=%d aborts=%d", p.Name(), ps, sheds.Load(), aborts.Load())
		})
	}
}

// TestEagerCascadePolicyStress is the regression shape for the eager
// cascade's decide-before-release ordering: finished transactions and
// cross-site cycle aborts finalize from many goroutines at once, so
// eager cascades overlap. Before cascadeEager's single-owner queue,
// one cascade could release a dependant at a shared site before
// another cascade's release of its predecessor landed there — the
// local scheduler still held the edge and releaseAt panicked with
// outstanding dependencies. Needs real preemption to interleave,
// hence the GOMAXPROCS bump; several seeds to make the window likely.
func TestEagerCascadePolicyStress(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const sites, workers, txns = 4, 8, 60
	var released int
	for seed := int64(1); seed <= 6; seed++ {
		c, err := NewWithConfig(Config{Sites: sites, Policy: EagerRelease{}})
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.Sharded{Inner: workload.Pushes{DBSize: 200}, Sites: sites, CrossProb: 0.1}
		res, err := RunLoad(c, LoadConfig{
			Workload:      gen,
			Workers:       workers,
			TxnsPerWorker: txns,
			Seed:          seed,
			MaxRestarts:   100000,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Commits != workers*txns {
			t.Fatalf("seed %d: %d commits, want %d", seed, res.Commits, workers*txns)
		}
		released += c.PolicyStats().EagerReleased
	}
	if released == 0 {
		t.Fatal("no eager release ever fired — the stress never exercised the cascade")
	}
}
