package dist

import (
	"context"
	"errors"
	"slices"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/workload"
)

// newFaultCluster builds an n-site fault-tolerant cluster with pages
// 1..objects.
func newFaultCluster(t *testing.T, n, objects int) *Cluster {
	t.Helper()
	c, err := NewWithConfig(Config{Sites: n, FaultTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= core.ObjectID(objects); id++ {
		if err := c.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestPlainClusterRefusesCrash(t *testing.T) {
	c := newPageCluster(t, 2, 4)
	if err := c.Crash(0); !errors.Is(err, ErrNotFaultTolerant) {
		t.Fatalf("Crash on plain cluster = %v", err)
	}
	if _, err := c.Restart(0); !errors.Is(err, ErrNotFaultTolerant) {
		t.Fatalf("Restart on plain cluster = %v", err)
	}
	if c.SiteDown(0) {
		t.Fatal("plain cluster site reported down")
	}
	if c.DecisionLog() != nil {
		t.Fatal("plain cluster has a decision log")
	}
}

// TestCrashAbortsInFlight: a cross-site transaction whose participant
// crashes mid-conversation aborts with the typed ErrSiteFailed, and
// its operations at the surviving sites are undone.
func TestCrashAbortsInFlight(t *testing.T) {
	c := newFaultCluster(t, 2, 4)
	tx := c.Begin()
	if _, err := tx.Do(2, write(20)); err != nil { // site 0
		t.Fatal(err)
	}
	if _, err := tx.Do(1, write(10)); err != nil { // site 1
		t.Fatal(err)
	}
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	if !c.SiteDown(1) {
		t.Fatal("site 1 not down")
	}
	_, err := tx.Do(4, write(40)) // routes to site 0, but the txn is doomed
	if !errors.Is(err, core.ErrSiteFailed) || !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("Do after crash = %v, want ErrSiteFailed", err)
	}
	var ab *core.ErrAborted
	if !errors.As(err, &ab) || !ab.Retryable() {
		t.Fatalf("site-failure abort not retryable: %v", err)
	}
	<-tx.Done()
	if err := tx.Err(); !errors.Is(err, core.ErrSiteFailed) {
		t.Fatalf("Err = %v, want ErrSiteFailed", err)
	}
	// The survivor undid the write.
	st, err := c.Site(0).ObjectState(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(*adt.PageState); got.V != 0 {
		t.Fatalf("site 0 state after abort = %d, want 0", got.V)
	}
	if _, err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
}

// TestCrashFailsParkedWaiter: a request parked at the crashing site is
// woken with the site-failure verdict instead of waiting forever.
func TestCrashFailsParkedWaiter(t *testing.T) {
	c := newFaultCluster(t, 2, 4)
	t1, t2 := c.Begin(), c.Begin()
	if _, err := t1.Do(1, write(11)); err != nil { // site 1
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		_, err := t2.Do(1, read()) // parks behind T1's write at site 1
		res <- err
	}()
	waitLocalState(t, c.Site(1), t2.ID(), "blocked")
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := <-res; !errors.Is(err, core.ErrSiteFailed) {
		t.Fatalf("parked Do after crash = %v, want ErrSiteFailed", err)
	}
	// T1 is doomed too; its commit must fail the same way.
	if _, err := t1.Commit(); !errors.Is(err, core.ErrSiteFailed) {
		t.Fatalf("doomed commit = %v, want ErrSiteFailed", err)
	}
	if _, err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
}

// TestHeldPresumedAbortOnCrash: an unlogged held pseudo-commit touching
// the crashed site is revoked everywhere — the coordinator-side half of
// presumed abort — and ends with a typed ErrSiteFailed; after restart
// its effects are nowhere.
func TestHeldPresumedAbortOnCrash(t *testing.T) {
	c := newFaultCluster(t, 2, 4)
	t1, t2 := c.Begin(), c.Begin()
	if _, err := t1.Do(2, write(20)); err != nil { // site 0
		t.Fatal(err)
	}
	if _, err := t2.Do(2, write(21)); err != nil { // dep T2->T1 at site 0
		t.Fatal(err)
	}
	if _, err := t2.Do(1, write(12)); err != nil { // site 1
		t.Fatal(err)
	}
	st, err := t2.Commit()
	if err != nil || st != core.PseudoCommitted {
		t.Fatalf("T2 commit = %v %v, want held", st, err)
	}
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	// The hold is revoked synchronously by the crash handler.
	<-t2.Done()
	if err := t2.Err(); !errors.Is(err, core.ErrSiteFailed) {
		t.Fatalf("held T2 after crash: Err = %v, want ErrSiteFailed", err)
	}
	if _, ok := c.flog.Lookup(t2.ID()); ok {
		t.Fatal("revoked transaction has a logged outcome")
	}
	// T1 is unaffected (it never touched site 1) and commits; T2's
	// write at site 0 is gone.
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v %v", st, err)
	}
	s0, _ := c.Site(0).CommittedState(2)
	if got := s0.(*adt.PageState); got.V != 20 {
		t.Fatalf("site 0 committed = %d, want T1's 20 (T2's 21 revoked)", got.V)
	}
	rep, err := c.Restart(1)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(rep.PresumedAborted, []core.TxnID{t2.ID()}) {
		t.Fatalf("recovery report %+v, want T2 presumed aborted", rep)
	}
	s1, _ := c.Site(1).CommittedState(1)
	if got := s1.(*adt.PageState); got.V != 0 {
		t.Fatalf("site 1 committed = %d, want 0", got.V)
	}
}

// TestLoggedCommitRedoneAfterCrashedRelease: a site that crashes
// before the release of a logged commit reaches it recovers the
// transaction from its prepared record — the re-release half of
// presumed abort, across the cluster. The crash is injected at the
// fault layer directly, modelling a failure the coordinator has not
// detected yet when the release conversation runs.
func TestLoggedCommitRedoneAfterCrashedRelease(t *testing.T) {
	c := newFaultCluster(t, 2, 4)
	t1, t2 := c.Begin(), c.Begin()
	if _, err := t1.Do(2, write(20)); err != nil { // site 0
		t.Fatal(err)
	}
	if _, err := t2.Do(2, write(21)); err != nil { // dep T2->T1 at site 0
		t.Fatal(err)
	}
	if _, err := t2.Do(1, write(12)); err != nil { // site 1
		t.Fatal(err)
	}
	if st, err := t2.Commit(); err != nil || st != core.PseudoCommitted {
		t.Fatalf("T2 commit = %v %v, want held", st, err)
	}
	// Site 1 dies silently: the coordinator's crash detection has not
	// run, so T2 stays held rather than revoked.
	if err := c.sites[1].cr.Crash(); err != nil {
		t.Fatal(err)
	}
	// T1 commits, draining T2's dependency: the coordinator logs T2's
	// commit, releases it at site 0, and skips the dead site 1.
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v %v", st, err)
	}
	<-t2.Done()
	if err := t2.Err(); err != nil {
		t.Fatalf("logged T2 = %v, want committed", err)
	}
	if o, ok := c.flog.Lookup(t2.ID()); !ok || o != fault.OutcomeCommit {
		t.Fatalf("decision log for T2 = %v %v, want commit", o, ok)
	}
	s0, _ := c.Site(0).CommittedState(2)
	if got := s0.(*adt.PageState); got.V != 21 {
		t.Fatalf("site 0 committed = %d, want 21", got.V)
	}
	// Recovery redoes T2 at site 1 from the prepared record.
	rep, err := c.Restart(1)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(rep.Redone, []core.TxnID{t2.ID()}) {
		t.Fatalf("recovery report %+v, want T2 redone", rep)
	}
	s1, _ := c.Site(1).CommittedState(1)
	if got := s1.(*adt.PageState); got.V != 12 {
		t.Fatalf("site 1 committed after redo = %d, want 12", got.V)
	}
}

// TestBeginAtDownSite: a fresh transaction routed to a down site
// aborts retryably and succeeds after the restart.
func TestBeginAtDownSite(t *testing.T) {
	c := newFaultCluster(t, 2, 4)
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	_, err := tx.Do(1, write(1)) // site 1 is down
	if !errors.Is(err, core.ErrSiteFailed) {
		t.Fatalf("Do at down site = %v, want ErrSiteFailed", err)
	}
	if _, err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	// Store.Run's retry loop recovers once the site is back.
	if err := c.Run(context.Background(), func(tx core.Txn) error {
		_, err := tx.Do(1, write(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	s1, _ := c.Site(1).CommittedState(1)
	if got := s1.(*adt.PageState); got.V != 1 {
		t.Fatalf("committed = %d, want 1", got.V)
	}
}

// TestMultiSiteEdgeFreeCommitUsesHolds: on a fault-tolerant cluster a
// multi-site transaction goes through the prepare conversation even
// when edge-free (a direct per-site commit would not be atomic under
// crashes), and its commit is logged at the commit point — observed at
// the AfterDecisionBeforeRelease step boundary, because once every
// participant releases, the release-ack protocol truncates the
// decision. A single-site transaction keeps the fast path (no log
// entry, no conversation steps).
func TestMultiSiteEdgeFreeCommitUsesHolds(t *testing.T) {
	type logged struct {
		o  fault.Outcome
		ok bool
	}
	atDecision := make(map[core.TxnID]logged)
	var c *Cluster
	cfg := Config{Sites: 2, FaultTolerant: true}
	cfg.StepHook = func(step Step, id core.TxnID, _ SiteID) {
		if step == AfterDecisionBeforeRelease {
			o, ok := c.flog.Lookup(id)
			atDecision[id] = logged{o: o, ok: ok}
		}
	}
	var err error
	c, err = NewWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= 4; id++ {
		if err := c.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	tx := c.Begin()
	if _, err := tx.Do(1, write(1)); err != nil { // site 1
		t.Fatal(err)
	}
	if _, err := tx.Do(2, write(2)); err != nil { // site 0
		t.Fatal(err)
	}
	if st, err := tx.Commit(); err != nil || st != core.Committed {
		t.Fatalf("commit = %v %v", st, err)
	}
	if got := atDecision[tx.ID()]; !got.ok || got.o != fault.OutcomeCommit {
		t.Fatalf("decision log at AfterDecisionBeforeRelease = %v %v, want commit", got.o, got.ok)
	}
	// Both participants released, so the release-ack protocol pruned
	// the decision: presumed abort never needs it again.
	if _, ok := c.flog.Lookup(tx.ID()); ok {
		t.Fatal("fully released commit decision was not truncated")
	}
	if n := c.flog.Len(); n != 0 {
		t.Fatalf("decision log holds %d entries after full release, want 0", n)
	}
	single := c.Begin()
	if _, err := single.Do(2, write(3)); err != nil {
		t.Fatal(err)
	}
	if st, err := single.Commit(); err != nil || st != core.Committed {
		t.Fatalf("single-site commit = %v %v", st, err)
	}
	if _, ok := atDecision[single.ID()]; ok {
		t.Fatal("single-site fast-path commit ran conversation steps")
	}
}

// TestHoldConversationBatchesMirrorUpdates pins the batching of the
// commit conversation's edge exports: a k-site hold phase performs
// exactly k mirror updates in exactly one coordinator critical
// section.
func TestHoldConversationBatchesMirrorUpdates(t *testing.T) {
	c := newPageCluster(t, 3, 6)
	t1, t2 := c.Begin(), c.Begin()
	if _, err := t1.Do(1, write(10)); err != nil { // site 1
		t.Fatal(err)
	}
	if _, err := t2.Do(1, write(11)); err != nil { // dep T2->T1 at site 1
		t.Fatal(err)
	}
	if _, err := t2.Do(2, write(22)); err != nil { // site 2
		t.Fatal(err)
	}
	c.mu.Lock()
	observesBefore, batchesBefore := c.mirror.Observes(), c.holdBatches
	c.mu.Unlock()
	if st, err := t2.Commit(); err != nil || st != core.PseudoCommitted {
		t.Fatalf("T2 commit = %v %v", st, err)
	}
	c.mu.Lock()
	observes, batches := c.mirror.Observes()-observesBefore, c.holdBatches-batchesBefore
	c.mu.Unlock()
	if observes != 2 {
		t.Fatalf("hold conversation performed %d mirror updates, want 2 (one per touched site)", observes)
	}
	if batches != 1 {
		t.Fatalf("hold conversation took %d coordinator rounds, want 1", batches)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v %v", st, err)
	}
	<-t2.Done()
	if err := t2.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterCloseCtx: the draining close waits for a slow transaction
// and a cancelled context force-gates.
func TestClusterCloseCtx(t *testing.T) {
	c := newPageCluster(t, 2, 4)
	slow := c.Begin()
	if _, err := slow.Do(1, write(1)); err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() {
		closed <- c.CloseCtx(context.Background())
	}()
	// The gate drops immediately, but the close must wait for slow.
	select {
	case err := <-closed:
		t.Fatalf("CloseCtx returned %v with a transaction in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := c.Begin().Do(1, write(2)); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("Begin after CloseCtx = %v, want ErrClosed", err)
	}
	if st, err := slow.Commit(); err != nil || st != core.Committed {
		t.Fatalf("slow commit = %v %v", st, err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("CloseCtx after drain = %v", err)
	}

	// Force-gate: a cancelled context stops the wait.
	c2 := newPageCluster(t, 2, 4)
	hung := c2.Begin()
	if _, err := hung.Do(1, write(1)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := c2.CloseCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseCtx with hung transaction = %v, want deadline", err)
	}
	// Still gated; the hung transaction can still finish, after which a
	// fresh CloseCtx returns immediately.
	if st, err := hung.Commit(); err != nil || st != core.Committed {
		t.Fatalf("hung commit = %v %v", st, err)
	}
	if err := c2.CloseCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestChaosClusterConservation is the -race chaos stress: RunLoad over
// a 4-site fault-tolerant cluster with a periodic crash/restart of one
// site, the liveness watchdog armed, and exact conservation checked
// across the failures — every object's committed stack depth equals
// the push count of transactions whose commit promise was honoured.
func TestChaosClusterConservation(t *testing.T) {
	const sites = 4
	c, err := NewWithConfig(Config{Sites: sites, FaultTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.Sharded{
		Inner: workload.Pushes{DBSize: 64},
		Sites: sites, CrossProb: 0.3,
	}
	const workers, txns = 8, 500
	res, err := workload.RunChaos(c, workload.ChaosConfig{
		Load: workload.LoadConfig{
			Workload:      gen,
			Workers:       workers,
			TxnsPerWorker: txns,
			Seed:          1,
			MaxRestarts:   100000,
		},
		CrashEvery:   4 * time.Millisecond,
		RestartAfter: 2 * time.Millisecond,
		Deadline:     2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != workers*txns {
		t.Fatalf("commits = %d, want %d (every logical txn must end committed)", res.Commits, workers*txns)
	}
	if res.Crashes == 0 {
		t.Fatal("chaos run injected no crashes; the schedule is broken")
	}
	for id := core.ObjectID(1); id <= 64; id++ {
		st, err := c.Site(c.SiteOf(id)).CommittedState(id)
		if err != nil {
			if errors.Is(err, core.ErrUnknownObject) && res.CommittedSteps[id] == 0 {
				continue // never touched, never materialised
			}
			t.Fatalf("object %d: %v", id, err)
		}
		if got, want := uint64(st.(*adt.StackState).Len()), res.CommittedSteps[id]; got != want {
			t.Errorf("object %d: committed depth %d, promised pushes %d", id, got, want)
		}
	}
	t.Logf("chaos: %d crashes, %d held aborts, %d aborted attempts, %d ops",
		res.Crashes, res.HeldAborts, res.Aborts, res.Ops)
}
