package dist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/workload"
)

func write(v int) adt.Op { return adt.Op{Name: adt.PageWrite, Arg: v, HasArg: true} }
func read() adt.Op       { return adt.Op{Name: adt.PageRead} }
func push(v int) adt.Op  { return adt.Op{Name: adt.StackPush, Arg: v, HasArg: true} }

// newPageCluster builds an n-site cluster with pages 1..objects.
func newPageCluster(t *testing.T, n, objects int) *Cluster {
	t.Helper()
	c, err := New(n, core.Options{}, RouteByModulo(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= core.ObjectID(objects); id++ {
		if err := c.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestRouteByModulo(t *testing.T) {
	r := RouteByModulo(3)
	for id := core.ObjectID(0); id < 9; id++ {
		if got, want := r(id), SiteID(id%3); got != want {
			t.Fatalf("route(%d) = %d, want %d", id, got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, core.Options{}, nil, nil); !errors.Is(err, ErrBadSites) {
		t.Fatalf("New(0) = %v, want ErrBadSites", err)
	}
	c, err := New(4, core.Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSites() != 4 {
		t.Fatalf("NumSites = %d", c.NumSites())
	}
	// nil router defaults to modulo.
	if got := c.SiteOf(core.ObjectID(6)); got != SiteID(2) {
		t.Fatalf("default route(6) = %d, want 2", got)
	}
}

// TestCrossSitePseudoCommitAndRelease is the first half of the §6
// example: a commit dependency at one site holds the transaction at
// every participant; the coordinator releases it when the dependency
// drains.
func TestCrossSitePseudoCommitAndRelease(t *testing.T) {
	c := newPageCluster(t, 3, 6)
	t1, t2 := c.Begin(), c.Begin()
	if _, err := t1.Do(1, write(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Do(1, write(11)); err != nil { // dep T2->T1 at site 1
		t.Fatal(err)
	}
	if _, err := t2.Do(2, write(22)); err != nil { // site 2, clean
		t.Fatal(err)
	}
	st, err := t2.Commit()
	if err != nil || st != core.PseudoCommitted {
		t.Fatalf("T2 commit = %v, %v; want pseudo-committed", st, err)
	}
	// Held at both visited sites: really committing is Release's job.
	for _, sid := range []SiteID{1, 2} {
		if got := c.Site(sid).TxnState(t2.ID()); got != "pseudo-committed" {
			t.Fatalf("T2 at site %d = %s", sid, got)
		}
	}
	select {
	case <-t2.Done():
		t.Fatal("T2 really committed while T1 still active")
	default:
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v, %v", st, err)
	}
	<-t2.Done()
	if err := t2.Err(); err != nil {
		t.Fatal(err)
	}
	// The writes landed in the committed states at their home sites.
	for id, want := range map[core.ObjectID]string{1: "page{11}", 2: "page{22}"} {
		s, err := c.Site(c.SiteOf(id)).CommittedState(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprint(s); got != want {
			t.Fatalf("object %d committed state = %s, want %s", id, got, want)
		}
	}
}

// TestCrossSiteCommitDepCycle is the second half of the §6 example: a
// commit-dependency cycle split across two sites is invisible to both
// local schedulers and must be caught by the coordinator's mirror.
func TestCrossSiteCommitDepCycle(t *testing.T) {
	c := newPageCluster(t, 3, 6)
	a, b := c.Begin(), c.Begin()
	if _, err := a.Do(4, write(40)); err != nil { // site 1
		t.Fatal(err)
	}
	if _, err := b.Do(5, write(50)); err != nil { // site 2
		t.Fatal(err)
	}
	if _, err := b.Do(4, write(41)); err != nil { // dep B->A at site 1
		t.Fatal(err)
	}
	_, err := a.Do(5, write(51)) // dep A->B at site 2: global cycle
	if !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("expected coordinator abort, got %v", err)
	}
	// A is gone at every site; B sails through.
	<-a.Done()
	if err := a.Err(); !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("Err on aborted txn = %v", err)
	}
	if st, err := b.Commit(); err != nil || st != core.Committed {
		t.Fatalf("B commit = %v, %v", st, err)
	}
	for id, want := range map[core.ObjectID]string{4: "page{41}", 5: "page{50}"} {
		s, err := c.Site(c.SiteOf(id)).CommittedState(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprint(s); got != want {
			t.Fatalf("object %d committed state = %s, want %s", id, got, want)
		}
	}
}

// waitLocalState polls until the transaction reaches the given local
// state at the site (the scheduler is deterministic but the handle's
// goroutine parks asynchronously).
func waitLocalState(t *testing.T, s SiteBackend, id core.TxnID, state string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.TxnState(id) == state {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("T%d never reached %s", id, state)
}

// TestCrossSiteDeadlock: T1 waits at site 2 for T2 while T2 waits at
// site 1 for T1 — a wait-for cycle neither site sees locally. The
// coordinator's union graph catches it and aborts the closer of the
// cycle; the survivor's blocked request is granted.
func TestCrossSiteDeadlock(t *testing.T) {
	c := newPageCluster(t, 2, 4)
	t1, t2 := c.Begin(), c.Begin()
	// Object 1 -> site 1, object 2 -> site 0.
	if _, err := t1.Do(1, write(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Do(2, write(200)); err != nil {
		t.Fatal(err)
	}
	// T1 reads object 2: read-after-uncommitted-write conflicts, so it
	// parks at site 0 behind T2.
	t1Res := make(chan error, 1)
	go func() {
		_, err := t1.Do(2, read())
		t1Res <- err
	}()
	waitLocalState(t, c.Site(0), t1.ID(), "blocked")

	// T2 reads object 1: would park at site 1 behind T1, closing the
	// cross-site wait-for cycle — the coordinator must abort T2.
	if _, err := t2.Do(1, read()); !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("T2 read = %v, want cross-site deadlock abort", err)
	}
	// T2's abort unblocks T1's read (the uncommitted write is undone).
	if err := <-t1Res; err != nil {
		t.Fatalf("T1's blocked read = %v", err)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v, %v", st, err)
	}
}

// TestReblockedEdgeMirrored: under unfair scheduling a site-level
// retry can re-block a parked transaction behind a holder it had no
// edge to when it parked, while its owner goroutine sleeps. The
// cluster must re-mirror those edges on the parked transaction's
// behalf (refreshParked), or the cross-site deadlock closed through
// the re-blocked edge is invisible to the union graph and both
// transactions hang forever.
func TestReblockedEdgeMirrored(t *testing.T) {
	c, err := New(2, core.Options{Unfair: true}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= 2; id++ {
		if err := c.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	t1, t2, t3 := c.Begin(), c.Begin(), c.Begin()
	// T1 writes object 2 at site 0, so T3 can later wait on it there.
	if _, err := t1.Do(2, write(12)); err != nil {
		t.Fatal(err)
	}
	// T2 writes object 1 at site 1; T1's read of it parks behind T2.
	if _, err := t2.Do(1, write(21)); err != nil {
		t.Fatal(err)
	}
	t1Res := make(chan error, 1)
	go func() {
		_, err := t1.Do(1, read())
		t1Res <- err
	}()
	waitLocalState(t, c.Site(1), t1.ID(), "blocked")
	// Unfair scheduling lets T3's write execute past T1's parked read
	// (write-write with T2 is recoverable).
	if _, err := t3.Do(1, write(31)); err != nil {
		t.Fatal(err)
	}
	// T2 aborts: site 1's retry re-blocks the still-parked T1 behind
	// T3 — an edge T1 had no counterpart for when it parked.
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	waitLocalState(t, c.Site(1), t1.ID(), "blocked")
	// T3 now reads object 2 at site 0 and waits on T1 there: the
	// union graph holds T3->T1 (site 0) and the re-blocked T1->T3
	// (site 1) — a cross-site deadlock only the coordinator can see.
	if _, err := t3.Do(2, read()); !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("T3 read = %v, want cross-site deadlock abort", err)
	}
	// T3's abort unblocks T1; everything drains.
	if err := <-t1Res; err != nil {
		t.Fatalf("T1's parked read = %v", err)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v, %v", st, err)
	}
}

// TestBothParkedDeadlockDetected: a cross-site wait-for cycle closed
// by a site-level retry re-block while BOTH transactions are parked —
// no owner's observe will ever run again, so refreshParked itself
// must detect the cycle and wake a victim with the deadlock verdict.
func TestBothParkedDeadlockDetected(t *testing.T) {
	c, err := New(2, core.Options{Unfair: true}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= 2; id++ {
		if err := c.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	t1, t2, t3 := c.Begin(), c.Begin(), c.Begin()
	// T2 writes object 1 at site 1; T3 writes object 2 at site 0.
	if _, err := t2.Do(1, write(21)); err != nil {
		t.Fatal(err)
	}
	if _, err := t3.Do(2, write(32)); err != nil {
		t.Fatal(err)
	}
	// T2 reads object 2: parks at site 0 behind T3.
	t2Res := make(chan error, 1)
	go func() {
		_, err := t2.Do(2, read())
		t2Res <- err
	}()
	waitLocalState(t, c.Site(0), t2.ID(), "blocked")
	// Unfair scheduling lets T1's write of object 2 execute past T2's
	// parked read (write-write with T3 is recoverable).
	if _, err := t1.Do(2, write(12)); err != nil {
		t.Fatal(err)
	}
	// T1 reads object 1: parks at site 1 behind T2. Union so far:
	// T1->T2, T2->T3, T1->T3 — acyclic, so T1 stays parked.
	t1Res := make(chan error, 1)
	go func() {
		_, err := t1.Do(1, read())
		t1Res <- err
	}()
	waitLocalState(t, c.Site(1), t1.ID(), "blocked")
	// T3 commits: site 0's retry re-blocks the still-parked T2 behind
	// T1's write — closing T1->T2->T1 with both owners asleep.
	if st, err := t3.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T3 commit = %v, %v", st, err)
	}
	// The coordinator must have woken T2 with a deadlock abort, which
	// in turn unblocks T1's read.
	if err := <-t2Res; !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("parked T2 = %v, want deadlock abort", err)
	}
	if err := <-t1Res; err != nil {
		t.Fatalf("T1's parked read = %v", err)
	}
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v, %v", st, err)
	}
}

// TestBlockedGrantAcrossRelease: a request blocked behind a held
// transaction is granted when the coordinator releases the holder.
func TestBlockedGrantAcrossRelease(t *testing.T) {
	c, err := New(2, core.Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(2, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	t1, t2 := c.Begin(), c.Begin()
	if _, err := t1.Do(2, write(7)); err != nil { // site 0
		t.Fatal(err)
	}
	if _, err := t2.Do(2, write(8)); err != nil { // dep T2->T1 at site 0
		t.Fatal(err)
	}
	if _, err := t2.Do(1, push(5)); err != nil { // site 1
		t.Fatal(err)
	}
	if st, _ := t2.Commit(); st != core.PseudoCommitted {
		t.Fatalf("T2 = %v, want pseudo-committed (held)", st)
	}
	// T3 pops at site 1: pop conflicts with the held uncommitted push.
	t3 := c.Begin()
	t3Res := make(chan adt.Ret, 1)
	go func() {
		ret, err := t3.Do(1, adt.Op{Name: adt.StackPop})
		if err != nil {
			t.Error(err)
		}
		t3Res <- ret
	}()
	waitLocalState(t, c.Site(1), t3.ID(), "blocked")
	// T1 commits -> T2's dependency drains -> coordinator releases T2
	// everywhere -> T3's pop is granted with T2's value.
	if st, err := t1.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T1 commit = %v, %v", st, err)
	}
	<-t2.Done()
	if err := t2.Err(); err != nil {
		t.Fatal(err)
	}
	ret := <-t3Res
	if ret.Code != adt.Value || ret.Val != 5 {
		t.Fatalf("pop after release = %v, want value 5", ret)
	}
	if st, err := t3.Commit(); err != nil || st != core.Committed {
		t.Fatalf("T3 commit = %v, %v", st, err)
	}
}

// TestUserAbortEverywhere: a user abort undoes the transaction at
// every visited site.
func TestUserAbortEverywhere(t *testing.T) {
	c := newPageCluster(t, 3, 6)
	t1 := c.Begin()
	for id := core.ObjectID(1); id <= 3; id++ {
		if _, err := t1.Do(id, write(int(id)*10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Abort(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := t1.Do(1, write(1)); !errors.Is(err, core.ErrTxnAborted) {
		t.Fatalf("Do after abort = %v", err)
	}
	for id := core.ObjectID(1); id <= 3; id++ {
		s, err := c.Site(c.SiteOf(id)).ObjectState(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprint(s); got != "page{0}" {
			t.Fatalf("object %d state after abort = %s", id, got)
		}
	}
	// A pseudo-committed (held) transaction refuses user aborts.
	a, b := c.Begin(), c.Begin()
	if _, err := a.Do(1, write(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Do(1, write(2)); err != nil {
		t.Fatal(err)
	}
	if st, _ := b.Commit(); st != core.PseudoCommitted {
		t.Fatal("setup")
	}
	if err := b.Abort(); err == nil {
		t.Fatal("abort of held pseudo-committed transaction accepted")
	}
	if st, err := a.Commit(); err != nil || st != core.Committed {
		t.Fatalf("a commit = %v %v", st, err)
	}
	<-b.Done()
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
}

// observerLog is a race-safe Observer that counts events.
type observerLog struct {
	held, released, aborted atomic.Int64
}

func (o *observerLog) Held(core.TxnID, int)       { o.held.Add(1) }
func (o *observerLog) Released(t core.TxnID)      { o.released.Add(1) }
func (o *observerLog) Aborted(core.TxnID, string) { o.aborted.Add(1) }

// TestObserverEvents: held/released/aborted fire for the example
// scenario.
func TestObserverEvents(t *testing.T) {
	obs := &observerLog{}
	c, err := New(3, core.Options{}, nil, obs)
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= 6; id++ {
		if err := c.Register(id, adt.Page{}, compat.PageTable()); err != nil {
			t.Fatal(err)
		}
	}
	t1, t2 := c.Begin(), c.Begin()
	t1.Do(1, write(1))
	t2.Do(1, write(2))
	t2.Commit() // held
	t1.Commit() // releases t1 and cascades t2
	<-t2.Done()
	if err := t2.Err(); err != nil {
		t.Fatal(err)
	}
	a, b := c.Begin(), c.Begin()
	a.Do(4, write(1))
	b.Do(5, write(2))
	b.Do(4, write(3))
	if _, err := a.Do(5, write(4)); !errors.Is(err, core.ErrTxnAborted) {
		t.Fatal("cycle not caught")
	}
	b.Commit()
	if h, r, ab := obs.held.Load(), obs.released.Load(), obs.aborted.Load(); h != 1 || r < 3 || ab != 1 {
		t.Fatalf("observer counts held=%d released=%d aborted=%d", h, r, ab)
	}
}

// TestClusterStressConsistency hammers a 3-site cluster with
// concurrent stack pushers and checks global conservation: every
// value pushed by a transaction that reported commit (pseudo or real)
// is in a committed stack at the end, and nothing else is. Run under
// -race this is also the cluster's data-race test.
func TestClusterStressConsistency(t *testing.T) {
	const (
		sites   = 3
		objects = 12
		workers = 8
		txns    = 60
	)
	c, err := New(sites, core.Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := core.ObjectID(1); id <= objects; id++ {
		if err := c.Register(id, adt.Stack{}, compat.StackTable()); err != nil {
			t.Fatal(err)
		}
	}
	var pushed [objects + 1]atomic.Int64
	var aborts atomic.Int64
	var wg sync.WaitGroup
	var handles sync.Map // *Txn -> struct{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				tx := c.Begin()
				// 1..3 pushes on pseudo-random objects; the mix of
				// same-site and cross-site chains exercises the
				// mirror, holds and cascaded releases.
				n := 1 + (w+i)%3
				var objs []core.ObjectID
				ok := true
				for k := 0; k < n; k++ {
					obj := core.ObjectID(1 + (w*31+i*17+k*7)%objects)
					if _, err := tx.Do(obj, push(w*1000+i)); err != nil {
						if !errors.Is(err, core.ErrTxnAborted) {
							t.Error(err)
						}
						aborts.Add(1)
						ok = false
						break
					}
					objs = append(objs, obj)
				}
				if !ok {
					continue
				}
				if _, err := tx.Commit(); err != nil {
					t.Error(err)
					continue
				}
				// Commit (pseudo or real) is a promise: count it.
				for _, obj := range objs {
					pushed[obj].Add(1)
				}
				handles.Store(tx, struct{}{})
			}
		}(w)
	}
	wg.Wait()
	// Every promised commit must land.
	handles.Range(func(k, _ any) bool {
		h := k.(core.Txn)
		<-h.Done()
		if err := h.Err(); err != nil {
			t.Error(err)
		}
		return true
	})
	total := int64(0)
	for id := core.ObjectID(1); id <= objects; id++ {
		s, err := c.Site(c.SiteOf(id)).CommittedState(id)
		if err != nil {
			t.Fatal(err)
		}
		depth := int64(s.(*adt.StackState).Len())
		if got := pushed[id].Load(); got != depth {
			t.Errorf("object %d: committed depth %d, promised pushes %d", id, depth, got)
		}
		total += depth
	}
	if total == 0 {
		t.Fatal("stress test committed nothing")
	}
	t.Logf("stress: %d committed pushes, %d aborted attempts", total, aborts.Load())
}

// TestRunLoad drives the workload-plumbed load runner over a sharded
// read/write mix with cross-site traffic.
func TestRunLoad(t *testing.T) {
	c, err := New(4, core.Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLoad(c, LoadConfig{
		Workload: workload.Sharded{
			Inner: workload.ReadWrite{DBSize: 400, WriteProb: 0.3},
			Sites: 4, CrossProb: 0.25,
		},
		Workers:       8,
		TxnsPerWorker: 40,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 8*40 {
		t.Fatalf("commits = %d, want %d", res.Commits, 8*40)
	}
	if res.Ops == 0 || res.Shards != 4 {
		t.Fatalf("bad result %+v", res)
	}
	// Conservation at the scheduler layer: every site's commits sum to
	// at least the logical commits (restarted attempts add aborts, not
	// commits).
	stats := c.Stats()
	if stats.Commits == 0 || stats.Executes < res.Ops {
		t.Fatalf("cluster stats inconsistent with load result: %+v vs %+v", stats, res)
	}
	if _, err := RunLoad(c, LoadConfig{}); err == nil {
		t.Fatal("RunLoad without workload accepted")
	}
}

// TestRunLoadOverDB drives the exact same harness against the
// single-scheduler core.DB: one Store code path, either backend.
func TestRunLoadOverDB(t *testing.T) {
	db := core.NewDB(core.Options{})
	res, err := RunLoad(db, LoadConfig{
		Workload:      workload.ReadWrite{DBSize: 400, WriteProb: 0.3},
		Workers:       8,
		TxnsPerWorker: 40,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 8*40 {
		t.Fatalf("commits = %d, want %d", res.Commits, 8*40)
	}
	if res.Shards != 1 {
		t.Fatalf("shards = %d, want 1 for a DB", res.Shards)
	}
	stats := db.Stats()
	if stats.Commits == 0 || stats.Executes < res.Ops {
		t.Fatalf("db stats inconsistent with load result: %+v vs %+v", stats, res)
	}
}
