//go:build !race

package dist

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
)

// Coordinator hot-path allocation pins, matching the site-level pins
// from internal/core and internal/depgraph: the budgets are ceilings
// measured on the current implementation, so an accidental
// map-per-commit or slice-per-conversation regression fails loudly.
// (Race builds skip — instrumentation allocates.)

// TestEdgeFreeCommitAllocs pins the sharded fast path: a single-site
// Begin/Do/Commit round trip with no dependency edges. The budget
// covers the transaction handle, its done channel, the visited-sites
// slice and the request's argument boxing — and nothing per-commit in
// the coordinator, whose only involvement is one registry-shard
// insert and delete.
func TestEdgeFreeCommitAllocs(t *testing.T) {
	c, err := New(2, core.Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(1, adt.Page{}, compat.PageTable()); err != nil {
		t.Fatal(err)
	}
	op := adt.Op{Name: adt.PageWrite, Arg: 7, HasArg: true}
	round := func() {
		tx := c.Begin()
		if _, err := tx.Do(1, op); err != nil {
			t.Fatal(err)
		}
		if st, err := tx.Commit(); err != nil || st != core.Committed {
			t.Fatalf("commit = %v %v", st, err)
		}
	}
	round()
	const budget = 4.0
	if avg := testing.AllocsPerRun(200, round); avg > budget {
		t.Fatalf("edge-free round trip allocates %.2f times, budget %.0f", avg, budget)
	}
}

// TestConversationCommitAllocs pins the coordinated path: a writer
// commits over a one-edge commit dependency, is held, and is released
// when the transaction it depends on commits. The budget covers both
// handles, the hold exports, the pipeline request and the release
// cascade; the mirror itself is pinned to zero in internal/depgraph.
func TestConversationCommitAllocs(t *testing.T) {
	c, err := New(2, core.Options{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(1, adt.Stack{}, compat.StackTable()); err != nil {
		t.Fatal(err)
	}
	push1 := adt.Op{Name: adt.StackPush, Arg: 1, HasArg: true}
	push2 := adt.Op{Name: adt.StackPush, Arg: 2, HasArg: true}
	round := func() {
		t1, t2 := c.Begin(), c.Begin()
		if _, err := t1.Do(1, push1); err != nil {
			t.Fatal(err)
		}
		// Distinct pushes do not commute but are recoverable: T2
		// executes at once with a commit dependency on T1.
		if _, err := t2.Do(1, push2); err != nil {
			t.Fatal(err)
		}
		if st, err := t2.Commit(); err != nil || st != core.PseudoCommitted {
			t.Fatalf("T2 commit = %v %v", st, err)
		}
		if st, err := t1.Commit(); err != nil || st != core.Committed {
			t.Fatalf("T1 commit = %v %v", st, err)
		}
		<-t2.Done()
		if err := t2.Err(); err != nil {
			t.Fatal(err)
		}
	}
	round()
	const budget = 16.0
	if avg := testing.AllocsPerRun(200, round); avg > budget {
		t.Fatalf("one-edge hold/release conversation allocates %.2f times, budget %.0f", avg, budget)
	}
}
