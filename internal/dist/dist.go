// Package dist implements the paper's §6 extension to distributed
// objects: the database is partitioned across sites, each site runs an
// independent semantics-based scheduler (any core.Participant), and a
// coordinator mirrors the commit-dependency and wait-for edges every
// site reports into a union graph (depgraph.Mirror). Cycle detection
// over the union catches cross-site deadlocks and commit-dependency
// cycles that no single site can see.
//
// Commit is the paper's commit conversation: the coordinator
// pseudo-commits-and-holds the transaction at every participant it
// visited (core.Participant.CommitHoldInto), then releases the real
// commit everywhere once the transaction's global dependency set — its
// out-degree in the mirrored union graph — drains to zero. Until then
// the transaction is complete from the caller's perspective
// (PseudoCommitted) and its operations remain visible to, and gate,
// later transactions at each site.
//
// The same machinery doubles as a shared-memory sharding layer: New(n,
// ...) with in-process sites gives n independently locked schedulers,
// so transactions over objects at different sites proceed in parallel
// instead of serialising on one scheduler mutex. Independent
// transactions never touch the coordinator (no dependency edges, no
// mirror traffic), which is what makes the sharded path scale.
//
// Cluster implements core.Store and its transactions core.Txn, so
// client code written against the Store interface runs unchanged on a
// single-scheduler DB or on a cluster; each site routes its scheduler
// effects to parked goroutines through the same delivery layer
// (internal/delivery) the local front end uses.
package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adt"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/delivery"
	"repro/internal/depgraph"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// SiteBackend is what a cluster needs from a site beyond the
// Participant protocol: registration-time setup and the inspection
// surface tests and tools use. Both the plain *core.Scheduler (a site
// assumed immortal) and *fault.Crashable (a crash-stop site) implement
// it.
type SiteBackend interface {
	core.Participant
	Register(id core.ObjectID, typ adt.Type, class compat.Classifier) error
	SetFactory(f func(core.ObjectID) (adt.Type, compat.Classifier))
	StatsSnapshot() core.Stats
	ObjectState(id core.ObjectID) (adt.State, error)
	CommittedState(id core.ObjectID) (adt.State, error)
	TxnState(id core.TxnID) string
	OutDegree(id core.TxnID) int
	OutEdgesOf(id core.TxnID) []depgraph.Edge
}

var (
	_ SiteBackend = (*core.Scheduler)(nil)
	_ SiteBackend = (*fault.Crashable)(nil)
)

// CrashRestarter is the optional crash-stop surface of a SiteBackend:
// fault.Crashable implements it with a simulated disk, and a network
// backend (wire.RemoteSite) implements it as connection loss plus
// reconnect-time reconciliation. A fault-tolerant cluster requires its
// backends to provide it; Crash/Restart drive it under the site mutex.
type CrashRestarter interface {
	// Crash fails the site: volatile state is gone, subsequent calls
	// answer fault.ErrSiteDown until Restart.
	Crash() error
	// Restart brings the site back and resolves its in-doubt prepared
	// records against the decision log: logged commits are redone
	// (reported in Redone — the cluster acks their release), the rest
	// presumed aborted.
	Restart() (fault.RecoveryReport, error)
	// Down reports whether the site is currently failed.
	Down() bool
}

var _ CrashRestarter = (*fault.Crashable)(nil)

// SiteID identifies one participant site, 0..NumSites-1.
type SiteID int

// Router maps an object to the site that owns it. Routers must be
// deterministic and total over the object-id space.
type Router func(core.ObjectID) SiteID

// RouteByModulo partitions objects across n sites by id modulo n — the
// uniform partitioning the paper's simulation model assumes.
func RouteByModulo(n int) Router {
	return func(id core.ObjectID) SiteID { return SiteID(uint64(id) % uint64(n)) }
}

// Observer receives coordinator-level events. Implementations must be
// safe for concurrent use; callbacks run without coordinator locks
// held. A nil Observer disables observation.
type Observer interface {
	// Held reports a commit conversation that left the transaction
	// pseudo-committed-and-held with globalDeps outstanding
	// cross-site dependencies.
	Held(t core.TxnID, globalDeps int)
	// Released reports that the transaction's global dependency set
	// drained and the real commit landed at every participant.
	Released(t core.TxnID)
	// Aborted reports a coordinator-initiated or propagated abort.
	Aborted(t core.TxnID, reason string)
}

// Errors.
var (
	// ErrBadSites is returned by New for a non-positive site count.
	ErrBadSites = errors.New("dist: cluster needs at least one site")
	// ErrNotFaultTolerant is returned by Crash/Restart on a cluster
	// built without Config.FaultTolerant.
	ErrNotFaultTolerant = errors.New("dist: cluster is not fault-tolerant")
	// ErrTxnDone is returned for operations on a transaction that has
	// already entered commit. It aliases core.ErrTxnDone, so one
	// errors.Is target covers both back ends.
	ErrTxnDone = core.ErrTxnDone
)

// site is one participant plus the delivery plumbing for its blocked
// requests. Each site has its own mutex: operations against different
// sites never contend, which is the whole point of sharding. The hub —
// the shared Effects→parked-goroutine routing layer — replaces the
// per-front-end waiter maps both this package and core.DB used to
// carry; a transaction blocks at no more than one site at a time (Do is
// synchronous per handle).
type site struct {
	id  SiteID
	mu  sync.Mutex
	p   SiteBackend
	cr  CrashRestarter // non-nil on a fault-tolerant cluster (p's crash surface)
	hub *delivery.Hub
	// txns registers every live transaction that has begun at this
	// site, guarded by mu. The crash handler uses it to find the
	// transactions a site failure dooms; entries leave when the
	// transaction is forgotten at the site.
	txns map[core.TxnID]*Txn
	// edgeBuf is the reusable OutEdgesAppend scratch for this site's
	// mirror exports. Guarded by mu, like every export-and-observe
	// pair.
	edgeBuf []depgraph.Edge
}

// forget drops the transaction's bookkeeping at the site: the
// participant's record and the site registry entry. Caller holds s.mu.
func (s *site) forget(id core.TxnID) {
	s.p.Forget(id)
	delete(s.txns, id)
}

// edges exports id's current out-edges into the site's reusable
// buffer. Caller holds s.mu; the result is valid until the next edges
// call on this site, which every consumer (observe, refreshParked, the
// commit-hold loop) satisfies by finishing with the slice before
// releasing the mutex.
func (s *site) edges(id core.TxnID) []depgraph.Edge {
	s.edgeBuf = s.p.OutEdgesAppend(id, s.edgeBuf)
	return s.edgeBuf
}

// Cluster is a set of participant sites under one commit coordinator.
// It is safe for concurrent use; each transaction handle must be
// driven by one goroutine at a time. Cluster implements core.Store.
type Cluster struct {
	route Router
	obs   Observer
	hook  StepHook
	sites []*site

	// faulty marks a fault-tolerant cluster (crash-stop sites wrapped
	// in fault.Crashable, commit decisions forced to flog before any
	// release). flog is nil on a plain cluster.
	faulty bool
	flog   fault.Log

	nextID atomic.Uint64

	// closed gates Begin and Register; atomic so neither takes a lock.
	closed atomic.Bool

	// The coordinator state is split into independently locked domains
	// so the paths that need one never serialise on the others:
	//
	//   reg     — the sharded live-transaction registry (per-shard
	//             locks). Begin and the edge-free finalisation fast
	//             path touch only this.
	//   mu      — the union-graph domain: the mirror and its batching
	//             counter. Taken only by transactions that actually
	//             have dependency edges (and by crash/restart).
	//   pipe    — the conversation pipeline combining concurrent
	//             decision rounds into decideWave calls.
	//   logMu   — the decision-log ack domain (relAcks).
	//   closeMu — the draining-close domain (drain).
	//
	// Lock order: site.mu -> mu -> {registry shard, logMu}, and
	// closeMu, eagerMu alone. pipe.mu is never held across another
	// lock.
	reg registry

	mu     sync.Mutex
	mirror *depgraph.Mirror
	// holdBatches counts commit conversations that mirrored their hold
	// exports in one coordinator critical section (the batching the
	// counting-observer test pins, together with mirror.Observes).
	holdBatches uint64
	// policy, when non-nil, is the bounded-hold release policy (a Fresh
	// clone of Config.Policy). Consulted in decideWave, under mu.
	policy HoldPolicy
	// heldCount tracks the live held set and pstats the policy's
	// decision counters; both under mu (every held-set transition — the
	// decideWave hold branch, cascade's ready selection, Crash's revoke
	// CAS — already runs there).
	heldCount int
	pstats    PolicyStats
	// eagerMu guards eagerQueue/eagerBusy, the hand-off that keeps at
	// most one eager-subtree cascade running at a time (see
	// cascadeEager). Held only around the queue state, never across
	// another lock or a release.
	eagerMu    sync.Mutex
	eagerQueue []core.TxnID
	eagerBusy  bool

	pipe pipeline
	// waveSeq numbers decide waves; sampled decide spans carry the wave
	// id so a trace shows which conversations shared a combining round.
	waveSeq atomic.Uint64

	// logMu guards relAcks: per logged commit decision, the
	// participants whose release (or restart-time redo) has not yet
	// been confirmed. Opened at the commit point; once the set drains
	// the decision is truncated from the log — presumed abort never
	// needs it again. Nil map on a plain cluster.
	logMu   sync.Mutex
	relAcks map[core.TxnID]map[SiteID]struct{}
	// clientGate lists transactions whose commit decision must outlive
	// the participant acks until an external client confirms it learned
	// the outcome (GateDecision/AckDecision). A network front end uses
	// this for exactly-once commits: if the client's connection dies
	// before the commit reply, the decision is still in the log when the
	// client reconnects and asks. Guarded by logMu; nil until first use.
	clientGate map[core.TxnID]struct{}
	// redoClaims arbitrates the race between restart reconciliation
	// redoing a logged direct commit at a participant and the live
	// commit conversation withdrawing that decision after its own push
	// failed. Reconciliation claims the decision (ClaimRedo) under
	// logMu before redoing; undoDirectCommit finds the claim and keeps
	// the decision — the commit landed via the redo, so the
	// conversation reports Committed instead of retrying (a retry
	// would push twice). Guarded by logMu; nil until first use.
	redoClaims map[core.TxnID]struct{}

	// closeMu guards drain: when non-nil, closed once the registry
	// empties after Close — the CloseCtx waiters' signal.
	closeMu sync.Mutex
	drain   chan struct{}

	// tel is the coordinator's always-on instrument block (counters and
	// histograms are lock-free; phase timings are recorded only on the
	// conversation path, so the edge-free fast path stays untimed).
	// tracer is the opt-in conversation event ring (nil unless
	// Config.Trace > 0; every Record call is nil-safe).
	tel    telemetry.DistMetrics
	tracer *telemetry.Tracer

	// Span plane (nil unless Config.Spans > 0; every Record is
	// nil-safe): sampler mints deterministic per-transaction trace
	// contexts at Begin, spans holds the process's span ring plus the
	// tail-latency exemplar store, and flight (shared with the hosting
	// process) is the crash black box.
	spans      *telemetry.SpanBuffer
	sampler    *telemetry.Sampler
	flight     *telemetry.FlightRecorder
	sampleSeed int64
	sampleRate float64
}

// Cluster is the distributed core.Store.
var (
	_ core.Store = (*Cluster)(nil)
	_ core.Txn   = (*Txn)(nil)
)

// Config parameterises NewWithConfig, the constructor that covers the
// fault-tolerant variants New cannot express.
type Config struct {
	// Sites is the number of participant sites (required, positive).
	Sites int
	// Opts configures every site's scheduler.
	Opts core.Options
	// Route decides object placement (nil means RouteByModulo(Sites)).
	Route Router
	// Obs optionally observes coordinator events.
	Obs Observer
	// FaultTolerant wraps every site in a fault.Crashable: sites can
	// Crash and Restart, the coordinator forces commit decisions to the
	// decision log before releasing, and transactions touching a
	// crashed site abort with ReasonSiteFailed instead of wedging.
	FaultTolerant bool
	// Log is the coordinator's decision log; nil means a fresh
	// fault.NewMemLog(). Ignored unless FaultTolerant.
	Log fault.Log
	// StepHook, when non-nil, is fired at every named protocol-step
	// boundary of commit conversations (see StepHook); nil is the
	// zero-overhead passthrough.
	StepHook StepHook
	// Policy, when non-nil, bounds the hold convoy (see HoldPolicy).
	// The cluster uses a Fresh clone, so one value can configure many
	// clusters. Nil preserves the paper's unbounded hold behaviour.
	Policy HoldPolicy
	// Backends, when non-nil, supplies the participant sites instead of
	// the cluster constructing in-process schedulers (len must equal
	// Sites; Opts is then unused). This is how a coordinator runs over
	// remote participants: wire.RemoteSite implements SiteBackend over a
	// TCP connection. With FaultTolerant, each backend must also
	// implement CrashRestarter.
	Backends []SiteBackend
	// Trace, when positive, enables the commit-conversation event
	// tracer with a ring of that many events (drained via Tracer();
	// /tracez on a daemon). Zero disables tracing entirely — the
	// default, and the zero-overhead path.
	Trace int
	// Spans, when positive, enables causal tracing: every transaction
	// is minted a deterministic trace context at Begin, and sampled
	// conversations record span records (begin/hold/decide/release/...)
	// into a per-process buffer of this capacity, exportable as a
	// Chrome trace and stitched cluster-wide by sccctl. Zero disables
	// the span plane entirely — the zero-overhead default.
	Spans int
	// SpanExemplars bounds the tail-based exemplar store: completed
	// traces whose end-to-end latency lands in the top latency buckets
	// are pinned (copied out of the ring) instead of overwritten.
	// Zero picks a small default. Ignored unless Spans > 0.
	SpanExemplars int
	// SampleSeed seeds the deterministic trace sampler: the same seed
	// and transaction id always produce the same trace id and sampling
	// decision, so seeded runs trace reproducibly and contexts can be
	// re-derived after a coordinator restart.
	SampleSeed int64
	// SampleRate is the fraction of transactions sampled, in [0,1].
	// Zero defaults to 1 (sample everything) when Spans > 0.
	SampleRate float64
	// Flight, when non-nil, is the process's flight recorder: the
	// cluster records conversation events into it and attaches the
	// span buffer and tracer, so a dump (SIGQUIT, panic, invariant
	// violation) carries the full black box.
	Flight *telemetry.FlightRecorder
}

// New builds a cluster of n in-process sites, each running its own
// scheduler with the given options. route decides object placement
// (nil means RouteByModulo(n)); obs optionally observes coordinator
// events. Sites are assumed immortal; NewWithConfig builds the
// crash-stop fault-tolerant variant.
func New(n int, opts core.Options, route Router, obs Observer) (*Cluster, error) {
	return NewWithConfig(Config{Sites: n, Opts: opts, Route: route, Obs: obs})
}

// NewWithConfig builds a cluster from a Config; see New for the plain
// case and Config.FaultTolerant for the crash-stop one.
func NewWithConfig(cfg Config) (*Cluster, error) {
	if cfg.Sites <= 0 {
		return nil, ErrBadSites
	}
	route := cfg.Route
	if route == nil {
		route = RouteByModulo(cfg.Sites)
	}
	c := &Cluster{
		route:  route,
		obs:    cfg.Obs,
		hook:   cfg.StepHook,
		faulty: cfg.FaultTolerant,
		mirror: depgraph.NewMirror(),
		tracer: telemetry.NewTracer(cfg.Trace),
	}
	c.mirror.SetMetrics(&c.tel.Mirror)
	if cfg.Spans > 0 {
		rate := cfg.SampleRate
		if rate <= 0 {
			rate = 1
		}
		c.spans = telemetry.NewSpanBuffer(cfg.Spans, cfg.SpanExemplars)
		c.sampler = telemetry.NewSampler(cfg.SampleSeed, rate)
		c.sampleSeed, c.sampleRate = cfg.SampleSeed, rate
	}
	c.flight = cfg.Flight
	if c.flight != nil {
		c.flight.AttachSpans(c.spans)
		c.flight.AttachTracer(c.tracer)
	}
	if cfg.Policy != nil {
		c.policy = cfg.Policy.Fresh()
	}
	c.reg.init()
	if cfg.FaultTolerant {
		c.flog = cfg.Log
		if c.flog == nil {
			c.flog = fault.NewMemLog()
		}
		c.relAcks = make(map[core.TxnID]map[SiteID]struct{})
	}
	if cfg.Backends != nil && len(cfg.Backends) != cfg.Sites {
		return nil, fmt.Errorf("dist: %d backends for %d sites", len(cfg.Backends), cfg.Sites)
	}
	for i := 0; i < cfg.Sites; i++ {
		s := &site{
			id:   SiteID(i),
			hub:  delivery.NewHub(),
			txns: make(map[core.TxnID]*Txn),
		}
		switch {
		case cfg.Backends != nil:
			s.p = cfg.Backends[i]
			if cfg.FaultTolerant {
				cr, ok := s.p.(CrashRestarter)
				if !ok {
					return nil, fmt.Errorf("dist: fault-tolerant backend %d (%T) must implement CrashRestarter", i, s.p)
				}
				s.cr = cr
			}
		case cfg.FaultTolerant:
			cr, err := fault.New(cfg.Opts, c.flog)
			if err != nil {
				return nil, err
			}
			s.cr, s.p = cr, cr
		default:
			s.p = core.NewScheduler(cfg.Opts)
		}
		c.sites = append(c.sites, s)
	}
	if c.spans != nil {
		// Remote backends propagate the per-transaction context in their
		// frame headers so site daemons stitch into the same trace.
		for _, s := range c.sites {
			if tl, ok := s.p.(interface {
				SetTraceLookup(func(core.TxnID) telemetry.TraceContext)
			}); ok {
				tl.SetTraceLookup(c.TraceContextOf)
			}
		}
	}
	return c, nil
}

// TraceContextOf resolves a transaction's trace context: the live
// registry entry when the transaction is in flight, else re-derived
// from the deterministic sampler (redo of an already-unregistered
// transaction after a restart). Zero when the span plane is off.
func (c *Cluster) TraceContextOf(id core.TxnID) telemetry.TraceContext {
	if c.sampler == nil {
		return telemetry.TraceContext{}
	}
	if t := c.reg.get(id); t != nil {
		return t.Trace()
	}
	return c.sampler.Context(uint64(id))
}

// Spans returns the cluster's span buffer (nil unless Config.Spans > 0).
func (c *Cluster) Spans() *telemetry.SpanBuffer { return c.spans }

// Flight returns the attached flight recorder (nil unless configured).
func (c *Cluster) Flight() *telemetry.FlightRecorder { return c.flight }

// SampleConfig reports the span plane's sampler parameters; rate is 0
// when the span plane is off.
func (c *Cluster) SampleConfig() (seed int64, rate float64) { return c.sampleSeed, c.sampleRate }

// trace records a conversation event into both the event tracer and
// the flight recorder (each nil-safe), so the black box replays the
// same timeline /tracez shows.
func (c *Cluster) trace(kind telemetry.EventKind, txn uint64, site int32, arg int64) {
	c.tracer.Record(kind, txn, site, arg)
	c.flight.Record(kind, txn, site, arg)
}

// completeTrace finishes a sampled transaction's trace: end-to-end
// latency measured from Begin drives the tail-based exemplar store, so
// the slowest conversations survive ring wraparound.
func (c *Cluster) completeTrace(t *Txn) {
	if c.spans == nil {
		return
	}
	tc := t.Trace()
	if !tc.Sampled() {
		return
	}
	c.spans.Complete(tc, uint64(t.id), int64(time.Since(t.begin)))
}

// DecisionLog returns the coordinator's decision log (nil on a plain
// cluster).
func (c *Cluster) DecisionLog() fault.Log { return c.flog }

// NumSites returns the number of participant sites.
func (c *Cluster) NumSites() int { return len(c.sites) }

// Site exposes one site's backend for registration-time setup and
// state inspection (object states are site-local; route objects with
// the cluster's router).
func (c *Cluster) Site(id SiteID) SiteBackend { return c.sites[id].p }

// SiteOf returns the site that owns the object.
func (c *Cluster) SiteOf(id core.ObjectID) SiteID { return c.route(id) }

// Register creates the object eagerly at its home site. It fails with
// ErrClosed on a closed cluster.
func (c *Cluster) Register(id core.ObjectID, typ adt.Type, class compat.Classifier) error {
	if c.closed.Load() {
		return core.ErrClosed
	}
	return c.sites[c.route(id)].p.Register(id, typ, class)
}

// SetFactory installs a lazy object constructor at every site. Routing
// guarantees an object only ever materialises at its home site.
func (c *Cluster) SetFactory(f func(core.ObjectID) (adt.Type, compat.Classifier)) {
	for _, s := range c.sites {
		s.p.SetFactory(f)
	}
}

// Begin starts a distributed transaction. The coordinator assigns the
// id; sites learn about the transaction lazily on first touch. On a
// closed cluster it returns a transaction failing with ErrClosed.
//
// Begin touches only the transaction's registry shard — no global
// coordinator lock — so concurrent Begins on independent transactions
// scale with cores.
func (c *Cluster) Begin() core.Txn {
	if c.closed.Load() {
		return core.ClosedTxn(core.ErrClosed)
	}
	t := &Txn{
		c:    c,
		id:   core.TxnID(c.nextID.Add(1)),
		done: make(chan struct{}),
	}
	t.state.Store(txActive)
	if c.sampler != nil {
		tc := c.sampler.Context(uint64(t.id))
		t.tc.Store(&tc)
		t.begin = time.Now()
		c.spans.Record(tc, telemetry.SpanBegin, uint64(t.id), -1, 0, 0, 0)
	}
	c.reg.add(t)
	if c.closed.Load() {
		// Close raced the registration: withdraw so the draining close
		// does not wait on a transaction that never ran.
		c.reg.unregister(t.id)
		c.maybeDrained()
		return core.ClosedTxn(core.ErrClosed)
	}
	return t
}

// Run executes fn inside a transaction with automatic retry of
// retryable aborts; see core.RunStore.
func (c *Cluster) Run(ctx context.Context, fn func(core.Txn) error) error {
	return core.RunStore(ctx, c, fn)
}

// Close marks the cluster closed: Begin afterwards returns a
// transaction failing with ErrClosed, and Register fails. Transactions
// already begun — including held pseudo-commits awaiting release — are
// unaffected and run to completion. Idempotent.
func (c *Cluster) Close() error {
	c.closed.Store(true)
	return nil
}

// CloseCtx is the draining close: it gates the cluster like Close,
// then waits until every transaction in flight at close time —
// including held pseudo-commits awaiting release — has reached its
// terminal state. A cancelled ctx stops the wait and returns ctx.Err()
// with the gate left in place (force-gate); the in-flight transactions
// still run to completion on their own.
func (c *Cluster) CloseCtx(ctx context.Context) error {
	c.closed.Store(true)
	c.closeMu.Lock()
	if c.reg.count() == 0 {
		c.closeMu.Unlock()
		return nil
	}
	if c.drain == nil {
		c.drain = make(chan struct{})
	}
	drained := c.drain
	c.closeMu.Unlock()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// maybeDrained closes the drain channel if a CloseCtx is waiting and
// the registry has emptied. Callers invoke it after unregistering a
// transaction, outside every other lock; the re-check under closeMu
// pairs with CloseCtx's count-then-wait so the signal cannot be lost.
func (c *Cluster) maybeDrained() {
	if !c.closed.Load() || c.reg.count() != 0 {
		return
	}
	c.closeMu.Lock()
	if c.drain != nil && c.reg.count() == 0 {
		close(c.drain)
		c.drain = nil
	}
	c.closeMu.Unlock()
}

// Stats sums every site's scheduler counters. Each site's snapshot is
// internally consistent (taken under that scheduler's lock), but the
// sum is fuzzy across sites: concurrent transactions may land between
// snapshots. Counters are per-site event counts, so a transaction
// touching k sites contributes k to Commits (its real commit lands at
// each visited participant), k to PseudoCommits when held, and its
// aborts count once per site that undoes it; Executes/Blocks/Grants
// and the edge counters are naturally per-site. Use SiteStats for one
// site's exact view.
func (c *Cluster) Stats() core.Stats {
	var sum core.Stats
	for _, s := range c.sites {
		sum.Add(s.p.StatsSnapshot())
	}
	return sum
}

// SiteStats returns one site's counters, snapshot under that
// scheduler's lock (exact, unlike the cluster-wide sum).
func (c *Cluster) SiteStats(id SiteID) core.Stats {
	return c.sites[id].p.StatsSnapshot()
}

// ackRelease confirms that one participant has made the logged commit
// durable in its base state (released it, or redone it during restart
// recovery). When the last participant acks, the decision leaves the
// log: every prepared record for the transaction is resolved, so
// presumed abort can never need it again. Truncation is best-effort —
// a failed prune costs log space, not correctness. Acks live in their
// own lock domain (logMu): release cascades never serialise on the
// union graph for bookkeeping.
func (c *Cluster) ackRelease(id core.TxnID, sid SiteID) {
	if c.flog == nil {
		return
	}
	c.logMu.Lock()
	pending := c.relAcks[id]
	if pending != nil {
		delete(pending, sid)
	}
	done := pending != nil && len(pending) == 0
	var violation uint64
	if done {
		delete(c.relAcks, id)
		delete(c.redoClaims, id)
		c.tel.DecisionsResolved.Inc()
		c.tel.LiveDecisions.Set(int64(len(c.relAcks)))
		// Decision conservation: every resolved decision was first
		// logged by this coordinator or adopted from the log. More
		// resolutions than that budget means release accounting
		// double-counted — dump the black box while the evidence
		// (recent events, spans) is still in the rings.
		if r, b := c.tel.DecisionsResolved.Load(), c.tel.DecisionsLogged.Load()+c.tel.DecisionsAdopted.Load(); r > b {
			violation = r - b
		}
	}
	c.logMu.Unlock()
	if violation > 0 && c.flight != nil {
		c.flight.Record(telemetry.EvCrash, uint64(id), int32(sid), int64(violation))
		_, _ = c.flight.DumpOnce("conservation-violation")
	}
	if done {
		_ = c.flog.Truncate(id)
	}
}

// clientAck is the virtual release-ack member standing for "the client
// has learned this commit outcome" (see Cluster.GateDecision).
const clientAck SiteID = -2

// GateDecision marks the transaction's eventual commit decision as
// client-acknowledged: if the commit point is reached, the decision
// stays in the log — even after every participant released — until
// AckDecision confirms the client learned the outcome. Call before
// starting the commit conversation. On a plain (non-fault-tolerant)
// cluster it is a no-op.
func (c *Cluster) GateDecision(id core.TxnID) {
	if c.flog == nil {
		return
	}
	c.logMu.Lock()
	if c.clientGate == nil {
		c.clientGate = make(map[core.TxnID]struct{})
	}
	c.clientGate[id] = struct{}{}
	c.logMu.Unlock()
}

// AckDecision confirms the gated client learned the transaction's
// outcome, releasing the decision for truncation once every participant
// has acked too. Safe (and a no-op) for transactions that were never
// gated or never reached the commit point.
func (c *Cluster) AckDecision(id core.TxnID) {
	if c.flog == nil {
		return
	}
	c.logMu.Lock()
	delete(c.clientGate, id)
	c.logMu.Unlock()
	c.ackRelease(id, clientAck)
}

// AdoptDecision re-arms release accounting for a commit decision found
// in the log by a restarting coordinator: the decision stays durable
// until every site has confirmed it no longer holds the transaction
// (AckDecisionSite, or a Restart recovery report's redo) and the
// owning client has learned the outcome (AckDecision). Call before the
// adoption-time site restarts, so their redo acks land in the pending
// set instead of a void.
func (c *Cluster) AdoptDecision(id core.TxnID) {
	if c.flog == nil {
		return
	}
	c.logMu.Lock()
	if c.clientGate == nil {
		c.clientGate = make(map[core.TxnID]struct{})
	}
	c.clientGate[id] = struct{}{}
	if c.relAcks[id] == nil {
		pending := make(map[SiteID]struct{}, len(c.sites)+1)
		pending[clientAck] = struct{}{}
		for _, s := range c.sites {
			pending[s.id] = struct{}{}
		}
		c.relAcks[id] = pending
		c.tel.DecisionsAdopted.Inc()
		c.tel.LiveDecisions.Set(int64(len(c.relAcks)))
	}
	c.logMu.Unlock()
}

// AckDecisionSite records that the site holds nothing for the adopted
// decision — either its reconciliation released the hold, or it never
// had one. The adopting coordinator calls it for every adopted id
// after a site restart succeeds; idempotent, and a no-op for decisions
// already truncated.
func (c *Cluster) AckDecisionSite(id core.TxnID, sid SiteID) {
	c.ackRelease(id, sid)
}

// filterLive drops edges to transactions the coordinator has already
// finalised: their mirror nodes are gone, and re-adding a stale edge
// would hold the source's dependency set open forever. Each kept
// target is simultaneously marked as mirrored (registry.markMirror's
// shard critical section), which is what lets its finalisation decide
// — without the union-graph lock — whether mirror cleanup is needed.
// Filters in place (the site's reusable export buffer is ours until
// the site mutex is released, and the mirror copies what it keeps).
// Caller holds c.mu.
func (c *Cluster) filterLive(edges []depgraph.Edge) []depgraph.Edge {
	live := edges[:0]
	for _, e := range edges {
		if c.reg.markMirror(e.To) != nil {
			live = append(live, e)
		}
	}
	return live
}

// observe mirrors t's current out-edges at site sid into the union
// graph and reports whether that closed a global cycle through t.
//
// Mirror writes for a (site, transaction) pair must be serialised
// against the edge export they carry, or a slow writer could clobber
// a fresher observe with stale edges (losing, say, a commit
// dependency — the transaction would then never be released). The
// site mutex is that serialisation: every export-plus-Observe pair
// runs under s.mu, here and in refreshParked, giving the lock order
// site.mu -> Cluster.mu (never the reverse).
func (c *Cluster) observe(t *Txn, sid SiteID) bool {
	s := c.sites[sid]
	s.mu.Lock()
	edges := s.edges(t.id)
	if len(edges) == 0 && !t.anyEdges.Load() {
		s.mu.Unlock()
		return false // fast path: no coordinator involvement
	}
	if len(edges) > 0 {
		t.anyEdges.Store(true)
	}
	c.mu.Lock()
	c.mirror.Observe(int(sid), t.id, c.filterLive(edges))
	cyc := c.mirror.HasCycleFrom(t.id)
	c.mu.Unlock()
	s.mu.Unlock()
	return cyc
}

// unobserve re-mirrors t's remaining out-edges at site sid after a
// withdrawal shed its wait-for edges, so the union graph cannot hold a
// stale wait-for edge that would close a phantom cycle. No cycle check:
// removing edges cannot create one.
func (c *Cluster) unobserve(t *Txn, sid SiteID) {
	s := c.sites[sid]
	s.mu.Lock()
	if t.anyEdges.Load() {
		edges := s.edges(t.id)
		c.mu.Lock()
		if c.reg.get(t.id) != nil {
			c.mirror.Observe(int(sid), t.id, c.filterLive(edges))
		}
		c.mu.Unlock()
	}
	s.mu.Unlock()
}

// refreshParked re-mirrors the out-edges of every transaction still
// parked at the site. A site-level retry (inside some other call's
// settle) can shed a parked transaction's wait-for edges and re-block
// it behind different holders while its owner goroutine sleeps —
// under unfair scheduling even behind holders it had no edge to when
// it parked. The owner cannot re-observe until it wakes, so whoever
// ran the site operation refreshes on its behalf; otherwise a
// cross-site deadlock through a re-blocked edge would be invisible
// to the union graph forever.
//
// Only transactions still parked (present in the site's hub, checked
// under s.mu) are touched: once granted, the owner's own observe is the
// single writer for the pair, and the s.mu serialisation above keeps
// the two from interleaving stale reads with fresh writes.
//
// A re-mirrored edge can itself close a cross-site cycle between
// transactions that are ALL parked — then no owner's observe will
// ever run the check, so refreshParked must: on a cycle through a
// parked transaction it aborts it at this site and wakes its owner
// with the deadlock verdict (the owner propagates the abort to its
// other sites). Aborting can reshuffle the remaining parked queue, so
// the scan restarts until a pass is quiet.
func (c *Cluster) refreshParked(s *site) {
	for {
		s.mu.Lock()
		// A per-call snapshot: the buffer escapes the site lock, so it
		// cannot be site-owned scratch (concurrent refreshers would
		// race); an empty hub — the fast path — allocates nothing.
		ids := s.hub.AppendIDs(make([]core.TxnID, 0, s.hub.Len()))
		s.mu.Unlock()
		aborted := false
		for _, id := range ids {
			s.mu.Lock()
			if !s.hub.Parked(id) {
				s.mu.Unlock()
				continue // granted or aborted meanwhile; its owner observes
			}
			edges := s.edges(id)
			cycle := false
			c.mu.Lock()
			if t := c.reg.get(id); t != nil {
				if len(edges) > 0 {
					t.anyEdges.Store(true)
				}
				c.mirror.Observe(int(s.id), id, c.filterLive(edges))
				cycle = c.mirror.HasCycleFrom(id)
			}
			c.mu.Unlock()
			if cycle {
				// Local abort + wake the owner; it runs the global
				// abort when it receives the message.
				eff := s.hub.Effects()
				if err := s.p.AbortInto(eff, id); err == nil {
					s.hub.Deliver(eff)
				}
				s.hub.Fail(id, core.ReasonDeadlock)
				aborted = true
			}
			s.mu.Unlock()
		}
		if !aborted {
			return
		}
	}
}

// abortEverywhere aborts t at every visited site (skipping skipSite,
// where the local scheduler already finalised it), delivers the
// resulting grants to parked calls, and finalises the transaction at
// the coordinator. reason is recorded on the transaction (Err);
// detail is the human-readable form for the observer.
//
// The abort is failure-tolerant: a down site is skipped (its volatile
// state — the only state an unlogged transaction has there — died with
// it), and a site where the transaction is already held mid-commit is
// revoked instead (the hold's promise is void once the conversation
// cannot complete).
func (c *Cluster) abortEverywhere(t *Txn, skipSite SiteID, reason core.AbortReason, detail string) {
	sids := t.visitedSorted()
	for _, sid := range sids {
		s := c.sites[sid]
		s.mu.Lock()
		s.hub.Withdraw(t.id)
		if sid != skipSite {
			eff := s.hub.Effects()
			if err := s.p.AbortInto(eff, t.id); err == nil {
				s.hub.Deliver(eff)
			} else if !errors.Is(err, fault.ErrSiteDown) {
				// ErrTxnTerminated here usually means a site-local
				// retry abort beat us to it and the local state is
				// already clean — but it is also what a held
				// pseudo-commit answers (a partial commit conversation
				// being unwound after a site failure); those must be
				// revoked, or their operations would gate the site
				// forever. RevokeInto refuses anything not held, so
				// trying it after a refused abort is safe.
				eff = s.hub.Effects()
				if err := s.p.RevokeInto(eff, t.id, reason); err == nil {
					s.hub.Deliver(eff)
				}
			}
		}
		s.forget(t.id)
		s.mu.Unlock()
		c.refreshParked(s)
	}
	t.reason.Store(int32(reason))
	t.state.Store(txAborted)
	c.spans.Record(t.Trace(), telemetry.SpanAbort, uint64(t.id), int32(skipSite), 0, 0, 0)
	c.completeTrace(t)
	close(t.done)
	if c.obs != nil {
		c.obs.Aborted(t.id, detail)
	}
	c.finalizeTxn(t)
}

// releaseAt lands the real commit at every site t visited and
// delivers the unblocked grants. A down site is skipped: the commit
// decision is in the log and the site's prepared record survives the
// crash, so recovery redoes the transaction there (presumed abort's
// counterpart — logged outcomes are re-released); its release ack
// arrives when its restart redoes the commit.
func (c *Cluster) releaseAt(t *Txn) {
	ttc := t.Trace()
	for _, sid := range t.visitedSorted() {
		c.step(DuringReleaseCascade, t.id, sid)
		c.trace(telemetry.EvRelease, uint64(t.id), int32(sid), 0)
		c.spans.Record(ttc, telemetry.SpanRelease, uint64(t.id), int32(sid), 0, 0, 0)
		s := c.sites[sid]
		s.mu.Lock()
		eff := s.hub.Effects()
		err := s.p.ReleaseInto(eff, t.id)
		if err == nil {
			s.hub.Deliver(eff)
		} else if !c.siteFailure(err) {
			// On a fault-tolerant cluster, ErrSiteDown means the site
			// crashed mid-release and ErrUnknownTxn that it crashed and
			// already recovered — either way the logged commit is (or
			// was) redone from the prepared record. Anywhere else a
			// release failure means the coordinator's dependency
			// accounting is wrong — surface loudly.
			s.mu.Unlock()
			panic(fmt.Sprintf("dist: release of T%d at site %d: %v", t.id, sid, err))
		}
		s.forget(t.id)
		s.mu.Unlock()
		if err == nil {
			c.ackRelease(t.id, sid)
		}
		c.refreshParked(s)
	}
}

// finalizeTxn finalises one globally terminated transaction: it leaves
// the registry (its shard only), and — only if it ever grew union-graph
// state — its mirror node is removed with the release cascade run. A
// transaction that never had a dependency edge in either direction
// (the sharded fast path) skips the union-graph domain entirely: after
// Begin it never takes the coordinator mutex at all.
//
// The unregister-then-remove order is load-bearing: unregister reads
// the mirrored mark inside the registry shard's critical section, and
// any concurrent filterLive that saw the transaction alive set that
// mark under the same shard lock while holding c.mu — so either the
// mark is visible here (and cascade's RemoveTxn, serialised after the
// observer by c.mu, cleans the edge) or the observer saw the
// unregister and dropped the edge. No stale edge survives either way.
func (c *Cluster) finalizeTxn(t *Txn) {
	_, mirrored := c.reg.unregister(t.id)
	c.maybeDrained()
	if mirrored {
		c.cascade([]core.TxnID{t.id})
	}
}

// cascade removes globally terminated transactions from the mirror
// and cascades: any held transaction whose global dependency set
// drains is released at its sites, which may in turn drain others.
// Site-level finalisation always precedes mirror removal, so by the
// time a dependant is selected here its local out-degrees are already
// zero and Release cannot fail. Each round's commit decisions are
// forced as one group before any of its releases start. Under an
// eager-subtree policy the whole drained subtree is computed in one
// critical section instead of one round per chain level.
func (c *Cluster) cascade(ids []core.TxnID) {
	if c.policy != nil && c.policy.EagerSubtree() {
		c.cascadeEager(ids)
		return
	}
	for len(ids) > 0 {
		var ready []*Txn
		c.mu.Lock()
		for _, id := range ids {
			for _, d := range c.mirror.RemoveTxn(id) {
				dt := c.reg.get(d)
				if dt != nil && dt.state.Load() == txPseudo && c.mirror.OutDegree(d) == 0 {
					// The commit point: the grouped force below must
					// land before any participant is released, so a
					// crash mid-release can always be redone from the
					// prepared records.
					dt.state.Store(txReleasing)
					c.heldCount--
					ready = append(ready, dt)
				}
			}
		}
		c.logCommitBatch(ready)
		if len(ready) > 0 {
			c.tel.Held.Set(int64(c.heldCount))
			c.tel.ReleaseWidth.Observe(uint64(len(ready)))
		}
		c.mu.Unlock()

		ids = ids[:0]
		for _, dt := range ready {
			c.step(AfterDecisionBeforeRelease, dt.id, noSite)
			c.releaseAt(dt)
			dt.state.Store(txCommitted)
			c.completeTrace(dt)
			close(dt.done)
			if c.obs != nil {
				c.obs.Released(dt.id)
			}
			c.reg.unregister(dt.id)
			ids = append(ids, dt.id)
		}
		c.maybeDrained()
	}
}

// cascadeEager is the eager-subtree variant of cascade: the transitive
// closure of drained held transactions is computed in ONE coordinator
// critical section with ONE grouped decision-log force, by treating
// each newly decided transaction as terminated for the rest of the
// walk. A chain of depth k that the hop-at-a-time cascade would drain
// over k lock rounds and k log forces is decided here in one round.
//
// The ready list comes out in topological order (a dependant is
// selected only after every subtree transaction it depends on was
// removed), and releases run in that order, so each transaction's local
// out-degrees at its sites have drained by the time its own release
// lands — the same invariant the round-based cascade maintains across
// rounds. Edges mirrored onto a ready transaction while its releases
// land are cleaned by the follow-up loop iteration (each released id is
// re-queued), which also drains any dependants those late edges held.
//
// At most one eager cascade runs at a time. Unlike the round-based
// variant — which removes a transaction from the mirror only after its
// release landed, so concurrent cascades compose — the eager variant
// removes at decide time; two interleaved cascades could then release a
// dependant at a shared site ahead of its predecessor's release (the
// local scheduler would still hold the edge and Release would fail).
// A single owner keeps decide order equal to release-landing order per
// site, which is what the simulator's FIFO channels provide by
// construction. Exclusion is a queue hand-off rather than a lock held
// across the releases: a cascade arriving while one runs — from another
// goroutine, or re-entrantly from this one (a step hook crashing a site
// mid-release ends in Crash -> finalizeTxn -> cascade) — appends its
// batch and returns, and the owner's drain loop picks it up.
func (c *Cluster) cascadeEager(ids []core.TxnID) {
	c.eagerMu.Lock()
	c.eagerQueue = append(c.eagerQueue, ids...)
	if c.eagerBusy {
		c.eagerMu.Unlock()
		return
	}
	c.eagerBusy = true
	for len(c.eagerQueue) > 0 {
		batch := c.eagerQueue
		c.eagerQueue = nil
		c.eagerMu.Unlock()
		c.eagerBatch(batch)
		c.eagerMu.Lock()
	}
	c.eagerBusy = false
	c.eagerMu.Unlock()
}

// eagerBatch decides and releases the transitive drained subtree of one
// batch of terminated transactions (see cascadeEager for the exclusion
// protocol that serialises calls).
func (c *Cluster) eagerBatch(ids []core.TxnID) {
	queue := append([]core.TxnID(nil), ids...)
	for len(queue) > 0 {
		var ready []*Txn
		c.mu.Lock()
		for qi := 0; qi < len(queue); qi++ {
			for _, d := range c.mirror.RemoveTxn(queue[qi]) {
				dt := c.reg.get(d)
				if dt != nil && dt.state.Load() == txPseudo && c.mirror.OutDegree(d) == 0 {
					dt.state.Store(txReleasing)
					c.heldCount--
					ready = append(ready, dt)
					queue = append(queue, d)
				}
			}
		}
		c.logCommitBatch(ready)
		if len(ready) > 0 {
			c.pstats.EagerRounds++
			c.pstats.EagerReleased += len(ready)
			c.tel.Held.Set(int64(c.heldCount))
			c.tel.ReleaseWidth.Observe(uint64(len(ready)))
		}
		c.mu.Unlock()

		queue = queue[:0]
		for _, dt := range ready {
			c.step(AfterDecisionBeforeRelease, dt.id, noSite)
			c.releaseAt(dt)
			dt.state.Store(txCommitted)
			c.completeTrace(dt)
			close(dt.done)
			if c.obs != nil {
				c.obs.Released(dt.id)
			}
			c.reg.unregister(dt.id)
			queue = append(queue, dt.id)
		}
		c.maybeDrained()
	}
}

// PolicyStats snapshots the hold policy's decision counters and the
// held set's high-water mark (HeldPeak is maintained policy or not;
// the other counters stay zero without one).
func (c *Cluster) PolicyStats() PolicyStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pstats
}

// PolicyName returns the active hold policy's parseable name, or
// "off" when the cluster holds unboundedly (no policy configured).
func (c *Cluster) PolicyName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.policy == nil {
		return "off"
	}
	return c.policy.Name()
}

// Telemetry exposes the coordinator's live instrument block for
// lock-free reads (/metrics scrapes, sccbench snapshots).
func (c *Cluster) Telemetry() *telemetry.DistMetrics { return &c.tel }

// MirrorEdges reports the dependency mirror's current edge count,
// taken under the coordinator mutex.
func (c *Cluster) MirrorEdges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mirror.EdgeCount()
}

// Tracer returns the conversation event ring, or nil when tracing is
// disabled (Config.Trace == 0).
func (c *Cluster) Tracer() *telemetry.Tracer { return c.tracer }

// ---- Crash-stop fault handling (Config.FaultTolerant clusters) ----

// SiteDown reports whether the site is currently crashed (always false
// on a plain cluster).
func (c *Cluster) SiteDown(id SiteID) bool {
	s := c.sites[id]
	return s.cr != nil && s.cr.Down()
}

// Crash fails the site: its scheduler's volatile state is dropped
// atomically, subsequent calls against it return fault.ErrSiteDown,
// every request parked at it is woken with a ReasonSiteFailed verdict,
// the site's contribution to the mirrored union graph is purged, and
// every in-flight transaction that touched the site is doomed — active
// and blocked ones abort with ErrSiteFailed when their owner next
// drives them (or immediately, if parked here), held pseudo-commits
// whose outcome was never logged are revoked at the surviving sites
// (presumed abort). Held transactions whose commit is already logged
// are untouched: their release skips the down site and recovery redoes
// them there.
func (c *Cluster) Crash(id SiteID) error {
	s := c.sites[id]
	s.mu.Lock()
	if s.cr == nil {
		s.mu.Unlock()
		return ErrNotFaultTolerant
	}
	if err := s.cr.Crash(); err != nil {
		s.mu.Unlock()
		return err
	}
	touched := make([]*Txn, 0, len(s.txns))
	for _, t := range s.txns {
		touched = append(touched, t)
	}
	clear(s.txns)
	// Wake everyone parked at the dead site with the failure verdict;
	// their owners run the global abort.
	s.hub.FailAll(core.ReasonSiteFailed)
	s.mu.Unlock()

	c.tel.Crashes.Inc()
	c.trace(telemetry.EvCrash, 0, int32(id), 0)
	c.mu.Lock()
	c.mirror.DropSite(int(id))
	var revoke []*Txn
	for _, t := range touched {
		t.doomed.Store(true)
		// Only an unlogged held transaction can still be revoked; a
		// txReleasing one passed its commit point (decision logged) and
		// must land everywhere, crash or not.
		if t.state.CompareAndSwap(txPseudo, txRevoking) {
			c.heldCount--
			revoke = append(revoke, t)
		}
	}
	c.tel.Held.Set(int64(c.heldCount))
	c.mu.Unlock()
	for _, t := range revoke {
		c.revokeEverywhere(t, id, core.ReasonSiteFailed)
	}
	return nil
}

// revokeEverywhere unwinds a held pseudo-committed transaction: the
// hold is revoked at every surviving visited site, the transaction ends
// aborted with reason, and its mirror node is removed (possibly
// cascading releases of transactions that depended on it —
// recoverability means this abort does not cascade into them). Two
// callers: the crash handler (skip the crashed site, ReasonSiteFailed)
// and the hold policy's shed path (no site to skip, ReasonShed). The
// caller has already moved the transaction out of txPseudo under the
// coordinator lock, so the release cascade cannot select it
// concurrently.
func (c *Cluster) revokeEverywhere(t *Txn, crashed SiteID, reason core.AbortReason) {
	for _, sid := range t.visitedSorted() {
		s := c.sites[sid]
		s.mu.Lock()
		if sid != crashed {
			eff := s.hub.Effects()
			if err := s.p.RevokeInto(eff, t.id, reason); err == nil {
				s.hub.Deliver(eff)
			}
			// fault.ErrSiteDown: another site crashed too; its volatile
			// hold died with it and its prepared record will be
			// presumed aborted at restart.
		}
		s.forget(t.id)
		s.mu.Unlock()
		c.refreshParked(s)
	}
	t.reason.Store(int32(reason))
	t.state.Store(txAborted)
	c.spans.Record(t.Trace(), telemetry.SpanAbort, uint64(t.id), int32(crashed), 0, 0, 0)
	c.completeTrace(t)
	close(t.done)
	if c.obs != nil {
		c.obs.Aborted(t.id, reason.String())
	}
	c.finalizeTxn(t)
}

// Restart brings a crashed site back: a fresh scheduler is seeded from
// the site's durable committed snapshots, prepared (in-doubt)
// transactions are resolved against the decision log — logged commits
// are redone into the committed state, the rest presumed aborted — and
// the site starts accepting transactions again (re-registration). The
// recovered site then re-exports its dependency edges into the
// coordinator's mirror; a freshly recovered site holds no live
// transactions, so today this re-export is empty, but the walk keeps
// re-registration correct if recovery ever reinstates holds.
func (c *Cluster) Restart(id SiteID) (fault.RecoveryReport, error) {
	s := c.sites[id]
	s.mu.Lock()
	if s.cr == nil {
		s.mu.Unlock()
		return fault.RecoveryReport{}, ErrNotFaultTolerant
	}
	rep, err := s.cr.Restart()
	if err != nil {
		s.mu.Unlock()
		return rep, err
	}
	// Rebuild the mirror's view of this site from the recovered
	// participant's own exports.
	for txid := range s.txns {
		edges := s.edges(txid)
		c.mu.Lock()
		if t := c.reg.get(txid); t != nil {
			if len(edges) > 0 {
				t.anyEdges.Store(true)
			}
			c.mirror.Observe(int(id), txid, c.filterLive(edges))
		}
		c.mu.Unlock()
	}
	s.mu.Unlock()
	c.tel.Restarts.Inc()
	c.trace(telemetry.EvRestart, 0, int32(id), int64(len(rep.Redone)))
	// A redo is this site's release ack: the logged commit is now in
	// its durable base, so the decision can be truncated once every
	// other participant has confirmed too. The redo span re-derives its
	// context from the sampler — the transaction itself may have been
	// unregistered before the crash.
	for _, txid := range rep.Redone {
		c.spans.Record(c.TraceContextOf(txid), telemetry.SpanRedo, uint64(txid), int32(id), 0, 0, 0)
		c.ackRelease(txid, id)
	}
	return rep, nil
}

// CrashSite and RestartSite are the int-typed adapters the workload
// chaos harness drives (it speaks core.Store plus these, without
// importing dist).

// CrashSite is Crash with an untyped site index.
func (c *Cluster) CrashSite(site int) error { return c.Crash(SiteID(site)) }

// RestartSite is Restart with an untyped site index, discarding the
// recovery report.
func (c *Cluster) RestartSite(site int) error {
	_, err := c.Restart(SiteID(site))
	return err
}
