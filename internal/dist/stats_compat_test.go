package dist

import (
	"testing"

	"repro/internal/core"
)

// TestClusterStatsPerSiteSum pins the stats surface's per-site-sum
// semantics across the telemetry rebuild: Cluster.Stats is exactly the
// sum of the per-site snapshots, and a transaction touching k sites
// contributes k to the per-site event counters (its real commit lands
// at each visited participant).
func TestClusterStatsPerSiteSum(t *testing.T) {
	c := newPageCluster(t, 3, 6)
	tx := c.Begin()
	if _, err := tx.Do(1, write(10)); err != nil { // site 1
		t.Fatal(err)
	}
	if _, err := tx.Do(2, write(20)); err != nil { // site 2
		t.Fatal(err)
	}
	if st, err := tx.Commit(); err != nil || st != core.Committed {
		t.Fatalf("commit = %v, %v; want committed", st, err)
	}

	var sum core.Stats
	for sid := 0; sid < c.NumSites(); sid++ {
		sum.Add(c.SiteStats(SiteID(sid)))
	}
	if got := c.Stats(); got != sum {
		t.Fatalf("Stats() %+v != per-site sum %+v", got, sum)
	}
	if sum.Executes != 2 {
		t.Fatalf("Executes = %d, want 2 (one per visited site)", sum.Executes)
	}
	if sum.Commits != 2 {
		t.Fatalf("Commits = %d, want 2 (the commit lands at each participant)", sum.Commits)
	}
}
