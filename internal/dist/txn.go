package dist

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/delivery"
	"repro/internal/depgraph"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// Distributed transaction states. Writes happen under the cluster's
// coordinator lock; reads are lock-free.
const (
	txActive int32 = iota
	txPseudo
	txReleasing
	txCommitted
	txAborted
	// txRevoking: a held pseudo-commit being unwound after a site
	// crash (Cluster.Crash moved it out of txPseudo under the
	// coordinator lock, so finalizeGlobal cannot select it for
	// release concurrently).
	txRevoking
)

// Txn is a distributed transaction handle, implementing core.Txn. Like
// core.Handle it must be driven by one goroutine at a time; separate
// transactions are fully concurrent. Operations route to the owning
// site's participant; the coordinator only gets involved when a
// dependency edge appears.
type Txn struct {
	c  *Cluster
	id core.TxnID

	state  atomic.Int32
	reason atomic.Int32 // core.AbortReason, stored before state becomes txAborted

	// visited lists the sites where Begin has run, in ascending order
	// (conversations iterate it directly, so multi-site rounds stay
	// deterministic). Owner-goroutine-only until the transaction
	// pseudo-commits, after which the owner mutates nothing.
	visited []SiteID
	// anyEdges is set once the transaction has ever had a dependency
	// edge at any site; while false, commits take the edge-free fast
	// path and never touch the coordinator. Set by the owner's own
	// observes and by refreshParked (a foreign goroutine), hence
	// atomic.
	anyEdges atomic.Bool
	// inMirror is set by filterLive — under the transaction's registry
	// shard lock — when an edge to this transaction enters the union
	// graph. Together with anyEdges it tells finalisation whether the
	// mirror holds state to clean up; false on both is what lets the
	// edge-free fast path finalise without the coordinator mutex.
	inMirror atomic.Bool
	// doomed is set by the crash handler when a site holding this
	// transaction's operations fails before the commit point: the
	// owner aborts with ReasonSiteFailed at its next step. Set by a
	// foreign goroutine (Cluster.Crash), hence atomic.
	doomed atomic.Bool

	// tc is the transaction's causal trace context, minted by the
	// coordinator's sampler at Begin (nil pointer when the span plane is
	// off). A remote client with its own sampler overrides it through
	// AttachTrace — a foreign goroutine relative to conversation reads,
	// hence the atomic pointer. begin stamps Begin for end-to-end
	// latency; set only when tracing is on, before the handle escapes.
	tc    atomic.Pointer[telemetry.TraceContext]
	begin time.Time

	done chan struct{} // closed at the terminal state (real commit everywhere, or abort)
}

// Trace returns the transaction's trace context (zero when the span
// plane is off).
func (t *Txn) Trace() telemetry.TraceContext {
	if p := t.tc.Load(); p != nil {
		return *p
	}
	return telemetry.TraceContext{}
}

// AttachTrace adopts an externally minted trace context — a remote
// client that roots the trace — overriding the coordinator's own
// sampling decision for this transaction. Invalid contexts and
// repeated attaches of the current context are no-ops.
func (t *Txn) AttachTrace(tc telemetry.TraceContext) {
	if !tc.Valid() || t.Trace() == tc {
		return
	}
	t.tc.Store(&tc)
}

// span records one causal span for this transaction. Nil-safe and
// unsampled-safe at every layer, so call sites stay unguarded; the
// disabled path is two predictable branches and zero allocations.
func (t *Txn) span(kind telemetry.SpanKind, site int32, object, wave, dur int64) {
	t.c.spans.Record(t.Trace(), kind, uint64(t.id), site, object, wave, dur)
}

// sampled reports whether this transaction's spans are being recorded —
// the gate for the extra clock reads that give spans durations.
func (t *Txn) sampled() bool {
	return t.c.spans != nil && t.Trace().Sampled()
}

// ID returns the coordinator-assigned transaction id (unique across
// the cluster).
func (t *Txn) ID() core.TxnID { return t.id }

// Done returns a channel closed when the transaction reaches its
// terminal state: the real commit has landed at every site (for held
// pseudo-commits, once the global dependency set drained) or the
// transaction aborted.
func (t *Txn) Done() <-chan struct{} { return t.done }

// Err reports how the transaction ended: nil after the real commit
// landed everywhere (and while still in flight), a *core.ErrAborted
// after an abort. Meaningful once Done's channel is closed.
func (t *Txn) Err() error {
	if t.state.Load() == txAborted {
		return &core.ErrAborted{Txn: t.id, Reason: core.AbortReason(t.reason.Load())}
	}
	return nil
}

// visitedSorted returns the visited sites in ascending order, for
// deterministic multi-site conversations. The slice is the
// transaction's own (kept sorted by visit); callers must not mutate.
func (t *Txn) visitedSorted() []SiteID { return t.visited }

// visitedHas reports whether Begin has run at sid. Linear scan: a
// transaction touches a handful of sites.
func (t *Txn) visitedHas(sid SiteID) bool {
	for _, s := range t.visited {
		if s == sid {
			return true
		}
	}
	return false
}

// visit records sid as visited, keeping the slice sorted.
func (t *Txn) visit(sid SiteID) {
	t.visited = append(t.visited, sid)
	for i := len(t.visited) - 1; i > 0 && t.visited[i-1] > t.visited[i]; i-- {
		t.visited[i-1], t.visited[i] = t.visited[i], t.visited[i-1]
	}
}

// errState converts a non-active state into the caller-facing error.
func (t *Txn) errState() error {
	if t.state.Load() == txAborted {
		return &core.ErrAborted{Txn: t.id, Reason: core.AbortReason(t.reason.Load())}
	}
	return fmt.Errorf("%w (T%d)", ErrTxnDone, t.id)
}

// Do executes op against obj, blocking until the operation runs at the
// object's home site. It returns a *core.ErrAborted (matching
// core.ErrTxnAborted and the reason sentinels under errors.Is) if a
// site scheduler or the coordinator's union-graph cycle detection
// aborts the transaction instead.
func (t *Txn) Do(obj core.ObjectID, op adt.Op) (adt.Ret, error) {
	return t.do(nil, obj, op)
}

// DoCtx is Do with cancellation: if ctx expires while the request is
// blocked at the object's home site, the request is withdrawn from that
// site's queue (followers parked behind it are retried), the
// transaction's mirrored edges are refreshed so no stale wait-for edge
// survives at the coordinator, the transaction stays active, and
// ctx.Err() is returned. If the grant raced the cancellation, the
// operation's result is returned instead.
func (t *Txn) DoCtx(ctx context.Context, obj core.ObjectID, op adt.Op) (adt.Ret, error) {
	if err := ctx.Err(); err != nil {
		return adt.Ret{}, err
	}
	return t.do(ctx, obj, op)
}

// failSite aborts the transaction everywhere after a participant
// failure and returns the typed error. sid names the site the failure
// surfaced at (a down site, or one that restarted and no longer knows
// the transaction); pass noSite when the failed participant is not
// identifiable from this call — a doomed transaction learns only that
// some site it touched crashed.
func (t *Txn) failSite(sid SiteID) (adt.Ret, error) {
	t.c.abortEverywhere(t, noSite, core.ReasonSiteFailed, core.ReasonSiteFailed.String())
	err := &core.ErrAborted{Txn: t.id, Reason: core.ReasonSiteFailed}
	if sid == noSite {
		return adt.Ret{}, fmt.Errorf("participant crash: %w", err)
	}
	return adt.Ret{}, fmt.Errorf("site %d: %w", sid, err)
}

// siteFailure classifies an error from a participant call as a
// crash-stop failure: the site is down, or it restarted and lost the
// transaction's volatile state (fresh incarnations answer
// ErrUnknownTxn). Only fault-tolerant clusters map these to aborts;
// on a plain cluster they would be bugs and must surface.
func (c *Cluster) siteFailure(err error) bool {
	return c.faulty && (errors.Is(err, fault.ErrSiteDown) || errors.Is(err, core.ErrUnknownTxn))
}

// siteFailure is the per-transaction classification: a doomed
// transaction additionally treats any participant error as the
// crash's fault. The crash reconcile may already have presumed-abort
// revoked it at a participant whose state survived (a remote daemon
// outlives a connection blip), and that participant answers
// ErrTxnTerminated where a fresh in-process incarnation would answer
// ErrUnknownTxn — both must map to the same retryable site-failed
// abort.
func (t *Txn) siteFailure(err error) bool {
	return t.c.siteFailure(err) || (t.c.faulty && t.doomed.Load())
}

// do runs the request; a nil ctx means no cancellation.
func (t *Txn) do(ctx context.Context, obj core.ObjectID, op adt.Op) (adt.Ret, error) {
	if t.state.Load() != txActive {
		return adt.Ret{}, t.errState()
	}
	if t.doomed.Load() {
		// A site holding our operations crashed; finish the abort the
		// crash handler started. The current op's home site is not the
		// one that failed, so no site is named.
		return t.failSite(noSite)
	}
	sid := t.c.route(obj)
	s := t.c.sites[sid]

	if !t.visitedHas(sid) {
		s.mu.Lock()
		err := s.p.Begin(t.id)
		if err == nil {
			s.txns[t.id] = t
		}
		s.mu.Unlock()
		if err != nil {
			if t.siteFailure(err) {
				return t.failSite(sid)
			}
			return adt.Ret{}, err
		}
		t.visit(sid)
		t.c.trace(telemetry.EvBegin, uint64(t.id), int32(sid), 0)
		t.span(telemetry.SpanBegin, int32(sid), 0, 0, 0)
	}

	s.mu.Lock()
	eff := s.hub.Effects()
	dec, err := s.p.RequestInto(eff, t.id, obj, op)
	if err != nil {
		s.mu.Unlock()
		if t.siteFailure(err) {
			return t.failSite(sid)
		}
		return adt.Ret{}, err
	}
	var ch chan delivery.Msg
	if dec.Outcome == core.Blocked {
		ch = s.hub.Park(t.id)
	}
	s.hub.Deliver(eff)
	s.mu.Unlock()
	// No refreshParked here: a clean Executed/Blocked request runs no
	// settle, so no parked transaction's edges moved; the Aborted
	// branch refreshes every visited site via abortEverywhere.

	switch dec.Outcome {
	case core.Aborted:
		// The site already finalised us locally; propagate the abort
		// to every other visited site and the coordinator.
		t.c.abortEverywhere(t, sid, dec.Reason, dec.Reason.String())
		return adt.Ret{}, fmt.Errorf("site %d: %w", sid, &core.ErrAborted{Txn: t.id, Reason: dec.Reason})

	case core.Blocked:
		t.c.trace(telemetry.EvBlocked, uint64(t.id), int32(sid), 0)
		t.span(telemetry.SpanBlock, int32(sid), int64(obj), 0, 0)
		var blockStart time.Time
		if t.sampled() {
			blockStart = time.Now()
		}
		// Mirror the wait-for edges before parking: a cross-site
		// deadlock closes in the union graph even though each site's
		// local check passed (§6).
		if t.c.observe(t, sid) {
			// Unpark before recycling: a channel may only re-enter the
			// pool once no id maps to it (Recycle drops it if a grant
			// raced us and the resolution is sitting in the buffer).
			s.mu.Lock()
			s.hub.Withdraw(t.id)
			s.hub.Recycle(ch)
			s.mu.Unlock()
			t.c.abortEverywhere(t, noSite, core.ReasonDeadlock, "cross-site deadlock")
			return adt.Ret{}, fmt.Errorf("cross-site: %w", &core.ErrAborted{Txn: t.id, Reason: core.ReasonDeadlock})
		}
		var msg delivery.Msg
		if ctx == nil {
			msg = <-ch
		} else {
			select {
			case msg = <-ch:
			case <-ctx.Done():
				if t.withdraw(s, ch) {
					return adt.Ret{}, ctx.Err()
				}
				// The resolution raced the cancellation: the message
				// is in the buffer. Honour it.
				msg = <-ch
			}
		}
		t.recycle(s, ch)
		if msg.Aborted {
			t.c.abortEverywhere(t, sid, msg.Reason, msg.Reason.String())
			return adt.Ret{}, fmt.Errorf("site %d: %w", sid, &core.ErrAborted{Txn: t.id, Reason: msg.Reason})
		}
		// Granted: the wait-for edges are gone and commit dependencies
		// may have taken their place — re-mirror and re-check.
		if !blockStart.IsZero() {
			t.span(telemetry.SpanGrant, int32(sid), int64(obj), 0, int64(time.Since(blockStart)))
		}
		if t.c.observe(t, sid) {
			t.c.abortEverywhere(t, noSite, core.ReasonCommitCycle, "cross-site dependency cycle")
			return adt.Ret{}, fmt.Errorf("cross-site: %w", &core.ErrAborted{Txn: t.id, Reason: core.ReasonCommitCycle})
		}
		return msg.Ret, nil

	default: // Executed
		t.span(telemetry.SpanRequest, int32(sid), int64(obj), 0, 0)
		if t.c.observe(t, sid) {
			t.c.abortEverywhere(t, noSite, core.ReasonCommitCycle, "cross-site dependency cycle")
			return adt.Ret{}, fmt.Errorf("cross-site: %w", &core.ErrAborted{Txn: t.id, Reason: core.ReasonCommitCycle})
		}
		return dec.Ret, nil
	}
}

// recycle returns a drained park channel to the site's pool
// (receiver-side recycling: only this goroutine knows the buffered
// message, if any, has been consumed).
func (t *Txn) recycle(s *site, ch chan delivery.Msg) {
	s.mu.Lock()
	s.hub.Recycle(ch)
	s.mu.Unlock()
}

// withdraw pulls t's blocked request out of site s on cancellation,
// reporting whether it was still parked (false means the resolution is
// already in the channel buffer). On success the park channel is
// recycled (no message can arrive once the hub entry is gone), the
// site queue is rescanned for followers, the mirror is refreshed, and
// the transaction remains active.
func (t *Txn) withdraw(s *site, ch chan delivery.Msg) bool {
	s.mu.Lock()
	if !s.hub.Withdraw(t.id) {
		s.mu.Unlock()
		return false
	}
	s.hub.Recycle(ch)
	eff := s.hub.Effects()
	if err := s.p.WithdrawInto(eff, t.id); err == nil {
		s.hub.Deliver(eff)
	}
	s.mu.Unlock()
	// Shed the stale wait-for edges from the union graph and re-mirror
	// any parked transactions the withdrawal's retries re-blocked.
	t.c.unobserve(t, s.id)
	t.c.refreshParked(s)
	return true
}

// noSite is the abortEverywhere sentinel for "no site has finalised
// the transaction yet".
const noSite SiteID = -1

// Commit runs the paper's distributed commit conversation: the
// transaction pseudo-commits-and-holds at every site it visited; if
// its global dependency set (out-degree in the mirrored union graph)
// is empty the coordinator releases the real commit everywhere and
// returns Committed. Otherwise it returns PseudoCommitted — complete
// from the caller's perspective — and the coordinator releases it
// automatically once the transactions it depends on terminate; Done
// observes that.
func (t *Txn) Commit() (core.CommitStatus, error) {
	switch t.state.Load() {
	case txActive:
	case txPseudo, txReleasing:
		return core.PseudoCommitted, nil
	case txCommitted:
		return core.Committed, nil
	default:
		return 0, t.errState()
	}
	if t.doomed.Load() {
		// A site holding our operations crashed before the commit
		// point; the promise cannot be kept.
		_, err := t.failSite(noSite)
		return 0, err
	}

	sids := t.visitedSorted()
	c := t.c

	// Fast path: a transaction that never grew a dependency edge has a
	// provably empty global dependency set (edges only arise from its
	// own requests, and every request left zero), so each site can
	// commit directly — no hold phase, no coordinator conversation,
	// and (unless someone mirrored a commit dependency on us) no
	// coordinator lock of any kind after Begin: finalisation leaves
	// the sharded registry and stops. This is the path perfectly
	// partitioned traffic takes, and it is what makes sharded
	// throughput scale with cores. On a fault-tolerant cluster only
	// single-site transactions qualify: a direct multi-site commit has
	// no prepare records, so a crash between the per-site commits
	// would break atomicity — multi-site transactions go through the
	// hold conversation even when edge-free.
	if !t.anyEdges.Load() && (!c.faulty || len(sids) <= 1) {
		c.tel.FastCommits.Inc()
		logged := c.logDirectCommit(t.id, sids)
		for _, sid := range sids {
			s := c.sites[sid]
			s.mu.Lock()
			eff := s.hub.Effects()
			st, err := s.p.CommitInto(eff, t.id)
			if err == nil {
				s.hub.Deliver(eff)
				s.forget(t.id)
			}
			s.mu.Unlock()
			if err != nil {
				if logged && !c.undoDirectCommit(t.id) {
					// Restart reconciliation claimed the logged decision
					// and redid the commit at the recovered site before
					// we could withdraw it: the push landed, just not
					// through this conversation. Retrying would push
					// twice — report Committed instead.
					c.ackRelease(t.id, sid)
					s.mu.Lock()
					s.forget(t.id)
					s.mu.Unlock()
					c.refreshParked(s)
					continue
				}
				if t.siteFailure(err) {
					_, ferr := t.failSite(sid)
					return 0, ferr
				}
				return 0, fmt.Errorf("dist: commit of T%d at site %d: %w", t.id, sid, err)
			}
			if st != core.Committed {
				panic(fmt.Sprintf("dist: edge-free T%d pseudo-committed at site %d", t.id, sid))
			}
			if logged {
				c.ackRelease(t.id, sid)
			}
			t.span(telemetry.SpanRelease, int32(sid), 0, 0, 0)
			c.refreshParked(s)
		}
		t.state.Store(txCommitted)
		c.completeTrace(t)
		close(t.done)
		if c.obs != nil {
			c.obs.Released(t.id)
		}
		// Others may have mirrored commit dependencies on us; drain them.
		c.finalizeTxn(t)
		return core.Committed, nil
	}

	// Hold at every site, copying the dependency-edge export out of the
	// same critical section (one site round per participant). The
	// exports are then mirrored through the conversation pipeline —
	// one mirror update per touched site, one coordinator lock round
	// per conversation WAVE (concurrent conversations share a round) —
	// instead of re-locking the coordinator once per site. Batching is
	// safe because the committing owner is the only writer for its
	// (site, txn) mirror pairs (it is not parked, so refreshParked
	// never touches it), and staleness against concurrent global
	// finalisations is handled by filterLive at observe time, exactly
	// as on the per-site path.
	c.tel.Conversations.Inc()
	holdStart := time.Now()
	sampled := t.sampled()
	var batch []depgraph.Edge
	var counts []int
	for _, sid := range sids {
		c.step(BeforeCommitHold, t.id, sid)
		var siteStart time.Time
		if sampled {
			siteStart = time.Now()
		}
		s := c.sites[sid]
		s.mu.Lock()
		eff := s.hub.Effects()
		_, err := s.p.CommitHoldInto(eff, t.id)
		if err == nil {
			s.hub.Deliver(eff)
			edges := s.edges(t.id)
			batch = append(batch, edges...)
			counts = append(counts, len(edges))
		}
		s.mu.Unlock()
		if err != nil {
			if t.siteFailure(err) {
				_, ferr := t.failSite(sid)
				return 0, ferr
			}
			return 0, fmt.Errorf("dist: commit-hold of T%d at site %d: %w", t.id, sid, err)
		}
		c.trace(telemetry.EvHold, uint64(t.id), int32(sid), 0)
		if sampled {
			t.span(telemetry.SpanHold, int32(sid), 0, 0, int64(time.Since(siteStart)))
		}
		c.step(AfterPrepareForce, t.id, sid)
	}
	c.tel.HoldNanos.Observe(uint64(time.Since(holdStart)))
	c.step(BeforeDecisionForce, t.id, noSite)

	// The decision round runs through the conversation pipeline: one
	// coordinator critical section mirrors every site's export, sums
	// the global dependency set and decides — for this conversation
	// and every concurrent one queued in the same wave, with their
	// commit decisions forced to the log as one group. The doomed
	// re-check runs under the same lock the crash handler dooms under,
	// so a crash during the hold phase cannot slip past the commit
	// point.
	decideStart := time.Now()
	gdeps, wave, doomed, shed := c.decide(t, sids, batch, counts)
	c.tel.DecideNanos.Observe(uint64(time.Since(decideStart)))
	c.trace(telemetry.EvDecide, uint64(t.id), int32(noSite), int64(gdeps))
	if sampled {
		t.span(telemetry.SpanDecide, int32(noSite), int64(gdeps), int64(wave), int64(time.Since(decideStart)))
	}
	if doomed {
		_, err := t.failSite(noSite)
		return 0, err
	}
	if shed {
		c.trace(telemetry.EvShed, uint64(t.id), int32(noSite), int64(gdeps))
		t.span(telemetry.SpanShed, int32(noSite), int64(gdeps), int64(wave), 0)
		// The hold policy refused to grow the convoy: revoke the hold
		// at every participant (recoverability makes this abort
		// non-cascading) and surface a retryable abort — Store.Run and
		// the workload harness restart the transaction under a fresh
		// id, by which time the convoy may have drained.
		c.revokeEverywhere(t, noSite, core.ReasonShed)
		return 0, fmt.Errorf("hold shed: %w", &core.ErrAborted{Txn: t.id, Reason: core.ReasonShed})
	}

	if gdeps > 0 {
		if c.obs != nil {
			c.obs.Held(t.id, gdeps)
		}
		return core.PseudoCommitted, nil
	}

	// Global dependency set empty: land the real commit everywhere.
	c.step(AfterDecisionBeforeRelease, t.id, noSite)
	releaseStart := time.Now()
	c.releaseAt(t)
	c.tel.ReleaseNanos.Observe(uint64(time.Since(releaseStart)))
	t.state.Store(txCommitted)
	c.completeTrace(t)
	close(t.done)
	if c.obs != nil {
		c.obs.Released(t.id)
	}
	c.finalizeTxn(t)
	return core.Committed, nil
}

// CommitCtx is Commit guarded by ctx: if ctx is already done no commit
// conversation is started, ctx.Err() is returned, and the transaction
// remains active — in particular, still abortable.
func (t *Txn) CommitCtx(ctx context.Context) (core.CommitStatus, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return t.Commit()
}

// Abort rolls the transaction back at every site. Aborting an
// already-aborted transaction is a no-op; pseudo-committed transactions
// cannot abort (they have promised to commit).
func (t *Txn) Abort() error {
	switch t.state.Load() {
	case txActive:
	case txAborted:
		return nil // already gone
	default:
		return fmt.Errorf("%w: pseudo-committed transactions cannot abort", ErrTxnDone)
	}
	t.c.abortEverywhere(t, noSite, core.ReasonUser, core.ReasonUser.String())
	return nil
}
