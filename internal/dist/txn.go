package dist

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/adt"
	"repro/internal/core"
)

// Distributed transaction states. Writes happen under the cluster's
// coordinator lock; reads are lock-free.
const (
	txActive int32 = iota
	txPseudo
	txReleasing
	txCommitted
	txAborted
)

// Txn is a distributed transaction handle. Like core.Handle it must be
// driven by one goroutine at a time; separate transactions are fully
// concurrent. Operations route to the owning site's participant; the
// coordinator only gets involved when a dependency edge appears.
type Txn struct {
	c  *Cluster
	id core.TxnID

	state atomic.Int32

	// visited marks sites where Begin has run. Owner-goroutine-only
	// until the transaction pseudo-commits, after which the owner
	// mutates nothing.
	visited map[SiteID]bool
	// anyEdges is set once the transaction has ever had a dependency
	// edge at any site; while false, commits take the edge-free fast
	// path and never touch the coordinator. Set by the owner's own
	// observes and by refreshParked (a foreign goroutine), hence
	// atomic.
	anyEdges atomic.Bool

	committed chan struct{} // closed when the real commit lands everywhere
	aborted   chan struct{} // closed when the transaction aborts
}

// ID returns the coordinator-assigned transaction id (unique across
// the cluster).
func (t *Txn) ID() core.TxnID { return t.id }

// visitedSorted returns the visited sites in ascending order, for
// deterministic multi-site conversations.
func (t *Txn) visitedSorted() []SiteID {
	sids := make([]SiteID, 0, len(t.visited))
	for sid := range t.visited {
		sids = append(sids, sid)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	return sids
}

// errState converts a non-active state into the caller-facing error.
func (t *Txn) errState() error {
	if t.state.Load() == txAborted {
		return fmt.Errorf("%w (distributed transaction T%d)", core.ErrTxnAborted, t.id)
	}
	return fmt.Errorf("%w (T%d)", ErrTxnDone, t.id)
}

// Do executes op against obj, blocking until the operation runs at the
// object's home site. It returns an error wrapping core.ErrTxnAborted
// if a site scheduler or the coordinator's union-graph cycle detection
// aborts the transaction instead.
func (t *Txn) Do(obj core.ObjectID, op adt.Op) (adt.Ret, error) {
	if t.state.Load() != txActive {
		return adt.Ret{}, t.errState()
	}
	sid := t.c.route(obj)
	s := t.c.sites[sid]

	if !t.visited[sid] {
		s.mu.Lock()
		err := s.p.Begin(t.id)
		s.mu.Unlock()
		if err != nil {
			return adt.Ret{}, err
		}
		t.visited[sid] = true
	}

	s.mu.Lock()
	dec, eff, err := s.p.Request(t.id, obj, op)
	if err != nil {
		s.mu.Unlock()
		return adt.Ret{}, err
	}
	var ch chan waitMsg
	if dec.Outcome == core.Blocked {
		ch = make(chan waitMsg, 1)
		s.waiters[t.id] = ch
	}
	s.deliver(eff)
	s.mu.Unlock()
	// No refreshParked here: a clean Executed/Blocked request runs no
	// settle, so no parked transaction's edges moved; the Aborted
	// branch refreshes every visited site via abortEverywhere.

	switch dec.Outcome {
	case core.Aborted:
		// The site already finalised us locally; propagate the abort
		// to every other visited site and the coordinator.
		t.c.abortEverywhere(t, sid, dec.Reason.String())
		return adt.Ret{}, fmt.Errorf("%w (%s at site %d)", core.ErrTxnAborted, dec.Reason, sid)

	case core.Blocked:
		// Mirror the wait-for edges before parking: a cross-site
		// deadlock closes in the union graph even though each site's
		// local check passed (§6).
		if t.c.observe(t, sid) {
			t.c.abortEverywhere(t, noSite, "cross-site deadlock")
			return adt.Ret{}, fmt.Errorf("%w (cross-site deadlock involving T%d)", core.ErrTxnAborted, t.id)
		}
		msg := <-ch
		if msg.aborted {
			t.c.abortEverywhere(t, sid, msg.reason.String())
			return adt.Ret{}, fmt.Errorf("%w (%s at site %d)", core.ErrTxnAborted, msg.reason, sid)
		}
		// Granted: the wait-for edges are gone and commit dependencies
		// may have taken their place — re-mirror and re-check.
		if t.c.observe(t, sid) {
			t.c.abortEverywhere(t, noSite, "cross-site dependency cycle")
			return adt.Ret{}, fmt.Errorf("%w (coordinator detected a cross-site dependency cycle involving T%d)", core.ErrTxnAborted, t.id)
		}
		return msg.ret, nil

	default: // Executed
		if t.c.observe(t, sid) {
			t.c.abortEverywhere(t, noSite, "cross-site dependency cycle")
			return adt.Ret{}, fmt.Errorf("%w (coordinator detected a cross-site dependency cycle involving T%d)", core.ErrTxnAborted, t.id)
		}
		return dec.Ret, nil
	}
}

// noSite is the abortEverywhere sentinel for "no site has finalised
// the transaction yet".
const noSite SiteID = -1

// Commit runs the paper's distributed commit conversation: the
// transaction pseudo-commits-and-holds at every site it visited; if
// its global dependency set (out-degree in the mirrored union graph)
// is empty the coordinator releases the real commit everywhere and
// returns Committed. Otherwise it returns PseudoCommitted — complete
// from the caller's perspective — and the coordinator releases it
// automatically once the transactions it depends on terminate;
// WaitCommitted observes that.
func (t *Txn) Commit() (core.CommitStatus, error) {
	switch t.state.Load() {
	case txActive:
	case txPseudo, txReleasing:
		return core.PseudoCommitted, nil
	case txCommitted:
		return core.Committed, nil
	default:
		return 0, t.errState()
	}

	sids := t.visitedSorted()

	// Fast path: a transaction that never grew a dependency edge has a
	// provably empty global dependency set (edges only arise from its
	// own requests, and every request left zero), so each site can
	// commit directly — no hold phase, no coordinator conversation.
	// This is the path perfectly partitioned traffic takes, and it is
	// what makes sharded throughput scale.
	if !t.anyEdges.Load() {
		for _, sid := range sids {
			s := t.c.sites[sid]
			s.mu.Lock()
			st, eff, err := s.p.Commit(t.id)
			if err == nil {
				s.deliver(eff)
				s.p.Forget(t.id)
			}
			s.mu.Unlock()
			if err != nil {
				return 0, fmt.Errorf("dist: commit of T%d at site %d: %w", t.id, sid, err)
			}
			if st != core.Committed {
				panic(fmt.Sprintf("dist: edge-free T%d pseudo-committed at site %d", t.id, sid))
			}
			t.c.refreshParked(s)
		}
		t.c.mu.Lock()
		t.state.Store(txCommitted)
		t.c.mu.Unlock()
		close(t.committed)
		if t.c.obs != nil {
			t.c.obs.Released(t.id)
		}
		// Others may have mirrored commit dependencies on us; drain them.
		t.c.finalizeGlobal([]core.TxnID{t.id})
		return core.Committed, nil
	}

	// Hold at every site, folding the dependency-edge export into the
	// same critical section (one site round per participant): the
	// mirror ends up holding per-site truth as of the hold, and each
	// export-and-observe runs under the site mutex (see
	// Cluster.observe for the ordering argument).
	c := t.c
	for _, sid := range sids {
		s := c.sites[sid]
		s.mu.Lock()
		_, eff, err := s.p.CommitHold(t.id)
		if err == nil {
			s.deliver(eff)
			edges := s.edges(t.id)
			c.mu.Lock()
			c.mirror.Observe(int(sid), t.id, c.filterLive(edges))
			c.mu.Unlock()
		}
		s.mu.Unlock()
		if err != nil {
			return 0, fmt.Errorf("dist: commit-hold of T%d at site %d: %w", t.id, sid, err)
		}
	}

	// Sum the global dependency set over the mirrored union graph.
	c.mu.Lock()
	gdeps := c.mirror.OutDegree(t.id)
	if gdeps > 0 {
		t.state.Store(txPseudo)
	}
	c.mu.Unlock()

	if gdeps > 0 {
		if t.c.obs != nil {
			t.c.obs.Held(t.id, gdeps)
		}
		return core.PseudoCommitted, nil
	}

	// Global dependency set empty: land the real commit everywhere.
	t.c.releaseAt(t)
	t.c.mu.Lock()
	t.state.Store(txCommitted)
	t.c.mu.Unlock()
	close(t.committed)
	if t.c.obs != nil {
		t.c.obs.Released(t.id)
	}
	t.c.finalizeGlobal([]core.TxnID{t.id})
	return core.Committed, nil
}

// Abort rolls the transaction back at every site. Pseudo-committed
// transactions cannot abort (they have promised to commit).
func (t *Txn) Abort() error {
	switch t.state.Load() {
	case txActive:
	case txAborted:
		return nil // already gone
	default:
		return fmt.Errorf("%w: pseudo-committed transactions cannot abort", ErrTxnDone)
	}
	t.c.abortEverywhere(t, noSite, core.ReasonUser.String())
	return nil
}

// Committed returns a channel closed when the real commit has landed
// at every site.
func (t *Txn) Committed() <-chan struct{} { return t.committed }

// WaitCommitted blocks until the transaction's real commit lands at
// every site, or returns an error wrapping core.ErrTxnAborted if the
// transaction aborted instead.
func (t *Txn) WaitCommitted() error {
	select {
	case <-t.committed:
		return nil
	case <-t.aborted:
		return fmt.Errorf("%w (T%d)", core.ErrTxnAborted, t.id)
	}
}
