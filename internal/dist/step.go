package dist

import "repro/internal/core"

// Step names a protocol-step boundary of the distributed commit
// conversation — the exact seams where a crash can land. The wall-clock
// cluster fires a StepHook at each (Config.StepHook), and the
// deterministic multi-site simulator (internal/distsim) uses the same
// vocabulary for its crash schedules, so an adversarial scenario reads
// identically in both: "crash site 2 at AfterDecisionBeforeRelease"
// means the same protocol moment under timers and under a virtual
// clock.
type Step uint8

// The commit conversation's step boundaries, in protocol order.
const (
	// BeforeCommitHold: the coordinator is about to send the
	// pseudo-commit-and-hold (prepare) to a participant. A crash of
	// that site here fails the conversation before any promise exists
	// there.
	BeforeCommitHold Step = iota
	// AfterPrepareForce: the participant forced its prepare record and
	// replied. A crash of that site here leaves a durable in-doubt
	// record whose fate the decision log decides.
	AfterPrepareForce
	// BeforeDecisionForce: every participant holds; the coordinator is
	// about to decide (and, on commit, force the decision to the log).
	// A crash here lands before the commit point: the transaction's
	// prepared records are presumed aborted at recovery.
	BeforeDecisionForce
	// AfterDecisionBeforeRelease: the commit decision is in the log but
	// no participant has been released. A crash here lands after the
	// commit point: recovery must redo the crashed site's prepared
	// record.
	AfterDecisionBeforeRelease
	// DuringReleaseCascade: the coordinator is about to send a release
	// (the real commit) to a participant — fired per site, both on the
	// direct commit path and when a drained dependency set releases a
	// held transaction.
	DuringReleaseCascade

	numSteps // count sentinel, not a step
)

// String implements fmt.Stringer; the names are the ones crash-schedule
// flags accept (see ParseStep).
func (s Step) String() string {
	switch s {
	case BeforeCommitHold:
		return "BeforeCommitHold"
	case AfterPrepareForce:
		return "AfterPrepareForce"
	case BeforeDecisionForce:
		return "BeforeDecisionForce"
	case AfterDecisionBeforeRelease:
		return "AfterDecisionBeforeRelease"
	case DuringReleaseCascade:
		return "DuringReleaseCascade"
	}
	return "unknown-step"
}

// NumSteps is the number of named protocol steps (for occurrence
// counters indexed by Step).
const NumSteps = int(numSteps)

// ParseStep resolves a step name as printed by String.
func ParseStep(name string) (Step, bool) {
	for s := Step(0); s < numSteps; s++ {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

// StepHook observes protocol-step boundaries of commit conversations.
// It is called from the goroutine driving the conversation with no
// cluster or site lock held, so it may call back into the cluster —
// Crash and Restart included. That is the point: a crash schedule can
// land exactly on a step boundary instead of wherever a wall-clock
// timer happens to fire, which turns chaos tests into exact adversarial
// scenarios. site is the participant the step concerns, or -1 for the
// coordinator-level steps (BeforeDecisionForce,
// AfterDecisionBeforeRelease).
//
// A nil hook (the default) is the zero-latency passthrough: the
// conversation runs exactly as before, one nil check per step — the
// production path is unchanged, pinned by BenchmarkFaultToleranceNoCrash
// and the allocation regressions.
type StepHook func(step Step, t core.TxnID, site SiteID)

// step fires the hook if one is installed. Callers must not hold any
// cluster or site lock.
func (c *Cluster) step(s Step, id core.TxnID, sid SiteID) {
	if c.hook != nil {
		c.hook(s, id, sid)
	}
}
