package dist

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// regShards is the live-transaction registry's shard count (a power of
// two; ids hash by masking). 32 shards keep same-shard collisions rare
// at realistic in-flight counts while the whole array stays a few cache
// lines.
const regShards = 32

// regShard is one independently locked slice of the registry.
type regShard struct {
	mu   sync.Mutex
	txns map[core.TxnID]*Txn
	// pad spaces shards to their own cache lines so uncontended
	// registrations on neighbouring shards do not false-share.
	_ [48]byte
}

// registry is the cluster's live-transaction table, sharded by
// transaction id so Begin/finalise traffic from independent
// transactions never contends on one mutex — the first of the
// coordinator's split lock domains. It replaces the txns map that used
// to live under the global coordinator mutex.
//
// Beyond lookup, the registry is the synchronisation point for the
// edge-free finalisation fast path: filterLive marks a transaction as
// mirrored (an edge to it entered the union graph) inside the same
// shard critical section that proves it alive, and unregister reads
// that mark inside the shard critical section that removes the entry.
// Those two sections cannot interleave, so either the marker saw the
// transaction alive — and the finaliser sees the mark and removes the
// mirror node — or the finaliser got there first and the marker drops
// the edge. Without that pairing a stale edge could enter the mirror
// just as its target finalised without mirror cleanup, holding the
// edge's source pseudo-committed forever.
type registry struct {
	shards [regShards]regShard
	// live counts registered transactions, maintained outside the shard
	// locks; the draining close watches it reach zero.
	live atomic.Int64
}

func (r *registry) init() {
	for i := range r.shards {
		r.shards[i].txns = make(map[core.TxnID]*Txn)
	}
}

func (r *registry) shard(id core.TxnID) *regShard {
	return &r.shards[uint64(id)&(regShards-1)]
}

// add registers a live transaction.
func (r *registry) add(t *Txn) {
	sh := r.shard(t.id)
	sh.mu.Lock()
	sh.txns[t.id] = t
	sh.mu.Unlock()
	r.live.Add(1)
}

// get returns the live transaction, or nil. Safe to call with the
// coordinator mutex held (lock order coordinator -> shard).
func (r *registry) get(id core.TxnID) *Txn {
	sh := r.shard(id)
	sh.mu.Lock()
	t := sh.txns[id]
	sh.mu.Unlock()
	return t
}

// markMirror records, atomically with the aliveness check, that an
// edge to id is about to enter the union graph: the returned
// transaction (nil if id is no longer live) must then be removed from
// the mirror when it finalises. Callers hold the coordinator mutex, so
// the mark is published before the edge is observable and strictly
// before the target's RemoveTxn can run.
func (r *registry) markMirror(id core.TxnID) *Txn {
	sh := r.shard(id)
	sh.mu.Lock()
	t := sh.txns[id]
	if t != nil {
		t.inMirror.Store(true)
	}
	sh.mu.Unlock()
	return t
}

// unregister removes a finished transaction and reports whether it has
// union-graph state to clean up (it observed edges of its own, or
// filterLive marked an incoming edge). The mark is read inside the
// shard critical section — see registry's doc comment for why.
func (r *registry) unregister(id core.TxnID) (t *Txn, mirrored bool) {
	sh := r.shard(id)
	sh.mu.Lock()
	t = sh.txns[id]
	if t != nil {
		delete(sh.txns, id)
		mirrored = t.anyEdges.Load() || t.inMirror.Load()
	}
	sh.mu.Unlock()
	if t != nil {
		r.live.Add(-1)
	}
	return t, mirrored
}

// count returns the number of live transactions.
func (r *registry) count() int64 { return r.live.Load() }

// forEach visits every live transaction (shard by shard; the set may
// change between shards). For introspection and test dumps only.
func (r *registry) forEach(fn func(t *Txn)) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, t := range sh.txns {
			fn(t)
		}
		sh.mu.Unlock()
	}
}
