package experiments

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// tinyOpts shrinks every experiment enough to smoke-test the harness.
func tinyOpts() RunOpts {
	return RunOpts{Completions: 150, Warmup: 15, Runs: 1, Seed: 1, DBSize: 400, Terminals: 40}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"ablation-pseudo", "ablation-fakerestart", "ablation-writeprob",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], id)
		}
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%s): %v", id, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := Run("fig99", tinyOpts()); err == nil {
		t.Error("Run with unknown id accepted")
	}
}

func TestSpecsWellFormed(t *testing.T) {
	for _, id := range IDs() {
		spec, _ := Lookup(id)
		if spec.Title == "" || spec.XLabel == "" || spec.PaperNote == "" {
			t.Errorf("%s: incomplete metadata", id)
		}
		if len(spec.XValues) == 0 || len(spec.Metrics) == 0 || len(spec.Series) == 0 {
			t.Errorf("%s: empty sweep/metrics/series", id)
		}
		if spec.Base == nil {
			t.Errorf("%s: no base config", id)
		}
	}
}

// TestRunFig4Tiny exercises the full pipeline on a shrunken Figure 4
// and checks the result is structurally complete.
func TestRunFig4Tiny(t *testing.T) {
	opts := tinyOpts()
	spec, _ := Lookup("fig4")
	spec = &Spec{ // shrink the sweep, keep everything else
		ID: spec.ID, Title: spec.Title, XLabel: spec.XLabel,
		XValues: []float64{10, 25}, Metrics: spec.Metrics,
		Series: spec.Series, Base: spec.Base, PaperNote: spec.PaperNote,
	}
	res, err := spec.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	cols := res.Columns()
	if len(cols) != 2 {
		t.Fatalf("columns = %v", cols)
	}
	for _, pt := range res.Points {
		for _, c := range cols {
			s, ok := pt.Values[c]
			if !ok || s.Mean <= 0 {
				t.Errorf("x=%v col=%s sample=%+v", pt.X, c, s)
			}
		}
	}
	tab := res.Table()
	for _, frag := range []string{"FIG4", "mpl.level", "commutativity/throughput", "paper:"} {
		if !strings.Contains(tab, frag) {
			t.Errorf("table missing %q:\n%s", frag, tab)
		}
	}
	x, best := res.Peak("recoverability/" + metrics.Throughput)
	if best.Mean <= 0 || (x != 10 && x != 25) {
		t.Errorf("peak = %v at %v", best, x)
	}
	if xs := res.Sorted(); xs[0] != 10 || xs[1] != 25 {
		t.Errorf("sorted xs = %v", xs)
	}
}

func TestOptsDefaults(t *testing.T) {
	o := RunOpts{}.withDefaults()
	d := DefaultOpts()
	if o.Completions != d.Completions || o.Runs != d.Runs || o.DBSize != d.DBSize {
		t.Errorf("withDefaults = %+v", o)
	}
	if o.Warmup != d.Completions/10 {
		t.Errorf("warmup default = %d", o.Warmup)
	}
	p := PaperOpts()
	if p.Completions != 50000 || p.Runs != 10 {
		t.Errorf("paper opts = %+v", p)
	}
}

func TestTablesReport(t *testing.T) {
	rep := TablesReport()
	for _, frag := range []string{
		"Tables I–II (Page)",
		"Tables III–IV (Stack)",
		"Tables V–VI (Set)",
		"Tables VII–VIII (Table)",
		"Commutativity for Stack",
		"Recoverability for Set",
		"agreement: exact",
		"commutativity (write,write): paper No, derived Yes-SP",
	} {
		if !strings.Contains(rep, frag) {
			t.Errorf("tables report missing %q", frag)
		}
	}
}

func TestParametersReport(t *testing.T) {
	rep := ParametersReport()
	for _, frag := range []string{"1000 objects", "Write.probability", "0.05 seconds", "1 CPU + 2 disks"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("parameters report missing %q", frag)
		}
	}
}
