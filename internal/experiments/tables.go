package experiments

import (
	"fmt"
	"strings"

	"repro/internal/adt"
	"repro/internal/compat"
)

// TablesReport renders the paper's Tables I–VIII: for each data type,
// the paper's table side by side with the table derived from the type's
// semantics by the compat engine, and whether they agree. The single
// expected divergence is Page (write, write) commutativity, where the
// definitions yield Yes-SP and the paper's Table I keeps the
// traditional No.
func TablesReport() string {
	cases := []struct {
		label string
		typ   adt.Enumerable
		paper *compat.Table
	}{
		{"Tables I–II (Page)", adt.Page{}, compat.PageTable()},
		{"Tables III–IV (Stack)", adt.Stack{}, compat.StackTable()},
		{"Tables V–VI (Set)", adt.Set{}, compat.SetTable()},
		{"Tables VII–VIII (Table)", adt.KTable{}, compat.KTableTable()},
	}
	var b strings.Builder
	for _, c := range cases {
		fmt.Fprintf(&b, "=== %s ===\n\n", c.label)
		fmt.Fprintf(&b, "--- paper ---\n%s\n", c.paper.Format())
		derived := compat.Derive(c.typ)
		fmt.Fprintf(&b, "--- derived from Definitions 1–2 ---\n%s\n", derived.Format())
		if derived.Equal(c.paper) {
			b.WriteString("agreement: exact\n\n")
		} else {
			b.WriteString("agreement: " + diffNote(c.paper, derived) + "\n\n")
		}
	}
	return b.String()
}

func diffNote(paper, derived *compat.Table) string {
	var diffs []string
	for i, req := range paper.Ops {
		for j, exec := range paper.Ops {
			if paper.Comm[i][j] != derived.Comm[i][j] {
				diffs = append(diffs, fmt.Sprintf("commutativity (%s,%s): paper %s, derived %s",
					req, exec, paper.Comm[i][j], derived.Comm[i][j]))
			}
			if paper.Rec[i][j] != derived.Rec[i][j] {
				diffs = append(diffs, fmt.Sprintf("recoverability (%s,%s): paper %s, derived %s",
					req, exec, paper.Rec[i][j], derived.Rec[i][j]))
			}
		}
	}
	if len(diffs) == 0 {
		return "exact"
	}
	return strings.Join(diffs, "; ")
}

// ParametersReport renders Tables IX and X: the simulation parameters
// and their nominal values.
func ParametersReport() string {
	rows := [][2]string{
		{"Database size", "1000 objects"},
		{"Num.of.terminals", "200"},
		{"Transaction length", "8 steps (mean)"},
		{"Min.length", "4 steps"},
		{"Max.length", "12 steps"},
		{"Mpl.level", "10, 25, 50, 100, 150, 200"},
		{"Step.time", "0.05 seconds"},
		{"CPU.time", "0.015 seconds"},
		{"IO.time", "0.035 seconds"},
		{"Resource units", "infinite, 5, 1 (one unit = 1 CPU + 2 disks)"},
		{"Ext.think.time", "1 second (exponential mean)"},
		{"Write.probability", "0.3"},
	}
	var b strings.Builder
	b.WriteString("Tables IX–X: simulation parameters and nominal values\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-20s %s\n", r[0], r[1])
	}
	return b.String()
}
