// Package experiments defines one named, runnable experiment per figure
// of the paper's evaluation (Figures 4–18) plus the ablations listed in
// DESIGN.md. Each experiment produces the same series the paper plots;
// cmd/sccbench and the repository's benchmarks are thin wrappers around
// this package.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RunOpts controls experiment scale. The zero value picks the defaults
// in DefaultOpts.
type RunOpts struct {
	// Completions per run after warm-up (paper: 50,000).
	Completions int
	// Warmup completions discarded before measuring.
	Warmup int
	// Runs averaged per point (paper: 10).
	Runs int
	// Seed is the base RNG seed; run i of a point uses Seed+i.
	Seed int64
	// DBSize is the database size in objects (paper: 1,000).
	DBSize int
	// Terminals is the number of terminals (paper: 200).
	Terminals int
}

// DefaultOpts returns laptop-scale defaults: the full grid regenerates
// in minutes while preserving the paper's shapes. Use PaperOpts for the
// paper's full scale.
func DefaultOpts() RunOpts {
	return RunOpts{Completions: 4000, Warmup: 400, Runs: 3, Seed: 1, DBSize: 1000, Terminals: 200}
}

// PaperOpts returns the paper's scale: 50,000 completions averaged over
// 10 runs per point.
func PaperOpts() RunOpts {
	return RunOpts{Completions: 50000, Warmup: 5000, Runs: 10, Seed: 1, DBSize: 1000, Terminals: 200}
}

func (o RunOpts) withDefaults() RunOpts {
	d := DefaultOpts()
	if o.Completions <= 0 {
		o.Completions = d.Completions
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Completions > 0 && o.Warmup == 0 {
		o.Warmup = o.Completions / 10
	}
	if o.Runs <= 0 {
		o.Runs = d.Runs
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.DBSize <= 0 {
		o.DBSize = d.DBSize
	}
	if o.Terminals <= 0 {
		o.Terminals = d.Terminals
	}
	return o
}

// Series is one curve of an experiment.
type Series struct {
	// Name labels the curve (e.g. "recoverability", "Pr=8").
	Name string
	// Configure adjusts the simulation config for this curve.
	Configure func(*sim.Config, RunOpts)
}

// Spec is a declarative experiment definition.
type Spec struct {
	// ID is the experiment's short name ("fig4", "ablation-pseudo").
	ID string
	// Title describes the experiment, paper-style.
	Title string
	// XLabel names the swept parameter.
	XLabel string
	// XValues is the sweep (usually multiprogramming levels).
	XValues []float64
	// Metrics lists the metric names reported per point.
	Metrics []string
	// Series lists the curves.
	Series []Series
	// Base builds the starting config for a given x.
	Base func(o RunOpts, x float64) sim.Config
	// PaperNote summarises what the paper reports for this figure,
	// for EXPERIMENTS.md cross-checking.
	PaperNote string
}

// Point is one x position of the result grid.
type Point struct {
	X float64
	// Values maps "<series>/<metric>" to the aggregated sample.
	Values map[string]metrics.Sample
}

// Result is a completed experiment.
type Result struct {
	Spec   *Spec
	Opts   RunOpts
	Points []Point
}

// rwBase returns the read/write-model base configuration.
func rwBase(resourceUnits int, unfair bool) func(RunOpts, float64) sim.Config {
	return func(o RunOpts, x float64) sim.Config {
		cfg := sim.Default(workload.ReadWrite{DBSize: o.DBSize, WriteProb: 0.3}, int(x), o.Seed)
		cfg.Terminals = o.Terminals
		cfg.Completions = o.Completions
		cfg.Warmup = o.Warmup
		cfg.ResourceUnits = resourceUnits
		cfg.Unfair = unfair
		return cfg
	}
}

// adtBase returns the abstract-data-type-model base configuration; Pr
// is set per series.
func adtBase(resourceUnits, pc int) func(RunOpts, float64) sim.Config {
	return func(o RunOpts, x float64) sim.Config {
		cfg := sim.Default(workload.Abstract{DBSize: o.DBSize, Sigma: 4, Pc: pc, Pr: 0, TableSeed: 7}, int(x), o.Seed)
		cfg.Terminals = o.Terminals
		cfg.Completions = o.Completions
		cfg.Warmup = o.Warmup
		cfg.ResourceUnits = resourceUnits
		return cfg
	}
}

var paperMPLs = []float64{10, 25, 50, 100, 150, 200}

// predicateSeries is the commutativity-vs-recoverability pair used by
// every read/write figure.
func predicateSeries() []Series {
	return []Series{
		{Name: "commutativity", Configure: func(c *sim.Config, _ RunOpts) { c.Predicate = core.PredCommutativity }},
		{Name: "recoverability", Configure: func(c *sim.Config, _ RunOpts) { c.Predicate = core.PredRecoverability }},
	}
}

// prSeries sets the Pr knob of the abstract model.
func prSeries(pc int, prs ...int) []Series {
	out := make([]Series, 0, len(prs))
	for _, pr := range prs {
		pr := pr
		out = append(out, Series{
			Name: fmt.Sprintf("Pr=%d", pr),
			Configure: func(c *sim.Config, o RunOpts) {
				c.Workload = workload.Abstract{DBSize: o.DBSize, Sigma: 4, Pc: pc, Pr: pr, TableSeed: 7}
			},
		})
	}
	return out
}

// specs is the experiment registry.
var specs = []*Spec{
	{
		ID: "fig4", Title: "Throughput (infinite resources), read/write model",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.Throughput},
		Series:  predicateSeries(), Base: rwBase(0, false),
		PaperNote: "Peak at mpl=50; recoverability ≈67% above commutativity at the peak; both thrash beyond it.",
	},
	{
		ID: "fig5", Title: "Response time (infinite resources), read/write model",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.ResponseTime},
		Series:  predicateSeries(), Base: rwBase(0, false),
		PaperNote: "Response time dips then climbs with mpl; commutativity above recoverability from mpl=50 on.",
	},
	{
		ID: "fig6", Title: "Conflict ratios (infinite resources), read/write model",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.BlockingRatio, metrics.RestartRatio},
		Series:  predicateSeries(), Base: rwBase(0, false),
		PaperNote: "BR smaller with recoverability at every mpl; RR similar at low mpl, lower with recoverability when thrashing; RR < BR throughout.",
	},
	{
		ID: "fig7", Title: "Cycle check ratio and abort length (infinite resources), read/write model",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.CycleCheckRatio, metrics.AbortLength},
		Series:  predicateSeries(), Base: rwBase(0, false),
		PaperNote: "CCR higher with recoverability (checks on recoverable executions too); abort length falls once thrashing begins.",
	},
	{
		// The unfair sweep stops at 150: at mpl = num.of.terminals
		// = 200 the commutativity baseline livelocks in our model —
		// incoming readers overtake blocked writers indefinitely
		// until every in-flight transaction is a starving writer.
		// That is precisely the starvation fair scheduling exists
		// to prevent (§5.2); see EXPERIMENTS.md.
		ID: "fig8", Title: "Throughput (infinite resources), read/write model, no fair scheduling",
		XLabel: "mpl.level", XValues: []float64{10, 25, 50, 100, 150},
		Metrics: []string{metrics.Throughput},
		Series:  predicateSeries(), Base: rwBase(0, true),
		PaperNote: "Peak throughput higher than Fig. 4 for both predicates (non-conflicting ops jump the queue).",
	},
	{
		ID: "fig9", Title: "Conflict ratios (infinite resources), read/write model, no fair scheduling",
		XLabel: "mpl.level", XValues: []float64{10, 25, 50, 100, 150},
		Metrics: []string{metrics.BlockingRatio, metrics.RestartRatio},
		Series:  predicateSeries(), Base: rwBase(0, true),
		PaperNote: "BR and RR lower than under fair scheduling (Fig. 6).",
	},
	{
		ID: "fig10", Title: "Throughput (5 resource units), read/write model",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.Throughput},
		Series:  predicateSeries(), Base: rwBase(5, false),
		PaperNote: "Peak below the infinite-resource peak; recoverability ≈15% ahead at mpl=50; commutativity thrashes earlier (mpl=25).",
	},
	{
		ID: "fig11", Title: "Throughput (1 resource unit), read/write model",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.Throughput},
		Series:  predicateSeries(), Base: rwBase(1, false),
		PaperNote: "Very low absolute throughput; thrashing from mpl=25; recoverability's edge grows with mpl but peak improvement is slight.",
	},
	{
		ID: "fig12", Title: "Conflict ratios (5 resource units), read/write model",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.BlockingRatio, metrics.RestartRatio},
		Series:  predicateSeries(), Base: rwBase(5, false),
		PaperNote: "BR smaller with recoverability, gap widens with mpl; RR near-equal except at mpl=200.",
	},
	{
		ID: "fig13", Title: "Cycle check ratio and abort length (5 resource units), read/write model",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.CycleCheckRatio, metrics.AbortLength},
		Series:  predicateSeries(), Base: rwBase(5, false),
		PaperNote: "CCR higher with recoverability; abort length decreasing once thrashing sets in.",
	},
	{
		ID: "fig14", Title: "Throughput (infinite resources), abstract data type model, Pc=4",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.Throughput},
		Series:  prSeries(4, 0, 4, 8), Base: adtBase(0, 4),
		PaperNote: "Pr=4 ≈15% over Pr=0 at mpl=25; Pr=8 more than double Pr=0 at mpl=50; thrashing later for Pr=8 (mpl=50 vs 25).",
	},
	{
		ID: "fig15", Title: "Throughput (infinite resources), abstract data type model, Pc=2",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.Throughput},
		Series:  prSeries(2, 0, 4, 8), Base: adtBase(0, 2),
		PaperNote: "Pc=2, Pr=8 approximates a stack; peak throughput for Pr=8 about double Pr=0.",
	},
	{
		ID: "fig16", Title: "Conflict ratios (infinite resources), abstract data type model, Pc=4",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.BlockingRatio, metrics.RestartRatio},
		Series:  prSeries(4, 0, 4, 8), Base: adtBase(0, 4),
		PaperNote: "BR rises with mpl; higher Pr lowers BR and flattens its slope; RR ≈ equal until thrashing, then lower for higher Pr.",
	},
	{
		ID: "fig17", Title: "Throughput (5 resource units), abstract data type model, Pc=4",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.Throughput},
		Series:  prSeries(4, 0, 4, 8), Base: adtBase(5, 4),
		PaperNote: "Pr=4 ≈6% over Pr=0 at mpl=25; Pr=8 ≈35% over Pr=0 at mpl=50; maxima below the infinite-resource case.",
	},
	{
		ID: "fig18", Title: "Throughput (1 resource unit), abstract data type model, Pc=4",
		XLabel: "mpl.level", XValues: paperMPLs,
		Metrics: []string{metrics.Throughput},
		Series:  prSeries(4, 0, 4, 8), Base: adtBase(1, 4),
		PaperNote: "Overall throughput very low; drop from mpl=25; recoverability's relative gain appears only deep in thrashing.",
	},
	{
		ID: "ablation-pseudo", Title: "Ablation A: pseudo-commit contribution (read/write model, infinite resources)",
		XLabel: "mpl.level", XValues: []float64{10, 25, 50, 100},
		Metrics: []string{metrics.Throughput, metrics.ResponseTime},
		Series: []Series{
			{Name: "recoverability", Configure: func(c *sim.Config, _ RunOpts) {}},
			{Name: "no-pseudo-commit", Configure: func(c *sim.Config, _ RunOpts) { c.DisablePseudoCommit = true }},
			{Name: "commutativity", Configure: func(c *sim.Config, _ RunOpts) { c.Predicate = core.PredCommutativity }},
		},
		Base:      rwBase(0, false),
		PaperNote: "Not in the paper: separates the early-completion benefit of pseudo-commit (§4.3) from the reduced-blocking benefit of recoverable execution.",
	},
	{
		ID: "ablation-fakerestart", Title: "Ablation B: fake restarts vs same-sequence restarts (read/write model)",
		XLabel: "mpl.level", XValues: []float64{50, 100, 200},
		Metrics: []string{metrics.Throughput, metrics.RestartRatio},
		Series: []Series{
			{Name: "same-sequence", Configure: func(c *sim.Config, _ RunOpts) {}},
			{Name: "fake-restarts", Configure: func(c *sim.Config, _ RunOpts) { c.FakeRestarts = true }},
		},
		Base:      rwBase(0, false),
		PaperNote: "The paper mentions fake restarts as an unused alternative (§5.1); this quantifies the difference.",
	},
	{
		ID: "ablation-writeprob", Title: "Ablation D: write-probability sweep (read/write model, mpl=50)",
		XLabel: "write.probability (%)", XValues: []float64{10, 30, 50, 70, 90},
		Metrics: []string{metrics.Throughput, metrics.BlockingRatio},
		Series:  predicateSeries(),
		Base: func(o RunOpts, x float64) sim.Config {
			cfg := sim.Default(workload.ReadWrite{DBSize: o.DBSize, WriteProb: x / 100}, 50, o.Seed)
			cfg.Terminals = o.Terminals
			cfg.Completions = o.Completions
			cfg.Warmup = o.Warmup
			return cfg
		},
		PaperNote: "Not in the paper: recoverability's advantage grows with the write fraction (writes are the recoverable operations of the RW model).",
	},
}

// IDs lists every registered experiment id in order.
func IDs() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.ID
	}
	return out
}

// Lookup finds a spec by id.
func Lookup(id string) (*Spec, error) {
	for _, s := range specs {
		if s.ID == id {
			return s, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// Run executes the experiment at the given scale.
func Run(id string, opts RunOpts) (*Result, error) {
	spec, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return spec.Run(opts)
}

// Run executes the spec.
func (spec *Spec) Run(opts RunOpts) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{Spec: spec, Opts: opts}
	for _, x := range spec.XValues {
		pt := Point{X: x, Values: make(map[string]metrics.Sample)}
		for _, ser := range spec.Series {
			cfg := spec.Base(opts, x)
			ser.Configure(&cfg, opts)
			runs, err := sim.SimulateRuns(cfg, opts.Runs)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s %s=%v series %q: %w", spec.ID, spec.XLabel, x, ser.Name, err)
			}
			for _, m := range spec.Metrics {
				sample, err := metrics.AggregateRuns(runs, m)
				if err != nil {
					return nil, err
				}
				pt.Values[ser.Name+"/"+m] = sample
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Columns returns the result's column keys ("series/metric") in a
// stable, readable order: metric-major, series in spec order.
func (r *Result) Columns() []string {
	var cols []string
	for _, m := range r.Spec.Metrics {
		for _, s := range r.Spec.Series {
			cols = append(cols, s.Name+"/"+m)
		}
	}
	return cols
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	cols := r.Columns()
	header := append([]string{r.Spec.XLabel}, cols...)
	rows := [][]string{header}
	for _, pt := range r.Points {
		row := []string{fmt.Sprintf("%g", pt.X)}
		for _, c := range cols {
			s := pt.Values[c]
			row = append(row, fmt.Sprintf("%.3f ±%.3f", s.Mean, s.CI90))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(r.Spec.ID), r.Spec.Title)
	fmt.Fprintf(&b, "(completions=%d runs=%d db=%d terminals=%d)\n",
		r.Opts.Completions, r.Opts.Runs, r.Opts.DBSize, r.Opts.Terminals)
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			b.WriteString(strings.Repeat("-", sum(widths)+2*len(widths)))
			b.WriteByte('\n')
		}
	}
	if r.Spec.PaperNote != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Spec.PaperNote)
	}
	return b.String()
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Peak returns the x value and sample with the highest mean for one
// column (used to compare peak throughputs against the paper).
func (r *Result) Peak(column string) (x float64, best metrics.Sample) {
	for _, pt := range r.Points {
		if s, ok := pt.Values[column]; ok && s.Mean > best.Mean {
			best, x = s, pt.X
		}
	}
	return x, best
}

// Sorted returns point x values (ascending) — a convenience for tests.
func (r *Result) Sorted() []float64 {
	xs := make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i] = p.X
	}
	sort.Float64s(xs)
	return xs
}
