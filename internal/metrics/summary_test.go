package metrics

import "testing"

func TestHist(t *testing.T) {
	var h Hist
	for _, v := range []int{0, 1, 1, 2, 2, 2, 9} {
		h.Add(v)
	}
	if h.N() != 7 {
		t.Fatalf("n = %d", h.N())
	}
	if h.Max() != 9 {
		t.Fatalf("max = %d", h.Max())
	}
	if got, want := h.Mean(), 17.0/7; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %d, want 2", got)
	}
	if got := h.Counts[2]; got != 3 {
		t.Fatalf("Counts[2] = %d", got)
	}
	if h.Buckets() != "0:1 1:2 2:3 9:1" {
		t.Fatalf("buckets = %q", h.Buckets())
	}
}

func TestHistCap(t *testing.T) {
	h := Hist{Cap: 4}
	h.Add(3)
	h.Add(100)
	if h.Over != 1 {
		t.Fatalf("over = %d", h.Over)
	}
	if h.Max() != 100 {
		t.Fatalf("max = %d (overflow must still track the true max)", h.Max())
	}
	if len(h.Counts) > 5 {
		t.Fatalf("dense buckets grew past the cap: %d", len(h.Counts))
	}
}

func TestWindow(t *testing.T) {
	var w Window
	if w.Mean() != 0 || w.Max() != 0 {
		t.Fatal("empty window not zero")
	}
	w.Add(1.0)
	w.Add(3.0)
	if w.N() != 2 || w.Mean() != 2.0 || w.Max() != 3.0 || w.Sum() != 4.0 {
		t.Fatalf("window = %s", w.String())
	}
}
