package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Hist is a small non-negative-integer histogram with dense buckets up
// to a cap — the shape the multi-site simulator's hold-convoy depth
// measurements need. The zero value (no cap) buckets every value seen.
type Hist struct {
	// Counts[v] is how many samples had value v (grown on demand up to
	// Cap; larger values land in Over).
	Counts []uint64
	// Cap bounds the dense buckets; 0 means unbounded.
	Cap int
	// Over counts samples beyond Cap.
	Over uint64

	n   uint64
	sum float64
	max int
}

// Add records one sample (negative values clamp to 0).
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
	}
	h.n++
	h.sum += float64(v)
	if v > h.max {
		h.max = v
	}
	if h.Cap > 0 && v > h.Cap {
		h.Over++
		return
	}
	for len(h.Counts) <= v {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[v]++
}

// N returns the sample count.
func (h *Hist) N() uint64 { return h.n }

// Mean returns the sample mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest sample seen (0 when empty).
func (h *Hist) Max() int { return h.max }

// Quantile returns the smallest value v such that at least q (0..1) of
// the samples are <= v, computed over the dense buckets (overflowed
// samples count as > Cap and report Max).
func (h *Hist) Quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target == 0 {
		target = 1
	}
	if target > h.n {
		target = h.n
	}
	var cum uint64
	for v, c := range h.Counts {
		cum += c
		if cum >= target {
			return v
		}
	}
	return h.max
}

// String renders a compact summary.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%d p95=%d max=%d",
		h.n, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.max)
}

// Buckets renders the non-zero buckets as "v:count v:count …" — the
// full histogram for reports and traces.
func (h *Hist) Buckets() string {
	var b strings.Builder
	for v, c := range h.Counts {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", v, c)
	}
	if h.Over > 0 {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, ">%d:%d", h.Cap, h.Over)
	}
	return b.String()
}

// Quantile returns the smallest sample x such that at least q (0..1)
// of the samples are <= x, from a raw sample series (0 when empty).
// Sorts a copy; meant for end-of-run summaries (a held-wait p99), not
// hot paths.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// Window summarises non-negative float samples — count, mean, max —
// for latency-style measurements (per-phase conversation latencies,
// in-doubt window lengths).
type Window struct {
	n   uint64
	sum float64
	max float64
}

// Add records one sample.
func (w *Window) Add(x float64) {
	w.n++
	w.sum += x
	if x > w.max {
		w.max = x
	}
}

// N returns the sample count.
func (w *Window) N() uint64 { return w.n }

// Sum returns the sample total.
func (w *Window) Sum() float64 { return w.sum }

// Mean returns the sample mean (0 when empty).
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// Max returns the largest sample (0 when empty).
func (w *Window) Max() float64 { return w.max }

// String renders a compact summary.
func (w *Window) String() string {
	return fmt.Sprintf("n=%d mean=%.6f max=%.6f", w.n, w.Mean(), w.max)
}
