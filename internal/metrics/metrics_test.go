package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleRun() Run {
	return Run{
		SimTime:       100,
		Completed:     500,
		TotalResponse: 1250,
		Blocks:        600,
		Restarts:      50,
		CycleChecks:   700,
		AbortOps:      200,
	}
}

func TestRunMetrics(t *testing.T) {
	r := sampleRun()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"throughput", r.Throughput(), 5.0},
		{"response", r.ResponseTime(), 2.5},
		{"blocking ratio", r.BlockingRatio(), 1.2},
		{"restart ratio", r.RestartRatio(), 0.1},
		{"cycle check ratio", r.CycleCheckRatio(), 1.4},
		{"abort length", r.AbortLength(), 4.0},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestRunZeroGuards(t *testing.T) {
	var r Run
	for _, m := range []string{Throughput, ResponseTime, BlockingRatio, RestartRatio, CycleCheckRatio, AbortLength} {
		v, err := r.Value(m)
		if err != nil || v != 0 {
			t.Errorf("zero run %s = %v, %v", m, v, err)
		}
	}
	if _, err := r.Value("nope"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestAggregate(t *testing.T) {
	s := Aggregate([]float64{2, 4, 6})
	if s.N != 3 || math.Abs(s.Mean-4) > 1e-12 {
		t.Errorf("sample = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("std = %v, want 2", s.Std)
	}
	// CI90 = t(2) * std / sqrt(3) = 2.920 * 2 / 1.732...
	want := 2.920 * 2 / math.Sqrt(3)
	if math.Abs(s.CI90-want) > 1e-9 {
		t.Errorf("ci90 = %v, want %v", s.CI90, want)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestAggregateEdgeCases(t *testing.T) {
	if s := Aggregate(nil); s.N != 0 {
		t.Errorf("empty aggregate = %+v", s)
	}
	s := Aggregate([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.CI90 != 0 {
		t.Errorf("singleton aggregate = %+v", s)
	}
}

func TestTCrit(t *testing.T) {
	if tCrit90(1) != 6.314 || tCrit90(9) != 1.833 {
		t.Error("t table wrong")
	}
	if tCrit90(1000) != 1.645 {
		t.Error("asymptote wrong")
	}
	if tCrit90(0) != 0 {
		t.Error("df=0 should be 0")
	}
}

func TestAggregateRuns(t *testing.T) {
	runs := []Run{sampleRun(), sampleRun()}
	s, err := AggregateRuns(runs, Throughput)
	if err != nil || s.Mean != 5 || s.Std != 0 {
		t.Errorf("AggregateRuns = %+v, %v", s, err)
	}
	if _, err := AggregateRuns(runs, "nope"); err == nil {
		t.Error("unknown metric accepted")
	}
}

// TestAggregateProperties: mean lies within [min, max]; scaling inputs
// scales mean, std and CI linearly.
func TestAggregateProperties(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true
			}
		}
		s := Aggregate(xs)
		min, max := xs[0], xs[0]
		for _, x := range xs {
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
		if s.Mean < min-1e-9 || s.Mean > max+1e-9 {
			return false
		}
		const k = 3.0
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = k * x
		}
		s2 := Aggregate(scaled)
		return math.Abs(s2.Mean-k*s.Mean) < 1e-6*(1+math.Abs(k*s.Mean)) &&
			math.Abs(s2.Std-k*s.Std) < 1e-6*(1+k*s.Std) &&
			math.Abs(s2.CI90-k*s.CI90) < 1e-6*(1+k*s.CI90)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
