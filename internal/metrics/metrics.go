// Package metrics defines the performance metrics of §5.4 (throughput,
// response time, blocking ratio, restart ratio, cycle check ratio,
// abort length) and multi-run aggregation with mean, standard deviation
// and 90% confidence intervals, matching the paper's reporting ("the 90
// percent confidence intervals lie within ±2% of the mean").
package metrics

import (
	"fmt"
	"math"
)

// Run holds the raw counters of one simulation run.
type Run struct {
	// SimTime is the simulated seconds the measurement window lasted.
	SimTime float64
	// Completed counts transactions that completed (committed or
	// pseudo-committed) inside the window; completions are the
	// denominator of every ratio ("this includes committed and
	// pseudo-committed transactions", §5.4 — and every
	// pseudo-committed transaction eventually commits).
	Completed int
	// TotalResponse is the summed response time (submission to
	// completion, including ready-queue waits and restarts).
	TotalResponse float64
	// Blocks counts operation requests that were denied and blocked.
	Blocks int
	// Restarts counts transaction aborts followed by restart.
	Restarts int
	// CycleChecks counts invocations of cycle detection (deadlock
	// checks on block + commit-dependency checks on recoverable
	// execution).
	CycleChecks int
	// AbortOps is the summed number of operations executed by
	// transactions at the moment they were aborted.
	AbortOps int
}

// Throughput returns completed transactions per simulated second.
func (r Run) Throughput() float64 {
	if r.SimTime <= 0 {
		return 0
	}
	return float64(r.Completed) / r.SimTime
}

// ResponseTime returns the mean transaction response time in simulated
// seconds.
func (r Run) ResponseTime() float64 {
	if r.Completed == 0 {
		return 0
	}
	return r.TotalResponse / float64(r.Completed)
}

// BlockingRatio returns blocks per completion.
func (r Run) BlockingRatio() float64 { return r.perCompletion(float64(r.Blocks)) }

// RestartRatio returns restarts per completion.
func (r Run) RestartRatio() float64 { return r.perCompletion(float64(r.Restarts)) }

// CycleCheckRatio returns cycle-detection invocations per completion.
func (r Run) CycleCheckRatio() float64 { return r.perCompletion(float64(r.CycleChecks)) }

// AbortLength returns the mean number of operations executed by aborted
// transactions at abort time.
func (r Run) AbortLength() float64 {
	if r.Restarts == 0 {
		return 0
	}
	return float64(r.AbortOps) / float64(r.Restarts)
}

func (r Run) perCompletion(x float64) float64 {
	if r.Completed == 0 {
		return 0
	}
	return x / float64(r.Completed)
}

// Metric names, used by the experiment harness to select series.
const (
	Throughput      = "throughput"
	ResponseTime    = "response-time"
	BlockingRatio   = "blocking-ratio"
	RestartRatio    = "restart-ratio"
	CycleCheckRatio = "cycle-check-ratio"
	AbortLength     = "abort-length"
)

// Value extracts a named metric from the run.
func (r Run) Value(metric string) (float64, error) {
	switch metric {
	case Throughput:
		return r.Throughput(), nil
	case ResponseTime:
		return r.ResponseTime(), nil
	case BlockingRatio:
		return r.BlockingRatio(), nil
	case RestartRatio:
		return r.RestartRatio(), nil
	case CycleCheckRatio:
		return r.CycleCheckRatio(), nil
	case AbortLength:
		return r.AbortLength(), nil
	}
	return 0, fmt.Errorf("metrics: unknown metric %q", metric)
}

// Sample aggregates one metric across runs.
type Sample struct {
	N    int
	Mean float64
	Std  float64
	// CI90 is the half-width of the 90% confidence interval of the
	// mean (Student's t).
	CI90 float64
}

// Aggregate computes the sample statistics of xs.
func Aggregate(xs []float64) Sample {
	n := len(xs)
	if n == 0 {
		return Sample{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Sample{N: 1, Mean: mean}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n-1))
	ci := tCrit90(n-1) * std / math.Sqrt(float64(n))
	return Sample{N: n, Mean: mean, Std: std, CI90: ci}
}

// tCrit90 returns the two-sided 90% critical value of Student's t with
// df degrees of freedom (table for small df, 1.645 asymptote beyond).
func tCrit90(df int) float64 {
	table := []float64{
		0, 6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860,
		1.833, 1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746,
		1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
		1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.645
}

// String renders the sample as "mean ± ci90".
func (s Sample) String() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.CI90)
}

// AggregateRuns extracts a named metric from each run and aggregates.
func AggregateRuns(runs []Run, metric string) (Sample, error) {
	xs := make([]float64, 0, len(runs))
	for _, r := range runs {
		v, err := r.Value(metric)
		if err != nil {
			return Sample{}, err
		}
		xs = append(xs, v)
	}
	return Aggregate(xs), nil
}
