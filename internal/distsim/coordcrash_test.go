package distsim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/adt"
	"repro/internal/core"
)

// checkConservation verifies, after the run, that each object's
// committed stack depth equals the push steps of logical transactions
// whose commit promise was honoured — the invariant every crash
// flavour must preserve.
func checkConservation(t *testing.T, eng *Engine, res Result, db int) {
	t.Helper()
	for obj := core.ObjectID(1); obj <= core.ObjectID(db); obj++ {
		var depth uint64
		st, err := eng.Site(eng.route(obj)).CommittedState(obj)
		if err == nil {
			depth = uint64(st.(*adt.StackState).Len())
		}
		if want := res.CommittedSteps[obj]; depth != want {
			t.Errorf("obj %d: committed depth %d, want %d (conservation violated)", obj, depth, want)
		}
	}
}

// TestCoordCrashMidConversation: the coordinator dies at a
// BeforeDecisionForce boundary — prepared holds, no logged decision.
// The replacement must orphan the stranded actives, presumed-abort any
// unlogged holds, and still carry the run to its completion target
// with conservation intact, deterministically.
func TestCoordCrashMidConversation(t *testing.T) {
	cfg := CoordCrash(11)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CoordCrashes != 1 || res.CoordRestarts != 1 {
		t.Fatalf("coord crashes/restarts = %d/%d, want 1/1", res.CoordCrashes, res.CoordRestarts)
	}
	if res.CoordOrphans == 0 {
		t.Fatal("the conversation at the crash boundary was not orphaned")
	}
	if res.RealCommits != cfg.Completions {
		t.Fatalf("real commits = %d, want %d (cluster did not recover)", res.RealCommits, cfg.Completions)
	}
	checkConservation(t, eng, res, 16)
	again := run(t, CoordCrash(11))
	if again.TraceHash != res.TraceHash {
		t.Fatalf("coord-crash scenario not deterministic: %016x vs %016x", res.TraceHash, again.TraceHash)
	}
}

// TestCoordCrashAdoptRelease: one boundary later the decision is in
// the log but no release was sent. The replacement coordinator must
// adopt the logged commit and finish its releases — the §6 promise
// survives the coordinator itself failing.
func TestCoordCrashAdoptRelease(t *testing.T) {
	cfg := CoordCrashRelease(11)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CoordCrashes != 1 || res.CoordRestarts != 1 {
		t.Fatalf("coord crashes/restarts = %d/%d, want 1/1", res.CoordCrashes, res.CoordRestarts)
	}
	if res.CoordAdopted == 0 {
		t.Fatal("crash after the commit point adopted no logged decision")
	}
	if res.RealCommits != cfg.Completions {
		t.Fatalf("real commits = %d, want %d", res.RealCommits, cfg.Completions)
	}
	checkConservation(t, eng, res, 16)
	again := run(t, CoordCrashRelease(11))
	if again.TraceHash != res.TraceHash {
		t.Fatalf("adopt scenario not deterministic: %016x vs %016x", res.TraceHash, again.TraceHash)
	}
}

// TestGoldenCoordCrashTrace pins the CoordCrashRelease scenario's full
// event trace: the coordinator crash, the adoption of the logged
// decision, and the reconcile that finishes its releases must replay
// line-for-line identically — the same restart sequence the
// multi-process cluster runs when sccd's coordinator is kill -9'd.
// Run with UPDATE_GOLDEN=1 to regenerate after an intentional change.
func TestGoldenCoordCrashTrace(t *testing.T) {
	cfg := CoordCrashRelease(11)
	cfg.RecordTrace = true
	res := run(t, cfg)
	got := strings.Join(res.Trace, "\n") + "\n"

	// Structural checks first, so a stale golden file cannot mask a
	// scenario that stopped exercising the restart sequence.
	if !strings.Contains(got, "coordcrash") {
		t.Fatal("trace has no coordinator crash")
	}
	if !strings.Contains(got, "coordrestart adopted=") {
		t.Fatal("trace has no coordinator restart adoption")
	}
	if !strings.Contains(got, "adopt-release T") {
		t.Fatal("trace is missing the adopted release reconcile")
	}
	if !strings.Contains(got, "orphan T") {
		t.Fatal("trace is missing the orphaned attempts")
	}

	path := filepath.Join("testdata", "coord_crash_seed11.trace")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace updated: %d lines", len(res.Trace))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden trace missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("trace diverges at line %d:\n got: %s\nwant: %s", i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("trace length changed: got %d lines, want %d", len(gotLines), len(wantLines))
}

// TestEagerReleaseCrash: a site dies in the middle of an eager release
// round — the decision is logged and part of the batch landed, so
// restart recovery must redo the victim's skipped releases from their
// prepared records while the rest of the batch proceeds normally.
func TestEagerReleaseCrash(t *testing.T) {
	cfg := EagerReleaseCrash(7)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", res.Crashes)
	}
	if res.EagerRounds == 0 {
		t.Fatal("eager policy ran no batched release round")
	}
	if res.Redone == 0 {
		t.Fatalf("crash during the eager release round redid nothing (presumed=%d)", res.PresumedAborted)
	}
	checkConservation(t, eng, res, 32)
	again := run(t, EagerReleaseCrash(7))
	if again.TraceHash != res.TraceHash {
		t.Fatalf("eager-crash scenario not deterministic: %016x vs %016x", res.TraceHash, again.TraceHash)
	}
}
