// Package distsim is a seeded, deterministic discrete-event simulation
// of the §6 distributed cluster: every participant site runs the real
// concurrency-control machinery (a fault.Crashable wrapping a
// core.Scheduler), the coordinator runs the real commit-conversation
// logic over the real union graph (depgraph.Mirror) and the real
// decision log (fault.Log), and everything advances on a virtual clock
// (internal/sim's Timeline) — no goroutines, no wall time, no races.
//
// What the wall-clock cluster (internal/dist) resolves with mutexes,
// parked goroutines and timers, the simulator models as messages with
// seeded latency: requests travel from terminals to the object's home
// site, dependency-edge reports travel from sites to the coordinator's
// mirror, and commit conversations (hold, decide, release) are
// per-site message rounds. Crash injection is exact: a schedule places
// Crash/Restart on named protocol-step boundaries (dist.Step — the
// same vocabulary the wall-clock StepHook fires), so "crash site 2 the
// first time a conversation passes AfterDecisionBeforeRelease" is one
// scenario line, reproducible bit-for-bit from its seed.
//
// The model, and its limits: message channels between the coordinator
// side and each site are FIFO and lossless (latency jitters, order per
// direction holds, nothing is dropped or partitioned); abort
// propagation to surviving sites is immediate (the wall-clock cluster
// runs it synchronously too); terminals are co-located with the
// coordinator. The coordinator itself can be crashed on a protocol
// step (CoordCrashPoint): its volatile state — the union-graph mirror
// and the release-ack table — dies, the durable decision log survives,
// and the restarted coordinator adopts logged commits and reconciles
// every site against the log, exactly the sequence the wall-clock
// wire.StartCoordinator runs. See DESIGN.md, "Simulation model".
package distsim

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/workload"
)

// CrashPoint places one crash exactly on a protocol-step boundary: the
// Occurrence-th global firing of Step crashes Site.
type CrashPoint struct {
	// Step is the protocol-step boundary (dist.Step names).
	Step dist.Step
	// Occurrence selects the n-th (1-based) global firing of Step
	// across the whole run.
	Occurrence int
	// Site is the site to crash; -1 means the step's own site (for the
	// coordinator-level steps BeforeDecisionForce and
	// AfterDecisionBeforeRelease, the transaction's lowest visited
	// site — the first participant of its conversation).
	Site int
	// RestartAfter is the virtual downtime before the site restarts
	// with presumed-abort recovery; <= 0 means the site stays down
	// until the end of the run (the engine restarts every down site
	// after the completion target is met, so final states are always
	// fully recovered).
	RestartAfter float64
}

// CoordCrashPoint places one coordinator crash on a protocol-step
// boundary: the Occurrence-th global firing of Step kills the
// coordinator. Volatile coordinator state (the mirror, the release-ack
// table) is lost; the decision log survives. After RestartAfter virtual
// seconds a new coordinator starts on the same log: it adopts every
// logged commit, aborts orphaned actives, redoes logged holds and
// direct commits, and presumed-aborts unlogged holds — the
// wire.StartCoordinator sequence, pinned on the virtual clock.
type CoordCrashPoint struct {
	// Step is the protocol-step boundary (dist.Step names).
	Step dist.Step
	// Occurrence selects the n-th (1-based) global firing of Step.
	Occurrence int
	// RestartAfter is the virtual downtime before the replacement
	// coordinator starts; must be > 0 (a cluster whose coordinator
	// never returns cannot finish the run).
	RestartAfter float64
}

// Config parameterises one deterministic multi-site simulation.
type Config struct {
	// Sites is the number of participant sites; objects route home by
	// id modulo Sites (dist.RouteByModulo's rule).
	Sites int
	// Terminals is the closed-loop population: each terminal keeps one
	// logical transaction in flight (think, submit, retry on abort)
	// and is released at completion — pseudo-commit included, as in
	// the §5 model.
	Terminals int
	// MinLength/MaxLength bound the uniform transaction length.
	MinLength, MaxLength int
	// Workload draws transactions (typically workload.Sharded for
	// home-partitioned traffic with a cross-site probability).
	Workload workload.Generator
	// Predicate selects recoverability (default) or the commutativity
	// baseline at every site.
	Predicate core.Predicate
	// Seed drives all randomness; same seed, bit-identical run.
	Seed int64

	// SiteTime is the service time a site spends processing one
	// operation or conversation message before replying.
	SiteTime float64
	// MsgTime is the mean one-way message latency between the
	// coordinator/terminal side and a site.
	MsgTime float64
	// MsgJitter spreads each latency draw uniformly over
	// MsgTime*(1±MsgJitter); 0 means constant latency.
	MsgJitter float64
	// ThinkTime is the mean of the exponential terminal think time.
	ThinkTime float64
	// RestartDelay is the base virtual backoff before an aborted
	// logical transaction is resubmitted (doubling per attempt, capped,
	// with a seeded jitter factor).
	RestartDelay float64

	// Completions is how many logical transactions must really commit
	// (the promise honoured at every site) after warm-up.
	Completions int
	// Warmup is how many real commits to discard before the
	// measurement window opens.
	Warmup int
	// MaxEvents guards against stalls; 0 picks a generous default.
	MaxEvents int

	// Crashes is the protocol-step crash schedule.
	Crashes []CrashPoint
	// CoordCrashes is the coordinator crash schedule. Non-empty
	// schedules arm the coordinator-failure model (direct commits are
	// logged and gated like the wire client plane does); an empty
	// schedule keeps the classic coordinator-never-fails model and its
	// bit-identical baseline traces.
	CoordCrashes []CoordCrashPoint
	// Policy, when non-nil, is the bounded-hold release policy the
	// simulated coordinator consults (the same dist.HoldPolicy values
	// the wall-clock cluster takes). The engine uses a Fresh clone, so
	// one value can configure many runs; same seed + same policy means
	// a bit-identical run. Nil preserves the unbounded baseline.
	Policy dist.HoldPolicy
	// RecordTrace keeps the full event-trace lines in the Result (the
	// trace hash is always computed).
	RecordTrace bool
	// Spans, when positive, records deterministic causal spans into a
	// ring of this capacity, stamped from the VIRTUAL clock: the same
	// seed yields bit-identical span timelines, and the trace hash is
	// untouched (span emission never draws randomness or trace lines).
	Spans int
	// SpanExemplars bounds the pinned tail-latency exemplar store; 0
	// picks a small default. Ignored unless Spans > 0.
	SpanExemplars int
	// Log is the coordinator's decision log; nil means a fresh
	// fault.NewMemLog.
	Log fault.Log
}

// Default returns a laptop-friendly multi-site configuration: the
// paper's nominal transaction lengths, an operation service time of
// 5 ms, 10 ms mean message latency with ±50% jitter, 100 ms think
// time, 2000 measured real commits with 10% warm-up.
func Default(w workload.Generator, sites, terminals int, seed int64) Config {
	return Config{
		Sites:        sites,
		Terminals:    terminals,
		MinLength:    4,
		MaxLength:    12,
		Workload:     w,
		Seed:         seed,
		SiteTime:     0.005,
		MsgTime:      0.010,
		MsgJitter:    0.5,
		ThinkTime:    0.1,
		RestartDelay: 0.02,
		Completions:  2000,
		Warmup:       200,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Workload == nil:
		return errors.New("distsim: config needs a workload")
	case c.Sites <= 0:
		return errors.New("distsim: Sites must be positive")
	case c.Terminals <= 0:
		return errors.New("distsim: Terminals must be positive")
	case c.MinLength <= 0 || c.MaxLength < c.MinLength:
		return fmt.Errorf("distsim: bad length bounds [%d,%d]", c.MinLength, c.MaxLength)
	case c.SiteTime < 0 || c.MsgTime < 0 || c.ThinkTime < 0 || c.RestartDelay < 0:
		return errors.New("distsim: times must be >= 0")
	case c.MsgJitter < 0 || c.MsgJitter > 1:
		return errors.New("distsim: MsgJitter must be in [0,1]")
	case c.Completions <= 0:
		return errors.New("distsim: Completions must be positive")
	case c.Warmup < 0:
		return errors.New("distsim: Warmup must be >= 0")
	}
	for i, cp := range c.Crashes {
		if cp.Occurrence <= 0 {
			return fmt.Errorf("distsim: crash %d: Occurrence must be >= 1", i)
		}
		if int(cp.Step) >= dist.NumSteps {
			return fmt.Errorf("distsim: crash %d: unknown step", i)
		}
		if cp.Site >= c.Sites {
			return fmt.Errorf("distsim: crash %d: site %d out of range", i, cp.Site)
		}
	}
	for i, cp := range c.CoordCrashes {
		if cp.Occurrence <= 0 {
			return fmt.Errorf("distsim: coord crash %d: Occurrence must be >= 1", i)
		}
		if int(cp.Step) >= dist.NumSteps {
			return fmt.Errorf("distsim: coord crash %d: unknown step", i)
		}
		if cp.RestartAfter <= 0 {
			return fmt.Errorf("distsim: coord crash %d: RestartAfter must be > 0", i)
		}
	}
	return nil
}

// maxEvents returns the stall guard.
func (c Config) maxEvents() int {
	if c.MaxEvents > 0 {
		return c.MaxEvents
	}
	n := (c.Completions + c.Warmup) * 10_000
	if n < 2_000_000 {
		n = 2_000_000
	}
	return n
}
